(* pexp — run one workload under a dynamic bug detector, with or without
   PathExpander, and report what the detector saw.

   Examples:
     pexp --app print_tokens2 --bug 10 --detector ccured --mode standard
     pexp --app 164.gzip --mode cmp --stats
     pexp --list *)

let detector_of_string = function
  | "none" -> Ok Codegen.No_detector
  | "ccured" -> Ok Codegen.Ccured
  | "iwatcher" -> Ok Codegen.Iwatcher
  | "assertions" -> Ok Codegen.Assertions
  | s -> Error (Printf.sprintf "unknown detector '%s'" s)

let mode_of_string = function
  | "baseline" -> Ok Pe_config.Baseline
  | "standard" -> Ok Pe_config.Standard
  | "cmp" -> Ok Pe_config.Cmp
  | s -> Error (Printf.sprintf "unknown mode '%s'" s)

let list_apps () =
  List.iter
    (fun (w : Workload.t) ->
      Printf.printf "%-14s %-10s %2d bugs  %s\n" w.Workload.name
        (Workload.app_class_name w.Workload.app_class)
        (Workload.bug_count w) w.Workload.descr)
    Registry.all

let termination_summary records =
  let count p = List.length (List.filter p records) in
  Printf.printf
    "NT-Path terminations: %d max-length, %d crash, %d unsafe, %d program-end, %d overflow\n"
    (count (fun (r : Nt_path.record) -> r.Nt_path.termination = Nt_path.T_max_length))
    (count Nt_path.is_crash)
    (count Nt_path.is_unsafe)
    (count (fun r -> r.Nt_path.termination = Nt_path.T_program_end))
    (count (fun r -> r.Nt_path.termination = Nt_path.T_cache_overflow))

let run_one ~app ~detector ~mode ~bug ~fixing ~selective ~seed ~random_input
    ~stats ~disasm ~trace ~trace_chrome ~opt ~dump_pass ~obs ~prometheus =
  let workload = Registry.find app in
  let compiled =
    match dump_pass with
    | None -> Workload.compile ~detector ~fixing ~opt ?bug workload
    | Some pass ->
      if not (List.mem pass Pipeline.pass_names) then begin
        Printf.eprintf "unknown pass '%s' (expected one of: %s)\n" pass
          (String.concat ", " Pipeline.pass_names);
        exit 2
      end;
      (* Bypass the memo so the dump callback actually observes a fresh
         compilation. *)
      let dump name text =
        if name = pass then begin
          Printf.printf "=== after %s ===\n" name;
          print_string text;
          if text <> "" && text.[String.length text - 1] <> '\n' then
            print_newline ()
        end
      in
      Compile.compile
        ~options:{ Codegen.detector; fixing }
        ~level:opt ~dump
        (workload.Workload.source ~bug)
  in
  if disasm then print_string (Program.disassemble compiled.Compile.program);
  let input =
    if random_input then workload.Workload.gen_input (Rng.create seed)
    else workload.Workload.default_input
  in
  let recorder =
    if trace <> None || trace_chrome <> None then Recorder.create ()
    else Recorder.disabled
  in
  let machine = Machine.create ~input ~recorder compiled.Compile.program in
  let config =
    { (Workload.pe_config ~mode workload) with Pe_config.fixing; selective }
  in
  (* Arm the observatory's per-run bookkeeping (deopt-cause classification,
     NT sequence stamps) before the run when a snapshot was requested. *)
  if obs <> None then Pe_config.set_obs_enabled true;
  if obs <> None || prometheus <> None then
    Telemetry.set_label machine.Machine.telemetry
      (Printf.sprintf "%s/%s" app (Pe_config.mode_name mode));
  let result = Engine.run ~config machine in
  (match obs with
   | None -> ()
   | Some file ->
     let snap =
       Obs.snapshot
         ~label:(Printf.sprintf "%s/%s" app (Pe_config.mode_name mode))
         ~program:compiled.Compile.program ~machine ~result ~config
     in
     let oc = open_out file in
     output_string oc (Obs.to_json snap ^ "\n");
     close_out oc;
     Printf.eprintf "obs: snapshot -> %s\n%!" file);
  (match prometheus with
   | None -> ()
   | Some file ->
     let oc = open_out file in
     output_string oc (Telemetry.to_prometheus machine.Machine.telemetry);
     close_out oc;
     Printf.eprintf "prometheus: metrics -> %s\n%!" file);
  (* Flight-recorder exports before the human-readable report, so a crash in
     the analysis below can't lose a captured trace. *)
  let dump () =
    Recorder.dump
      ~label:(Printf.sprintf "%s/%s" app (Pe_config.mode_name mode))
      recorder
  in
  (match trace with
   | None -> ()
   | Some file ->
     Recorder.write_file file (Recorder.jsonl_of_dump (dump ()));
     Printf.eprintf "trace: %d events -> %s\n%!" (Recorder.length recorder)
       file);
  (match trace_chrome with
   | None -> ()
   | Some file ->
     Recorder.write_file file (Recorder.chrome_of_dump (dump ()));
     Printf.eprintf "chrome trace: %d events -> %s\n%!"
       (Recorder.length recorder) file);
  Printf.printf "%s under %s (%s): %s\n" app
    (Codegen.detector_name detector)
    (Pe_config.mode_name mode)
    (Engine.outcome_name result.Engine.outcome);
  Printf.printf
    "taken path: %d instructions, %d cycles; total %d cycles; %d NT-Paths\n"
    result.Engine.taken_insns result.Engine.taken_cycles
    result.Engine.total_cycles result.Engine.spawns;
  Printf.printf "branch coverage: %.1f%% taken-path, %.1f%% with NT-Paths\n"
    (Coverage.taken_pct result.Engine.coverage)
    (Coverage.combined_pct result.Engine.coverage);
  if stats then begin
    termination_summary result.Engine.nt_records;
    Printf.printf "selective fast tier: %d instructions in %d segments\n"
      result.Engine.fast_insns result.Engine.fast_segments
  end;
  let reports = machine.Machine.reports in
  Printf.printf "detector reports: %d (%d distinct sites)\n"
    (Report.count reports)
    (List.length (Report.distinct_sites reports));
  List.iter
    (fun id ->
      Printf.printf "  %s\n"
        (Site.to_string compiled.Compile.program.Program.sites.(id)))
    (Report.distinct_sites reports);
  match bug with
  | None -> ()
  | Some version ->
    let bug = Workload.find_bug workload version in
    let analysis = Analysis.analyze ~compiled ~machine ~bug in
    Printf.printf "bug %s: %s (taken-path: %b, NT-Path: %b, %d false positives)\n"
      bug.Bug.id
      (if Analysis.detected analysis then "DETECTED" else "not detected")
      analysis.Analysis.detected_on_taken_path
      analysis.Analysis.detected_on_nt_path
      (Analysis.false_positive_count analysis)

open Cmdliner

let conv_of parse =
  Arg.conv ((fun s -> Result.map_error (fun e -> `Msg e) (parse s)), fun fmt _ ->
      Format.fprintf fmt "<opt>")

let app_arg =
  Arg.(value & opt string "print_tokens2" & info [ "app"; "a" ] ~doc:"Workload name.")

let detector_arg =
  Arg.(
    value
    & opt (conv_of detector_of_string) Codegen.Ccured
    & info [ "detector"; "d" ] ~doc:"Detector: none, ccured, iwatcher, assertions.")

let mode_arg =
  Arg.(
    value
    & opt (conv_of mode_of_string) Pe_config.Standard
    & info [ "mode"; "m" ] ~doc:"Engine mode: baseline, standard, cmp.")

let bug_arg =
  Arg.(value & opt (some int) None & info [ "bug"; "b" ] ~doc:"Planted bug version.")

let fixing_arg =
  Arg.(value & opt bool true & info [ "fixing" ] ~doc:"Consistency fixing on/off.")

let selective_arg =
  Arg.(
    value & opt bool true
    & info [ "selective" ]
        ~doc:
          "Run the taken path through the selective fast/slow interpreter \
           split (output is byte-identical either way).")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Input generator seed.")

let random_arg =
  Arg.(value & flag & info [ "random-input" ] ~doc:"Use a generated input.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print NT-Path termination stats.")

let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List workloads.")

let disasm_arg =
  Arg.(value & flag & info [ "disasm" ] ~doc:"Print the compiled image's disassembly first.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the run's NT-Path lifecycle events (sim-time flight \
           recorder) and write them as JSONL to $(docv).")

let opt_of_string s =
  match Opt.of_string s with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "unknown optimization level '%s'" s)

let opt_arg =
  Arg.(
    value
    & opt (conv_of opt_of_string) Opt.O0
    & info [ "opt"; "O" ] ~docv:"LEVEL"
        ~doc:"Optimization level: O0 (default, reference emission), O1, O2.")

let dump_pass_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-pass" ] ~docv:"NAME"
        ~doc:
          "Print the intermediate representation after the named pipeline \
           pass (desugar, uniquify, fold-const, dce, remove-unused-defs, \
           regalloc, instr-select, jump-opt, lower), then run as usual.")

let obs_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "obs" ] ~docv:"FILE"
        ~doc:
          "Write the run's Coverage Observatory snapshot (frontier \
           attribution, prime-path coverage, tier occupancy) as one JSON \
           object to $(docv).")

let prometheus_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "prometheus" ] ~docv:"FILE"
        ~doc:
          "Write the run's telemetry in the Prometheus text exposition \
           format to $(docv).")

let trace_chrome_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-chrome" ] ~docv:"FILE"
        ~doc:
          "Like $(b,--trace) but in Chrome trace-event format (load in \
           Perfetto or chrome://tracing).")

let main list app detector mode bug fixing selective seed random_input stats
    disasm trace trace_chrome opt dump_pass obs prometheus =
  if list then list_apps ()
  else
    run_one ~app ~detector ~mode ~bug ~fixing ~selective ~seed ~random_input
      ~stats ~disasm ~trace ~trace_chrome ~opt ~dump_pass ~obs ~prometheus

let cmd =
  let doc = "run a workload under a dynamic bug detector with PathExpander" in
  Cmd.v (Cmd.info "pexp" ~doc)
    Term.(
      const main $ list_arg $ app_arg $ detector_arg $ mode_arg $ bug_arg
      $ fixing_arg $ selective_arg $ seed_arg $ random_arg $ stats_arg
      $ disasm_arg $ trace_arg $ trace_chrome_arg $ opt_arg $ dump_pass_arg
      $ obs_arg $ prometheus_arg)

let () = exit (Cmd.eval cmd)

(* Regenerate the paper's tables and figures.

   Usage: experiments [IDS...]            (no arguments: run everything)
          experiments --list
          experiments --jobs 4            (fan runs across a domain pool)
          experiments --telemetry t.json  (write per-run telemetry JSON) *)

let list_ids () =
  List.iter
    (fun e ->
      Printf.printf "%-5s %s\n" e.Runner.id e.Runner.title)
    Runner.all

let experiments_for ids =
  List.map
    (fun id ->
      match Runner.find id with
      | Some e -> e
      | None ->
        Printf.eprintf "unknown experiment '%s' (try --list)\n" id;
        exit 1)
    ids

(* Per-run lines sorted by label (submission order is nondeterministic under
   --jobs > 1), then the cross-run aggregate as the final line. *)
let write_telemetry oc file runs =
  (* labels can collide (the same app/mode under different experiment
     configs), so tie-break on deterministic simulation counters to keep the
     file order independent of submission order *)
  let key t =
    ( Telemetry.label t,
      Telemetry.counter t "engine.total_cycles",
      Telemetry.counter t "taken.insns",
      Telemetry.counter t "engine.spawns" )
  in
  let runs = List.sort (fun a b -> compare (key a) (key b)) runs in
  List.iter (fun t -> output_string oc (Telemetry.to_json t ^ "\n")) runs;
  output_string oc (Telemetry.aggregate_json runs ^ "\n");
  close_out oc;
  Printf.eprintf "telemetry: %d runs -> %s\n%!" (List.length runs) file

open Cmdliner

let ids_arg =
  let doc = "Experiment ids to run (all when omitted)." in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let list_arg =
  let doc = "List the available experiments." in
  Arg.(value & flag & info [ "list" ] ~doc)

let jobs_arg =
  let doc =
    "Number of domains to fan experiments and sweep cells across. With 1 \
     (the default) everything runs serially in this domain; output is \
     byte-identical either way."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let telemetry_arg =
  let doc =
    "Write per-run telemetry to $(docv): one JSON object per run (sorted by \
     label) plus a final aggregate line."
  in
  Arg.(
    value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)

let selective_arg =
  let doc =
    "Run taken paths through the selective fast/slow interpreter split \
     (coverage-preserving selective detection). Output is byte-identical \
     either way; $(b,--selective=false) pins every run to the fully \
     instrumented interpreter, for equivalence checks and timing baselines."
  in
  Arg.(value & opt bool true & info [ "selective" ] ~docv:"BOOL" ~doc)

let opt_arg =
  let doc =
    "Optimization level every sweep compilation uses: O0 (default, the \
     reference emission), O1, or O2. Each level's full-sweep output is \
     itself deterministic (byte-identical serial or under $(b,--jobs)); \
     only O0 matches the committed reference output."
  in
  let parse s =
    match Opt.of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg (Printf.sprintf "unknown optimization level '%s'" s))
  in
  let lvl = Arg.conv (parse, fun fmt _ -> Format.fprintf fmt "<level>") in
  Arg.(value & opt lvl Opt.O0 & info [ "opt"; "O" ] ~docv:"LEVEL" ~doc)

let trace_dir_arg =
  let doc =
    "Capture every run's flight-recorder trace (NT-Path lifecycle events in \
     sim time) and write one JSONL file per run into $(docv). File names and \
     contents are deterministic: byte-identical serial or under $(b,--jobs)."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-dir" ] ~docv:"DIR" ~doc)

let obs_dir_arg =
  let doc =
    "Capture every run's Coverage Observatory snapshot (frontier \
     attribution, prime-path coverage, tier occupancy) and write one JSON \
     file per run into $(docv). File names and contents are deterministic: \
     byte-identical serial or under $(b,--jobs)."
  in
  Arg.(value & opt (some string) None & info [ "obs-dir" ] ~docv:"DIR" ~doc)

let main list jobs telemetry selective opt trace_dir obs_dir ids =
  if list then list_ids ()
  else begin
    Exp_common.set_jobs jobs;
    Pe_config.set_selective_enabled selective;
    Opt.set_default opt;
    let run () =
      match ids with
      | [] -> Runner.run_all ()
      | ids -> Runner.run_list (experiments_for ids)
    in
    (* Trace capture wraps the sweep (innermost) so it composes with
       --telemetry; each finished run submits an immutable event dump. *)
    let run () =
      match trace_dir with
      | None -> run ()
      | Some dir ->
        let v, dumps = Recorder.capture_runs run in
        let files = Recorder.save_dir ~dir dumps in
        Printf.eprintf "traces: %d runs -> %s\n%!" (List.length files) dir;
        v
    in
    (* Observatory capture composes the same way; it also arms the engine's
       per-run attribution bookkeeping for the duration of the sweep. *)
    let run () =
      match obs_dir with
      | None -> run ()
      | Some dir ->
        let v, snaps = Obs.capture_runs run in
        let files = Obs.save_dir ~dir snaps in
        Printf.eprintf "obs: %d runs -> %s\n%!" (List.length files) dir;
        v
    in
    match telemetry with
    | None -> run ()
    | Some file ->
      (* open before the (possibly minutes-long) sweep so a bad path fails
         fast instead of discarding finished runs *)
      let oc =
        try open_out file
        with Sys_error msg ->
          Printf.eprintf "cannot open telemetry file: %s\n" msg;
          exit 1
      in
      let (), runs = Telemetry.collect_runs run in
      write_telemetry oc file runs
  end

let cmd =
  let doc = "regenerate the PathExpander paper's tables and figures" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info
    Term.(
      const main $ list_arg $ jobs_arg $ telemetry_arg $ selective_arg
      $ opt_arg $ trace_dir_arg $ obs_dir_arg $ ids_arg)

let () = exit (Cmd.eval cmd)

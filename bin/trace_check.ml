(* trace_check — validate flight-recorder JSONL traces and Coverage
   Observatory JSON snapshots.

   Usage: trace_check FILE.jsonl ...     (validate each trace file)
          trace_check FILE.json ...      (validate each obs snapshot)
          trace_check DIR                (validate every *.jsonl / *.json inside)

   Traces: every line must parse as a complete JSON object; the first line
   must be a meta record with the known schema version; every following line
   must be an event with a recognised "type".

   Obs snapshots: the document must carry the known schema version, every
   required section, only recognised frontier causes, and internally
   consistent counts (frontier length = uncovered edge count = cause total).

   Exit status is non-zero on any failure, so CI can gate on captured
   artifacts being well-formed. *)

let known_types =
  [ "spawn"; "terminate"; "commit"; "squash"; "bug"; "counter_reset" ]

let fail file line msg =
  Printf.eprintf "%s:%d: %s\n" file line msg;
  false

let check_line file lineno ~first line =
  match Jsonu.parse line with
  | Error msg -> fail file lineno ("invalid JSON: " ^ msg)
  | Ok v ->
    (match Jsonu.member "type" v with
     | Some (Jsonu.Str ty) ->
       if first then
         if ty <> "meta" then
           fail file lineno ("first line must be meta, got " ^ ty)
         else begin
           match Jsonu.member "schema" v with
           | Some (Jsonu.Num n)
             when int_of_float n = Recorder.jsonl_schema_version ->
             true
           | Some _ | None ->
             fail file lineno
               (Printf.sprintf "meta line must carry schema %d"
                  Recorder.jsonl_schema_version)
         end
       else if List.mem ty known_types then true
       else fail file lineno ("unknown event type " ^ ty)
     | Some _ -> fail file lineno "\"type\" must be a string"
     | None -> fail file lineno "missing \"type\" field")

let check_file file =
  let ic = open_in file in
  let ok = ref true in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if not (check_line file !lineno ~first:(!lineno = 1) line) then
         ok := false
     done
   with End_of_file -> ());
  close_in ic;
  if !lineno = 0 then ok := fail file 0 "empty trace";
  if !ok then
    Printf.printf "%s: ok (%d lines)\n" file !lineno;
  !ok

(* ---- Obs snapshot validation -------------------------------------------- *)

(* Fixed causes, plus the [nt-terminated:<termination>] family. *)
let known_causes =
  [ "site-unreached"; "spawn-budget"; "no-spawning"; "spawn-threshold";
    "nt-unattributed" ]

let known_cause c =
  List.mem c known_causes
  ||
  let pre = "nt-terminated:" in
  String.length c > String.length pre
  && String.sub c 0 (String.length pre) = pre

let int_member name v =
  match Jsonu.member name v with
  | Some (Jsonu.Num n) when Float.is_integer n -> Some (int_of_float n)
  | _ -> None

let check_obs_file file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let err msg = fail file 1 msg in
  match Jsonu.parse (String.trim text) with
  | Error msg -> err ("invalid JSON: " ^ msg)
  | Ok v ->
    let ok = ref true in
    let require b msg = if not b then ok := err msg in
    require
      (int_member "schema" v = Some Obs.schema_version)
      (Printf.sprintf "snapshot must carry schema %d" Obs.schema_version);
    List.iter
      (fun section ->
        require (Jsonu.member section v <> None) ("missing section " ^ section))
      [ "label"; "mode"; "outcome"; "edges"; "frontier"; "frontier_causes";
        "prime_paths"; "spawns"; "tiers"; "cache"; "btb" ];
    (match Jsonu.member "edges" v, Jsonu.member "frontier" v with
     | Some edges, Some (Jsonu.Arr frontier) ->
       (match int_member "universe" edges, int_member "combined" edges with
        | Some universe, Some combined ->
          require
            (universe - combined = List.length frontier)
            (Printf.sprintf
               "frontier length %d does not match universe %d - combined %d"
               (List.length frontier) universe combined)
        | _ -> ok := err "edges must carry integer universe/combined");
       List.iter
         (fun entry ->
           List.iter
             (fun f ->
               require (Jsonu.member f entry <> None)
                 ("frontier entry missing " ^ f))
             [ "pc"; "dir"; "line"; "func"; "cause" ];
           match Jsonu.member "cause" entry with
           | Some (Jsonu.Str c) ->
             require (known_cause c) ("unknown frontier cause " ^ c)
           | _ -> ok := err "frontier cause must be a string")
         frontier;
       (match Jsonu.member "frontier_causes" v with
        | Some (Jsonu.Obj causes) ->
          List.iter
            (fun (c, _) ->
              require (known_cause c) ("unknown frontier cause " ^ c))
            causes;
          let total =
            List.fold_left
              (fun acc (_, n) ->
                match n with Jsonu.Num n -> acc + int_of_float n | _ -> acc)
              0 causes
          in
          require
            (total = List.length frontier)
            (Printf.sprintf "cause total %d does not match frontier length %d"
               total (List.length frontier))
        | _ -> ok := err "frontier_causes must be an object")
     | _ -> ok := err "edges/frontier malformed");
    (match Jsonu.member "prime_paths" v with
     | Some pp ->
       (match int_member "enumerated" pp, int_member "covered" pp with
        | Some e, Some c ->
          require (0 <= c && c <= e)
            (Printf.sprintf "prime-path covered %d out of range 0..%d" c e)
        | _ -> ok := err "prime_paths must carry integer enumerated/covered")
     | None -> ());
    if !ok then Printf.printf "%s: ok (obs snapshot)\n" file;
    !ok

let artifact_files_of_dir dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         Filename.check_suffix f ".jsonl" || Filename.check_suffix f ".json")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then begin
    prerr_endline
      "usage: trace_check FILE.jsonl|FILE.json ... | trace_check DIR";
    exit 2
  end;
  let files =
    List.concat_map
      (fun a ->
        if Sys.is_directory a then
          match artifact_files_of_dir a with
          | [] ->
            Printf.eprintf "%s: no .jsonl or .json files\n" a;
            exit 1
          | fs -> fs
        else [ a ])
      args
  in
  let ok =
    List.for_all
      (fun f ->
        if Filename.check_suffix f ".json" then check_obs_file f
        else check_file f)
      files
  in
  exit (if ok then 0 else 1)

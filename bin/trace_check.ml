(* trace_check — validate flight-recorder JSONL traces.

   Usage: trace_check FILE.jsonl ...     (validate each file)
          trace_check DIR                (validate every *.jsonl inside)

   Every line must parse as a complete JSON object; the first line must be a
   meta record with the known schema version; every following line must be an
   event with a recognised "type". Exit status is non-zero on any failure,
   so CI can gate on captured traces being well-formed. *)

let known_types =
  [ "spawn"; "terminate"; "commit"; "squash"; "bug"; "counter_reset" ]

let fail file line msg =
  Printf.eprintf "%s:%d: %s\n" file line msg;
  false

let check_line file lineno ~first line =
  match Jsonu.parse line with
  | Error msg -> fail file lineno ("invalid JSON: " ^ msg)
  | Ok v ->
    (match Jsonu.member "type" v with
     | Some (Jsonu.Str ty) ->
       if first then
         if ty <> "meta" then
           fail file lineno ("first line must be meta, got " ^ ty)
         else begin
           match Jsonu.member "schema" v with
           | Some (Jsonu.Num n)
             when int_of_float n = Recorder.jsonl_schema_version ->
             true
           | Some _ | None ->
             fail file lineno
               (Printf.sprintf "meta line must carry schema %d"
                  Recorder.jsonl_schema_version)
         end
       else if List.mem ty known_types then true
       else fail file lineno ("unknown event type " ^ ty)
     | Some _ -> fail file lineno "\"type\" must be a string"
     | None -> fail file lineno "missing \"type\" field")

let check_file file =
  let ic = open_in file in
  let ok = ref true in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if not (check_line file !lineno ~first:(!lineno = 1) line) then
         ok := false
     done
   with End_of_file -> ());
  close_in ic;
  if !lineno = 0 then ok := fail file 0 "empty trace";
  if !ok then
    Printf.printf "%s: ok (%d lines)\n" file !lineno;
  !ok

let jsonl_files_of_dir dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then begin
    prerr_endline "usage: trace_check FILE.jsonl ... | trace_check DIR";
    exit 2
  end;
  let files =
    List.concat_map
      (fun a ->
        if Sys.is_directory a then
          match jsonl_files_of_dir a with
          | [] ->
            Printf.eprintf "%s: no .jsonl files\n" a;
            exit 1
          | fs -> fs
        else [ a ])
      args
  in
  let ok = List.for_all check_file files in
  exit (if ok then 0 else 1)

examples/buffer_overrun_hunt.ml: Analysis Array Codegen Compile Coverage Engine List Machine Pe_config Pin_model Printf Program Registry Report Site Soft_engine Workload

examples/custom_detector.ml: Compile Coverage Engine List Machine Option Printf Program Report Watchpoints

examples/cmp_speedup.mli:

examples/assertion_free_hunt.ml: Compile Diduce Engine List Machine Pe_config Printf Registry Workload

examples/quickstart.mli:

examples/cmp_speedup.ml: Compile Coverage Engine List Machine Pe_config Pin_model Printf Registry Soft_engine Workload

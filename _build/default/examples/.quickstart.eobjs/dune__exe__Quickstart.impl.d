examples/quickstart.ml: Array Codegen Compile Coverage Engine List Machine Pe_config Printf Program Report Site

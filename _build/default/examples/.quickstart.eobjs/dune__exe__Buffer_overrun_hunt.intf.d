examples/buffer_overrun_hunt.mli:

examples/assertion_free_hunt.mli:

(* Quickstart: compile a MiniC program with a bug on a rarely-taken path,
   monitor it with the CCured-style checker, and watch PathExpander expose
   the bug that the plain monitored run misses.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
int totals[8];

void record(int slot, int value) {
  // the 'overflow' slot is only used for values >= 1000, which this
  // program's inputs never produce -- a classic non-taken path
  if (value >= 1000) {
    totals[slot + 8] = value;   // BUG: slot + 8 overruns totals[8]
  } else {
    totals[slot] = totals[slot] + value;
  }
}

int main() {
  int i;
  for (i = 0; i < 40; i = i + 1) {
    record(i % 8, i * 3);
  }
  print_str("done");
  print_nl();
  return 0;
}
|}

let run_once mode =
  (* 1. compile with the CCured-style detector and the consistency-fixing
        pass (the PathExpander compiler support) *)
  let options = { Codegen.detector = Codegen.Ccured; fixing = true } in
  let compiled = Compile.compile ~options source in
  (* 2. load it into a simulated machine *)
  let machine = Machine.create compiled.Compile.program in
  (* 3. execute under the chosen PathExpander mode *)
  let config = { Pe_config.default with Pe_config.mode } in
  let result = Engine.run ~config machine in
  (compiled, machine, result)

let () =
  print_endline "--- baseline monitored run (no PathExpander) ---";
  let _, machine, result = run_once Pe_config.Baseline in
  Printf.printf "program output: %s" (Machine.output machine);
  Printf.printf "coverage: %.1f%%, detector reports: %d\n\n"
    (Coverage.taken_pct result.Engine.coverage)
    (Report.count machine.Machine.reports);

  print_endline "--- the same run with PathExpander (standard config) ---";
  let compiled, machine, result = run_once Pe_config.Standard in
  Printf.printf "program output: %s" (Machine.output machine);
  Printf.printf "coverage: %.1f%% -> %.1f%%, NT-Paths explored: %d\n"
    (Coverage.taken_pct result.Engine.coverage)
    (Coverage.combined_pct result.Engine.coverage)
    result.Engine.spawns;
  List.iter
    (fun id ->
      Printf.printf "detector found: %s\n"
        (Site.to_string compiled.Compile.program.Program.sites.(id)))
    (Report.distinct_sites machine.Machine.reports);
  print_endline
    "\nThe overrun lives on the value >= 1000 edge, which the input never\n\
     takes; PathExpander forced that edge in a sandbox and the bounds check\n\
     caught the overrun without the program's output changing at all."

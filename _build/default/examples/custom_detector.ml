(* Building your own dynamic checker on the PathExpander substrate.

   The paper stresses that PathExpander is detector-agnostic: anything that
   files reports benefits from the extra path coverage. This example builds
   a small "canary" detector directly against the library API — it places
   hardware watchpoints over a security-sensitive global (a permissions
   table) and flags any code path that writes to it, then lets PathExpander
   search the non-taken paths for such writers.

   Run with: dune exec examples/custom_detector.exe *)

let source =
  {|
int perm_table[4] = {1, 0, 0, 1};   //@tag perm_table
int audit_mode = 0;

int check_access(int user) {
  return perm_table[user % 4];
}

void maintenance(int user) {
  // the dangerous path: only reachable in audit mode, which is never
  // enabled by production inputs
  if (audit_mode == 1) {
    perm_table[user % 4] = 1;       //@tag privilege_escalation
  }
}

int main() {
  int granted = 0;
  int user;
  for (user = 0; user < 16; user = user + 1) {
    maintenance(user);
    granted = granted + check_access(user);
  }
  print_int(granted);
  print_nl();
  return 0;
}
|}

(* The custom detector: a write-only watchpoint over every word of a named
   global, resolved through the program image's symbol table. This is the
   same hardware unit the iWatcher detector drives from the compiler, used
   here directly from library code. *)
let install_canary compiled machine ~array_name ~words =
  let program = compiled.Compile.program in
  match Program.global_address program array_name with
  | None -> invalid_arg (array_name ^ " is not a global")
  | Some lo ->
    ignore
      (Watchpoints.watch ~mode:Watchpoints.Watch_write machine.Machine.watch
         ~lo ~hi:(lo + words) ~site:0)

let () =
  let compiled = Compile.compile source in
  let machine = Machine.create compiled.Compile.program in
  install_canary compiled machine ~array_name:"perm_table" ~words:4;
  let result = Engine.run machine in
  Printf.printf "program output: %s" (Machine.output machine);
  Printf.printf "coverage %.1f%% -> %.1f%% over %d NT-Paths\n"
    (Coverage.taken_pct result.Engine.coverage)
    (Coverage.combined_pct result.Engine.coverage)
    result.Engine.spawns;
  let writers =
    List.filter_map
      (fun (e : Report.entry) ->
        match e.Report.origin with
        | Report.Nt_path _ ->
          Some
            (Printf.sprintf
               "NT-Path write to the permissions table from pc %d (%s, line %d)"
               e.Report.pc
               (Option.value ~default:"?"
                  (Program.function_of_pc compiled.Compile.program e.Report.pc))
               (Program.line_of_pc compiled.Compile.program e.Report.pc))
        | Report.Taken_path -> None)
      (Report.entries machine.Machine.reports)
  in
  (match writers with
   | [] -> print_endline "no hidden writers of the permissions table found"
   | w :: _ ->
     Printf.printf "CANARY: %s\n" w;
     Printf.printf "(%d canary hits in total)\n"
       (List.length writers));
  print_endline
    "\nThe write sits behind 'audit_mode == 1', which no production input\n\
     enables; only the forced non-taken path reveals that maintenance()\n\
     can rewrite the permissions table."

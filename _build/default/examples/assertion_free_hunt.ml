(* Hunting bugs with no assertions, no bounds checks and no watchpoints:
   train the DIDUCE-style invariant monitor on one clean run, then let
   PathExpander walk the non-taken paths and watch for stores that smash
   global state outside its learned range.

   The schedule2 workload's v3 bug corrupts a ring counter inside the flush
   handler — a path the input never takes and the program never asserts
   anything about.

   Run with: dune exec examples/assertion_free_hunt.exe *)

let () =
  let workload = Registry.schedule2 in
  (* note: No_detector — the binary carries no checks at all *)
  let compiled = Workload.compile ~bug:3 workload in
  let detector = Diduce.create compiled.Compile.program in

  print_endline "phase 1: training the invariant monitor on a baseline run";
  let machine =
    Machine.create ~input:workload.Workload.default_input compiled.Compile.program
  in
  Diduce.attach detector machine;
  ignore (Engine.run ~config:Pe_config.baseline machine);

  print_endline "phase 2: monitoring the same input under PathExpander\n";
  Diduce.start_monitoring detector;
  let machine =
    Machine.create ~input:workload.Workload.default_input compiled.Compile.program
  in
  Diduce.attach detector machine;
  let result = Engine.run ~config:(Workload.pe_config workload) machine in
  Printf.printf "%d NT-Paths explored; %d invariant violations observed\n"
    result.Engine.spawns
    (List.length (Diduce.violations detector));

  (* rank by surprise: forced-path churn scores low, real smashes high *)
  let ranked =
    List.sort
      (fun (a : Diduce.violation) b -> compare b.Diduce.surprise a.Diduce.surprise)
      (Diduce.nt_path_violations detector)
  in
  print_endline "top anomalies (by surprise factor):";
  List.iteri
    (fun i (v : Diduce.violation) ->
      if i < 5 then
        Printf.printf
          "  %-12s value %d outside trained [%d, %d] (surprise %dx)\n"
          v.Diduce.name v.Diduce.value v.Diduce.trained_lo v.Diduce.trained_hi
          v.Diduce.surprise)
    ranked;
  match ranked with
  | top :: _ when top.Diduce.surprise > 10 ->
    Printf.printf
      "\nThe '%s' smash is the planted flush bug: no assertion exists for it,\n\
       yet the trained invariants plus PathExpander's forced paths expose it.\n"
      top.Diduce.name
  | _ -> print_endline "\nno high-surprise anomaly found"

(* The cost of exploring non-taken paths, across the three execution modes:
   baseline (no exploration), the standard checkpoint-and-rollback
   configuration (NT-Paths serialised on the primary core), and the CMP
   optimisation (NT-Paths on the idle cores of the 4-core chip). The
   software implementation is shown last for contrast.

   Run with: dune exec examples/cmp_speedup.exe *)

let show (workload : Workload.t) =
  Printf.printf "\n== %s ==\n" workload.Workload.name;
  let compiled = Workload.compile workload in
  let fresh () =
    Machine.create ~input:workload.Workload.default_input compiled.Compile.program
  in
  let cycles mode =
    let result = Engine.run ~config:(Workload.pe_config ~mode workload) (fresh ()) in
    (result.Engine.total_cycles, result.Engine.spawns,
     Coverage.combined_pct result.Engine.coverage)
  in
  let base, _, base_cov = cycles Pe_config.Baseline in
  let std, spawns, cov = cycles Pe_config.Standard in
  let cmp, _, _ = cycles Pe_config.Cmp in
  let pct v = 100.0 *. float_of_int (v - base) /. float_of_int base in
  Printf.printf "baseline:  %9d cycles (coverage %.1f%%)\n" base base_cov;
  Printf.printf "standard:  %9d cycles (+%.1f%%, %d NT-Paths, coverage %.1f%%)\n"
    std (pct std) spawns cov;
  Printf.printf "CMP:       %9d cycles (+%.1f%%) <- idle cores absorb the NT-Paths\n"
    cmp (pct cmp);
  let sw = Soft_engine.run ~config:(Workload.pe_config workload) (fresh ()) in
  Printf.printf "software:  %.0fx slowdown (PIN-style instrumentation)\n"
    sw.Soft_engine.accounting.Pin_model.slowdown

let () =
  List.iter show [ Registry.gzip; Registry.go; Registry.print_tokens ]

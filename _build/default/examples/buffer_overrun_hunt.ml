(* The paper's Figure 1 scenario, end to end: print_tokens2 version 10 has a
   buffer overrun that triggers only when a token starts with a quotation
   mark and has no closing quote. We feed the program a perfectly ordinary
   input and compare what each dynamic checker sees with and without
   PathExpander, including the software implementation.

   Run with: dune exec examples/buffer_overrun_hunt.exe *)

let workload = Registry.print_tokens2
let bug = Workload.find_bug workload 10

let hunt detector =
  Printf.printf "\n== detector: %s ==\n" (Codegen.detector_name detector);
  let compiled = Workload.compile ~detector ~bug:10 workload in
  let fresh () =
    Machine.create ~input:workload.Workload.default_input compiled.Compile.program
  in
  (* baseline monitored run *)
  let machine = fresh () in
  let baseline =
    Engine.run ~config:(Workload.pe_config ~mode:Pe_config.Baseline workload) machine
  in
  let found = Analysis.analyze ~compiled ~machine ~bug in
  Printf.printf "baseline:      coverage %5.1f%%, bug detected: %b\n"
    (Coverage.taken_pct baseline.Engine.coverage)
    (Analysis.detected found);
  (* hardware PathExpander *)
  let machine = fresh () in
  let pe = Engine.run ~config:(Workload.pe_config workload) machine in
  let found = Analysis.analyze ~compiled ~machine ~bug in
  Printf.printf "PathExpander:  coverage %5.1f%%, bug detected: %b (%d NT-Paths)\n"
    (Coverage.combined_pct pe.Engine.coverage)
    (Analysis.detected found) pe.Engine.spawns;
  (* where exactly was it caught? *)
  List.iter
    (fun (entry : Report.entry) ->
      match entry.Report.origin with
      | Report.Nt_path id ->
        let site = compiled.Compile.program.Program.sites.(entry.Report.site) in
        Printf.printf "  NT-Path %d fired %s\n" id (Site.to_string site)
      | Report.Taken_path -> ())
    (List.filteri (fun i _ -> i < 3) (Report.entries machine.Machine.reports))

let software_run () =
  print_endline "\n== software PathExpander (PIN-style) on the same bug ==";
  let compiled = Workload.compile ~detector:Codegen.Ccured ~bug:10 workload in
  let machine =
    Machine.create ~input:workload.Workload.default_input compiled.Compile.program
  in
  let sw = Soft_engine.run ~config:(Workload.pe_config workload) machine in
  let found = Analysis.analyze ~compiled ~machine ~bug in
  Printf.printf
    "bug detected: %b -- but at a modelled slowdown of %.0fx over the native\n\
     run (the hardware design exists to avoid exactly this cost)\n"
    (Analysis.detected found) sw.Soft_engine.accounting.Pin_model.slowdown

let () =
  Printf.printf "input fed to print_tokens2: %s"
    workload.Workload.default_input;
  hunt Codegen.Ccured;
  hunt Codegen.Iwatcher;
  software_run ()

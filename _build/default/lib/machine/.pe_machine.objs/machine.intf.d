lib/machine/machine.mli: Btb Cache Context Io Machine_config Memory Program Report Watchpoints

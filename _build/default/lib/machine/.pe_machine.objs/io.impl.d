lib/machine/io.ml: Buffer Char String

lib/machine/machine.ml: Array Btb Cache Context Io Machine_config Memory Program Report Watchpoints

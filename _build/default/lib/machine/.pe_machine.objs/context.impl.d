lib/machine/context.ml: Array Cache Hashtbl List Memory Reg Watchpoints

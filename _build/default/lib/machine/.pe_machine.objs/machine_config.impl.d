lib/machine/machine_config.ml: Printf

lib/machine/report.ml: Int List Set

lib/machine/btb.ml: Array

lib/machine/machine_config.mli:

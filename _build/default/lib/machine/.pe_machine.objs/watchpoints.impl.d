lib/machine/watchpoints.ml: List

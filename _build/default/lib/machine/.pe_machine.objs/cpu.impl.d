lib/machine/cpu.ml: Array Cache Context Insn Io List Machine Memory Printf Program Reg Report Watchpoints

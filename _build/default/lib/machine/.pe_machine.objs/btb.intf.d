lib/machine/btb.mli:

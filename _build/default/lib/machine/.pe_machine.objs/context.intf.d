lib/machine/context.mli: Cache Memory Reg Watchpoints

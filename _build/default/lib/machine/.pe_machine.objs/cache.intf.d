lib/machine/cache.mli:

lib/machine/io.mli:

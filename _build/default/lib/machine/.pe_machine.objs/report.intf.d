lib/machine/report.mli:

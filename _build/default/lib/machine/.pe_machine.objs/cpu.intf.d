lib/machine/cpu.mli: Context Insn Machine Memory

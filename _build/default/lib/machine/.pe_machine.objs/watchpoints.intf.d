lib/machine/watchpoints.mli:

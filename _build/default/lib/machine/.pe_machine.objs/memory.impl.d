lib/machine/memory.ml: Array List Printf Program

lib/machine/cache.ml: Array Machine_config

lib/machine/memory.mli:

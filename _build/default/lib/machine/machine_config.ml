type t = {
  cores : int;
  cpu_ghz : float;
  issue_width : int;
  l1_size_kb : int;
  l1_assoc : int;
  line_bytes : int;
  l1_latency_cmp : int;
  l1_latency : int;
  l2_size_kb : int;
  l2_assoc : int;
  l2_latency : int;
  mem_latency : int;
  btb_entries : int;
  btb_assoc : int;
  squash_cycles : int;
  spawn_cycles : int;
  heap_words : int;
  stack_words : int;
}

(* Table 2 of the paper. *)
let default =
  {
    cores = 4;
    cpu_ghz = 2.4;
    issue_width = 4;
    l1_size_kb = 16;
    l1_assoc = 4;
    line_bytes = 32;
    l1_latency_cmp = 3;
    l1_latency = 2;
    l2_size_kb = 1024;
    l2_assoc = 8;
    l2_latency = 10;
    mem_latency = 200;
    btb_entries = 2048;
    btb_assoc = 2;
    squash_cycles = 10;
    spawn_cycles = 20;
    heap_words = 1 lsl 20;
    stack_words = 1 lsl 18;
  }

let word_bytes = 4

let words_per_line config = config.line_bytes / word_bytes

let l1_lines config = config.l1_size_kb * 1024 / config.line_bytes

let to_rows config =
  [
    [ "CPU frequency"; Printf.sprintf "%.1fGHz" config.cpu_ghz ];
    [ "Cores (CMP option)"; string_of_int config.cores ];
    [ "Fetch, Issue, Retire widths"; Printf.sprintf "6, %d, 4" config.issue_width ];
    [
      "L1 cache";
      Printf.sprintf "%dKB, %d-way, %dB/line, %d cycles (%d non-CMP)"
        config.l1_size_kb config.l1_assoc config.line_bytes
        config.l1_latency_cmp config.l1_latency;
    ];
    [
      "L2 cache";
      Printf.sprintf "%dMB, %d-way, %dB/line, %d cycles"
        (config.l2_size_kb / 1024) config.l2_assoc config.line_bytes
        config.l2_latency;
    ];
    [ "Memory"; Printf.sprintf "%d cycles latency" config.mem_latency ];
    [
      "BTB";
      Printf.sprintf "%dK, %d way" (config.btb_entries / 1024) config.btb_assoc;
    ];
    [ "Squash overhead"; Printf.sprintf "%d cycles" config.squash_cycles ];
    [ "Spawn overhead"; Printf.sprintf "%d cycles" config.spawn_cycles ];
  ]

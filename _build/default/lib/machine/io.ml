type t = {
  input : string;
  mutable input_pos : int;
  output : Buffer.t;
  mutable exit_status : int option;
}

let create ?(input = "") () =
  { input; input_pos = 0; output = Buffer.create 256; exit_status = None }

let input_pos io = io.input_pos

(* Read the character at an explicit cursor without consuming global input:
   the sandboxed-getc mechanism of the OS-support extension. *)
let peek_at io pos =
  if pos >= String.length io.input then -1 else Char.code io.input.[pos]

let getc io =
  if io.input_pos >= String.length io.input then -1
  else begin
    let c = Char.code io.input.[io.input_pos] in
    io.input_pos <- io.input_pos + 1;
    c
  end

let putc io c = Buffer.add_char io.output (Char.chr (c land 0xff))

let print_int io n = Buffer.add_string io.output (string_of_int n)

let output io = Buffer.contents io.output

let set_exit io status = io.exit_status <- Some status

let exit_status io = io.exit_status

(** Program input and output channels.

    Input is a fixed string consumed by [Sys_getc]; output accumulates in a
    buffer. All I/O happens through syscalls, which are unsafe events — an
    NT-Path terminates *before* performing one, so NT-Paths can never consume
    input or emit output. *)

type t

val create : ?input:string -> unit -> t

(** Current global input cursor. *)
val input_pos : t -> int

(** Character at an explicit cursor, without consuming input (used to
    virtualise [getc] inside a sandboxed NT-Path). *)
val peek_at : t -> int -> int

(** Next input character code, or -1 at end of input. *)
val getc : t -> int

val putc : t -> int -> unit
val print_int : t -> int -> unit

(** Everything the program printed so far. *)
val output : t -> string

val set_exit : t -> int -> unit
val exit_status : t -> int option

(** Simulated architecture parameters (Table 2 of the paper).

    The simulator is instruction-level with an analytic cycle model: every
    retired instruction costs one cycle, memory instructions additionally pay
    the latency of the level that services them, NT-Path squash costs
    [squash_cycles] and NT-Path spawn costs [spawn_cycles]. Pipeline widths
    are recorded for documentation (they cancel out of every ratio the paper
    reports). *)

type t = {
  cores : int;
  cpu_ghz : float;
  issue_width : int;
  l1_size_kb : int;
  l1_assoc : int;
  line_bytes : int;
  l1_latency_cmp : int;  (** L1 latency with the CMP option (3 cycles) *)
  l1_latency : int;  (** L1 latency in the standard configuration (2) *)
  l2_size_kb : int;
  l2_assoc : int;
  l2_latency : int;
  mem_latency : int;
  btb_entries : int;
  btb_assoc : int;
  squash_cycles : int;
  spawn_cycles : int;
  heap_words : int;  (** simulated heap segment size *)
  stack_words : int;  (** simulated stack segment size *)
}

(** Exactly Table 2. *)
val default : t

(** Bytes per simulated word (4; the machine is word-addressed). *)
val word_bytes : int

val words_per_line : t -> int

(** Number of L1 lines; bounds how many distinct lines an NT-Path may dirty
    before it must be squashed (cache-overflow termination). *)
val l1_lines : t -> int

(** Rows for rendering Table 2. *)
val to_rows : t -> string list list

type stats = {
  mutable insns : int;
  mutable cycles : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
}

let fresh_stats () = { insns = 0; cycles = 0; loads = 0; stores = 0; branches = 0 }

(* Two sandboxing mechanisms:
   - [Overlay]: the hardware scheme — writes buffered in versioned L1 lines,
     discarded at squash; bounded by the L1's line capacity.
   - [Write_log]: the software scheme (PIN-based PathExpander) — writes go
     straight to memory while an undo log records the old values, replayed
     backwards at squash. Unbounded, but every write pays logging work. *)
type sandbox_kind =
  | Overlay of {
      overlay : (int, int) Hashtbl.t;
      dirty_lines : (int, unit) Hashtbl.t;
      line_limit : int;
      words_per_line : int;
    }
  | Write_log of { mutable log : (int * int) list; mutable log_size : int }

type sandbox = {
  kind : sandbox_kind;
  mutable watch_journal : Watchpoints.journal_entry list;
  path_id : int;
}

type t = {
  regs : int array;
  mutable pc : int;
  mutable pred : bool;
  mutable in_pred_fix : bool;
      (* currently executing a predicated consistency-fix instruction:
         its stores are PathExpander's, not the program's *)
  mutable sandbox : sandbox option;
  stats : stats;
  l1 : Cache.t;
}

type checkpoint = { saved_regs : int array; saved_pc : int; saved_pred : bool }

let create ~l1 ~pc ~sp =
  let regs = Array.make Reg.count 0 in
  regs.(Reg.sp) <- sp;
  regs.(Reg.fp) <- sp;
  {
    regs;
    pc;
    pred = false;
    in_pred_fix = false;
    sandbox = None;
    stats = fresh_stats ();
    l1;
  }

let get_reg ctx r = if r = Reg.zero then 0 else ctx.regs.(r)

let set_reg ctx r v = if r <> Reg.zero then ctx.regs.(r) <- v

let checkpoint ctx =
  { saved_regs = Array.copy ctx.regs; saved_pc = ctx.pc; saved_pred = ctx.pred }

let restore ctx cp =
  Array.blit cp.saved_regs 0 ctx.regs 0 Reg.count;
  ctx.pc <- cp.saved_pc;
  ctx.pred <- cp.saved_pred

let make_sandbox ~path_id ~line_limit ~words_per_line =
  {
    kind =
      Overlay
        {
          overlay = Hashtbl.create 64;
          dirty_lines = Hashtbl.create 16;
          line_limit;
          words_per_line;
        };
    path_id;
    watch_journal = [];
  }

let make_write_log_sandbox ~path_id =
  { kind = Write_log { log = []; log_size = 0 }; path_id; watch_journal = [] }

let enter_sandbox ctx sandbox = ctx.sandbox <- Some sandbox

let exit_sandbox ctx = ctx.sandbox <- None

let is_sandboxed ctx = ctx.sandbox <> None

let path_id ctx =
  match ctx.sandbox with Some sb -> sb.path_id | None -> Cache.committed_owner

(* A sandboxed read sees the path's own buffered version first. *)
let sandbox_read sandbox mem addr =
  match sandbox.kind with
  | Overlay o ->
    (match Hashtbl.find_opt o.overlay addr with
     | Some v -> v
     | None -> Memory.read mem addr)
  | Write_log _ -> Memory.read mem addr

(* A sandboxed write; returns [false] when an overlay write pushed the path
   past its L1 buffering capacity (overflow => the path must squash). *)
let sandbox_write sandbox mem addr v =
  match sandbox.kind with
  | Overlay o ->
    Memory.check mem addr;
    Hashtbl.replace o.overlay addr v;
    let line = addr / o.words_per_line in
    if not (Hashtbl.mem o.dirty_lines line) then
      Hashtbl.replace o.dirty_lines line ();
    Hashtbl.length o.dirty_lines <= o.line_limit
  | Write_log wl ->
    let old = Memory.read mem addr in
    wl.log <- (addr, old) :: wl.log;
    wl.log_size <- wl.log_size + 1;
    Memory.write mem addr v;
    true

let read_mem ctx mem addr =
  match ctx.sandbox with
  | Some sb -> sandbox_read sb mem addr
  | None -> Memory.read mem addr

let dirty_line_count sandbox =
  match sandbox.kind with
  | Overlay o -> Hashtbl.length o.dirty_lines
  | Write_log _ -> 0

let write_log_size sandbox =
  match sandbox.kind with
  | Overlay _ -> 0
  | Write_log wl -> wl.log_size

(* Undo a write-log sandbox: replay the restore-log backwards. *)
let rollback_write_log sandbox mem =
  match sandbox.kind with
  | Overlay _ -> ()
  | Write_log wl ->
    List.iter (fun (addr, old) -> Memory.write mem addr old) wl.log;
    wl.log <- [];
    wl.log_size <- 0

(* Commit a sandbox's buffered writes to architectural memory (used only by
   taken-path segments in the CMP engine; NT-Paths are always discarded). *)
let commit_sandbox sandbox mem =
  match sandbox.kind with
  | Overlay o -> Hashtbl.iter (fun addr v -> Memory.write mem addr v) o.overlay
  | Write_log _ -> ()

let journal_watch sandbox entry =
  sandbox.watch_journal <- entry :: sandbox.watch_journal

let undo_watches sandbox watch_unit =
  List.iter (Watchpoints.undo watch_unit) sandbox.watch_journal;
  sandbox.watch_journal <- []

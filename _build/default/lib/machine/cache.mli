(** Set-associative LRU cache model with versioned lines.

    Used for timing (hit/miss latency accounting) and for the paper's
    L1-based NT-Path sandboxing: lines written by an NT-Path carry that
    path's ID as a version tag (the standard configuration's 1-bit Vtag is
    the two-ID special case); squashing a path gang-invalidates its lines and
    committing a taken-path segment lazily retags them as committed. *)

type t

type outcome = Hit | Miss

(** Version tag of committed (architectural) data: 0. *)
val committed_owner : int

val create : size_kb:int -> assoc:int -> line_bytes:int -> t

(** [access ?owner ?allocate cache addr] touches the line holding word
    [addr], filling it on a miss unless [allocate] is [false] (speculative
    paths probe the shared L2 without installing lines); [owner], when
    given, version-tags the line. *)
val access : ?owner:int -> ?allocate:bool -> t -> int -> outcome

(** Invalidate all lines version-tagged [owner]; returns how many. *)
val gang_invalidate : t -> owner:int -> int

(** Retag all lines of [owner] as committed; returns how many. *)
val commit_owner : t -> owner:int -> int

val owned_lines : t -> owner:int -> int

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit

(** Invalidate everything and reset statistics. *)
val clear : t -> unit

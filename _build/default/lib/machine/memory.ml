type t = {
  words : int array;
  globals_end : int;
  heap_base : int;
  heap_end : int;
  stack_limit : int;
  stack_base : int;
}

type fault = Null_access | Out_of_range of int

exception Fault of fault

let null_guard = Program.null_guard_words

let create ~globals_words ~heap_words ~stack_words =
  let globals_end = null_guard + globals_words in
  let heap_base = globals_end in
  let heap_end = heap_base + heap_words in
  let stack_limit = heap_end in
  let stack_base = stack_limit + stack_words in
  {
    words = Array.make stack_base 0;
    globals_end;
    heap_base;
    heap_end;
    stack_limit;
    stack_base;
  }

let size mem = Array.length mem.words

let check mem addr =
  if addr >= 0 && addr < null_guard then raise (Fault Null_access)
  else if addr < 0 || addr >= Array.length mem.words then
    raise (Fault (Out_of_range addr))

let read mem addr =
  check mem addr;
  mem.words.(addr)

let write mem addr value =
  check mem addr;
  mem.words.(addr) <- value

let is_valid mem addr = addr >= null_guard && addr < Array.length mem.words

let fault_to_string = function
  | Null_access -> "null access"
  | Out_of_range addr -> Printf.sprintf "out-of-range access at %d" addr

let load_init mem init_data = List.iter (fun (a, v) -> write mem a v) init_data

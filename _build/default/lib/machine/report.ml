(* Bug reports filed by the dynamic detectors. The paper stores these in a
   special monitor memory area that the NT-Path sandbox never rolls back;
   here the log models that area directly: entries filed during an NT-Path
   survive the path's squash. *)

type origin = Taken_path | Nt_path of int

type entry = {
  site : int;
  origin : origin;
  pc : int;
  insn_index : int;
}

type t = { mutable entries : entry list; mutable count : int }

let create () = { entries = []; count = 0 }

let file log ~site ~origin ~pc ~insn_index =
  log.entries <- { site; origin; pc; insn_index } :: log.entries;
  log.count <- log.count + 1

let entries log = List.rev log.entries

let count log = log.count

let distinct_sites log =
  let module Int_set = Set.Make (Int) in
  Int_set.elements
    (List.fold_left
       (fun acc e -> Int_set.add e.site acc)
       Int_set.empty log.entries)

let sites_from_nt_paths log =
  let module Int_set = Set.Make (Int) in
  Int_set.elements
    (List.fold_left
       (fun acc e ->
         match e.origin with
         | Nt_path _ -> Int_set.add e.site acc
         | Taken_path -> acc)
       Int_set.empty log.entries)

let sites_from_taken_path log =
  let module Int_set = Set.Make (Int) in
  Int_set.elements
    (List.fold_left
       (fun acc e ->
         match e.origin with
         | Taken_path -> Int_set.add e.site acc
         | Nt_path _ -> acc)
       Int_set.empty log.entries)

let clear log =
  log.entries <- [];
  log.count <- 0

lib/core/coverage.ml: Array Bytes Hashtbl List Program Set Stats

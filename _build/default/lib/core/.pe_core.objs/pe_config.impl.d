lib/core/pe_config.ml:

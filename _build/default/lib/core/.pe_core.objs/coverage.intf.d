lib/core/coverage.mli: Program

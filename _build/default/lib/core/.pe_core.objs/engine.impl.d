lib/core/engine.ml: Array Btb Context Coverage Cpu Fix_atom Hashtbl Insn Lazy List Machine Machine_config Memory Nt_path Pe_config Printf Program Reg Rng

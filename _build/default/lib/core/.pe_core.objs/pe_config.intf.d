lib/core/pe_config.mli:

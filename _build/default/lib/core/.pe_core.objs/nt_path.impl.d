lib/core/nt_path.ml: Array Btb Cache Context Coverage Cpu Insn Io Machine Machine_config Pe_config Reg

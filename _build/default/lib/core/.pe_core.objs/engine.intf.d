lib/core/engine.mli: Coverage Cpu Machine Nt_path Pe_config

lib/core/nt_path.mli: Cache Coverage Cpu Insn Machine Pe_config

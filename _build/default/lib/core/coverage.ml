(* Branch-coverage accounting over the user branch universe. An edge is a
   (branch pc, direction) pair; the universe is fixed by the compiled
   program. Taken-path coverage is what the baseline monitored run achieves;
   NT-Path coverage is the additional code PathExpander lets the detector
   see. *)

module Edge = struct
  type t = int * bool

  let compare = compare
end

module Edge_set = Set.Make (Edge)

type t = {
  universe : (int, unit) Hashtbl.t;
  mutable taken : Edge_set.t;
  mutable nt : Edge_set.t;
  (* statement (source-line) coverage: [line_of.(pc)] is the user source
     line of the instruction at [pc], or 0 for runtime code *)
  line_of : int array;
  line_taken : Bytes.t;
  line_nt : Bytes.t;
  line_universe : int;
}

let create program =
  let universe = Hashtbl.create 256 in
  List.iter
    (fun pc -> Hashtbl.replace universe pc ())
    program.Program.user_branches;
  let n = Array.length program.Program.code in
  let line_of = Array.make n 0 in
  List.iter
    (fun (lo, hi) ->
      for pc = lo to min (hi - 1) (n - 1) do
        line_of.(pc) <- Program.line_of_pc program pc
      done)
    program.Program.user_code_ranges;
  let max_line = Array.fold_left max 0 line_of in
  let distinct = Hashtbl.create 256 in
  Array.iter (fun l -> if l > 0 then Hashtbl.replace distinct l ()) line_of;
  {
    universe;
    taken = Edge_set.empty;
    nt = Edge_set.empty;
    line_of;
    line_taken = Bytes.make (max_line + 1) '\000';
    line_nt = Bytes.make (max_line + 1) '\000';
    line_universe = Hashtbl.length distinct;
  }

let in_universe cov pc = Hashtbl.mem cov.universe pc

let record_taken cov pc direction =
  if in_universe cov pc then cov.taken <- Edge_set.add (pc, direction) cov.taken

let record_nt cov pc direction =
  if in_universe cov pc then cov.nt <- Edge_set.add (pc, direction) cov.nt

(* Statement coverage: called once per retired instruction. *)
let record_pc_taken cov pc =
  if pc < Array.length cov.line_of then begin
    let line = cov.line_of.(pc) in
    if line > 0 then Bytes.unsafe_set cov.line_taken line '\001'
  end

let record_pc_nt cov pc =
  if pc < Array.length cov.line_of then begin
    let line = cov.line_of.(pc) in
    if line > 0 then Bytes.unsafe_set cov.line_nt line '\001'
  end

let count_lines bytes = Bytes.fold_left (fun acc c -> if c = '\001' then acc + 1 else acc) 0 bytes

let stmt_taken_pct cov =
  Stats.pct ~num:(count_lines cov.line_taken) ~den:cov.line_universe

let stmt_combined_pct cov =
  let combined = ref 0 in
  for i = 0 to Bytes.length cov.line_taken - 1 do
    if Bytes.get cov.line_taken i = '\001' || Bytes.get cov.line_nt i = '\001'
    then incr combined
  done;
  Stats.pct ~num:!combined ~den:cov.line_universe

let edge_universe_size cov = 2 * Hashtbl.length cov.universe

let taken_edges cov = Edge_set.cardinal cov.taken

let combined_edges cov = Edge_set.cardinal (Edge_set.union cov.taken cov.nt)

let taken_pct cov =
  Stats.pct ~num:(taken_edges cov) ~den:(edge_universe_size cov)

let combined_pct cov =
  Stats.pct ~num:(combined_edges cov) ~den:(edge_universe_size cov)

(* Accumulate [src] into [dst] (cumulative coverage across inputs). Both must
   come from the same compiled program. *)
let merge_into ~dst src =
  dst.taken <- Edge_set.union dst.taken src.taken;
  dst.nt <- Edge_set.union dst.nt src.nt;
  let n = min (Bytes.length dst.line_taken) (Bytes.length src.line_taken) in
  for i = 0 to n - 1 do
    if Bytes.get src.line_taken i = '\001' then Bytes.set dst.line_taken i '\001';
    if Bytes.get src.line_nt i = '\001' then Bytes.set dst.line_nt i '\001'
  done

(** Recursive-descent parser for MiniC.

    Standard C precedence; functions may be used before their definition
    (the typechecker collects signatures in a first pass), so prototypes do
    not exist. Struct definitions, global variables (with integer, string
    or list initialisers) and functions are the top-level forms. *)

exception Error of string * int  (** message, line *)

(** Parse a token stream into a program. *)
val parse_tokens : (Token.t * int) array -> Ast.program

(** Lex and parse; also returns the source's [//@tag] map.
    [first_line] as in {!Lexer.tokenize}. *)
val parse_string : ?first_line:int -> string -> Ast.program * (string * int) list

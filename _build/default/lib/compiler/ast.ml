type ty =
  | Tint
  | Tptr of ty
  | Tarray of ty * int
  | Tstruct of string
  | Tvoid

type unop = Neg | Lnot | Bnot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land
  | Lor

type expr = { desc : desc; line : int }

and desc =
  | Int_lit of int
  | Str_lit of string
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr
  | Call of string * expr list
  | Index of expr * expr
  | Deref of expr
  | Addr of expr
  | Field of expr * string
  | Arrow of expr * string
  | Cond of expr * expr * expr
  | Sizeof of ty

type stmt = { sdesc : sdesc; sline : int }

and sdesc =
  | Sexpr of expr
  | Sdecl of ty * string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of expr option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sassert of expr
  | Sblock of stmt list

type func = {
  fname : string;
  fret : ty;
  fparams : (ty * string) list;
  fbody : stmt list;
  fline : int;
}

type init = Init_int of int | Init_string of string | Init_list of int list

type global =
  | Gvar of ty * string * init option * int
  | Gstruct of string * (ty * string) list
  | Gfunc of func

type program = global list

let rec ty_to_string = function
  | Tint -> "int"
  | Tptr t -> ty_to_string t ^ " *"
  | Tarray (t, n) -> Printf.sprintf "%s[%d]" (ty_to_string t) n
  | Tstruct name -> "struct " ^ name
  | Tvoid -> "void"

let unop_to_string = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Land -> "&&"
  | Lor -> "||"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\000' -> Buffer.add_string buf "\\0"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec expr_to_string e =
  match e.desc with
  | Int_lit n -> string_of_int n
  | Str_lit s -> Printf.sprintf "\"%s\"" (escape_string s)
  | Var name -> name
  | Unop (op, e1) -> Printf.sprintf "(%s%s)" (unop_to_string op) (expr_to_string e1)
  | Binop (op, e1, e2) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string e1) (binop_to_string op)
      (expr_to_string e2)
  | Assign (lhs, rhs) ->
    Printf.sprintf "(%s = %s)" (expr_to_string lhs) (expr_to_string rhs)
  | Call (name, args) ->
    Printf.sprintf "%s(%s)" name (String.concat ", " (List.map expr_to_string args))
  | Index (e1, e2) ->
    Printf.sprintf "%s[%s]" (expr_to_string e1) (expr_to_string e2)
  | Deref e1 -> Printf.sprintf "(*%s)" (expr_to_string e1)
  | Addr e1 -> Printf.sprintf "(&%s)" (expr_to_string e1)
  | Field (e1, f) -> Printf.sprintf "%s.%s" (expr_to_string e1) f
  | Arrow (e1, f) -> Printf.sprintf "%s->%s" (expr_to_string e1) f
  | Cond (c, t, f) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_to_string c) (expr_to_string t)
      (expr_to_string f)
  | Sizeof t -> Printf.sprintf "sizeof(%s)" (ty_to_string t)

let rec stmt_to_string ~indent stmt =
  let pad = String.make indent ' ' in
  let block stmts =
    String.concat "" (List.map (stmt_to_string ~indent:(indent + 2)) stmts)
  in
  match stmt.sdesc with
  | Sexpr e -> Printf.sprintf "%s%s;\n" pad (expr_to_string e)
  | Sdecl (ty, name, init) ->
    let init_str =
      match init with
      | None -> ""
      | Some e -> " = " ^ expr_to_string e
    in
    (match ty with
     | Tarray (elt, n) ->
       Printf.sprintf "%s%s %s[%d]%s;\n" pad (ty_to_string elt) name n init_str
     | _ -> Printf.sprintf "%s%s %s%s;\n" pad (ty_to_string ty) name init_str)
  | Sif (c, then_s, []) ->
    Printf.sprintf "%sif (%s) {\n%s%s}\n" pad (expr_to_string c) (block then_s) pad
  | Sif (c, then_s, else_s) ->
    Printf.sprintf "%sif (%s) {\n%s%s} else {\n%s%s}\n" pad (expr_to_string c)
      (block then_s) pad (block else_s) pad
  | Swhile (c, body) ->
    Printf.sprintf "%swhile (%s) {\n%s%s}\n" pad (expr_to_string c) (block body) pad
  | Sfor (init, cond, step, body) ->
    let opt = function None -> "" | Some e -> expr_to_string e in
    Printf.sprintf "%sfor (%s; %s; %s) {\n%s%s}\n" pad (opt init) (opt cond)
      (opt step) (block body) pad
  | Sreturn None -> Printf.sprintf "%sreturn;\n" pad
  | Sreturn (Some e) -> Printf.sprintf "%sreturn %s;\n" pad (expr_to_string e)
  | Sbreak -> Printf.sprintf "%sbreak;\n" pad
  | Scontinue -> Printf.sprintf "%scontinue;\n" pad
  | Sassert e -> Printf.sprintf "%sassert(%s);\n" pad (expr_to_string e)
  | Sblock stmts -> Printf.sprintf "%s{\n%s%s}\n" pad (block stmts) pad

let global_to_string g =
  match g with
  | Gvar (ty, name, init, _) ->
    let init_str =
      match init with
      | None -> ""
      | Some (Init_int n) -> Printf.sprintf " = %d" n
      | Some (Init_string s) -> Printf.sprintf " = \"%s\"" (escape_string s)
      | Some (Init_list ns) ->
        Printf.sprintf " = {%s}" (String.concat ", " (List.map string_of_int ns))
    in
    (match ty with
     | Tarray (elt, n) ->
       Printf.sprintf "%s %s[%d]%s;\n" (ty_to_string elt) name n init_str
     | _ -> Printf.sprintf "%s %s%s;\n" (ty_to_string ty) name init_str)
  | Gstruct (name, fields) ->
    let field_str =
      String.concat ""
        (List.map
           (fun (ty, fname) ->
             match ty with
             | Tarray (elt, n) ->
               Printf.sprintf "  %s %s[%d];\n" (ty_to_string elt) fname n
             | _ -> Printf.sprintf "  %s %s;\n" (ty_to_string ty) fname)
           fields)
    in
    Printf.sprintf "struct %s {\n%s};\n" name field_str
  | Gfunc f ->
    let params =
      String.concat ", "
        (List.map (fun (ty, name) -> ty_to_string ty ^ " " ^ name) f.fparams)
    in
    Printf.sprintf "%s %s(%s) {\n%s}\n" (ty_to_string f.fret) f.fname params
      (String.concat "" (List.map (stmt_to_string ~indent:2) f.fbody))

let program_to_string program =
  String.concat "\n" (List.map global_to_string program)

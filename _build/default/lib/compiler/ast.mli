(** Abstract syntax of MiniC, the C-like source language of the benchmark
    programs.

    MiniC covers the subset of C the Siemens/SPEC ports need: [int]/[char]
    scalars (both one machine word), pointers, fixed-size arrays, named
    structs, functions with scalar parameters, the usual statement forms,
    short-circuit booleans, the conditional operator and [assert]. Every
    node carries its source line so detector report sites and bug metadata
    can name lines. *)

type ty =
  | Tint  (** [int] and [char] (one word each) *)
  | Tptr of ty
  | Tarray of ty * int  (** -1 = size to be inferred from the initialiser *)
  | Tstruct of string
  | Tvoid

type unop = Neg | Lnot | Bnot

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land  (** short-circuit && *)
  | Lor  (** short-circuit || *)

type expr = { desc : desc; line : int }

and desc =
  | Int_lit of int
  | Str_lit of string
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr
  | Call of string * expr list
  | Index of expr * expr
  | Deref of expr
  | Addr of expr
  | Field of expr * string
  | Arrow of expr * string
  | Cond of expr * expr * expr
  | Sizeof of ty  (** size in words *)

type stmt = { sdesc : sdesc; sline : int }

and sdesc =
  | Sexpr of expr
  | Sdecl of ty * string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of expr option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sassert of expr
      (** compiled to a branch-free check under the assertions detector,
          skipped entirely under the others *)
  | Sblock of stmt list

type func = {
  fname : string;
  fret : ty;
  fparams : (ty * string) list;
  fbody : stmt list;
  fline : int;
}

type init = Init_int of int | Init_string of string | Init_list of int list

type global =
  | Gvar of ty * string * init option * int  (** name, initialiser, line *)
  | Gstruct of string * (ty * string) list
  | Gfunc of func

type program = global list

val ty_to_string : ty -> string
val unop_to_string : unop -> string
val binop_to_string : binop -> string

(** Escape for string literals in the pretty-printer. *)
val escape_string : string -> string

val expr_to_string : expr -> string
val stmt_to_string : indent:int -> stmt -> string
val global_to_string : global -> string

(** Pretty-print a whole program; parsing the result yields an equivalent
    program (the round-trip property tested in [test/test_props.ml]). *)
val program_to_string : program -> string

lib/compiler/parser.mli: Ast Token

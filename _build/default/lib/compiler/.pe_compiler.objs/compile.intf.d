lib/compiler/compile.mli: Codegen Program

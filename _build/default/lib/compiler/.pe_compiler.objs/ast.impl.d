lib/compiler/ast.ml: Buffer List Printf String

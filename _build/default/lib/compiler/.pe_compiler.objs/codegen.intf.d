lib/compiler/codegen.mli: Insn Program Tast

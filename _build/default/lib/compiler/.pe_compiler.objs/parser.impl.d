lib/compiler/parser.ml: Array Ast Lexer List Printf Token

lib/compiler/typecheck.mli: Ast Tast

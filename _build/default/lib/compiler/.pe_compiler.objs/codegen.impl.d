lib/compiler/codegen.ml: Array Ast Fix_atom Hashtbl Insn List Option Printf Program Reg Site Tast Typecheck Vec

lib/compiler/lexer.mli: Token

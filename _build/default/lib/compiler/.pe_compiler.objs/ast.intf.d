lib/compiler/ast.mli:

lib/compiler/prelude.mli:

lib/compiler/token.ml: Printf

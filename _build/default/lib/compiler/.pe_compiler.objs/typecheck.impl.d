lib/compiler/typecheck.ml: Ast Char Hashtbl List Option Printf Program Reg String Tast

lib/compiler/tast.ml: Ast

lib/compiler/prelude.ml:

lib/compiler/compile.ml: Codegen Lexer List Parser Prelude Printf Program Typecheck

(* The MiniC runtime library, compiled together with every program. Its
   functions are marked as runtime code: their branches are excluded from the
   user branch-coverage universe (the paper reports per-application
   coverage), though PathExpander may still explore NT-Paths inside them.

   The heap is a bump allocator whose break lives in the predefined global
   [__heap_ptr] (address 1, initialised by the machine loader). Every block
   is laid out as [size header | payload | 2-word red zone]; under the
   iWatcher detector the red zone is watched at allocation time and the whole
   payload is watched again on [free], catching heap overruns and
   use-after-free. [__watch_region]/[__unwatch_region] compile to watchpoint
   instructions only under the iWatcher detector and to nothing otherwise. *)

let source =
  {|
int __rand_seed = 12345;

void srand(int s) {
  __rand_seed = s;
}

int rand() {
  __rand_seed = __rand_seed * 1103515245 + 12345;
  int v = __rand_seed >> 16;
  if (v < 0) {
    v = -v;
  }
  return v % 32768;
}

int *malloc(int n) {
  int base = __heap_ptr;
  __heap_ptr = base + n + 3;
  int *block = base;
  block[0] = n;
  __watch_region(base + 1 + n, 2);
  return block + 1;
}

void free(int *p) {
  int n = p[-1];
  __watch_region(p, n);
}

int strlen(char *s) {
  int n = 0;
  while (s[n] != 0) {
    n = n + 1;
  }
  return n;
}

int strcmp(char *a, char *b) {
  int i = 0;
  while (a[i] != 0 && a[i] == b[i]) {
    i = i + 1;
  }
  return a[i] - b[i];
}

int strncmp(char *a, char *b, int n) {
  int i = 0;
  while (i < n) {
    if (a[i] != b[i]) {
      return a[i] - b[i];
    }
    if (a[i] == 0) {
      return 0;
    }
    i = i + 1;
  }
  return 0;
}

void strcpy(char *dst, char *src) {
  int i = 0;
  while (src[i] != 0) {
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = 0;
}

void strncpy(char *dst, char *src, int n) {
  int i = 0;
  while (i < n && src[i] != 0) {
    dst[i] = src[i];
    i = i + 1;
  }
  while (i < n) {
    dst[i] = 0;
    i = i + 1;
  }
}

void strcat(char *dst, char *src) {
  int n = strlen(dst);
  strcpy(dst + n, src);
}

void memset(int *p, int v, int n) {
  int i = 0;
  while (i < n) {
    p[i] = v;
    i = i + 1;
  }
}

void memcpy(int *dst, int *src, int n) {
  int i = 0;
  while (i < n) {
    dst[i] = src[i];
    i = i + 1;
  }
}

int is_digit(int c) {
  return c >= '0' && c <= '9';
}

int is_alpha(int c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

int is_space(int c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

int is_upper(int c) {
  return c >= 'A' && c <= 'Z';
}

int is_lower(int c) {
  return c >= 'a' && c <= 'z';
}

int to_lower(int c) {
  if (is_upper(c)) {
    return c + 32;
  }
  return c;
}

int to_upper(int c) {
  if (is_lower(c)) {
    return c - 32;
  }
  return c;
}

int atoi(char *s) {
  int i = 0;
  int sign = 1;
  int v = 0;
  while (is_space(s[i])) {
    i = i + 1;
  }
  if (s[i] == '-') {
    sign = -1;
    i = i + 1;
  }
  while (is_digit(s[i])) {
    v = v * 10 + (s[i] - '0');
    i = i + 1;
  }
  return v * sign;
}

int abs_int(int v) {
  if (v < 0) {
    return -v;
  }
  return v;
}

int min_int(int a, int b) {
  if (a < b) {
    return a;
  }
  return b;
}

int max_int(int a, int b) {
  if (a > b) {
    return a;
  }
  return b;
}

void print_str(char *s) {
  int i = 0;
  while (s[i] != 0) {
    putc(s[i]);
    i = i + 1;
  }
}

void print_nl() {
  putc('\n');
}
|}

(* Line space reserved for the prelude so user source lines stay meaningful
   in report sites and bug metadata. *)
let first_line = 100_000

(** The MiniC typechecker and storage allocator.

    Produces the typed AST: names resolved to storage (absolute global
    addresses / fp-relative frame slots), struct field offsets computed,
    pointer arithmetic annotated with element sizes, arrays decayed where
    values are taken. Allocation decisions made here are load-bearing for
    the detectors and the fixing pass:

    - every top-level array (global or local) gets {!redzone_words} of guard
      space right after its payload, which the iWatcher detector watches;
    - one *blank structure* is laid out per struct type, plus a generic
      blank buffer, as the targets NT-Path pointer fixing redirects
      null pointers to (Section 4.4 of the paper);
    - the first global word is [__heap_ptr], the runtime allocator's break,
      initialised by the machine loader. *)

exception Error of string * int  (** message, line *)

(** Guard words after every array (red zone). *)
val redzone_words : int

(** Words in the generic blank buffer for [int*]/[char*] fixes. *)
val generic_blank_words : int

(** [check ~user ~prelude ~tags] typechecks the user program together with
    the runtime prelude; prelude functions are marked runtime (excluded from
    the user coverage universes). Raises {!Error} on ill-typed programs,
    unknown names, arity mismatches, aggregate assignment, or a missing
    [main]. *)
val check :
  user:Ast.program ->
  prelude:Ast.program ->
  tags:(string * int) list ->
  Tast.tprogram

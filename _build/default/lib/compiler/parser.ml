exception Error of string * int

type state = {
  tokens : (Token.t * int) array;
  mutable pos : int;
}

let error state fmt =
  let _, line = state.tokens.(min state.pos (Array.length state.tokens - 1)) in
  Printf.ksprintf (fun s -> raise (Error (s, line))) fmt

let peek state = fst state.tokens.(state.pos)

let peek2 state =
  if state.pos + 1 < Array.length state.tokens then
    fst state.tokens.(state.pos + 1)
  else Token.Eof

let line state = snd state.tokens.(state.pos)

let advance state = state.pos <- state.pos + 1

let eat state tok =
  if peek state = tok then advance state
  else
    error state "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string (peek state))

let eat_ident state =
  match peek state with
  | Token.Tok_ident name ->
    advance state;
    name
  | tok -> error state "expected identifier, found '%s'" (Token.to_string tok)

(* A type starts with int/char/void or 'struct Name' (when not a struct
   definition). *)
let starts_type state =
  match peek state with
  | Token.Kw_int | Token.Kw_char | Token.Kw_void -> true
  | Token.Kw_struct ->
    (match peek2 state with Token.Tok_ident _ -> true | _ -> false)
  | _ -> false

let parse_base_type state =
  match peek state with
  | Token.Kw_int ->
    advance state;
    Ast.Tint
  | Token.Kw_char ->
    advance state;
    Ast.Tint
  | Token.Kw_void ->
    advance state;
    Ast.Tvoid
  | Token.Kw_struct ->
    advance state;
    let name = eat_ident state in
    Ast.Tstruct name
  | tok -> error state "expected type, found '%s'" (Token.to_string tok)

let parse_pointers state base =
  let ty = ref base in
  while peek state = Token.Star do
    advance state;
    ty := Ast.Tptr !ty
  done;
  !ty

let parse_type state = parse_pointers state (parse_base_type state)

let mk desc ln : Ast.expr = { Ast.desc; line = ln }

let rec parse_expr state = parse_assign state

and parse_assign state =
  let lhs = parse_cond_expr state in
  match peek state with
  | Token.Assign ->
    let ln = line state in
    advance state;
    let rhs = parse_assign state in
    mk (Ast.Assign (lhs, rhs)) ln
  | _ -> lhs

and parse_cond_expr state =
  let cond = parse_lor state in
  match peek state with
  | Token.Question ->
    let ln = line state in
    advance state;
    let then_e = parse_expr state in
    eat state Token.Colon;
    let else_e = parse_cond_expr state in
    mk (Ast.Cond (cond, then_e, else_e)) ln
  | _ -> cond

and parse_binop_level state ops next =
  let lhs = ref (next state) in
  let continue = ref true in
  while !continue do
    match List.assoc_opt (peek state) ops with
    | Some op ->
      let ln = line state in
      advance state;
      let rhs = next state in
      lhs := mk (Ast.Binop (op, !lhs, rhs)) ln
    | None -> continue := false
  done;
  !lhs

and parse_lor state =
  parse_binop_level state [ (Token.Pipe_pipe, Ast.Lor) ] parse_land

and parse_land state =
  parse_binop_level state [ (Token.Amp_amp, Ast.Land) ] parse_bor

and parse_bor state = parse_binop_level state [ (Token.Pipe, Ast.Bor) ] parse_bxor

and parse_bxor state =
  parse_binop_level state [ (Token.Caret, Ast.Bxor) ] parse_band

and parse_band state = parse_binop_level state [ (Token.Amp, Ast.Band) ] parse_eq

and parse_eq state =
  parse_binop_level state
    [ (Token.Eq_eq, Ast.Eq); (Token.Bang_eq, Ast.Ne) ]
    parse_rel

and parse_rel state =
  parse_binop_level state
    [ (Token.Lt, Ast.Lt); (Token.Le, Ast.Le); (Token.Gt, Ast.Gt); (Token.Ge, Ast.Ge) ]
    parse_shift

and parse_shift state =
  parse_binop_level state
    [ (Token.Shl, Ast.Shl); (Token.Shr, Ast.Shr) ]
    parse_add

and parse_add state =
  parse_binop_level state
    [ (Token.Plus, Ast.Add); (Token.Minus, Ast.Sub) ]
    parse_mul

and parse_mul state =
  parse_binop_level state
    [ (Token.Star, Ast.Mul); (Token.Slash, Ast.Div); (Token.Percent, Ast.Mod) ]
    parse_unary

and parse_unary state =
  let ln = line state in
  match peek state with
  | Token.Minus ->
    advance state;
    mk (Ast.Unop (Ast.Neg, parse_unary state)) ln
  | Token.Bang ->
    advance state;
    mk (Ast.Unop (Ast.Lnot, parse_unary state)) ln
  | Token.Tilde ->
    advance state;
    mk (Ast.Unop (Ast.Bnot, parse_unary state)) ln
  | Token.Star ->
    advance state;
    mk (Ast.Deref (parse_unary state)) ln
  | Token.Amp ->
    advance state;
    mk (Ast.Addr (parse_unary state)) ln
  | Token.Kw_sizeof ->
    advance state;
    eat state Token.Lparen;
    let ty = parse_type state in
    eat state Token.Rparen;
    mk (Ast.Sizeof ty) ln
  | _ -> parse_postfix state

and parse_postfix state =
  let e = ref (parse_primary state) in
  let continue = ref true in
  while !continue do
    let ln = line state in
    match peek state with
    | Token.Lbracket ->
      advance state;
      let idx = parse_expr state in
      eat state Token.Rbracket;
      e := mk (Ast.Index (!e, idx)) ln
    | Token.Dot ->
      advance state;
      let field = eat_ident state in
      e := mk (Ast.Field (!e, field)) ln
    | Token.Arrow ->
      advance state;
      let field = eat_ident state in
      e := mk (Ast.Arrow (!e, field)) ln
    | _ -> continue := false
  done;
  !e

and parse_primary state =
  let ln = line state in
  match peek state with
  | Token.Tok_int n ->
    advance state;
    mk (Ast.Int_lit n) ln
  | Token.Kw_null ->
    advance state;
    mk (Ast.Int_lit 0) ln
  | Token.Tok_string s ->
    advance state;
    mk (Ast.Str_lit s) ln
  | Token.Tok_ident name ->
    advance state;
    if peek state = Token.Lparen then begin
      advance state;
      let args = parse_args state in
      eat state Token.Rparen;
      mk (Ast.Call (name, args)) ln
    end
    else mk (Ast.Var name) ln
  | Token.Lparen ->
    advance state;
    let e = parse_expr state in
    eat state Token.Rparen;
    e
  | tok -> error state "expected expression, found '%s'" (Token.to_string tok)

and parse_args state =
  if peek state = Token.Rparen then []
  else begin
    let first = parse_expr state in
    let rest = ref [ first ] in
    while peek state = Token.Comma do
      advance state;
      rest := parse_expr state :: !rest
    done;
    List.rev !rest
  end

let mk_stmt sdesc sline : Ast.stmt = { Ast.sdesc; sline }

let parse_array_suffix state ty =
  if peek state = Token.Lbracket then begin
    advance state;
    match peek state with
    | Token.Tok_int n ->
      advance state;
      eat state Token.Rbracket;
      Ast.Tarray (ty, n)
    | Token.Rbracket ->
      advance state;
      Ast.Tarray (ty, -1)
    | tok -> error state "expected array size, found '%s'" (Token.to_string tok)
  end
  else ty

let rec parse_stmt state =
  let ln = line state in
  match peek state with
  | Token.Lbrace ->
    advance state;
    let body = parse_block state in
    mk_stmt (Ast.Sblock body) ln
  | Token.Kw_if ->
    advance state;
    eat state Token.Lparen;
    let cond = parse_expr state in
    eat state Token.Rparen;
    let then_s = parse_branch_body state in
    let else_s =
      if peek state = Token.Kw_else then begin
        advance state;
        parse_branch_body state
      end
      else []
    in
    mk_stmt (Ast.Sif (cond, then_s, else_s)) ln
  | Token.Kw_while ->
    advance state;
    eat state Token.Lparen;
    let cond = parse_expr state in
    eat state Token.Rparen;
    let body = parse_branch_body state in
    mk_stmt (Ast.Swhile (cond, body)) ln
  | Token.Kw_for ->
    advance state;
    eat state Token.Lparen;
    let init = if peek state = Token.Semi then None else Some (parse_expr state) in
    eat state Token.Semi;
    let cond = if peek state = Token.Semi then None else Some (parse_expr state) in
    eat state Token.Semi;
    let step = if peek state = Token.Rparen then None else Some (parse_expr state) in
    eat state Token.Rparen;
    let body = parse_branch_body state in
    mk_stmt (Ast.Sfor (init, cond, step, body)) ln
  | Token.Kw_return ->
    advance state;
    if peek state = Token.Semi then begin
      advance state;
      mk_stmt (Ast.Sreturn None) ln
    end
    else begin
      let e = parse_expr state in
      eat state Token.Semi;
      mk_stmt (Ast.Sreturn (Some e)) ln
    end
  | Token.Kw_break ->
    advance state;
    eat state Token.Semi;
    mk_stmt Ast.Sbreak ln
  | Token.Kw_continue ->
    advance state;
    eat state Token.Semi;
    mk_stmt Ast.Scontinue ln
  | Token.Kw_assert ->
    advance state;
    eat state Token.Lparen;
    let e = parse_expr state in
    eat state Token.Rparen;
    eat state Token.Semi;
    mk_stmt (Ast.Sassert e) ln
  | _ when starts_type state ->
    let base = parse_type state in
    let name = eat_ident state in
    let ty = parse_array_suffix state base in
    let init =
      if peek state = Token.Assign then begin
        advance state;
        Some (parse_expr state)
      end
      else None
    in
    eat state Token.Semi;
    mk_stmt (Ast.Sdecl (ty, name, init)) ln
  | _ ->
    let e = parse_expr state in
    eat state Token.Semi;
    mk_stmt (Ast.Sexpr e) ln

and parse_branch_body state =
  if peek state = Token.Lbrace then begin
    advance state;
    parse_block state
  end
  else [ parse_stmt state ]

and parse_block state =
  let stmts = ref [] in
  while peek state <> Token.Rbrace do
    if peek state = Token.Eof then error state "unexpected end of file in block";
    stmts := parse_stmt state :: !stmts
  done;
  eat state Token.Rbrace;
  List.rev !stmts

let parse_init_list state =
  eat state Token.Lbrace;
  let values = ref [] in
  let parse_signed () =
    match peek state with
    | Token.Minus ->
      advance state;
      (match peek state with
       | Token.Tok_int n ->
         advance state;
         -n
       | tok -> error state "expected integer, found '%s'" (Token.to_string tok))
    | Token.Tok_int n ->
      advance state;
      n
    | tok -> error state "expected integer, found '%s'" (Token.to_string tok)
  in
  if peek state <> Token.Rbrace then begin
    values := [ parse_signed () ];
    while peek state = Token.Comma do
      advance state;
      values := parse_signed () :: !values
    done
  end;
  eat state Token.Rbrace;
  List.rev !values

let parse_struct_def state =
  eat state Token.Kw_struct;
  let name = eat_ident state in
  eat state Token.Lbrace;
  let fields = ref [] in
  while peek state <> Token.Rbrace do
    let base = parse_type state in
    let fname = eat_ident state in
    let ty = parse_array_suffix state base in
    eat state Token.Semi;
    fields := (ty, fname) :: !fields
  done;
  eat state Token.Rbrace;
  eat state Token.Semi;
  Ast.Gstruct (name, List.rev !fields)

let parse_params state =
  eat state Token.Lparen;
  if peek state = Token.Rparen then begin
    advance state;
    []
  end
  else if peek state = Token.Kw_void && peek2 state = Token.Rparen then begin
    advance state;
    advance state;
    []
  end
  else begin
    let parse_param () =
      let ty = parse_type state in
      let name = eat_ident state in
      (* Array parameters decay to pointers. *)
      let ty = match parse_array_suffix state ty with
        | Ast.Tarray (elt, _) -> Ast.Tptr elt
        | t -> t
      in
      (ty, name)
    in
    let params = ref [ parse_param () ] in
    while peek state = Token.Comma do
      advance state;
      params := parse_param () :: !params
    done;
    eat state Token.Rparen;
    List.rev !params
  end

let parse_global state =
  let ln = line state in
  if peek state = Token.Kw_struct && peek2 state <> Token.Eof
     && (match peek2 state with Token.Tok_ident _ -> false | _ -> true)
  then error state "expected struct name"
  else if
    peek state = Token.Kw_struct
    &&
    match state.tokens.(state.pos + 2) with
    | Token.Lbrace, _ -> true
    | _ -> false
  then parse_struct_def state
  else begin
    let base = parse_type state in
    let name = eat_ident state in
    if peek state = Token.Lparen then begin
      let params = parse_params state in
      eat state Token.Lbrace;
      let body = parse_block state in
      Ast.Gfunc { Ast.fname = name; fret = base; fparams = params; fbody = body; fline = ln }
    end
    else begin
      let ty = parse_array_suffix state base in
      let init =
        if peek state = Token.Assign then begin
          advance state;
          match peek state with
          | Token.Lbrace -> Some (Ast.Init_list (parse_init_list state))
          | Token.Kw_null ->
            advance state;
            Some (Ast.Init_int 0)
          | Token.Tok_string s ->
            advance state;
            Some (Ast.Init_string s)
          | Token.Minus ->
            advance state;
            (match peek state with
             | Token.Tok_int n ->
               advance state;
               Some (Ast.Init_int (-n))
             | tok ->
               error state "expected integer initialiser, found '%s'"
                 (Token.to_string tok))
          | Token.Tok_int n ->
            advance state;
            Some (Ast.Init_int n)
          | tok ->
            error state "expected global initialiser, found '%s'"
              (Token.to_string tok)
        end
        else None
      in
      eat state Token.Semi;
      Ast.Gvar (ty, name, init, ln)
    end
  end

let parse_tokens tokens =
  let state = { tokens; pos = 0 } in
  let globals = ref [] in
  while peek state <> Token.Eof do
    globals := parse_global state :: !globals
  done;
  List.rev !globals

let parse_string ?first_line source =
  let lexed = Lexer.tokenize ?first_line source in
  (parse_tokens lexed.Lexer.tokens, lexed.Lexer.tags)

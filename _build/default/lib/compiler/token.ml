type t =
  | Tok_int of int
  | Tok_string of string
  | Tok_ident of string
  | Kw_int
  | Kw_char
  | Kw_void
  | Kw_struct
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_for
  | Kw_return
  | Kw_break
  | Kw_continue
  | Kw_sizeof
  | Kw_assert
  | Kw_null
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Dot
  | Arrow
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Bang
  | Shl
  | Shr
  | Eq_eq
  | Bang_eq
  | Lt
  | Le
  | Gt
  | Ge
  | Amp_amp
  | Pipe_pipe
  | Assign
  | Question
  | Colon
  | Eof

let to_string = function
  | Tok_int n -> string_of_int n
  | Tok_string s -> Printf.sprintf "\"%s\"" s
  | Tok_ident s -> s
  | Kw_int -> "int"
  | Kw_char -> "char"
  | Kw_void -> "void"
  | Kw_struct -> "struct"
  | Kw_if -> "if"
  | Kw_else -> "else"
  | Kw_while -> "while"
  | Kw_for -> "for"
  | Kw_return -> "return"
  | Kw_break -> "break"
  | Kw_continue -> "continue"
  | Kw_sizeof -> "sizeof"
  | Kw_assert -> "assert"
  | Kw_null -> "NULL"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Semi -> ";"
  | Comma -> ","
  | Dot -> "."
  | Arrow -> "->"
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Amp -> "&"
  | Pipe -> "|"
  | Caret -> "^"
  | Tilde -> "~"
  | Bang -> "!"
  | Shl -> "<<"
  | Shr -> ">>"
  | Eq_eq -> "=="
  | Bang_eq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Amp_amp -> "&&"
  | Pipe_pipe -> "||"
  | Assign -> "="
  | Question -> "?"
  | Colon -> ":"
  | Eof -> "<eof>"

(** The MiniC runtime library, compiled into every program.

    Provides the bump allocator ([malloc]/[free] with red-zoned blocks and
    iWatcher watch registration through the conditional
    [__watch_region]/[__unwatch_region] builtins), string and memory
    helpers, character classification, an LCG ([rand]/[srand]) and output
    helpers. Prelude functions are *runtime* code: their branches are
    excluded from the user coverage universes. *)

(** The prelude's MiniC source. *)
val source : string

(** Line-number space reserved for the prelude (user sources keep lines
    below this). *)
val first_line : int

exception Error of string * int

type result = {
  tokens : (Token.t * int) array;
  tags : (string * int) list;  (* //@tag name -> line *)
}

let error line fmt = Printf.ksprintf (fun s -> raise (Error (s, line))) fmt

let keyword_of_string = function
  | "int" -> Some Token.Kw_int
  | "char" -> Some Token.Kw_char
  | "void" -> Some Token.Kw_void
  | "struct" -> Some Token.Kw_struct
  | "if" -> Some Token.Kw_if
  | "else" -> Some Token.Kw_else
  | "while" -> Some Token.Kw_while
  | "for" -> Some Token.Kw_for
  | "return" -> Some Token.Kw_return
  | "break" -> Some Token.Kw_break
  | "continue" -> Some Token.Kw_continue
  | "sizeof" -> Some Token.Kw_sizeof
  | "assert" -> Some Token.Kw_assert
  | "NULL" -> Some Token.Kw_null
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let escape_char line = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> error line "unknown escape '\\%c'" c

(* [tokenize ?first_line source] lexes MiniC. [first_line] lets callers that
   concatenate sources (user program + runtime prelude) keep distinct line
   spaces. *)
let tokenize ?(first_line = 1) source =
  let n = String.length source in
  let tokens = ref [] in
  let tags = ref [] in
  let line = ref first_line in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some source.[!pos + k] else None in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let advance () = incr pos in
  let read_line_comment () =
    (* Capture //@tag markers so workloads can name source lines robustly. *)
    let start = !pos in
    while !pos < n && source.[!pos] <> '\n' do
      advance ()
    done;
    let text = String.sub source start (!pos - start) in
    let prefix = "@tag " in
    let plen = String.length prefix in
    if String.length text >= plen && String.sub text 0 plen = prefix then begin
      let name = String.trim (String.sub text plen (String.length text - plen)) in
      if name <> "" then tags := (name, !line) :: !tags
    end
  in
  let read_block_comment () =
    let closed = ref false in
    while (not !closed) && !pos < n do
      (match (source.[!pos], peek 1) with
       | '*', Some '/' ->
         advance ();
         advance ();
         closed := true
       | '\n', _ ->
         incr line;
         advance ()
       | _ -> advance ())
    done;
    if not !closed then error !line "unterminated comment"
  in
  let read_number () =
    let start = !pos in
    while !pos < n && is_digit source.[!pos] do
      advance ()
    done;
    let text = String.sub source start (!pos - start) in
    emit (Token.Tok_int (int_of_string text))
  in
  let read_ident () =
    let start = !pos in
    while !pos < n && is_ident_char source.[!pos] do
      advance ()
    done;
    let text = String.sub source start (!pos - start) in
    match keyword_of_string text with
    | Some kw -> emit kw
    | None -> emit (Token.Tok_ident text)
  in
  let read_string () =
    advance ();
    let buf = Buffer.create 16 in
    let closed = ref false in
    while (not !closed) && !pos < n do
      (match source.[!pos] with
       | '"' ->
         advance ();
         closed := true
       | '\\' ->
         (match peek 1 with
          | Some c ->
            Buffer.add_char buf (escape_char !line c);
            advance ();
            advance ()
          | None -> error !line "dangling backslash")
       | '\n' -> error !line "newline in string literal"
       | c ->
         Buffer.add_char buf c;
         advance ())
    done;
    if not !closed then error !line "unterminated string literal";
    emit (Token.Tok_string (Buffer.contents buf))
  in
  let read_char_literal () =
    advance ();
    let c =
      match peek 0 with
      | Some '\\' ->
        (match peek 1 with
         | Some esc ->
           advance ();
           escape_char !line esc
         | None -> error !line "dangling backslash")
      | Some c -> c
      | None -> error !line "unterminated character literal"
    in
    advance ();
    (match peek 0 with
     | Some '\'' -> advance ()
     | _ -> error !line "unterminated character literal");
    emit (Token.Tok_int (Char.code c))
  in
  let two_char b tok fallback =
    if peek 1 = Some b then begin
      emit tok;
      advance ();
      advance ()
    end
    else begin
      emit fallback;
      advance ()
    end
  in
  while !pos < n do
    match source.[!pos] with
    | ' ' | '\t' | '\r' -> advance ()
    | '\n' ->
      incr line;
      advance ()
    | '/' ->
      (match peek 1 with
       | Some '/' ->
         advance ();
         advance ();
         read_line_comment ()
       | Some '*' ->
         advance ();
         advance ();
         read_block_comment ()
       | _ ->
         emit Token.Slash;
         advance ())
    | c when is_digit c -> read_number ()
    | c when is_ident_start c -> read_ident ()
    | '"' -> read_string ()
    | '\'' -> read_char_literal ()
    | '(' ->
      emit Token.Lparen;
      advance ()
    | ')' ->
      emit Token.Rparen;
      advance ()
    | '{' ->
      emit Token.Lbrace;
      advance ()
    | '}' ->
      emit Token.Rbrace;
      advance ()
    | '[' ->
      emit Token.Lbracket;
      advance ()
    | ']' ->
      emit Token.Rbracket;
      advance ()
    | ';' ->
      emit Token.Semi;
      advance ()
    | ',' ->
      emit Token.Comma;
      advance ()
    | '.' ->
      emit Token.Dot;
      advance ()
    | '+' ->
      emit Token.Plus;
      advance ()
    | '-' -> two_char '>' Token.Arrow Token.Minus
    | '*' ->
      emit Token.Star;
      advance ()
    | '%' ->
      emit Token.Percent;
      advance ()
    | '&' -> two_char '&' Token.Amp_amp Token.Amp
    | '|' -> two_char '|' Token.Pipe_pipe Token.Pipe
    | '^' ->
      emit Token.Caret;
      advance ()
    | '~' ->
      emit Token.Tilde;
      advance ()
    | '!' -> two_char '=' Token.Bang_eq Token.Bang
    | '<' ->
      (match peek 1 with
       | Some '=' ->
         emit Token.Le;
         advance ();
         advance ()
       | Some '<' ->
         emit Token.Shl;
         advance ();
         advance ()
       | _ ->
         emit Token.Lt;
         advance ())
    | '>' ->
      (match peek 1 with
       | Some '=' ->
         emit Token.Ge;
         advance ();
         advance ()
       | Some '>' ->
         emit Token.Shr;
         advance ();
         advance ()
       | _ ->
         emit Token.Gt;
         advance ())
    | '=' -> two_char '=' Token.Eq_eq Token.Assign
    | '?' ->
      emit Token.Question;
      advance ()
    | ':' ->
      emit Token.Colon;
      advance ()
    | c -> error !line "unexpected character '%c'" c
  done;
  emit Token.Eof;
  { tokens = Array.of_list (List.rev !tokens); tags = List.rev !tags }

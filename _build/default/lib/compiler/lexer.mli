(** The MiniC lexer.

    Hand-written; tracks line numbers, handles [//] and [/* */] comments,
    string/char literals with the usual escapes, and collects [//@tag name]
    markers so workloads can name source lines robustly (bug metadata refers
    to tags, not raw line numbers). *)

exception Error of string * int  (** message, line *)

type result = {
  tokens : (Token.t * int) array;  (** token and its line; ends with [Eof] *)
  tags : (string * int) list;  (** [//@tag name] markers -> line *)
}

(** [tokenize ?first_line source] lexes MiniC. [first_line] lets callers
    that concatenate sources (user program + runtime prelude) keep distinct
    line spaces. *)
val tokenize : ?first_line:int -> string -> result

(** Architectural registers of the PathExpander ISA.

    32 general-purpose registers with a MIPS-like software convention:
    [zero] reads as 0, [rv] holds return values, [a0]..[a7] carry arguments,
    [t0]..[t17] are caller-saved temporaries, [sp]/[fp]/[ra] are the stack
    pointer, frame pointer and return address. *)

type t = int

(** Number of architectural registers (32). *)
val count : int

(** Hard-wired zero register. *)
val zero : t

(** Return-value register. *)
val rv : t

(** [arg i] is argument register [a{i}], [0 <= i <= 7]. *)
val arg : t -> t

(** Maximum number of register-passed arguments (8). *)
val max_args : int

(** [tmp i] is temporary register [t{i}], [0 <= i <= 17]. *)
val tmp : t -> t

(** Number of temporaries available to the code generator (18). *)
val max_tmps : int

val sp : t
val fp : t
val ra : t

val is_valid : t -> bool

(** Conventional assembly name, e.g. ["a0"], ["sp"]. *)
val name : t -> string

val pp : Format.formatter -> t -> unit

(** Report sites.

    Every place where a dynamic bug detector may fire — a CCured bounds or
    null check, an iWatcher watchpoint registration, or an assertion — is
    assigned a report site at compile time. A run produces *reports*, each
    naming the site that fired; a report whose site is at the source line of
    a planted bug counts as detecting that bug, any other report is a false
    positive. *)

type kind =
  | Bounds_check
  | Null_check
  | Watchpoint
  | Assertion

type t = {
  id : int;  (** dense index into the program's site table *)
  line : int;  (** MiniC source line of the checked construct *)
  kind : kind;
  descr : string;
}

val kind_name : kind -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

type t = int

let count = 32

let zero = 0

let rv = 2

let arg i =
  if i < 0 || i > 7 then invalid_arg "Reg.arg: argument registers are a0..a7";
  3 + i

let max_args = 8

let tmp i =
  if i < 0 || i > 17 then invalid_arg "Reg.tmp: temporaries are t0..t17";
  11 + i

let max_tmps = 18

let sp = 29

let fp = 30

let ra = 31

let is_valid r = r >= 0 && r < count

let name r =
  if r = zero then "zero"
  else if r = rv then "rv"
  else if r >= 3 && r <= 10 then Printf.sprintf "a%d" (r - 3)
  else if r >= 11 && r <= 28 then Printf.sprintf "t%d" (r - 11)
  else if r = sp then "sp"
  else if r = fp then "fp"
  else if r = ra then "ra"
  else Printf.sprintf "r%d" r

let pp fmt r = Format.pp_print_string fmt (name r)

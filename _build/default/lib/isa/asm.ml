(* Assembler for the textual form {!Insn.to_string} produces, making the ISA
   toolchain round-trip: hand-written machine programs and dumped images can
   be read back. Targets are absolute ("@12"), registers go by their
   conventional names, and '#' starts a comment. *)

exception Error of string * int  (* message, line *)

let error line fmt = Printf.ksprintf (fun s -> raise (Error (s, line))) fmt

let reg_of_string line name =
  let fail () = error line "unknown register '%s'" name in
  let suffix_int prefix =
    let p = String.length prefix in
    match int_of_string_opt (String.sub name p (String.length name - p)) with
    | Some n -> n
    | None -> fail ()
  in
  match name with
  | "zero" -> Reg.zero
  | "rv" -> Reg.rv
  | "sp" -> Reg.sp
  | "fp" -> Reg.fp
  | "ra" -> Reg.ra
  | _ when String.length name >= 2 && name.[0] = 'a' ->
    let n = suffix_int "a" in
    if n >= 0 && n < Reg.max_args then Reg.arg n else fail ()
  | _ when String.length name >= 2 && name.[0] = 't' ->
    let n = suffix_int "t" in
    if n >= 0 && n < Reg.max_tmps then Reg.tmp n else fail ()
  | _ when String.length name >= 2 && name.[0] = 'r' ->
    let n = suffix_int "r" in
    if Reg.is_valid n then n else fail ()
  | _ -> fail ()

let binop_of_string = function
  | "add" -> Some Insn.Add
  | "sub" -> Some Insn.Sub
  | "mul" -> Some Insn.Mul
  | "div" -> Some Insn.Div
  | "mod" -> Some Insn.Mod
  | "and" -> Some Insn.And
  | "or" -> Some Insn.Or
  | "xor" -> Some Insn.Xor
  | "shl" -> Some Insn.Shl
  | "shr" -> Some Insn.Shr
  | _ -> None

let cmp_of_string = function
  | "eq" -> Some Insn.Eq
  | "ne" -> Some Insn.Ne
  | "lt" -> Some Insn.Lt
  | "le" -> Some Insn.Le
  | "gt" -> Some Insn.Gt
  | "ge" -> Some Insn.Ge
  | _ -> None

let sys_of_string line = function
  | "putc" -> Insn.Sys_putc
  | "getc" -> Insn.Sys_getc
  | "print_int" -> Insn.Sys_print_int
  | "exit" -> Insn.Sys_exit
  | s -> error line "unknown syscall '%s'" s

(* Split an operand field on commas/spaces; "4(fp)" becomes ["4"; "fp"]. *)
let operands text =
  let cleaned = String.map (fun c ->
      match c with ',' | '(' | ')' -> ' ' | c -> c) text
  in
  String.split_on_char ' ' cleaned |> List.filter (fun s -> s <> "")

let int_operand line s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> error line "expected an integer, found '%s'" s

let target_operand line s =
  if String.length s > 1 && s.[0] = '@' then
    int_operand line (String.sub s 1 (String.length s - 1))
  else error line "expected a '@' target, found '%s'" s

let site_operand line s =
  let prefix = "site:" in
  let p = String.length prefix in
  if String.length s > p && String.sub s 0 p = prefix then
    int_operand line (String.sub s p (String.length s - p))
  else error line "expected 'site:N', found '%s'" s

let rec parse_fields line mnemonic args =
  let reg = reg_of_string line in
  let imm = int_operand line in
  match (mnemonic, args) with
  | "li", [ rd; n ] -> Insn.Li (reg rd, imm n)
  | "mov", [ rd; rs ] -> Insn.Mov (reg rd, reg rs)
  | "ld", [ rd; off; base ] -> Insn.Load (reg rd, reg base, imm off)
  | "st", [ rs; off; base ] -> Insn.Store (reg rs, reg base, imm off)
  | "jmp", [ t ] -> Insn.Jmp (target_operand line t)
  | "call", [ t ] -> Insn.Call (target_operand line t)
  | "ret", [] -> Insn.Ret
  | "push", [ rs ] -> Insn.Push (reg rs)
  | "pop", [ rd ] -> Insn.Pop (reg rd)
  | "sys", [ s ] -> Insn.Syscall (sys_of_string line s)
  | "chkz", [ rs; site ] -> Insn.Checkz (reg rs, site_operand line site)
  | "watch", [ lo; hi; site ] ->
    Insn.Watch (reg lo, reg hi, site_operand line site)
  | "unwat", [ lo; hi ] -> Insn.Unwatch (reg lo, reg hi)
  | "clrp", [] -> Insn.Clearpred
  | "halt", [] -> Insn.Halt
  | "nop", [] -> Insn.Nop
  | _ ->
    let n = String.length mnemonic in
    (* branches: b<cmp> rs, rt, @target *)
    (match
       if n > 1 && mnemonic.[0] = 'b' then
         cmp_of_string (String.sub mnemonic 1 (n - 1))
       else None
     with
     | Some cmp ->
       (match args with
        | [ rs; rt; t ] -> Insn.Br (cmp, reg rs, reg rt, target_operand line t)
        | _ -> error line "branch needs rs, rt, @target")
     | None ->
       (* set-on-compare: s<cmp> / s<cmp>i *)
       (match
          if n > 1 && mnemonic.[0] = 's' then
            if mnemonic.[n - 1] = 'i' then
              Option.map (fun c -> (c, true))
                (cmp_of_string (String.sub mnemonic 1 (n - 2)))
            else
              Option.map (fun c -> (c, false))
                (cmp_of_string (String.sub mnemonic 1 (n - 1)))
          else None
        with
        | Some (cmp, true) ->
          (match args with
           | [ rd; rs; k ] -> Insn.Cmpi (cmp, reg rd, reg rs, imm k)
           | _ -> error line "scmpi needs rd, rs, imm")
        | Some (cmp, false) ->
          (match args with
           | [ rd; rs; rt ] -> Insn.Cmp (cmp, reg rd, reg rs, reg rt)
           | _ -> error line "scmp needs rd, rs, rt")
        | None ->
          (* binops: <op> rd, rs, rt / <op>i rd, rs, imm *)
          (match
             if n > 1 && mnemonic.[n - 1] = 'i' then
               Option.map (fun b -> (b, true))
                 (binop_of_string (String.sub mnemonic 0 (n - 1)))
             else Option.map (fun b -> (b, false)) (binop_of_string mnemonic)
           with
           | Some (op, true) ->
             (match args with
              | [ rd; rs; k ] -> Insn.Binopi (op, reg rd, reg rs, imm k)
              | _ -> error line "binopi needs rd, rs, imm")
           | Some (op, false) ->
             (match args with
              | [ rd; rs; rt ] -> Insn.Binop (op, reg rd, reg rs, reg rt)
              | _ -> error line "binop needs rd, rs, rt")
           | None -> error line "unknown mnemonic '%s'" mnemonic)))

and parse_insn ?(line = 0) text =
  let text = String.trim text in
  match String.index_opt text ' ' with
  | None when text = "" -> error line "empty instruction"
  | None -> parse_fields line text []
  | Some i ->
    let mnemonic = String.sub text 0 i in
    let rest = String.sub text i (String.length text - i) in
    if mnemonic = "<p>" then Insn.Pred (parse_insn ~line rest)
    else parse_fields line mnemonic (operands rest)

(* Strip "NNN:" pc prefixes, "name:" labels, and '#' comments. *)
let strip_line text =
  let text =
    match String.index_opt text '#' with
    | Some i -> String.sub text 0 i
    | None -> text
  in
  let text = String.trim text in
  match String.index_opt text ':' with
  | Some i when i = String.length text - 1 -> ""  (* pure label line *)
  | Some i ->
    let head = String.sub text 0 i in
    let is_pc_or_label =
      head <> "" && String.for_all (fun c -> c <> ' ') head
    in
    if is_pc_or_label then String.trim (String.sub text (i + 1) (String.length text - i - 1))
    else text
  | None -> text

(* Assemble a whole listing (one instruction per line; labels and '#'
   comments ignored) into a code array. *)
let parse_program text =
  let lines = String.split_on_char '\n' text in
  let code = ref [] in
  List.iteri
    (fun idx raw ->
      let stripped = strip_line raw in
      if stripped <> "" then
        code := parse_insn ~line:(idx + 1) stripped :: !code)
    lines;
  Array.of_list (List.rev !code)

(** Per-branch condition descriptions for the profiled-fixing extension.

    The paper's Section 4.4 future work proposes picking fix values that
    satisfy "not only the desired branch direction but also the normal
    value range and usage pattern" of the variable (value-invariant
    inference, as in DIDUCE). The predicated stubs carry only boundary
    constants; this compiler-emitted side table tells the engine where each
    fixable condition variable lives so it can observe its values at branch
    time and fix with a historically plausible one. *)

type home = Hglobal of int | Hframe of int  (** fp-relative offset *)

type rhs = Const of int | Var of home

type t = {
  var : home;
  pointer : bool;
  cmp : Insn.cmp;  (** the condition holding on the branch-taken edge *)
  rhs : rhs;
}

val home_to_string : home -> string
val to_string : t -> string

(** Comparison the forced edge must satisfy: [cmp] when the forced edge is
    the branch target, its negation when it is the fallthrough. *)
val edge_cmp : t -> forced_direction:bool -> Insn.cmp

type t = {
  code : Insn.t array;
  entry : int;
  globals_words : int;
  init_data : (int * int) list;
  sites : Site.t array;
  user_branches : int list;
  functions : (string * int) list;
  user_code_ranges : (int * int) list;
  fix_atoms : (int * Fix_atom.t) list;
  global_vars : (string * int) list;
  blank_addrs : (string * int) list;
  source_lines : (int * int) array;
}

(* Address of a named global variable. *)
let global_address program name = List.assoc_opt name program.global_vars

(* Addresses below this fault as null accesses: the unmapped null page.
   Globals start right here (the first global word is the runtime
   allocator's break). *)
let null_guard_words = 16

exception Invalid_program of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid_program s)) fmt

let all_branches program =
  let acc = ref [] in
  Array.iteri
    (fun pc insn -> if Insn.is_branch insn then acc := pc :: !acc)
    program.code;
  List.rev !acc

let branch_edge_count program = 2 * List.length program.user_branches

let rec check_insn program pc insn =
  let n = Array.length program.code in
  let check_target target =
    if target < 0 || target >= n then
      invalid "instruction %d: control target %d out of code range" pc target
  in
  let check_reg r what =
    if not (Reg.is_valid r) then invalid "instruction %d: bad %s register" pc what
  in
  match insn with
  | Insn.Br (_, rs, rt, target) ->
    check_reg rs "source";
    check_reg rt "source";
    check_target target
  | Insn.Jmp target | Insn.Call target -> check_target target
  | Insn.Binop (_, rd, rs, rt) | Insn.Cmp (_, rd, rs, rt) ->
    check_reg rd "dest";
    check_reg rs "source";
    check_reg rt "source"
  | Insn.Binopi (_, rd, rs, _) | Insn.Cmpi (_, rd, rs, _) ->
    check_reg rd "dest";
    check_reg rs "source"
  | Insn.Li (rd, _) -> check_reg rd "dest"
  | Insn.Mov (rd, rs) | Insn.Load (rd, rs, _) | Insn.Store (rd, rs, _) ->
    check_reg rd "dest";
    check_reg rs "source"
  | Insn.Push r | Insn.Pop r | Insn.Checkz (r, _) -> check_reg r "operand"
  | Insn.Ret | Insn.Syscall _ | Insn.Clearpred | Insn.Halt | Insn.Nop -> ()
  | Insn.Watch (lo, hi, _) | Insn.Unwatch (lo, hi) ->
    check_reg lo "operand";
    check_reg hi "operand"
  | Insn.Pred inner ->
    (match inner with
     | Insn.Pred _ -> invalid "instruction %d: nested predication" pc
     | _ -> check_insn program pc inner)

let validate program =
  let n = Array.length program.code in
  if n = 0 then invalid "empty code";
  if program.entry < 0 || program.entry >= n then invalid "entry out of range";
  Array.iteri (check_insn program) program.code;
  List.iter
    (fun pc ->
      if pc < 0 || pc >= n then invalid "user branch pc %d out of range" pc;
      if not (Insn.is_branch program.code.(pc)) then
        invalid "user branch pc %d is not a branch" pc)
    program.user_branches;
  Array.iteri
    (fun i site ->
      if site.Site.id <> i then invalid "site %d has id %d" i site.Site.id)
    program.sites;
  List.iter
    (fun (addr, _) ->
      if addr < null_guard_words || addr >= null_guard_words + program.globals_words
      then invalid "init data address %d outside globals" addr)
    program.init_data

let line_of_pc program pc =
  (* source_lines is sorted by pc; find the last entry at or before pc. *)
  let n = Array.length program.source_lines in
  let rec search lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      let mpc, line = program.source_lines.(mid) in
      if mpc <= pc then search (mid + 1) hi line else search lo (mid - 1) best
  in
  search 0 (n - 1) 0

let function_of_pc program pc =
  let best = ref None in
  List.iter
    (fun (name, fpc) ->
      if fpc <= pc then
        match !best with
        | Some (_, bpc) when bpc >= fpc -> ()
        | _ -> best := Some (name, fpc))
    program.functions;
  Option.map fst !best

let disassemble ?(lo = 0) ?hi program =
  let hi = match hi with Some h -> h | None -> Array.length program.code in
  let buf = Buffer.create 1024 in
  for pc = lo to hi - 1 do
    let label =
      match List.find_opt (fun (_, fpc) -> fpc = pc) program.functions with
      | Some (name, _) -> Printf.sprintf "%s:\n" name
      | None -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%5d: %s\n" label pc (Insn.to_string program.code.(pc)))
  done;
  Buffer.contents buf

(** Executable program images.

    A program is a flat instruction array (the pc is the array index), a
    globals segment with optional initial data, the table of detector report
    sites, and metadata produced by the compiler: which branches belong to
    *user* code (the branch-coverage universe — runtime-library branches are
    excluded, mirroring how the paper reports per-application coverage), the
    function table, and the addresses of the per-type blank structures used
    by NT-Path pointer fixing. *)

type t = {
  code : Insn.t array;
  entry : int;  (** pc of [main] *)
  globals_words : int;  (** size of the globals segment, in words *)
  init_data : (int * int) list;  (** initialised global words: (addr, value) *)
  sites : Site.t array;  (** report sites, indexed by id *)
  user_branches : int list;  (** pcs of coverage-counted conditional branches *)
  functions : (string * int) list;  (** function name -> entry pc *)
  user_code_ranges : (int * int) list;
      (** [\[start, end)] pc ranges of user (non-runtime-library) functions:
          the statement-coverage universe *)
  fix_atoms : (int * Fix_atom.t) list;
      (** branch pc -> fixable-condition description (the profiled-fixing
          extension's compiler hints) *)
  global_vars : (string * int) list;  (** global variable name -> address *)
  blank_addrs : (string * int) list;  (** type name -> blank structure address *)
  source_lines : (int * int) array;  (** (pc, source line), sorted by pc *)
}

(** Size of the unmapped null page: accesses below this address fault.
    Globals start at this address. *)
val null_guard_words : int

exception Invalid_program of string

(** Pcs of every conditional branch in the image (user and runtime). *)
val all_branches : t -> int list

(** Size of the branch-coverage universe: two edges per user branch. *)
val branch_edge_count : t -> int

(** Address of a named global variable, if any. *)
val global_address : t -> string -> int option

(** Structural well-formedness check; raises {!Invalid_program} on dangling
    control targets, bad registers, nested predication, ill-indexed sites or
    out-of-segment initial data. *)
val validate : t -> unit

(** Source line generating the instruction at [pc] (0 when unknown). *)
val line_of_pc : t -> int -> int

(** Name of the function containing [pc], if any. *)
val function_of_pc : t -> int -> string option

(** Textual disassembly of [\[lo, hi)] (defaults: whole image). *)
val disassemble : ?lo:int -> ?hi:int -> t -> string

type kind =
  | Bounds_check
  | Null_check
  | Watchpoint
  | Assertion

type t = {
  id : int;
  line : int;
  kind : kind;
  descr : string;
}

let kind_name = function
  | Bounds_check -> "bounds"
  | Null_check -> "null"
  | Watchpoint -> "watch"
  | Assertion -> "assert"

let to_string site =
  Printf.sprintf "site %d (%s, line %d): %s" site.id (kind_name site.kind)
    site.line site.descr

let pp fmt site = Format.pp_print_string fmt (to_string site)

lib/isa/site.mli: Format

lib/isa/site.ml: Format Printf

lib/isa/fix_atom.mli: Insn

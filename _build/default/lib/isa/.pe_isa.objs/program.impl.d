lib/isa/program.ml: Array Buffer Fix_atom Insn List Option Printf Reg Site

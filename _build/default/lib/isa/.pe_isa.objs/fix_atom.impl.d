lib/isa/fix_atom.ml: Insn Printf

lib/isa/program.mli: Fix_atom Insn Site

lib/isa/asm.ml: Array Insn List Option Printf Reg String

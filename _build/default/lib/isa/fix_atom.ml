(* Compiler-to-hardware description of a branch's fixable condition: which
   storage location holds the condition variable and what comparison the
   branch-taken edge asserts. The predicated stubs bake boundary values into
   the binary; this side table is the extra hint the profiled-fixing
   extension needs to pick values from observed history instead. *)

type home = Hglobal of int | Hframe of int

type rhs = Const of int | Var of home

type t = {
  var : home;
  pointer : bool;
  cmp : Insn.cmp;  (* the condition holding on the branch-taken edge *)
  rhs : rhs;
}

let home_to_string = function
  | Hglobal addr -> Printf.sprintf "g%d" addr
  | Hframe off -> Printf.sprintf "fp%+d" off

let to_string atom =
  Printf.sprintf "%s %s %s%s"
    (home_to_string atom.var)
    (Insn.cmp_name atom.cmp)
    (match atom.rhs with
     | Const k -> string_of_int k
     | Var home -> home_to_string home)
    (if atom.pointer then " (ptr)" else "")

(* The condition holding on the forced edge: as-is when the non-taken edge
   is the branch target, negated when it is the fallthrough. *)
let edge_cmp atom ~forced_direction =
  if forced_direction then atom.cmp else Insn.negate_cmp atom.cmp

(** Assembler for the textual instruction form {!Insn.to_string} produces.

    Completes the ISA toolchain round trip: anything the disassembler
    prints can be read back ([parse_insn (Insn.to_string i) = i], a tested
    property), so hand-written machine programs and dumped images are both
    usable. Listings may carry ["NNN:"] pc prefixes, ["name:"] labels
    (ignored — targets are absolute ["@NNN"]) and ['#'] comments. *)

exception Error of string * int  (** message, line *)

(** Parse one instruction. *)
val parse_insn : ?line:int -> string -> Insn.t

(** Assemble a whole listing into a code array. *)
val parse_program : string -> Insn.t array

(* Post-run analysis of the report log against a planted bug: did the
   monitored (taken-path) run expose it, did an NT-Path expose it, and which
   spurious sites fired (PathExpander-induced false positives, the Table 5
   metric). *)

type t = {
  detected_on_taken_path : bool;
  detected_on_nt_path : bool;
  false_positive_sites : Site.t list;  (* distinct, NT-Path-only, non-bug *)
  report_count : int;
}

let lines_of_bug compiled (bug : Bug.t) =
  List.map (Compile.tag_line compiled) bug.Bug.detect_tags

let site_at_bug_line bug_lines (site : Site.t) = List.mem site.Site.line bug_lines

let analyze ~(compiled : Compile.compiled) ~(machine : Machine.t) ~(bug : Bug.t) =
  let sites = compiled.Compile.program.Program.sites in
  let bug_lines = lines_of_bug compiled bug in
  let reports = machine.Machine.reports in
  let site id = sites.(id) in
  let hit_on ids = List.exists (fun id -> site_at_bug_line bug_lines (site id)) ids in
  let taken_sites = Report.sites_from_taken_path reports in
  let nt_sites = Report.sites_from_nt_paths reports in
  let false_positives =
    List.filter_map
      (fun id ->
        let s = site id in
        (* A false positive is a PathExpander-induced report: it fired in an
           NT-Path, is not the planted bug, and the taken path never fired
           it. *)
        if site_at_bug_line bug_lines s || List.mem id taken_sites then None
        else Some s)
      nt_sites
  in
  {
    detected_on_taken_path = hit_on taken_sites;
    detected_on_nt_path = hit_on nt_sites;
    false_positive_sites = false_positives;
    report_count = Report.count reports;
  }

let detected analysis =
  analysis.detected_on_taken_path || analysis.detected_on_nt_path

let false_positive_count analysis = List.length analysis.false_positive_sites

lib/detectors/diduce.ml: Context Hashtbl List Machine Option Program

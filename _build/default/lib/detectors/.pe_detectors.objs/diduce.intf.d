lib/detectors/diduce.mli: Machine Program

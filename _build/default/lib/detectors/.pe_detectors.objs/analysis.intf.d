lib/detectors/analysis.mli: Bug Compile Machine Site

lib/detectors/analysis.ml: Array Bug Compile List Machine Program Report Site

lib/detectors/bug.mli: Codegen

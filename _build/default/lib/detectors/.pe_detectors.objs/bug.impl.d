lib/detectors/bug.ml: Codegen

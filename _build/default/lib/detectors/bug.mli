(** Metadata for a planted bug.

    Each buggy application version plants exactly one bug, Siemens-style. A
    bug is *detected* in a run when some detector report fires at one of the
    source lines named by [detect_tags] ([//@tag] markers in the MiniC
    source, so metadata survives edits). Memory bugs are detectable by the
    CCured and iWatcher detectors, semantic bugs by assertions. *)

type kind = Memory | Semantic

(** Section 7.1's four reasons a bug can escape even PathExpander. The
    workloads are engineered so the bugs genuinely behave this way. *)
type miss_category =
  | Value_coverage  (** needs a specific data value, not a path *)
  | Hot_entry_edge  (** buggy path's entry edge is hot, so never spawned *)
  | Inconsistency  (** forced-path state inconsistency masks the bug *)
  | Special_input  (** even the NT-Path needs an uncommon input to reach it *)

type t = {
  id : string;
  version : int;
  kind : kind;
  descr : string;
  detect_tags : string list;
  needs_fixing : bool;
      (** detected only when consistency fixing is on (e.g. the man bug) *)
  expected_miss : miss_category option;
      (** [None]: PathExpander is expected to detect it *)
}

val kind_name : kind -> string
val miss_category_name : miss_category -> string

val make :
  id:string ->
  version:int ->
  kind:kind ->
  descr:string ->
  detect_tags:string list ->
  ?needs_fixing:bool ->
  ?expected_miss:miss_category ->
  unit ->
  t

val detectable_by : t -> Codegen.detector -> bool

(* A DIDUCE-style dynamic invariant detector (Hangal & Lam), one of the
   checker families the paper cites as beneficiaries of PathExpander.

   The detector watches every store to the program's global scalar state
   through the machine's store hook. In a *training* run it learns the value
   range each global ever takes; in a *monitored* run it flags stores
   outside the trained range (widened by a relative slack) as invariant
   violations. No assertions or annotations are needed, which makes it the
   cleanest demonstration of the paper's generality claim: PathExpander
   feeds any dynamic detector the non-taken paths, and anomalies on those
   paths surface as violations.

   Sandboxed stores are observed exactly like architectural ones (the
   monitoring happens at the access, before the sandbox decides the write's
   fate), so NT-Path anomalies are caught while their memory effects are
   still discarded — the monitor-memory-area principle. *)

type range = { mutable lo : int; mutable hi : int; mutable samples : int }

type violation = {
  addr : int;
  name : string;  (* nearest global symbol *)
  value : int;
  trained_lo : int;
  trained_hi : int;
  surprise : int;  (* distance outside the widened range, in range-spans *)
  on_nt_path : bool;
}

type t = {
  ranges : (int, range) Hashtbl.t;
  symbols : (string * int) list;  (* sorted by address, for naming *)
  globals_lo : int;
  globals_hi : int;
  mutable mode : [ `Training | `Monitoring ];
  mutable violations : violation list;
  slack_num : int;  (* range widened by slack_num/slack_den on each side *)
  slack_den : int;
}

(* Monitor the whole globals segment, word by word; violations are named by
   the nearest symbol at or below the address. *)
let create ?(slack_num = 1) ?(slack_den = 2) program =
  let symbols =
    List.sort
      (fun (_, a) (_, b) -> compare a b)
      program.Program.global_vars
  in
  {
    ranges = Hashtbl.create 256;
    symbols;
    globals_lo = Program.null_guard_words;
    globals_hi = Program.null_guard_words + program.Program.globals_words;
    mode = `Training;
    violations = [];
    slack_num;
    slack_den;
  }

let name_of t addr =
  let rec scan best = function
    | (name, a) :: rest when a <= addr -> scan (Some name) rest
    | _ -> best
  in
  Option.value ~default:"?" (scan None t.symbols)

let interesting t addr = addr >= t.globals_lo && addr < t.globals_hi

let observe_training t addr value =
  match Hashtbl.find_opt t.ranges addr with
  | Some r ->
    if value < r.lo then r.lo <- value;
    if value > r.hi then r.hi <- value;
    r.samples <- r.samples + 1
  | None -> Hashtbl.replace t.ranges addr { lo = value; hi = value; samples = 1 }

let widened t r =
  let span = max 1 (r.hi - r.lo) in
  let slack = span * t.slack_num / t.slack_den in
  (r.lo - slack, r.hi + slack)

let observe_monitoring t ctx addr value =
  match Hashtbl.find_opt t.ranges addr with
  | None -> ()  (* never stored during training: no invariant to violate *)
  | Some r ->
    let lo, hi = widened t r in
    if value < lo || value > hi then begin
      let excess = if value < lo then lo - value else value - hi in
      let span = max 1 (r.hi - r.lo) in
      t.violations <-
        {
          addr;
          name = name_of t addr;
          value;
          trained_lo = r.lo;
          trained_hi = r.hi;
          surprise = excess / span;
          on_nt_path = Context.is_sandboxed ctx;
        }
        :: t.violations
    end

(* Install the detector on [machine]; its behaviour follows [t.mode]. *)
let attach t machine =
  machine.Machine.store_hook <-
    Some
      (fun ctx addr value ->
        (* PathExpander's own predicated fix stores are not program stores *)
        if (not ctx.Context.in_pred_fix) && interesting t addr then
          match t.mode with
          | `Training -> observe_training t addr value
          | `Monitoring -> observe_monitoring t ctx addr value)

let start_monitoring t = t.mode <- `Monitoring

let violations t = List.rev t.violations

let distinct_violated_names t =
  List.sort_uniq compare (List.map (fun v -> v.name) t.violations)

let nt_path_violations t = List.filter (fun v -> v.on_nt_path) (violations t)

(** Post-run analysis of the report log against a planted bug.

    Detection means a report fired at one of the bug's tagged source lines;
    origin tells whether the baseline monitored run (taken path) or a forced
    NT-Path exposed it. False positives are the paper's Table 5 metric:
    distinct non-bug sites that fired {e only} inside NT-Paths —
    PathExpander-induced alarms, not the checker's own. *)

type t = {
  detected_on_taken_path : bool;
  detected_on_nt_path : bool;
  false_positive_sites : Site.t list;
  report_count : int;
}

val analyze : compiled:Compile.compiled -> machine:Machine.t -> bug:Bug.t -> t

(** Detected on either path. *)
val detected : t -> bool

val false_positive_count : t -> int

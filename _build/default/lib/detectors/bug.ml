type kind = Memory | Semantic

(* Why a bug can stay undetected even with PathExpander (Section 7.1). *)
type miss_category =
  | Value_coverage
  | Hot_entry_edge
  | Inconsistency
  | Special_input

type t = {
  id : string;
  version : int;
  kind : kind;
  descr : string;
  detect_tags : string list;
  needs_fixing : bool;
  expected_miss : miss_category option;
}

let kind_name = function Memory -> "memory" | Semantic -> "semantic"

let miss_category_name = function
  | Value_coverage -> "value-coverage"
  | Hot_entry_edge -> "hot-entry-edge"
  | Inconsistency -> "inconsistency"
  | Special_input -> "special-input"

let make ~id ~version ~kind ~descr ~detect_tags ?(needs_fixing = false)
    ?expected_miss () =
  { id; version; kind; descr; detect_tags; needs_fixing; expected_miss }

let detectable_by bug detector =
  match (bug.kind, detector) with
  | Memory, (Codegen.Ccured | Codegen.Iwatcher) -> true
  | Semantic, Codegen.Assertions -> true
  | Memory, (Codegen.Assertions | Codegen.No_detector) -> false
  | Semantic, (Codegen.Ccured | Codegen.Iwatcher | Codegen.No_detector) -> false

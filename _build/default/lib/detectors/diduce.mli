(** A DIDUCE-style dynamic invariant detector.

    Learns the value range of every named global scalar during a training
    run, then flags out-of-range stores during monitoring — no assertions
    or annotations required. Attached through the machine's store hook, it
    observes sandboxed NT-Path stores exactly like architectural ones, so
    anomalies PathExpander provokes on non-taken paths surface as
    violations while their memory effects are still discarded.

    Typical use: train on a baseline run of the same input, switch to
    monitoring, run again under PathExpander, inspect
    {!nt_path_violations}. *)

type t

type violation = {
  addr : int;
  name : string;  (** nearest global symbol *)
  value : int;
  trained_lo : int;
  trained_hi : int;
  surprise : int;
      (** how far outside the widened range, in units of the trained span —
          DIDUCE's anomaly ranking; forced-path noise scores low, genuine
          state-smashing bugs score high *)
  on_nt_path : bool;
}

(** Monitor the whole globals segment of [program] word by word (violations
    are named by the nearest symbol); the trained range is widened by
    [slack_num/slack_den] of its span on each side before a store counts as
    a violation (default: half a span). *)
val create : ?slack_num:int -> ?slack_den:int -> Program.t -> t

(** Install on a machine (replaces any existing store hook). The detector
    starts in training mode. *)
val attach : t -> Machine.t -> unit

(** Switch from learning ranges to reporting violations. *)
val start_monitoring : t -> unit

(** All violations, oldest first. *)
val violations : t -> violation list

(** Sorted names of globals with at least one violation. *)
val distinct_violated_names : t -> string list

(** Violations observed inside NT-Paths only. *)
val nt_path_violations : t -> violation list

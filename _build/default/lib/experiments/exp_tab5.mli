(** Table 5 — false positives and detections before/after fixing. *)

(** Print this experiment's table(s)/series to stdout. *)
val run : unit -> unit

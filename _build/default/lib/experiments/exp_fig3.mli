(** Figure 3 — Crash-Latency and Unsafe-Latency CDFs (Section 3.2). *)

(** Print this experiment's table(s)/series to stdout. *)
val run : unit -> unit

lib/experiments/exp_tab5.mli:

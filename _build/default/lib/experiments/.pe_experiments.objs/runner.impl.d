lib/experiments/runner.ml: Exp_ablation Exp_coverage Exp_cumulative Exp_extensions Exp_fig1 Exp_fig3 Exp_overhead Exp_params Exp_sw_hw Exp_tab2 Exp_tab3 Exp_tab4 Exp_tab5 List

lib/experiments/exp_cumulative.ml: Compile Coverage Engine Exp_common Hashtbl List Machine Printf Registry Rng Stats Table Workload

lib/experiments/exp_ablation.ml: Coverage Engine Exp_common List Nt_path Pe_config Registry Stats Table Workload

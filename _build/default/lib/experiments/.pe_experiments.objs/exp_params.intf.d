lib/experiments/exp_params.mli:

lib/experiments/exp_cumulative.mli:

lib/experiments/exp_common.mli: Bug Codegen Compile Engine Machine Pe_config Workload

lib/experiments/exp_tab3.mli:

lib/experiments/exp_coverage.ml: Coverage Engine Exp_common List Registry Stats Table Workload

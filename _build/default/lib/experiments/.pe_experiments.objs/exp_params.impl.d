lib/experiments/exp_params.ml: Analysis Codegen Coverage Engine Exp_common List Pe_config Printf Registry Table Workload

lib/experiments/exp_sw_hw.mli:

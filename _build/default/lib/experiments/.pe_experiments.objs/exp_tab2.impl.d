lib/experiments/exp_tab2.ml: Exp_common Machine_config Table

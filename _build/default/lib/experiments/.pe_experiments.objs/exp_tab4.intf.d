lib/experiments/exp_tab4.mli: Workload

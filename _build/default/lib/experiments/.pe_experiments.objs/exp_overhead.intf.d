lib/experiments/exp_overhead.mli:

lib/experiments/runner.mli:

lib/experiments/exp_overhead.ml: Engine Exp_common List Pe_config Registry Stats Table Workload

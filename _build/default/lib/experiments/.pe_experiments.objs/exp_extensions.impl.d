lib/experiments/exp_extensions.ml: Analysis Bug Codegen Compile Diduce Engine Exp_common List Machine Nt_path Pe_config Printf Registry Stats String Table Workload

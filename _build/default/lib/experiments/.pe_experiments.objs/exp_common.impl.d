lib/experiments/exp_common.ml: Bug Codegen Compile Engine List Machine Option Pe_config Printf Workload

lib/experiments/exp_tab3.ml: Bug Exp_common List Registry String Table Workload

lib/experiments/exp_sw_hw.ml: Compile Engine Exp_common List Machine Pe_config Pin_model Printf Registry Soft_engine Stats Table Workload

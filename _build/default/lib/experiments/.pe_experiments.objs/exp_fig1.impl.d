lib/experiments/exp_fig1.ml: Analysis Codegen Coverage Engine Exp_common List Machine Pe_config Printf Registry Report Workload

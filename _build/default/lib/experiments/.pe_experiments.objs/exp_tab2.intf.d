lib/experiments/exp_tab2.mli:

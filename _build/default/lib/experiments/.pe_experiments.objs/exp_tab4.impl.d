lib/experiments/exp_tab4.ml: Analysis Bug Codegen Exp_common List Pe_config Printf Registry Table Workload

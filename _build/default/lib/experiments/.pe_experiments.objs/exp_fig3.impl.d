lib/experiments/exp_fig3.ml: Engine Exp_common List Nt_path Pe_config Printf Registry Stats Table Workload

lib/experiments/exp_tab5.ml: Analysis Bug Codegen Exp_common Exp_tab4 Float List Stats Table Workload

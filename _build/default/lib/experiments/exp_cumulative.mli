(** Section 7.3 — cumulative coverage over generated inputs. *)

(** Print the per-application progression and the average improvement
    after [inputs] (default 50) generated test cases. *)
val run : ?inputs:int -> unit -> unit

(** Table 2 — simulated architecture parameters. *)

(** Print this experiment's table(s)/series to stdout. *)
val run : unit -> unit

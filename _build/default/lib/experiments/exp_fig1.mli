(** Figure 1 — the motivating print_tokens2 v10 demonstration. *)

(** Print this experiment's table(s)/series to stdout. *)
val run : unit -> unit

(* Shared plumbing for the experiment harness. *)

type run = {
  compiled : Compile.compiled;
  machine : Machine.t;
  result : Engine.result;
}

(* Compile and execute one workload configuration. *)
let run_app ?(detector = Codegen.No_detector) ?(fixing = true) ?bug
    ?(mode = Pe_config.Standard) ?config ?input (workload : Workload.t) =
  let compiled = Workload.compile ~detector ~fixing ?bug workload in
  let input = Option.value ~default:workload.Workload.default_input input in
  let machine = Machine.create ~input compiled.Compile.program in
  let config =
    match config with
    | Some c -> { c with Pe_config.fixing = c.Pe_config.fixing && fixing }
    | None ->
      let c = Workload.pe_config ~mode workload in
      { c with Pe_config.fixing }
  in
  let result = Engine.run ~config machine in
  { compiled; machine; result }

(* Detectors that can see a bug of this kind, in presentation order. *)
let detectors_for_kind = function
  | Bug.Memory -> [ Codegen.Ccured; Codegen.Iwatcher ]
  | Bug.Semantic -> [ Codegen.Assertions ]

let detector_label = function
  | Codegen.Ccured -> "Software Tool (CCured)"
  | Codegen.Iwatcher -> "Hardware Tool (iWatcher)"
  | Codegen.Assertions -> "Assertions"
  | Codegen.No_detector -> "None"

(* Bugs of [workload] that [detector] can detect. *)
let bugs_for workload detector =
  List.filter (fun b -> Bug.detectable_by b detector) workload.Workload.bugs

let overhead_pct ~baseline ~with_pe =
  if baseline = 0 then 0.0
  else 100.0 *. float_of_int (with_pe - baseline) /. float_of_int baseline

let heading title =
  Printf.printf "\n=== %s ===\n" title

(** Section 7.6 — MaxNTPathLength / threshold / MaxNumNTPaths sweeps. *)

(** Print this experiment's table(s)/series to stdout. *)
val run : unit -> unit

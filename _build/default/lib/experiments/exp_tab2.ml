(* Table 2 — parameters of the simulated architecture. *)

let run () =
  Exp_common.heading "Table 2: Parameters of the simulation";
  Table.print ~header:[ "Parameter"; "Value" ]
    (Machine_config.to_rows Machine_config.default)

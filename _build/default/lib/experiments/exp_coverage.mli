(** Section 7.3 — single-input branch and statement coverage. *)

(** Print this experiment's table(s)/series to stdout. *)
val run : unit -> unit

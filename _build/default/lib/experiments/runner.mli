(** The experiment registry: every table and figure of the paper's
    evaluation, plus the future-work extensions, addressable by id. This is
    the single entry point behind both `bin/experiments.exe` and the bench
    harness. *)

type experiment = {
  id : string;  (** e.g. ["tab4"], ["fig3"], ["ext1"] *)
  title : string;
  run : unit -> unit;  (** prints the table(s)/series to stdout *)
}

val all : experiment list
val find : string -> experiment option

(** Run everything, in presentation order. *)
val run_all : unit -> unit

val ids : unit -> string list

(** Section 4.2 — following non-taken edges inside NT-Paths. *)

(** Print this experiment's table(s)/series to stdout. *)
val run : unit -> unit

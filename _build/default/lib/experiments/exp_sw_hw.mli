(** Section 7.5 — hardware vs software PathExpander overheads. *)

(** Print this experiment's table(s)/series to stdout. *)
val run : unit -> unit

(* Table 3 — applications and bugs evaluated. *)

let tools_for (workload : Workload.t) =
  let kinds =
    List.sort_uniq compare
      (List.map (fun b -> b.Bug.kind) workload.Workload.bugs)
  in
  String.concat " and "
    (List.map
       (function
         | Bug.Memory -> "CCured and iWatcher"
         | Bug.Semantic -> "Assertions")
       kinds)

let run () =
  Exp_common.heading "Table 3: Applications and bugs evaluated";
  let rows =
    List.map
      (fun (workload : Workload.t) ->
        [
          workload.Workload.name;
          string_of_int (Workload.loc workload);
          string_of_int (Workload.bug_count workload);
          tools_for workload;
        ])
      Registry.buggy_apps
  in
  let total =
    [ "total"; ""; string_of_int Registry.total_bugs; "" ]
  in
  Table.print
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Left ]
    ~header:[ "Application"; "LOC"; "#Bugs"; "Detection Tool" ]
    (rows @ [ total ])

(** Shared plumbing for the experiment modules. *)

type run = {
  compiled : Compile.compiled;
  machine : Machine.t;
  result : Engine.result;
}

(** Compile and execute one workload configuration. [config] overrides the
    workload's default PathExpander configuration ([mode] is ignored when
    [config] is given); [fixing] gates both the compiled stubs and the
    engine behaviour. *)
val run_app :
  ?detector:Codegen.detector ->
  ?fixing:bool ->
  ?bug:int ->
  ?mode:Pe_config.mode ->
  ?config:Pe_config.t ->
  ?input:string ->
  Workload.t ->
  run

(** Detectors that can see bugs of this kind, in presentation order. *)
val detectors_for_kind : Bug.kind -> Codegen.detector list

(** Table 4/5 row labels, e.g. ["Software Tool (CCured)"]. *)
val detector_label : Codegen.detector -> string

(** Bugs of the workload that the detector can detect. *)
val bugs_for : Workload.t -> Codegen.detector -> Bug.t list

val overhead_pct : baseline:int -> with_pe:int -> float
val heading : string -> unit

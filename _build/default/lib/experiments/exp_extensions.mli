(** The paper's future work, implemented: OS syscall sandboxing,
    random NT-Path selection, the DIDUCE-style detector and profiled
    fixing. *)

(** Print this experiment's table(s)/series to stdout. *)
val run : unit -> unit

(** Table 3 — applications and bugs evaluated. *)

(** Print this experiment's table(s)/series to stdout. *)
val run : unit -> unit

(** Table 4 — bug detection results, baseline vs PathExpander. *)

(** Buggy applications containing memory bugs (the CCured/iWatcher rows). *)
val memory_apps : unit -> Workload.t list

(** Buggy applications containing semantic bugs (the assertions rows). *)
val semantic_apps : unit -> Workload.t list

(** Print the table and the distinct-bug totals. *)
val run : unit -> unit

(** Section 7.4 — standard-configuration vs CMP-option overhead. *)

(** Print this experiment's table(s)/series to stdout. *)
val run : unit -> unit

(** ASCII table rendering for experiment output. *)

type align = Left | Right

(** [render ~header rows] renders a boxed table. All rows must have the same
    arity as [header]; [aligns], when given, must match too.
    Raises [Invalid_argument] otherwise. *)
val render : ?aligns:align list -> header:string list -> string list list -> string

(** [print] is [render] followed by [print_endline]. *)
val print : ?aligns:align list -> header:string list -> string list list -> unit

(** Format a float as a percentage with one decimal: [12.3%]. *)
val fpct : float -> string

(** One-decimal float. *)
val f1 : float -> string

(** Two-decimal float. *)
val f2 : float -> string

(** [string_of_int]. *)
val int : int -> string

(* Deterministic splitmix64-style PRNG so every experiment is reproducible
   without depending on Random's global state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  let mask53 = (1 lsl 53) - 1 in
  let x = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) land mask53 in
  float_of_int x /. float_of_int (mask53 + 1)

let choose t items =
  match items with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ :: _ -> List.nth items (int t (List.length items))

let shuffle t items =
  let arr = Array.of_list items in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

lib/util/rng.mli:

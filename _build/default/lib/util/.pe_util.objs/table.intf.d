lib/util/table.mli:

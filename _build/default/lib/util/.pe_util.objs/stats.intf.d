lib/util/stats.mli:

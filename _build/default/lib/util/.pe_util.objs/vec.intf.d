lib/util/vec.mli:

(** Small statistics helpers used by the experiment harness. *)

(** Arithmetic mean; [0.] on the empty list. *)
val mean : float list -> float

val mean_int : int list -> float

(** Geometric mean; [0.] on the empty list. *)
val geomean : float list -> float

(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank method.
    Raises [Invalid_argument] on the empty list. *)
val percentile : 'a list -> float -> 'a

(** [cdf ~points samples] evaluates the empirical CDF of [samples] at each of
    [points]: fraction of samples [<=] the point. *)
val cdf : points:int list -> int list -> (int * float) list

(** [ratio ~num ~den] as a float; [0.] when [den = 0]. *)
val ratio : num:int -> den:int -> float

(** [pct ~num ~den] is [100 * num / den]; [0.] when [den = 0]. *)
val pct : num:int -> den:int -> float

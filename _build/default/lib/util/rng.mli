(** Deterministic pseudo-random number generator (splitmix64).

    All stochastic parts of the library (input generation, workload noise)
    thread one of these generators explicitly, so runs are reproducible. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal streams. *)
val create : int -> t

(** Independent copy; advancing one does not affect the other. *)
val copy : t -> t

(** Raw 64 random bits. *)
val next_int64 : t -> int64

(** 62 nonnegative random bits as an [int]. *)
val bits : t -> int

(** [int t bound] is uniform in [\[0, bound)]. Raises on [bound <= 0]. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive). *)
val int_in_range : t -> lo:int -> hi:int -> int

val bool : t -> bool

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

(** Uniform element of a non-empty list. *)
val choose : t -> 'a list -> 'a

(** Fisher-Yates shuffle. *)
val shuffle : t -> 'a list -> 'a list

let mean xs =
  match xs with
  | [] -> 0.0
  | _ :: _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let mean_int xs = mean (List.map float_of_int xs)

let geomean xs =
  match xs with
  | [] -> 0.0
  | _ :: _ ->
    let logs = List.map (fun x -> log (max x 1e-300)) xs in
    exp (mean logs)

let percentile xs p =
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | sorted ->
    let n = List.length sorted in
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    let idx = max 0 (min (n - 1) idx) in
    List.nth sorted idx

(* Cumulative distribution of [samples] evaluated at each point of [points]:
   fraction of samples <= point. *)
let cdf ~points samples =
  let sorted = List.sort compare samples in
  let n = List.length sorted in
  let count_le x = List.length (List.filter (fun s -> s <= x) sorted) in
  List.map
    (fun p ->
      let frac = if n = 0 then 0.0 else float_of_int (count_le p) /. float_of_int n in
      (p, frac))
    points

let ratio ~num ~den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let pct ~num ~den = 100.0 *. ratio ~num ~den

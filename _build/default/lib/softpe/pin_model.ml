(* Cost model of the PIN-based software PathExpander (Section 5).

   The software implementation pays, on the host processor:
   - a baseline JIT/dispatch dilation on *every* executed instruction,
   - per-branch analysis code that maintains the exercise-history hash table
     and makes the spawn decision,
   - per-spawn processor-state checkpointing through the PIN API,
   - per-NT-Path-write restore-log maintenance, and the log replay plus
     register restore at squash.

   The constants are calibrated against the published overheads of PIN-style
   tools (PIN's own dispatch overhead of a few x, Valgrind/Purify-class tools
   at 10-100x): they are inputs to the model, not measurements. *)

type t = {
  dilation : int;  (* host instructions per guest instruction under PIN *)
  branch_analysis_insns : int;  (* per executed branch *)
  spawn_insns : int;  (* checkpoint processor state *)
  restore_base_insns : int;  (* reset registers, resume taken path *)
  write_log_insns : int;  (* log one overwritten memory word *)
  restore_per_write_insns : int;  (* undo one logged write *)
}

let default =
  {
    dilation = 3;
    branch_analysis_insns = 120;
    spawn_insns = 2500;
    restore_base_insns = 1500;
    write_log_insns = 25;
    restore_per_write_insns = 12;
  }

type accounting = {
  native_insns : int;  (* the un-instrumented monitored run *)
  host_insns : int;  (* modelled instrumented execution *)
  slowdown : float;  (* host / native *)
}

(* Modelled host cost of a software-PathExpander run with the given dynamic
   profile. *)
let account model ~taken_insns ~taken_branches ~spawns ~nt_insns ~nt_branches
    ~nt_writes =
  let host =
    (taken_insns * model.dilation)
    + (taken_branches * model.branch_analysis_insns)
    + (spawns * (model.spawn_insns + model.restore_base_insns))
    + (nt_insns * model.dilation)
    + (nt_branches * model.branch_analysis_insns)
    + (nt_writes * (model.write_log_insns + model.restore_per_write_insns))
  in
  {
    native_insns = taken_insns;
    host_insns = host;
    slowdown =
      (if taken_insns = 0 then 0.0
       else float_of_int host /. float_of_int taken_insns);
  }

(** Cost model of the PIN-based software PathExpander (Section 5).

    The software implementation pays, on the host processor: a JIT/dispatch
    dilation on every executed instruction, per-branch analysis code
    maintaining the exercise-history hash table, per-spawn processor-state
    checkpointing, and per-write restore-log maintenance plus replay at
    squash. The constants are calibrated against the published overheads of
    PIN-class tools; they are inputs to the model, not measurements. *)

type t = {
  dilation : int;  (** host instructions per guest instruction under PIN *)
  branch_analysis_insns : int;  (** per executed branch *)
  spawn_insns : int;  (** checkpoint processor state *)
  restore_base_insns : int;  (** reset registers, resume the taken path *)
  write_log_insns : int;  (** log one overwritten memory word *)
  restore_per_write_insns : int;  (** undo one logged write *)
}

val default : t

type accounting = {
  native_insns : int;  (** the un-instrumented monitored run *)
  host_insns : int;  (** modelled instrumented execution *)
  slowdown : float;  (** host / native *)
}

(** Modelled host cost of a software-PathExpander run with the given
    dynamic profile. *)
val account :
  t ->
  taken_insns:int ->
  taken_branches:int ->
  spawns:int ->
  nt_insns:int ->
  nt_branches:int ->
  nt_writes:int ->
  accounting

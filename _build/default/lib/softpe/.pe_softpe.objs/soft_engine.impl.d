lib/softpe/soft_engine.ml: Array Context Coverage Cpu Engine Hashtbl Insn List Machine Nt_path Option Pe_config Pin_model Program

lib/softpe/pin_model.ml:

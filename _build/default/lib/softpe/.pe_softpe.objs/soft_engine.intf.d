lib/softpe/soft_engine.mli: Coverage Engine Machine Nt_path Pe_config Pin_model

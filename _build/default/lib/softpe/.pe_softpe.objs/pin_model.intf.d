lib/softpe/pin_model.mli:

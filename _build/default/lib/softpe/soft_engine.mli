(** The pure-software PathExpander implementation (Section 5).

    Functionally mirrors the hardware standard configuration — the same
    NT-Path selection policy, run serially — with the software mechanisms:
    an exact exercise-history hash table instead of the BTB counters, a
    processor-state checkpoint structure for spawns, and a restore-log
    sandbox (writes go straight to memory; old values are logged and
    replayed backwards at squash). The run is costed with {!Pin_model},
    which is where the paper's 3-4 orders of magnitude appear. *)

type result = {
  outcome : Engine.outcome;
  coverage : Coverage.t;
  spawns : int;
  nt_records : Nt_path.record list;
  accounting : Pin_model.accounting;
}

val run :
  ?config:Pe_config.t -> ?model:Pin_model.t -> ?fuel:int -> Machine.t -> result

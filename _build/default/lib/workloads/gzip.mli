(** 164.gzip — an LZ77 compressor standing in for SPEC2000's 164.gzip:
    hash-chained longest-match search with block-buffered token output. No
    planted bugs; used by the crash-latency, overhead, ablation and
    parameter studies. *)

(** MiniC source with the selected single bug planted. *)
val source : bug:int option -> string

val bugs : Bug.t list

(** A general input that triggers none of the planted bugs. *)
val default_input : string

val gen_input : Rng.t -> string

val workload : Workload.t

(** 197.parser — a dictionary word-segmenter standing in for SPEC2000's
    197.parser: backtracking segmentation of unbroken letter streams. No
    planted bugs; used by the overhead studies. *)

(** MiniC source with the selected single bug planted. *)
val source : bug:int option -> string

val bugs : Bug.t list

(** A general input that triggers none of the planted bugs. *)
val default_input : string

val gen_input : Rng.t -> string

val workload : Workload.t

(* The full application roster (Table 3 plus the three SPEC overhead
   benchmarks of Section 6.3). *)

let print_tokens = Print_tokens.workload
let print_tokens2 = Print_tokens2.workload
let schedule = Schedule.workload
let schedule2 = Schedule2.workload
let bc = Bc.workload
let man = Man.workload
let go = Go.workload
let gzip = Gzip.workload
let vpr = Vpr.workload
let parser = Parser_bench.workload

(* The seven buggy applications of Table 3 (38 bugs in total). *)
let buggy_apps =
  [ go; bc; man; print_tokens2; print_tokens; schedule; schedule2 ]

(* Applications used in the performance studies (Section 6.3 adds gzip, vpr
   and parser to the buggy set). *)
let perf_apps = buggy_apps @ [ gzip; vpr; parser ]

(* The crash-latency study's representative applications (Figure 3). *)
let latency_apps = [ go; gzip; vpr ]

let all = perf_apps

let total_bugs = List.fold_left (fun acc w -> acc + Workload.bug_count w) 0 buggy_apps

let find name =
  match List.find_opt (fun w -> w.Workload.name = name) all with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "unknown workload '%s'" name)

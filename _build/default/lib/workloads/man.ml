(* man-1.5h1 — a man-page formatter stand-in: processes roff-style directive
   lines (.TH .SH .B .I .PP .so) and word-wraps body text.

   One planted memory bug, reproducing the paper's man result including its
   Table 5 behaviour: the [.so]-include state pointer is NULL in common
   runs. Forcing the [so_ptr != NULL] edge *without* consistency fixing
   dereferences NULL and the NT-Path crashes before the buggy copy loop —
   the bug is missed and a spurious null-check report is filed. *With*
   pointer fixing, [so_ptr] is redirected to the blank structure, the copy
   loop runs, and its missing bound check overruns [so_target] — detected
   only after fixing ([needs_fixing]). *)

let v bug k ~good ~bad = if bug = Some k then bad else good

let source ~bug =
  Printf.sprintf
    {|
// man: roff-ish man page formatter (man-1.5h1 stand-in)

char ibuf[4096];
int ilen = 0;
int icur = 0;

char line[128];
int llen = 0;

char so_target[8];                           //@tag man_so_decl
char *so_ptr = NULL;
char *cur_font = NULL;
char *trailer = NULL;

int line_no = 0;
int width = 60;
int col = 0;
int section_no = 0;
int bold_words = 0;

void read_input() {
  int c = getc();
  while (c != -1 && ilen < 4095) {
    ibuf[ilen] = c;
    ilen = ilen + 1;
    c = getc();
  }
}

int next_line() {
  if (icur >= ilen) {
    return 0;
  }
  llen = 0;
  while (icur < ilen && ibuf[icur] != 10) {
    if (llen < 126) {
      line[llen] = ibuf[icur];
      llen = llen + 1;
    }
    icur = icur + 1;
  }
  icur = icur + 1;
  line[llen] = 0;
  line_no = line_no + 1;
  return 1;
}

void out_char(int c) {
  putc(c);
  col = col + 1;
  if (col >= width) {
    putc(10);
    col = 0;
  }
}

void out_word(char *w, int from) {
  int i = from;
  while (w[i] != 0 && w[i] != ' ') {
    out_char(w[i]);
    i = i + 1;
  }
  out_char(' ');
}

// the .so include machinery: so_ptr is only ever set by a .so directive,
// which common pages don't contain
void check_include() {
  if (so_ptr != NULL) {
    int i = 0;
    while (%s) {
      int c = so_ptr[i];
      so_target[i] = c;                      //@tag man_so_overrun
      i = i + 1;
    }
  }
}

void directive() {
  if (line[1] == 'T' && line[2] == 'H') {
    // title header
    putc(10);
    out_word(line, 4);
    putc(10);
    col = 0;
    return;
  }
  if (line[1] == 'S' && line[2] == 'H') {
    section_no = section_no + 1;
    putc(10);
    print_int(section_no);
    putc(' ');
    out_word(line, 4);
    putc(10);
    col = 0;
    return;
  }
  if (line[1] == 'B') {
    bold_words = bold_words + 1;
    if (cur_font != NULL) {
      // font escape state — NULL in common runs (false-positive generator)
      out_char(cur_font[0]);
    }
    out_word(line, 3);
    return;
  }
  if (line[1] == 'I') {
    out_word(line, 3);
    return;
  }
  if (line[1] == 'P' && line[2] == 'P') {
    putc(10);
    col = 0;
    return;
  }
  if (line[1] == 's' && line[2] == 'o') {
    so_ptr = line + 4;
    check_include();
    so_ptr = NULL;
    return;
  }
}

void body_line() {
  int i = 0;
  while (i < llen) {
    if (line[i] == ' ') {
      out_char(' ');
      i = i + 1;
    } else {
      out_word(line, i);
      while (i < llen && line[i] != ' ') {
        i = i + 1;
      }
    }
  }
}

int main() {
  read_input();
  while (next_line() == 1) {
    check_include();
    diag_check(line_no);
    if (llen > 1 && line[0] == '.') {
      directive();
    } else {
      body_line();
    }
  }
  fp_summary(line_no);
  if (trailer != NULL) {
    out_word(trailer, 0);
  }
  putc(10);
  return 0;
}
|}
    (v bug 1 ~good:"i < 8 && so_ptr[i] != 0" ~bad:"i <= line_no + 7")
  ^ Cold_code.fp_region
  ^ Cold_code.block ~modes:10

let bugs =
  [
    Bug.make ~id:"man-v1" ~version:1 ~kind:Bug.Memory
      ~descr:"the .so include copy loop has no bound: overruns so_target; \
              reachable only after the NULL so_ptr is fixed to a blank \
              structure"
      ~detect_tags:[ "man_so_overrun"; "man_so_decl" ]
      ~needs_fixing:true ()
  ]

let default_input =
  ".TH LS 1\n.SH NAME\nls list directory contents\n.SH SYNOPSIS\n\
   .B ls\noption file\n.SH DESCRIPTION\nlist information about the files\n\
   .PP\nsorted alphabetically by default\nthe output is columnated\n"

let gen_input rng =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ".TH PAGE 1\n";
  let words = [ "file"; "list"; "show"; "the"; "output"; "data"; "info" ] in
  let n = Rng.int_in_range rng ~lo:5 ~hi:15 in
  for _ = 1 to n do
    (match Rng.int rng 8 with
     | 0 -> Buffer.add_string buf ".SH SECTION\n"
     | 1 -> Buffer.add_string buf (".B " ^ Rng.choose rng words ^ "\n")
     | 2 -> Buffer.add_string buf (".I " ^ Rng.choose rng words ^ "\n")
     | 3 -> Buffer.add_string buf ".PP\n"
     | _ ->
       for _ = 1 to Rng.int_in_range rng ~lo:2 ~hi:6 do
         Buffer.add_string buf (Rng.choose rng words);
         Buffer.add_char buf ' '
       done;
       Buffer.add_char buf '\n')
  done;
  Buffer.contents buf

let workload =
  {
    Workload.name = "man-1.5h1";
    descr = "man page formatter (man stand-in)";
    app_class = Workload.Open_source;
    source;
    bugs;
    default_input;
    gen_input;
    max_nt_path_length = 1000;
  }

(** bc-1.06 — an expression-calculator stand-in with recursive-descent
    parsing, variables and an integer square root.

    Two memory bugs matching the paper's bc results: v1 (square-root
    scratch overrun on the cold 's' path) is detected; v2 is the paper's
    hot-entry-edge miss — the negative-result padding edge saturates its
    exercise counter before the nesting depth grows dangerous, and is
    recovered by a higher threshold (par1) or the random selection factor
    (ext2). *)

(** MiniC source with the selected single bug planted. *)
val source : bug:int option -> string

val bugs : Bug.t list

(** A general input that triggers none of the planted bugs. *)
val default_input : string

val gen_input : Rng.t -> string

val workload : Workload.t

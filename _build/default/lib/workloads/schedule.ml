(* schedule — Siemens priority scheduler, re-implemented in MiniC.

   Three priority queues of jobs (linked lists, heap-allocated) plus a
   blocked list, driven by a command stream: 1 p = new job at priority p,
   2 i p = reprioritise job i, 3 = block current, 4 r = unblock, 5 = quantum
   expire, 6 = finish current, 7 = flush, 8 a = debug dump. Common inputs
   use only commands 1/3/5/6, leaving the other handlers cold.

   Nine single-bug versions, all semantic (assertions):
   v2, v4, v6, v9 detected by PathExpander; v1 and v3 missed (value
   coverage: need ≥10000 accumulated work / ≥9 concurrent jobs), v5 and v8
   missed (special input: need argument values 42 / 77 in the stream), v7
   missed (inconsistency: the boundary fix pins the index at the first
   guard, which cannot satisfy the deeper one). *)

let v bug k ~good ~bad = if bug = Some k then bad else good

let source ~bug =
  Printf.sprintf
    {|
// schedule: priority scheduler (Siemens suite port)

struct job {
  int id;
  int prio;
  int slice;
  struct job *next;
};

char ibuf[2048];
int ilen = 0;
int icur = 0;

struct job *queues[4];
int qcount[4];
struct job *blocked_list;
int bcount = 0;

int next_id = 1;
int total_work = 0;
int finished = 0;
int base_quantum = 10;

void read_input() {
  int c = getc();
  while (c != -1 && ilen < 2047) {
    ibuf[ilen] = c;
    ilen = ilen + 1;
    c = getc();
  }
}

int read_int() {
  while (icur < ilen && !is_digit(ibuf[icur]) && ibuf[icur] != '-') {
    icur = icur + 1;
  }
  if (icur >= ilen) {
    return 0;
  }
  int sign = 1;
  if (ibuf[icur] == '-') {
    sign = -1;
    icur = icur + 1;
  }
  int value = 0;
  while (icur < ilen && is_digit(ibuf[icur])) {
    value = value * 10 + (ibuf[icur] - '0');
    icur = icur + 1;
  }
  return value * sign;
}

int total_jobs() {
  return qcount[1] + qcount[2] + qcount[3];
}

// append a job at the tail of its priority queue
void enqueue(struct job *j) {
  int p = j->prio;
  j->next = NULL;
  if (queues[p] == NULL) {
    queues[p] = j;
  } else {
    struct job *cur = queues[p];
    while (cur->next != NULL) {
      cur = cur->next;
    }
    cur->next = j;
  }
  qcount[p] = qcount[p] + 1;
}

// pop the head of the highest non-empty priority queue
struct job *dequeue_top() {
  int p = 3;
  while (p >= 1) {
    if (queues[p] != NULL) {
      struct job *j = queues[p];
      queues[p] = j->next;
      qcount[p] = qcount[p] - 1;
      return j;
    }
    p = p - 1;
  }
  return NULL;
}

void new_job(int prio) {
  if (prio < 1) {
    prio = 1;
  }
  if (prio >= 100) {
    // wildly out-of-range priorities are folded back into range
    if (prio >= 100 + bcount && bcount > 0) {
      %s
      assert(prio < 100);                        //@tag sched_assert7
    }
    prio = 2;
  }
  if (prio > 3) {
    prio = 3;
  }
  struct job *j = malloc(sizeof(struct job));
  j->id = next_id;
  next_id = next_id + 1;
  j->prio = prio;
  j->slice = base_quantum + prio * 10;
  enqueue(j);
}

void account_work(struct job *j) {
  int old_total = total_work;
  int slice = j->slice;
  total_work = total_work + slice;
  %s
  assert(total_work >= old_total || slice < 0);  //@tag sched_assert1
}

void job_stats() {
  int jobs = total_jobs();
  if (jobs == 0) {
    return;
  }
  int sum = qcount[1] + qcount[2] * 2 + qcount[3] * 3;
  int avg = sum * 10 / jobs;
  %s
  assert(avg * jobs <= sum * 10 + jobs);         //@tag sched_assert3
}

void upgrade_prio(int idx, int prio) {
  %s
  if (prio < 1) {
    prio = 1;
  }
  assert(prio >= 1 && prio <= 3);                //@tag sched_assert9
  struct job *j = dequeue_top();
  if (j != NULL) {
    j->prio = prio;
    enqueue(j);
  }
  if (idx > 0) {
    job_stats();
  }
}

void block_current() {
  struct job *j = dequeue_top();
  if (j == NULL) {
    return;
  }
  j->next = blocked_list;
  blocked_list = j;
  bcount = bcount + 1;
}

void unblock(int ratio) {
  %s
  assert(bcount >= 0);                           //@tag sched_assert4
  if (bcount <= 0 || blocked_list == NULL) {
    return;
  }
  struct job *j = blocked_list;
  blocked_list = j->next;
  bcount = bcount - 1;
  if (ratio > 50) {
    j->prio = 3;
  }
  enqueue(j);
}

void quantum_expire() {
  struct job *j = dequeue_top();
  if (j != NULL) {
    account_work(j);
    enqueue(j);
  }
}

void finish_current() {
  struct job *j = dequeue_top();
  if (j == NULL) {
    return;
  }
  account_work(j);
  finished = finished + 1;
  print_str("done ");
  print_int(j->id);
  print_nl();
  free(j);
}

void flush_all() {
  struct job *j = dequeue_top();
  while (j != NULL) {
    finished = finished + 1;
    %s
    assert(finished > 0);                        //@tag sched_assert2
    %s
    assert(total_jobs() >= 0);                   //@tag sched_assert6
    free(j);
    j = dequeue_top();
  }
}

void debug_dump(int arg) {
  if (arg == 42) {
    %s
    assert(total_work >= 0);                     //@tag sched_assert5
  }
  if (arg == 77) {
    %s
    assert(finished >= 0);                       //@tag sched_assert8
  }
  print_str("jobs ");
  print_int(total_jobs());
  print_nl();
}

int main() {
  read_input();
  int op = read_int();
  while (op != 0) {
    if (op == 1) {
      new_job(read_int());
    } else if (op == 2) {
      int idx = read_int();
      upgrade_prio(idx, read_int());
    } else if (op == 3) {
      block_current();
    } else if (op == 4) {
      unblock(read_int());
    } else if (op == 5) {
      quantum_expire();
    } else if (op == 6) {
      finish_current();
    } else if (op == 7) {
      flush_all();
    } else if (op == 8) {
      debug_dump(read_int());
    }
    diag_check(op);
    op = read_int();
  }
  print_str("work ");
  print_int(total_work);
  print_str(" fin ");
  print_int(finished);
  print_nl();
  return 0;
}
|}
    (v bug 7 ~good:"" ~bad:"prio = -prio;")
    (v bug 1 ~good:""
       ~bad:"total_work = total_work - (total_work / 10000) * 10001;")
    (v bug 3 ~good:"" ~bad:"avg = avg + jobs / 9;")
    (v bug 9 ~good:"if (prio > 3) { prio = 3; }"
       ~bad:"prio = prio + 3; if (prio > 6) { prio = 3; }")
    (v bug 4 ~good:"" ~bad:"bcount = bcount - 1;")
    (v bug 2 ~good:"" ~bad:"finished = -finished;")
    (v bug 6 ~good:"" ~bad:"qcount[1] = -9;")
    (v bug 5 ~good:"" ~bad:"total_work = -1;")
    (v bug 8 ~good:"" ~bad:"finished = -5;")
  ^ Cold_code.block ~modes:8

let bugs =
  [
    Bug.make ~id:"schedule-v1" ~version:1 ~kind:Bug.Semantic
      ~descr:"accumulated work folds at 10000 (needs 10000 units of work)"
      ~detect_tags:[ "sched_assert1" ]
      ~expected_miss:Bug.Value_coverage ();
    Bug.make ~id:"schedule-v2" ~version:2 ~kind:Bug.Semantic
      ~descr:"flush negates the finished counter"
      ~detect_tags:[ "sched_assert2" ] ();
    Bug.make ~id:"schedule-v3" ~version:3 ~kind:Bug.Semantic
      ~descr:"average priority inflated once 9 jobs coexist"
      ~detect_tags:[ "sched_assert3" ]
      ~expected_miss:Bug.Value_coverage ();
    Bug.make ~id:"schedule-v4" ~version:4 ~kind:Bug.Semantic
      ~descr:"unblock decrements the blocked count before the empty check"
      ~detect_tags:[ "sched_assert4" ] ();
    Bug.make ~id:"schedule-v5" ~version:5 ~kind:Bug.Semantic
      ~descr:"debug dump with argument 42 corrupts the work counter"
      ~detect_tags:[ "sched_assert5" ]
      ~expected_miss:Bug.Special_input ();
    Bug.make ~id:"schedule-v6" ~version:6 ~kind:Bug.Semantic
      ~descr:"flush corrupts a priority-queue count"
      ~detect_tags:[ "sched_assert6" ] ();
    Bug.make ~id:"schedule-v7" ~version:7 ~kind:Bug.Semantic
      ~descr:"priorities past 100+bcount negated (the fix pins prio to 100)"
      ~detect_tags:[ "sched_assert7" ]
      ~expected_miss:Bug.Inconsistency ();
    Bug.make ~id:"schedule-v8" ~version:8 ~kind:Bug.Semantic
      ~descr:"debug dump with argument 77 corrupts the finished counter"
      ~detect_tags:[ "sched_assert8" ]
      ~expected_miss:Bug.Special_input ();
    Bug.make ~id:"schedule-v9" ~version:9 ~kind:Bug.Semantic
      ~descr:"reprioritisation inflates small priorities by 3"
      ~detect_tags:[ "sched_assert9" ] ();
  ]

let default_input =
  let phrase = "1 2 1 1 1 3 5 3 1 2 5 6 1 1 3 5 6 6 1 2 5 6 6 " in
  String.concat "" [ phrase; phrase; phrase ] ^ "\n"

let gen_input rng =
  let buf = Buffer.create 128 in
  let n = Rng.int_in_range rng ~lo:10 ~hi:40 in
  for _ = 1 to n do
    (match Rng.int rng 12 with
     | 0 | 1 | 2 | 3 ->
       Buffer.add_string buf (Printf.sprintf "1 %d" (Rng.int_in_range rng ~lo:1 ~hi:3))
     | 4 | 5 -> Buffer.add_string buf "3"
     | 6 | 7 -> Buffer.add_string buf "5"
     | 8 | 9 -> Buffer.add_string buf "6"
     | 10 ->
       (* rarer operations so cumulative coverage keeps growing *)
       Buffer.add_string buf
         (Rng.choose rng
            [ "4 60"; "4 10"; "7"; Printf.sprintf "2 %d %d" (Rng.int rng 5)
                (Rng.int_in_range rng ~lo:1 ~hi:3) ])
     | _ -> Buffer.add_string buf (Printf.sprintf "8 %d" (Rng.int rng 9)));
    Buffer.add_char buf ' '
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let workload =
  {
    Workload.name = "schedule";
    descr = "Siemens priority scheduler (linked lists)";
    app_class = Workload.Siemens;
    source;
    bugs;
    default_input;
    gen_input;
    max_nt_path_length = 500;
  }

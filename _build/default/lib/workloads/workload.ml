type app_class = Siemens | Spec | Open_source

type t = {
  name : string;
  descr : string;
  app_class : app_class;
  source : bug:int option -> string;
  bugs : Bug.t list;
  default_input : string;
  gen_input : Rng.t -> string;
  max_nt_path_length : int;
}

let app_class_name = function
  | Siemens -> "Siemens"
  | Spec -> "SPEC"
  | Open_source -> "open-source"

let bug_count workload = List.length workload.bugs

let find_bug workload version =
  match
    List.find_opt (fun b -> b.Bug.version = version) workload.bugs
  with
  | Some bug -> bug
  | None ->
    invalid_arg
      (Printf.sprintf "workload %s has no bug version %d" workload.name version)

(* Compile a workload, optionally with one planted bug version. *)
let compile ?(detector = Codegen.No_detector) ?(fixing = true) ?bug workload =
  let options = { Codegen.detector; fixing } in
  Compile.compile ~options (workload.source ~bug)

(* PathExpander configuration appropriate for this workload: the paper's
   MaxNTPathLength is 100 for the small Siemens programs and 1000 elsewhere;
   the Siemens budget is scaled to 500 for our more verbose code generator
   (EXPERIMENTS.md note 6). *)
let pe_config ?(mode = Pe_config.Standard) workload =
  {
    Pe_config.default with
    Pe_config.mode;
    max_nt_path_length = workload.max_nt_path_length;
  }

(* Source line count of the bug-free source (Table 3's LOC column). *)
let loc workload =
  let source = workload.source ~bug:None in
  String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 1 source

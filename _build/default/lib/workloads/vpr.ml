(* 175.vpr — a placement annealer standing in for SPEC2000's 175.vpr:
   blocks connected by two-point nets are placed on a grid and iteratively
   improved by randomised swaps with a cooling acceptance threshold,
   printing the cost once per outer iteration (periodic unsafe events).
   No planted bugs: vpr serves the crash-latency and overhead studies. *)

let source ~bug =
  ignore bug;
  {|
// vpr: simulated-annealing placer (175.vpr stand-in)

int grid[144];
int xpos[64];
int ypos[64];
int net_a[96];
int net_b[96];

int n_blocks = 48;
int n_nets = 80;
int seed = 1;

int lcg() {
  seed = seed * 1103515245 + 12345;
  int r = seed >> 16;
  if (r < 0) {
    r = -r;
  }
  return r;
}

void init_placement() {
  int i = 0;
  while (i < 144) {
    grid[i] = -1;
    i = i + 1;
  }
  i = 0;
  while (i < n_blocks) {
    int slot = lcg() % 144;
    while (grid[slot] >= 0) {
      slot = (slot + 1) % 144;
    }
    grid[slot] = i;
    xpos[i] = slot % 12;
    ypos[i] = slot / 12;
    i = i + 1;
  }
  i = 0;
  while (i < n_nets) {
    net_a[i] = lcg() % n_blocks;
    net_b[i] = lcg() % n_blocks;
    i = i + 1;
  }
}

int net_cost(int n) {
  int a = net_a[n];
  int b = net_b[n];
  return abs_int(xpos[a] - xpos[b]) + abs_int(ypos[a] - ypos[b]);
}

int total_cost() {
  int cost = 0;
  int n = 0;
  while (n < n_nets) {
    cost = cost + net_cost(n);
    n = n + 1;
  }
  return cost;
}

// cost delta of moving block b to (nx, ny): recompute its nets
int move_delta(int b, int nx, int ny) {
  int before = 0;
  int after = 0;
  int n = 0;
  while (n < n_nets) {
    if (net_a[n] == b || net_b[n] == b) {
      before = before + net_cost(n);
      int ox = xpos[b];
      int oy = ypos[b];
      xpos[b] = nx;
      ypos[b] = ny;
      after = after + net_cost(n);
      xpos[b] = ox;
      ypos[b] = oy;
    }
    n = n + 1;
  }
  return after - before;
}

int main() {
  int c = getc();
  while (c >= '0' && c <= '9') {
    seed = seed * 10 + (c - '0');
    c = getc();
  }
  init_placement();
  int temperature = 40;
  int outer = 0;
  while (outer < 10) {
    int inner = 0;
    while (inner < 150) {
      int b = lcg() % n_blocks;
      int slot = lcg() % 144;
      if (grid[slot] < 0) {
        int nx = slot % 12;
        int ny = slot / 12;
        int delta = move_delta(b, nx, ny);
        if (delta < temperature) {
          // accept: vacate the old slot, claim the new one
          grid[ypos[b] * 12 + xpos[b]] = -1;
          grid[slot] = b;
          xpos[b] = nx;
          ypos[b] = ny;
        }
      }
      inner = inner + 1;
    }
    print_str("cost ");
    diag_check(outer);
    print_int(total_cost());
    print_nl();
    if (temperature > 0) {
      temperature = temperature - 4;
    }
    outer = outer + 1;
  }
  return 0;
}
|}
  ^ Cold_code.block ~modes:18

let bugs = []

let default_input = "31\n"

let gen_input rng = Printf.sprintf "%d\n" (1 + Rng.int rng 9999)

let workload =
  {
    Workload.name = "175.vpr";
    descr = "simulated-annealing placer (SPEC2000 stand-in)";
    app_class = Workload.Spec;
    source;
    bugs;
    default_input;
    gen_input;
    max_nt_path_length = 1000;
  }

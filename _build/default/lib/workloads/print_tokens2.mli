(** print_tokens2 — the second Siemens tokenizer, home of the paper's
    Figure 1 bug.

    v10 is the literal Figure 1 buffer overrun: the string-constant
    classifier scans for the closing quote with no bound check. v1-v9 are
    semantic; v3 is engineered to be missed through inconsistency, v6
    through special input and v9 through value coverage. *)

(** MiniC source with the selected single bug planted. *)
val source : bug:int option -> string

val bugs : Bug.t list

(** A general input that triggers none of the planted bugs. *)
val default_input : string

val gen_input : Rng.t -> string

val workload : Workload.t

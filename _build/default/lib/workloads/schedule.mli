(** schedule — the Siemens priority scheduler (linked lists).

    Nine semantic bugs in the command handlers; the rare commands
    (reprioritise, unblock, flush, debug dump) are cold on common inputs.
    v2/v4/v6/v9 detected; v1/v3 value-coverage, v5/v8 special-input and v7
    inconsistency misses. *)

(** MiniC source with the selected single bug planted. *)
val source : bug:int option -> string

val bugs : Bug.t list

(** A general input that triggers none of the planted bugs. *)
val default_input : string

val gen_input : Rng.t -> string

val workload : Workload.t

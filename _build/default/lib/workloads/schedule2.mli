(** schedule2 — the second Siemens scheduler: the same command
    specification implemented over circular ring buffers.

    Seven semantic bugs; v1-v3 detected, v4/v5 value-coverage, v6
    special-input and v7 inconsistency misses. Also the workload whose
    state-smashing bugs the DIDUCE extension catches without assertions. *)

(** MiniC source with the selected single bug planted. *)
val source : bug:int option -> string

val bugs : Bug.t list

(** A general input that triggers none of the planted bugs. *)
val default_input : string

val gen_input : Rng.t -> string

val workload : Workload.t

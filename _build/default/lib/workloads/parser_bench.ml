(* 197.parser — a dictionary word-segmenter standing in for SPEC2000's
   197.parser: sentences arrive as unbroken letter streams and are
   segmented against a word dictionary by backtracking search, printing the
   segmentation of each sentence. No planted bugs: parser serves the
   overhead studies. *)

let source ~bug =
  ignore bug;
  {|
// parser: dictionary segmenter (197.parser stand-in)

char ibuf[4096];
int ilen = 0;
int icur = 0;

char sentence[128];
int slen = 0;

char dict[256] = "the cat sat on a mat dog ran big red sun is in it at an ox";
int starts[64];
int lens[64];
int n_words = 0;

int parsed_words = 0;
int failures = 0;

void build_dict() {
  int i = 0;
  int start = 0;
  n_words = 0;
  while (dict[i] != 0) {
    if (dict[i] == ' ') {
      if (i > start && n_words < 64) {
        starts[n_words] = start;
        lens[n_words] = i - start;
        n_words = n_words + 1;
      }
      start = i + 1;
    }
    i = i + 1;
  }
  if (i > start && n_words < 64) {
    starts[n_words] = start;
    lens[n_words] = i - start;
    n_words = n_words + 1;
  }
}

void read_input() {
  int c = getc();
  while (c != -1 && ilen < 4095) {
    ibuf[ilen] = c;
    ilen = ilen + 1;
    c = getc();
  }
}

int next_sentence() {
  if (icur >= ilen) {
    return 0;
  }
  slen = 0;
  while (icur < ilen && ibuf[icur] != 10) {
    if (slen < 126) {
      sentence[slen] = ibuf[icur];
      slen = slen + 1;
    }
    icur = icur + 1;
  }
  icur = icur + 1;
  return 1;
}

// does dictionary word w match the sentence at position pos?
int word_at(int w, int pos) {
  int i = 0;
  while (i < lens[w]) {
    if (pos + i >= slen) {
      return 0;
    }
    if (sentence[pos + i] != dict[starts[w] + i]) {
      return 0;
    }
    i = i + 1;
  }
  return 1;
}

// backtracking segmentation; returns the number of words or -1
int segment(int pos, int depth) {
  if (pos >= slen) {
    return 0;
  }
  if (depth > 40) {
    return -1;
  }
  int w = 0;
  while (w < n_words) {
    if (word_at(w, pos)) {
      int rest = segment(pos + lens[w], depth + 1);
      if (rest >= 0) {
        // emit this word as part of the chosen segmentation
        int i = 0;
        while (i < lens[w]) {
          putc(dict[starts[w] + i]);
          i = i + 1;
        }
        putc(' ');
        return rest + 1;
      }
    }
    w = w + 1;
  }
  return -1;
}

int main() {
  build_dict();
  read_input();
  while (next_sentence() == 1) {
    int words = segment(0, 0);
    diag_check(slen);
    if (words >= 0) {
      parsed_words = parsed_words + words;
    } else {
      failures = failures + 1;
      print_str("??");
    }
    print_nl();
  }
  print_str("words ");
  print_int(parsed_words);
  print_str(" fail ");
  print_int(failures);
  print_nl();
  return 0;
}
|}
  ^ Cold_code.block ~modes:8

let bugs = []

let default_input =
  "thecatsatonamat\nthedogranbig\nthesunisbigandred\nanoxatamat\n\
   theredcatranonthemat\nthebigdogsatinthesun\n"

let gen_input rng =
  let buf = Buffer.create 256 in
  let words = [ "the"; "cat"; "sat"; "on"; "a"; "mat"; "dog"; "ran"; "big"; "red" ] in
  for _ = 1 to Rng.int_in_range rng ~lo:3 ~hi:8 do
    for _ = 1 to Rng.int_in_range rng ~lo:3 ~hi:7 do
      Buffer.add_string buf (Rng.choose rng words)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let workload =
  {
    Workload.name = "197.parser";
    descr = "dictionary word segmenter (SPEC2000 stand-in)";
    app_class = Workload.Spec;
    source;
    bugs;
    default_input;
    gen_input;
    max_nt_path_length = 1000;
  }

(** The application roster: Table 3's seven buggy programs plus the three
    SPEC overhead benchmarks of Section 6.3. *)

val print_tokens : Workload.t
val print_tokens2 : Workload.t
val schedule : Workload.t
val schedule2 : Workload.t
val bc : Workload.t
val man : Workload.t
val go : Workload.t
val gzip : Workload.t
val vpr : Workload.t
val parser : Workload.t

(** The seven buggy applications (38 bugs in total). *)
val buggy_apps : Workload.t list

(** Applications used in the performance studies. *)
val perf_apps : Workload.t list

(** Figure 3's representative applications (go, gzip, vpr). *)
val latency_apps : Workload.t list

val all : Workload.t list

(** 38. *)
val total_bugs : int

(** Raises [Invalid_argument] on an unknown name. *)
val find : string -> Workload.t

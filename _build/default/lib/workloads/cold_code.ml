(* Generator for the rarely-enabled diagnostic regions every real
   application carries (verbose modes, error paths, disabled features) and
   the Siemens/SPEC programs have in abundance — the code whose absence
   would make our MiniC ports' branch coverage unrealistically high.

   The generated function is a chain of mode handlers behind a [diag_mode]
   early exit that production inputs never enable:

   - the early-exit's cold edge is forcible, and consistency fixing pins
     [diag_mode] to 1, so PathExpander covers mode 1's handler fully and
     walks the false edges of the other mode checks;
   - the deeper handlers ([diag_mode == k], k >= 2) stay unreachable even
     for NT-Paths (no nested forcing), keeping PathExpander's coverage
     realistically below 100%%, as in the paper. *)

(* Vary the handler bodies structurally so modes aren't clones. *)
let mode_body k =
  match k mod 4 with
  | 0 ->
    Printf.sprintf
      {|    if (x > %d) {
      diag_stat = diag_stat + %d;
    } else {
      diag_stat = diag_stat - 1;
    }
    if (x %% %d == 0) {
      diag_stat = diag_stat * 2;
    }
|}
      (k * 10) k (k + 2)
  | 1 ->
    Printf.sprintf
      {|    int t%d = x;
    while (t%d > %d) {
      t%d = t%d / 2;
      diag_stat = diag_stat + 1;
    }
    if (t%d == %d) {
      diag_stat = 0;
    }
|}
      k k (k + 4) k k k (k mod 3)
  | 2 ->
    Printf.sprintf
      {|    if (x < 0) {
      diag_stat = -diag_stat;
    }
    if (diag_stat > %d && x != %d) {
      diag_stat = diag_stat - %d;
    }
|}
      (k * 7) k k
  | _ ->
    Printf.sprintf
      {|    int r%d = x %% %d;
    if (r%d == 0) {
      diag_stat = diag_stat + x;
    } else if (r%d == 1) {
      diag_stat = diag_stat - x;
    } else {
      diag_stat = diag_stat + 1;
    }
|}
      k (k + 3) k k

(* The diagnostics function source; splice [call ()] somewhere hot. *)
let block ~modes =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    {|
// rarely-enabled diagnostics (off unless a debug build sets diag_mode)
int diag_mode = 0;
int diag_stat = 0;

void diag_check(int x) {
  if (diag_mode == 0) {
    return;
  }
|};
  for k = 1 to modes do
    Buffer.add_string buf (Printf.sprintf "  if (diag_mode == %d) {\n" k);
    Buffer.add_string buf (mode_body k);
    Buffer.add_string buf "  }\n"
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let call = "diag_check"

(* Statistics/summary region that the memory-bug applications run once at
   exit. Its full-capacity scans and NULL-guarded dereferences are the
   paper's false-positive generators: forcing a scan loop's body edge at
   its exit point *without* consistency fixing accesses one element past
   the array (a spurious bounds report and a red-zone hit), and forcing a
   NULL-pointer guard without fixing dereferences NULL (a spurious
   null-check report). Key-variable fixing pins the loop index to the
   boundary and redirects the pointers to blank structures, pruning these
   reports — Table 5. *)
let fp_region =
  {|
// end-of-run statistics (false-positive generators for forced edges)
int fp_recent[4];
int fp_hist[4];
int fp_marks[4];
int *fp_hint = NULL;
int *fp_aux = NULL;
int *fp_trace = NULL;
int fp_acc = 0;

void fp_summary(int x) {
  fp_recent[0] = x;
  fp_hist[x & 3] = x;
  int i = 0;
  while (i < 4) {
    fp_acc = fp_acc + fp_recent[i];
    i = i + 1;
  }
  int j = 0;
  while (j < 4) {
    fp_marks[j] = fp_acc + j;
    j = j + 1;
  }
  int k = 0;
  while (k < 4) {
    fp_acc = fp_acc + fp_hist[k] * 2;
    k = k + 1;
  }
  if (fp_hint != NULL) {
    fp_acc = fp_acc + fp_hint[0];
  }
  if (fp_aux != NULL) {
    fp_acc = fp_acc + fp_aux[0] + fp_aux[2];
  }
  if (fp_trace != NULL) {
    fp_acc = fp_acc - fp_trace[1];
  }
  // guards over array elements are unfixable: their forced edges keep
  // producing reports even with fixing on (the residual false positives)
  if (fp_hist[0] > 100000) {
    fp_acc = fp_acc + fp_marks[fp_hist[1] - 100000];
  }
  if (fp_recent[3] < -100000) {
    fp_acc = fp_acc + fp_hist[fp_recent[2] + 100000];
  }
  if (fp_marks[2] == 987654) {
    fp_acc = fp_acc + fp_recent[fp_marks[3] - 987000];
  }
  if (fp_acc < -100000000) {
    print_int(fp_acc);
  }
}
|}

(* 099.go — a Go-position evaluator standing in for SPEC95's 099.go: a
   19x19 board is synthesised from a seeded LCG, then scored by group
   search (explicit-stack DFS), liberty counting, territory estimation and
   a bag of branch-heavy pattern heuristics. Output happens only at the
   end, so NT-Paths almost never meet unsafe events — reproducing go's
   Figure 3 shape (fewer than 1%% of NT-Paths stop before 1000
   instructions).

   Two planted memory bugs, both of the paper's go category (missed even
   with PathExpander unless a special input is used): the buggy writes sit
   behind guards over board *data* — a ko marker value and a long-wall
   count — that the synthesised boards never produce, so even the forced
   edge executes the handlers in a harmless state. *)

let v bug k ~good ~bad = if bug = Some k then bad else good

let source ~bug =
  Printf.sprintf
    {|
// go: position evaluator (099.go stand-in)

int board[361];
int visited[361];
int stack[361];
int captab[12];                              //@tag go_captab_decl
int walls[8];                                //@tag go_walls_decl

int seed = 1;
int ko_count = 0;
int wall_n = 0;
int score = 0;

int lcg() {
  seed = seed * 1103515245 + 12345;
  int r = seed >> 16;
  if (r < 0) {
    r = -r;
  }
  return r;
}

void fill_board(int density) {
  int i = 0;
  while (i < 361) {
    int r = lcg() %% 100;
    if (r < density) {
      board[i] = 1;
    } else if (r < density * 2) {
      board[i] = 2;
    } else {
      board[i] = 0;
    }
    visited[i] = 0;
    i = i + 1;
  }
}

int row_of(int idx) {
  return idx / 19;
}

int col_of(int idx) {
  return idx %% 19;
}

// liberties of the group containing idx (explicit-stack flood fill)
int group_liberties(int idx) {
  int color = board[idx];
  if (color == 0) {
    return 0;
  }
  int libs = 0;
  int sp = 0;
  stack[sp] = idx;
  sp = sp + 1;
  visited[idx] = 1;
  while (sp > 0) {
    sp = sp - 1;
    int cur = stack[sp];
    int r = row_of(cur);
    int c = col_of(cur);
    int d = 0;
    while (d < 4) {
      int nb = cur;
      if (d == 0 && r > 0) { nb = cur - 19; }
      if (d == 1 && r < 18) { nb = cur + 19; }
      if (d == 2 && c > 0) { nb = cur - 1; }
      if (d == 3 && c < 18) { nb = cur + 1; }
      if (nb != cur) {
        if (board[nb] == 0) {
          libs = libs + 1;
        } else if (board[nb] == color && visited[nb] == 0) {
          if (sp < 360) {
            visited[nb] = 1;
            stack[sp] = nb;
            sp = sp + 1;
          }
        } else if (board[nb] == 3) {
          // ko marker bookkeeping: value 3 never occurs in synthesised boards
          %s                                 //@tag go_ko_overrun
          ko_count = ko_count + 1;
        }
      }
      d = d + 1;
    }
  }
  return libs;
}

// long straight walls of one colour feed the influence heuristic
void scan_walls() {
  int r = 0;
  while (r < 19) {
    int c = 0;
    while (c < 13) {
      int base = r * 19 + c;
      int k = 0;
      int run = 0;
      while (k < 6) {
        if (board[base + k] == 2) {
          run = run + 1;
        }
        k = k + 1;
      }
      if (run == 6) {
        // a six-stone wall: synthesised boards top out below six
        %s                                   //@tag go_wall_overrun
        wall_n = wall_n + 1;
      }
      c = c + 1;
    }
    r = r + 1;
  }
}

int atari_bonus(int idx) {
  int libs = group_liberties(idx);
  if (libs == 1) {
    return 8;
  }
  if (libs == 2) {
    return 3;
  }
  return 0;
}

int territory() {
  int t = 0;
  int i = 0;
  while (i < 361) {
    if (board[i] == 0) {
      int black = 0;
      int white = 0;
      int r = row_of(i);
      int c = col_of(i);
      if (r > 0 && board[i - 19] == 1) { black = black + 1; }
      if (r > 0 && board[i - 19] == 2) { white = white + 1; }
      if (r < 18 && board[i + 19] == 1) { black = black + 1; }
      if (r < 18 && board[i + 19] == 2) { white = white + 1; }
      if (c > 0 && board[i - 1] == 1) { black = black + 1; }
      if (c > 0 && board[i - 1] == 2) { white = white + 1; }
      if (c < 18 && board[i + 1] == 1) { black = black + 1; }
      if (c < 18 && board[i + 1] == 2) { white = white + 1; }
      if (black > 0 && white == 0) {
        t = t + 1;
      }
      if (white > 0 && black == 0) {
        t = t - 1;
      }
    }
    i = i + 1;
  }
  return t;
}

void evaluate() {
  int i = 0;
  while (i < 361) {
    visited[i] = 0;
    i = i + 1;
  }
  i = 0;
  while (i < 361) {
    if (board[i] == 1 && visited[i] == 0) {
      score = score + atari_bonus(i);
    }
    if (board[i] == 2 && visited[i] == 0) {
      score = score - atari_bonus(i);
    }
    i = i + 1;
  }
  score = score + territory();
  scan_walls();
  diag_check(score);
  score = score + wall_n * 5;
}

int read_int() {
  int c = getc();
  while (c != -1 && !(c >= '0' && c <= '9')) {
    c = getc();
  }
  int value = 0;
  while (c >= '0' && c <= '9') {
    value = value * 10 + (c - '0');
    c = getc();
  }
  return value;
}

int main() {
  seed = read_int();
  int rounds = read_int();
  if (rounds < 1) {
    rounds = 1;
  }
  int round = 0;
  while (round < rounds) {
    fill_board(18 + round %% 5);
    evaluate();
    round = round + 1;
  }
  fp_summary(score);
  print_str("score ");
  print_int(score);
  print_nl();
  return 0;
}
|}
    (v bug 1 ~good:"if (ko_count < 12) { captab[ko_count] = nb; }"
       ~bad:"captab[ko_count] = nb;")
    (v bug 2 ~good:"if (wall_n < 8) { walls[wall_n] = base; }"
       ~bad:"walls[wall_n] = base;")
  ^ Cold_code.fp_region
  ^ Cold_code.block ~modes:15

let bugs =
  [
    Bug.make ~id:"go-v1" ~version:1 ~kind:Bug.Memory
      ~descr:"ko bookkeeping writes captab[ko_count] unchecked; needs a \
              board with ko markers, which synthesised boards never contain"
      ~detect_tags:[ "go_ko_overrun"; "go_captab_decl" ]
      ~expected_miss:Bug.Special_input ();
    Bug.make ~id:"go-v2" ~version:2 ~kind:Bug.Memory
      ~descr:"wall influence writes walls[wall_n] unchecked; needs a board \
              with six-stone walls"
      ~detect_tags:[ "go_wall_overrun"; "go_walls_decl" ]
      ~expected_miss:Bug.Special_input ();
  ]

let default_input = "7 3\n"

let gen_input rng =
  Printf.sprintf "%d %d\n" (1 + Rng.int rng 1000) (1 + Rng.int rng 4)

let workload =
  {
    Workload.name = "099.go";
    descr = "Go position evaluator (SPEC95 stand-in)";
    app_class = Workload.Spec;
    source;
    bugs;
    default_input;
    gen_input;
    max_nt_path_length = 1000;
  }

(* schedule2 — the second Siemens scheduler: same command specification as
   schedule, but implemented with fixed-size circular ring buffers instead of
   linked lists (the real schedule2 is likewise an independent
   implementation of the same spec).

   Seven single-bug versions, all semantic (assertions): v1, v2, v3 detected
   by PathExpander; v4 and v5 missed (value coverage: need a full ring /
   ≥8 finished jobs), v6 missed (special input: needs ratio argument 99),
   v7 missed (inconsistency: the fixed boundary dodges the deeper guard). *)

let v bug k ~good ~bad = if bug = Some k then bad else good

let source ~bug =
  Printf.sprintf
    {|
// schedule2: priority scheduler on circular ring buffers (Siemens port)

char ibuf[2048];
int ilen = 0;
int icur = 0;

// three rings of job ids, priority 1..3
int ring1[16];
int ring2[16];
int ring3[16];
int head[4];
int tail[4];
int count[4];

int blocked[16];
int bcount = 0;

int next_id = 1;
int finished = 0;
int work_done = 0;

void read_input() {
  int c = getc();
  while (c != -1 && ilen < 2047) {
    ibuf[ilen] = c;
    ilen = ilen + 1;
    c = getc();
  }
}

int read_int() {
  while (icur < ilen && !is_digit(ibuf[icur])) {
    icur = icur + 1;
  }
  if (icur >= ilen) {
    return 0;
  }
  int value = 0;
  while (icur < ilen && is_digit(ibuf[icur])) {
    value = value * 10 + (ibuf[icur] - '0');
    icur = icur + 1;
  }
  return value;
}

int ring_get(int p, int slot) {
  if (p == 1) { return ring1[slot]; }
  if (p == 2) { return ring2[slot]; }
  return ring3[slot];
}

void ring_set(int p, int slot, int id) {
  if (p == 1) { ring1[slot] = id; }
  if (p == 2) { ring2[slot] = id; }
  if (p == 3) { ring3[slot] = id; }
}

void push_job(int p, int id) {
  if (count[p] >= 16) {
    // ring full: the job is dropped
    %s
    assert(count[p] <= 16);                      //@tag s2_assert4
    return;
  }
  ring_set(p, tail[p], id);
  tail[p] = (tail[p] + 1) %% 16;
  count[p] = count[p] + 1;
}

int pop_job(int p) {
  if (count[p] <= 0) {
    return 0;
  }
  int id = ring_get(p, head[p]);
  head[p] = (head[p] + 1) %% 16;
  count[p] = count[p] - 1;
  return id;
}

int pop_top() {
  int p = 3;
  while (p >= 1) {
    if (count[p] > 0) {
      return pop_job(p) * 4 + p;
    }
    p = p - 1;
  }
  return 0;
}

void new_job(int prio) {
  if (prio < 1) {
    prio = 1;
  }
  if (prio >= 50) {
    // out-of-range priority: fold, but track how far out it was
    if (prio >= 50 + count[1] && count[1] > 0) {
      %s
      assert(prio >= 50);                        //@tag s2_assert7
    }
    prio = 2;
  }
  if (prio > 3) {
    prio = 3;
  }
  push_job(prio, next_id);
  next_id = next_id + 1;
}

void block_current() {
  int packed = pop_top();
  if (packed == 0) {
    return;
  }
  if (bcount >= 16) {
    %s
    assert(bcount <= 16);                        //@tag s2_assert1
    return;
  }
  blocked[bcount] = packed;
  bcount = bcount + 1;
}

void unblock(int ratio) {
  if (bcount <= 0) {
    %s
    assert(bcount == 0);                         //@tag s2_assert2
    return;
  }
  bcount = bcount - 1;
  int packed = blocked[bcount];
  int prio = packed %% 4;
  if (ratio == 99) {
    %s
    assert(prio >= 1 && prio <= 3);              //@tag s2_assert6
  }
  push_job(prio, packed / 4);
}

void quantum_expire() {
  int packed = pop_top();
  if (packed == 0) {
    return;
  }
  work_done = work_done + 1;
  push_job(packed %% 4, packed / 4);
}

void finish_current() {
  int packed = pop_top();
  if (packed == 0) {
    return;
  }
  int old_finished = finished;
  finished = finished + 1;
  %s
  assert(finished > old_finished || finished < 0);  //@tag s2_assert5
  print_str("done ");
  print_int(packed / 4);
  print_nl();
}

void flush_all() {
  int packed = pop_top();
  while (packed != 0) {
    finished = finished + 1;
    %s
    assert(count[1] + count[2] + count[3] >= 0);    //@tag s2_assert3
    packed = pop_top();
  }
}

int main() {
  read_input();
  int op = read_int();
  while (op != 0) {
    if (op == 1) {
      new_job(read_int());
    } else if (op == 3) {
      block_current();
    } else if (op == 4) {
      unblock(read_int());
    } else if (op == 5) {
      quantum_expire();
    } else if (op == 6) {
      finish_current();
    } else if (op == 7) {
      flush_all();
    }
    diag_check(op);
    op = read_int();
  }
  print_str("fin ");
  print_int(finished);
  print_str(" work ");
  print_int(work_done);
  print_nl();
  return 0;
}
|}
    (v bug 4 ~good:"" ~bad:"count[p] = count[p] + 1;")
    (v bug 7 ~good:"" ~bad:"prio = 1 - prio;")
    (v bug 1 ~good:"" ~bad:"bcount = bcount + 2;")
    (v bug 2 ~good:"" ~bad:"bcount = bcount - 1;")
    (v bug 6 ~good:"" ~bad:"prio = prio + 8;")
    (v bug 5 ~good:""
       ~bad:"finished = finished - (finished / 64) * 64;")
    (v bug 3 ~good:"" ~bad:"count[2] = -99;")
  ^ Cold_code.block ~modes:8

let bugs =
  [
    Bug.make ~id:"schedule2-v1" ~version:1 ~kind:Bug.Semantic
      ~descr:"blocking onto a full blocked table inflates its count"
      ~detect_tags:[ "s2_assert1" ] ();
    Bug.make ~id:"schedule2-v2" ~version:2 ~kind:Bug.Semantic
      ~descr:"unblocking an empty table drives the count negative"
      ~detect_tags:[ "s2_assert2" ] ();
    Bug.make ~id:"schedule2-v3" ~version:3 ~kind:Bug.Semantic
      ~descr:"flush corrupts a ring count"
      ~detect_tags:[ "s2_assert3" ] ();
    Bug.make ~id:"schedule2-v4" ~version:4 ~kind:Bug.Semantic
      ~descr:"a full ring still counts the dropped job (needs 16 jobs at one \
              priority)"
      ~detect_tags:[ "s2_assert4" ]
      ~expected_miss:Bug.Value_coverage ();
    Bug.make ~id:"schedule2-v5" ~version:5 ~kind:Bug.Semantic
      ~descr:"finished counter folds at 64 (needs 64 finished jobs)"
      ~detect_tags:[ "s2_assert5" ]
      ~expected_miss:Bug.Value_coverage ();
    Bug.make ~id:"schedule2-v6" ~version:6 ~kind:Bug.Semantic
      ~descr:"unblock with ratio 99 corrupts the priority (needs ratio 99)"
      ~detect_tags:[ "s2_assert6" ]
      ~expected_miss:Bug.Special_input ();
    Bug.make ~id:"schedule2-v7" ~version:7 ~kind:Bug.Semantic
      ~descr:"priorities past 50+count negated (the fix pins prio to 50)"
      ~detect_tags:[ "s2_assert7" ]
      ~expected_miss:Bug.Inconsistency ();
  ]

let default_input =
  let phrase = "1 2 1 1 5 1 3 3 5 6 1 2 5 6 1 1 6 5 6 6 " in
  (* repeated so spawn overhead amortises as it does on long-running apps;
     finishes stay below the v5 value threshold *)
  String.concat "" [ phrase; phrase; phrase; phrase ] ^ "\n"

let gen_input rng =
  let buf = Buffer.create 128 in
  let n = Rng.int_in_range rng ~lo:10 ~hi:40 in
  for _ = 1 to n do
    (match Rng.int rng 12 with
     | 0 | 1 | 2 | 3 ->
       Buffer.add_string buf (Printf.sprintf "1 %d" (Rng.int_in_range rng ~lo:1 ~hi:3))
     | 4 | 5 -> Buffer.add_string buf "3"
     | 6 | 7 -> Buffer.add_string buf "5"
     | 8 | 9 -> Buffer.add_string buf "6"
     | _ ->
       Buffer.add_string buf
         (Rng.choose rng [ "4 60"; "4 10"; "7"; "1 9" ]));
    Buffer.add_char buf ' '
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let workload =
  {
    Workload.name = "schedule2";
    descr = "Siemens priority scheduler (ring buffers)";
    app_class = Workload.Siemens;
    source;
    bugs;
    default_input;
    gen_input;
    max_nt_path_length = 500;
  }

(** man-1.5h1 — a roff-ish man-page formatter stand-in.

    One memory bug with the paper's Table 5 signature: the .so-include copy
    loop overrun is reachable only after pointer fixing redirects the NULL
    include pointer to a blank structure ([needs_fixing]); without fixing
    the forced edge crashes on the NULL dereference and files a spurious
    null-check report instead. *)

(** MiniC source with the selected single bug planted. *)
val source : bug:int option -> string

val bugs : Bug.t list

(** A general input that triggers none of the planted bugs. *)
val default_input : string

val gen_input : Rng.t -> string

val workload : Workload.t

lib/workloads/cold_code.ml: Buffer Printf

lib/workloads/vpr.mli: Bug Rng Workload

lib/workloads/schedule2.ml: Buffer Bug Cold_code Printf Rng String Workload

lib/workloads/man.ml: Buffer Bug Cold_code Printf Rng Workload

lib/workloads/workload.ml: Bug Codegen Compile List Pe_config Printf Rng String

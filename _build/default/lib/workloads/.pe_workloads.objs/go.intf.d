lib/workloads/go.mli: Bug Rng Workload

lib/workloads/workload.mli: Bug Codegen Compile Pe_config Rng

lib/workloads/bc.mli: Bug Rng Workload

lib/workloads/gzip.ml: Buffer Cold_code Rng Workload

lib/workloads/cold_code.mli:

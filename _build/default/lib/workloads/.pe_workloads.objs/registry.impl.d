lib/workloads/registry.ml: Bc Go Gzip List Man Parser_bench Print_tokens Print_tokens2 Printf Schedule Schedule2 Vpr Workload

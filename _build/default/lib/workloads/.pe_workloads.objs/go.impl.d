lib/workloads/go.ml: Bug Cold_code Printf Rng Workload

lib/workloads/schedule.mli: Bug Rng Workload

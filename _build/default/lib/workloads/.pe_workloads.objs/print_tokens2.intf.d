lib/workloads/print_tokens2.mli: Bug Rng Workload

lib/workloads/gzip.mli: Bug Rng Workload

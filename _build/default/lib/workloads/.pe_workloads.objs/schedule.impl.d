lib/workloads/schedule.ml: Buffer Bug Cold_code Printf Rng String Workload

lib/workloads/print_tokens2.ml: Buffer Bug Cold_code Printf Rng Workload

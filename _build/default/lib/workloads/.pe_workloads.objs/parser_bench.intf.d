lib/workloads/parser_bench.mli: Bug Rng Workload

lib/workloads/parser_bench.ml: Buffer Cold_code Rng Workload

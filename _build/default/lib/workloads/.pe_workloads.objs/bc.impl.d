lib/workloads/bc.ml: Buffer Bug Char Cold_code List Printf Rng String Workload

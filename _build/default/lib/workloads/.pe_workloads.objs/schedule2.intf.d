lib/workloads/schedule2.mli: Bug Rng Workload

lib/workloads/man.mli: Bug Rng Workload

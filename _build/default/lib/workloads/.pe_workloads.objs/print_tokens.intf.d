lib/workloads/print_tokens.mli: Bug Rng Workload

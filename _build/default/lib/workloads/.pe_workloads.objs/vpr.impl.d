lib/workloads/vpr.ml: Cold_code Printf Rng Workload

lib/workloads/print_tokens.ml: Buffer Bug Cold_code Printf Rng Workload

(** 099.go — a Go-position evaluator standing in for SPEC95's 099.go:
    flood-fill group search, liberties, territory and pattern heuristics
    over LCG-synthesised boards, with output only at the end (so NT-Paths
    rarely meet unsafe events — the Figure 3 shape).

    Two memory bugs of the paper's go category: both sit behind guards over
    board data the synthesised boards never produce, so they are missed
    even by PathExpander unless a special input is used. *)

(** MiniC source with the selected single bug planted. *)
val source : bug:int option -> string

val bugs : Bug.t list

(** A general input that triggers none of the planted bugs. *)
val default_input : string

val gen_input : Rng.t -> string

val workload : Workload.t

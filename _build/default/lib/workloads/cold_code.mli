(** Generators for the rarely-executed code regions the ports splice in.

    Real applications carry large amounts of rarely-enabled code (error
    paths, verbose modes, disabled features); our MiniC ports are small, so
    without this their branch coverage would be unrealistically high. See
    EXPERIMENTS.md notes 3 and 5. *)

(** A diagnostics function [diag_check] behind a [diag_mode = 0] early exit
    that production inputs never enable. Mode 1's handler is reachable by a
    single forced edge (PathExpander covers it); the deeper mode handlers
    are data-guarded and stay uncovered, keeping PathExpander's coverage
    realistically below 100%. *)
val block : modes:int -> string

(** The generated function's name, ["diag_check"]. *)
val call : string

(** An end-of-run statistics region whose full-capacity scans and
    NULL-guarded dereferences are the Table 5 false-positive generators;
    includes unfixable guards whose spurious reports survive fixing (the
    residual false positives). Defines [fp_summary]. *)
val fp_region : string

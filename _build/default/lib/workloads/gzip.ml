(* 164.gzip — an LZ77 compressor standing in for SPEC2000's 164.gzip:
   hash-chained longest-match search over the input buffer, emitting
   literal and (length, distance) match tokens as output characters. The
   emit path runs constantly, so NT-Paths frequently reach a [putc]
   unsafe event before their instruction budget — reproducing gzip's
   Figure 3 shape (most early NT-Path stops are unsafe events, not
   crashes). No planted bugs: gzip serves the crash-latency, overhead,
   ablation and parameter studies. *)

let source ~bug =
  ignore bug;
  {|
// gzip: LZ77 compressor (164.gzip stand-in)

char inbuf[8192];
int ilen = 0;

int head[256];
int prev[8192];

int literals = 0;
int matches = 0;
int out_bytes = 0;

char obuf[512];
int opos = 0;

void read_input() {
  int c = getc();
  while (c != -1 && ilen < 8191) {
    inbuf[ilen] = c;
    ilen = ilen + 1;
    c = getc();
  }
}

int hash_at(int pos) {
  int h = inbuf[pos] * 31 + inbuf[pos + 1];
  h = h % 256;
  if (h < 0) {
    h = h + 256;
  }
  return h;
}

int match_length(int a, int b, int limit) {
  int n = 0;
  while (n < limit && a + n < ilen && inbuf[a + n] == inbuf[b + n]) {
    n = n + 1;
  }
  return n;
}

// block-buffered output, flushed every 256 bytes like the real deflate
void out_flush() {
  int i = 0;
  while (i < opos) {
    putc(obuf[i]);
    i = i + 1;
  }
  opos = 0;
}

void out_byte(int c) {
  if (opos >= 256) {
    out_flush();
  }
  obuf[opos] = c;
  opos = opos + 1;
  out_bytes = out_bytes + 1;
}

void emit_literal(int c) {
  out_byte('L');
  out_byte(c);
  literals = literals + 1;
}

void emit_match(int len, int dist) {
  out_byte('M');
  out_byte('0' + len % 10);
  out_byte('0' + dist % 10);
  matches = matches + 1;
}

int main() {
  read_input();
  int i = 0;
  while (i < 256) {
    head[i] = -1;
    i = i + 1;
  }
  int pos = 0;
  while (pos + 2 < ilen) {
    int h = hash_at(pos);
    int best_len = 0;
    int best_dist = 0;
    int cand = head[h];
    int chain = 0;
    while (cand >= 0 && chain < 16) {
      if (pos - cand < 4096) {
        int len = match_length(pos, cand, 32);
        if (len > best_len) {
          best_len = len;
          best_dist = pos - cand;
        }
      }
      cand = prev[cand];
      chain = chain + 1;
    }
    prev[pos] = head[h];
    head[h] = pos;
    diag_check(pos);
    if (best_len >= 3) {
      emit_match(best_len, best_dist);
      // insert the skipped positions into the chains too
      int k = 1;
      while (k < best_len && pos + k + 2 < ilen) {
        int h2 = hash_at(pos + k);
        prev[pos + k] = head[h2];
        head[h2] = pos + k;
        k = k + 1;
      }
      pos = pos + best_len;
    } else {
      emit_literal(inbuf[pos]);
      pos = pos + 1;
    }
  }
  while (pos < ilen) {
    emit_literal(inbuf[pos]);
    pos = pos + 1;
  }
  out_flush();
  print_nl();
  print_str("lit ");
  print_int(literals);
  print_str(" match ");
  print_int(matches);
  print_nl();
  return 0;
}
|}
  ^ Cold_code.block ~modes:12

let bugs = []

let default_input =
  let buf = Buffer.create 2048 in
  let rng = Rng.create 42 in
  let words = [ "the "; "quick "; "brown "; "fox "; "jumps "; "over "; "lazy "; "dog " ] in
  for _ = 1 to 220 do
    Buffer.add_string buf (Rng.choose rng words)
  done;
  Buffer.contents buf

let gen_input rng =
  let buf = Buffer.create 1024 in
  let words = [ "aaa "; "abab "; "data "; "test "; "block "; "zzz " ] in
  for _ = 1 to Rng.int_in_range rng ~lo:60 ~hi:240 do
    Buffer.add_string buf (Rng.choose rng words)
  done;
  Buffer.contents buf

let workload =
  {
    Workload.name = "164.gzip";
    descr = "LZ77 compressor (SPEC2000 stand-in)";
    app_class = Workload.Spec;
    source;
    bugs;
    default_input;
    gen_input;
    max_nt_path_length = 1000;
  }

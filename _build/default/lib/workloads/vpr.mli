(** 175.vpr — a simulated-annealing placer standing in for SPEC2000's
    175.vpr: randomised block moves on a grid with a cooling acceptance
    threshold, printing the cost once per outer iteration. No planted
    bugs; used by the crash-latency and overhead studies. *)

(** MiniC source with the selected single bug planted. *)
val source : bug:int option -> string

val bugs : Bug.t list

(** A general input that triggers none of the planted bugs. *)
val default_input : string

val gen_input : Rng.t -> string

val workload : Workload.t

(* bc-1.06 — an arbitrary-precision-calculator stand-in: a line-oriented
   expression calculator with variables, parenthesised arithmetic, modulo,
   unary minus and an 's' (integer square root) function, parsed by
   recursive descent the way bc's grammar is.

   Two planted memory bugs mirror the paper's bc results:

   - v1 (detected): the square-root digit decomposition loop writes 12
     digits into an 8-entry buffer. The 's' function never appears in
     common inputs, so the path is cold; PathExpander forces the
     [c == 's'] edge and the overrun executes inside the NT-Path.

   - v2 (missed, hot entry edge): negative-result padding walks [pad]
     up to the maximum parenthesis depth seen so far. Early lines have
     negative results at shallow depth, so the [v < 0] edge is exercised
     past NTPathCounterThreshold harmlessly; by the time the nesting depth
     has grown large enough to overrun, the edge's exercise counter is
     saturated and PathExpander never spawns it — exactly the paper's
     second bc bug. Raising the threshold (Section 7.6) recovers it.

   The [if (last_err != NULL)] and ['h' history] guards are false-positive
   generators for Table 5: forcing the pointer guard without consistency
   fixing dereferences NULL (a spurious null-check report); fixing redirects
   it to the blank structure and the false positive disappears. The history
   guard is unfixable (condition on a buffer element), so its spurious
   bounds report survives fixing — the residual false positives the paper
   still sees after fixing. *)

let v bug k ~good ~bad = if bug = Some k then bad else good

let source ~bug =
  Printf.sprintf
    {|
// bc: line-oriented expression calculator (bc-1.06 stand-in)

char ibuf[4096];
int ilen = 0;
int icur = 0;

char line[128];
int llen = 0;
int lpos = 0;

int vars[26];
int sq[8];                                   //@tag bc_sq_decl
int pad[6];                                  //@tag bc_pad_decl
int htab[26];

int deep = 0;
int cur_depth = 0;
int line_no = 0;
int *last_err = NULL;
int err = 0;

void read_input() {
  int c = getc();
  while (c != -1 && ilen < 4095) {
    ibuf[ilen] = c;
    ilen = ilen + 1;
    c = getc();
  }
}

int next_line() {
  if (icur >= ilen) {
    return 0;
  }
  llen = 0;
  while (icur < ilen && ibuf[icur] != 10) {
    if (llen < 126) {
      line[llen] = ibuf[icur];
      llen = llen + 1;
    }
    icur = icur + 1;
  }
  icur = icur + 1;
  line[llen] = 0;
  lpos = 0;
  line_no = line_no + 1;
  return 1;
}

void skip_spaces() {
  while (lpos < llen && line[lpos] == ' ') {
    lpos = lpos + 1;
  }
}

// integer square root via digit scratch + Newton steps
int do_sqrt(int x) {
  if (x < 0) {
    err = 1;
    return 0;
  }
  int i = 0;
  int t = x;
  while (i < %s) {
    sq[i] = t %% 10;                         //@tag bc_sqrt_overrun
    t = t / 10;
    i = i + 1;
  }
  int r = x;
  int g = 1;
  while (g < r) {
    r = (r + g) / 2;
    g = x / r;
  }
  return r;
}

int parse_factor() {
  skip_spaces();
  int c = line[lpos];
  if (c == '(') {
    lpos = lpos + 1;
    cur_depth = cur_depth + 1;
    if (cur_depth > deep) {
      deep = cur_depth;
    }
    int v = parse_expr();
    skip_spaces();
    if (line[lpos] == ')') {
      lpos = lpos + 1;
    } else {
      err = 1;
    }
    cur_depth = cur_depth - 1;
    return v;
  }
  if (c == '-') {
    lpos = lpos + 1;
    return -parse_factor();
  }
  if (c == 's') {
    // s(expr): integer square root — absent from common inputs
    lpos = lpos + 1;
    return do_sqrt(parse_factor());
  }
  if (c == 'h') {
    // history recall: h<letter> — unfixable guard, a residual FP source
    int tag = line[lpos + 1] - 'a';
    lpos = lpos + 2;
    return htab[tag];
  }
  if (is_lower(c)) {
    lpos = lpos + 1;
    return vars[c - 'a'];
  }
  int v = 0;
  while (lpos < llen && is_digit(line[lpos])) {
    v = v * 10 + (line[lpos] - '0');
    lpos = lpos + 1;
  }
  return v;
}

int parse_term() {
  int v = parse_factor();
  skip_spaces();
  int c = line[lpos];
  while (c == '*' || c == '/' || c == '%%') {
    lpos = lpos + 1;
    int rhs = parse_factor();
    if (c == '*') {
      v = v * rhs;
    } else if (rhs == 0) {
      err = 1;
      if (last_err != NULL) {
        // record the error location — NULL in common runs (FP generator)
        last_err[0] = line_no;
      }
    } else if (c == '/') {
      v = v / rhs;
    } else {
      v = v %% rhs;
    }
    skip_spaces();
    c = line[lpos];
  }
  return v;
}

int parse_expr() {
  int v = parse_term();
  skip_spaces();
  int c = line[lpos];
  while (c == '+' || c == '-') {
    lpos = lpos + 1;
    int rhs = parse_term();
    if (c == '+') {
      v = v + rhs;
    } else {
      v = v - rhs;
    }
    skip_spaces();
    c = line[lpos];
  }
  return v;
}

void print_result(int v) {
  if (v < 0) {
    // negative results are padded by the deepest nesting seen so far
    if (deep > 0) {
      int i = 0;
      while (%s) {
        pad[i] = ' ';                        //@tag bc_pad_overrun
        i = i + 1;
      }
    }
    putc('-');
    v = -v;
  }
  print_int(v);
  print_nl();
}

void run_line() {
  skip_spaces();
  diag_check(line_no);
  if (llen == 0) {
    return;
  }
  // assignment: <letter> = expr
  if (llen > 1 && is_lower(line[lpos]) && line[lpos + 1] == '=') {
    int slot = line[lpos] - 'a';
    lpos = lpos + 2;
    int v = parse_expr();
    vars[slot] = v;
    htab[slot] = v;
    return;
  }
  int v = parse_expr();
  print_result(v);
}

int main() {
  read_input();
  while (next_line() == 1) {
    run_line();
  }
  fp_summary(line_no);
  if (err > 0) {
    print_str("errors ");
    print_int(err);
    print_nl();
  }
  return 0;
}
|}
    (v bug 1 ~good:"8" ~bad:"12")
    (v bug 2 ~good:"i < deep && i < 6" ~bad:"i < deep")
  ^ Cold_code.fp_region
  ^ Cold_code.block ~modes:10

let bugs =
  [
    Bug.make ~id:"bc-v1" ~version:1 ~kind:Bug.Memory
      ~descr:"square-root scratch loop writes 12 digits into sq[8]"
      ~detect_tags:[ "bc_sqrt_overrun"; "bc_sq_decl" ] ();
    Bug.make ~id:"bc-v2" ~version:2 ~kind:Bug.Memory
      ~descr:"negative-result padding walks pad[] to the nesting depth; the \
              [v < 0] edge saturates its exercise counter before the depth \
              grows dangerous"
      ~detect_tags:[ "bc_pad_overrun"; "bc_pad_decl" ]
      ~expected_miss:Bug.Hot_entry_edge ();
  ]

(* Early lines: negative results at shallow depth (saturate the v<0 edge);
   later lines: deeply nested positive expressions. *)
let default_input =
  let tail =
    (* a stretch of ordinary positive-result lines: by now the v<0 edge is
       saturated, so only a random selection factor can re-explore it *)
    String.concat "" (List.init 24 (fun i -> Printf.sprintf "%d+%d\n" i (i + 1)))
  in
  "1-5\n2-9\n3-7\n1-2\n4-9\n2-8\n((((((((2+3))))))))\n((((((((1*4))))))))\n\
   a=3\nb=a*4\nb+a\n7%3\n((((((((b))))))))\n12/4\n" ^ tail

let gen_input rng =
  let buf = Buffer.create 256 in
  let rec expr depth =
    (* production-rule expression generation, as the paper does for bc *)
    if depth > 3 || Rng.int rng 3 = 0 then
      match Rng.int rng 3 with
      | 0 -> string_of_int (Rng.int rng 100)
      | 1 -> String.make 1 (Char.chr (Char.code 'a' + Rng.int rng 6))
      | _ -> "-" ^ string_of_int (Rng.int rng 50)
    else
      match Rng.int rng 5 with
      | 0 -> "(" ^ expr (depth + 1) ^ ")"
      | 1 -> expr (depth + 1) ^ "+" ^ expr (depth + 1)
      | 2 -> expr (depth + 1) ^ "-" ^ expr (depth + 1)
      | 3 -> expr (depth + 1) ^ "*" ^ expr (depth + 1)
      | _ -> expr (depth + 1) ^ "%" ^ string_of_int (1 + Rng.int rng 9)
  in
  let n = Rng.int_in_range rng ~lo:6 ~hi:20 in
  for _ = 1 to n do
    if Rng.int rng 5 = 0 then
      Buffer.add_string buf
        (Printf.sprintf "%c=%s\n" (Char.chr (Char.code 'a' + Rng.int rng 6)) (expr 0))
    else begin
      Buffer.add_string buf (expr 0);
      Buffer.add_char buf '\n'
    end
  done;
  Buffer.contents buf

let workload =
  {
    Workload.name = "bc-1.06";
    descr = "expression calculator (bc stand-in)";
    app_class = Workload.Open_source;
    source;
    bugs;
    default_input;
    gen_input;
    max_nt_path_length = 1000;
  }

(** print_tokens — the Siemens lexical analyser, ported to MiniC.

    Seven semantic single-bug versions in the string / comment / keyword /
    character-constant / special-symbol / numeric scanners. Expected
    PathExpander outcomes: v1-v5 detected; v6 missed (value coverage) and
    v7 missed (special input), per the Section 7.1 taxonomy. *)

(** MiniC source with the selected single bug planted. *)
val source : bug:int option -> string

val bugs : Bug.t list

(** A general input that triggers none of the planted bugs. *)
val default_input : string

val gen_input : Rng.t -> string

val workload : Workload.t

(* print_tokens2 — the second Siemens tokenizer, re-implemented in MiniC.

   Unlike print_tokens, this variant first copies a whitespace-delimited
   token into a fixed buffer ([get_token]) and then classifies it with
   predicate functions — exactly the structure in which the paper's Figure 1
   bug lives: version 10's [is_str_constant] scans for the closing quote
   with no bound check, overrunning the token buffer whenever a token starts
   with a quote and contains no second quote.

   Ten single-bug versions: v1-v9 semantic (assertions), v10 the Figure 1
   memory bug (CCured / iWatcher). Expected PathExpander outcomes:
   v1, v2, v4, v5, v7, v8 and v10 detected; v3 missed (inconsistency: the
   boundary-value fix pins the length just past the first guard, short of
   the deeper one), v6 missed (special input: needs an '@@' token), v9
   missed (value coverage: branchless checksum folding for one specific
   token weight). *)

let v bug k ~good ~bad = if bug = Some k then bad else good

let source ~bug =
  Printf.sprintf
    {|
// print_tokens2: token classifier (Siemens suite port)

char ibuf[2048];
int ilen = 0;
int icur = 0;

char tkn[10];                            //@tag pt2_tkn_decl
int tlen = 0;

int n_keyword = 0;
int n_special = 0;
int n_comment = 0;
int n_error = 0;

char kws[32] = "and or if xor not";

void read_input() {
  int c = getc();
  while (c != -1 && ilen < 2047) {
    ibuf[ilen] = c;
    ilen = ilen + 1;
    c = getc();
  }
  ibuf[ilen] = 0;
}

// copy next whitespace-delimited token into tkn; returns 0 at end of input
int get_token() {
  while (icur < ilen && is_space(ibuf[icur])) {
    icur = icur + 1;
  }
  if (icur >= ilen) {
    return 0;
  }
  tlen = 0;
  while (icur < ilen && !is_space(ibuf[icur])) {
    if (tlen < 9) {
      tkn[tlen] = ibuf[icur];
      tlen = tlen + 1;
    }
    icur = icur + 1;
  }
  tkn[tlen] = 0;
  return 1;
}

int is_keyword() {
  int k = 0;
  int t = 0;
  while (kws[k] != 0) {
    t = 0;
    while (kws[k + t] != 0 && kws[k + t] != ' ' && tkn[t] != 0
           && kws[k + t] == tkn[t]) {
      t = t + 1;
    }
    int matched = 1;
    if (tkn[t] != 0) {
      matched = 0;
    }
    if (kws[k + t] != ' ' && kws[k + t] != 0) {
      matched = 0;
    }
    if (matched == 1) {
      %s
      assert(t < 7);                     //@tag pt2_assert7
      return 1;
    }
    while (kws[k] != 0 && kws[k] != ' ') {
      k = k + 1;
    }
    if (kws[k] == ' ') {
      k = k + 1;
    }
  }
  return 0;
}

int is_num_constant() {
  int i = 0;
  int sign = 1;
  if (tkn[0] == '-') {
    %s
    assert(sign == 1 && tlen >= 1);      //@tag pt2_assert4
    i = 1;
  }
  if (tkn[i] == 0) {
    return 0;
  }
  while (tkn[i] != 0) {
    if (!is_digit(tkn[i])) {
      return 0;
    }
    i = i + 1;
  }
  return 1;
}

int is_str_constant() {
  if (tkn[0] == '"') {
    int i = 1;
    int closed = 0;
    while (%s) {                         //@tag pt2_overrun
      i = i + 1;
    }
    %s
    if (tkn[i] == '"') {
      closed = 1;
    }
    assert(closed == 0 || tkn[i] == '"');  //@tag pt2_assert8
    return 1;
  }
  return 0;
}

int is_char_constant() {
  if (tkn[0] == '#') {
    int body = tlen - 1;
    %s
    assert(body >= 0);                   //@tag pt2_assert1
    if (body == 1) {
      return 1;
    }
    return 0;
  }
  return 0;
}

int is_comment() {
  if (tkn[0] == ';') {
    n_comment = n_comment + 1;
    %s
    assert(n_comment > 0);               //@tag pt2_assert2
    return 1;
  }
  return 0;
}

int is_special() {
  int c = tkn[0];
  int id = -1;
  if (c == '(') { id = 1; }
  if (c == ')') { id = 2; }
  if (c == '[') { id = 3; }
  if (c == ']') { id = 4; }
  if (c == ',') { id = 5; }
  if (c == 96) {
    id = 6;
    %s
  }
  if (c == '@') {
    if (tkn[1] == '@') {
      %s
      assert(tlen >= 2);                 //@tag pt2_assert6
      id = 7;
    } else {
      id = 8;
    }
  }
  assert(id == -1 || id > 0);            //@tag pt2_assert5
  if (id > 0) {
    n_special = n_special + 1;
    return 1;
  }
  return 0;
}

void classify() {
  diag_check(tlen);
  // long-token folding: anything beyond 5 chars is truncated
  if (tlen > 5) {
    if (tlen > 8 && tkn[8] != 0) {
      %s
      assert(tlen <= 9);                 //@tag pt2_assert3
    }
    tkn[5] = 0;
    tlen = 5;
  }
  int checksum = 0;
  int i = 0;
  int clean = 1;
  while (i < tlen) {
    checksum = checksum + tkn[i];
    %s
    clean = clean & (tkn[i] > 0);
    i = i + 1;
  }
  assert(clean == 0 || checksum >= 0);  //@tag pt2_assert9
  if (is_keyword()) {
    n_keyword = n_keyword + 1;
    print_str("KEYWORD");
  } else if (is_num_constant()) {
    print_str("NUMERIC");
  } else if (is_str_constant()) {
    print_str("STRING");
  } else if (is_char_constant()) {
    print_str("CHARACTER");
  } else if (is_comment()) {
    print_str("COMMENT");
  } else if (is_special()) {
    print_str("SPECIAL");
  } else {
    int ok = 0;
    int j = 0;
    while (j < tlen) {
      if (is_alpha(tkn[j]) || is_digit(tkn[j])) {
        ok = ok + 1;
      }
      j = j + 1;
    }
    if (ok == tlen && tlen > 0 && is_alpha(tkn[0])) {
      print_str("IDENTIFIER");
    } else {
      n_error = n_error + 1;
      print_str("ERROR");
    }
  }
  putc('(');
  print_str(tkn);
  putc(')');
  print_nl();
}

int main() {
  read_input();
  while (get_token() == 1) {
    classify();
  }
  fp_summary(n_error);
  print_int(n_keyword);
  putc(' ');
  print_int(n_special);
  putc(' ');
  print_int(n_comment);
  putc(' ');
  print_int(n_error);
  print_nl();
  return 0;
}
|}
    (v bug 7 ~good:"" ~bad:"t = t + 9;")
    (v bug 4 ~good:"" ~bad:"sign = tlen - tlen;")
    (v bug 10 ~good:{|i < 9 && tkn[i] != '"' && tkn[i] != 0|} ~bad:{|tkn[i] != '"'|})
    (v bug 8 ~good:"" ~bad:"closed = 1;")
    (v bug 1 ~good:"" ~bad:"body = -1;")
    (v bug 2 ~good:"" ~bad:"n_comment = n_comment - 2;")
    (v bug 5 ~good:"" ~bad:"id = -6;")
    (v bug 6 ~good:"" ~bad:"tlen = tlen - 2;")
    (v bug 3 ~good:"" ~bad:"tlen = tlen + 1;")
    (v bug 9 ~good:"" ~bad:"checksum = checksum - (checksum / 600) * 601;")
  ^ Cold_code.fp_region
  ^ Cold_code.block ~modes:9

let bugs =
  [
    Bug.make ~id:"print_tokens2-v1" ~version:1 ~kind:Bug.Semantic
      ~descr:"character-constant body length forced negative"
      ~detect_tags:[ "pt2_assert1" ] ();
    Bug.make ~id:"print_tokens2-v2" ~version:2 ~kind:Bug.Semantic
      ~descr:"comment counter decremented below zero"
      ~detect_tags:[ "pt2_assert2" ] ();
    Bug.make ~id:"print_tokens2-v3" ~version:3 ~kind:Bug.Semantic
      ~descr:"9-char tokens corrupt the length (the boundary fix pins tlen \
              to 6, short of the deeper guard)"
      ~detect_tags:[ "pt2_assert3" ]
      ~expected_miss:Bug.Inconsistency ();
    Bug.make ~id:"print_tokens2-v4" ~version:4 ~kind:Bug.Semantic
      ~descr:"negative-numeral sign flag cleared"
      ~detect_tags:[ "pt2_assert4" ] ();
    Bug.make ~id:"print_tokens2-v5" ~version:5 ~kind:Bug.Semantic
      ~descr:"backquote special maps to a negative symbol id"
      ~detect_tags:[ "pt2_assert5" ] ();
    Bug.make ~id:"print_tokens2-v6" ~version:6 ~kind:Bug.Semantic
      ~descr:"'@@' token shrinks the recorded length (needs '@@' input)"
      ~detect_tags:[ "pt2_assert6" ]
      ~expected_miss:Bug.Special_input ();
    Bug.make ~id:"print_tokens2-v7" ~version:7 ~kind:Bug.Semantic
      ~descr:"keyword match position leaps past the table entry"
      ~detect_tags:[ "pt2_assert7" ] ();
    Bug.make ~id:"print_tokens2-v8" ~version:8 ~kind:Bug.Semantic
      ~descr:"unterminated strings reported as closed (semantic twin of v10)"
      ~detect_tags:[ "pt2_assert8" ] ();
    Bug.make ~id:"print_tokens2-v9" ~version:9 ~kind:Bug.Semantic
      ~descr:"token checksum silently folded at 600 (needs a token whose \
              weight is a multiple of 600)"
      ~detect_tags:[ "pt2_assert9" ]
      ~expected_miss:Bug.Value_coverage ();
    Bug.make ~id:"print_tokens2-v10" ~version:10 ~kind:Bug.Memory
      ~descr:"Figure 1: unbounded scan for the closing quote overruns tkn"
      ~detect_tags:[ "pt2_overrun"; "pt2_tkn_decl" ] ();
  ]

let default_input = "alpha beta 42 ( foo 17 ) [ bar ] gamma 9 delta , 3 x1 y2\n"

let gen_input rng =
  let buf = Buffer.create 128 in
  let idents = [ "alpha"; "beta"; "gamma"; "delta"; "foo"; "bar"; "x1"; "y2" ] in
  let n = Rng.int_in_range rng ~lo:8 ~hi:30 in
  for _ = 1 to n do
    (match Rng.int rng 12 with
     | 0 | 1 | 2 | 3 -> Buffer.add_string buf (Rng.choose rng idents)
     | 4 | 5 -> Buffer.add_string buf (string_of_int (Rng.int rng 999))
     | 6 -> Buffer.add_string buf (Rng.choose rng [ "("; ")"; "["; "]"; "," ])
     | 7 -> Buffer.add_string buf (Rng.choose rng [ "and"; "or"; "if"; "not" ])
     | 8 ->
       if Rng.int rng 3 = 0 then
         Buffer.add_string buf (Rng.choose rng [ "#a"; ";note"; "-12"; "%%!" ])
       else Buffer.add_string buf (Rng.choose rng idents)
     | _ -> Buffer.add_string buf (Rng.choose rng idents));
    Buffer.add_char buf (if Rng.int rng 6 = 0 then '\n' else ' ')
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let workload =
  {
    Workload.name = "print_tokens2";
    descr = "Siemens token classifier (Figure 1 bug)";
    app_class = Workload.Siemens;
    source;
    bugs;
    default_input;
    gen_input;
    max_nt_path_length = 500;
  }

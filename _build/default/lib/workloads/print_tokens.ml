(* print_tokens — Siemens-suite lexical analyser, re-implemented in MiniC.

   Reads a character stream and emits one classified token per line:
   identifiers, numerics, keywords, specials, string constants, character
   constants, comments and error tokens. Seven single-bug versions mirror the
   Siemens methodology; all bugs are semantic and sit on paths that common
   inputs never take (string/char/comment/keyword handling), so assertions
   only see them when PathExpander forces the corresponding edges.

   Expected PathExpander outcomes (engineered per the Section 7.1 taxonomy):
   v1-v5 detected; v6 missed (value coverage: needs a long numeral in the
   input); v7 missed (special input: the buggy escape decodes wrongly only
   for a control character that text inputs never contain). *)

let v bug k ~good ~bad = if bug = Some k then bad else good

let source ~bug =
  Printf.sprintf
    {|
// print_tokens: stream tokenizer (Siemens suite port)

char input[2048];
int input_len = 0;
int cursor = 0;

char tok[24];
int tok_len = 0;

int kw_count = 6;
char kw0[8] = "and";
char kw1[8] = "or";
char kw2[8] = "if";
char kw3[8] = "xor";
char kw4[8] = "lambda";
char kw5[8] = "=>";

void read_input() {
  int c = getc();
  while (c != -1 && input_len < 2047) {
    input[input_len] = c;
    input_len = input_len + 1;
    c = getc();
  }
  input[input_len] = 0;
}

int get_char() {
  if (cursor >= input_len) {
    return -1;
  }
  int c = input[cursor];
  cursor = cursor + 1;
  return c;
}

int peek_char() {
  if (cursor >= input_len) {
    return -1;
  }
  return input[cursor];
}

void emit(char *kind) {
  print_str(kind);
  putc('(');
  int i = 0;
  while (i < tok_len) {
    putc(tok[i]);
    i = i + 1;
  }
  putc(')');
  print_nl();
}

int keyword_id() {
  char *kw = kw0;
  int id = 0;
  while (id < kw_count) {
    if (id == 0) { kw = kw0; }
    if (id == 1) { kw = kw1; }
    if (id == 2) { kw = kw2; }
    if (id == 3) { kw = kw3; }
    if (id == 4) { kw = kw4; }
    if (id == 5) { kw = kw5; }
    tok[tok_len] = 0;
    if (strcmp(tok, kw) == 0) {
      %s
      assert(id >= 0 && id < 6);     //@tag pt_assert3
      return id + 1;
    }
    id = id + 1;
  }
  return 0;
}

int special_id(int c) {
  int id = 9;
  if (c == '(') { id = 0; }
  if (c == ')') { id = 1; }
  if (c == '[') { id = 2; }
  if (c == ']') { id = 3; }
  if (c == 96) { id = 4; }
  if (c == ',') { id = 5; }
  if (c == '=') {
    if (peek_char() == '>') {
      get_char();
      id = 6;
    } else {
      id = 7;
    }
    %s
  }
  if (c == 39) { id = 8; }
  assert(id <= 9);                   //@tag pt_assert5
  return id;
}

void scan_string() {
  // string constant: '"' already consumed
  int limit = %s;
  int c = get_char();
  int decoded = 1;
  while (c != '"' && c != -1) {
    if (c == 92) {
      // escape sequence inside string constant
      int esc = get_char();
      %s
      assert(decoded != 0);          //@tag pt_assert7
    }
    if (tok_len < limit) {
      tok[tok_len] = c;
      tok_len = tok_len + 1;
    }
    assert(tok_len <= 2);            //@tag pt_assert1
    c = get_char();
  }
  emit("STRING");
}

void scan_comment() {
  %s
  assert(tok_len >= 0);              //@tag pt_assert2
  int c = get_char();
  while (c != 10 && c != -1) {
    if (tok_len < 18) {
      tok[tok_len] = c;
      tok_len = tok_len + 1;
    }
    c = get_char();
  }
  emit("COMMENT");
}

void scan_char_constant() {
  // '#' introduces a character constant: exactly one char
  int c = get_char();
  tok[0] = c;
  tok_len = 1;
  %s
  assert(tok_len == 1);              //@tag pt_assert4
  emit("CHARACTER");
}

void scan_numeric(int first) {
  tok[0] = first;
  tok_len = 1;
  int value = first - '0';
  int last_digit = first - '0';
  int clean = 1;
  int c = peek_char();
  while (is_digit(c)) {
    get_char();
    value = value * 10 + (c - '0');
    %s
    clean = clean & is_digit(c);
    last_digit = c - '0';
    if (tok_len < 18) {
      tok[tok_len] = c;
      tok_len = tok_len + 1;
    }
    c = peek_char();
  }
  assert(clean == 0 || value < 0 || value %% 10 == last_digit %% 10);  //@tag pt_assert6
  emit("NUMERIC");
}

void scan_identifier(int first) {
  tok[0] = first;
  tok_len = 1;
  int c = peek_char();
  while (is_alpha(c) || is_digit(c) || c == '=' || c == '>') {
    get_char();
    if (tok_len < 18) {
      tok[tok_len] = c;
      tok_len = tok_len + 1;
    }
    c = peek_char();
  }
  int kid = keyword_id();
  if (kid > 0) {
    emit("KEYWORD");
  } else {
    emit("IDENTIFIER");
  }
}

void next_token() {
  int c = get_char();
  while (is_space(c)) {
    c = get_char();
  }
  if (c == -1) {
    return;
  }
  tok_len = 0;
  diag_check(c);
  if (c == '"') {
    scan_string();
    return;
  }
  if (c == ';') {
    scan_comment();
    return;
  }
  if (c == '#') {
    scan_char_constant();
    return;
  }
  if (is_digit(c)) {
    scan_numeric(c);
    return;
  }
  if (is_alpha(c) || c == '=') {
    scan_identifier(c);
    return;
  }
  int sid = special_id(c);
  if (sid < 9) {
    tok[0] = c;
    tok_len = 1;
    emit("SPECIAL");
  } else {
    tok[0] = c;
    tok_len = 1;
    emit("ERROR");
  }
}

int main() {
  read_input();
  while (cursor < input_len) {
    next_token();
  }
  print_str("EOF");
  print_nl();
  return 0;
}
|}
    (v bug 3 ~good:"" ~bad:"id = id + 4;")
    (v bug 5 ~good:"" ~bad:"id = id + 4;")
    (v bug 1 ~good:"2" ~bad:"22")
    (v bug 7 ~good:"decoded = esc;" ~bad:"decoded = esc; if (esc == 7) { decoded = 0; }")
    (v bug 2 ~good:"" ~bad:"tok_len = -1;")
    (v bug 4 ~good:"" ~bad:"tok[1] = peek_char(); tok_len = 2;")
    (v bug 6 ~good:"" ~bad:"value = value - (value / 100000) * 17;")
  ^ Cold_code.block ~modes:9

let bugs =
  [
    Bug.make ~id:"print_tokens-v1" ~version:1 ~kind:Bug.Semantic
      ~descr:"string scanner clamps the token at 22 instead of 2 chars"
      ~detect_tags:[ "pt_assert1" ] ();
    Bug.make ~id:"print_tokens-v2" ~version:2 ~kind:Bug.Semantic
      ~descr:"comment scanner corrupts the token length"
      ~detect_tags:[ "pt_assert2" ] ();
    Bug.make ~id:"print_tokens-v3" ~version:3 ~kind:Bug.Semantic
      ~descr:"keyword id advances by four, escaping the keyword-id range"
      ~detect_tags:[ "pt_assert3" ] ();
    Bug.make ~id:"print_tokens-v4" ~version:4 ~kind:Bug.Semantic
      ~descr:"character constant scanner consumes two characters"
      ~detect_tags:[ "pt_assert4" ] ();
    Bug.make ~id:"print_tokens-v5" ~version:5 ~kind:Bug.Semantic
      ~descr:"'=' special produces an out-of-range symbol class"
      ~detect_tags:[ "pt_assert5" ] ();
    Bug.make ~id:"print_tokens-v6" ~version:6 ~kind:Bug.Semantic
      ~descr:"numerals above 99999 silently corrupted (needs a long numeral)"
      ~detect_tags:[ "pt_assert6" ]
      ~expected_miss:Bug.Value_coverage ();
    Bug.make ~id:"print_tokens-v7" ~version:7 ~kind:Bug.Semantic
      ~descr:"escape of a BEL character decodes to zero (needs special input)"
      ~detect_tags:[ "pt_assert7" ]
      ~expected_miss:Bug.Special_input ();
  ]

let default_input = "alpha beta 42 ( foo 17 ) [ bar ] gamma 9 delta ( 3 ) x1 y2\n"

let gen_input rng =
  let buf = Buffer.create 128 in
  let idents = [ "alpha"; "beta"; "gamma"; "delta"; "count"; "x1"; "y2"; "tmp" ] in
  let n = Rng.int_in_range rng ~lo:8 ~hi:30 in
  for _ = 1 to n do
    (match Rng.int rng 10 with
     | 0 | 1 | 2 -> Buffer.add_string buf (Rng.choose rng idents)
     | 3 | 4 -> Buffer.add_string buf (string_of_int (Rng.int rng 1000))
     | 5 -> Buffer.add_string buf (Rng.choose rng [ "("; ")"; "["; "]"; "," ])
     | 6 -> Buffer.add_string buf (Rng.choose rng [ "and"; "or"; "if"; "xor" ])
     | 7 ->
       (* occasionally a rare construct so cumulative coverage grows *)
       if Rng.int rng 4 = 0 then
         Buffer.add_string buf (Rng.choose rng [ "\"st r\""; "#a"; "; note" ])
       else Buffer.add_string buf (Rng.choose rng idents)
     | _ -> Buffer.add_string buf (Rng.choose rng idents));
    Buffer.add_char buf (if Rng.int rng 6 = 0 then '\n' else ' ')
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let workload =
  {
    Workload.name = "print_tokens";
    descr = "Siemens lexical analyser";
    app_class = Workload.Siemens;
    source;
    bugs;
    default_input;
    gen_input;
    max_nt_path_length = 500;
  }

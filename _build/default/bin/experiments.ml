(* Regenerate the paper's tables and figures.

   Usage: experiments [IDS...]   (no arguments: run everything)
          experiments --list *)

let list_ids () =
  List.iter
    (fun e ->
      Printf.printf "%-5s %s\n" e.Runner.id e.Runner.title)
    Runner.all

let run_ids ids =
  List.iter
    (fun id ->
      match Runner.find id with
      | Some e -> e.Runner.run ()
      | None ->
        Printf.eprintf "unknown experiment '%s' (try --list)\n" id;
        exit 1)
    ids

open Cmdliner

let ids_arg =
  let doc = "Experiment ids to run (all when omitted)." in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let list_arg =
  let doc = "List the available experiments." in
  Arg.(value & flag & info [ "list" ] ~doc)

let main list ids =
  if list then list_ids ()
  else if ids = [] then Runner.run_all ()
  else run_ids ids

let cmd =
  let doc = "regenerate the PathExpander paper's tables and figures" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info Term.(const main $ list_arg $ ids_arg)

let () = exit (Cmd.eval cmd)

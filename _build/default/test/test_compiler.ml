(* Compiler tests: lexer, parser, typechecker and end-to-end MiniC execution
   through the code generator and interpreter. *)

let exec ?(options = Codegen.default_options) ?(input = "") source =
  let compiled = Compile.compile ~options source in
  let machine = Machine.create ~input compiled.Compile.program in
  let result = Cpu.run_baseline machine in
  (match result.Cpu.outcome with
   | `Halted | `Exited _ -> ()
   | `Faulted f -> Alcotest.failf "program faulted: %s" (Cpu.fault_to_string f)
   | `Fuel_exhausted -> Alcotest.fail "program ran out of fuel");
  Machine.output machine

let check_output ?options ?input name source expected =
  Alcotest.(check string) name expected (exec ?options ?input source)

(* --- lexer ---------------------------------------------------------------- *)

let test_lexer_tokens () =
  let lexed = Lexer.tokenize "int x = 42; // comment\nx == 'a';" in
  let kinds = Array.to_list lexed.Lexer.tokens |> List.map fst in
  Alcotest.(check bool) "has int kw" true (List.mem Token.Kw_int kinds);
  Alcotest.(check bool) "has 42" true (List.mem (Token.Tok_int 42) kinds);
  Alcotest.(check bool) "has char lit" true
    (List.mem (Token.Tok_int (Char.code 'a')) kinds);
  Alcotest.(check bool) "has ==" true (List.mem Token.Eq_eq kinds)

let test_lexer_lines () =
  let lexed = Lexer.tokenize "a\nb\n\nc" in
  let lines =
    Array.to_list lexed.Lexer.tokens
    |> List.filter_map (fun (tok, line) ->
        match tok with Token.Tok_ident _ -> Some line | _ -> None)
  in
  Alcotest.(check (list int)) "line numbers" [ 1; 2; 4 ] lines

let test_lexer_tags () =
  let lexed = Lexer.tokenize "int x; //@tag here\nint y;" in
  Alcotest.(check (list (pair string int))) "tag map" [ ("here", 1) ]
    lexed.Lexer.tags

let test_lexer_strings () =
  let lexed = Lexer.tokenize {|"a\nb\\"|} in
  (match lexed.Lexer.tokens.(0) with
   | Token.Tok_string s, _ -> Alcotest.(check string) "escapes" "a\nb\\" s
   | _ -> Alcotest.fail "expected string token")

let test_lexer_errors () =
  let expect_error source =
    match Lexer.tokenize source with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.failf "expected lex error on %S" source
  in
  expect_error "\"unterminated";
  expect_error "/* unterminated";
  expect_error "$"

(* --- parser --------------------------------------------------------------- *)

let parse source = fst (Parser.parse_string source)

let test_parser_precedence () =
  let globals = parse "int main() { return 1 + 2 * 3; }" in
  match globals with
  | [ Ast.Gfunc { Ast.fbody = [ { Ast.sdesc = Ast.Sreturn (Some e); _ } ]; _ } ] ->
    (match e.Ast.desc with
     | Ast.Binop (Ast.Add, { Ast.desc = Ast.Int_lit 1; _ }, rhs) ->
       (match rhs.Ast.desc with
        | Ast.Binop (Ast.Mul, _, _) -> ()
        | _ -> Alcotest.fail "expected mul on the right")
     | _ -> Alcotest.fail "expected add at top")
  | _ -> Alcotest.fail "unexpected parse shape"

let test_parser_errors () =
  let expect_error source =
    match Parser.parse_string source with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error on %S" source
  in
  expect_error "int main() { return 1 + ; }";
  expect_error "int main() { if }";
  expect_error "int f(int) { }";
  expect_error "int x = ;"

let test_parser_struct_and_pointers () =
  let globals =
    parse "struct s { int a; struct s *next; };\nstruct s *head;\nint main() { return 0; }"
  in
  Alcotest.(check int) "three globals" 3 (List.length globals)

(* --- typechecker ---------------------------------------------------------- *)

let expect_type_error name source =
  match Compile.compile source with
  | exception Compile.Error msg ->
    Alcotest.(check bool)
      (name ^ ": is a type error: " ^ msg)
      true
      (String.length msg > 0)
  | _ -> Alcotest.failf "%s: expected a compile error" name

let test_typecheck_errors () =
  expect_type_error "unbound var" "int main() { return nope; }";
  expect_type_error "unknown function" "int main() { return f(1); }";
  expect_type_error "arity" "int f(int a) { return a; } int main() { return f(); }";
  expect_type_error "no main" "int f() { return 1; }";
  expect_type_error "bad field" "struct s { int a; }; int main() { struct s v; return v.b; }";
  expect_type_error "deref int field access" "int main() { int x; return x->a; }";
  expect_type_error "aggregate assign"
    "struct s { int a; }; int main() { struct s x; struct s y; x = y; return 0; }";
  expect_type_error "assign to literal" "int main() { 3 = 4; return 0; }";
  expect_type_error "void return value" "void f() { return 3; } int main() { f(); return 0; }"

(* --- end-to-end execution -------------------------------------------------- *)

let test_exec_arith () =
  check_output "arith"
    "int main() { print_int(2 + 3 * 4 - 10 / 2); return 0; }" "9";
  check_output "mod and neg"
    "int main() { print_int(-17 % 5); putc(' '); print_int(17 % -5); return 0; }"
    "-2 2";
  check_output "bitwise"
    "int main() { print_int((12 & 10) | (1 << 4) ^ 2); return 0; }" "26";
  check_output "comparison values"
    "int main() { print_int(3 < 4); print_int(4 <= 3); print_int(5 == 5); return 0; }"
    "101"

let test_exec_short_circuit () =
  check_output "and-or"
    {|
int calls = 0;
int bump() { calls = calls + 1; return 1; }
int main() {
  int r = 0 && bump();
  int s = 1 || bump();
  print_int(calls); print_int(r); print_int(s);
  return 0;
}
|}
    "001"

let test_exec_ternary () =
  check_output "ternary"
    "int main() { int x = 5; print_int(x > 3 ? 10 : 20); print_int(x > 9 ? 1 : 2); return 0; }"
    "102"

let test_exec_loops () =
  check_output "while"
    "int main() { int i = 0; int s = 0; while (i < 5) { s = s + i; i = i + 1; } print_int(s); return 0; }"
    "10";
  check_output "for with break/continue"
    {|
int main() {
  int s = 0;
  int i;
  for (i = 0; i < 10; i = i + 1) {
    if (i == 3) { continue; }
    if (i == 6) { break; }
    s = s + i;
  }
  print_int(s);
  return 0;
}
|}
    "12"

let test_exec_recursion () =
  check_output "fib"
    {|
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() { print_int(fib(12)); return 0; }
|}
    "144"

let test_exec_mutual_recursion () =
  check_output "even/odd"
    {|
int is_even(int n) {
  if (n == 0) { return 1; }
  return is_odd(n - 1);
}
int is_odd(int n) {
  if (n == 0) { return 0; }
  return is_even(n - 1);
}
int main() { print_int(is_even(10)); print_int(is_odd(10)); return 0; }
|}
    "10"

let test_exec_arrays_pointers () =
  check_output "array sum via pointer"
    {|
int data[5] = {3, 1, 4, 1, 5};
int sum(int *p, int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i = i + 1) { s = s + p[i]; }
  return s;
}
int main() { print_int(sum(data, 5)); print_int(*data); print_int(data[4]); return 0; }
|}
    "1435";
  check_output "pointer arithmetic and diff"
    {|
int buf[8];
int main() {
  int *p = buf + 2;
  int *q = buf + 6;
  *p = 5;
  p[1] = 6;
  print_int(buf[2]); print_int(buf[3]); print_int(q - p);
  return 0;
}
|}
    "564";
  check_output "address-of"
    {|
int main() {
  int x = 7;
  int *p = &x;
  *p = *p + 1;
  print_int(x);
  return 0;
}
|}
    "8"

let test_exec_structs () =
  check_output "linked list"
    {|
struct node {
  int value;
  struct node *next;
};
int main() {
  struct node *head = NULL;
  int i;
  for (i = 1; i <= 4; i = i + 1) {
    struct node *n = malloc(sizeof(struct node));
    n->value = i * i;
    n->next = head;
    head = n;
  }
  int s = 0;
  while (head != NULL) {
    s = s + head->value;
    head = head->next;
  }
  print_int(s);
  return 0;
}
|}
    "30";
  check_output "struct fields and embedded arrays"
    {|
struct box {
  int tag;
  int data[3];
};
struct box b;
int main() {
  b.tag = 9;
  b.data[0] = 1;
  b.data[2] = 7;
  print_int(b.tag + b.data[0] + b.data[1] + b.data[2]);
  return 0;
}
|}
    "17"

let test_exec_globals_and_strings () =
  check_output "global init"
    {|
int counter = 10;
char msg[8] = "hey";
int tab[4] = {1, 2, 3, 4};
int main() {
  print_str(msg);
  print_int(counter + tab[3]);
  return 0;
}
|}
    "hey14";
  check_output "string literal" {|int main() { print_str("a b"); return 0; }|}
    "a b"

let test_exec_io () =
  check_output ~input:"xyz" "echo input"
    {|
int main() {
  int c = getc();
  while (c != -1) {
    putc(c);
    c = getc();
  }
  return 0;
}
|}
    "xyz"

let test_exec_runtime_lib () =
  check_output "string functions"
    {|
char buf[32];
int main() {
  strcpy(buf, "abc");
  strcat(buf, "def");
  print_int(strlen(buf));
  print_int(strcmp(buf, "abcdef"));
  print_int(strcmp("b", "a") > 0);
  print_int(atoi(" -42"));
  return 0;
}
|}
    "601-42";
  check_output "min/max/abs"
    "int main() { print_int(min_int(3, 5)); print_int(max_int(3, 5)); print_int(abs_int(-7)); return 0; }"
    "357"

let test_exec_malloc_free () =
  check_output "heap blocks are disjoint"
    {|
int main() {
  int *a = malloc(4);
  int *b = malloc(4);
  a[0] = 1;
  b[0] = 2;
  print_int(a[0]);
  print_int(b[0]);
  print_int(b - a >= 4);
  free(a);
  free(b);
  return 0;
}
|}
    "121"

let test_exec_exit () =
  let compiled =
    Compile.compile "int main() { exit(7); print_int(1); return 0; }"
  in
  let machine = Machine.create compiled.Compile.program in
  let result = Cpu.run_baseline machine in
  Alcotest.(check bool) "exit stops execution" true
    (result.Cpu.outcome = `Exited 7);
  Alcotest.(check string) "nothing printed" "" (Machine.output machine)

(* --- compile-time structure ------------------------------------------------ *)

let test_user_branches_exclude_runtime () =
  let compiled =
    Compile.compile
      "int main() { if (strlen(\"ab\") > 1) { print_int(1); } return 0; }"
  in
  let program = compiled.Compile.program in
  (* strlen has branches, but only main's 'if' counts for user coverage *)
  Alcotest.(check int) "one user branch" 1
    (List.length program.Program.user_branches);
  Alcotest.(check bool) "image has more branches" true
    (List.length (Program.all_branches program) > 1)

let test_blank_structures_allocated () =
  let compiled =
    Compile.compile
      "struct s { int a; int b; }; int main() { struct s v; v.a = 1; return v.a; }"
  in
  let blanks = compiled.Compile.program.Program.blank_addrs in
  Alcotest.(check bool) "generic blank" true (List.mem_assoc "generic" blanks);
  Alcotest.(check bool) "struct blank" true (List.mem_assoc "s" blanks)

let test_detector_changes_sites () =
  let source = "int t[4]; int main() { t[1] = 2; return t[1]; }" in
  let plain = Compile.compile source in
  let ccured =
    Compile.compile ~options:{ Codegen.detector = Codegen.Ccured; fixing = true }
      source
  in
  Alcotest.(check int) "no sites without detector" 0
    (Array.length plain.Compile.program.Program.sites);
  Alcotest.(check bool) "ccured adds check sites" true
    (Array.length ccured.Compile.program.Program.sites > 0)

let test_fixing_changes_code () =
  let source = "int main() { int x = 1; if (x < 5) { x = 2; } return x; }" in
  let with_fix = Compile.compile source in
  let without_fix =
    Compile.compile
      ~options:{ Codegen.detector = Codegen.No_detector; fixing = false }
      source
  in
  Alcotest.(check bool) "fix stubs add instructions" true
    (Array.length with_fix.Compile.program.Program.code
    > Array.length without_fix.Compile.program.Program.code)

let test_tag_lines () =
  let compiled =
    Compile.compile "int main() { return 0; } //@tag main_line"
  in
  Alcotest.(check int) "tag resolves" 1 (Compile.tag_line compiled "main_line");
  Alcotest.check_raises "unknown tag" (Compile.Error "unknown source tag 'nope'")
    (fun () -> ignore (Compile.tag_line compiled "nope"))

let tests =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer line numbers" `Quick test_lexer_lines;
    Alcotest.test_case "lexer tags" `Quick test_lexer_tags;
    Alcotest.test_case "lexer strings" `Quick test_lexer_strings;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "parser structs" `Quick test_parser_struct_and_pointers;
    Alcotest.test_case "typecheck errors" `Quick test_typecheck_errors;
    Alcotest.test_case "exec arithmetic" `Quick test_exec_arith;
    Alcotest.test_case "exec short-circuit" `Quick test_exec_short_circuit;
    Alcotest.test_case "exec ternary" `Quick test_exec_ternary;
    Alcotest.test_case "exec loops" `Quick test_exec_loops;
    Alcotest.test_case "exec recursion" `Quick test_exec_recursion;
    Alcotest.test_case "exec mutual recursion" `Quick test_exec_mutual_recursion;
    Alcotest.test_case "exec arrays/pointers" `Quick test_exec_arrays_pointers;
    Alcotest.test_case "exec structs" `Quick test_exec_structs;
    Alcotest.test_case "exec globals/strings" `Quick test_exec_globals_and_strings;
    Alcotest.test_case "exec io" `Quick test_exec_io;
    Alcotest.test_case "exec runtime library" `Quick test_exec_runtime_lib;
    Alcotest.test_case "exec malloc/free" `Quick test_exec_malloc_free;
    Alcotest.test_case "exec exit" `Quick test_exec_exit;
    Alcotest.test_case "user branches" `Quick test_user_branches_exclude_runtime;
    Alcotest.test_case "blank structures" `Quick test_blank_structures_allocated;
    Alcotest.test_case "detector sites" `Quick test_detector_changes_sites;
    Alcotest.test_case "fixing code size" `Quick test_fixing_changes_code;
    Alcotest.test_case "tag lines" `Quick test_tag_lines;
  ]

(* Unit tests for the CPU interpreter on hand-assembled programs: arithmetic,
   control flow, calls, syscalls, faults, predication and sandboxed
   execution. *)

let build ?(globals = 4) code =
  let program =
    {
      Program.code = Array.of_list code;
      entry = 0;
      globals_words = globals;
      init_data = [];
      sites = [||];
      user_branches = [];
      functions = [];
      user_code_ranges = [];
      fix_atoms = [];
      global_vars = [];
      blank_addrs = [];
      source_lines = [||];
    }
  in
  Program.validate program;
  program

let run ?input code =
  let machine = Machine.create ?input (build code) in
  let result = Cpu.run_baseline machine in
  (machine, result)

let t0 = Reg.tmp 0
let t1 = Reg.tmp 1
let g0 = Program.null_guard_words + 1 (* a free global word *)

let test_arith_and_halt () =
  let machine, result =
    run
      [
        Insn.Li (t0, 6);
        Insn.Binopi (Insn.Mul, t0, t0, 7);
        Insn.Store (t0, Reg.zero, g0);
        Insn.Halt;
      ]
  in
  Alcotest.(check bool) "halted" true (result.Cpu.outcome = `Halted);
  Alcotest.(check int) "6*7" 42 (Memory.read machine.Machine.mem g0);
  Alcotest.(check int) "insns" 4 result.Cpu.insns

let test_branch_taken_and_not () =
  let machine, _ =
    run
      [
        Insn.Li (t0, 5);
        Insn.Br (Insn.Gt, t0, Reg.zero, 4);
        (* fallthrough: not executed *)
        Insn.Li (t1, 111);
        Insn.Jmp 5;
        Insn.Li (t1, 222);
        Insn.Store (t1, Reg.zero, g0);
        Insn.Halt;
      ]
  in
  Alcotest.(check int) "taken edge" 222 (Memory.read machine.Machine.mem g0)

let test_call_ret () =
  (* main: call f; store rv; halt --- f: rv := 9; ret *)
  let machine, _ =
    run
      [
        Insn.Call 3;
        Insn.Store (Reg.rv, Reg.zero, g0);
        Insn.Halt;
        Insn.Li (Reg.rv, 9);
        Insn.Ret;
      ]
  in
  Alcotest.(check int) "returned" 9 (Memory.read machine.Machine.mem g0)

let test_push_pop () =
  let machine, _ =
    run
      [
        Insn.Li (t0, 31);
        Insn.Push t0;
        Insn.Li (t0, 0);
        Insn.Pop t1;
        Insn.Store (t1, Reg.zero, g0);
        Insn.Halt;
      ]
  in
  Alcotest.(check int) "stack round-trip" 31 (Memory.read machine.Machine.mem g0)

let test_syscalls () =
  let machine, result =
    run ~input:"hi"
      [
        Insn.Syscall Insn.Sys_getc;
        Insn.Mov (Reg.arg 0, Reg.rv);
        Insn.Syscall Insn.Sys_putc;
        Insn.Li (Reg.arg 0, 42);
        Insn.Syscall Insn.Sys_print_int;
        Insn.Halt;
      ]
  in
  Alcotest.(check bool) "halted" true (result.Cpu.outcome = `Halted);
  Alcotest.(check string) "echo + int" "h42" (Machine.output machine)

let test_exit () =
  let _, result =
    run [ Insn.Li (Reg.arg 0, 3); Insn.Syscall Insn.Sys_exit; Insn.Halt ]
  in
  Alcotest.(check bool) "exited 3" true (result.Cpu.outcome = `Exited 3)

let test_getc_eof () =
  let machine, _ =
    run ~input:"" [ Insn.Syscall Insn.Sys_getc; Insn.Store (Reg.rv, Reg.zero, g0); Insn.Halt ]
  in
  Alcotest.(check int) "eof is -1" (-1) (Memory.read machine.Machine.mem g0)

let test_div_by_zero_fault () =
  let _, result = run [ Insn.Li (t0, 1); Insn.Binop (Insn.Div, t0, t0, Reg.zero); Insn.Halt ] in
  Alcotest.(check bool) "faulted" true (result.Cpu.outcome = `Faulted Cpu.Div_by_zero)

let test_null_access_fault () =
  let _, result = run [ Insn.Load (t0, Reg.zero, 2); Insn.Halt ] in
  Alcotest.(check bool) "null fault" true
    (result.Cpu.outcome = `Faulted (Cpu.Mem_fault Memory.Null_access))

let test_predication () =
  (* pred clear: Pred acts as NOP; set via sandboxed context below *)
  let machine, _ =
    run
      [
        Insn.Li (t0, 1);
        Insn.Pred (Insn.Li (t0, 99));
        Insn.Store (t0, Reg.zero, g0);
        Insn.Halt;
      ]
  in
  Alcotest.(check int) "pred off = nop" 1 (Memory.read machine.Machine.mem g0)

let test_predication_set () =
  let program =
    build
      [
        Insn.Li (t0, 1);
        Insn.Pred (Insn.Li (t0, 99));
        Insn.Clearpred;
        Insn.Pred (Insn.Li (t0, 55));
        Insn.Store (t0, Reg.zero, g0);
        Insn.Halt;
      ]
  in
  let machine = Machine.create program in
  let ctx = Machine.main_context machine in
  ctx.Context.pred <- true;
  let rec loop () =
    match Cpu.step machine ctx with
    | Cpu.Ev_halt -> ()
    | _ -> loop ()
  in
  loop ();
  (* first Pred executed (99), Clearpred turned the second into a NOP *)
  Alcotest.(check int) "pred on then cleared" 99
    (Memory.read machine.Machine.mem g0)

let test_sandboxed_syscall_blocked () =
  let program = build [ Insn.Syscall Insn.Sys_putc; Insn.Halt ] in
  let machine = Machine.create program in
  let ctx = Machine.main_context machine in
  let sb = Context.make_sandbox ~path_id:1 ~line_limit:10 ~words_per_line:8 in
  Context.enter_sandbox ctx sb;
  (match Cpu.step machine ctx with
   | Cpu.Ev_syscall Insn.Sys_putc -> ()
   | _ -> Alcotest.fail "expected Ev_syscall");
  Alcotest.(check string) "no output" "" (Machine.output machine);
  Alcotest.(check int) "pc unchanged" 0 ctx.Context.pc

let test_sandboxed_writes_discarded () =
  let program =
    build [ Insn.Li (t0, 7); Insn.Store (t0, Reg.zero, g0); Insn.Halt ]
  in
  let machine = Machine.create program in
  let ctx = Machine.main_context machine in
  let sb = Context.make_sandbox ~path_id:1 ~line_limit:10 ~words_per_line:8 in
  Context.enter_sandbox ctx sb;
  let rec loop () =
    match Cpu.step machine ctx with Cpu.Ev_halt -> () | _ -> loop ()
  in
  loop ();
  Alcotest.(check int) "memory untouched" 0 (Memory.read machine.Machine.mem g0)

let test_checkz_reports () =
  let program =
    {
      (build
         [
           Insn.Li (t0, 0);
           Insn.Checkz (t0, 0);
           Insn.Li (t0, 1);
           Insn.Checkz (t0, 1);
           Insn.Halt;
         ])
      with
      Program.sites =
        [|
          { Site.id = 0; line = 1; kind = Site.Assertion; descr = "fires" };
          { Site.id = 1; line = 2; kind = Site.Assertion; descr = "quiet" };
        |];
    }
  in
  let machine = Machine.create program in
  let _ = Cpu.run_baseline machine in
  Alcotest.(check (list int)) "only site 0" [ 0 ]
    (Report.distinct_sites machine.Machine.reports)

let test_watch_insn_triggers () =
  let program =
    {
      (build
         [
           Insn.Li (t0, g0);
           Insn.Binopi (Insn.Add, t1, t0, 1);
           Insn.Watch (t0, t1, 0);
           Insn.Li (t1, 5);
           Insn.Store (t1, Reg.zero, g0);
           Insn.Halt;
         ])
      with
      Program.sites =
        [| { Site.id = 0; line = 1; kind = Site.Watchpoint; descr = "w" } |];
    }
  in
  let machine = Machine.create program in
  let _ = Cpu.run_baseline machine in
  Alcotest.(check (list int)) "watch fired" [ 0 ]
    (Report.distinct_sites machine.Machine.reports)

let test_bad_pc () =
  let program = build [ Insn.Jmp 1; Insn.Ret ] in
  (* Ret pops garbage (stack_base word = 0 is below null guard... the pop
     reads the word at sp = stack_base which is out of range) *)
  let machine = Machine.create program in
  let result = Cpu.run_baseline machine in
  (match result.Cpu.outcome with
   | `Faulted _ -> ()
   | _ -> Alcotest.fail "expected a fault")

let test_cycles_include_memory_latency () =
  let _, result_fast = run [ Insn.Li (t0, 1); Insn.Halt ] in
  let _, result_mem =
    run [ Insn.Load (t0, Reg.zero, g0); Insn.Halt ]
  in
  Alcotest.(check bool) "memory access costs more" true
    (result_mem.Cpu.cycles > result_fast.Cpu.cycles)

let tests =
  [
    Alcotest.test_case "arithmetic and halt" `Quick test_arith_and_halt;
    Alcotest.test_case "branch" `Quick test_branch_taken_and_not;
    Alcotest.test_case "call/ret" `Quick test_call_ret;
    Alcotest.test_case "push/pop" `Quick test_push_pop;
    Alcotest.test_case "syscalls" `Quick test_syscalls;
    Alcotest.test_case "exit" `Quick test_exit;
    Alcotest.test_case "getc eof" `Quick test_getc_eof;
    Alcotest.test_case "div by zero" `Quick test_div_by_zero_fault;
    Alcotest.test_case "null access" `Quick test_null_access_fault;
    Alcotest.test_case "predication off" `Quick test_predication;
    Alcotest.test_case "predication on" `Quick test_predication_set;
    Alcotest.test_case "sandboxed syscall blocked" `Quick test_sandboxed_syscall_blocked;
    Alcotest.test_case "sandboxed writes discarded" `Quick test_sandboxed_writes_discarded;
    Alcotest.test_case "checkz reports" `Quick test_checkz_reports;
    Alcotest.test_case "watch instruction" `Quick test_watch_insn_triggers;
    Alcotest.test_case "bad control flow faults" `Quick test_bad_pc;
    Alcotest.test_case "memory latency counted" `Quick test_cycles_include_memory_latency;
  ]

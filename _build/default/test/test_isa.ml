(* Unit tests for the ISA: registers, instruction semantics helpers, program
   validation and disassembly. *)

let test_reg_names () =
  Alcotest.(check string) "zero" "zero" (Reg.name Reg.zero);
  Alcotest.(check string) "rv" "rv" (Reg.name Reg.rv);
  Alcotest.(check string) "a0" "a0" (Reg.name (Reg.arg 0));
  Alcotest.(check string) "a7" "a7" (Reg.name (Reg.arg 7));
  Alcotest.(check string) "t0" "t0" (Reg.name (Reg.tmp 0));
  Alcotest.(check string) "sp" "sp" (Reg.name Reg.sp);
  Alcotest.(check string) "fp" "fp" (Reg.name Reg.fp);
  Alcotest.(check string) "ra" "ra" (Reg.name Reg.ra)

let test_reg_ranges () =
  Alcotest.check_raises "arg 8" (Invalid_argument "Reg.arg: argument registers are a0..a7")
    (fun () -> ignore (Reg.arg 8));
  Alcotest.check_raises "tmp 18" (Invalid_argument "Reg.tmp: temporaries are t0..t17")
    (fun () -> ignore (Reg.tmp 18));
  Alcotest.(check bool) "valid" true (Reg.is_valid 31);
  Alcotest.(check bool) "invalid" false (Reg.is_valid 32)

let test_eval_binop () =
  let check op a b expected =
    Alcotest.(check (option int))
      (Insn.binop_name op) expected (Insn.eval_binop op a b)
  in
  check Insn.Add 2 3 (Some 5);
  check Insn.Sub 2 3 (Some (-1));
  check Insn.Mul 4 3 (Some 12);
  check Insn.Div 7 2 (Some 3);
  check Insn.Div (-7) 2 (Some (-3));
  check Insn.Div 1 0 None;
  check Insn.Mod 7 3 (Some 1);
  check Insn.Mod 5 0 None;
  check Insn.And 12 10 (Some 8);
  check Insn.Or 12 10 (Some 14);
  check Insn.Xor 12 10 (Some 6);
  check Insn.Shl 1 4 (Some 16);
  check Insn.Shr 16 4 (Some 1);
  check Insn.Shr (-16) 2 (Some (-4))

let test_eval_cmp () =
  Alcotest.(check bool) "eq" true (Insn.eval_cmp Insn.Eq 3 3);
  Alcotest.(check bool) "ne" true (Insn.eval_cmp Insn.Ne 3 4);
  Alcotest.(check bool) "lt" true (Insn.eval_cmp Insn.Lt 3 4);
  Alcotest.(check bool) "le" true (Insn.eval_cmp Insn.Le 4 4);
  Alcotest.(check bool) "gt" false (Insn.eval_cmp Insn.Gt 4 4);
  Alcotest.(check bool) "ge" true (Insn.eval_cmp Insn.Ge 4 4)

let test_negate_cmp () =
  List.iter
    (fun cmp ->
      let neg = Insn.negate_cmp cmp in
      for a = -2 to 2 do
        for b = -2 to 2 do
          Alcotest.(check bool)
            (Printf.sprintf "negation is complement (%d, %d)" a b)
            (not (Insn.eval_cmp cmp a b))
            (Insn.eval_cmp neg a b)
        done
      done)
    [ Insn.Eq; Insn.Ne; Insn.Lt; Insn.Le; Insn.Gt; Insn.Ge ]

let test_insn_to_string () =
  Alcotest.(check bool) "add string" true
    (String.length (Insn.to_string (Insn.Binop (Insn.Add, 1, 2, 3))) > 0);
  let pred = Insn.Pred (Insn.Li (Reg.tmp 0, 5)) in
  let s = Insn.to_string pred in
  Alcotest.(check bool) "pred prefix" true
    (String.length s > 3 && String.sub s 0 3 = "<p>")

let test_is_branch_memory () =
  Alcotest.(check bool) "br" true (Insn.is_branch (Insn.Br (Insn.Eq, 0, 0, 0)));
  Alcotest.(check bool) "jmp is not a conditional branch" false
    (Insn.is_branch (Insn.Jmp 0));
  Alcotest.(check bool) "load" true (Insn.is_memory_access (Insn.Load (1, 2, 0)));
  Alcotest.(check bool) "pred store" true
    (Insn.is_memory_access (Insn.Pred (Insn.Store (1, 2, 0))));
  Alcotest.(check bool) "li" false (Insn.is_memory_access (Insn.Li (1, 0)))

let trivial_program code =
  {
    Program.code = Array.of_list code;
    entry = 0;
    globals_words = 0;
    init_data = [];
    sites = [||];
    user_branches = [];
    functions = [];
    user_code_ranges = [];
    fix_atoms = [];
    global_vars = [];
    blank_addrs = [];
    source_lines = [||];
  }

let test_validate_ok () =
  Program.validate (trivial_program [ Insn.Li (1, 5); Insn.Halt ])

let test_validate_bad_target () =
  let program = trivial_program [ Insn.Jmp 99 ] in
  Alcotest.(check bool) "raises" true
    (try
       Program.validate program;
       false
     with Program.Invalid_program _ -> true)

let test_validate_nested_pred () =
  let program = trivial_program [ Insn.Pred (Insn.Pred Insn.Nop); Insn.Halt ] in
  Alcotest.(check bool) "nested pred rejected" true
    (try
       Program.validate program;
       false
     with Program.Invalid_program _ -> true)

let test_validate_bad_init () =
  let program =
    { (trivial_program [ Insn.Halt ]) with Program.init_data = [ (0, 1) ] }
  in
  Alcotest.(check bool) "init in null page rejected" true
    (try
       Program.validate program;
       false
     with Program.Invalid_program _ -> true)

let test_line_of_pc () =
  let program =
    {
      (trivial_program [ Insn.Nop; Insn.Nop; Insn.Nop; Insn.Halt ]) with
      Program.source_lines = [| (0, 10); (2, 20) |];
    }
  in
  Alcotest.(check int) "first" 10 (Program.line_of_pc program 0);
  Alcotest.(check int) "middle" 10 (Program.line_of_pc program 1);
  Alcotest.(check int) "after second" 20 (Program.line_of_pc program 3)

let test_function_of_pc () =
  let program =
    {
      (trivial_program [ Insn.Nop; Insn.Nop; Insn.Halt ]) with
      Program.functions = [ ("start", 0); ("main", 1) ];
    }
  in
  Alcotest.(check (option string)) "start" (Some "start")
    (Program.function_of_pc program 0);
  Alcotest.(check (option string)) "main" (Some "main")
    (Program.function_of_pc program 2)

let test_disassemble () =
  let program = trivial_program [ Insn.Li (1, 7); Insn.Halt ] in
  let text = Program.disassemble program in
  Alcotest.(check bool) "mentions li" true
    (String.length text > 0
    &&
    let re_found = ref false in
    String.iteri
      (fun i _ ->
        if i + 2 <= String.length text && String.sub text i 2 = "li" then
          re_found := true)
      text;
    !re_found)

let test_site_to_string () =
  let site =
    { Site.id = 3; line = 42; kind = Site.Bounds_check; descr = "x" }
  in
  let s = Site.to_string site in
  Alcotest.(check bool) "mentions id and line" true
    (String.length s > 0 && Site.kind_name Site.Bounds_check = "bounds");
  ignore s

let tests =
  [
    Alcotest.test_case "register names" `Quick test_reg_names;
    Alcotest.test_case "register ranges" `Quick test_reg_ranges;
    Alcotest.test_case "eval binop" `Quick test_eval_binop;
    Alcotest.test_case "eval cmp" `Quick test_eval_cmp;
    Alcotest.test_case "negate cmp" `Quick test_negate_cmp;
    Alcotest.test_case "insn to_string" `Quick test_insn_to_string;
    Alcotest.test_case "branch/memory predicates" `Quick test_is_branch_memory;
    Alcotest.test_case "validate ok" `Quick test_validate_ok;
    Alcotest.test_case "validate bad target" `Quick test_validate_bad_target;
    Alcotest.test_case "validate nested pred" `Quick test_validate_nested_pred;
    Alcotest.test_case "validate bad init" `Quick test_validate_bad_init;
    Alcotest.test_case "line of pc" `Quick test_line_of_pc;
    Alcotest.test_case "function of pc" `Quick test_function_of_pc;
    Alcotest.test_case "disassemble" `Quick test_disassemble;
    Alcotest.test_case "site to_string" `Quick test_site_to_string;
  ]

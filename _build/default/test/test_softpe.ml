(* Software-PathExpander tests: functional equivalence with the hardware
   engine, write-log rollback correctness, and cost-model accounting. *)

let run_both (workload : Workload.t) =
  let compiled = Workload.compile workload in
  let hw_machine =
    Machine.create ~input:workload.Workload.default_input compiled.Compile.program
  in
  let hw = Engine.run ~config:(Workload.pe_config workload) hw_machine in
  let sw_machine =
    Machine.create ~input:workload.Workload.default_input compiled.Compile.program
  in
  let sw = Soft_engine.run ~config:(Workload.pe_config workload) sw_machine in
  (hw_machine, hw, sw_machine, sw)

let test_same_program_outcome () =
  let hw_machine, hw, sw_machine, sw = run_both Registry.print_tokens in
  Alcotest.(check string) "same output"
    (Machine.output hw_machine) (Machine.output sw_machine);
  Alcotest.(check bool) "both halt" true
    (hw.Engine.outcome = `Halted && sw.Soft_engine.outcome = `Halted)

let test_software_history_not_btb_limited () =
  (* the software exercise history is exact; the hardware BTB can alias and
     evict. On small programs they agree in spawn counts. *)
  let _, hw, _, sw = run_both Registry.print_tokens in
  Alcotest.(check int) "same spawns" hw.Engine.spawns sw.Soft_engine.spawns

let test_software_coverage_matches () =
  let _, hw, _, sw = run_both Registry.print_tokens in
  Alcotest.(check (float 0.001)) "same combined coverage"
    (Coverage.combined_pct hw.Engine.coverage)
    (Coverage.combined_pct sw.Soft_engine.coverage)

let test_write_log_restores_memory () =
  (* after a software run with many NT-Paths, the architectural memory must
     equal a baseline run's memory word for word *)
  let workload = Registry.schedule in
  let compiled = Workload.compile workload in
  let run_mem soft =
    let machine =
      Machine.create ~input:workload.Workload.default_input compiled.Compile.program
    in
    (if soft then ignore (Soft_engine.run ~config:(Workload.pe_config workload) machine)
     else ignore (Engine.run ~config:Pe_config.baseline machine));
    machine.Machine.mem
  in
  let base = run_mem false in
  let soft = run_mem true in
  let differences = ref 0 in
  for addr = Memory.null_guard to Memory.size base - 1 do
    if base.Memory.words.(addr) <> soft.Memory.words.(addr) then incr differences
  done;
  Alcotest.(check int) "memory identical after rollbacks" 0 !differences

let test_accounting_magnitude () =
  let _, _, _, sw = run_both Registry.print_tokens in
  let acc = sw.Soft_engine.accounting in
  Alcotest.(check bool) "slowdown well above 10x" true
    (acc.Pin_model.slowdown > 10.0);
  Alcotest.(check bool) "host insns exceed native" true
    (acc.Pin_model.host_insns > acc.Pin_model.native_insns)

let test_pin_model_formula () =
  let acc =
    Pin_model.account Pin_model.default ~taken_insns:1000 ~taken_branches:100
      ~spawns:2 ~nt_insns:500 ~nt_branches:50 ~nt_writes:30
  in
  let m = Pin_model.default in
  let expected =
    (1000 * m.Pin_model.dilation)
    + (100 * m.Pin_model.branch_analysis_insns)
    + (2 * (m.Pin_model.spawn_insns + m.Pin_model.restore_base_insns))
    + (500 * m.Pin_model.dilation)
    + (50 * m.Pin_model.branch_analysis_insns)
    + (30 * (m.Pin_model.write_log_insns + m.Pin_model.restore_per_write_insns))
  in
  Alcotest.(check int) "formula" expected acc.Pin_model.host_insns;
  Alcotest.(check (float 1e-9)) "slowdown"
    (float_of_int expected /. 1000.0)
    acc.Pin_model.slowdown

let test_zero_native () =
  let acc =
    Pin_model.account Pin_model.default ~taken_insns:0 ~taken_branches:0
      ~spawns:0 ~nt_insns:0 ~nt_branches:0 ~nt_writes:0
  in
  Alcotest.(check (float 1e-9)) "no division by zero" 0.0 acc.Pin_model.slowdown

let tests =
  [
    Alcotest.test_case "same program outcome" `Quick test_same_program_outcome;
    Alcotest.test_case "same spawns" `Quick test_software_history_not_btb_limited;
    Alcotest.test_case "same coverage" `Quick test_software_coverage_matches;
    Alcotest.test_case "write-log restores memory" `Quick test_write_log_restores_memory;
    Alcotest.test_case "accounting magnitude" `Quick test_accounting_magnitude;
    Alcotest.test_case "pin model formula" `Quick test_pin_model_formula;
    Alcotest.test_case "zero native insns" `Quick test_zero_native;
  ]

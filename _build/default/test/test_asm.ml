(* Assembler tests: parse/print round trips (unit and property), listing
   assembly, and executing an assembled program. *)

let roundtrip insn =
  Alcotest.(check string)
    (Insn.to_string insn)
    (Insn.to_string insn)
    (Insn.to_string (Asm.parse_insn (Insn.to_string insn)))

let test_roundtrip_each_form () =
  List.iter roundtrip
    [
      Insn.Binop (Insn.Add, Reg.tmp 0, Reg.tmp 1, Reg.tmp 2);
      Insn.Binopi (Insn.Shr, Reg.tmp 3, Reg.sp, -4);
      Insn.Cmp (Insn.Le, Reg.rv, Reg.arg 0, Reg.fp);
      Insn.Cmpi (Insn.Ne, Reg.tmp 17, Reg.zero, 99);
      Insn.Li (Reg.arg 7, -123456);
      Insn.Mov (Reg.ra, Reg.tmp 9);
      Insn.Load (Reg.tmp 0, Reg.fp, -3);
      Insn.Store (Reg.tmp 1, Reg.zero, 17);
      Insn.Br (Insn.Gt, Reg.tmp 2, Reg.zero, 42);
      Insn.Jmp 7;
      Insn.Call 3;
      Insn.Ret;
      Insn.Push Reg.fp;
      Insn.Pop Reg.fp;
      Insn.Syscall Insn.Sys_putc;
      Insn.Syscall Insn.Sys_getc;
      Insn.Syscall Insn.Sys_print_int;
      Insn.Syscall Insn.Sys_exit;
      Insn.Checkz (Reg.tmp 4, 12);
      Insn.Watch (Reg.tmp 5, Reg.tmp 6, 3);
      Insn.Unwatch (Reg.tmp 5, Reg.tmp 6);
      Insn.Pred (Insn.Li (Reg.tmp 17, 5));
      Insn.Pred (Insn.Store (Reg.tmp 17, Reg.fp, -2));
      Insn.Clearpred;
      Insn.Halt;
      Insn.Nop;
    ]

let insn_gen =
  let open QCheck.Gen in
  let reg = int_bound 31 in
  let cmp = oneofl [ Insn.Eq; Insn.Ne; Insn.Lt; Insn.Le; Insn.Gt; Insn.Ge ] in
  let binop =
    oneofl
      [
        Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.Mod; Insn.And; Insn.Or;
        Insn.Xor; Insn.Shl; Insn.Shr;
      ]
  in
  oneof
    [
      map3 (fun op (a, b) c -> Insn.Binop (op, a, b, c)) binop (pair reg reg) reg;
      map3 (fun op (a, b) k -> Insn.Binopi (op, a, b, k)) binop (pair reg reg)
        small_signed_int;
      map3 (fun c (a, b) d -> Insn.Cmp (c, a, b, d)) cmp (pair reg reg) reg;
      map3 (fun c (a, b) k -> Insn.Cmpi (c, a, b, k)) cmp (pair reg reg)
        small_signed_int;
      map2 (fun r k -> Insn.Li (r, k)) reg small_signed_int;
      map3 (fun r b k -> Insn.Load (r, b, k)) reg reg small_signed_int;
      map3 (fun r b k -> Insn.Store (r, b, k)) reg reg small_signed_int;
      map3 (fun c (a, b) t -> Insn.Br (c, a, b, abs t)) cmp (pair reg reg)
        small_signed_int;
      map (fun t -> Insn.Jmp (abs t)) small_signed_int;
      map2 (fun r k -> Insn.Pred (Insn.Li (r, k))) reg small_signed_int;
      return Insn.Ret;
      return Insn.Halt;
    ]

let prop_roundtrip =
  QCheck.Test.make ~name:"assembler round trip" ~count:500
    (QCheck.make ~print:Insn.to_string insn_gen)
    (fun insn -> Asm.parse_insn (Insn.to_string insn) = insn)

let test_parse_listing () =
  let code =
    Asm.parse_program
      {|
# compute 6*7 and print it
main:
    0: li    a0, 6
    muli  a0, a0, 7       # scale
    sys   print_int
    halt
|}
  in
  Alcotest.(check int) "four instructions" 4 (Array.length code);
  let program =
    {
      Program.code;
      entry = 0;
      globals_words = 0;
      init_data = [];
      sites = [||];
      user_branches = [];
      functions = [];
      user_code_ranges = [];
      fix_atoms = [];
      global_vars = [];
      blank_addrs = [];
      source_lines = [||];
    }
  in
  let machine = Machine.create program in
  (match (Cpu.run_baseline machine).Cpu.outcome with
   | `Halted -> ()
   | _ -> Alcotest.fail "assembled program did not halt");
  Alcotest.(check string) "prints 42" "42" (Machine.output machine)

let test_disassembly_is_assemblable () =
  (* the full disassembly of a compiled workload parses back verbatim *)
  let compiled = Workload.compile Registry.print_tokens in
  let text = Program.disassemble compiled.Compile.program in
  let code = Asm.parse_program text in
  Alcotest.(check int) "same length"
    (Array.length compiled.Compile.program.Program.code)
    (Array.length code);
  Array.iteri
    (fun i insn ->
      if insn <> compiled.Compile.program.Program.code.(i) then
        Alcotest.failf "mismatch at %d: %s vs %s" i (Insn.to_string insn)
          (Insn.to_string compiled.Compile.program.Program.code.(i)))
    code

let test_errors () =
  let expect text =
    match Asm.parse_insn text with
    | exception Asm.Error _ -> ()
    | _ -> Alcotest.failf "expected an error for %S" text
  in
  expect "frob  t0, t1";
  expect "li    q9, 5";
  expect "beq   t0, t1, 12";
  expect "add   t0, t1"

let tests =
  [
    Alcotest.test_case "round trip each form" `Quick test_roundtrip_each_form;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "parse listing and run" `Quick test_parse_listing;
    Alcotest.test_case "disassembly reassembles" `Quick test_disassembly_is_assemblable;
    Alcotest.test_case "errors" `Quick test_errors;
  ]

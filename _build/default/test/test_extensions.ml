(* Tests for the future-work extensions: OS syscall sandboxing inside
   NT-Paths, the random NT-Path selection factor, statement coverage, and
   the program symbol table. *)

let io_heavy_source =
  {|
int flag = 0;
int main() {
  int i;
  int c = getc();
  for (i = 0; i < 10; i = i + 1) {
    if (flag == 1) {
      putc('A');
      print_int(i);
      int d = getc();
      putc(d);
      putc('B');
      putc('C');
    }
  }
  putc('.');
  putc(c);
  return 0;
}
|}

let run ?(config = Pe_config.default) ?(input = "xy") source =
  let compiled = Compile.compile source in
  let machine = Machine.create ~input compiled.Compile.program in
  let result = Engine.run ~config machine in
  (machine, result)

let test_sandboxed_syscalls_keep_paths_alive () =
  let without =
    snd (run io_heavy_source)
  in
  let config = { Pe_config.default with Pe_config.sandbox_syscalls = true } in
  let with_os = snd (run ~config io_heavy_source) in
  let unsafe r = List.length (List.filter Nt_path.is_unsafe r.Engine.nt_records) in
  Alcotest.(check bool) "unsafe terminations without OS support" true
    (unsafe without > 0);
  Alcotest.(check int) "no unsafe terminations with OS support" 0
    (unsafe with_os);
  Alcotest.(check bool) "paths run longer" true
    (Coverage.combined_pct with_os.Engine.coverage
    >= Coverage.combined_pct without.Engine.coverage)

let test_sandboxed_syscalls_no_side_effects () =
  let config = { Pe_config.default with Pe_config.sandbox_syscalls = true } in
  let machine, _ = run ~config io_heavy_source in
  (* the NT-Paths executed putc('A')... virtually; none of it may appear, and
     the NT getc must not consume the taken path's input *)
  Alcotest.(check string) "output is the baseline's" ".x"
    (Machine.output machine)

let test_sandboxed_getc_reads_ahead () =
  (* inside an NT-Path, getc returns real upcoming input (path-local cursor) *)
  let source =
    {|
int flag = 0;
int seen = 0;
int main() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    if (flag == 1) {
      int c = getc();
      if (c == 'q') {
        seen = seen + 1;
        // a marker the detector can observe from the sandbox
        int t[2];
        t[5] = c;
      }
    }
  }
  return 0;
}
|}
  in
  let options = { Codegen.detector = Codegen.Ccured; fixing = true } in
  let compiled = Compile.compile ~options source in
  let config = { Pe_config.default with Pe_config.sandbox_syscalls = true } in
  let machine = Machine.create ~input:"q" compiled.Compile.program in
  let _ = Engine.run ~config machine in
  (* the overrun on t[5] is only reachable if the virtualised getc really
     delivered 'q' *)
  Alcotest.(check bool) "virtual getc delivered input" true
    (Report.sites_from_nt_paths machine.Machine.reports <> [])

let test_random_spawn_deterministic () =
  let config =
    { Pe_config.default with Pe_config.random_spawn_chance = 0.1; random_seed = 5 }
  in
  let spawns () = (snd (run ~config io_heavy_source)).Engine.spawns in
  Alcotest.(check int) "same seed, same spawns" (spawns ()) (spawns ())

let test_random_spawn_increases_exploration () =
  let base = (snd (run io_heavy_source)).Engine.spawns in
  let config =
    { Pe_config.default with Pe_config.random_spawn_chance = 0.3; random_seed = 2 }
  in
  let randomised = (snd (run ~config io_heavy_source)).Engine.spawns in
  Alcotest.(check bool) "more spawns with the random factor" true
    (randomised > base)

let test_statement_coverage_bounds () =
  let _, result = run io_heavy_source in
  let cov = result.Engine.coverage in
  Alcotest.(check bool) "stmt baseline in (0, 100]" true
    (Coverage.stmt_taken_pct cov > 0.0 && Coverage.stmt_taken_pct cov <= 100.0);
  Alcotest.(check bool) "stmt combined >= stmt baseline" true
    (Coverage.stmt_combined_pct cov >= Coverage.stmt_taken_pct cov)

let test_statement_vs_branch_ordering () =
  (* statement coverage is weaker than branch coverage: a program's executed
     statements are always at least as covered as its branch edges *)
  List.iter
    (fun (workload : Workload.t) ->
      let compiled = Workload.compile workload in
      let machine =
        Machine.create ~input:workload.Workload.default_input
          compiled.Compile.program
      in
      let result = Engine.run ~config:Pe_config.baseline machine in
      let cov = result.Engine.coverage in
      Alcotest.(check bool)
        (workload.Workload.name ^ ": stmt >= branch coverage")
        true
        (Coverage.stmt_taken_pct cov >= Coverage.taken_pct cov -. 1e-9))
    [ Registry.print_tokens; Registry.schedule; Registry.gzip ]

let test_global_address () =
  let compiled =
    Compile.compile "int alpha = 5; int beta[3]; int main() { return alpha + beta[0]; }"
  in
  let program = compiled.Compile.program in
  (match Program.global_address program "alpha" with
   | Some addr ->
     Alcotest.(check bool) "past the null page" true
       (addr >= Program.null_guard_words)
   | None -> Alcotest.fail "alpha not found");
  Alcotest.(check bool) "beta found" true
    (Program.global_address program "beta" <> None);
  Alcotest.(check (option int)) "unknown global" None
    (Program.global_address program "nope")

let test_user_code_ranges () =
  let compiled =
    Compile.compile "int f(int x) { return x + 1; } int main() { return f(1); }"
  in
  let program = compiled.Compile.program in
  Alcotest.(check int) "two user functions" 2
    (List.length program.Program.user_code_ranges);
  (* ranges are disjoint and ordered *)
  let sorted = List.sort compare program.Program.user_code_ranges in
  let rec disjoint = function
    | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && disjoint rest
    | _ -> true
  in
  Alcotest.(check bool) "disjoint" true (disjoint sorted);
  (* prelude functions like strlen are not user ranges *)
  let in_ranges pc =
    List.exists (fun (s, e) -> pc >= s && pc < e) program.Program.user_code_ranges
  in
  let strlen_pc = List.assoc "strlen" program.Program.functions in
  Alcotest.(check bool) "runtime excluded" false (in_ranges strlen_pc)

let test_ext_experiment_runs () =
  (* the extension experiment is wired into the registry *)
  Alcotest.(check bool) "ext1 registered" true (Runner.find "ext1" <> None)



(* --- the DIDUCE-style invariant detector ------------------------------------ *)

let diduce_train_and_monitor ?bug (workload : Workload.t) =
  let compiled = Workload.compile ?bug workload in
  let detector = Diduce.create compiled.Compile.program in
  let train =
    Machine.create ~input:workload.Workload.default_input compiled.Compile.program
  in
  Diduce.attach detector train;
  ignore (Engine.run ~config:Pe_config.baseline train);
  Diduce.start_monitoring detector;
  let monitor =
    Machine.create ~input:workload.Workload.default_input compiled.Compile.program
  in
  Diduce.attach detector monitor;
  ignore (Engine.run ~config:(Workload.pe_config workload) monitor);
  detector

let test_diduce_training_is_silent () =
  let compiled = Workload.compile Registry.schedule in
  let detector = Diduce.create compiled.Compile.program in
  let machine =
    Machine.create ~input:Registry.schedule.Workload.default_input
      compiled.Compile.program
  in
  Diduce.attach detector machine;
  ignore (Engine.run ~config:Pe_config.baseline machine);
  Alcotest.(check (list pass)) "no violations while training" []
    (Diduce.violations detector)

let test_diduce_catches_state_smash () =
  (* schedule v6 zeroes a queue count to -9 on a cold path: the invariant
     monitor must flag it from the NT-Path, with a large surprise factor *)
  let detector = diduce_train_and_monitor ~bug:6 Registry.schedule in
  let smashes =
    List.filter
      (fun (v : Diduce.violation) ->
        v.Diduce.name = "qcount" && v.Diduce.value = -9 && v.Diduce.on_nt_path)
      (Diduce.violations detector)
  in
  (match smashes with
   | [] -> Alcotest.fail "expected a qcount violation"
   | v :: _ ->
     Alcotest.(check bool) "high surprise" true (v.Diduce.surprise >= 2))

let test_diduce_fix_stores_excluded () =
  (* the consistency-fix stubs write boundary values to condition variables;
     those stores must not register as program anomalies. The clean binary's
     violations must all be low-surprise churn. *)
  let detector = diduce_train_and_monitor Registry.schedule2 in
  List.iter
    (fun (v : Diduce.violation) ->
      Alcotest.(check bool)
        (Printf.sprintf "low surprise at %s (%d)" v.Diduce.name v.Diduce.surprise)
        true
        (v.Diduce.surprise < 50))
    (Diduce.violations detector)

let test_diduce_names_violations () =
  let detector = diduce_train_and_monitor ~bug:3 Registry.schedule2 in
  Alcotest.(check bool) "count named" true
    (List.mem "count" (Diduce.distinct_violated_names detector))

let diduce_tests =
  [
    Alcotest.test_case "diduce training silent" `Quick test_diduce_training_is_silent;
    Alcotest.test_case "diduce catches state smash" `Quick test_diduce_catches_state_smash;
    Alcotest.test_case "diduce excludes fix stores" `Quick test_diduce_fix_stores_excluded;
    Alcotest.test_case "diduce names violations" `Quick test_diduce_names_violations;
  ]



let profiled_fixing_tests =
  let run_profiled profiled =
    let workload = Registry.bc in
    let compiled = Workload.compile ~detector:Codegen.Ccured workload in
    let machine =
      Machine.create ~input:workload.Workload.default_input compiled.Compile.program
    in
    let config =
      { (Workload.pe_config workload) with Pe_config.profiled_fixing = profiled }
    in
    (machine, Engine.run ~config machine)
  in
  [
    Alcotest.test_case "profiled fixing engages" `Quick (fun () ->
        let _, result = run_profiled true in
        Alcotest.(check bool) "overrides used" true
          (result.Engine.profiled_overrides > 0);
        let _, boundary = run_profiled false in
        Alcotest.(check int) "boundary mode uses none" 0
          boundary.Engine.profiled_overrides);
    Alcotest.test_case "profiled fixing is side-effect free" `Quick (fun () ->
        let machine_p, _ = run_profiled true in
        let machine_b, _ = run_profiled false in
        Alcotest.(check string) "same program output"
          (Machine.output machine_b) (Machine.output machine_p));
    Alcotest.test_case "profiled values satisfy the forced edge" `Quick
      (fun () ->
        (* a variable whose history contains a satisfying value: the engine
           must not regress coverage relative to boundary fixing *)
        let _, profiled = run_profiled true in
        let _, boundary = run_profiled false in
        Alcotest.(check bool) "coverage comparable" true
          (Float.abs
             (Coverage.combined_pct profiled.Engine.coverage
             -. Coverage.combined_pct boundary.Engine.coverage)
          < 5.0));
  ]

let tests =
  [
    Alcotest.test_case "sandboxed syscalls keep paths alive" `Quick
      test_sandboxed_syscalls_keep_paths_alive;
    Alcotest.test_case "sandboxed syscalls side-effect free" `Quick
      test_sandboxed_syscalls_no_side_effects;
    Alcotest.test_case "sandboxed getc reads ahead" `Quick
      test_sandboxed_getc_reads_ahead;
    Alcotest.test_case "random spawn deterministic" `Quick
      test_random_spawn_deterministic;
    Alcotest.test_case "random spawn explores more" `Quick
      test_random_spawn_increases_exploration;
    Alcotest.test_case "statement coverage bounds" `Quick
      test_statement_coverage_bounds;
    Alcotest.test_case "statement >= branch coverage" `Quick
      test_statement_vs_branch_ordering;
    Alcotest.test_case "global symbol table" `Quick test_global_address;
    Alcotest.test_case "user code ranges" `Quick test_user_code_ranges;
    Alcotest.test_case "extension experiment registered" `Quick
      test_ext_experiment_runs;
  ]
  @ diduce_tests @ profiled_fixing_tests

(* Workload integration tests: every application compiles and runs cleanly
   under every detector, and every planted bug behaves exactly as its
   metadata claims — undetected by the baseline on the default input,
   detected (or missed, for the engineered Section 7.1 categories) by
   PathExpander. This is Table 4 as a test suite. *)

let run_bug (workload : Workload.t) (bug : Bug.t) detector mode =
  let compiled = Workload.compile ~detector ~bug:bug.Bug.version workload in
  let machine =
    Machine.create ~input:workload.Workload.default_input compiled.Compile.program
  in
  let config = Workload.pe_config ~mode workload in
  let result = Engine.run ~config machine in
  (match result.Engine.outcome with
   | `Halted | `Exited _ -> ()
   | outcome ->
     Alcotest.failf "%s v%d: bad outcome %s" workload.Workload.name
       bug.Bug.version (Engine.outcome_name outcome));
  Analysis.detected (Analysis.analyze ~compiled ~machine ~bug)

let bug_case (workload : Workload.t) (bug : Bug.t) detector =
  let name =
    Printf.sprintf "%s v%d / %s" workload.Workload.name bug.Bug.version
      (Codegen.detector_name detector)
  in
  Alcotest.test_case name `Quick (fun () ->
      let baseline = run_bug workload bug detector Pe_config.Baseline in
      let pe = run_bug workload bug detector Pe_config.Standard in
      Alcotest.(check bool) (name ^ ": baseline misses it") false baseline;
      Alcotest.(check bool)
        (name ^ ": PathExpander outcome matches the engineered category")
        (bug.Bug.expected_miss = None)
        pe)

let all_bug_cases () =
  List.concat_map
    (fun (workload : Workload.t) ->
      List.concat_map
        (fun (bug : Bug.t) ->
          List.map
            (bug_case workload bug)
            (match bug.Bug.kind with
             | Bug.Memory -> [ Codegen.Ccured; Codegen.Iwatcher ]
             | Bug.Semantic -> [ Codegen.Assertions ]))
        workload.Workload.bugs)
    Registry.buggy_apps

let clean_run_case (workload : Workload.t) =
  Alcotest.test_case (workload.Workload.name ^ " clean run") `Quick (fun () ->
      List.iter
        (fun detector ->
          let compiled = Workload.compile ~detector workload in
          let machine =
            Machine.create ~input:workload.Workload.default_input
              compiled.Compile.program
          in
          let result = Engine.run ~config:Pe_config.baseline machine in
          (match result.Engine.outcome with
           | `Halted | `Exited 0 -> ()
           | outcome ->
             Alcotest.failf "%s/%s: %s" workload.Workload.name
               (Codegen.detector_name detector)
               (Engine.outcome_name outcome));
          (* the bug-free baseline run must be report-free *)
          Alcotest.(check int)
            (workload.Workload.name ^ " no reports without bugs")
            0
            (Report.count machine.Machine.reports))
        [ Codegen.No_detector; Codegen.Ccured; Codegen.Iwatcher; Codegen.Assertions ])

let generated_inputs_case (workload : Workload.t) =
  Alcotest.test_case (workload.Workload.name ^ " generated inputs") `Quick
    (fun () ->
      let rng = Rng.create 99 in
      let compiled = Workload.compile workload in
      for _ = 1 to 5 do
        let input = workload.Workload.gen_input rng in
        let machine = Machine.create ~input compiled.Compile.program in
        let result = Engine.run ~config:Pe_config.baseline machine in
        match result.Engine.outcome with
        | `Halted | `Exited 0 -> ()
        | outcome ->
          Alcotest.failf "%s on generated input: %s" workload.Workload.name
            (Engine.outcome_name outcome)
      done)

let output_deterministic_case (workload : Workload.t) =
  Alcotest.test_case (workload.Workload.name ^ " deterministic") `Quick
    (fun () ->
      let compiled = Workload.compile workload in
      let out () =
        let machine =
          Machine.create ~input:workload.Workload.default_input
            compiled.Compile.program
        in
        ignore (Engine.run ~config:Pe_config.baseline machine);
        Machine.output machine
      in
      Alcotest.(check string) "same output twice" (out ()) (out ()))

let pe_preserves_output_case (workload : Workload.t) =
  Alcotest.test_case (workload.Workload.name ^ " PE preserves output") `Quick
    (fun () ->
      let compiled = Workload.compile workload in
      let out mode =
        let machine =
          Machine.create ~input:workload.Workload.default_input
            compiled.Compile.program
        in
        ignore (Engine.run ~config:(Workload.pe_config ~mode workload) machine);
        Machine.output machine
      in
      let baseline = out Pe_config.Baseline in
      Alcotest.(check string) "standard" baseline (out Pe_config.Standard);
      Alcotest.(check string) "cmp" baseline (out Pe_config.Cmp))

let test_registry_shape () =
  Alcotest.(check int) "38 bugs" 38 Registry.total_bugs;
  Alcotest.(check int) "7 buggy apps" 7 (List.length Registry.buggy_apps);
  Alcotest.(check int) "10 apps total" 10 (List.length Registry.all);
  List.iter
    (fun (w : Workload.t) ->
      Alcotest.(check bool)
        (w.Workload.name ^ " has reasonable size")
        true
        (Workload.loc w > 100))
    Registry.all

let test_find () =
  Alcotest.(check string) "find by name" "164.gzip"
    (Registry.find "164.gzip").Workload.name;
  Alcotest.check_raises "unknown" (Invalid_argument "unknown workload 'zzz'")
    (fun () -> ignore (Registry.find "zzz"))

let tests =
  Alcotest.test_case "registry shape" `Quick test_registry_shape
  :: Alcotest.test_case "registry find" `Quick test_find
  :: (List.map clean_run_case Registry.all
     @ List.map output_deterministic_case Registry.all
     @ List.map pe_preserves_output_case Registry.all
     @ List.map generated_inputs_case Registry.all
     @ all_bug_cases ())

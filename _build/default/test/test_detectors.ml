(* Detector tests: CCured bounds/null checks, iWatcher red zones (globals,
   locals, heap, use-after-free), assertion lowering, and the report
   analysis used by the experiments. *)

let run ?(detector = Codegen.Ccured) ?(input = "") source =
  let options = { Codegen.detector; fixing = true } in
  let compiled = Compile.compile ~options source in
  let machine = Machine.create ~input compiled.Compile.program in
  let result = Cpu.run_baseline machine in
  (match result.Cpu.outcome with
   | `Halted | `Exited _ -> ()
   | `Faulted f -> Alcotest.failf "faulted: %s" (Cpu.fault_to_string f)
   | `Fuel_exhausted -> Alcotest.fail "fuel");
  (compiled, machine)

let kinds_of compiled machine =
  List.map
    (fun id ->
      (compiled.Compile.program.Program.sites.(id)).Site.kind)
    (Report.distinct_sites machine.Machine.reports)

let test_ccured_bounds_overrun () =
  let _, machine =
    run "int t[4]; int main() { int i; for (i = 0; i <= 4; i = i + 1) { t[i] = i; } return 0; }"
  in
  Alcotest.(check bool) "fires" true (Report.count machine.Machine.reports > 0)

let test_ccured_negative_index () =
  let compiled, machine =
    run "int t[4]; int main() { int i = -1; t[i] = 5; return 0; }"
  in
  Alcotest.(check (list pass)) "bounds kind" [ Site.Bounds_check ]
    (kinds_of compiled machine)

let test_ccured_in_bounds_silent () =
  let _, machine =
    run "int t[4]; int main() { int i; for (i = 0; i < 4; i = i + 1) { t[i] = i; } return t[3]; }"
  in
  Alcotest.(check int) "silent" 0 (Report.count machine.Machine.reports)

let test_ccured_null_deref () =
  (* the write target is valid memory (past the null page) so the run
     survives, but the null check on the pointer fires first *)
  let compiled, machine =
    run
      {|
int main() {
  int *p = NULL;
  int x = 0;
  if (x == 0) {
    p = p + 20;
    p[0] = 1;
    p = p - 20;
  }
  int *q = NULL;
  if (x == 1) {
    q[0] = 1;
  }
  return 0;
}
|}
  in
  ignore compiled;
  Alcotest.(check bool) "reported" true (Report.count machine.Machine.reports = 0)

let test_ccured_null_check_on_deref () =
  let compiled, machine =
    run
      {|
struct s { int a; int b; };
struct s *global_p = NULL;
int probe() {
  if (global_p != NULL) {
    return global_p->a;
  }
  return 0;
}
int main() { return probe(); }
|}
  in
  (* taken path never dereferences: silent *)
  ignore compiled;
  Alcotest.(check int) "silent on guarded code" 0
    (Report.count machine.Machine.reports)

let test_iwatcher_global_redzone () =
  let compiled, machine =
    run ~detector:Codegen.Iwatcher
      "int t[4]; int main() { int i; for (i = 0; i <= 4; i = i + 1) { t[i] = i; } return 0; }"
  in
  Alcotest.(check (list pass)) "watch kind" [ Site.Watchpoint ]
    (kinds_of compiled machine)

let test_iwatcher_local_redzone () =
  let _, machine =
    run ~detector:Codegen.Iwatcher
      {|
int smash(int n) {
  int buf[4];
  int i;
  for (i = 0; i <= n; i = i + 1) {
    buf[i] = i;
  }
  return buf[0];
}
int main() { return smash(4); }
|}
  in
  Alcotest.(check bool) "local red zone fires" true
    (Report.count machine.Machine.reports > 0)

let test_iwatcher_local_unwatched_after_return () =
  let _, machine =
    run ~detector:Codegen.Iwatcher
      {|
int helper() {
  int buf[4];
  buf[0] = 1;
  return buf[0];
}
int main() {
  helper();
  int other[16];
  int i;
  for (i = 0; i < 16; i = i + 1) {
    other[i] = i;
  }
  return other[15];
}
|}
  in
  Alcotest.(check int) "no stale watches" 0 (Report.count machine.Machine.reports)

let test_iwatcher_heap_redzone () =
  let _, machine =
    run ~detector:Codegen.Iwatcher
      {|
int main() {
  int *p = malloc(4);
  int i;
  for (i = 0; i <= 4; i = i + 1) {
    p[i] = i;
  }
  return 0;
}
|}
  in
  Alcotest.(check bool) "heap red zone fires" true
    (Report.count machine.Machine.reports > 0)

let test_iwatcher_use_after_free () =
  let _, machine =
    run ~detector:Codegen.Iwatcher
      {|
int main() {
  int *p = malloc(4);
  p[0] = 1;
  free(p);
  p[1] = 2;
  return 0;
}
|}
  in
  Alcotest.(check bool) "use-after-free fires" true
    (Report.count machine.Machine.reports > 0)

let test_iwatcher_clean_heap_use () =
  let _, machine =
    run ~detector:Codegen.Iwatcher
      {|
int main() {
  int *p = malloc(4);
  int i;
  for (i = 0; i < 4; i = i + 1) {
    p[i] = i;
  }
  free(p);
  return 0;
}
|}
  in
  Alcotest.(check int) "clean use silent" 0 (Report.count machine.Machine.reports)

let test_assertions_fire () =
  let compiled, machine =
    run ~detector:Codegen.Assertions
      "int main() { int x = 3; assert(x == 3); assert(x > 5); return 0; }"
  in
  Alcotest.(check int) "one distinct site" 1
    (List.length (Report.distinct_sites machine.Machine.reports));
  Alcotest.(check (list pass)) "assertion kind" [ Site.Assertion ]
    (kinds_of compiled machine)

let test_assertions_branch_free () =
  (* assertion conditions with && / || compile without branches, so they add
     no user branch edges *)
  let options = { Codegen.detector = Codegen.Assertions; fixing = true } in
  let with_assert =
    Compile.compile ~options
      "int main() { int x = 1; assert(x > 0 && x < 10 || x == 99); return 0; }"
  in
  let without_assert =
    Compile.compile ~options "int main() { int x = 1; return 0; }"
  in
  Alcotest.(check int) "no extra user branches"
    (List.length without_assert.Compile.program.Program.user_branches)
    (List.length with_assert.Compile.program.Program.user_branches)

let test_assertions_skipped_under_other_detectors () =
  let _, machine =
    run ~detector:Codegen.Ccured
      "int main() { int x = 3; assert(x > 5); return 0; }"
  in
  Alcotest.(check int) "assert not compiled" 0
    (Report.count machine.Machine.reports)

let test_analysis_detection_mapping () =
  let workload = Registry.print_tokens2 in
  let bug = Workload.find_bug workload 10 in
  let compiled = Workload.compile ~detector:Codegen.Ccured ~bug:10 workload in
  let machine =
    Machine.create ~input:workload.Workload.default_input compiled.Compile.program
  in
  let _ = Engine.run ~config:(Workload.pe_config workload) machine in
  let analysis = Analysis.analyze ~compiled ~machine ~bug in
  Alcotest.(check bool) "nt detection" true analysis.Analysis.detected_on_nt_path;
  Alcotest.(check bool) "not on taken path" false
    analysis.Analysis.detected_on_taken_path

let test_bug_metadata () =
  Alcotest.(check bool) "memory bug / ccured" true
    (Bug.detectable_by (Workload.find_bug Registry.bc 1) Codegen.Ccured);
  Alcotest.(check bool) "memory bug / assertions" false
    (Bug.detectable_by (Workload.find_bug Registry.bc 1) Codegen.Assertions);
  Alcotest.(check bool) "semantic bug / assertions" true
    (Bug.detectable_by (Workload.find_bug Registry.schedule 1) Codegen.Assertions);
  Alcotest.(check string) "category name" "hot-entry-edge"
    (Bug.miss_category_name Bug.Hot_entry_edge)

let tests =
  [
    Alcotest.test_case "ccured bounds overrun" `Quick test_ccured_bounds_overrun;
    Alcotest.test_case "ccured negative index" `Quick test_ccured_negative_index;
    Alcotest.test_case "ccured in-bounds silent" `Quick test_ccured_in_bounds_silent;
    Alcotest.test_case "ccured null pointer arithmetic" `Quick test_ccured_null_deref;
    Alcotest.test_case "ccured guarded deref silent" `Quick test_ccured_null_check_on_deref;
    Alcotest.test_case "iwatcher global red zone" `Quick test_iwatcher_global_redzone;
    Alcotest.test_case "iwatcher local red zone" `Quick test_iwatcher_local_redzone;
    Alcotest.test_case "iwatcher unwatch on return" `Quick test_iwatcher_local_unwatched_after_return;
    Alcotest.test_case "iwatcher heap red zone" `Quick test_iwatcher_heap_redzone;
    Alcotest.test_case "iwatcher use-after-free" `Quick test_iwatcher_use_after_free;
    Alcotest.test_case "iwatcher clean heap silent" `Quick test_iwatcher_clean_heap_use;
    Alcotest.test_case "assertions fire" `Quick test_assertions_fire;
    Alcotest.test_case "assertions branch-free" `Quick test_assertions_branch_free;
    Alcotest.test_case "assertions skipped elsewhere" `Quick test_assertions_skipped_under_other_detectors;
    Alcotest.test_case "analysis detection mapping" `Quick test_analysis_detection_mapping;
    Alcotest.test_case "bug metadata" `Quick test_bug_metadata;
  ]

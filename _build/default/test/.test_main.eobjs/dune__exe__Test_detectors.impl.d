test/test_detectors.ml: Alcotest Analysis Array Bug Codegen Compile Cpu Engine List Machine Program Registry Report Site Workload

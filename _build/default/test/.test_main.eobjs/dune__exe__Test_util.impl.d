test/test_util.ml: Alcotest Array List Rng Stats String Table Vec

test/test_extensions.ml: Alcotest Codegen Compile Coverage Diduce Engine Float List Machine Nt_path Pe_config Printf Program Registry Report Runner Workload

test/test_cpu.ml: Alcotest Array Context Cpu Insn Machine Memory Program Reg Report Site

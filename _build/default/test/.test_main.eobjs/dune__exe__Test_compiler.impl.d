test/test_compiler.ml: Alcotest Array Ast Char Codegen Compile Cpu Lexer List Machine Parser Program String Token

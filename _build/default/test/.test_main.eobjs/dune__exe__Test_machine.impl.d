test/test_machine.ml: Alcotest Btb Cache Context Memory Reg Report Watchpoints

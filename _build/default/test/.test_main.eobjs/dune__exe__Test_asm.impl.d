test/test_asm.ml: Alcotest Array Asm Compile Cpu Insn List Machine Program QCheck QCheck_alcotest Reg Registry Workload

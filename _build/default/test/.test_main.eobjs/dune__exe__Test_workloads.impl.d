test/test_workloads.ml: Alcotest Analysis Bug Codegen Compile Engine List Machine Pe_config Printf Registry Report Rng Workload

test/test_softpe.ml: Alcotest Array Compile Coverage Engine Machine Memory Pe_config Pin_model Registry Soft_engine Workload

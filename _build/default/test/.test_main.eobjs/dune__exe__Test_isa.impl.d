test/test_isa.ml: Alcotest Array Insn List Printf Program Reg Site String

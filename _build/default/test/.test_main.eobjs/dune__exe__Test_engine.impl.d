test/test_engine.ml: Alcotest Codegen Compile Coverage Engine List Machine Nt_path Pe_config Registry Report Watchpoints Workload

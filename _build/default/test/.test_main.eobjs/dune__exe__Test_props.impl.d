test/test_props.ml: Array Ast Cache Codegen Compile Context Coverage Cpu Engine Insn List Machine Memory Parser Pe_config Printf QCheck QCheck_alcotest Registry Rng String Workload

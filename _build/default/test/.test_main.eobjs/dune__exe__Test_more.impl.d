test/test_more.ml: Alcotest Codegen Compile Cpu Engine List Machine Nt_path Pe_config Runner

(* Unit tests for the utility library: deterministic RNG, statistics, table
   rendering, growable vectors. *)

let test_rng_determinism () =
  let a = Rng.create 42 in
  let b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 in
  let b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10);
    let r = Rng.int_in_range rng ~lo:5 ~hi:8 in
    Alcotest.(check bool) "in [5,8]" true (r >= 5 && r <= 8);
    let f = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_copy_independent () =
  let a = Rng.create 3 in
  let _ = Rng.bits a in
  let b = Rng.copy a in
  let va = Rng.bits a in
  let vb = Rng.bits b in
  Alcotest.(check int) "copy continues identically" va vb

let test_rng_choose_shuffle () =
  let rng = Rng.create 11 in
  let items = [ 1; 2; 3; 4; 5 ] in
  for _ = 1 to 20 do
    Alcotest.(check bool) "chosen from list" true
      (List.mem (Rng.choose rng items) items)
  done;
  let shuffled = Rng.shuffle rng items in
  Alcotest.(check (list int)) "permutation" items (List.sort compare shuffled)

let test_rng_errors () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "empty choose"
    (Invalid_argument "Rng.choose: empty list") (fun () ->
      ignore (Rng.choose rng []))

let test_stats_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Stats.mean []);
  Alcotest.(check (float 1e-9)) "mean_int" 2.5 (Stats.mean_int [ 2; 3 ])

let test_stats_geomean () =
  Alcotest.(check (float 1e-6)) "geomean" 2.0 (Stats.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.geomean [])

let test_stats_percentile () =
  let xs = [ 5; 1; 3; 2; 4 ] in
  Alcotest.(check int) "median" 3 (Stats.percentile xs 50.0);
  Alcotest.(check int) "min" 1 (Stats.percentile xs 1.0);
  Alcotest.(check int) "max" 5 (Stats.percentile xs 100.0)

let test_stats_cdf () =
  let cdf = Stats.cdf ~points:[ 1; 2; 3 ] [ 1; 1; 2; 3 ] in
  Alcotest.(check (list (pair int (float 1e-9))))
    "cdf values"
    [ (1, 0.5); (2, 0.75); (3, 1.0) ]
    cdf

let test_stats_pct () =
  Alcotest.(check (float 1e-9)) "pct" 50.0 (Stats.pct ~num:1 ~den:2);
  Alcotest.(check (float 1e-9)) "den 0" 0.0 (Stats.pct ~num:1 ~den:0)

let test_table_render () =
  let out = Table.render ~header:[ "a"; "bb" ] [ [ "x"; "y" ]; [ "zz"; "w" ] ] in
  Alcotest.(check bool) "contains header" true
    (String.length out > 0
    && String.index_opt out 'a' <> None
    && String.index_opt out '+' <> None);
  (* every line has the same width *)
  let lines = String.split_on_char '\n' out in
  let widths = List.map String.length lines in
  Alcotest.(check bool) "rectangular" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_arity_check () =
  Alcotest.check_raises "bad row arity"
    (Invalid_argument "Table.render: row arity differs from header") (fun () ->
      ignore (Table.render ~header:[ "a" ] [ [ "x"; "y" ] ]))

let test_table_formats () =
  Alcotest.(check string) "fpct" "12.3%" (Table.fpct 12.34);
  Alcotest.(check string) "f1" "1.5" (Table.f1 1.49);
  Alcotest.(check string) "f2" "1.23" (Table.f2 1.234)

let test_vec_basics () =
  let v = Vec.create ~dummy:0 in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 1000;
  Alcotest.(check int) "set" 1000 (Vec.get v 42);
  let arr = Vec.to_array v in
  Alcotest.(check int) "array length" 100 (Array.length arr);
  Alcotest.(check int) "array content" 99 arr.(99)

let test_vec_bounds () =
  let v = Vec.create ~dummy:0 in
  Vec.push v 1;
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec.get")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "set out of bounds" (Invalid_argument "Vec.set")
    (fun () -> Vec.set v (-1) 0)

let test_vec_iteri () =
  let v = Vec.create ~dummy:"" in
  List.iter (Vec.push v) [ "a"; "b"; "c" ];
  let acc = ref [] in
  Vec.iteri (fun i s -> acc := (i, s) :: !acc) v;
  Alcotest.(check (list (pair int string)))
    "iteri order"
    [ (0, "a"); (1, "b"); (2, "c") ]
    (List.rev !acc)

let tests =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng different seeds" `Quick test_rng_different_seeds;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng copy" `Quick test_rng_copy_independent;
    Alcotest.test_case "rng choose/shuffle" `Quick test_rng_choose_shuffle;
    Alcotest.test_case "rng errors" `Quick test_rng_errors;
    Alcotest.test_case "stats mean" `Quick test_stats_mean;
    Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats cdf" `Quick test_stats_cdf;
    Alcotest.test_case "stats pct" `Quick test_stats_pct;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity_check;
    Alcotest.test_case "table formats" `Quick test_table_formats;
    Alcotest.test_case "vec basics" `Quick test_vec_basics;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "vec iteri" `Quick test_vec_iteri;
  ]

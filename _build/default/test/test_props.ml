(* Property-based tests (QCheck, run through alcotest): sandbox rollback is
   the identity on memory, the two sandboxing mechanisms agree, compiled
   arithmetic agrees with a reference evaluator, the parser round-trips
   pretty-printed programs, coverage is monotone, and PathExpander never
   changes program output. *)

let qtest = QCheck_alcotest.to_alcotest

(* --- sandbox properties ---------------------------------------------------- *)

let addr_gen =
  QCheck.Gen.map (fun i -> Memory.null_guard + abs i mod 500) QCheck.Gen.int

let writes_gen = QCheck.Gen.(list_size (int_bound 60) (pair addr_gen int))

let writes_arb =
  QCheck.make ~print:(fun ws ->
      String.concat ";"
        (List.map (fun (a, v) -> Printf.sprintf "(%d,%d)" a v) ws))
    writes_gen

let fresh_mem () = Memory.create ~globals_words:600 ~heap_words:64 ~stack_words:64

let prop_overlay_discard_is_identity =
  QCheck.Test.make ~name:"overlay discard leaves memory intact" ~count:200
    writes_arb (fun writes ->
      let mem = fresh_mem () in
      List.iteri (fun i (a, _) -> Memory.write mem a i) writes;
      let snapshot = Array.copy mem.Memory.words in
      let sb = Context.make_sandbox ~path_id:1 ~line_limit:10_000 ~words_per_line:8 in
      List.iter (fun (a, v) -> ignore (Context.sandbox_write sb mem a v)) writes;
      snapshot = mem.Memory.words)

let prop_write_log_rollback_is_identity =
  QCheck.Test.make ~name:"write-log rollback restores memory" ~count:200
    writes_arb (fun writes ->
      let mem = fresh_mem () in
      List.iteri (fun i (a, _) -> Memory.write mem a (i * 3)) writes;
      let snapshot = Array.copy mem.Memory.words in
      let sb = Context.make_write_log_sandbox ~path_id:1 in
      List.iter (fun (a, v) -> ignore (Context.sandbox_write sb mem a v)) writes;
      Context.rollback_write_log sb mem;
      snapshot = mem.Memory.words)

let prop_sandboxes_agree =
  QCheck.Test.make ~name:"overlay and write-log sandboxes read identically"
    ~count:200 writes_arb (fun writes ->
      let mem_a = fresh_mem () in
      let mem_b = fresh_mem () in
      let overlay =
        Context.make_sandbox ~path_id:1 ~line_limit:10_000 ~words_per_line:8
      in
      let log = Context.make_write_log_sandbox ~path_id:1 in
      let cache = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32 in
      let ctx_a = Context.create ~l1:cache ~pc:0 ~sp:0 in
      let ctx_b = Context.create ~l1:cache ~pc:0 ~sp:0 in
      Context.enter_sandbox ctx_a overlay;
      Context.enter_sandbox ctx_b log;
      List.iter
        (fun (a, v) ->
          ignore (Context.sandbox_write overlay mem_a a v);
          ignore (Context.sandbox_write log mem_b a v))
        writes;
      List.for_all
        (fun (a, _) -> Context.read_mem ctx_a mem_a a = Context.read_mem ctx_b mem_b a)
        writes)

(* --- compiled arithmetic vs reference evaluator ----------------------------- *)

type aexpr =
  | Num of int
  | Add of aexpr * aexpr
  | Sub of aexpr * aexpr
  | Mul of aexpr * aexpr

let rec aexpr_to_string = function
  | Num n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (aexpr_to_string a) (aexpr_to_string b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (aexpr_to_string a) (aexpr_to_string b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (aexpr_to_string a) (aexpr_to_string b)

let rec aexpr_eval = function
  | Num n -> n
  | Add (a, b) -> aexpr_eval a + aexpr_eval b
  | Sub (a, b) -> aexpr_eval a - aexpr_eval b
  | Mul (a, b) -> aexpr_eval a * aexpr_eval b

let aexpr_gen =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
        if n <= 1 then map (fun v -> Num (v mod 50)) small_signed_int
        else
          oneof
            [
              map (fun v -> Num (v mod 50)) small_signed_int;
              map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Sub (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Mul (a, b)) (self (n / 2)) (self (n / 2));
            ]))

let aexpr_arb = QCheck.make ~print:aexpr_to_string aexpr_gen

let prop_compiled_arith_matches_reference =
  QCheck.Test.make ~name:"compiled arithmetic matches reference evaluation"
    ~count:60 aexpr_arb (fun e ->
      let source =
        Printf.sprintf "int main() { print_int(%s); return 0; }"
          (aexpr_to_string e)
      in
      let compiled = Compile.compile source in
      let machine = Machine.create compiled.Compile.program in
      match (Cpu.run_baseline machine).Cpu.outcome with
      | `Halted -> Machine.output machine = string_of_int (aexpr_eval e)
      | _ -> false)

(* --- parser round trip ------------------------------------------------------ *)

let prop_parser_round_trip =
  QCheck.Test.make ~name:"pretty-print/parse round trip is a fixpoint" ~count:60
    aexpr_arb (fun e ->
      let source =
        Printf.sprintf
          "int g = 3;\nint f(int a, int b) { return a + b; }\n\
           int main() { int x = %s; if (x > g) { x = f(x, g); } return x; }"
          (aexpr_to_string e)
      in
      let once = Ast.program_to_string (fst (Parser.parse_string source)) in
      let twice = Ast.program_to_string (fst (Parser.parse_string once)) in
      once = twice)

(* --- coverage --------------------------------------------------------------- *)

let prop_coverage_merge_monotone =
  QCheck.Test.make ~name:"coverage union is monotone and bounded" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let workload = Registry.print_tokens in
      let compiled = Workload.compile workload in
      let rng = Rng.create (seed + 1) in
      let acc = Coverage.create compiled.Compile.program in
      let previous = ref 0.0 in
      let ok = ref true in
      for _ = 1 to 3 do
        let input = workload.Workload.gen_input rng in
        let machine = Machine.create ~input compiled.Compile.program in
        let result = Engine.run ~config:(Workload.pe_config workload) machine in
        Coverage.merge_into ~dst:acc result.Engine.coverage;
        let now = Coverage.combined_pct acc in
        if now < !previous -. 1e-9 || now > 100.0 then ok := false;
        previous := now
      done;
      !ok)

(* --- fix boundary values ----------------------------------------------------- *)

let cmp_arb =
  QCheck.make
    ~print:(fun c -> Insn.cmp_name c)
    QCheck.Gen.(
      oneofl [ Insn.Eq; Insn.Ne; Insn.Lt; Insn.Le; Insn.Gt; Insn.Ge ])

let prop_boundary_value_satisfies =
  QCheck.Test.make ~name:"boundary fix value satisfies the edge condition"
    ~count:200
    QCheck.(pair cmp_arb small_signed_int)
    (fun (cmp, k) ->
      let v = Codegen.boundary_value cmp k in
      Insn.eval_cmp cmp v k)

(* --- end-to-end: PathExpander never changes output --------------------------- *)

let prop_pe_preserves_output =
  QCheck.Test.make ~name:"PathExpander preserves program output" ~count:15
    QCheck.(small_int)
    (fun seed ->
      let workload = Registry.schedule2 in
      let compiled = Workload.compile workload in
      let input = workload.Workload.gen_input (Rng.create (seed + 13)) in
      let out mode =
        let machine = Machine.create ~input compiled.Compile.program in
        ignore (Engine.run ~config:(Workload.pe_config ~mode workload) machine);
        Machine.output machine
      in
      out Pe_config.Baseline = out Pe_config.Standard)

let tests =
  List.map qtest
    [
      prop_overlay_discard_is_identity;
      prop_write_log_rollback_is_identity;
      prop_sandboxes_agree;
      prop_compiled_arith_matches_reference;
      prop_parser_round_trip;
      prop_coverage_merge_monotone;
      prop_boundary_value_satisfies;
      prop_pe_preserves_output;
    ]

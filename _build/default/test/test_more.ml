(* Second-round tests: NT-Path cache-overflow termination, engine fuel,
   further MiniC semantics, and a bitrot guard that executes every
   registered experiment end to end. *)

let exec ?(options = Codegen.default_options) ?(input = "") source =
  let compiled = Compile.compile ~options source in
  let machine = Machine.create ~input compiled.Compile.program in
  (match (Cpu.run_baseline machine).Cpu.outcome with
   | `Halted | `Exited _ -> ()
   | `Faulted f -> Alcotest.failf "faulted: %s" (Cpu.fault_to_string f)
   | `Fuel_exhausted -> Alcotest.fail "fuel");
  Machine.output machine

let check_output name source expected =
  Alcotest.(check string) name expected (exec source)

let test_cache_overflow_terminates_path () =
  (* the forced edge dirties more distinct L1 lines than the cache can
     buffer: the paper's capacity-driven squash *)
  let source =
    {|
int flag = 0;
int big[48000];
int main() {
  int i;
  for (i = 0; i < 4; i = i + 1) {
    if (flag == 1) {
      int j;
      for (j = 0; j < 6000; j = j + 1) {
        big[j * 8] = j;
      }
    }
  }
  return 0;
}
|}
  in
  let compiled = Compile.compile source in
  let machine = Machine.create compiled.Compile.program in
  let config =
    { Pe_config.default with Pe_config.max_nt_path_length = 1_000_000 }
  in
  let result = Engine.run ~config machine in
  let overflows =
    List.filter
      (fun (r : Nt_path.record) ->
        r.Nt_path.termination = Nt_path.T_cache_overflow)
      result.Engine.nt_records
  in
  Alcotest.(check bool) "some path overflowed L1 buffering" true
    (overflows <> []);
  List.iter
    (fun (r : Nt_path.record) ->
      (* 512 L1 lines at ~1 store each plus loop control: the path must have
         been cut well before the instruction budget *)
      Alcotest.(check bool) "cut before budget" true
        (r.Nt_path.insns < 1_000_000))
    overflows

let test_engine_fuel () =
  let source = "int main() { while (1 == 1) { } return 0; }" in
  let compiled = Compile.compile source in
  let machine = Machine.create compiled.Compile.program in
  let result = Engine.run ~config:Pe_config.baseline ~fuel:5_000 machine in
  Alcotest.(check bool) "fuel exhausted" true
    (result.Engine.outcome = `Fuel_exhausted)

let test_for_without_condition () =
  check_output "for(;;) with break"
    {|
int main() {
  int i = 0;
  for (;;) {
    i = i + 1;
    if (i == 4) { break; }
  }
  print_int(i);
  return 0;
}
|}
    "4"

let test_nested_break_continue () =
  check_output "nested loops"
    {|
int main() {
  int s = 0;
  int i;
  int j;
  for (i = 0; i < 4; i = i + 1) {
    for (j = 0; j < 4; j = j + 1) {
      if (j == 2) { break; }
      if (i == 1) { continue; }
      s = s + 10 * i + j;
    }
  }
  print_int(s);
  return 0;
}
|}
    (* i=0: j=0,1 -> 0+1; i=1: skipped; i=2: 20+21; i=3: 30+31 *)
    "103"

let test_struct_arrays_of_structs () =
  check_output "array of structs"
    {|
struct point {
  int x;
  int y;
};
struct point pts[3];
int main() {
  int i;
  for (i = 0; i < 3; i = i + 1) {
    pts[i].x = i;
    pts[i].y = i * i;
  }
  print_int(pts[2].x + pts[2].y + pts[1].y);
  return 0;
}
|}
    "7"

let test_pointer_to_struct_field () =
  check_output "&s.f through a pointer"
    {|
struct pair {
  int a;
  int b;
};
struct pair p;
int main() {
  int *q = &p.b;
  *q = 9;
  print_int(p.b);
  return 0;
}
|}
    "9"

let test_ternary_in_condition () =
  check_output "ternary nested in if"
    {|
int main() {
  int x = 5;
  if ((x > 3 ? 1 : 0) == 1) {
    print_int(7);
  } else {
    print_int(8);
  }
  return 0;
}
|}
    "7"

let test_deep_expression () =
  check_output "deep but within temporaries"
    "int main() { print_int(((1+2)*(3+4))+((5+6)*(7+8))); return 0; }" "186"

let test_comparison_chain_values () =
  check_output "comparisons as values"
    "int main() { int a = 3 < 5; int b = (a == 1) + (2 > 7); print_int(b); return 0; }"
    "1"

let test_shadowing () =
  check_output "block shadowing"
    {|
int x = 1;
int main() {
  int x = 2;
  {
    int x = 3;
    print_int(x);
  }
  print_int(x);
  return 0;
}
|}
    "32"

let test_recursion_depth () =
  check_output "deep recursion"
    {|
int down(int n) {
  if (n == 0) { return 0; }
  return 1 + down(n - 1);
}
int main() { print_int(down(500)); return 0; }
|}
    "500"

let test_all_experiments_execute () =
  (* bitrot guard: every registered experiment must run to completion
     (output goes to alcotest's capture) *)
  List.iter (fun e -> e.Runner.run ()) Runner.all

let test_experiment_ids_unique () =
  let ids = Runner.ids () in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let tests =
  [
    Alcotest.test_case "cache overflow terminates path" `Quick
      test_cache_overflow_terminates_path;
    Alcotest.test_case "engine fuel" `Quick test_engine_fuel;
    Alcotest.test_case "for without condition" `Quick test_for_without_condition;
    Alcotest.test_case "nested break/continue" `Quick test_nested_break_continue;
    Alcotest.test_case "arrays of structs" `Quick test_struct_arrays_of_structs;
    Alcotest.test_case "pointer to struct field" `Quick test_pointer_to_struct_field;
    Alcotest.test_case "ternary in condition" `Quick test_ternary_in_condition;
    Alcotest.test_case "deep expression" `Quick test_deep_expression;
    Alcotest.test_case "comparison chain" `Quick test_comparison_chain_values;
    Alcotest.test_case "shadowing" `Quick test_shadowing;
    Alcotest.test_case "recursion depth" `Quick test_recursion_depth;
    Alcotest.test_case "experiment ids unique" `Quick test_experiment_ids_unique;
    Alcotest.test_case "all experiments execute" `Slow test_all_experiments_execute;
  ]

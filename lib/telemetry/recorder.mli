(** The deterministic flight recorder: a fixed-capacity ring buffer of typed
    NT-Path lifecycle events, timestamped in {e simulated cycles} (never wall
    clock), so traces are byte-identical across serial and parallel runs of
    the same sweep.

    One recorder belongs to one run (one [Machine.t]) and is mutated from a
    single domain. With tracing disabled every emit site costs one branch on
    {!enabled} and the shared {!disabled} singleton is never written; with
    tracing enabled an emit is a handful of stores into preallocated flat
    arrays — no allocation either way. A full ring overwrites its oldest
    events and counts them in {!dropped}.

    Timestamps are [base + local]: {!set_base} holds the primary context's
    cycle count at NT-Path spawn (0 on the primary context itself) and
    {!set_local} the emitting context's own cycle count, set just before an
    emit. *)

type cause = Max_length | Crash | Unsafe_event | Program_end | Cache_overflow

val cause_name : cause -> string

type event =
  | Spawn of { at : int; path_id : int; br_pc : int; edge : bool; entry_pc : int }
  | Terminate of {
      at : int;
      path_id : int;
      cause : cause;
      len : int;  (** instructions the path retired *)
      dirty_lines : int;  (** L1 lines its squash invalidated *)
    }
  | Commit of { at : int; owner : int; lines : int }
  | Squash of { at : int; owner : int; lines : int }
  | Bug_detected of {
      at : int;
      site : int;
      origin : int;  (** 0 = taken path, else NT-Path id *)
      spawn_site : int;  (** spawning branch pc, -1 on the taken path *)
      edge : int;  (** forced direction 0/1, -1 on the taken path *)
      pc : int;
    }
  | Counter_reset of { at : int; insns : int }

type t

val default_capacity : int

(** A fresh enabled recorder (capacity in events, default 65536). *)
val create : ?capacity:int -> unit -> t

(** The shared no-op recorder: {!enabled} is [false] and it is never
    mutated, so every machine in every domain may hold the same instance. *)
val disabled : t

val enabled : t -> bool

(** Set the sim-time base (primary-context cycles at NT-Path spawn; 0 while
    the primary context runs). No-op when disabled. *)
val set_base : t -> int -> unit

(** Set the emitting context's local cycle count. No-op when disabled. *)
val set_local : t -> int -> unit

val emit_spawn : t -> path_id:int -> br_pc:int -> edge:bool -> entry_pc:int -> unit

val emit_terminate :
  t -> path_id:int -> cause:cause -> len:int -> dirty_lines:int -> unit

val emit_commit : t -> owner:int -> lines:int -> unit
val emit_squash : t -> owner:int -> lines:int -> unit

val emit_bug :
  t -> site:int -> origin:int -> spawn_site:int -> edge:int -> pc:int -> unit

val emit_counter_reset : t -> insns:int -> unit

(** Events currently retained (bounded by capacity). *)
val length : t -> int

(** Events ever emitted. *)
val total : t -> int

(** Events overwritten because the ring was full. *)
val dropped : t -> int

(** Retained events, oldest first. *)
val events : t -> event list

(** An immutable per-run trace snapshot (what sweep capture accumulates). *)
type dump = { label : string; events : event list; total : int; dropped : int }

val dump : ?label:string -> t -> dump

val jsonl_schema_version : int

(** One meta line (schema, label, totals) then one JSON object per event,
    oldest first, newline-terminated. *)
val jsonl_of_dump : dump -> string

(** Chrome trace-event JSON (loadable in Perfetto / chrome://tracing):
    Spawn/Terminate pairs become complete slices on [tid = path id], other
    events instants; [ts] is sim cycles rendered as microseconds. *)
val chrome_of_dump : dump -> string

val write_file : string -> string -> unit

(** Arm ([Some capacity]) or disarm ([None]) process-global tracing:
    {!obtain} hands out fresh enabled recorders while armed. *)
val set_tracing : int option -> unit

(** Whether tracing is armed. *)
val tracing : unit -> bool

(** A fresh enabled recorder while tracing is armed, {!disabled} otherwise.
    Safe from any domain. *)
val obtain : unit -> t

(** Hand a finished run's recorder (as a dump) to the installed trace
    collector; no-op when the recorder is disabled or no capture is
    active. Safe from any domain. *)
val submit : label:string -> t -> unit

(** [capture_runs f] arms tracing and installs a dump-accumulating
    collector around [f]; returns [f ()]'s result and the dumps submitted
    during it, in submission order. Disarms afterwards (also on raise). *)
val capture_runs : ?capacity:int -> (unit -> 'a) -> 'a * dump list

(** Write one JSONL file per dump into [dir] (created if missing), named
    [trace-NNNN-<label>.jsonl] and ordered by (label, content) so a
    parallel sweep writes byte-identical files to a serial one. Returns the
    paths written. *)
val save_dir : dir:string -> dump list -> string list

(* Hand-rolled JSON helpers shared by the telemetry sink and the flight
   recorder: deterministic emission (stable key order is the caller's job)
   and a small strict parser used to validate emitted traces in tests and
   CI without pulling in a JSON dependency. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ escape s ^ "\""

let jfloat x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.6g" x

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"

let jarr items = "[" ^ String.concat "," items ^ "]"

(* ---- Parsing ------------------------------------------------------------ *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let error cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      go ()
    | _ -> ()
  in
  go ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> error cur (Printf.sprintf "expected '%c'" c)

let parse_literal cur lit value =
  if
    cur.pos + String.length lit <= String.length cur.text
    && String.sub cur.text cur.pos (String.length lit) = lit
  then begin
    cur.pos <- cur.pos + String.length lit;
    value
  end
  else error cur (Printf.sprintf "expected '%s'" lit)

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

(* Encode a BMP codepoint as UTF-8 (surrogate pairs are not recombined;
   escaped traces only ever contain control characters here). *)
let add_codepoint buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' ->
      advance cur;
      Buffer.contents buf
    | Some '\\' ->
      advance cur;
      (match peek cur with
       | Some '"' -> Buffer.add_char buf '"'; advance cur
       | Some '\\' -> Buffer.add_char buf '\\'; advance cur
       | Some '/' -> Buffer.add_char buf '/'; advance cur
       | Some 'n' -> Buffer.add_char buf '\n'; advance cur
       | Some 't' -> Buffer.add_char buf '\t'; advance cur
       | Some 'r' -> Buffer.add_char buf '\r'; advance cur
       | Some 'b' -> Buffer.add_char buf '\b'; advance cur
       | Some 'f' -> Buffer.add_char buf '\012'; advance cur
       | Some 'u' ->
         advance cur;
         let cp = ref 0 in
         for _ = 1 to 4 do
           match peek cur with
           | Some c when hex_digit c >= 0 ->
             cp := (!cp * 16) + hex_digit c;
             advance cur
           | _ -> error cur "bad \\u escape"
         done;
         add_codepoint buf !cp
       | _ -> error cur "bad escape");
      go ()
    | Some c when Char.code c < 0x20 -> error cur "raw control character"
    | Some c ->
      Buffer.add_char buf c;
      advance cur;
      go ()
  in
  go ()

let parse_number cur =
  let start = cur.pos in
  let consume_while f =
    let rec go () =
      match peek cur with Some c when f c -> advance cur; go () | _ -> ()
    in
    go ()
  in
  (match peek cur with Some '-' -> advance cur | _ -> ());
  consume_while (function '0' .. '9' -> true | _ -> false);
  (match peek cur with
   | Some '.' ->
     advance cur;
     consume_while (function '0' .. '9' -> true | _ -> false)
   | _ -> ());
  (match peek cur with
   | Some ('e' | 'E') ->
     advance cur;
     (match peek cur with Some ('+' | '-') -> advance cur | _ -> ());
     consume_while (function '0' .. '9' -> true | _ -> false)
   | _ -> ());
  let s = String.sub cur.text start (cur.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> error cur "bad number"

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          members ((k, v) :: acc)
        | Some '}' ->
          advance cur;
          Obj (List.rev ((k, v) :: acc))
        | _ -> error cur "expected ',' or '}'"
      in
      members []
    end
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items (v :: acc)
        | Some ']' ->
          advance cur;
          Arr (List.rev (v :: acc))
        | _ -> error cur "expected ',' or ']'"
      in
      items []
    end
  | Some '"' -> Str (parse_string cur)
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some 'n' -> parse_literal cur "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number cur)
  | Some c -> error cur (Printf.sprintf "unexpected '%c'" c)

let parse s =
  let cur = { text = s; pos = 0 } in
  match parse_value cur with
  | v ->
    skip_ws cur;
    if cur.pos <> String.length s then Error "trailing garbage"
    else Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

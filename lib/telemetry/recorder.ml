(* The deterministic flight recorder: a fixed-capacity ring buffer of typed
   NT-Path lifecycle events, timestamped in *simulated cycles* — never wall
   clock — so two runs of the same sweep produce byte-identical traces,
   serial or parallel.

   One recorder belongs to one run (one [Machine.t]) and is mutated from a
   single domain. The hot-path contract: with tracing disabled every emit
   site costs exactly one load-and-branch on [enabled] (the [disabled]
   singleton is shared and never written); with tracing enabled an emit is
   six array stores into preallocated flat arrays — no allocation either
   way. When the ring fills, the oldest events are overwritten and counted
   as dropped.

   The sim-time clock is split into [base + local]: [base] is the primary
   context's cycle count at the moment an NT-Path was spawned (0 while the
   primary context itself runs), [local] the emitting context's own cycle
   count. Emitters set [local] just before emitting; the engine brackets
   each NT-Path with [set_base]. *)

type cause = Max_length | Crash | Unsafe_event | Program_end | Cache_overflow

let cause_name = function
  | Max_length -> "max-length"
  | Crash -> "crash"
  | Unsafe_event -> "unsafe-event"
  | Program_end -> "program-end"
  | Cache_overflow -> "cache-overflow"

let cause_code = function
  | Max_length -> 0
  | Crash -> 1
  | Unsafe_event -> 2
  | Program_end -> 3
  | Cache_overflow -> 4

let cause_of_code = function
  | 0 -> Max_length
  | 1 -> Crash
  | 2 -> Unsafe_event
  | 3 -> Program_end
  | 4 -> Cache_overflow
  | n -> invalid_arg (Printf.sprintf "Recorder.cause_of_code %d" n)

type event =
  | Spawn of { at : int; path_id : int; br_pc : int; edge : bool; entry_pc : int }
  | Terminate of {
      at : int;
      path_id : int;
      cause : cause;
      len : int;  (* instructions the path retired *)
      dirty_lines : int;  (* L1 lines its squash invalidated *)
    }
  | Commit of { at : int; owner : int; lines : int }
  | Squash of { at : int; owner : int; lines : int }
  | Bug_detected of {
      at : int;
      site : int;
      origin : int;  (* 0 = taken path, else NT-Path id *)
      spawn_site : int;  (* spawning branch pc, -1 on the taken path *)
      edge : int;  (* forced direction 0/1, -1 on the taken path *)
      pc : int;
    }
  | Counter_reset of { at : int; insns : int }

(* Event kinds, by slot byte. *)
let k_spawn = 0
let k_terminate = 1
let k_commit = 2
let k_squash = 3
let k_bug = 4
let k_counter_reset = 5

type t = {
  enabled : bool;
  capacity : int;
  kinds : Bytes.t;
  ts : int array;
  f0 : int array;
  f1 : int array;
  f2 : int array;
  f3 : int array;
  f4 : int array;
  mutable total : int;  (* events ever emitted; write slot = total mod capacity *)
  mutable base : int;
  mutable local : int;
}

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  {
    enabled = true;
    capacity;
    kinds = Bytes.make capacity '\000';
    ts = Array.make capacity 0;
    f0 = Array.make capacity 0;
    f1 = Array.make capacity 0;
    f2 = Array.make capacity 0;
    f3 = Array.make capacity 0;
    f4 = Array.make capacity 0;
    total = 0;
    base = 0;
    local = 0;
  }

(* The shared no-op recorder: [enabled = false] and never mutated, so it is
   safe to hand the same instance to every machine in every domain. *)
let disabled =
  {
    enabled = false;
    capacity = 1;
    kinds = Bytes.make 1 '\000';
    ts = [| 0 |];
    f0 = [| 0 |];
    f1 = [| 0 |];
    f2 = [| 0 |];
    f3 = [| 0 |];
    f4 = [| 0 |];
    total = 0;
    base = 0;
    local = 0;
  }

let enabled t = t.enabled

let set_base t c = if t.enabled then t.base <- c
let set_local t c = if t.enabled then t.local <- c

let push t kind a b c d e =
  let slot = t.total mod t.capacity in
  Bytes.unsafe_set t.kinds slot (Char.unsafe_chr kind);
  t.ts.(slot) <- t.base + t.local;
  t.f0.(slot) <- a;
  t.f1.(slot) <- b;
  t.f2.(slot) <- c;
  t.f3.(slot) <- d;
  t.f4.(slot) <- e;
  t.total <- t.total + 1

let emit_spawn t ~path_id ~br_pc ~edge ~entry_pc =
  if t.enabled then
    push t k_spawn path_id br_pc (if edge then 1 else 0) entry_pc 0

let emit_terminate t ~path_id ~cause ~len ~dirty_lines =
  if t.enabled then
    push t k_terminate path_id (cause_code cause) len dirty_lines 0

let emit_commit t ~owner ~lines =
  if t.enabled then push t k_commit owner lines 0 0 0

let emit_squash t ~owner ~lines =
  if t.enabled then push t k_squash owner lines 0 0 0

let emit_bug t ~site ~origin ~spawn_site ~edge ~pc =
  if t.enabled then push t k_bug site origin spawn_site edge pc

let emit_counter_reset t ~insns =
  if t.enabled then push t k_counter_reset insns 0 0 0 0

let length t = min t.total t.capacity
let total t = t.total
let dropped t = max 0 (t.total - t.capacity)

let event_at t slot =
  let at = t.ts.(slot) in
  let a = t.f0.(slot)
  and b = t.f1.(slot)
  and c = t.f2.(slot)
  and d = t.f3.(slot)
  and e = t.f4.(slot) in
  match Char.code (Bytes.get t.kinds slot) with
  | 0 -> Spawn { at; path_id = a; br_pc = b; edge = c = 1; entry_pc = d }
  | 1 ->
    Terminate
      { at; path_id = a; cause = cause_of_code b; len = c; dirty_lines = d }
  | 2 -> Commit { at; owner = a; lines = b }
  | 3 -> Squash { at; owner = a; lines = b }
  | 4 -> Bug_detected { at; site = a; origin = b; spawn_site = c; edge = d; pc = e }
  | 5 -> Counter_reset { at; insns = a }
  | k -> invalid_arg (Printf.sprintf "Recorder.event_at: kind %d" k)

(* Retained events, oldest first (when the ring wrapped, the oldest
   surviving event is the one just past the write cursor). *)
let events t =
  let n = length t in
  let first = if t.total <= t.capacity then 0 else t.total mod t.capacity in
  List.init n (fun i -> event_at t ((first + i) mod t.capacity))

(* ---- Immutable per-run snapshot ----------------------------------------- *)

(* A submitted run's trace: the retained events plus enough metadata to name
   and validate the file. Snapshots, not live recorders, are what sweep
   capture accumulates — the flat arrays go back to the GC with the
   machine. *)
type dump = { label : string; events : event list; total : int; dropped : int }

let dump ?(label = "") t =
  { label; events = events t; total = t.total; dropped = dropped t }

(* ---- JSONL exporter ----------------------------------------------------- *)

let jsonl_schema_version = 1

let event_json ev =
  let open Jsonu in
  match ev with
  | Spawn { at; path_id; br_pc; edge; entry_pc } ->
    jobj
      [
        ("type", jstr "spawn");
        ("at", string_of_int at);
        ("path", string_of_int path_id);
        ("br_pc", string_of_int br_pc);
        ("edge", string_of_int (if edge then 1 else 0));
        ("entry", string_of_int entry_pc);
      ]
  | Terminate { at; path_id; cause; len; dirty_lines } ->
    jobj
      [
        ("type", jstr "terminate");
        ("at", string_of_int at);
        ("path", string_of_int path_id);
        ("cause", jstr (cause_name cause));
        ("len", string_of_int len);
        ("dirty_lines", string_of_int dirty_lines);
      ]
  | Commit { at; owner; lines } ->
    jobj
      [
        ("type", jstr "commit");
        ("at", string_of_int at);
        ("owner", string_of_int owner);
        ("lines", string_of_int lines);
      ]
  | Squash { at; owner; lines } ->
    jobj
      [
        ("type", jstr "squash");
        ("at", string_of_int at);
        ("owner", string_of_int owner);
        ("lines", string_of_int lines);
      ]
  | Bug_detected { at; site; origin; spawn_site; edge; pc } ->
    jobj
      [
        ("type", jstr "bug");
        ("at", string_of_int at);
        ("site", string_of_int site);
        ("origin", string_of_int origin);
        ("spawn_site", string_of_int spawn_site);
        ("edge", string_of_int edge);
        ("pc", string_of_int pc);
      ]
  | Counter_reset { at; insns } ->
    jobj
      [
        ("type", jstr "counter_reset");
        ("at", string_of_int at);
        ("insns", string_of_int insns);
      ]

(* One meta line (schema version, run label, totals) followed by one line
   per retained event, oldest first. Every line is a complete JSON object. *)
let jsonl_of_dump d =
  let buf = Buffer.create (256 + (64 * List.length d.events)) in
  Buffer.add_string buf
    (Jsonu.jobj
       [
         ("type", Jsonu.jstr "meta");
         ("schema", string_of_int jsonl_schema_version);
         ("label", Jsonu.jstr d.label);
         ("clock", Jsonu.jstr "sim-cycles");
         ("events", string_of_int (List.length d.events));
         ("total", string_of_int d.total);
         ("dropped", string_of_int d.dropped);
       ]);
  Buffer.add_char buf '\n';
  List.iter
    (fun ev ->
      Buffer.add_string buf (event_json ev);
      Buffer.add_char buf '\n')
    d.events;
  Buffer.contents buf

(* ---- Chrome trace-event exporter (Perfetto / chrome://tracing) ---------- *)

(* Spawn/Terminate pairs become "X" (complete) slices on tid = path id; the
   rest become instants. Timestamps are sim cycles written as microseconds,
   so one cycle renders as one us. *)
let chrome_of_dump d =
  let open Jsonu in
  let args fields = jobj fields in
  let entry ?(extra = []) ~name ~ph ~ts ~tid fields =
    jobj
      ([
         ("name", jstr name);
         ("ph", jstr ph);
         ("ts", string_of_int ts);
         ("pid", "0");
         ("tid", string_of_int tid);
       ]
      @ extra
      @ [ ("args", args fields) ])
  in
  (* Pair each Spawn with the next Terminate of the same path id. *)
  let open_spawns = Hashtbl.create 32 in
  let items = ref [] in
  let push s = items := s :: !items in
  List.iter
    (fun ev ->
      match ev with
      | Spawn { at; path_id; br_pc; edge; entry_pc } ->
        Hashtbl.replace open_spawns path_id (at, br_pc, edge, entry_pc)
      | Terminate { at; path_id; cause; len; dirty_lines } ->
        let fields =
          [
            ("cause", jstr (cause_name cause));
            ("len", string_of_int len);
            ("dirty_lines", string_of_int dirty_lines);
          ]
        in
        (match Hashtbl.find_opt open_spawns path_id with
         | Some (t0, br_pc, edge, entry_pc) ->
           Hashtbl.remove open_spawns path_id;
           push
             (entry
                ~name:(Printf.sprintf "nt-path@%d" br_pc)
                ~ph:"X" ~ts:t0 ~tid:path_id
                ~extra:[ ("dur", string_of_int (max 0 (at - t0))) ]
                (fields
                @ [
                    ("br_pc", string_of_int br_pc);
                    ("edge", string_of_int (if edge then 1 else 0));
                    ("entry", string_of_int entry_pc);
                  ]))
         | None ->
           (* The matching spawn fell off the ring: render a lone instant. *)
           push (entry ~name:"terminate" ~ph:"i" ~ts:at ~tid:path_id fields))
      | Commit { at; owner; lines } ->
        push
          (entry ~name:"commit" ~ph:"i" ~ts:at ~tid:owner
             [ ("lines", string_of_int lines) ])
      | Squash { at; owner; lines } ->
        push
          (entry ~name:"squash" ~ph:"i" ~ts:at ~tid:owner
             [ ("lines", string_of_int lines) ])
      | Bug_detected { at; site; origin; spawn_site; edge; pc } ->
        push
          (entry
             ~name:(Printf.sprintf "bug site %d" site)
             ~ph:"i" ~ts:at ~tid:origin
             ~extra:[ ("s", jstr "p") ]
             [
               ("origin", string_of_int origin);
               ("spawn_site", string_of_int spawn_site);
               ("edge", string_of_int edge);
               ("pc", string_of_int pc);
             ])
      | Counter_reset { at; insns } ->
        push
          (entry ~name:"counter-reset" ~ph:"i" ~ts:at ~tid:0
             [ ("insns", string_of_int insns) ]))
    d.events;
  (* Unterminated spawns (run ended mid-path never happens, but a wrapped
     ring can orphan them): render as instants so nothing is silently lost. *)
  Hashtbl.iter
    (fun path_id (t0, br_pc, edge, entry_pc) ->
      push
        (entry ~name:"spawn" ~ph:"i" ~ts:t0 ~tid:path_id
           [
             ("br_pc", string_of_int br_pc);
             ("edge", string_of_int (if edge then 1 else 0));
             ("entry", string_of_int entry_pc);
           ]))
    open_spawns;
  jobj
    [
      ("traceEvents", jarr (List.rev !items));
      ("displayTimeUnit", jstr "ms");
      ( "otherData",
        jobj
          [
            ("clock", jstr "sim-cycles");
            ("label", jstr d.label);
            ("dropped", string_of_int d.dropped);
          ] );
    ]

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* ---- Process-global capture (sweep tracing) ----------------------------- *)

(* Mirrors the Telemetry collector: [set_tracing] arms machine creation
   ([obtain] hands out fresh enabled recorders instead of the disabled
   singleton) and engines [submit] finished runs as immutable dumps. *)
let tracing_mutex = Mutex.create ()
let tracing_capacity : int option ref = ref None
let trace_collector : (dump -> unit) option ref = ref None

let set_tracing cap =
  Mutex.lock tracing_mutex;
  tracing_capacity := cap;
  Mutex.unlock tracing_mutex

let tracing () =
  Mutex.lock tracing_mutex;
  let r = !tracing_capacity <> None in
  Mutex.unlock tracing_mutex;
  r

let obtain () =
  Mutex.lock tracing_mutex;
  let cap = !tracing_capacity in
  Mutex.unlock tracing_mutex;
  match cap with None -> disabled | Some capacity -> create ~capacity ()

let submit ~label t =
  if t.enabled then begin
    Mutex.lock tracing_mutex;
    let c = !trace_collector in
    Mutex.unlock tracing_mutex;
    match c with None -> () | Some f -> f (dump ~label t)
  end

(* Run [f] with tracing armed and a dump-accumulating collector installed;
   returns [f ()]'s value and every submitted run, in submission order. *)
let capture_runs ?(capacity = default_capacity) f =
  let acc = ref [] in
  let acc_mutex = Mutex.create () in
  Mutex.lock tracing_mutex;
  tracing_capacity := Some capacity;
  trace_collector :=
    Some
      (fun d ->
        Mutex.lock acc_mutex;
        acc := d :: !acc;
        Mutex.unlock acc_mutex);
  Mutex.unlock tracing_mutex;
  let finish () =
    Mutex.lock tracing_mutex;
    tracing_capacity := None;
    trace_collector := None;
    Mutex.unlock tracing_mutex
  in
  match f () with
  | v ->
    finish ();
    (v, List.rev !acc)
  | exception e ->
    finish ();
    raise e

(* ---- Directory export --------------------------------------------------- *)

let sanitize_label label =
  let buf = Buffer.create (String.length label) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' ->
        Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    label;
  if Buffer.length buf = 0 then "run" else Buffer.contents buf

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

(* Write one JSONL file per dump into [dir]. Submission order is
   nondeterministic under a parallel sweep, so files are ordered by (label,
   serialized content) — identical sweeps name identical bytes identically,
   serial or [--jobs N]. *)
let save_dir ~dir dumps =
  ensure_dir dir;
  let keyed =
    List.map (fun d -> ((d.label, jsonl_of_dump d), d)) dumps
    |> List.sort (fun ((ka, _), _) ((kb, _), _) -> compare ka kb)
  in
  List.mapi
    (fun i ((_, jsonl), d) ->
      let file =
        Filename.concat dir
          (Printf.sprintf "trace-%04d-%s.jsonl" i (sanitize_label d.label))
      in
      write_file file jsonl;
      file)
    keyed

(** Deterministic JSON emission helpers plus a small strict parser.

    The emitters are shared by {!Telemetry} and {!Recorder}; the parser
    exists so tests and CI can round-trip every emitted line without a JSON
    library dependency. *)

(** Backslash-escape a string for embedding in a JSON string literal. *)
val escape : string -> string

(** A quoted, escaped JSON string literal. *)
val jstr : string -> string

(** Deterministic float rendering ([1.0] for integers, [%.6g] otherwise). *)
val jfloat : float -> string

(** [jobj fields] renders an object; keys are emitted in list order. *)
val jobj : (string * string) list -> string

(** [jarr items] renders already-serialised items as an array. *)
val jarr : string list -> string

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

(** Strict parse of one complete JSON document. *)
val parse : string -> (value, string) result

(** Object member lookup ([None] on missing key or non-object). *)
val member : string -> value -> value option

(** Lightweight observability for simulator runs.

    A sink collects named integer counters, float gauges, accumulating
    wall-clock timers and a bounded span trace, and renders them as
    deterministic-keyed JSON. One sink belongs to one run (one [Machine.t])
    and is mutated from a single domain; the optional process-global
    collector is mutex-protected so parallel sweep workers can submit
    concurrently.

    The JSON schema (documented in DESIGN.md):
    {v
    { "label":    "<run label>",
      "counters": { "<name>": <int>, ... },
      "gauges":   { "<name>": <float>, ... },
      "hists":    { "<name>": {"count":i, "sum":i, "min":i, "max":i,
                               "buckets":[[<lo>,<count>], ...]}, ... },
      "timers":   { "<name>": {"total_s":f, "count":i, "max_s":f}, ... },
      "trace":    [ {"name":s, "depth":i, "start_s":f, "dur_s":f}, ... ],
      "trace_dropped": <int> }
    v} *)

type t

val create : ?label:string -> unit -> t
val set_label : t -> string -> unit
val label : t -> string

(** [count t name n] adds [n] to counter [name] (created at 0). *)
val count : t -> string -> int -> unit

val incr : t -> string -> unit

(** Current value of a counter (0 when never touched). *)
val counter : t -> string -> int

(** A pre-resolved counter handle for per-event hot paths: the name is
    hashed at most once (on the first {!counter_add}), and a handle that is
    never added through leaves the exported counter set untouched — the
    exact semantics of calling {!count} on demand, minus the per-event
    hashtable lookup. *)
type counter_handle

val counter_handle : t -> string -> counter_handle
val counter_add : counter_handle -> int -> unit
val counter_incr : counter_handle -> unit

(** [gauge t name v] sets gauge [name] to [v] (last write wins). *)
val gauge : t -> string -> float -> unit

val gauge_value : t -> string -> float option

(** [observe t name v] adds one observation to the log-bucketed histogram
    [name]. Bucket 0 holds values [<= 0]; bucket [i >= 1] holds the range
    [2^(i-1) .. 2^i - 1], so 63 buckets cover every non-negative int
    including [max_int]. *)
val observe : t -> string -> int -> unit

(** A resolved histogram handle: {!hist} looks the name up (creating the
    histogram if needed) once, and {!hist_observe} records through the
    handle without re-hashing the name — for per-event hot paths. *)
type hist

val hist : t -> string -> hist
val hist_observe : hist -> int -> unit

(** Total observations recorded under histogram [name] (0 when absent). *)
val hist_count : t -> string -> int

(** Non-empty buckets of histogram [name] as [(range_lo, count)] pairs in
    ascending range order; [[]] when the histogram was never observed. *)
val hist_buckets : t -> string -> (int * int) list

(** [span t name f] runs [f], accumulating its wall time under timer [name]
    and appending a span (with nesting depth) to the bounded trace. Spans
    past the trace bound are counted in {!trace_dropped} instead. *)
val span : t -> string -> (unit -> 'a) -> 'a

(** Spans elided because the bounded trace was full. *)
val trace_dropped : t -> int

(** Record an externally measured duration under timer [name]. *)
val timer_record : t -> string -> float -> unit

(** Accumulated seconds under a timer (0 when never touched). *)
val timer_total : t -> string -> float

(** One run's telemetry as a single-line JSON object, keys sorted. *)
val to_json : t -> string

(** One run's metrics in the Prometheus text exposition format:
    deterministic (sorted names, fixed float formatting), every series
    labelled [{run="<label>"}]. Counters and gauges map directly; timers
    become [_seconds_total]/[_invocations_total] counters; log-bucketed
    histograms become cumulative-bucket histogram series. The span trace is
    not exposed. *)
val to_prometheus : t -> string

(** Drop every metric and the span trace, returning the sink to its
    just-created state (label kept). Counter and histogram handles resolved
    before the reset are invalidated — adds through them would mutate
    detached cells — so re-resolve handles after resetting. *)
val reset : t -> unit

(** Aggregate many per-run sinks: counters and gauges become
    sum/mean/min/max/runs distributions; timers sum totals and counts. *)
val aggregate_json : t list -> string

(** Install (or clear) the process-global collector that [submit] feeds. *)
val set_collector : (t -> unit) option -> unit

(** Whether a collector is installed. *)
val collecting : unit -> bool

(** Hand a finished run's sink to the collector; no-op without one. Safe
    from any domain. *)
val submit : t -> unit

(** [collect_runs f] installs a list-accumulating collector around [f];
    returns [f ()]'s result and the sinks submitted during it, in
    submission order. Clears the collector afterwards (also on raise). *)
val collect_runs : (unit -> 'a) -> 'a * t list

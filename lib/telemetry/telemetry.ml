(* Lightweight observability for simulator runs: named counters, float
   gauges, log-bucketed integer histograms, accumulating wall-clock timers
   and a bounded span trace, emitted as structured JSON (per run, or
   aggregated over a sweep).

   A sink belongs to exactly one run (one [Machine.t]); it is mutated from a
   single domain, so none of the per-sink operations lock. The only shared
   state is the optional process-global collector, which is mutex-protected
   so parallel sweep workers can submit their sinks concurrently. *)

type timer = {
  mutable total_s : float;
  mutable count : int;
  mutable max_s : float;
}

type span = { sp_name : string; sp_depth : int; sp_start_s : float; sp_dur_s : float }

(* Log-bucketed histogram of non-negative integer observations. Bucket 0
   holds values <= 0; bucket i >= 1 holds [2^(i-1), 2^i - 1], so 63 buckets
   cover every OCaml int up to [max_int] (2^62 - 1 lands in bucket 62). *)
let hist_bucket_count = 63

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;
}

type t = {
  mutable label : string;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
  mutable trace : span list;  (* newest first, bounded *)
  mutable trace_len : int;
  mutable trace_dropped : int;  (* spans past the bound, silently elided *)
  mutable depth : int;
  created_s : float;
}

let trace_limit = 64

let now () = Unix.gettimeofday ()

let create ?(label = "") () =
  {
    label;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 8;
    timers = Hashtbl.create 8;
    trace = [];
    trace_len = 0;
    trace_dropped = 0;
    depth = 0;
    created_s = now ();
  }

let set_label t label = t.label <- label
let label t = t.label

let count t name n =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t.counters name (ref n)

let incr t name = count t name 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

(* Pre-resolved counter handle for per-event hot paths (NT-Path spawn and
   termination accounting): the name is hashed at most once, on the first
   add. Resolution is lazy so a handle that is never added through leaves
   the sink's exported counter set untouched — exactly the semantics of
   calling {!count} on demand. *)
type counter_handle = {
  ch_t : t;
  ch_name : string;
  mutable ch_cell : int ref option;
}

let counter_handle t name = { ch_t = t; ch_name = name; ch_cell = None }

let counter_add ch n =
  match ch.ch_cell with
  | Some r -> r := !r + n
  | None ->
    (match Hashtbl.find_opt ch.ch_t.counters ch.ch_name with
     | Some r ->
       r := !r + n;
       ch.ch_cell <- Some r
     | None ->
       let r = ref n in
       Hashtbl.replace ch.ch_t.counters ch.ch_name r;
       ch.ch_cell <- Some r)

let counter_incr ch = counter_add ch 1

let gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some r -> Some !r | None -> None

(* ---- Histograms --------------------------------------------------------- *)

let hist_bucket_index v =
  if v <= 0 then 0
  else begin
    (* 1 + floor(log2 v): the number of significant bits of v. *)
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    bits v 0
  end

let hist_bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)

(* Resolve (or create) the named histogram once; hot loops hold the handle
   and pay only the bucket increment per observation, not a name lookup. *)
let hist t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h =
      {
        h_count = 0;
        h_sum = 0;
        h_min = max_int;
        h_max = min_int;
        h_buckets = Array.make hist_bucket_count 0;
      }
    in
    Hashtbl.replace t.hists name h;
    h

let hist_observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = hist_bucket_index v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1

let observe t name v = hist_observe (hist t name) v

let hist_count t name =
  match Hashtbl.find_opt t.hists name with Some h -> h.h_count | None -> 0

let hist_buckets t name =
  match Hashtbl.find_opt t.hists name with
  | None -> []
  | Some h ->
    let acc = ref [] in
    for i = hist_bucket_count - 1 downto 0 do
      if h.h_buckets.(i) > 0 then
        acc := (hist_bucket_lo i, h.h_buckets.(i)) :: !acc
    done;
    !acc

let timer_record t name dur =
  let tm =
    match Hashtbl.find_opt t.timers name with
    | Some tm -> tm
    | None ->
      let tm = { total_s = 0.0; count = 0; max_s = 0.0 } in
      Hashtbl.replace t.timers name tm;
      tm
  in
  tm.total_s <- tm.total_s +. dur;
  tm.count <- tm.count + 1;
  if dur > tm.max_s then tm.max_s <- dur

let push_span t name start dur =
  if t.trace_len < trace_limit then begin
    t.trace <-
      {
        sp_name = name;
        sp_depth = t.depth;
        sp_start_s = start -. t.created_s;
        sp_dur_s = dur;
      }
      :: t.trace;
    t.trace_len <- t.trace_len + 1
  end
  else t.trace_dropped <- t.trace_dropped + 1

(* Time [f], accumulating under timer [name] and recording a trace span.
   Nested [span] calls record their depth, giving a poor man's trace tree. *)
let span t name f =
  let start = now () in
  t.depth <- t.depth + 1;
  let finish () =
    t.depth <- t.depth - 1;
    let dur = now () -. start in
    timer_record t name dur;
    push_span t name start dur
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let timer_total t name =
  match Hashtbl.find_opt t.timers name with Some tm -> tm.total_s | None -> 0.0

let trace_dropped t = t.trace_dropped

(* ---- JSON emission (via Jsonu; keys sorted so output is stable) --------- *)

let jstr = Jsonu.jstr
let jfloat = Jsonu.jfloat
let jobj = Jsonu.jobj

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters_json t =
  jobj (List.map (fun (k, r) -> (k, string_of_int !r)) (sorted_bindings t.counters))

let gauges_json t =
  jobj (List.map (fun (k, r) -> (k, jfloat !r)) (sorted_bindings t.gauges))

let hist_json h =
  let buckets = ref [] in
  for i = hist_bucket_count - 1 downto 0 do
    if h.h_buckets.(i) > 0 then
      buckets :=
        Printf.sprintf "[%d,%d]" (hist_bucket_lo i) h.h_buckets.(i) :: !buckets
  done;
  jobj
    [
      ("count", string_of_int h.h_count);
      ("sum", string_of_int h.h_sum);
      ("min", string_of_int (if h.h_count = 0 then 0 else h.h_min));
      ("max", string_of_int (if h.h_count = 0 then 0 else h.h_max));
      ("buckets", Jsonu.jarr !buckets);
    ]

(* Resolved-but-never-observed histograms (hot paths pre-resolve handles
   even for runs that spawn nothing) are elided, not serialized empty. *)
let hists_json t =
  jobj
    (List.filter_map
       (fun (k, h) -> if h.h_count > 0 then Some (k, hist_json h) else None)
       (sorted_bindings t.hists))

let timers_json t =
  jobj
    (List.map
       (fun (k, tm) ->
         ( k,
           jobj
             [
               ("total_s", jfloat tm.total_s);
               ("count", string_of_int tm.count);
               ("max_s", jfloat tm.max_s);
             ] ))
       (sorted_bindings t.timers))

let trace_json t =
  let spans = List.rev t.trace in
  Jsonu.jarr
    (List.map
       (fun sp ->
         jobj
           [
             ("name", jstr sp.sp_name);
             ("depth", string_of_int sp.sp_depth);
             ("start_s", jfloat sp.sp_start_s);
             ("dur_s", jfloat sp.sp_dur_s);
           ])
       spans)

let to_json t =
  jobj
    [
      ("label", jstr t.label);
      ("counters", counters_json t);
      ("gauges", gauges_json t);
      ("hists", hists_json t);
      ("timers", timers_json t);
      ("trace", trace_json t);
      ("trace_dropped", string_of_int t.trace_dropped);
    ]

(* ---- Prometheus text exposition (DESIGN.md §15) -------------------------- *)

(* Metric names: Prometheus allows [a-zA-Z_:][a-zA-Z0-9_:]*; every sink key
   maps through a "pexp_" prefix with non-conforming characters folded to
   '_'. The mapping can collide ("a.b" and "a-b"), in which case the two
   series merge under one name — acceptable for the dotted names this
   codebase uses, which never differ only by separator. *)
let prom_name name =
  let b = Buffer.create (String.length name + 8) in
  Buffer.add_string b "pexp_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prom_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* One run's metrics in the Prometheus text exposition format, deterministic
   (sorted names, fixed float formatting), labelled {run="<label>"} so a
   server can expose many runs side by side. Counters and gauges map
   directly; timers expose accumulated seconds and invocation counts;
   log-bucketed histograms become cumulative-bucket histogram series with
   upper bounds at the bucket range tops. The span trace is not exposed —
   it is a debugging artifact, not a metric. *)
let to_prometheus t =
  let b = Buffer.create 4096 in
  let run_label =
    if t.label = "" then "" else Printf.sprintf "{run=\"%s\"}" (prom_label_value t.label)
  in
  let series ?(labels = run_label) name typ value =
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ);
    Buffer.add_string b (Printf.sprintf "%s%s %s\n" name labels value)
  in
  List.iter
    (fun (k, r) -> series (prom_name k) "counter" (string_of_int !r))
    (sorted_bindings t.counters);
  List.iter
    (fun (k, r) -> series (prom_name k) "gauge" (jfloat !r))
    (sorted_bindings t.gauges);
  List.iter
    (fun (k, h) ->
      if h.h_count > 0 then begin
        let name = prom_name k in
        Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" name);
        let cum = ref 0 in
        for i = 0 to hist_bucket_count - 1 do
          if h.h_buckets.(i) > 0 then begin
            cum := !cum + h.h_buckets.(i);
            (* bucket i covers up to 2^i - 1 (bucket 0: values <= 0) *)
            let le = if i = 0 then 0 else (1 lsl i) - 1 in
            let labels =
              if t.label = "" then Printf.sprintf "{le=\"%d\"}" le
              else
                Printf.sprintf "{run=\"%s\",le=\"%d\"}"
                  (prom_label_value t.label) le
            in
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" name labels !cum)
          end
        done;
        let labels =
          if t.label = "" then "{le=\"+Inf\"}"
          else Printf.sprintf "{run=\"%s\",le=\"+Inf\"}" (prom_label_value t.label)
        in
        Buffer.add_string b
          (Printf.sprintf "%s_bucket%s %d\n" name labels h.h_count);
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %d\n" name run_label h.h_sum);
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" name run_label h.h_count)
      end)
    (sorted_bindings t.hists);
  List.iter
    (fun (k, tm) ->
      let name = prom_name k in
      series (name ^ "_seconds_total") "counter" (jfloat tm.total_s);
      series (name ^ "_invocations_total") "counter" (string_of_int tm.count))
    (sorted_bindings t.timers);
  Buffer.contents b

(* ---- Reset --------------------------------------------------------------- *)

(* Return the sink to its just-created state (label kept): the snapshot-
   isolation contract for reusing one sink across runs. Per-machine sinks
   are fresh by construction ([Machine.create] allocates one per machine),
   so this exists for callers that deliberately reuse a sink — and for the
   regression test pinning that counters never bleed across runs. *)
let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.hists;
  Hashtbl.reset t.timers;
  t.trace <- [];
  t.trace_len <- 0;
  t.trace_dropped <- 0;
  t.depth <- 0

(* ---- Aggregation over a sweep ------------------------------------------- *)

type dist = { sum : float; min_v : float; max_v : float; n : int }

let dist_add d v =
  match d with
  | None -> Some { sum = v; min_v = v; max_v = v; n = 1 }
  | Some d ->
    Some
      {
        sum = d.sum +. v;
        min_v = Float.min d.min_v v;
        max_v = Float.max d.max_v v;
        n = d.n + 1;
      }

let dist_json d =
  jobj
    [
      ("sum", jfloat d.sum);
      ("mean", jfloat (d.sum /. float_of_int d.n));
      ("min", jfloat d.min_v);
      ("max", jfloat d.max_v);
      ("runs", string_of_int d.n);
    ]

(* Aggregate many per-run sinks into one JSON object: counters and gauges
   become sum/mean/min/max distributions keyed by name; histograms merge
   bucket-wise; timers sum their totals and invocation counts. *)
let aggregate_json sinks =
  let cdists : (string, dist option ref) Hashtbl.t = Hashtbl.create 32 in
  let add tbl name v =
    match Hashtbl.find_opt tbl name with
    | Some r -> r := dist_add !r v
    | None -> Hashtbl.replace tbl name (ref (dist_add None v))
  in
  let gdists : (string, dist option ref) Hashtbl.t = Hashtbl.create 32 in
  let ttotals : (string, timer) Hashtbl.t = Hashtbl.create 8 in
  let htotals : (string, hist) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun t ->
      Hashtbl.iter (fun k r -> add cdists k (float_of_int !r)) t.counters;
      Hashtbl.iter (fun k r -> add gdists k !r) t.gauges;
      Hashtbl.iter
        (fun k h ->
          if h.h_count = 0 then ()  (* pre-resolved, never observed *)
          else
          let acc =
            match Hashtbl.find_opt htotals k with
            | Some acc -> acc
            | None ->
              let acc =
                {
                  h_count = 0;
                  h_sum = 0;
                  h_min = max_int;
                  h_max = min_int;
                  h_buckets = Array.make hist_bucket_count 0;
                }
              in
              Hashtbl.replace htotals k acc;
              acc
          in
          acc.h_count <- acc.h_count + h.h_count;
          acc.h_sum <- acc.h_sum + h.h_sum;
          if h.h_count > 0 then begin
            if h.h_min < acc.h_min then acc.h_min <- h.h_min;
            if h.h_max > acc.h_max then acc.h_max <- h.h_max
          end;
          Array.iteri
            (fun i n -> acc.h_buckets.(i) <- acc.h_buckets.(i) + n)
            h.h_buckets)
        t.hists;
      Hashtbl.iter
        (fun k tm ->
          let acc =
            match Hashtbl.find_opt ttotals k with
            | Some acc -> acc
            | None ->
              let acc = { total_s = 0.0; count = 0; max_s = 0.0 } in
              Hashtbl.replace ttotals k acc;
              acc
          in
          acc.total_s <- acc.total_s +. tm.total_s;
          acc.count <- acc.count + tm.count;
          if tm.max_s > acc.max_s then acc.max_s <- tm.max_s)
        t.timers)
    sinks;
  let dists_json tbl =
    jobj
      (List.filter_map
         (fun (k, r) -> Option.map (fun d -> (k, dist_json d)) !r)
         (sorted_bindings tbl))
  in
  jobj
    [
      ("runs", string_of_int (List.length sinks));
      ("counters", dists_json cdists);
      ("gauges", dists_json gdists);
      ( "hists",
        jobj
          (List.map (fun (k, h) -> (k, hist_json h)) (sorted_bindings htotals))
      );
      ( "timers",
        jobj
          (List.map
             (fun (k, tm) ->
               ( k,
                 jobj
                   [
                     ("total_s", jfloat tm.total_s);
                     ("count", string_of_int tm.count);
                     ("max_s", jfloat tm.max_s);
                   ] ))
             (sorted_bindings ttotals)) );
    ]

(* ---- Process-global collector ------------------------------------------- *)

let collector_mutex = Mutex.create ()
let collector : (t -> unit) option ref = ref None

let set_collector c =
  Mutex.lock collector_mutex;
  collector := c;
  Mutex.unlock collector_mutex

let collecting () =
  Mutex.lock collector_mutex;
  let r = !collector <> None in
  Mutex.unlock collector_mutex;
  r

(* Hand a finished run's sink to the installed collector (no-op without
   one). Safe to call from any domain. *)
let submit t =
  Mutex.lock collector_mutex;
  let c = !collector in
  Mutex.unlock collector_mutex;
  match c with None -> () | Some f -> f t

(* Install a list-accumulating collector around [f]; returns [f ()]'s value
   together with every sink submitted during it, in submission order. *)
let collect_runs f =
  let acc = ref [] in
  let acc_mutex = Mutex.create () in
  set_collector
    (Some
       (fun t ->
         Mutex.lock acc_mutex;
         acc := t :: !acc;
         Mutex.unlock acc_mutex));
  let finish () = set_collector None in
  match f () with
  | v ->
    finish ();
    (v, List.rev !acc)
  | exception e ->
    finish ();
    raise e

(* Lightweight observability for simulator runs: named counters, float
   gauges, accumulating wall-clock timers and a bounded span trace, emitted
   as structured JSON (per run, or aggregated over a sweep).

   A sink belongs to exactly one run (one [Machine.t]); it is mutated from a
   single domain, so none of the per-sink operations lock. The only shared
   state is the optional process-global collector, which is mutex-protected
   so parallel sweep workers can submit their sinks concurrently. *)

type timer = {
  mutable total_s : float;
  mutable count : int;
  mutable max_s : float;
}

type span = { sp_name : string; sp_depth : int; sp_start_s : float; sp_dur_s : float }

type t = {
  mutable label : string;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
  mutable trace : span list;  (* newest first, bounded *)
  mutable trace_len : int;
  mutable depth : int;
  created_s : float;
}

let trace_limit = 64

let now () = Unix.gettimeofday ()

let create ?(label = "") () =
  {
    label;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    timers = Hashtbl.create 8;
    trace = [];
    trace_len = 0;
    depth = 0;
    created_s = now ();
  }

let set_label t label = t.label <- label
let label t = t.label

let count t name n =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t.counters name (ref n)

let incr t name = count t name 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some r -> Some !r | None -> None

let timer_record t name dur =
  let tm =
    match Hashtbl.find_opt t.timers name with
    | Some tm -> tm
    | None ->
      let tm = { total_s = 0.0; count = 0; max_s = 0.0 } in
      Hashtbl.replace t.timers name tm;
      tm
  in
  tm.total_s <- tm.total_s +. dur;
  tm.count <- tm.count + 1;
  if dur > tm.max_s then tm.max_s <- dur

let push_span t name start dur =
  if t.trace_len < trace_limit then begin
    t.trace <-
      {
        sp_name = name;
        sp_depth = t.depth;
        sp_start_s = start -. t.created_s;
        sp_dur_s = dur;
      }
      :: t.trace;
    t.trace_len <- t.trace_len + 1
  end

(* Time [f], accumulating under timer [name] and recording a trace span.
   Nested [span] calls record their depth, giving a poor man's trace tree. *)
let span t name f =
  let start = now () in
  t.depth <- t.depth + 1;
  let finish () =
    t.depth <- t.depth - 1;
    let dur = now () -. start in
    timer_record t name dur;
    push_span t name start dur
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let timer_total t name =
  match Hashtbl.find_opt t.timers name with Some tm -> tm.total_s | None -> 0.0

(* ---- JSON emission (hand-rolled; keys sorted so output is stable) ------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ json_escape s ^ "\""

let jfloat x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.6g" x

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters_json t =
  jobj (List.map (fun (k, r) -> (k, string_of_int !r)) (sorted_bindings t.counters))

let gauges_json t =
  jobj (List.map (fun (k, r) -> (k, jfloat !r)) (sorted_bindings t.gauges))

let timers_json t =
  jobj
    (List.map
       (fun (k, tm) ->
         ( k,
           jobj
             [
               ("total_s", jfloat tm.total_s);
               ("count", string_of_int tm.count);
               ("max_s", jfloat tm.max_s);
             ] ))
       (sorted_bindings t.timers))

let trace_json t =
  let spans = List.rev t.trace in
  "["
  ^ String.concat ","
      (List.map
         (fun sp ->
           jobj
             [
               ("name", jstr sp.sp_name);
               ("depth", string_of_int sp.sp_depth);
               ("start_s", jfloat sp.sp_start_s);
               ("dur_s", jfloat sp.sp_dur_s);
             ])
         spans)
  ^ "]"

let to_json t =
  jobj
    [
      ("label", jstr t.label);
      ("counters", counters_json t);
      ("gauges", gauges_json t);
      ("timers", timers_json t);
      ("trace", trace_json t);
    ]

(* ---- Aggregation over a sweep ------------------------------------------- *)

type dist = { sum : float; min_v : float; max_v : float; n : int }

let dist_add d v =
  match d with
  | None -> Some { sum = v; min_v = v; max_v = v; n = 1 }
  | Some d ->
    Some
      {
        sum = d.sum +. v;
        min_v = Float.min d.min_v v;
        max_v = Float.max d.max_v v;
        n = d.n + 1;
      }

let dist_json d =
  jobj
    [
      ("sum", jfloat d.sum);
      ("mean", jfloat (d.sum /. float_of_int d.n));
      ("min", jfloat d.min_v);
      ("max", jfloat d.max_v);
      ("runs", string_of_int d.n);
    ]

(* Aggregate many per-run sinks into one JSON object: counters and gauges
   become sum/mean/min/max distributions keyed by name; timers sum their
   totals and invocation counts. *)
let aggregate_json sinks =
  let cdists : (string, dist option ref) Hashtbl.t = Hashtbl.create 32 in
  let add tbl name v =
    match Hashtbl.find_opt tbl name with
    | Some r -> r := dist_add !r v
    | None -> Hashtbl.replace tbl name (ref (dist_add None v))
  in
  let gdists : (string, dist option ref) Hashtbl.t = Hashtbl.create 32 in
  let ttotals : (string, timer) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun t ->
      Hashtbl.iter (fun k r -> add cdists k (float_of_int !r)) t.counters;
      Hashtbl.iter (fun k r -> add gdists k !r) t.gauges;
      Hashtbl.iter
        (fun k tm ->
          let acc =
            match Hashtbl.find_opt ttotals k with
            | Some acc -> acc
            | None ->
              let acc = { total_s = 0.0; count = 0; max_s = 0.0 } in
              Hashtbl.replace ttotals k acc;
              acc
          in
          acc.total_s <- acc.total_s +. tm.total_s;
          acc.count <- acc.count + tm.count;
          if tm.max_s > acc.max_s then acc.max_s <- tm.max_s)
        t.timers)
    sinks;
  let dists_json tbl =
    jobj
      (List.filter_map
         (fun (k, r) -> Option.map (fun d -> (k, dist_json d)) !r)
         (sorted_bindings tbl))
  in
  jobj
    [
      ("runs", string_of_int (List.length sinks));
      ("counters", dists_json cdists);
      ("gauges", dists_json gdists);
      ( "timers",
        jobj
          (List.map
             (fun (k, tm) ->
               ( k,
                 jobj
                   [
                     ("total_s", jfloat tm.total_s);
                     ("count", string_of_int tm.count);
                     ("max_s", jfloat tm.max_s);
                   ] ))
             (sorted_bindings ttotals)) );
    ]

(* ---- Process-global collector ------------------------------------------- *)

let collector_mutex = Mutex.create ()
let collector : (t -> unit) option ref = ref None

let set_collector c =
  Mutex.lock collector_mutex;
  collector := c;
  Mutex.unlock collector_mutex

let collecting () =
  Mutex.lock collector_mutex;
  let r = !collector <> None in
  Mutex.unlock collector_mutex;
  r

(* Hand a finished run's sink to the installed collector (no-op without
   one). Safe to call from any domain. *)
let submit t =
  Mutex.lock collector_mutex;
  let c = !collector in
  Mutex.unlock collector_mutex;
  match c with None -> () | Some f -> f t

(* Install a list-accumulating collector around [f]; returns [f ()]'s value
   together with every sink submitted during it, in submission order. *)
let collect_runs f =
  let acc = ref [] in
  let acc_mutex = Mutex.create () in
  set_collector
    (Some
       (fun t ->
         Mutex.lock acc_mutex;
         acc := t :: !acc;
         Mutex.unlock acc_mutex));
  let finish () = set_collector None in
  match f () with
  | v ->
    finish ();
    (v, List.rev !acc)
  | exception e ->
    finish ();
    raise e

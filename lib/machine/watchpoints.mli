(** iWatcher-style hardware watchpoint unit.

    Detectors register address ranges (red zones, freed blocks); the CPU
    consults the unit on every data access and files a report for each range
    that contains the address. Changes made during an NT-Path are journaled
    so the sandbox can undo them on squash. *)

type t

(** Which accesses trigger a range (real iWatcher distinguishes read and
    write monitoring). *)
type mode = Watch_read | Watch_write | Watch_both

(** Opaque undo token for one mutation. *)
type journal_entry

val create : unit -> t

(** Watch [\[lo, hi)], firing report site [site] on access; [mode] defaults
    to {!Watch_both}. *)
val watch : ?mode:mode -> t -> lo:int -> hi:int -> site:int -> journal_entry

(** Remove every range fully inside [\[lo, hi)]. *)
val unwatch : t -> lo:int -> hi:int -> journal_entry

(** Sites of all ranges containing [addr] that match this access kind
    (increments the trigger count). *)
val hit_sites : t -> is_write:bool -> int -> int list

val is_watched : t -> int -> bool

(** Undo one journaled mutation (NT-Path squash). *)
val undo : t -> journal_entry -> unit

val count : t -> int

(** [count t = 0], without walking the range list — for per-iteration
    checks. *)
val is_empty : t -> bool
val triggers : t -> int
val clear : t -> unit

(** The instruction interpreter.

    [step] executes exactly one instruction in a context and returns the
    event the surrounding engine must act on. PathExpander logic (BTB
    updates, NT-Path spawning, termination) lives entirely outside this
    module, so the same interpreter serves the baseline run, the taken path,
    NT-Paths, and the software-PathExpander implementation. *)

type fault =
  | Mem_fault of Memory.fault
  | Div_by_zero
  | Bad_pc of int
  | Sandbox_overflow
      (** an [Ev_overflow] reached a context that has no sandbox — provably
          unreachable (only sandboxed writes can overflow); kept as a
          graceful fault so a broken invariant degrades instead of crashing *)

type event =
  | Ev_normal
  | Ev_branch
      (** the branch was resolved and the pc already follows its direction;
          the branch's pc, direction and taken-target are in the context's
          [br_pc]/[br_taken]/[br_target] scratch fields (fallthrough is
          [br_pc + 1]) — a payload-free constructor keeps the hottest event
          allocation-free *)
  | Ev_syscall of Insn.sys
      (** only returned from a sandboxed context, *before* executing the
          syscall: the unsafe event that squashes an NT-Path *)
  | Ev_exit of int
  | Ev_halt
  | Ev_fault of fault
      (** the instruction faulted; in an NT-Path the engine squashes and the
          exception is never delivered *)
  | Ev_overflow
      (** a sandboxed write exceeded the L1's buffering capacity *)

val fault_to_string : fault -> string

val step : Machine.t -> Context.t -> event

type run_outcome = {
  outcome : [ `Halted | `Exited of int | `Faulted of fault | `Fuel_exhausted ];
  insns : int;
  cycles : int;
}

(** Run to completion with no PathExpander: the baseline monitored run. *)
val run_baseline : ?fuel:int -> Machine.t -> run_outcome

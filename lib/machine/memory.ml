type t = {
  words : int array;
  globals_end : int;
  heap_base : int;
  heap_end : int;
  stack_limit : int;
  stack_base : int;
  mutable heap_hi : int;
  mutable stack_lo : int;
  mutable released : bool;
}

type fault = Null_access | Out_of_range of int

exception Fault of fault

let null_guard = Program.null_guard_words

(* Address-space pool. A default machine's memory is a ~1.3M-word array;
   allocating and zeroing one per simulated run dominates run setup for the
   short microbenchmark programs. Released arrays are re-zeroed only over
   the two write watermarks — [0, heap_hi] below [stack_limit] and
   [stack_lo, stack_base) above — which for these workloads is a few
   thousand words, then parked here keyed by total size. Arrays in the pool
   are always all-zero, so a pooled take is indistinguishable from a fresh
   [Array.make]. The mutex keeps the pool safe under parallel sweep
   domains. *)
let pool : (int, int array list ref) Hashtbl.t = Hashtbl.create 8
let pool_mutex = Mutex.create ()

let pool_take size =
  Mutex.lock pool_mutex;
  let taken =
    match Hashtbl.find_opt pool size with
    | Some ({ contents = arr :: rest } as cell) ->
      cell := rest;
      Some arr
    | _ -> None
  in
  Mutex.unlock pool_mutex;
  taken

let pool_put size arr =
  Mutex.lock pool_mutex;
  (match Hashtbl.find_opt pool size with
  | Some cell -> cell := arr :: !cell
  | None -> Hashtbl.add pool size (ref [ arr ]));
  Mutex.unlock pool_mutex

let create ~globals_words ~heap_words ~stack_words =
  let globals_end = null_guard + globals_words in
  let heap_base = globals_end in
  let heap_end = heap_base + heap_words in
  let stack_limit = heap_end in
  let stack_base = stack_limit + stack_words in
  let words =
    match pool_take stack_base with
    | Some arr -> arr
    | None -> Array.make stack_base 0
  in
  {
    words;
    globals_end;
    heap_base;
    heap_end;
    stack_limit;
    stack_base;
    heap_hi = -1;
    stack_lo = stack_base;
    released = false;
  }

let release mem =
  if not mem.released then begin
    mem.released <- true;
    if mem.heap_hi >= 0 then Array.fill mem.words 0 (mem.heap_hi + 1) 0;
    if mem.stack_lo < mem.stack_base then
      Array.fill mem.words mem.stack_lo (mem.stack_base - mem.stack_lo) 0;
    mem.heap_hi <- -1;
    mem.stack_lo <- mem.stack_base;
    pool_put mem.stack_base mem.words
  end

let size mem = Array.length mem.words

let check mem addr =
  if addr >= 0 && addr < null_guard then raise (Fault Null_access)
  else if addr < 0 || addr >= Array.length mem.words then
    raise (Fault (Out_of_range addr))

let read mem addr =
  check mem addr;
  Array.unsafe_get mem.words addr

let[@inline always] write_valid mem addr value =
  Array.unsafe_set mem.words addr value;
  if addr < mem.stack_limit then begin
    if addr > mem.heap_hi then mem.heap_hi <- addr
  end
  else if addr < mem.stack_lo then mem.stack_lo <- addr

let write mem addr value =
  check mem addr;
  write_valid mem addr value

let is_valid mem addr = addr >= null_guard && addr < Array.length mem.words

let fault_to_string = function
  | Null_access -> "null access"
  | Out_of_range addr -> Printf.sprintf "out-of-range access at %d" addr

let load_init mem init_data = List.iter (fun (a, v) -> write mem a v) init_data

(* Set-associative LRU cache used for timing. Lines carry the owner path-ID
   version tag from the paper (0 = committed data; the standard
   configuration's 1-bit Vtag is the special case of IDs {0,1}).

   Line state is struct-of-arrays: four flat arrays indexed by
   [set * assoc + way] instead of one record per line. A 1 MB L2 has 32k
   lines — as records that is 32k heap blocks allocated per machine and a
   pointer chase per probe; as flat arrays it is four allocations and
   contiguous scans.

   Squash and commit are O(lines the path touched), not O(cache): every
   ownership acquisition journals the line index under its owner (the
   hardware analogue is the gang-clear circuitry of Section 4.3, which
   flash-clears the matching version tags in a handful of cycles — a
   full-array sweep in the simulator charged that cost once per spawn). A
   per-owner valid-line count keeps [owned_lines] O(1). The full-sweep
   implementations survive in {!Reference} as the oracle for property
   tests. *)

(* Owner version tags are 8-bit in the paper (ids 1..255, 0 = committed);
   the journal and counts track exactly that range, and any out-of-range
   owner falls back to the reference sweep. *)
let tracked_owners = 256

type t = {
  tags : int array;  (* per line: cached line address *)
  valid : Bytes.t;  (* per line: '\001' when valid *)
  owners : int array;  (* per line: version tag *)
  lrus : int array;  (* per line: last-touch clock *)
  nsets : int;
  assoc : int;
  words_per_line : int;
  line_shift : int;  (* log2 words_per_line, or -1 when not a power of two *)
  set_mask : int;  (* nsets - 1 when a power of two, or -1 *)
  owner_journal : int Vec.t array;  (* per owner: lines that took its tag *)
  owner_count : int array;  (* per owner: valid lines currently tagged *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable recorder : Recorder.t;
      (* the owning machine's flight recorder (the disabled singleton until
         attached): squash/commit of an owner's lines emit lifecycle events *)
}

let committed_owner = 0

let log2_pow2 n =
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  if n > 0 && n land (n - 1) = 0 then go n 0 else -1

let create ~size_kb ~assoc ~line_bytes =
  let lines = size_kb * 1024 / line_bytes in
  if lines mod assoc <> 0 then invalid_arg "Cache.create: geometry";
  let nsets = lines / assoc in
  let words_per_line = line_bytes / Machine_config.word_bytes in
  {
    tags = Array.make lines 0;
    valid = Bytes.make lines '\000';
    owners = Array.make lines committed_owner;
    lrus = Array.make lines 0;
    nsets;
    assoc;
    words_per_line;
    line_shift = log2_pow2 words_per_line;
    set_mask = (if log2_pow2 nsets >= 0 then nsets - 1 else -1);
    owner_journal = Array.init tracked_owners (fun _ -> Vec.create ~dummy:0);
    owner_count = Array.make tracked_owners 0;
    clock = 0;
    hits = 0;
    misses = 0;
    recorder = Recorder.disabled;
  }

let set_recorder cache recorder = cache.recorder <- recorder

let line_addr cache addr =
  if cache.line_shift >= 0 && addr >= 0 then addr lsr cache.line_shift
  else addr / cache.words_per_line

let set_index cache laddr =
  if cache.set_mask >= 0 && laddr >= 0 then laddr land cache.set_mask
  else
    let n = cache.nsets in
    ((laddr mod n) + n) mod n

let line_valid cache i = Bytes.unsafe_get cache.valid i = '\001'

let tracked owner = owner >= 0 && owner < tracked_owners

let count_incr cache owner =
  if tracked owner then
    cache.owner_count.(owner) <- cache.owner_count.(owner) + 1

let count_decr cache owner =
  if tracked owner then
    cache.owner_count.(owner) <- cache.owner_count.(owner) - 1

(* Journal line [i] under [owner]. Invariant: a valid line tagged with a
   tracked speculative owner is always present in that owner's journal (the
   journal may additionally hold stale entries — lines since evicted,
   invalidated or re-tagged — which walks skip by re-checking ownership). *)
let journal_acquire cache i owner =
  if tracked owner && owner <> committed_owner then
    Vec.push cache.owner_journal.(owner) i

type outcome = Hit | Miss

(* Access a word, filling on miss; returns hit/miss for latency accounting.
   [owner] tags the line on a fill or a write: an NT-Path that *loads* a new
   line or *stores* through one creates speculative data that must die with
   the path (the paper's volatile bit / version tag, Sections 4.2-4.3), so
   both take the path's id. A *read hit* leaves the line's tag alone — the
   path merely observed committed data, and retagging it would hand the
   committed line to the path's gang-invalidation at squash, destroying
   cached state the taken path still owns. *)
let access_line cache addr ~owner ~write ~allocate =
  cache.clock <- cache.clock + 1;
  let laddr = line_addr cache addr in
  let base = set_index cache laddr * cache.assoc in
  let limit = base + cache.assoc in
  let tags = cache.tags in
  let rec find i =
    if i >= limit then -1
    else if line_valid cache i && Array.unsafe_get tags i = laddr then i
    else find (i + 1)
  in
  let idx = find base in
  if idx >= 0 then begin
    Array.unsafe_set cache.lrus idx cache.clock;
    if write && cache.owners.(idx) <> owner then begin
      count_decr cache cache.owners.(idx);
      count_incr cache owner;
      cache.owners.(idx) <- owner;
      journal_acquire cache idx owner
    end;
    cache.hits <- cache.hits + 1;
    Hit
  end
  else begin
    if allocate then begin
      (* Victim: least-recently-used way, invalid ways first (and among
         invalid ways the first one found). *)
      let best = ref base in
      for i = base + 1 to limit - 1 do
        if line_valid cache !best then
          if not (line_valid cache i) then best := i
          else if
            Array.unsafe_get cache.lrus i < Array.unsafe_get cache.lrus !best
          then best := i
      done;
      let v = !best in
      if line_valid cache v then count_decr cache cache.owners.(v);
      let prev_owner = cache.owners.(v) in
      Bytes.unsafe_set cache.valid v '\001';
      cache.tags.(v) <- laddr;
      cache.lrus.(v) <- cache.clock;
      count_incr cache owner;
      if prev_owner <> owner then begin
        cache.owners.(v) <- owner;
        journal_acquire cache v owner
      end
    end;
    cache.misses <- cache.misses + 1;
    Miss
  end

let access ?(owner = committed_owner) ?(write = false) ?(allocate = true) cache
    addr =
  access_line cache addr ~owner ~write ~allocate

(* Full-array sweeps: the reference implementations the indexed operations
   must agree with. They keep the per-owner counts consistent, so mixing
   sweep and indexed calls on one cache stays sound (sweeps may leave stale
   journal entries behind; walks skip those by re-checking ownership). *)
let line_count cache = cache.nsets * cache.assoc

let sweep_gang_invalidate cache ~owner =
  let count = ref 0 in
  for i = 0 to line_count cache - 1 do
    if line_valid cache i && cache.owners.(i) = owner then begin
      Bytes.unsafe_set cache.valid i '\000';
      cache.owners.(i) <- committed_owner;
      count_decr cache owner;
      incr count
    end
  done;
  !count

let sweep_commit_owner cache ~owner =
  let count = ref 0 in
  for i = 0 to line_count cache - 1 do
    if line_valid cache i && cache.owners.(i) = owner then begin
      cache.owners.(i) <- committed_owner;
      count_decr cache owner;
      count_incr cache committed_owner;
      incr count
    end
  done;
  !count

let sweep_owned_lines cache ~owner =
  let count = ref 0 in
  for i = 0 to line_count cache - 1 do
    if line_valid cache i && cache.owners.(i) = owner then incr count
  done;
  !count

(* Gang-invalidate every line owned by [owner] (NT-Path squash): walk only
   the owner's journal. The paper performs this with custom circuitry in a
   handful of cycles; the cycle cost is charged separately as the squash
   overhead. *)
let gang_invalidate cache ~owner =
  let count =
    if tracked owner && owner <> committed_owner then begin
      let vec = cache.owner_journal.(owner) in
      let count = cache.owner_count.(owner) in
      Vec.iteri
        (fun _ i ->
          if line_valid cache i && cache.owners.(i) = owner then begin
            Bytes.unsafe_set cache.valid i '\000';
            cache.owners.(i) <- committed_owner
          end)
        vec;
      Vec.clear vec;
      cache.owner_count.(owner) <- 0;
      count
    end
    else sweep_gang_invalidate cache ~owner
  in
  (* Only squashes that released lines are trace-worthy: the defensive
     cleanup on path-id wrap gang-invalidates empty owners every spawn. *)
  if Recorder.enabled cache.recorder && count > 0 then
    Recorder.emit_squash cache.recorder ~owner ~lines:count;
  count

(* Lazily commit a path's lines: retag them as committed data. *)
let commit_owner cache ~owner =
  let count =
    if tracked owner && owner <> committed_owner then begin
      let vec = cache.owner_journal.(owner) in
      let count = cache.owner_count.(owner) in
      Vec.iteri
        (fun _ i ->
          if line_valid cache i && cache.owners.(i) = owner then begin
            cache.owners.(i) <- committed_owner;
            count_incr cache committed_owner
          end)
        vec;
      Vec.clear vec;
      cache.owner_count.(owner) <- 0;
      count
    end
    else sweep_commit_owner cache ~owner
  in
  if Recorder.enabled cache.recorder && count > 0 then
    Recorder.emit_commit cache.recorder ~owner ~lines:count;
  count

let owned_lines cache ~owner =
  if tracked owner then cache.owner_count.(owner)
  else sweep_owned_lines cache ~owner

module Reference = struct
  let gang_invalidate = sweep_gang_invalidate
  let commit_owner = sweep_commit_owner
  let owned_lines = sweep_owned_lines
end

let snapshot cache =
  Array.init (line_count cache) (fun i ->
      (cache.tags.(i), line_valid cache i, cache.owners.(i), cache.lrus.(i)))

let hits cache = cache.hits
let misses cache = cache.misses

let valid_lines cache =
  let count = ref 0 in
  for i = 0 to line_count cache - 1 do
    if line_valid cache i then incr count
  done;
  !count

(* Report this cache's access statistics and occupancy into a telemetry
   sink, under [prefix] (e.g. "l1.primary", "l2"). *)
let record_telemetry cache sink ~prefix =
  Telemetry.count sink (prefix ^ ".hits") cache.hits;
  Telemetry.count sink (prefix ^ ".misses") cache.misses;
  let total = cache.hits + cache.misses in
  if total > 0 then
    Telemetry.gauge sink (prefix ^ ".hit_rate")
      (float_of_int cache.hits /. float_of_int total);
  Telemetry.gauge sink (prefix ^ ".occupancy")
    (float_of_int (valid_lines cache) /. float_of_int (line_count cache))

let reset_stats cache =
  cache.hits <- 0;
  cache.misses <- 0

let clear cache =
  Bytes.fill cache.valid 0 (line_count cache) '\000';
  Array.fill cache.owners 0 (line_count cache) committed_owner;
  Array.iter Vec.clear cache.owner_journal;
  Array.fill cache.owner_count 0 tracked_owners 0;
  reset_stats cache

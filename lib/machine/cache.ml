(* Set-associative LRU cache used for timing. Lines carry the owner path-ID
   version tag from the paper (0 = committed data; the standard
   configuration's 1-bit Vtag is the special case of IDs {0,1}). *)

type line = {
  mutable tag : int;
  mutable valid : bool;
  mutable owner : int;
  mutable lru : int;
}

type t = {
  sets : line array array;
  words_per_line : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let committed_owner = 0

let create ~size_kb ~assoc ~line_bytes =
  let lines = size_kb * 1024 / line_bytes in
  if lines mod assoc <> 0 then invalid_arg "Cache.create: geometry";
  let nsets = lines / assoc in
  let make_line () = { tag = 0; valid = false; owner = committed_owner; lru = 0 } in
  {
    sets = Array.init nsets (fun _ -> Array.init assoc (fun _ -> make_line ()));
    words_per_line = line_bytes / Machine_config.word_bytes;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let line_addr cache addr = addr / cache.words_per_line

let set_of cache laddr =
  let n = Array.length cache.sets in
  cache.sets.(((laddr mod n) + n) mod n)

let find_line cache laddr =
  let set = set_of cache laddr in
  let n = Array.length set in
  let rec search i =
    if i >= n then None
    else
      let line = set.(i) in
      if line.valid && line.tag = laddr then Some line else search (i + 1)
  in
  search 0

(* Victim: least-recently-used slot, invalid slots first. *)
let victim cache laddr =
  let set = set_of cache laddr in
  let best = ref set.(0) in
  Array.iter
    (fun line ->
      if not line.valid then (if !best.valid then best := line)
      else if !best.valid && line.lru < !best.lru then best := line)
    set;
  !best

type outcome = Hit | Miss

(* Access a word, filling on miss; returns hit/miss for latency accounting.
   [owner] tags the line on a fill or a write: an NT-Path that *loads* a new
   line or *stores* through one creates speculative data that must die with
   the path (the paper's volatile bit / version tag, Sections 4.2-4.3), so
   both take the path's id. A *read hit* leaves the line's tag alone — the
   path merely observed committed data, and retagging it would hand the
   committed line to the path's gang-invalidation at squash, destroying
   cached state the taken path still owns. *)
let access ?(owner = committed_owner) ?(write = false) ?(allocate = true) cache
    addr =
  cache.clock <- cache.clock + 1;
  let laddr = line_addr cache addr in
  match find_line cache laddr with
  | Some line ->
    line.lru <- cache.clock;
    if write then line.owner <- owner;
    cache.hits <- cache.hits + 1;
    Hit
  | None ->
    if allocate then begin
      let line = victim cache laddr in
      line.valid <- true;
      line.tag <- laddr;
      line.owner <- owner;
      line.lru <- cache.clock
    end;
    cache.misses <- cache.misses + 1;
    Miss

(* Gang-invalidate every line owned by [owner] (NT-Path squash). The paper
   performs this with custom circuitry in a handful of cycles; the cycle cost
   is charged separately as the squash overhead. *)
let gang_invalidate cache ~owner =
  let count = ref 0 in
  Array.iter
    (fun set ->
      Array.iter
        (fun line ->
          if line.valid && line.owner = owner then begin
            line.valid <- false;
            line.owner <- committed_owner;
            incr count
          end)
        set)
    cache.sets;
  !count

(* Lazily commit a path's lines: retag them as committed data. *)
let commit_owner cache ~owner =
  let count = ref 0 in
  Array.iter
    (fun set ->
      Array.iter
        (fun line ->
          if line.valid && line.owner = owner then begin
            line.owner <- committed_owner;
            incr count
          end)
        set)
    cache.sets;
  !count

let owned_lines cache ~owner =
  let count = ref 0 in
  Array.iter
    (fun set ->
      Array.iter
        (fun line -> if line.valid && line.owner = owner then incr count)
        set)
    cache.sets;
  !count

let hits cache = cache.hits
let misses cache = cache.misses

let valid_lines cache =
  let count = ref 0 in
  Array.iter
    (fun set -> Array.iter (fun line -> if line.valid then incr count) set)
    cache.sets;
  !count

let line_count cache =
  Array.length cache.sets * Array.length cache.sets.(0)

(* Report this cache's access statistics and occupancy into a telemetry
   sink, under [prefix] (e.g. "l1.primary", "l2"). *)
let record_telemetry cache sink ~prefix =
  Telemetry.count sink (prefix ^ ".hits") cache.hits;
  Telemetry.count sink (prefix ^ ".misses") cache.misses;
  let total = cache.hits + cache.misses in
  if total > 0 then
    Telemetry.gauge sink (prefix ^ ".hit_rate")
      (float_of_int cache.hits /. float_of_int total);
  Telemetry.gauge sink (prefix ^ ".occupancy")
    (float_of_int (valid_lines cache) /. float_of_int (line_count cache))

let reset_stats cache =
  cache.hits <- 0;
  cache.misses <- 0

let clear cache =
  Array.iter
    (fun set ->
      Array.iter
        (fun line ->
          line.valid <- false;
          line.owner <- committed_owner)
        set)
    cache.sets;
  reset_stats cache

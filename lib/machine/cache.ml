(* Set-associative LRU cache used for timing. Lines carry the owner path-ID
   version tag from the paper (0 = committed data; the standard
   configuration's 1-bit Vtag is the special case of IDs {0,1}).

   Line state is struct-of-arrays: four flat arrays indexed by
   [set * assoc + way] instead of one record per line. A 1 MB L2 has 32k
   lines — as records that is 32k heap blocks allocated per machine and a
   pointer chase per probe; as flat arrays it is four allocations and
   contiguous scans.

   Squash and commit are O(lines the path touched), not O(cache): every
   ownership acquisition journals the line index under its owner (the
   hardware analogue is the gang-clear circuitry of Section 4.3, which
   flash-clears the matching version tags in a handful of cycles — a
   full-array sweep in the simulator charged that cost once per spawn). A
   per-owner valid-line count keeps [owned_lines] O(1). The full-sweep
   implementations survive in {!Reference} as the oracle for property
   tests. *)

(* Owner version tags are 8-bit in the paper (ids 1..255, 0 = committed);
   the journal and counts track exactly that range, and any out-of-range
   owner falls back to the reference sweep. *)
let tracked_owners = 256

(* The probe fast path (DESIGN.md §13) has two layers on top of the
   associative walk:

   - A two-entry *MRU line memo* (line address, set, line owner): the most
     recently touched line and the most recently touched line of one other
     set. A read of a memoized line — or a write whose owner already equals
     the line's tag — is a hit that would change *nothing* but the hit
     counter: the line is already MRU of its set (re-stamping it cannot
     reorder the set), no retag happens, no journal entry is due. Such
     accesses return after a couple of compares, skipping the clock tick and
     the LRU store entirely. Skipping ticks is sound because clock values
     are only ever *compared within a set* (victim selection): a line's
     stamp stays strictly above its set-mates' and below the clock, so the
     relative (observable) order is bit-for-bit what the unmemoized cache
     produces even though the absolute stamps differ. The two entries always
     name *different* sets, so each is the MRU of its set; the second entry
     is what keeps the memo alive across the stack-line / data-line
     alternation of typical inner loops.

   - A *direct-mapped tag filter*: one candidate way per set ([mru_way]),
     refreshed on every hit and fill (every LRU bump). A probe compares the
     candidate's tag first and only falls back to the associative walk when
     it misses. The filter is a verified hint — the probe re-checks tag and
     valid bit against the line arrays — so a stale candidate can cost a
     walk but never corrupt a lookup.

   The memo, unlike the filter, is trusted without re-validation, so every
   mutation that could invalidate or retag a memoized line outside
   [access_line] — gang-invalidate (squash, path-id-wrap cleanup), lazy
   commit, their [Reference] sweeps, [clear] — must kill it ([memo_kill]).
   Mutations *inside* [access_line] (fill, eviction, write-hit retag)
   refresh the memo as part of the access. *)

type t = {
  tags : int array;  (* per line: cached line address *)
  valid : Bytes.t;  (* per line: '\001' when valid *)
  owners : int array;  (* per line: version tag *)
  lrus : int array;  (* per line: last-touch clock *)
  nsets : int;
  assoc : int;
  words_per_line : int;
  line_shift : int;  (* log2 words_per_line, or -1 when not a power of two *)
  set_mask : int;  (* nsets - 1 when a power of two, or -1 *)
  owner_journal : int Vec.t array;  (* per owner: lines that took its tag *)
  owner_count : int array;  (* per owner: valid lines currently tagged *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  (* fast-path attribution (subsets of [hits]): memo-layer hits — including
     batched [memo_probe]+[add_hits] credits — and verified tag-filter hits *)
  mutable memo_hits : int;
  mutable filter_hits : int;
  mutable fastpath : bool;  (* memo + filter enabled (kill switch) *)
  (* MRU line memo, entry 0 newest. [memo_laddr*] is the line address or
     [min_int] (never a real line address) when dead; [memo_owner*] mirrors
     the line's current owner tag; [memo_set*] are distinct whenever both
     entries are live (dead sentinels -1/-2 preserve the invariant). *)
  mutable memo_laddr0 : int;
  mutable memo_set0 : int;
  mutable memo_owner0 : int;
  mutable memo_laddr1 : int;
  mutable memo_set1 : int;
  mutable memo_owner1 : int;
  mru_way : int array;  (* per set: candidate way of the last hit/fill *)
  mutable recorder : Recorder.t;
      (* the owning machine's flight recorder (the disabled singleton until
         attached): squash/commit of an owner's lines emit lifecycle events *)
}

let committed_owner = 0

(* Process-wide default for the probe fast path: every cache created while
   the switch is on carries memo + filter. [PEXP_CACHE_FASTPATH=0] is the
   environment kill switch (CI equivalence matrix); output is byte-identical
   either way. *)
let fastpath_default =
  Atomic.make
    (match Sys.getenv_opt "PEXP_CACHE_FASTPATH" with
     | Some "0" -> false
     | Some _ | None -> true)

let set_fastpath_enabled b = Atomic.set fastpath_default b
let fastpath_enabled () = Atomic.get fastpath_default

let log2_pow2 n =
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  if n > 0 && n land (n - 1) = 0 then go n 0 else -1

let create ~size_kb ~assoc ~line_bytes =
  let lines = size_kb * 1024 / line_bytes in
  if lines mod assoc <> 0 then invalid_arg "Cache.create: geometry";
  let nsets = lines / assoc in
  let words_per_line = line_bytes / Machine_config.word_bytes in
  {
    tags = Array.make lines 0;
    valid = Bytes.make lines '\000';
    owners = Array.make lines committed_owner;
    lrus = Array.make lines 0;
    nsets;
    assoc;
    words_per_line;
    line_shift = log2_pow2 words_per_line;
    set_mask = (if log2_pow2 nsets >= 0 then nsets - 1 else -1);
    owner_journal = Array.init tracked_owners (fun _ -> Vec.create ~dummy:0);
    owner_count = Array.make tracked_owners 0;
    clock = 0;
    hits = 0;
    misses = 0;
    memo_hits = 0;
    filter_hits = 0;
    fastpath = Atomic.get fastpath_default;
    memo_laddr0 = min_int;
    memo_set0 = -1;
    memo_owner0 = -1;
    memo_laddr1 = min_int;
    memo_set1 = -2;
    memo_owner1 = -1;
    mru_way = Array.make nsets 0;
    recorder = Recorder.disabled;
  }

let set_recorder cache recorder = cache.recorder <- recorder

(* Kill the MRU memo (both entries). Called by every mutation path that can
   invalidate or retag lines without going through [access_line]: squash
   (gang-invalidate, including the defensive path-id-wrap cleanup when it
   actually releases lines), lazy commit, the Reference sweeps, [clear], and
   the fast-path toggle. The filter needs no such care — it is re-verified
   on every probe. *)
let memo_kill cache =
  cache.memo_laddr0 <- min_int;
  cache.memo_set0 <- -1;
  cache.memo_owner0 <- -1;
  cache.memo_laddr1 <- min_int;
  cache.memo_set1 <- -2;
  cache.memo_owner1 <- -1

let set_fastpath cache b =
  cache.fastpath <- b;
  (* Entries noted while the switch was off (or stale ones from before it
     was turned off) must not be trusted on re-enable. *)
  memo_kill cache

(* Note line [laddr] of [set], now tagged [owner], as the most recent
   access. Entry 0 is the newest; entry 1 holds the previous newest *of a
   different set*. A same-set note overwrites entry 0 in place (the old
   entry-0 line is no longer its set's MRU); a different-set note shifts
   entry 0 down, which also disposes of any stale same-set entry 1. *)
let[@inline always] memo_note cache laddr set owner =
  if cache.memo_set0 <> set then begin
    cache.memo_laddr1 <- cache.memo_laddr0;
    cache.memo_set1 <- cache.memo_set0;
    cache.memo_owner1 <- cache.memo_owner0
  end;
  cache.memo_laddr0 <- laddr;
  cache.memo_set0 <- set;
  cache.memo_owner0 <- owner

let line_addr cache addr =
  if cache.line_shift >= 0 && addr >= 0 then addr lsr cache.line_shift
  else addr / cache.words_per_line

let set_index cache laddr =
  if cache.set_mask >= 0 && laddr >= 0 then laddr land cache.set_mask
  else
    let n = cache.nsets in
    ((laddr mod n) + n) mod n

let line_valid cache i = Bytes.unsafe_get cache.valid i = '\001'

let tracked owner = owner >= 0 && owner < tracked_owners

let count_incr cache owner =
  if tracked owner then
    cache.owner_count.(owner) <- cache.owner_count.(owner) + 1

let count_decr cache owner =
  if tracked owner then
    cache.owner_count.(owner) <- cache.owner_count.(owner) - 1

(* Journal line [i] under [owner]. Invariant: a valid line tagged with a
   tracked speculative owner is always present in that owner's journal (the
   journal may additionally hold stale entries — lines since evicted,
   invalidated or re-tagged — which walks skip by re-checking ownership). *)
let journal_acquire cache i owner =
  if tracked owner && owner <> committed_owner then
    Vec.push cache.owner_journal.(owner) i

type outcome = Hit | Miss

(* Associative walk of one set, hoisted to top level: an inner [let rec]
   would capture its locals and allocate a closure on every filter-miss
   access (no flambda). Returns the matching way's flat index, or -1. *)
let rec scan_set valid tags laddr limit i =
  if i >= limit then -1
  else if
    Bytes.unsafe_get valid i = '\001' && Array.unsafe_get tags i = laddr
  then i
  else scan_set valid tags laddr limit (i + 1)

(* LRU victim of one set (invalid ways first), same hoisting rationale;
   [best] travels as an argument instead of a heap [ref]. *)
let rec pick_victim valid lrus limit best i =
  if i >= limit then best
  else
    let best =
      if Bytes.unsafe_get valid best <> '\001' then best
      else if Bytes.unsafe_get valid i <> '\001' then i
      else if Array.unsafe_get lrus i < Array.unsafe_get lrus best then i
      else best
    in
    pick_victim valid lrus limit best (i + 1)

(* Access a word, filling on miss; returns hit/miss for latency accounting.
   [owner] tags the line on a fill or a write: an NT-Path that *loads* a new
   line or *stores* through one creates speculative data that must die with
   the path (the paper's volatile bit / version tag, Sections 4.2-4.3), so
   both take the path's id. A *read hit* leaves the line's tag alone — the
   path merely observed committed data, and retagging it would hand the
   committed line to the path's gang-invalidation at squash, destroying
   cached state the taken path still owns. *)
let access_line cache addr ~owner ~write ~allocate =
  let laddr = line_addr cache addr in
  (* Layer 1: the MRU line memo. A memoized read — or a write whose owner
     already matches the line's tag — is a hit whose only state transition
     is the hit counter: the line is MRU of its set (re-stamping it cannot
     reorder anything), and no retag or journal entry is due. Skipping the
     clock tick is sound because stamps are only compared within a set. *)
  if
    cache.fastpath
    && ((laddr = cache.memo_laddr0 && (not write || owner = cache.memo_owner0))
        || (laddr = cache.memo_laddr1 && (not write || owner = cache.memo_owner1))
       )
  then begin
    cache.hits <- cache.hits + 1;
    cache.memo_hits <- cache.memo_hits + 1;
    Hit
  end
  else begin
    cache.clock <- cache.clock + 1;
    let set = set_index cache laddr in
    let base = set * cache.assoc in
    let limit = base + cache.assoc in
    let tags = cache.tags in
    (* Layer 2: the direct-mapped tag filter — try the set's last hit/fill
       way before walking the set. The candidate is re-verified against the
       tag and valid arrays, so a stale hint is a wasted compare, never a
       wrong lookup. Fill-on-miss keeps tags unique per set, so a verified
       candidate is *the* matching way. *)
    let idx =
      let w = base + Array.unsafe_get cache.mru_way set in
      if Array.unsafe_get tags w = laddr && line_valid cache w then begin
        cache.filter_hits <- cache.filter_hits + 1;
        w
      end
      else scan_set cache.valid tags laddr limit base
    in
    (* Invariant for the unsafe accessors below: [0 <= set < nsets] and
       [base + assoc <= Array.length tags] — every per-line array has
       exactly [nsets * assoc] slots (create), [set_index] reduces into
       [0..nsets-1], and [idx]/victim indices stay within [base..limit-1]. *)
    if idx >= 0 then begin
      Array.unsafe_set cache.lrus idx cache.clock;
      let line_owner = Array.unsafe_get cache.owners idx in
      let line_owner =
        if write && line_owner <> owner then begin
          count_decr cache line_owner;
          count_incr cache owner;
          Array.unsafe_set cache.owners idx owner;
          journal_acquire cache idx owner;
          owner
        end
        else line_owner
      in
      cache.hits <- cache.hits + 1;
      Array.unsafe_set cache.mru_way set (idx - base);
      memo_note cache laddr set line_owner;
      Hit
    end
    else begin
      if allocate then begin
        (* Victim: least-recently-used way, invalid ways first (and among
           invalid ways the first one found). *)
        let v = pick_victim cache.valid cache.lrus limit base (base + 1) in
        let prev_owner = Array.unsafe_get cache.owners v in
        if line_valid cache v then count_decr cache prev_owner;
        Bytes.unsafe_set cache.valid v '\001';
        Array.unsafe_set tags v laddr;
        Array.unsafe_set cache.lrus v cache.clock;
        count_incr cache owner;
        if prev_owner <> owner then begin
          Array.unsafe_set cache.owners v owner;
          journal_acquire cache v owner
        end;
        Array.unsafe_set cache.mru_way set (v - base);
        memo_note cache laddr set owner
      end;
      cache.misses <- cache.misses + 1;
      Miss
    end
  end

(* Side-effect-free memo probe for the selective fast tier's batched
   latency accounting: [true] iff [access_line] would take the memo fast
   path (an L1 hit, zero stall cycles, no state change). The caller
   accumulates the implied hit counts in a register and flushes them once
   per segment with {!add_hits}. *)
let[@inline always] memo_probe cache addr ~owner ~write =
  cache.fastpath
  &&
  let laddr = line_addr cache addr in
  (laddr = cache.memo_laddr0 && (not write || owner = cache.memo_owner0))
  || (laddr = cache.memo_laddr1 && (not write || owner = cache.memo_owner1))

(* Batched memo-probe credits from the fast tier: every batched hit took
   (would have taken) the memo layer. *)
let add_hits cache n =
  cache.hits <- cache.hits + n;
  cache.memo_hits <- cache.memo_hits + n
let access ?(owner = committed_owner) ?(write = false) ?(allocate = true) cache
    addr =
  access_line cache addr ~owner ~write ~allocate

(* Full-array sweeps: the reference implementations the indexed operations
   must agree with. They keep the per-owner counts consistent, so mixing
   sweep and indexed calls on one cache stays sound (sweeps may leave stale
   journal entries behind; walks skip those by re-checking ownership). *)
let line_count cache = cache.nsets * cache.assoc

let sweep_gang_invalidate cache ~owner =
  let count = ref 0 in
  for i = 0 to line_count cache - 1 do
    if line_valid cache i && cache.owners.(i) = owner then begin
      Bytes.unsafe_set cache.valid i '\000';
      cache.owners.(i) <- committed_owner;
      count_decr cache owner;
      incr count
    end
  done;
  (* A memoized line may just have been invalidated; trusting the memo past
     this point would fast-hit a dead line. A zero-line squash (the
     defensive cleanup on path-id wrap runs one per spawn once ids recycle)
     changed nothing and keeps the memo warm. *)
  if !count > 0 then memo_kill cache;
  !count

let sweep_commit_owner cache ~owner =
  let count = ref 0 in
  for i = 0 to line_count cache - 1 do
    if line_valid cache i && cache.owners.(i) = owner then begin
      cache.owners.(i) <- committed_owner;
      count_decr cache owner;
      count_incr cache committed_owner;
      incr count
    end
  done;
  (* Retagging invalidates the memo's owner mirror: a same-owner write to a
     memoized line would otherwise skip the retag-and-journal the now
     committed line is due. *)
  if !count > 0 then memo_kill cache;
  !count

let sweep_owned_lines cache ~owner =
  let count = ref 0 in
  for i = 0 to line_count cache - 1 do
    if line_valid cache i && cache.owners.(i) = owner then incr count
  done;
  !count

(* Gang-invalidate every line owned by [owner] (NT-Path squash): walk only
   the owner's journal. The paper performs this with custom circuitry in a
   handful of cycles; the cycle cost is charged separately as the squash
   overhead. *)
let gang_invalidate cache ~owner =
  let count =
    if tracked owner && owner <> committed_owner then begin
      let vec = cache.owner_journal.(owner) in
      let count = cache.owner_count.(owner) in
      Vec.iteri
        (fun _ i ->
          if line_valid cache i && cache.owners.(i) = owner then begin
            Bytes.unsafe_set cache.valid i '\000';
            cache.owners.(i) <- committed_owner
          end)
        vec;
      Vec.clear vec;
      cache.owner_count.(owner) <- 0;
      (* Same hazard as the sweep: a squashed line may be memoized. *)
      if count > 0 then memo_kill cache;
      count
    end
    else sweep_gang_invalidate cache ~owner
  in
  (* Only squashes that released lines are trace-worthy: the defensive
     cleanup on path-id wrap gang-invalidates empty owners every spawn. *)
  if Recorder.enabled cache.recorder && count > 0 then
    Recorder.emit_squash cache.recorder ~owner ~lines:count;
  count

(* Lazily commit a path's lines: retag them as committed data. *)
let commit_owner cache ~owner =
  let count =
    if tracked owner && owner <> committed_owner then begin
      let vec = cache.owner_journal.(owner) in
      let count = cache.owner_count.(owner) in
      Vec.iteri
        (fun _ i ->
          if line_valid cache i && cache.owners.(i) = owner then begin
            cache.owners.(i) <- committed_owner;
            count_incr cache committed_owner
          end)
        vec;
      Vec.clear vec;
      cache.owner_count.(owner) <- 0;
      (* Same hazard as the sweep: the memo's owner mirror is now stale. *)
      if count > 0 then memo_kill cache;
      count
    end
    else sweep_commit_owner cache ~owner
  in
  if Recorder.enabled cache.recorder && count > 0 then
    Recorder.emit_commit cache.recorder ~owner ~lines:count;
  count

let owned_lines cache ~owner =
  if tracked owner then cache.owner_count.(owner)
  else sweep_owned_lines cache ~owner

module Reference = struct
  let gang_invalidate = sweep_gang_invalidate
  let commit_owner = sweep_commit_owner
  let owned_lines = sweep_owned_lines
end

let snapshot cache =
  Array.init (line_count cache) (fun i ->
      (cache.tags.(i), line_valid cache i, cache.owners.(i), cache.lrus.(i)))

(* Visible state with per-set LRU *ranks* in place of raw clock stamps: the
   memo fast path skips clock ticks, so a memoized cache and a plain one
   agree on tags, validity, owners and eviction order while their absolute
   stamps drift apart. Rank = how many valid set-mates were touched earlier;
   invalid lines rank -1 (their stale stamps are unobservable — victim
   selection takes the first invalid way by index). *)
let snapshot_canonical cache =
  Array.init (line_count cache) (fun i ->
      let rank =
        if not (line_valid cache i) then -1
        else begin
          let base = i - (i mod cache.assoc) in
          let r = ref 0 in
          for j = base to base + cache.assoc - 1 do
            if line_valid cache j && cache.lrus.(j) < cache.lrus.(i) then
              incr r
          done;
          !r
        end
      in
      (cache.tags.(i), line_valid cache i, cache.owners.(i), rank))

let hits cache = cache.hits
let misses cache = cache.misses
let memo_hits cache = cache.memo_hits
let filter_hits cache = cache.filter_hits

let valid_lines cache =
  let count = ref 0 in
  for i = 0 to line_count cache - 1 do
    if line_valid cache i then incr count
  done;
  !count

(* Report this cache's access statistics and occupancy into a telemetry
   sink, under [prefix] (e.g. "l1.primary", "l2"). *)
let record_telemetry cache sink ~prefix =
  Telemetry.count sink (prefix ^ ".hits") cache.hits;
  Telemetry.count sink (prefix ^ ".misses") cache.misses;
  Telemetry.count sink (prefix ^ ".memo_hits") cache.memo_hits;
  Telemetry.count sink (prefix ^ ".filter_hits") cache.filter_hits;
  let total = cache.hits + cache.misses in
  if total > 0 then begin
    Telemetry.gauge sink (prefix ^ ".hit_rate")
      (float_of_int cache.hits /. float_of_int total);
    Telemetry.gauge sink (prefix ^ ".memo_hit_rate")
      (float_of_int cache.memo_hits /. float_of_int total)
  end;
  Telemetry.gauge sink (prefix ^ ".occupancy")
    (float_of_int (valid_lines cache) /. float_of_int (line_count cache))

let reset_stats cache =
  cache.hits <- 0;
  cache.misses <- 0;
  cache.memo_hits <- 0;
  cache.filter_hits <- 0

let clear cache =
  Bytes.fill cache.valid 0 (line_count cache) '\000';
  Array.fill cache.owners 0 (line_count cache) committed_owner;
  Array.iter Vec.clear cache.owner_journal;
  Array.fill cache.owner_count 0 tracked_owners 0;
  memo_kill cache;
  Array.fill cache.mru_way 0 cache.nsets 0;
  reset_stats cache

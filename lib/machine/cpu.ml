type fault =
  | Mem_fault of Memory.fault
  | Div_by_zero
  | Bad_pc of int
  | Sandbox_overflow

(* [Ev_branch] carries no payload: the interpreter deposits the branch's pc,
   direction and taken-target in the context's [br_pc]/[br_taken]/[br_target]
   scratch fields (fallthrough is always [br_pc + 1]), so the per-branch
   event — by far the hottest non-trivial one — allocates nothing. *)
type event =
  | Ev_normal
  | Ev_branch
  | Ev_syscall of Insn.sys
  | Ev_exit of int
  | Ev_halt
  | Ev_fault of fault
  | Ev_overflow

let fault_to_string = function
  | Mem_fault f -> Memory.fault_to_string f
  | Div_by_zero -> "division by zero"
  | Bad_pc pc -> Printf.sprintf "bad pc %d" pc
  | Sandbox_overflow -> "sandbox overflow outside a sandbox"

exception Overflow

(* File a detector report with its path-origin provenance, and mirror it
   into the flight recorder (timestamped base + the reporting context's own
   cycles — sim time, so traces stay deterministic). *)
let file_report machine ctx site =
  let recorder = machine.Machine.recorder in
  let pc = ctx.Context.pc in
  match ctx.Context.sandbox with
  | Some sb ->
    let path_id = Context.sandbox_path_id sb in
    let spawn_site = Context.sandbox_spawn_pc sb in
    let edge = if Context.sandbox_spawn_edge sb then 1 else 0 in
    Report.file machine.Machine.reports ~site ~origin:(Report.Nt_path path_id)
      ~spawn_br_pc:spawn_site ~branch_edge:edge ~pc
      ~insn_index:machine.Machine.insn_index;
    if Recorder.enabled recorder then begin
      Recorder.set_local recorder ctx.Context.stats.Context.cycles;
      Recorder.emit_bug recorder ~site ~origin:path_id ~spawn_site ~edge ~pc
    end
  | None ->
    Report.file machine.Machine.reports ~site ~origin:Report.Taken_path ~pc
      ~insn_index:machine.Machine.insn_index;
    if Recorder.enabled recorder then begin
      Recorder.set_local recorder ctx.Context.stats.Context.cycles;
      Recorder.emit_bug recorder ~site ~origin:0 ~spawn_site:(-1) ~edge:(-1)
        ~pc
    end

let check_watch machine ctx ~is_write addr =
  if not (Watchpoints.is_empty machine.Machine.watch) then
    List.iter (file_report machine ctx)
      (Watchpoints.hit_sites machine.Machine.watch ~is_write addr)

let data_read machine ctx addr =
  (* validity first: a faulting access never reaches the cache or watch unit *)
  let mem = machine.Machine.mem in
  Memory.check mem addr;
  check_watch machine ctx ~is_write:false addr;
  let stats = ctx.Context.stats in
  stats.Context.loads <- stats.Context.loads + 1;
  (* one match covers owner, speculation and the read itself; the path id
     rides along so a sandboxed read *fill* takes speculative ownership (the
     line dies with the path, no prefetching for the taken path); a read
     *hit* never retags — see [Cache.access] *)
  match ctx.Context.sandbox with
  | None ->
    stats.Context.cycles <-
      stats.Context.cycles
      + Machine.access_latency machine ctx.Context.l1
          ~owner:Cache.committed_owner ~write:false ~speculative:false addr;
    (* checked above *)
    Array.unsafe_get mem.Memory.words addr
  | Some sb ->
    stats.Context.cycles <-
      stats.Context.cycles
      + Machine.access_latency machine ctx.Context.l1
          ~owner:(Context.sandbox_path_id sb) ~write:false ~speculative:true
          addr;
    Context.sandbox_read sb mem addr

(* Raises [Overflow] when a sandboxed path dirties more lines than L1 can
   buffer. *)
let data_write machine ctx addr value =
  let mem = machine.Machine.mem in
  Memory.check mem addr;
  check_watch machine ctx ~is_write:true addr;
  (match machine.Machine.store_hook with
   | Some hook -> hook ctx addr value
   | None -> ());
  let stats = ctx.Context.stats in
  stats.Context.stores <- stats.Context.stores + 1;
  match ctx.Context.sandbox with
  | None ->
    stats.Context.cycles <-
      stats.Context.cycles
      + Machine.access_latency machine ctx.Context.l1
          ~owner:Cache.committed_owner ~write:true ~speculative:false addr;
    Memory.write mem addr value
  | Some sb ->
    stats.Context.cycles <-
      stats.Context.cycles
      + Machine.access_latency machine ctx.Context.l1
          ~owner:(Context.sandbox_path_id sb) ~write:true ~speculative:true
          addr;
    if not (Context.sandbox_write sb mem addr value) then raise Overflow

let push machine ctx value =
  let sp = Context.get_reg ctx Reg.sp - 1 in
  Context.set_reg ctx Reg.sp sp;
  data_write machine ctx sp value

let pop machine ctx =
  let sp = Context.get_reg ctx Reg.sp in
  let v = data_read machine ctx sp in
  Context.set_reg ctx Reg.sp (sp + 1);
  v

let do_syscall machine ctx sys =
  let io = machine.Machine.io in
  match sys with
  | Insn.Sys_putc ->
    Io.putc io (Context.get_reg ctx (Reg.arg 0));
    Ev_normal
  | Insn.Sys_getc ->
    Context.set_reg ctx Reg.rv (Io.getc io);
    Ev_normal
  | Insn.Sys_print_int ->
    Io.print_int io (Context.get_reg ctx (Reg.arg 0));
    Ev_normal
  | Insn.Sys_exit ->
    let status = Context.get_reg ctx (Reg.arg 0) in
    Io.set_exit io status;
    Ev_exit status

(* Execute the instruction at [ctx.pc]; advances [ctx.pc], updates timing and
   returns the event the engine must dispatch on. For a sandboxed context, a
   syscall is reported *without* being executed (unsafe event: the engine
   squashes the path), and faults are reported rather than raised (the
   exception is swallowed by the hardware, as in the paper).

   Dispatch is over the machine's pre-decoded execution form ([Decode.t]),
   not raw [Insn.t]: register indices are plain ints, Div/Mod are split out
   so the ALU fast path neither faults nor allocates. Register reads go
   straight to the array — [Reg.zero]'s slot is never written (see
   [Context.set_reg] and the [rd <> 0] guards below), so it always reads 0. *)
let rec exec machine ctx pc d =
  let regs = ctx.Context.regs in
  match d with
      | Decode.D_alu (op, rd, rs, rt) ->
        if rd <> 0 then
          Array.unsafe_set regs rd
            (Decode.eval_alu op (Array.unsafe_get regs rs)
               (Array.unsafe_get regs rt));
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Decode.D_alui (op, rd, rs, imm) ->
        if rd <> 0 then
          Array.unsafe_set regs rd
            (Decode.eval_alu op (Array.unsafe_get regs rs) imm);
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Decode.D_div (rd, rs, rt) ->
        let b = Array.unsafe_get regs rt in
        if b = 0 then Ev_fault Div_by_zero
        else begin
          if rd <> 0 then Array.unsafe_set regs rd (Array.unsafe_get regs rs / b);
          ctx.Context.pc <- pc + 1;
          Ev_normal
        end
      | Decode.D_mod (rd, rs, rt) ->
        let b = Array.unsafe_get regs rt in
        if b = 0 then Ev_fault Div_by_zero
        else begin
          if rd <> 0 then
            Array.unsafe_set regs rd (Array.unsafe_get regs rs mod b);
          ctx.Context.pc <- pc + 1;
          Ev_normal
        end
      | Decode.D_divi (rd, rs, imm) ->
        if imm = 0 then Ev_fault Div_by_zero
        else begin
          if rd <> 0 then
            Array.unsafe_set regs rd (Array.unsafe_get regs rs / imm);
          ctx.Context.pc <- pc + 1;
          Ev_normal
        end
      | Decode.D_modi (rd, rs, imm) ->
        if imm = 0 then Ev_fault Div_by_zero
        else begin
          if rd <> 0 then
            Array.unsafe_set regs rd (Array.unsafe_get regs rs mod imm);
          ctx.Context.pc <- pc + 1;
          Ev_normal
        end
      | Decode.D_cmp (c, rd, rs, rt) ->
        if rd <> 0 then
          Array.unsafe_set regs rd
            (if
               Insn.eval_cmp c (Array.unsafe_get regs rs)
                 (Array.unsafe_get regs rt)
             then 1
             else 0);
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Decode.D_cmpi (c, rd, rs, imm) ->
        if rd <> 0 then
          Array.unsafe_set regs rd
            (if Insn.eval_cmp c (Array.unsafe_get regs rs) imm then 1 else 0);
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Decode.D_li (rd, imm) ->
        if rd <> 0 then Array.unsafe_set regs rd imm;
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Decode.D_mov (rd, rs) ->
        if rd <> 0 then Array.unsafe_set regs rd (Array.unsafe_get regs rs);
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Decode.D_load (rd, base, off) ->
        let addr = Array.unsafe_get regs base + off in
        let v = data_read machine ctx addr in
        if rd <> 0 then Array.unsafe_set regs rd v;
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Decode.D_store (rs, base, off) ->
        let addr = Array.unsafe_get regs base + off in
        data_write machine ctx addr (Array.unsafe_get regs rs);
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Decode.D_br (c, rs, rt, target) ->
        let stats = ctx.Context.stats in
        stats.Context.branches <- stats.Context.branches + 1;
        let taken =
          Insn.eval_cmp c (Array.unsafe_get regs rs) (Array.unsafe_get regs rt)
        in
        ctx.Context.pc <- (if taken then target else pc + 1);
        ctx.Context.br_pc <- pc;
        ctx.Context.br_taken <- taken;
        ctx.Context.br_target <- target;
        Ev_branch
      | Decode.D_jmp target ->
        ctx.Context.pc <- target;
        Ev_normal
      | Decode.D_call target ->
        push machine ctx (pc + 1);
        ctx.Context.pc <- target;
        Ev_normal
      | Decode.D_ret ->
        let ra = pop machine ctx in
        ctx.Context.pc <- ra;
        Ev_normal
      | Decode.D_push rs ->
        push machine ctx (Array.unsafe_get regs rs);
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Decode.D_pop rd ->
        let v = pop machine ctx in
        if rd <> 0 then Array.unsafe_set regs rd v;
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Decode.D_syscall sys ->
        if Context.is_sandboxed ctx then Ev_syscall sys
        else begin
          let ev = do_syscall machine ctx sys in
          ctx.Context.pc <- pc + 1;
          ev
        end
      | Decode.D_checkz (rs, site) ->
        if Array.unsafe_get regs rs = 0 then file_report machine ctx site;
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Decode.D_watch (lo, hi, site) ->
        let entry =
          Watchpoints.watch machine.Machine.watch
            ~lo:(Context.get_reg ctx lo) ~hi:(Context.get_reg ctx hi) ~site
        in
        (match ctx.Context.sandbox with
         | Some sb -> Context.journal_watch sb entry
         | None -> ());
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Decode.D_unwatch (lo, hi) ->
        let entry =
          Watchpoints.unwatch machine.Machine.watch
            ~lo:(Context.get_reg ctx lo) ~hi:(Context.get_reg ctx hi)
        in
        (match ctx.Context.sandbox with
         | Some sb -> Context.journal_watch sb entry
         | None -> ());
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Decode.D_pred inner ->
        if ctx.Context.pred then begin
          ctx.Context.in_pred_fix <- true;
          let ev = exec machine ctx pc inner in
          ctx.Context.in_pred_fix <- false;
          ev
        end
        else begin
          ctx.Context.pc <- pc + 1;
          Ev_normal
        end
      | Decode.D_clearpred ->
        ctx.Context.pred <- false;
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Decode.D_halt -> Ev_halt
  | Decode.D_nop ->
    ctx.Context.pc <- pc + 1;
    Ev_normal

let step machine ctx =
  let dcode = machine.Machine.dcode in
  let pc = ctx.Context.pc in
  if pc < 0 || pc >= Array.length dcode then Ev_fault (Bad_pc pc)
  else begin
    let stats = ctx.Context.stats in
    stats.Context.insns <- stats.Context.insns + 1;
    stats.Context.cycles <- stats.Context.cycles + 1;
    machine.Machine.insn_index <- machine.Machine.insn_index + 1;
    try exec machine ctx pc (Array.unsafe_get dcode pc) with
    | Memory.Fault f -> Ev_fault (Mem_fault f)
    | Overflow -> Ev_overflow
  end

type run_outcome = {
  outcome : [ `Halted | `Exited of int | `Faulted of fault | `Fuel_exhausted ];
  insns : int;
  cycles : int;
}

(* Run a program to completion with no PathExpander involvement: the baseline
   monitored run. *)
let run_baseline ?(fuel = 200_000_000) machine =
  let ctx = Machine.main_context machine in
  let rec loop () =
    if ctx.Context.stats.Context.insns >= fuel then `Fuel_exhausted
    else
      match step machine ctx with
      | Ev_normal | Ev_branch | Ev_syscall _ -> loop ()
      | Ev_exit status -> `Exited status
      | Ev_halt -> `Halted
      | Ev_fault f -> `Faulted f
      (* An unsandboxed context cannot buffer writes, so [data_write] never
         raises [Overflow] here (see the Ev_overflow-unreachable tests). If
         the invariant is ever broken, surface a fault instead of crashing
         the whole simulator. *)
      | Ev_overflow -> `Faulted Sandbox_overflow
  in
  let outcome = loop () in
  {
    outcome;
    insns = ctx.Context.stats.Context.insns;
    cycles = ctx.Context.stats.Context.cycles;
  }

type fault =
  | Mem_fault of Memory.fault
  | Div_by_zero
  | Bad_pc of int

type event =
  | Ev_normal
  | Ev_branch of { br_pc : int; taken : bool; target : int; fallthrough : int }
  | Ev_syscall of Insn.sys
  | Ev_exit of int
  | Ev_halt
  | Ev_fault of fault
  | Ev_overflow

let fault_to_string = function
  | Mem_fault f -> Memory.fault_to_string f
  | Div_by_zero -> "division by zero"
  | Bad_pc pc -> Printf.sprintf "bad pc %d" pc

exception Overflow

let file_report machine ctx site =
  let origin =
    match ctx.Context.sandbox with
    | Some _ -> Report.Nt_path (Context.path_id ctx)
    | None -> Report.Taken_path
  in
  Report.file machine.Machine.reports ~site ~origin ~pc:ctx.Context.pc
    ~insn_index:machine.Machine.insn_index

let check_watch machine ctx ~is_write addr =
  if Watchpoints.count machine.Machine.watch > 0 then
    List.iter (file_report machine ctx)
      (Watchpoints.hit_sites machine.Machine.watch ~is_write addr)

let data_read machine ctx addr =
  (* validity first: a faulting access never reaches the cache or watch unit *)
  Memory.check machine.Machine.mem addr;
  check_watch machine ctx ~is_write:false addr;
  let stats = ctx.Context.stats in
  stats.Context.loads <- stats.Context.loads + 1;
  (* the path id rides along so a sandboxed read *fill* takes speculative
     ownership (the line dies with the path, no prefetching for the taken
     path); a read *hit* never retags — see [Cache.access] *)
  stats.Context.cycles <-
    stats.Context.cycles
    + Machine.access_latency machine ctx.Context.l1
        ~owner:(Context.path_id ctx) ~write:false
        ~speculative:(Context.is_sandboxed ctx) addr;
  Context.read_mem ctx machine.Machine.mem addr

(* Raises [Overflow] when a sandboxed path dirties more lines than L1 can
   buffer. *)
let data_write machine ctx addr value =
  Memory.check machine.Machine.mem addr;
  check_watch machine ctx ~is_write:true addr;
  (match machine.Machine.store_hook with
   | Some hook -> hook ctx addr value
   | None -> ());
  let stats = ctx.Context.stats in
  stats.Context.stores <- stats.Context.stores + 1;
  stats.Context.cycles <-
    stats.Context.cycles
    + Machine.access_latency machine ctx.Context.l1
        ~owner:(Context.path_id ctx) ~write:true
        ~speculative:(Context.is_sandboxed ctx) addr;
  match ctx.Context.sandbox with
  | Some sb ->
    if not (Context.sandbox_write sb machine.Machine.mem addr value) then
      raise Overflow
  | None -> Memory.write machine.Machine.mem addr value

let push machine ctx value =
  let sp = Context.get_reg ctx Reg.sp - 1 in
  Context.set_reg ctx Reg.sp sp;
  data_write machine ctx sp value

let pop machine ctx =
  let sp = Context.get_reg ctx Reg.sp in
  let v = data_read machine ctx sp in
  Context.set_reg ctx Reg.sp (sp + 1);
  v

let do_syscall machine ctx sys =
  let io = machine.Machine.io in
  match sys with
  | Insn.Sys_putc ->
    Io.putc io (Context.get_reg ctx (Reg.arg 0));
    Ev_normal
  | Insn.Sys_getc ->
    Context.set_reg ctx Reg.rv (Io.getc io);
    Ev_normal
  | Insn.Sys_print_int ->
    Io.print_int io (Context.get_reg ctx (Reg.arg 0));
    Ev_normal
  | Insn.Sys_exit ->
    let status = Context.get_reg ctx (Reg.arg 0) in
    Io.set_exit io status;
    Ev_exit status

(* Execute the instruction at [ctx.pc]; advances [ctx.pc], updates timing and
   returns the event the engine must dispatch on. For a sandboxed context, a
   syscall is reported *without* being executed (unsafe event: the engine
   squashes the path), and faults are reported rather than raised (the
   exception is swallowed by the hardware, as in the paper). *)
let step machine ctx =
  let code = machine.Machine.program.Program.code in
  let pc = ctx.Context.pc in
  if pc < 0 || pc >= Array.length code then Ev_fault (Bad_pc pc)
  else begin
    let stats = ctx.Context.stats in
    stats.Context.insns <- stats.Context.insns + 1;
    stats.Context.cycles <- stats.Context.cycles + 1;
    machine.Machine.insn_index <- machine.Machine.insn_index + 1;
    let rec exec insn =
      match insn with
      | Insn.Binop (op, rd, rs, rt) ->
        (match
           Insn.eval_binop op (Context.get_reg ctx rs) (Context.get_reg ctx rt)
         with
         | Some v ->
           Context.set_reg ctx rd v;
           ctx.Context.pc <- pc + 1;
           Ev_normal
         | None -> Ev_fault Div_by_zero)
      | Insn.Binopi (op, rd, rs, imm) ->
        (match Insn.eval_binop op (Context.get_reg ctx rs) imm with
         | Some v ->
           Context.set_reg ctx rd v;
           ctx.Context.pc <- pc + 1;
           Ev_normal
         | None -> Ev_fault Div_by_zero)
      | Insn.Cmp (c, rd, rs, rt) ->
        let v =
          if Insn.eval_cmp c (Context.get_reg ctx rs) (Context.get_reg ctx rt)
          then 1
          else 0
        in
        Context.set_reg ctx rd v;
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Insn.Cmpi (c, rd, rs, imm) ->
        let v = if Insn.eval_cmp c (Context.get_reg ctx rs) imm then 1 else 0 in
        Context.set_reg ctx rd v;
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Insn.Li (rd, imm) ->
        Context.set_reg ctx rd imm;
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Insn.Mov (rd, rs) ->
        Context.set_reg ctx rd (Context.get_reg ctx rs);
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Insn.Load (rd, base, off) ->
        let addr = Context.get_reg ctx base + off in
        let v = data_read machine ctx addr in
        Context.set_reg ctx rd v;
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Insn.Store (rs, base, off) ->
        let addr = Context.get_reg ctx base + off in
        data_write machine ctx addr (Context.get_reg ctx rs);
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Insn.Br (c, rs, rt, target) ->
        stats.Context.branches <- stats.Context.branches + 1;
        let taken =
          Insn.eval_cmp c (Context.get_reg ctx rs) (Context.get_reg ctx rt)
        in
        let next = if taken then target else pc + 1 in
        ctx.Context.pc <- next;
        Ev_branch { br_pc = pc; taken; target; fallthrough = pc + 1 }
      | Insn.Jmp target ->
        ctx.Context.pc <- target;
        Ev_normal
      | Insn.Call target ->
        push machine ctx (pc + 1);
        ctx.Context.pc <- target;
        Ev_normal
      | Insn.Ret ->
        let ra = pop machine ctx in
        ctx.Context.pc <- ra;
        Ev_normal
      | Insn.Push rs ->
        push machine ctx (Context.get_reg ctx rs);
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Insn.Pop rd ->
        let v = pop machine ctx in
        Context.set_reg ctx rd v;
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Insn.Syscall sys ->
        if Context.is_sandboxed ctx then Ev_syscall sys
        else begin
          let ev = do_syscall machine ctx sys in
          ctx.Context.pc <- pc + 1;
          ev
        end
      | Insn.Checkz (rs, site) ->
        if Context.get_reg ctx rs = 0 then file_report machine ctx site;
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Insn.Watch (lo, hi, site) ->
        let entry =
          Watchpoints.watch machine.Machine.watch
            ~lo:(Context.get_reg ctx lo) ~hi:(Context.get_reg ctx hi) ~site
        in
        (match ctx.Context.sandbox with
         | Some sb -> Context.journal_watch sb entry
         | None -> ());
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Insn.Unwatch (lo, hi) ->
        let entry =
          Watchpoints.unwatch machine.Machine.watch
            ~lo:(Context.get_reg ctx lo) ~hi:(Context.get_reg ctx hi)
        in
        (match ctx.Context.sandbox with
         | Some sb -> Context.journal_watch sb entry
         | None -> ());
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Insn.Pred inner ->
        if ctx.Context.pred then begin
          ctx.Context.in_pred_fix <- true;
          let ev = exec inner in
          ctx.Context.in_pred_fix <- false;
          ev
        end
        else begin
          ctx.Context.pc <- pc + 1;
          Ev_normal
        end
      | Insn.Clearpred ->
        ctx.Context.pred <- false;
        ctx.Context.pc <- pc + 1;
        Ev_normal
      | Insn.Halt -> Ev_halt
      | Insn.Nop ->
        ctx.Context.pc <- pc + 1;
        Ev_normal
    in
    try exec code.(pc) with
    | Memory.Fault f -> Ev_fault (Mem_fault f)
    | Overflow -> Ev_overflow
  end

type run_outcome = {
  outcome : [ `Halted | `Exited of int | `Faulted of fault | `Fuel_exhausted ];
  insns : int;
  cycles : int;
}

(* Run a program to completion with no PathExpander involvement: the baseline
   monitored run. *)
let run_baseline ?(fuel = 200_000_000) machine =
  let ctx = Machine.main_context machine in
  let rec loop () =
    if ctx.Context.stats.Context.insns >= fuel then `Fuel_exhausted
    else
      match step machine ctx with
      | Ev_normal | Ev_branch _ | Ev_syscall _ -> loop ()
      | Ev_exit status -> `Exited status
      | Ev_halt -> `Halted
      | Ev_fault f -> `Faulted f
      | Ev_overflow -> assert false
  in
  let outcome = loop () in
  {
    outcome;
    insns = ctx.Context.stats.Context.insns;
    cycles = ctx.Context.stats.Context.cycles;
  }

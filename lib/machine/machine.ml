type t = {
  config : Machine_config.t;
  program : Program.t;
  dcode : Decode.t array;
  mem : Memory.t;
  l2 : Cache.t;
  btb : Btb.t;
  watch : Watchpoints.t;
  reports : Report.t;
  io : Io.t;
  mutable insn_index : int;
  mutable store_hook : (Context.t -> int -> int -> unit) option;
  telemetry : Telemetry.t;
  recorder : Recorder.t;
}

(* One-slot decode memo: experiments compile a program once and then create
   a machine per input, so consecutive creates usually share the same code
   array (compared physically). A stale or torn slot only costs a re-decode;
   decode is pure, so any cached value for the same code array is correct. *)
let decode_memo : (Insn.t array * Decode.t array) option Atomic.t =
  Atomic.make None

let decode_code code =
  match Atomic.get decode_memo with
  | Some (c, d) when c == code -> d
  | _ ->
    let d = Decode.decode code in
    Atomic.set decode_memo (Some (code, d));
    d

let create ?(config = Machine_config.default) ?(input = "") ?recorder program =
  Program.validate program;
  let mem =
    Memory.create ~globals_words:program.Program.globals_words
      ~heap_words:config.Machine_config.heap_words
      ~stack_words:config.Machine_config.stack_words
  in
  Memory.load_init mem program.Program.init_data;
  (* The MiniC runtime's bump allocator keeps its break pointer in the first
     global word (right after the null page); initialise it to the heap
     base, which is only known once memory is laid out. *)
  if program.Program.globals_words > 0 then
    Memory.write mem Memory.null_guard mem.Memory.heap_base;
  (* The flight recorder defaults through the process-global tracing switch:
     the disabled singleton (one branch per emit site, no storage) unless a
     sweep capture is armed. *)
  let recorder =
    match recorder with Some r -> r | None -> Recorder.obtain ()
  in
  let l2 =
    Cache.create ~size_kb:config.Machine_config.l2_size_kb
      ~assoc:config.Machine_config.l2_assoc
      ~line_bytes:config.Machine_config.line_bytes
  in
  Cache.set_recorder l2 recorder;
  {
    config;
    program;
    dcode = decode_code program.Program.code;
    mem;
    l2;
    btb =
      Btb.create ~entries:config.Machine_config.btb_entries
        ~assoc:config.Machine_config.btb_assoc;
    watch = Watchpoints.create ();
    reports = Report.create ();
    io = Io.create ~input ();
    insn_index = 0;
    store_hook = None;
    telemetry = Telemetry.create ();
    recorder;
  }

let new_l1 machine =
  let l1 =
    Cache.create ~size_kb:machine.config.Machine_config.l1_size_kb
      ~assoc:machine.config.Machine_config.l1_assoc
      ~line_bytes:machine.config.Machine_config.line_bytes
  in
  Cache.set_recorder l1 machine.recorder;
  l1

let main_context machine =
  Context.create ~l1:(new_l1 machine) ~pc:machine.program.Program.entry
    ~sp:machine.mem.Memory.stack_base

(* Extra cycles for a data access: L1 hits are pipelined (no stall), an L1
   miss pays the latency of the level that services it. Speculative paths
   (non-zero owner) fill their own L1 — fills and writes take the path's
   version tag, read hits leave committed lines committed — but only probe
   the shared L2. *)
let access_latency machine l1 ~owner ~write ~speculative addr =
  match Cache.access_line l1 addr ~owner ~write ~allocate:true with
  | Cache.Hit -> 0
  | Cache.Miss ->
    (match
       Cache.access_line machine.l2 addr ~owner:Cache.committed_owner
         ~write:false ~allocate:(not speculative)
     with
     | Cache.Hit -> machine.config.Machine_config.l2_latency
     | Cache.Miss -> machine.config.Machine_config.mem_latency)

(* Recycle the machine's simulated address space (see Memory.release). Call
   once the run is over and only results — reports, output, telemetry — will
   be read; the memory contents are dead at that point. *)
let release machine = Memory.release machine.mem

let site_count machine = Array.length machine.program.Program.sites

let output machine = Io.output machine.io

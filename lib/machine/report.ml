(* Bug reports filed by the dynamic detectors. The paper stores these in a
   special monitor memory area that the NT-Path sandbox never rolls back;
   here the log models that area directly: entries filed during an NT-Path
   survive the path's squash.

   Every entry carries its path-origin provenance: reports filed inside an
   NT-Path name the branch edge that spawned the path (spawning branch pc
   and forced direction), so a bug reachable only speculatively can be
   traced back to the exact cold edge that exposed it. *)

type origin = Taken_path | Nt_path of int

type entry = {
  site : int;
  origin : origin;
  pc : int;
  insn_index : int;
  spawn_br_pc : int;  (* spawning branch pc; -1 on the taken path *)
  branch_edge : int;  (* forced direction 0/1; -1 on the taken path *)
}

type t = { mutable entries : entry list; mutable count : int }

let create () = { entries = []; count = 0 }

let file ?(spawn_br_pc = -1) ?(branch_edge = -1) log ~site ~origin ~pc
    ~insn_index =
  log.entries <-
    { site; origin; pc; insn_index; spawn_br_pc; branch_edge } :: log.entries;
  log.count <- log.count + 1

let entries log = List.rev log.entries

let count log = log.count

let distinct_sites log =
  let module Int_set = Set.Make (Int) in
  Int_set.elements
    (List.fold_left
       (fun acc e -> Int_set.add e.site acc)
       Int_set.empty log.entries)

let sites_from_nt_paths log =
  let module Int_set = Set.Make (Int) in
  Int_set.elements
    (List.fold_left
       (fun acc e ->
         match e.origin with
         | Nt_path _ -> Int_set.add e.site acc
         | Taken_path -> acc)
       Int_set.empty log.entries)

let sites_from_taken_path log =
  let module Int_set = Set.Make (Int) in
  Int_set.elements
    (List.fold_left
       (fun acc e ->
         match e.origin with
         | Taken_path -> Int_set.add e.site acc
         | Nt_path _ -> acc)
       Int_set.empty log.entries)

(* The distinct branch edges (spawning pc, forced direction) whose NT-Paths
   filed at least one report — the "which cold edges found bugs" view. *)
let spawn_edges log =
  let module Pair_set = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  Pair_set.elements
    (List.fold_left
       (fun acc e ->
         match e.origin with
         | Nt_path _ when e.spawn_br_pc >= 0 ->
           Pair_set.add (e.spawn_br_pc, e.branch_edge) acc
         | Nt_path _ | Taken_path -> acc)
       Pair_set.empty log.entries)

let clear log =
  log.entries <- [];
  log.count <- 0

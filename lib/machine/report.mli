(** The bug-report log — the model of the paper's monitor memory area.

    Reports filed by detector checks are written to a memory region that the
    NT-Path sandbox explicitly exempts from rollback, so findings made on a
    squashed path survive. Each entry records which report site fired and
    whether it fired on the taken path or inside an NT-Path. *)

type origin = Taken_path | Nt_path of int  (** payload: NT-Path id *)

type entry = {
  site : int;
  origin : origin;
  pc : int;  (** pc of the reporting instruction *)
  insn_index : int;  (** dynamic instruction count when filed *)
  spawn_br_pc : int;
      (** pc of the branch whose non-taken edge spawned the reporting
          NT-Path; [-1] for taken-path reports *)
  branch_edge : int;
      (** the forced direction of that edge (0/1); [-1] for taken-path
          reports *)
}

type t

val create : unit -> t

(** File a report. [spawn_br_pc]/[branch_edge] default to [-1] (taken-path
    provenance); NT-Path reports pass the spawning edge. *)
val file :
  ?spawn_br_pc:int ->
  ?branch_edge:int ->
  t ->
  site:int ->
  origin:origin ->
  pc:int ->
  insn_index:int ->
  unit

(** All entries, oldest first. *)
val entries : t -> entry list

val count : t -> int

(** Sorted distinct site ids that fired at least once. *)
val distinct_sites : t -> int list

(** Distinct sites that fired inside some NT-Path. *)
val sites_from_nt_paths : t -> int list

(** Distinct sites that fired on the taken path. *)
val sites_from_taken_path : t -> int list

(** Sorted distinct [(spawn_br_pc, branch_edge)] pairs whose NT-Paths filed
    at least one report — which cold edges exposed bugs. *)
val spawn_edges : t -> (int * int) list

val clear : t -> unit

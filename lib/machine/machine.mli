(** The assembled simulated machine: program image, data memory, shared L2,
    BTB with exercise counters, watchpoint unit, report log (monitor memory
    area) and program I/O. Execution contexts (one per core / path) are
    created separately and share this state. *)

type t = {
  config : Machine_config.t;
  program : Program.t;
  dcode : Decode.t array;
      (** execution-form image of [program.code], decoded once at load:
          register indices resolved, immediates split out, so the
          interpreter's hot loop never re-inspects raw [Insn.t] *)
  mem : Memory.t;
  l2 : Cache.t;
  btb : Btb.t;
  watch : Watchpoints.t;
  reports : Report.t;
  io : Io.t;
  mutable insn_index : int;  (** global retired-instruction counter *)
  mutable store_hook : (Context.t -> int -> int -> unit) option;
      (** observation hook called as [hook ctx addr value] on every data
          store (including sandboxed ones) — the attachment point for
          detectors built outside the compiler, such as the DIDUCE-style
          invariant monitor *)
  telemetry : Telemetry.t;
      (** per-run observability sink; the engine fills it with spawn,
          termination, cache, BTB and phase-timing data and submits it to
          the global collector at the end of the run *)
  recorder : Recorder.t;
      (** per-run flight recorder of NT-Path lifecycle events in sim time;
          the {!Recorder.disabled} singleton unless tracing is armed (or an
          explicit recorder was passed to {!create}), making every emit site
          a single branch *)
}

(** Validates the program, lays out memory, installs initial data and points
    the runtime allocator's break word (global address 1) at the heap base.
    [recorder] overrides the process-global tracing default
    ({!Recorder.obtain}); it is attached to the L2 and every L1 this machine
    creates. *)
val create :
  ?config:Machine_config.t -> ?input:string -> ?recorder:Recorder.t ->
  Program.t -> t

(** A fresh L1 cache with this machine's geometry (one per core). *)
val new_l1 : t -> Cache.t

(** Context positioned at the program entry with a full stack and its own
    L1. *)
val main_context : t -> Context.t

(** Extra stall cycles for a data access at [addr] through [l1] (0 on L1
    hit); [owner] version-tags the line on fills and — when [write] — on
    hits (read hits leave committed lines committed); [speculative]
    accesses probe the shared L2 without installing lines. *)
val access_latency :
  t -> Cache.t -> owner:int -> write:bool -> speculative:bool -> int -> int

(** Recycle this machine's simulated address space into the {!Memory} pool.
    Call once the run is finished and only its *results* — reports, program
    output, telemetry, statistics — will be consulted; the memory image
    must not be read afterwards. *)
val release : t -> unit

val site_count : t -> int

(** Program output so far. *)
val output : t -> string

(* Branch target buffer extended, as in the paper, with two 4-bit saturating
   exercise counters per entry — one per branch edge. A BTB miss is treated
   as if both counters were zero. *)

type entry = {
  mutable tag : int;
  mutable valid : bool;
  mutable taken_count : int;
  mutable nontaken_count : int;
  mutable lru : int;
}

type t = {
  sets : entry array array;
  counter_max : int;
  mutable clock : int;
  mutable lookups : int;
  mutable misses : int;
}

let counter_bits = 4

let create ~entries ~assoc =
  if entries mod assoc <> 0 then invalid_arg "Btb.create: geometry";
  let nsets = entries / assoc in
  let make_entry () =
    { tag = 0; valid = false; taken_count = 0; nontaken_count = 0; lru = 0 }
  in
  {
    sets = Array.init nsets (fun _ -> Array.init assoc (fun _ -> make_entry ()));
    counter_max = (1 lsl counter_bits) - 1;
    clock = 0;
    lookups = 0;
    misses = 0;
  }

let set_of btb pc = btb.sets.(pc mod Array.length btb.sets)

(* Associative search as a top-level loop over (set, pc): an inner [let rec]
   would allocate a closure per lookup (no flambda), and [probe_exercise]
   runs this once per fast-tier branch. Returns the way index, or -1. *)
let rec search_set set n pc i =
  if i >= n then -1
  else
    let e = Array.unsafe_get set i in
    if e.valid && e.tag = pc then i else search_set set n pc (i + 1)

let find btb pc =
  let set = set_of btb pc in
  let i = search_set set (Array.length set) pc 0 in
  if i >= 0 then Some set.(i) else None

let victim btb pc =
  let set = set_of btb pc in
  let best = ref set.(0) in
  Array.iter
    (fun e ->
      if not e.valid then (if !best.valid then best := e)
      else if !best.valid && e.lru < !best.lru then best := e)
    set;
  !best

(* Exercise counts of the two edges of the branch at [pc]; (0, 0) on miss. *)
let counts btb pc =
  btb.lookups <- btb.lookups + 1;
  match find btb pc with
  | Some e ->
    btb.clock <- btb.clock + 1;
    e.lru <- btb.clock;
    (e.taken_count, e.nontaken_count)
  | None ->
    btb.misses <- btb.misses + 1;
    (0, 0)

let entry_for btb pc =
  match find btb pc with
  | Some e -> e
  | None ->
    let e = victim btb pc in
    e.valid <- true;
    e.tag <- pc;
    e.taken_count <- 0;
    e.nontaken_count <- 0;
    e

(* Side-effect-free counter read for the selective fast tier: no lookup
   accounting, no LRU touch, no allocation on miss. The fast tier uses this
   to decide whether a branch is a spawn candidate *before* committing any
   BTB state change; a candidate (or a miss) deoptimizes to the instrumented
   tier, which then performs the real [counts]/[exercise] sequence. *)
let probe_counts btb pc =
  match find btb pc with
  | Some e -> Some (e.taken_count, e.nontaken_count)
  | None -> None

let exercise btb pc ~taken =
  let e = entry_for btb pc in
  btb.clock <- btb.clock + 1;
  e.lru <- btb.clock;
  if taken then e.taken_count <- min btb.counter_max (e.taken_count + 1)
  else e.nontaken_count <- min btb.counter_max (e.nontaken_count + 1)

(* Fused [counts] + [exercise] with a single associative search, for the
   selective fast tier's non-candidate branches. Must leave the BTB in the
   exact observable state the two-call sequence would: same [lookups] and
   [misses] accounting, same net [clock] advance (+2 on hit: one LRU touch
   from the counts read, one from the exercise; +1 on miss: the counts read
   of a missing entry does not touch the clock), same final LRU stamp and
   counter values. *)
let lookup_exercise btb pc ~taken =
  btb.lookups <- btb.lookups + 1;
  let e =
    match find btb pc with
    | Some e ->
      btb.clock <- btb.clock + 2;
      e
    | None ->
      btb.misses <- btb.misses + 1;
      let e = victim btb pc in
      e.valid <- true;
      e.tag <- pc;
      e.taken_count <- 0;
      e.nontaken_count <- 0;
      btb.clock <- btb.clock + 1;
      e
  in
  e.lru <- btb.clock;
  if taken then e.taken_count <- min btb.counter_max (e.taken_count + 1)
  else e.nontaken_count <- min btb.counter_max (e.nontaken_count + 1)

(* Single-search combination of the fast tier's candidate test and counter
   update: equivalent to [probe_counts] followed — only when the branch is
   not a spawn candidate — by [lookup_exercise]. Returns [true] (candidate:
   BTB miss or forced-edge counter below [threshold]) leaving the BTB
   untouched, so the instrumented tier replays the real sequence; or commits
   [lookup_exercise]'s exact observable effect and returns [false]. *)
let probe_exercise btb pc ~taken ~threshold =
  let set = set_of btb pc in
  let i = search_set set (Array.length set) pc 0 in
  if i < 0 then true
  else begin
    let e = Array.unsafe_get set i in
    let forced = if taken then e.nontaken_count else e.taken_count in
    if forced < threshold then true
    else begin
      btb.lookups <- btb.lookups + 1;
      btb.clock <- btb.clock + 2;
      e.lru <- btb.clock;
      if taken then e.taken_count <- min btb.counter_max (e.taken_count + 1)
      else e.nontaken_count <- min btb.counter_max (e.nontaken_count + 1);
      false
    end
  end

let reset_counters btb =
  Array.iter
    (fun set ->
      Array.iter
        (fun e ->
          e.taken_count <- 0;
          e.nontaken_count <- 0)
        set)
    btb.sets

let lookups btb = btb.lookups
let miss_count btb = btb.misses

let entry_count btb =
  Array.length btb.sets * Array.length btb.sets.(0)

let valid_entries btb =
  let count = ref 0 in
  Array.iter
    (fun set -> Array.iter (fun e -> if e.valid then incr count) set)
    btb.sets;
  !count

(* Entries whose exercise counters can no longer discriminate cold edges:
   both counters pinned at the 4-bit maximum. *)
let saturated_entries btb =
  let count = ref 0 in
  Array.iter
    (fun set ->
      Array.iter
        (fun e ->
          if
            e.valid && e.taken_count >= btb.counter_max
            && e.nontaken_count >= btb.counter_max
          then incr count)
        set)
    btb.sets;
  !count

(* BTB pressure for telemetry: occupancy (conflict evictions lose exercise
   history), miss rate, and the saturated-counter fraction. *)
let record_telemetry btb sink ~prefix =
  Telemetry.count sink (prefix ^ ".lookups") btb.lookups;
  Telemetry.count sink (prefix ^ ".misses") btb.misses;
  if btb.lookups > 0 then
    Telemetry.gauge sink (prefix ^ ".miss_rate")
      (float_of_int btb.misses /. float_of_int btb.lookups);
  let entries = entry_count btb in
  Telemetry.gauge sink (prefix ^ ".occupancy")
    (float_of_int (valid_entries btb) /. float_of_int entries);
  Telemetry.gauge sink (prefix ^ ".saturation")
    (float_of_int (saturated_entries btb) /. float_of_int entries)

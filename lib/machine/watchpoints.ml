(* iWatcher-style hardware watchpoint unit: a set of address ranges, each
   associated with a report site. Every load/store is checked against the
   ranges; a hit triggers the associated monitoring check at small, fixed
   hardware cost. *)

type mode = Watch_read | Watch_write | Watch_both

type range = { lo : int; hi : int; site : int; mode : mode }

type t = { mutable ranges : range list; mutable triggers : int }

type journal_entry = Added of range | Removed of range list

let create () = { ranges = []; triggers = 0 }

let watch ?(mode = Watch_both) unit ~lo ~hi ~site =
  if hi < lo then invalid_arg "Watchpoints.watch: empty range";
  let r = { lo; hi; site; mode } in
  unit.ranges <- r :: unit.ranges;
  Added r

let unwatch unit ~lo ~hi =
  let removed, kept =
    List.partition (fun r -> r.lo >= lo && r.hi <= hi) unit.ranges
  in
  unit.ranges <- kept;
  Removed removed

let mode_matches mode ~is_write =
  match mode with
  | Watch_both -> true
  | Watch_read -> not is_write
  | Watch_write -> is_write

(* Report sites of every range containing [addr] whose mode covers this
   access kind. *)
let hit_sites unit ~is_write addr =
  List.filter_map
    (fun r ->
      if addr >= r.lo && addr < r.hi && mode_matches r.mode ~is_write then begin
        unit.triggers <- unit.triggers + 1;
        Some r.site
      end
      else None)
    unit.ranges

let is_watched unit addr =
  List.exists (fun r -> addr >= r.lo && addr < r.hi) unit.ranges

let undo unit entry =
  match entry with
  | Added r -> unit.ranges <- List.filter (fun r' -> r' != r) unit.ranges
  | Removed rs -> unit.ranges <- rs @ unit.ranges

let count unit = List.length unit.ranges

(* O(1) emptiness test for the per-iteration fast-tier eligibility checks
   ([List.length] walks the list, and an [= 0] on it runs every engine-loop
   iteration). *)
let[@inline always] is_empty unit =
  match unit.ranges with [] -> true | _ :: _ -> false
let triggers unit = unit.triggers
let clear unit = unit.ranges <- []

(** Flat word-addressed data memory.

    Layout: the first [Program.null_guard_words] addresses form an unmapped
    null page (accessing any of them is a null-access fault), then globals,
    heap, and the downward-growing stack whose initial [sp] is [stack_base].
    Every other address inside the space is accessible — the machine faults
    on null-page, negative or beyond-address-space accesses, the
    access-violation crash model the paper's NT-Path crash-latency study
    relies on. *)

type t = {
  words : int array;
  globals_end : int;  (** first address past the globals segment *)
  heap_base : int;
  heap_end : int;
  stack_limit : int;  (** lowest legal stack address *)
  stack_base : int;  (** initial stack pointer *)
  mutable heap_hi : int;
      (** highest address written below [stack_limit], or -1 — bounds the
          re-zero on {!release} *)
  mutable stack_lo : int;
      (** lowest address written at or above [stack_limit], or [stack_base] *)
  mutable released : bool;
}

type fault = Null_access | Out_of_range of int

exception Fault of fault

(** First mapped address (size of the null page). *)
val null_guard : int

val create : globals_words:int -> heap_words:int -> stack_words:int -> t

(** Return this memory's backing array to a size-keyed pool for reuse by a
    later {!create} of the same geometry. Only the written watermark ranges
    are re-zeroed, so releasing is O(words actually touched), not O(address
    space). The memory must not be read or written afterwards — its words
    now belong to whichever machine takes them next. Double release is a
    no-op. Pooled arrays are always all-zero, so simulation results are
    identical with or without pooling. *)
val release : t -> unit

(** Total address-space size in words. *)
val size : t -> int

(** Raises {!Fault} if [addr] is not accessible; no other effect. *)
val check : t -> int -> unit

(** Raises {!Fault} if [addr] is not accessible. *)
val read : t -> int -> int

val write : t -> int -> int -> unit

(** [write] minus the access check, for callers that have just established
    [is_valid] (the selective fast tier validates operands *before*
    committing an instruction). Same watermark maintenance. *)
val write_valid : t -> int -> int -> unit

(** Exactly the complement of {!check}'s raise condition. *)
val is_valid : t -> int -> bool

val fault_to_string : fault -> string

(** Install the program's initialised globals. *)
val load_init : t -> (int * int) list -> unit

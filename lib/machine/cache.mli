(** Set-associative LRU cache model with versioned lines.

    Used for timing (hit/miss latency accounting) and for the paper's
    L1-based NT-Path sandboxing: lines written by an NT-Path carry that
    path's ID as a version tag (the standard configuration's 1-bit Vtag is
    the two-ID special case); squashing a path gang-invalidates its lines and
    committing a taken-path segment lazily retags them as committed. *)

type t

type outcome = Hit | Miss

(** Version tag of committed (architectural) data: 0. *)
val committed_owner : int

val create : size_kb:int -> assoc:int -> line_bytes:int -> t

(** Attach the owning machine's flight recorder (the {!Recorder.disabled}
    singleton until attached): {!gang_invalidate} and {!commit_owner} then
    emit [Squash]/[Commit] lifecycle events for line-releasing operations,
    timestamped with the recorder's current sim-time clock. *)
val set_recorder : t -> Recorder.t -> unit

(** [access ?owner ?write ?allocate cache addr] touches the line holding
    word [addr], filling it on a miss unless [allocate] is [false]
    (speculative paths probe the shared L2 without installing lines).
    [owner] version-tags the line on a fill, and — when [write] is true —
    on a hit as well: NT-Path fills and stores create speculative data that
    must die with the path, but a read hit leaves a committed line
    committed. *)
val access : ?owner:int -> ?write:bool -> ?allocate:bool -> t -> int -> outcome

(** [access] with every argument explicit — the hot-path entry point:
    optional arguments box their values ([Some owner]) on each call, which
    at one-plus allocation per simulated load/store is measurable.

    Probes run through a two-layer fast path unless disabled (see
    {!set_fastpath}): an MRU line memo that answers semantically no-op hits
    (MRU read hit, or same-owner write hit — no retag, no LRU reorder) in a
    couple of compares, then a per-set direct-mapped tag filter that tries
    the set's last-touched way before the associative walk. Observable
    behaviour — hit/miss outcomes, counters, owners, journals, eviction
    order — is identical with the fast path on or off. *)
val access_line :
  t -> int -> owner:int -> write:bool -> allocate:bool -> outcome

(** [memo_probe cache addr ~owner ~write] is [true] iff {!access_line}
    would answer this access from the MRU line memo — an L1 hit with zero
    stall cycles and no state change — committing nothing. The selective
    fast tier batches the implied hit counts in a register and flushes them
    once per segment with {!add_hits}. *)
val memo_probe : t -> int -> owner:int -> write:bool -> bool

(** Credit [n] deferred memo hits to the hit counter (the flush half of the
    batched accounting around {!memo_probe}). *)
val add_hits : t -> int -> unit

(** Enable/disable this cache's probe fast path (memo + filter). Disabling
    and re-enabling kills the memo, so stale entries are never trusted. *)
val set_fastpath : t -> bool -> unit

(** Process-wide default for caches created from now on. Initialised from
    the [PEXP_CACHE_FASTPATH] environment variable ([0] = off, the CI kill
    switch); on unless told otherwise. *)
val set_fastpath_enabled : bool -> unit

val fastpath_enabled : unit -> bool

(** Invalidate all lines version-tagged [owner]; returns how many.
    O(lines the owner touched since its last squash/commit) for 8-bit
    owner ids, via a per-owner journal of ownership acquisitions. *)
val gang_invalidate : t -> owner:int -> int

(** Retag all lines of [owner] as committed; returns how many. Indexed like
    {!gang_invalidate}. *)
val commit_owner : t -> owner:int -> int

(** Number of valid lines currently tagged [owner]; O(1) for 8-bit ids. *)
val owned_lines : t -> owner:int -> int

(** Full-array sweep implementations of the three owner operations: the
    oracle the indexed versions must agree with (property-tested). Safe to
    mix with the indexed operations on the same cache. *)
module Reference : sig
  val gang_invalidate : t -> owner:int -> int
  val commit_owner : t -> owner:int -> int
  val owned_lines : t -> owner:int -> int
end

(** Full visible line state, [(tag, valid, owner, lru)] in set/way order —
    for test assertions of behavioural equivalence. *)
val snapshot : t -> (int * bool * int * int) array

(** Like {!snapshot} but with per-set LRU ranks (invalid lines rank -1)
    instead of raw clock stamps: the memo fast path skips clock ticks, so a
    memoized and a plain cache agree on this canonical form while their
    absolute stamps differ. *)
val snapshot_canonical : t -> (int * bool * int * int) array

val hits : t -> int
val misses : t -> int

(** Hits served by the MRU line memo, including batched {!memo_probe} +
    {!add_hits} credits from the fast tier. A subset of {!hits}. *)
val memo_hits : t -> int

(** Associative-walk hits resolved by the verified direct-mapped tag filter.
    A subset of {!hits}, disjoint from {!memo_hits}. *)
val filter_hits : t -> int

(** Number of valid lines currently installed. *)
val valid_lines : t -> int

(** Total line capacity. *)
val line_count : t -> int

(** Record hits, misses, hit rate and occupancy into [sink] under
    [prefix]-qualified names (e.g. ["l2.hit_rate"]). *)
val record_telemetry : t -> Telemetry.t -> prefix:string -> unit

val reset_stats : t -> unit

(** Invalidate everything and reset statistics. *)
val clear : t -> unit

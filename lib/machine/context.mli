(** Per-path execution context: registers, pc, predicate register, cycle
    statistics, the L1 cache the path uses for timing, and — for NT-Paths —
    the sandbox that buffers memory writes (the semantic model of the
    paper's versioned L1 buffering).

    The sandbox stores written words in a flat generation-stamped overlay
    keyed by address and tracks how many distinct cache lines the path has
    dirtied; exceeding the L1's line capacity means the hardware could no
    longer buffer the path and forces a squash. Contexts and sandboxes are
    designed for pooling: {!reset_for_spawn} and {!reset_sandbox} recycle
    them across spawns without allocation. *)

type stats = {
  mutable insns : int;
  mutable cycles : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
}

val fresh_stats : unit -> stats

type sandbox

type t = {
  regs : int array;
  mutable pc : int;
  mutable pred : bool;  (** the predicate register of Section 4.4 *)
  mutable in_pred_fix : bool;
      (** currently executing a predicated consistency-fix instruction —
          observation hooks use this to tell PathExpander's own stores from
          the program's *)
  mutable sandbox : sandbox option;
  stats : stats;
  mutable l1 : Cache.t;
  mutable br_pc : int;
      (** scratch: pc of the branch behind the latest [Cpu.Ev_branch] *)
  mutable br_taken : bool;  (** scratch: was that branch taken *)
  mutable br_target : int;
      (** scratch: its taken-side target (fallthrough is [br_pc + 1]) *)
}

(** Architectural register/pc/predicate snapshot. *)
type checkpoint

(** Fresh context with [sp = fp = sp] and zeroed registers. *)
val create : l1:Cache.t -> pc:int -> sp:int -> t

(** Re-aim a pooled context at a new spawn: zero the statistics, clear the
    predicate machinery, detach any sandbox and retarget the L1. The caller
    remains responsible for seeding the register file. *)
val reset_for_spawn : t -> l1:Cache.t -> pc:int -> unit

(** Reads of [Reg.zero] always give 0. *)
val get_reg : t -> Reg.t -> int

(** Writes to [Reg.zero] are discarded. *)
val set_reg : t -> Reg.t -> int -> unit

val checkpoint : t -> checkpoint
val restore : t -> checkpoint -> unit

(** Hardware-style overlay sandbox (versioned-L1 buffering). The overlay is
    a flat store sized from [line_limit] — reusable via {!reset_sandbox}. *)
val make_sandbox : path_id:int -> line_limit:int -> words_per_line:int -> sandbox

(** Software-style restore-log sandbox: writes go straight to memory and an
    undo log records old values (the PIN-based implementation's scheme). *)
val make_write_log_sandbox : path_id:int -> sandbox

(** Recycle a sandbox for the next spawn — O(1) for overlays. *)
val reset_sandbox : sandbox -> path_id:int -> unit

val enter_sandbox : t -> sandbox -> unit
val exit_sandbox : t -> unit
val is_sandboxed : t -> bool

(** Version tag for cache lines written by this context
    ([Cache.committed_owner] when not sandboxed). *)
val path_id : t -> int

(** The sandbox's own path id — for callers that already matched on
    [ctx.sandbox] and hold the payload. *)
val sandbox_path_id : sandbox -> int

(** Record the spawn provenance of the path running in this sandbox: the
    spawning branch pc and the forced (non-taken) direction. Cleared to
    [-1]/[false] by {!reset_sandbox}; reports filed inside the path carry
    these so every bug gains its path origin. *)
val set_spawn_info : sandbox -> br_pc:int -> edge:bool -> unit

(** Spawning branch pc ([-1] when never set). *)
val sandbox_spawn_pc : sandbox -> int

(** Forced branch direction at spawn ([false] when never set). *)
val sandbox_spawn_edge : sandbox -> bool

(** Read through the sandbox overlay when present. *)
val read_mem : t -> Memory.t -> int -> int

(** Read through a sandbox directly: the path's own buffered version first,
    falling back to committed memory. *)
val sandbox_read : sandbox -> Memory.t -> int -> int

(** Buffer a write; [false] when the path overflowed its L1 capacity.
    Raises [Memory.Fault] on an inaccessible address. *)
val sandbox_write : sandbox -> Memory.t -> int -> int -> bool

val dirty_line_count : sandbox -> int

(** Number of entries in a restore-log sandbox (0 for overlays). *)
val write_log_size : sandbox -> int

(** Replay a restore-log sandbox backwards, undoing its memory writes
    (no-op for overlays, whose buffered writes are simply discarded). *)
val rollback_write_log : sandbox -> Memory.t -> unit

(** Apply buffered writes to memory (taken-path segment commit in the CMP
    engine; never used for NT-Paths). *)
val commit_sandbox : sandbox -> Memory.t -> unit

(** Record a watchpoint mutation for undo at squash. *)
val journal_watch : sandbox -> Watchpoints.journal_entry -> unit

(** Undo all journaled watchpoint mutations. *)
val undo_watches : sandbox -> Watchpoints.t -> unit

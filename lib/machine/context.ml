type stats = {
  mutable insns : int;
  mutable cycles : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
}

let fresh_stats () = { insns = 0; cycles = 0; loads = 0; stores = 0; branches = 0 }

(* Generation-stamped open-addressing int->int table: the overlay's flat
   store. A slot is live iff its generation stamp equals the table's; reset
   is a generation bump, so one table serves every NT-Path an arena runs.
   Linear probing with a multiplicative hash; grows (rare — capacity is
   sized from the L1 line limit, and overflow squashes the path first) when
   more than half full so probes stay short. *)
module Itab = struct
  type t = {
    mutable keys : int array;
    mutable vals : int array;
    mutable gens : int array;
    mutable mask : int;
    mutable gen : int;
    mutable used : int;
  }

  let next_pow2 n =
    let rec go k = if k >= n then k else go (2 * k) in
    go 16

  let create cap_hint =
    let cap = next_pow2 (max 16 cap_hint) in
    {
      keys = Array.make cap 0;
      vals = Array.make cap 0;
      gens = Array.make cap 0;
      mask = cap - 1;
      gen = 1;
      used = 0;
    }

  let reset t =
    t.gen <- t.gen + 1;
    t.used <- 0

  let hash t key = (key * 0x9E3779B1) land t.mask

  (* The probe loops live at top level with every piece of state passed as
     an argument: an inner [let rec] capturing locals would allocate a fresh
     closure on each call (no flambda here), and these two run once per
     sandboxed load/store — the simulator's hottest allocation site before
     they were hoisted. *)
  let rec find_probe gens keys gen key mask i =
    if Array.unsafe_get gens i <> gen then -1
    else if Array.unsafe_get keys i = key then i
    else find_probe gens keys gen key mask ((i + 1) land mask)

  (* Slot index of [key], or -1. *)
  let find t key =
    find_probe t.gens t.keys t.gen key t.mask (hash t key)

  let rec set_probe t key v i =
    if t.gens.(i) <> t.gen then begin
      t.gens.(i) <- t.gen;
      t.keys.(i) <- key;
      t.vals.(i) <- v;
      t.used <- t.used + 1;
      true
    end
    else if t.keys.(i) = key then begin
      t.vals.(i) <- v;
      false
    end
    else set_probe t key v ((i + 1) land t.mask)

  let rec grow t =
    let okeys = t.keys and ovals = t.vals and ogens = t.gens and ogen = t.gen in
    let cap = 2 * (t.mask + 1) in
    t.keys <- Array.make cap 0;
    t.vals <- Array.make cap 0;
    t.gens <- Array.make cap 0;
    t.mask <- cap - 1;
    t.gen <- 1;
    t.used <- 0;
    Array.iteri
      (fun i g -> if g = ogen then ignore (set t okeys.(i) ovals.(i)))
      ogens

  (* Insert or overwrite; returns [true] when [key] was not yet present. *)
  and set t key v =
    if 2 * t.used > t.mask then grow t;
    set_probe t key v (hash t key)
end

(* Two sandboxing mechanisms:
   - [Overlay]: the hardware scheme — writes buffered in versioned L1 lines,
     discarded at squash; bounded by the L1's line capacity. The buffer is a
     flat generation-stamped store plus a first-write journal (for commit
     iteration), both sized from the line limit — no per-spawn allocation.
   - [Write_log]: the software scheme (PIN-based PathExpander) — writes go
     straight to memory while an undo log records the old values, replayed
     backwards at squash. Unbounded, but every write pays logging work. *)
type sandbox_kind =
  | Overlay of {
      store : Itab.t;  (* addr -> buffered value *)
      lines : Itab.t;  (* dirty line index -> () ; [used] is the count *)
      journal : int Vec.t;  (* distinct written addrs, first-write order *)
      line_limit : int;
      words_per_line : int;
      line_shift : int;  (* log2 words_per_line, or -1 *)
    }
  | Write_log of { mutable log : (int * int) list; mutable log_size : int }

type sandbox = {
  kind : sandbox_kind;
  mutable watch_journal : Watchpoints.journal_entry list;
  mutable path_id : int;
  (* Spawn provenance, carried so reports filed inside the path can name
     the branch edge that created it (-1 / false until set). *)
  mutable spawn_pc : int;
  mutable spawn_edge : bool;
}

type t = {
  regs : int array;
  mutable pc : int;
  mutable pred : bool;
  mutable in_pred_fix : bool;
      (* currently executing a predicated consistency-fix instruction:
         its stores are PathExpander's, not the program's *)
  mutable sandbox : sandbox option;
  stats : stats;
  mutable l1 : Cache.t;
  (* Scratch fields the interpreter fills when [Cpu.step] returns
     [Ev_branch], so the per-branch event carries no allocation; the
     fallthrough is always [br_pc + 1]. *)
  mutable br_pc : int;
  mutable br_taken : bool;
  mutable br_target : int;
}

type checkpoint = { saved_regs : int array; saved_pc : int; saved_pred : bool }

let create ~l1 ~pc ~sp =
  let regs = Array.make Reg.count 0 in
  regs.(Reg.sp) <- sp;
  regs.(Reg.fp) <- sp;
  {
    regs;
    pc;
    pred = false;
    in_pred_fix = false;
    sandbox = None;
    stats = fresh_stats ();
    l1;
    br_pc = 0;
    br_taken = false;
    br_target = 0;
  }

(* Re-aim a pooled context at a fresh spawn: zero statistics, clear the
   predicate machinery, detach any sandbox and retarget the L1. The caller
   still blits the spawning core's registers. *)
let reset_for_spawn ctx ~l1 ~pc =
  ctx.pc <- pc;
  ctx.pred <- false;
  ctx.in_pred_fix <- false;
  ctx.sandbox <- None;
  ctx.l1 <- l1;
  let s = ctx.stats in
  s.insns <- 0;
  s.cycles <- 0;
  s.loads <- 0;
  s.stores <- 0;
  s.branches <- 0

let get_reg ctx r = if r = Reg.zero then 0 else ctx.regs.(r)

let set_reg ctx r v = if r <> Reg.zero then ctx.regs.(r) <- v

let checkpoint ctx =
  { saved_regs = Array.copy ctx.regs; saved_pc = ctx.pc; saved_pred = ctx.pred }

let restore ctx cp =
  Array.blit cp.saved_regs 0 ctx.regs 0 Reg.count;
  ctx.pc <- cp.saved_pc;
  ctx.pred <- cp.saved_pred

let log2_pow2 n =
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  if n > 0 && n land (n - 1) = 0 then go n 0 else -1

let make_sandbox ~path_id ~line_limit ~words_per_line =
  (* A path squashes as soon as it dirties line_limit + 1 lines, so the
     store never holds more than (line_limit + 1) * words_per_line words;
     double that for an at-most-half-full table. *)
  {
    kind =
      Overlay
        {
          store = Itab.create (2 * (line_limit + 2) * words_per_line);
          lines = Itab.create (2 * (line_limit + 2));
          journal = Vec.create ~dummy:0;
          line_limit;
          words_per_line;
          line_shift = log2_pow2 words_per_line;
        };
    path_id;
    watch_journal = [];
    spawn_pc = -1;
    spawn_edge = false;
  }

let make_write_log_sandbox ~path_id =
  {
    kind = Write_log { log = []; log_size = 0 };
    path_id;
    watch_journal = [];
    spawn_pc = -1;
    spawn_edge = false;
  }

(* Recycle a sandbox for the next spawn: O(1) for overlays (generation
   bump), so pooling beats per-spawn allocation. *)
let reset_sandbox sandbox ~path_id =
  sandbox.path_id <- path_id;
  sandbox.watch_journal <- [];
  sandbox.spawn_pc <- -1;
  sandbox.spawn_edge <- false;
  match sandbox.kind with
  | Overlay o ->
    Itab.reset o.store;
    Itab.reset o.lines;
    Vec.clear o.journal
  | Write_log wl ->
    wl.log <- [];
    wl.log_size <- 0

let enter_sandbox ctx sandbox = ctx.sandbox <- Some sandbox

let exit_sandbox ctx = ctx.sandbox <- None

let is_sandboxed ctx = match ctx.sandbox with Some _ -> true | None -> false

let path_id ctx =
  match ctx.sandbox with Some sb -> sb.path_id | None -> Cache.committed_owner

let sandbox_path_id sandbox = sandbox.path_id

let set_spawn_info sandbox ~br_pc ~edge =
  sandbox.spawn_pc <- br_pc;
  sandbox.spawn_edge <- edge

let sandbox_spawn_pc sandbox = sandbox.spawn_pc
let sandbox_spawn_edge sandbox = sandbox.spawn_edge

(* A sandboxed read sees the path's own buffered version first. *)
let sandbox_read sandbox mem addr =
  match sandbox.kind with
  | Overlay o ->
    let i = Itab.find o.store addr in
    if i >= 0 then Array.unsafe_get o.store.Itab.vals i else Memory.read mem addr
  | Write_log _ -> Memory.read mem addr

(* A sandboxed write; returns [false] when an overlay write pushed the path
   past its L1 buffering capacity (overflow => the path must squash). *)
let sandbox_write sandbox mem addr v =
  match sandbox.kind with
  | Overlay o ->
    Memory.check mem addr;
    if Itab.set o.store addr v then Vec.push o.journal addr;
    let line =
      if o.line_shift >= 0 && addr >= 0 then addr lsr o.line_shift
      else addr / o.words_per_line
    in
    ignore (Itab.set o.lines line 0);
    o.lines.Itab.used <= o.line_limit
  | Write_log wl ->
    let old = Memory.read mem addr in
    wl.log <- (addr, old) :: wl.log;
    wl.log_size <- wl.log_size + 1;
    Memory.write mem addr v;
    true

let read_mem ctx mem addr =
  match ctx.sandbox with
  | Some sb -> sandbox_read sb mem addr
  | None -> Memory.read mem addr

let dirty_line_count sandbox =
  match sandbox.kind with
  | Overlay o -> o.lines.Itab.used
  | Write_log _ -> 0

let write_log_size sandbox =
  match sandbox.kind with
  | Overlay _ -> 0
  | Write_log wl -> wl.log_size

(* Undo a write-log sandbox: replay the restore-log backwards. *)
let rollback_write_log sandbox mem =
  match sandbox.kind with
  | Overlay _ -> ()
  | Write_log wl ->
    List.iter (fun (addr, old) -> Memory.write mem addr old) wl.log;
    wl.log <- [];
    wl.log_size <- 0

(* Commit a sandbox's buffered writes to architectural memory (used only by
   taken-path segments in the CMP engine; NT-Paths are always discarded). *)
let commit_sandbox sandbox mem =
  match sandbox.kind with
  | Overlay o ->
    Vec.iteri
      (fun _ addr ->
        let i = Itab.find o.store addr in
        if i >= 0 then Memory.write mem addr o.store.Itab.vals.(i))
      o.journal
  | Write_log _ -> ()

let journal_watch sandbox entry =
  sandbox.watch_journal <- entry :: sandbox.watch_journal

let undo_watches sandbox watch_unit =
  List.iter (Watchpoints.undo watch_unit) sandbox.watch_journal;
  sandbox.watch_journal <- []

(** Branch target buffer with per-edge exercise counters.

    The paper's only addition to the front end: each BTB entry carries two
    4-bit saturating counters recording how often each edge (taken-target and
    fallthrough) of the branch has been executed. PathExpander spawns an
    NT-Path on a non-taken edge whose counter is below the threshold; a BTB
    miss reads as zero counters. Counters are periodically reset (the
    [CounterResetInterval] policy lives in the PathExpander engine). *)

type t

(** Counter width in bits (4). *)
val counter_bits : int

val create : entries:int -> assoc:int -> t

(** [counts btb pc] is [(taken_edge_count, nontaken_edge_count)] for the
    branch at [pc]; [(0, 0)] on a BTB miss. Counts as a lookup. *)
val counts : t -> int -> int * int

(** [exercise btb pc ~taken] increments (saturating) the executed edge's
    counter, allocating an entry on miss (LRU victim within the set). *)
val exercise : t -> int -> taken:bool -> unit

(** Side-effect-free counter read: [(taken, nontaken)] counts if the branch
    has a valid entry, [None] on a miss. Unlike {!counts} this performs no
    lookup accounting and no LRU touch, so the selective fast tier can test
    the spawn predicate before deciding whether to commit BTB state. *)
val probe_counts : t -> int -> (int * int) option

(** [lookup_exercise btb pc ~taken] is observationally identical to
    [ignore (counts btb pc); exercise btb pc ~taken] — same lookup/miss
    accounting, same net LRU-clock advance, same final entry state — but
    with a single associative search. The fast tier uses it for branches the
    spawn predicate rejected. *)
val lookup_exercise : t -> int -> taken:bool -> unit

(** [probe_exercise btb pc ~taken ~threshold] fuses the fast tier's spawn
    test with the counter update in one associative search: returns [true]
    — with the BTB untouched, as {!probe_counts} would leave it — when the
    branch misses the BTB or its forced edge's counter is below [threshold]
    (a spawn candidate, deferred to the instrumented tier); otherwise
    commits exactly {!lookup_exercise}'s effect and returns [false]. *)
val probe_exercise : t -> int -> taken:bool -> threshold:int -> bool

(** Zero every counter ([CounterResetInterval] expiry). *)
val reset_counters : t -> unit

val lookups : t -> int
val miss_count : t -> int

(** Total entry capacity. *)
val entry_count : t -> int

(** Entries currently valid. *)
val valid_entries : t -> int

(** Valid entries with both edge counters pinned at the 4-bit maximum —
    branches whose counters can no longer discriminate cold edges. *)
val saturated_entries : t -> int

(** Record lookups, misses, miss rate, occupancy and counter saturation
    into [sink] under [prefix]-qualified names (e.g. ["btb.saturation"]). *)
val record_telemetry : t -> Telemetry.t -> prefix:string -> unit

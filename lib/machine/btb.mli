(** Branch target buffer with per-edge exercise counters.

    The paper's only addition to the front end: each BTB entry carries two
    4-bit saturating counters recording how often each edge (taken-target and
    fallthrough) of the branch has been executed. PathExpander spawns an
    NT-Path on a non-taken edge whose counter is below the threshold; a BTB
    miss reads as zero counters. Counters are periodically reset (the
    [CounterResetInterval] policy lives in the PathExpander engine). *)

type t

(** Counter width in bits (4). *)
val counter_bits : int

val create : entries:int -> assoc:int -> t

(** [counts btb pc] is [(taken_edge_count, nontaken_edge_count)] for the
    branch at [pc]; [(0, 0)] on a BTB miss. Counts as a lookup. *)
val counts : t -> int -> int * int

(** [exercise btb pc ~taken] increments (saturating) the executed edge's
    counter, allocating an entry on miss (LRU victim within the set). *)
val exercise : t -> int -> taken:bool -> unit

(** Zero every counter ([CounterResetInterval] expiry). *)
val reset_counters : t -> unit

val lookups : t -> int
val miss_count : t -> int

(** Total entry capacity. *)
val entry_count : t -> int

(** Entries currently valid. *)
val valid_entries : t -> int

(** Valid entries with both edge counters pinned at the 4-bit maximum —
    branches whose counters can no longer discriminate cold edges. *)
val saturated_entries : t -> int

(** Record lookups, misses, miss rate, occupancy and counter saturation
    into [sink] under [prefix]-qualified names (e.g. ["btb.saturation"]). *)
val record_telemetry : t -> Telemetry.t -> prefix:string -> unit

(* Constant folding and partial evaluation (O1+), bottom-up over
   expressions plus literal-condition statement simplification.

   Arithmetic on literals is evaluated with the ISA's own semantics
   ([Insn.eval_binop] / [Insn.eval_cmp]) so a folded result is exactly what
   the interpreter would have computed — including shift masking and word
   wrap-around. Division and modulo by a literal zero are *not* folded
   ([eval_binop] returns [None]): the expression is left in place so the
   runtime fault still happens.

   Algebraic identities that drop an operand ([x * 0], [e && 0]) apply only
   when the dropped side is pure ([Tast.is_pure]); identities that merely
   drop a literal ([x + 0]) are always sound. Short-circuit positions
   ([0 && e], [k || e], [c ? a : b] with literal [c]) may drop the
   unevaluated side unconditionally, since the source semantics never
   evaluates it. [assert] statements are simplified inside but never
   removed, so assertion sites (and their reports) survive folding. *)

let lit_of (e : Tast.texpr) n = { e with Tast.tdesc = Tast.Tint_lit n }

let imm (e : Tast.texpr) =
  match e.Tast.tdesc with Tast.Tint_lit n -> Some n | _ -> None

let bool_lit e b = lit_of e (if b then 1 else 0)

(* [e != 0] — the value-position residue of a half-folded && / ||. *)
let as_bool (outer : Tast.texpr) (e : Tast.texpr) =
  {
    outer with
    Tast.tdesc = Tast.Tbinop (Ast.Ne, e, { e with Tast.tdesc = Tast.Tint_lit 0 });
  }

let rec fold_expr (e : Tast.texpr) : Tast.texpr =
  let e =
    let d = e.Tast.tdesc in
    let d' =
      match d with
      | Tast.Tint_lit _ | Tast.Tstr_addr _ | Tast.Tvar _ -> d
      | Tast.Tunop (op, a) -> Tast.Tunop (op, fold_expr a)
      | Tast.Tbinop (op, a, b) -> Tast.Tbinop (op, fold_expr a, fold_expr b)
      | Tast.Tptr_add (a, b, s) -> Tast.Tptr_add (fold_expr a, fold_expr b, s)
      | Tast.Tptr_diff (a, b, s) -> Tast.Tptr_diff (fold_expr a, fold_expr b, s)
      | Tast.Tassign (a, b) -> Tast.Tassign (fold_expr a, fold_expr b)
      | Tast.Tcall_fn (n, args) -> Tast.Tcall_fn (n, List.map fold_expr args)
      | Tast.Tcall_builtin (b, args) ->
        Tast.Tcall_builtin (b, List.map fold_expr args)
      | Tast.Tindex (a, b, s) -> Tast.Tindex (fold_expr a, fold_expr b, s)
      | Tast.Tderef a -> Tast.Tderef (fold_expr a)
      | Tast.Taddr a -> Tast.Taddr (fold_expr a)
      | Tast.Tfield (a, f) -> Tast.Tfield (fold_expr a, f)
      | Tast.Tarrow (a, f) -> Tast.Tarrow (fold_expr a, f)
      | Tast.Tcond (c, a, b) ->
        Tast.Tcond (fold_expr c, fold_expr a, fold_expr b)
    in
    { e with Tast.tdesc = d' }
  in
  match e.Tast.tdesc with
  | Tast.Tunop (op, a) ->
    (match imm a with
     | Some n ->
       lit_of e
         (match op with
          | Ast.Neg -> -n
          | Ast.Bnot -> lnot n
          | Ast.Lnot -> if n = 0 then 1 else 0)
     | None -> e)
  | Tast.Tbinop (Ast.Land, a, b) ->
    (match (imm a, imm b) with
     | Some 0, _ -> lit_of e 0  (* b never evaluated *)
     | Some _, Some n -> bool_lit e (n <> 0)
     | Some _, None -> as_bool e b
     | None, Some 0 when Tast.is_pure a -> lit_of e 0
     | None, Some n when n <> 0 -> as_bool e a
     | _ -> e)
  | Tast.Tbinop (Ast.Lor, a, b) ->
    (match (imm a, imm b) with
     | Some n, _ when n <> 0 -> lit_of e 1  (* b never evaluated *)
     | Some _, Some n -> bool_lit e (n <> 0)
     | Some _, None -> as_bool e b
     | None, Some n when n <> 0 && Tast.is_pure a -> lit_of e 1
     | None, Some 0 -> as_bool e a
     | _ -> e)
  | Tast.Tbinop (op, a, b) ->
    (match (imm a, imm b) with
     | Some x, Some y ->
       (match Instr_select.insn_binop_of_ast op with
        | Some iop ->
          (match Insn.eval_binop iop x y with
           | Some v -> lit_of e v
           | None -> e  (* division/modulo by zero: keep the fault *))
        | None ->
          (match Instr_select.insn_cmp_of_ast op with
           | Some c -> bool_lit e (Insn.eval_cmp c x y)
           | None -> e))
     | _ -> fold_identities e op a b)
  | Tast.Tcond (c, a, b) ->
    (match imm c with Some n -> if n <> 0 then a else b | None -> e)
  | _ -> e

and fold_identities e op a b =
  let pure = Tast.is_pure in
  match (op, imm a, imm b) with
  | Ast.Add, _, Some 0 | Ast.Sub, _, Some 0 -> a
  | Ast.Add, Some 0, _ -> b
  | Ast.Mul, _, Some 1 | Ast.Div, _, Some 1 -> a
  | Ast.Mul, Some 1, _ -> b
  | Ast.Mul, _, Some 0 when pure a -> lit_of e 0
  | Ast.Mul, Some 0, _ when pure b -> lit_of e 0
  | Ast.Band, _, Some 0 when pure a -> lit_of e 0
  | Ast.Band, Some 0, _ when pure b -> lit_of e 0
  | Ast.Band, _, Some -1 -> a
  | Ast.Band, Some -1, _ -> b
  | Ast.Bor, _, Some 0 | Ast.Bxor, _, Some 0 -> a
  | Ast.Bor, Some 0, _ | Ast.Bxor, Some 0, _ -> b
  | Ast.Shl, _, Some 0 | Ast.Shr, _, Some 0 -> a
  | _ -> e

let rec fold_stmts stmts = List.concat_map fold_stmt stmts

and fold_stmt (s : Tast.tstmt) : Tast.tstmt list =
  let mk d = { s with Tast.tsdesc = d } in
  match s.Tast.tsdesc with
  | Tast.TSexpr e -> [ mk (Tast.TSexpr (fold_expr e)) ]
  | Tast.TSif (c, then_s, else_s) ->
    let c = fold_expr c in
    (match imm c with
     | Some n -> fold_stmts (if n <> 0 then then_s else else_s)
     | None -> [ mk (Tast.TSif (c, fold_stmts then_s, fold_stmts else_s)) ])
  | Tast.TSwhile (c, body) ->
    let c = fold_expr c in
    (match imm c with
     | Some 0 -> []
     | _ -> [ mk (Tast.TSwhile (c, fold_stmts body)) ])
  | Tast.TSfor (init, cond, step, body) ->
    let init = Option.map fold_expr init in
    let cond = Option.map fold_expr cond in
    let step = Option.map fold_expr step in
    (match Option.map imm cond with
     | Some (Some 0) ->
       (* loop never entered: keep the init expression's effects *)
       (match init with Some e -> [ mk (Tast.TSexpr e) ] | None -> [])
     | _ -> [ mk (Tast.TSfor (init, cond, step, fold_stmts body)) ])
  | Tast.TSreturn e -> [ mk (Tast.TSreturn (Option.map fold_expr e)) ]
  | Tast.TSassert e -> [ mk (Tast.TSassert (fold_expr e)) ]
  | Tast.TSbreak | Tast.TScontinue -> [ s ]
  | Tast.TSblock body -> [ mk (Tast.TSblock (fold_stmts body)) ]

let run (tp : Tast.tprogram) =
  {
    tp with
    Tast.tp_funcs =
      List.map
        (fun f -> { f with Tast.tf_body = fold_stmts f.Tast.tf_body })
        tp.Tast.tp_funcs;
  }

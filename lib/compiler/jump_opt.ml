(* Assembly-level jump optimization over [Asmprog.t]:

   - *threading*: a [Jmp]/[Br] whose target instruction is itself an
     unconditional [Jmp] is retargeted at the final destination of the
     chain (cycle-safe, so [while(1);] survives);

   - *jump-to-next compaction*: a [Jmp] targeting the immediately following
     pc is deleted and the code compacted, with every pc-keyed side table
     (labels, user branches, function starts, user ranges, fix atoms,
     source lines) remapped through the kept-instruction prefix sum.

   Both transforms preserve NT-Path semantics. Branches are never moved or
   deleted, so branch pcs, BTB counters and edge-coverage accounting keep
   their meaning; fix stubs begin with [Pred]/[Clearpred] instructions, so
   threading can only collapse the *unpredicated* jump chains around them,
   and an NT-Path entering an edge observes the same machine state either
   way. The non-taken spawn entry [br_pc + 1] is positional and stays valid
   because the instruction after a branch (the false stub's head) is never a
   jump-to-next by construction. *)

let thread_round (ap : Asmprog.t) =
  let changed = ref false in
  let code = ap.Asmprog.code in
  let final_label l0 =
    let rec follow l visited =
      if List.mem l visited then l0
      else
        match Hashtbl.find_opt ap.Asmprog.labels l with
        | None -> l
        | Some target_pc ->
          if target_pc < Array.length code then
            match code.(target_pc) with
            | Insn.Jmp t ->
              (match Asmprog.label_of_ref t with
               | Some l' -> follow l' (l :: visited)
               | None -> l)
            | _ -> l
          else l
    in
    follow l0 []
  in
  let retarget t =
    match Asmprog.label_of_ref t with
    | Some l ->
      let l' = final_label l in
      if l' <> l then begin
        changed := true;
        Asmprog.lref l'
      end
      else t
    | None -> t
  in
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Jmp t -> code.(i) <- Insn.Jmp (retarget t)
      | Insn.Br (c, rs, rt, t) -> code.(i) <- Insn.Br (c, rs, rt, retarget t)
      | _ -> ())
    code;
  !changed

let compact_round (ap : Asmprog.t) =
  let n = Array.length ap.Asmprog.code in
  let keep = Array.make n true in
  let target_pc t =
    match Asmprog.label_of_ref t with
    | Some l -> Hashtbl.find_opt ap.Asmprog.labels l
    | None -> Some t
  in
  let removed = ref 0 in
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Jmp t when target_pc t = Some (i + 1) ->
        keep.(i) <- false;
        incr removed
      | _ -> ())
    ap.Asmprog.code;
  if !removed = 0 then (ap, false)
  else begin
    (* newpc.(i) = number of kept instructions before i; a label or table
       entry on a removed pc lands on the next kept instruction. *)
    let newpc = Array.make (n + 1) 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      newpc.(i) <- !k;
      if keep.(i) then incr k
    done;
    newpc.(n) <- !k;
    let code = Array.make !k Insn.Nop in
    for i = 0 to n - 1 do
      if keep.(i) then code.(newpc.(i)) <- ap.Asmprog.code.(i)
    done;
    let labels = Hashtbl.create (max 16 (Hashtbl.length ap.Asmprog.labels)) in
    Hashtbl.iter
      (fun l label_pc -> Hashtbl.replace labels l newpc.(label_pc))
      ap.Asmprog.labels;
    let remap p = newpc.(p) in
    let source_lines =
      (* When a line's only instruction is removed, its entry collapses onto
         the next line's start pc; the later entry wins. *)
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (p, line) -> Hashtbl.replace tbl (remap p) line)
        ap.Asmprog.source_lines;
      Hashtbl.fold (fun p line acc -> (p, line) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    ( {
        ap with
        Asmprog.code;
        labels;
        user_branches = List.map remap ap.Asmprog.user_branches;
        functions = List.map (fun (nm, p) -> (nm, remap p)) ap.Asmprog.functions;
        user_ranges =
          List.map (fun (a, b) -> (remap a, remap b)) ap.Asmprog.user_ranges;
        fix_atoms = List.map (fun (p, fa) -> (remap p, fa)) ap.Asmprog.fix_atoms;
        source_lines;
      },
      true )
  end

(* Alternate threading and compaction to a fixpoint (each enables more of
   the other); four rounds always suffice in practice and bound the pass. *)
let run (ap : Asmprog.t) : Asmprog.t =
  let ap = ref { ap with Asmprog.code = Array.copy ap.Asmprog.code } in
  let continue_ = ref true in
  let rounds = ref 0 in
  while !continue_ && !rounds < 4 do
    incr rounds;
    let threaded = thread_round !ap in
    let ap', compacted = compact_round !ap in
    ap := ap';
    continue_ := threaded || compacted
  done;
  !ap

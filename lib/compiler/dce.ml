(* Dead-code elimination (O1+) at the statement level:

   - statements following an unconditional [return] / [break] / [continue]
     in the same list are unreachable and dropped;
   - a statement-position expression with no effects ([Tast.is_pure]) is
     dropped, as are pure [for] init/step components;
   - an [if] whose branches emptied out and whose condition is pure
     disappears entirely (its branch would otherwise still execute).

   Purity is deliberately strict — memory reads count as effects because a
   detector may be watching them (see [Tast.is_pure]), so DCE never deletes
   a potential bug report. *)

let terminates (s : Tast.tstmt) =
  match s.Tast.tsdesc with
  | Tast.TSreturn _ | Tast.TSbreak | Tast.TScontinue -> true
  | _ -> false

let rec clean_list stmts =
  match stmts with
  | [] -> []
  | s :: rest ->
    (match clean_stmt s with
     | None -> clean_list rest
     | Some s' -> if terminates s' then [ s' ] else s' :: clean_list rest)

and clean_stmt (s : Tast.tstmt) : Tast.tstmt option =
  let mk d = Some { s with Tast.tsdesc = d } in
  match s.Tast.tsdesc with
  | Tast.TSexpr e -> if Tast.is_pure e then None else Some s
  | Tast.TSif (c, then_s, else_s) ->
    let then_s = clean_list then_s and else_s = clean_list else_s in
    if then_s = [] && else_s = [] && Tast.is_pure c then None
    else mk (Tast.TSif (c, then_s, else_s))
  | Tast.TSwhile (c, body) -> mk (Tast.TSwhile (c, clean_list body))
  | Tast.TSfor (init, cond, step, body) ->
    let drop_pure = function
      | Some e when Tast.is_pure e -> None
      | x -> x
    in
    mk (Tast.TSfor (drop_pure init, cond, drop_pure step, clean_list body))
  | Tast.TSblock body ->
    (match clean_list body with
     | [] -> None
     | body -> mk (Tast.TSblock body))
  | Tast.TSreturn _ | Tast.TSbreak | Tast.TScontinue | Tast.TSassert _ -> Some s

let run (tp : Tast.tprogram) =
  {
    tp with
    Tast.tp_funcs =
      List.map
        (fun f -> { f with Tast.tf_body = clean_list f.Tast.tf_body })
        tp.Tast.tp_funcs;
  }

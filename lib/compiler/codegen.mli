(** Compatibility facade over the nanopass MiniC pipeline (see {!Pipeline}),
    re-exporting the code generator's historical public surface.

    {b Consistency fixing} (Section 4.4): every conditional branch is laid
    out with a stub at the head of each edge. The stub holds *predicated*
    instructions that repair the branch's condition variable to a boundary
    value consistent with that edge (null pointers are redirected to the
    per-type blank structures), followed by [Clearpred]. The predicate
    register is set only by an NT-Path spawn landing on the stub, so on the
    taken path the stubs retire as NOPs. Branch-taken targets point at the
    true stub and the fallthrough is the false stub, which is exactly where
    the engine redirects a forced edge.

    {b Detector instrumentation}: CCured-style bounds/null checks, iWatcher
    red-zone watch registration (globals at the entry stub, locals in
    prologues/epilogues, heap blocks via the prelude), or assertion
    lowering. All checks compile branch-free (through [Checkz]) so checking
    code never perturbs branch statistics and PathExpander never spawns
    inside a checker — the paper's integration requirement. *)

exception Error of string * int  (** message, line *)

type detector = Instr_select.detector =
  | No_detector
  | Ccured
  | Iwatcher
  | Assertions

val detector_name : detector -> string

type options = Instr_select.options = {
  detector : detector;
  fixing : bool;  (** emit the predicated consistency-fix stubs *)
}

(** No detector, fixing on. *)
val default_options : options

(** Boundary value satisfying [v cmp k] — what the fix pins a condition
    variable to (e.g. the true edge of [x < 5] pins [x] to 4). *)
val boundary_value : Insn.cmp -> int -> int

(** Generate an executable image from a typed program via the nanopass
    pipeline; the result is validated before being returned. [level]
    defaults to the process-wide {!Opt.default_level} (normally [O0], the
    emission byte-identical to the historical single-pass generator).
    [dump] receives each executed pass's name and pretty-printed output. *)
val generate :
  ?options:options ->
  ?level:Opt.level ->
  ?dump:(string -> string -> unit) ->
  Tast.tprogram ->
  Program.t

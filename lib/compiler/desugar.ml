(* Desugaring (O1+): normalize the typed AST so later passes see fewer
   shapes — bare blocks are flattened into their enclosing statement list
   (storage is already resolved, so block structure carries no scoping
   information), and [if (!c)] is rewritten to [if (c)] with the branches
   swapped (repeatedly, so [!!c] normalizes too). *)

let rec strip_not c then_s else_s =
  match c.Tast.tdesc with
  | Tast.Tunop (Ast.Lnot, c') -> strip_not c' else_s then_s
  | _ -> (c, then_s, else_s)

let rec flatten_stmts stmts = List.concat_map flatten_stmt stmts

and flatten_stmt (s : Tast.tstmt) =
  match s.Tast.tsdesc with
  | Tast.TSblock body -> flatten_stmts body
  | Tast.TSif (c, then_s, else_s) ->
    let c, then_s, else_s = strip_not c then_s else_s in
    [ { s with Tast.tsdesc = Tast.TSif (c, flatten_stmts then_s, flatten_stmts else_s) } ]
  | Tast.TSwhile (c, body) ->
    [ { s with Tast.tsdesc = Tast.TSwhile (c, flatten_stmts body) } ]
  | Tast.TSfor (init, cond, step, body) ->
    [ { s with Tast.tsdesc = Tast.TSfor (init, cond, step, flatten_stmts body) } ]
  | Tast.TSexpr _ | Tast.TSreturn _ | Tast.TSbreak | Tast.TScontinue
  | Tast.TSassert _ ->
    [ s ]

let run (tp : Tast.tprogram) =
  {
    tp with
    Tast.tp_funcs =
      List.map
        (fun f -> { f with Tast.tf_body = flatten_stmts f.Tast.tf_body })
        tp.Tast.tp_funcs;
  }

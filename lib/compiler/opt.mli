(** Optimization levels for the nanopass MiniC pipeline.

    [O0] runs instruction selection and label lowering only and is
    byte-identical to the historical single-pass code generator — the house
    determinism anchor. [O1] adds desugaring, constant folding, dead-code
    elimination, unused-function removal, immediate-operand selection and
    jump optimization. [O2] additionally allocates hot scalar locals to
    machine registers. Every level is deterministic. *)

type level = O0 | O1 | O2

val to_string : level -> string

(** Accepts ["0"], ["O0"], ["o0"] (same for 1 and 2). *)
val of_string : string -> level option

(** [at_least lv floor] — level ordering O0 < O1 < O2. *)
val at_least : level -> level -> bool

(** Process-wide default level used when a compilation does not pin one
    (mirrors [Pe_config.selective_enabled]). Starts at [O0]. *)
val set_default : level -> unit

val default_level : unit -> level

exception Error of string * int

let error line fmt = Printf.ksprintf (fun s -> raise (Error (s, line))) fmt

type struct_info = { s_fields : Tast.field_info list; s_size : int }

type fn_sig = { fs_ret : Ast.ty; fs_params : Ast.ty list; fs_runtime : bool }

(* Words of red zone allocated after every top-level array; iWatcher's
   overrun watchpoints cover it. *)
let redzone_words = 2

(* Size of the generic blank buffer NT-Path fixing points int/char pointers
   at. *)
let generic_blank_words = 64

type env = {
  structs : (string, struct_info) Hashtbl.t;
  funcs : (string, fn_sig) Hashtbl.t;
  globals : (string, Tast.var_ref) Hashtbl.t;
  strings : (string, int) Hashtbl.t;
  mutable next_global : int;
  mutable init_data : (int * int) list;
  mutable global_arrays : Tast.global_array list;
  mutable blanks : (string * int) list;
  mutable scopes : (string, Tast.var_ref) Hashtbl.t list;
  mutable frame_next : int;
  mutable local_arrays : Tast.local_array list;
  mutable current_ret : Ast.ty;
}

let create_env () =
  {
    structs = Hashtbl.create 16;
    funcs = Hashtbl.create 64;
    globals = Hashtbl.create 64;
    strings = Hashtbl.create 64;
    next_global = Program.null_guard_words + 1;
    (* the first global word is __heap_ptr, the runtime allocator's break *)
    init_data = [];
    global_arrays = [];
    blanks = [];
    scopes = [];
    frame_next = 1;
    local_arrays = [];
    current_ret = Ast.Tvoid;
  }

let rec sizeof env line ty =
  match ty with
  | Ast.Tint | Ast.Tptr _ -> 1
  | Ast.Tstruct name ->
    (match Hashtbl.find_opt env.structs name with
     | Some info -> info.s_size
     | None -> error line "unknown struct '%s'" name)
  | Ast.Tarray (elt, n) ->
    if n < 0 then error line "array size required";
    n * sizeof env line elt
  | Ast.Tvoid -> error line "sizeof(void)"

let struct_info env line name =
  match Hashtbl.find_opt env.structs name with
  | Some info -> info
  | None -> error line "unknown struct '%s'" name

let field_of env line struct_name fname =
  let info = struct_info env line struct_name in
  match
    List.find_opt (fun f -> f.Tast.f_name = fname) info.s_fields
  with
  | Some f -> f
  | None -> error line "struct '%s' has no field '%s'" struct_name fname

let define_struct env name fields line =
  if Hashtbl.mem env.structs name then error line "duplicate struct '%s'" name;
  let offset = ref 0 in
  let mk_field (ty, fname) =
    let f = { Tast.f_name = fname; f_offset = !offset; f_ty = ty } in
    offset := !offset + sizeof env line ty;
    f
  in
  let tfields = List.map mk_field fields in
  Hashtbl.replace env.structs name { s_fields = tfields; s_size = !offset }

(* Globals: arrays get [redzone_words] of guard space right after their
   payload. *)
let alloc_global env line ty name =
  let addr = env.next_global in
  let payload = sizeof env line ty in
  let extra = match ty with Ast.Tarray _ -> redzone_words | _ -> 0 in
  env.next_global <- env.next_global + payload + extra;
  let vr = { Tast.vr_name = name; vr_ty = ty; vr_storage = Tast.Global addr } in
  (match ty with
   | Ast.Tarray _ ->
     env.global_arrays <-
       { Tast.ga_ref = vr; ga_elems = payload; ga_line = line }
       :: env.global_arrays
   | _ -> ());
  Hashtbl.replace env.globals name vr;
  vr

let intern_string env s =
  match Hashtbl.find_opt env.strings s with
  | Some addr -> addr
  | None ->
    let addr = env.next_global in
    env.next_global <- env.next_global + String.length s + 1;
    String.iteri
      (fun i c -> env.init_data <- (addr + i, Char.code c) :: env.init_data)
      s;
    env.init_data <- (addr + String.length s, 0) :: env.init_data;
    Hashtbl.replace env.strings s addr;
    addr

let alloc_local env line ty name =
  let payload = sizeof env line ty in
  let extra = match ty with Ast.Tarray _ -> redzone_words | _ -> 0 in
  let words = payload + extra in
  let off = -(env.frame_next + words - 1) in
  env.frame_next <- env.frame_next + words;
  let vr = { Tast.vr_name = name; vr_ty = ty; vr_storage = Tast.Local off } in
  (match ty with
   | Ast.Tarray _ ->
     env.local_arrays <- { Tast.la_ref = vr; la_elems = payload } :: env.local_arrays
   | _ -> ());
  (match env.scopes with
   | scope :: _ -> Hashtbl.replace scope name vr
   | [] -> error line "local declaration outside a function");
  vr

let lookup_var env line name =
  let rec search = function
    | scope :: rest ->
      (match Hashtbl.find_opt scope name with
       | Some vr -> Some vr
       | None -> search rest)
    | [] -> Hashtbl.find_opt env.globals name
  in
  match search env.scopes with
  | Some vr -> vr
  | None -> error line "unbound variable '%s'" name

let builtin_of_name = function
  | "putc" -> Some (Tast.B_putc, 1, Ast.Tvoid)
  | "getc" -> Some (Tast.B_getc, 0, Ast.Tint)
  | "print_int" -> Some (Tast.B_print_int, 1, Ast.Tvoid)
  | "exit" -> Some (Tast.B_exit, 1, Ast.Tvoid)
  | "__watch_region" -> Some (Tast.B_watch_region, 2, Ast.Tvoid)
  | "__unwatch_region" -> Some (Tast.B_unwatch_region, 2, Ast.Tvoid)
  | _ -> None

(* The type an expression has when its value is taken: arrays decay to
   pointers. *)
let decay = function Ast.Tarray (elt, _) -> Ast.Tptr elt | ty -> ty

let is_scalar = function
  | Ast.Tint | Ast.Tptr _ -> true
  | Ast.Tarray _ | Ast.Tstruct _ | Ast.Tvoid -> false

let mk tdesc ety eline : Tast.texpr = { Tast.tdesc; ety; eline }

let is_lvalue_shape (e : Tast.texpr) =
  match e.Tast.tdesc with
  | Tast.Tvar _ | Tast.Tindex _ | Tast.Tderef _ | Tast.Tfield _ | Tast.Tarrow _ ->
    true
  | Tast.Tint_lit _ | Tast.Tstr_addr _ | Tast.Tunop _ | Tast.Tbinop _
  | Tast.Tptr_add _ | Tast.Tptr_diff _ | Tast.Tassign _ | Tast.Tcall_fn _
  | Tast.Tcall_builtin _ | Tast.Taddr _ | Tast.Tcond _ ->
    false

let rec check_expr env (e : Ast.expr) : Tast.texpr =
  let ln = e.Ast.line in
  match e.Ast.desc with
  | Ast.Int_lit n -> mk (Tast.Tint_lit n) Ast.Tint ln
  | Ast.Str_lit s -> mk (Tast.Tstr_addr (intern_string env s)) (Ast.Tptr Ast.Tint) ln
  | Ast.Var name ->
    let vr = lookup_var env ln name in
    mk (Tast.Tvar vr) vr.Tast.vr_ty ln
  | Ast.Unop (op, e1) ->
    let t1 = check_expr env e1 in
    (match op with
     | Ast.Neg | Ast.Bnot | Ast.Lnot ->
       if not (is_scalar (decay t1.Tast.ety)) then
         error ln "unary operator needs a scalar operand";
       mk (Tast.Tunop (op, t1)) Ast.Tint ln)
  | Ast.Binop (op, e1, e2) -> check_binop env ln op e1 e2
  | Ast.Assign (lhs, rhs) ->
    let tl = check_expr env lhs in
    if not (is_lvalue_shape tl) then error ln "left side of '=' is not assignable";
    if not (is_scalar tl.Tast.ety) then
      error ln "assignment target must be scalar (no aggregate assignment)";
    let tr = check_expr env rhs in
    if not (is_scalar (decay tr.Tast.ety)) then
      error ln "assigned value must be scalar";
    mk (Tast.Tassign (tl, tr)) tl.Tast.ety ln
  | Ast.Call (name, args) ->
    let targs = List.map (check_expr env) args in
    List.iter
      (fun (t : Tast.texpr) ->
        if not (is_scalar (decay t.Tast.ety)) then
          error ln "arguments must be scalar values")
      targs;
    if List.length targs > Reg.max_args then
      error ln "too many arguments to '%s' (max %d)" name Reg.max_args;
    (match builtin_of_name name with
     | Some (builtin, arity, ret) ->
       if List.length targs <> arity then
         error ln "'%s' expects %d argument(s)" name arity;
       mk (Tast.Tcall_builtin (builtin, targs)) ret ln
     | None ->
       (match Hashtbl.find_opt env.funcs name with
        | Some fn ->
          if List.length targs <> List.length fn.fs_params then
            error ln "'%s' expects %d argument(s), got %d" name
              (List.length fn.fs_params) (List.length targs);
          mk (Tast.Tcall_fn (name, targs)) fn.fs_ret ln
        | None -> error ln "unknown function '%s'" name))
  | Ast.Index (base, idx) ->
    let tb = check_expr env base in
    let ti = check_expr env idx in
    (match tb.Tast.ety with
     | Ast.Tarray (elt, _) ->
       mk (Tast.Tindex (tb, ti, sizeof env ln elt)) elt ln
     | Ast.Tptr elt ->
       if elt = Ast.Tvoid then error ln "cannot index a void pointer";
       mk (Tast.Tindex (tb, ti, sizeof env ln elt)) elt ln
     | _ -> error ln "indexed expression is not an array or pointer")
  | Ast.Deref p ->
    let tp = check_expr env p in
    (match decay tp.Tast.ety with
     | Ast.Tptr elt ->
       if elt = Ast.Tvoid then error ln "cannot dereference a void pointer";
       mk (Tast.Tderef tp) elt ln
     | _ -> error ln "dereferenced expression is not a pointer")
  | Ast.Addr lv ->
    let tl = check_expr env lv in
    if not (is_lvalue_shape tl) then error ln "'&' needs an lvalue";
    mk (Tast.Taddr tl) (Ast.Tptr tl.Tast.ety) ln
  | Ast.Field (base, fname) ->
    let tb = check_expr env base in
    (match tb.Tast.ety with
     | Ast.Tstruct sname ->
       if not (is_lvalue_shape tb) then error ln "field access needs an lvalue";
       let f = field_of env ln sname fname in
       mk (Tast.Tfield (tb, f)) f.Tast.f_ty ln
     | _ -> error ln "'.' applied to a non-struct")
  | Ast.Arrow (p, fname) ->
    let tp = check_expr env p in
    (match decay tp.Tast.ety with
     | Ast.Tptr (Ast.Tstruct sname) ->
       let f = field_of env ln sname fname in
       mk (Tast.Tarrow (tp, f)) f.Tast.f_ty ln
     | _ -> error ln "'->' applied to a non-struct-pointer")
  | Ast.Cond (c, a, b) ->
    let tc = check_expr env c in
    let ta = check_expr env a in
    let tb = check_expr env b in
    if not (is_scalar (decay tc.Tast.ety)) then error ln "condition must be scalar";
    if not (is_scalar (decay ta.Tast.ety) && is_scalar (decay tb.Tast.ety)) then
      error ln "'?:' branches must be scalar";
    mk (Tast.Tcond (tc, ta, tb)) (decay ta.Tast.ety) ln
  | Ast.Sizeof ty -> mk (Tast.Tint_lit (sizeof env ln ty)) Ast.Tint ln

and check_binop env ln op e1 e2 =
  let t1 = check_expr env e1 in
  let t2 = check_expr env e2 in
  let ty1 = decay t1.Tast.ety in
  let ty2 = decay t2.Tast.ety in
  let require_scalar () =
    if not (is_scalar ty1 && is_scalar ty2) then
      error ln "'%s' needs scalar operands" (Ast.binop_to_string op)
  in
  match op with
  | Ast.Add ->
    require_scalar ();
    (match (ty1, ty2) with
     | Ast.Tptr elt, Ast.Tint ->
       mk (Tast.Tptr_add (t1, t2, sizeof env ln elt)) ty1 ln
     | Ast.Tint, Ast.Tptr elt ->
       mk (Tast.Tptr_add (t2, t1, sizeof env ln elt)) ty2 ln
     | _ -> mk (Tast.Tbinop (op, t1, t2)) Ast.Tint ln)
  | Ast.Sub ->
    require_scalar ();
    (match (ty1, ty2) with
     | Ast.Tptr elt, Ast.Tint ->
       let neg = mk (Tast.Tunop (Ast.Neg, t2)) Ast.Tint ln in
       mk (Tast.Tptr_add (t1, neg, sizeof env ln elt)) ty1 ln
     | Ast.Tptr elt, Ast.Tptr _ ->
       mk (Tast.Tptr_diff (t1, t2, sizeof env ln elt)) Ast.Tint ln
     | _ -> mk (Tast.Tbinop (op, t1, t2)) Ast.Tint ln)
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Land | Ast.Lor
  | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl
  | Ast.Shr ->
    require_scalar ();
    mk (Tast.Tbinop (op, t1, t2)) Ast.Tint ln

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes

let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> invalid_arg "pop_scope"

let mk_stmt tsdesc tsline : Tast.tstmt = { Tast.tsdesc; tsline }

let rec check_stmt env (s : Ast.stmt) : Tast.tstmt list =
  let ln = s.Ast.sline in
  match s.Ast.sdesc with
  | Ast.Sexpr e -> [ mk_stmt (Tast.TSexpr (check_expr env e)) ln ]
  | Ast.Sdecl (ty, name, init) ->
    let ty =
      match (ty, init) with
      | Ast.Tarray (_, n), _ when n < 0 ->
        error ln "local array '%s' needs an explicit size" name
      | _ -> ty
    in
    let _ = sizeof env ln ty in
    let vr = alloc_local env ln ty name in
    (match init with
     | None -> []
     | Some e ->
       if not (is_scalar ty) then error ln "cannot initialise aggregate '%s'" name;
       let lhs = mk (Tast.Tvar vr) ty ln in
       let rhs = check_expr env e in
       [ mk_stmt (Tast.TSexpr (mk (Tast.Tassign (lhs, rhs)) ty ln)) ln ])
  | Ast.Sif (c, then_s, else_s) ->
    let tc = check_expr env c in
    let tthen = check_body env then_s in
    let telse = check_body env else_s in
    [ mk_stmt (Tast.TSif (tc, tthen, telse)) ln ]
  | Ast.Swhile (c, body) ->
    let tc = check_expr env c in
    let tbody = check_body env body in
    [ mk_stmt (Tast.TSwhile (tc, tbody)) ln ]
  | Ast.Sfor (init, cond, step, body) ->
    let tinit = Option.map (check_expr env) init in
    let tcond = Option.map (check_expr env) cond in
    let tstep = Option.map (check_expr env) step in
    let tbody = check_body env body in
    [ mk_stmt (Tast.TSfor (tinit, tcond, tstep, tbody)) ln ]
  | Ast.Sreturn None ->
    if env.current_ret <> Ast.Tvoid then error ln "missing return value";
    [ mk_stmt (Tast.TSreturn None) ln ]
  | Ast.Sreturn (Some e) ->
    if env.current_ret = Ast.Tvoid then error ln "void function returns a value";
    [ mk_stmt (Tast.TSreturn (Some (check_expr env e))) ln ]
  | Ast.Sbreak -> [ mk_stmt Tast.TSbreak ln ]
  | Ast.Scontinue -> [ mk_stmt Tast.TScontinue ln ]
  | Ast.Sassert e -> [ mk_stmt (Tast.TSassert (check_expr env e)) ln ]
  | Ast.Sblock body -> [ mk_stmt (Tast.TSblock (check_body env body)) ln ]

and check_body env stmts =
  push_scope env;
  let checked = List.concat_map (check_stmt env) stmts in
  pop_scope env;
  checked

let check_func env ~runtime (f : Ast.func) : Tast.tfunc =
  env.frame_next <- 1;
  env.local_arrays <- [];
  env.current_ret <- f.Ast.fret;
  push_scope env;
  let params =
    List.map (fun (ty, name) -> alloc_local env f.Ast.fline ty name) f.Ast.fparams
  in
  let body = List.concat_map (check_stmt env) f.Ast.fbody in
  pop_scope env;
  {
    Tast.tf_name = f.Ast.fname;
    tf_ret = f.Ast.fret;
    tf_params = params;
    tf_body = body;
    tf_frame_words = env.frame_next - 1;
    tf_local_arrays = List.rev env.local_arrays;
    tf_is_runtime = runtime;
    tf_line = f.Ast.fline;
  }

let register_signatures env ~runtime globals =
  List.iter
    (fun g ->
      match g with
      | Ast.Gfunc f ->
        if Hashtbl.mem env.funcs f.Ast.fname then
          error f.Ast.fline "duplicate function '%s'" f.Ast.fname;
        if builtin_of_name f.Ast.fname <> None then
          error f.Ast.fline "'%s' is a builtin" f.Ast.fname;
        Hashtbl.replace env.funcs f.Ast.fname
          {
            fs_ret = f.Ast.fret;
            fs_params = List.map fst f.Ast.fparams;
            fs_runtime = runtime;
          }
      | Ast.Gvar _ | Ast.Gstruct _ -> ())
    globals

let infer_global_array_size line ty init name =
  match (ty, init) with
  | Ast.Tarray (elt, n), _ when n >= 0 -> Ast.Tarray (elt, n)
  | Ast.Tarray (elt, _), Some (Ast.Init_string s) ->
    Ast.Tarray (elt, String.length s + 1)
  | Ast.Tarray (elt, _), Some (Ast.Init_list values) ->
    Ast.Tarray (elt, List.length values)
  | Ast.Tarray _, _ -> error line "global array '%s' needs a size" name
  | _ -> ty

let install_global_init env line vr init =
  let addr =
    match vr.Tast.vr_storage with
    | Tast.Global a -> a
    | Tast.Local _ | Tast.Reg _ -> assert false
  in
  match init with
  | None -> ()
  | Some (Ast.Init_int n) -> env.init_data <- (addr, n) :: env.init_data
  | Some (Ast.Init_string s) ->
    (match vr.Tast.vr_ty with
     | Ast.Tarray (_, size) ->
       if String.length s + 1 > size then
         error line "string initialiser longer than array '%s'" vr.Tast.vr_name;
       String.iteri
         (fun i c -> env.init_data <- (addr + i, Char.code c) :: env.init_data)
         s;
       env.init_data <- (addr + String.length s, 0) :: env.init_data
     | _ -> error line "string initialiser on a non-array")
  | Some (Ast.Init_list values) ->
    (match vr.Tast.vr_ty with
     | Ast.Tarray (_, size) ->
       if List.length values > size then
         error line "too many initialisers for '%s'" vr.Tast.vr_name;
       List.iteri
         (fun i v -> env.init_data <- (addr + i, v) :: env.init_data)
         values
     | _ -> error line "list initialiser on a non-array")

let process_structs_and_globals env globals =
  List.iter
    (fun g ->
      match g with
      | Ast.Gstruct (name, fields) -> define_struct env name fields 0
      | Ast.Gvar (ty, name, init, line) ->
        let ty = infer_global_array_size line ty init name in
        let _ = sizeof env line ty in
        if Hashtbl.mem env.globals name then
          error line "duplicate global '%s'" name;
        let vr = alloc_global env line ty name in
        install_global_init env line vr init
      | Ast.Gfunc _ -> ())
    globals

let allocate_blanks env =
  let generic = env.next_global in
  env.next_global <- env.next_global + generic_blank_words;
  env.blanks <- [ ("generic", generic) ];
  Hashtbl.iter
    (fun name info ->
      let addr = env.next_global in
      env.next_global <- env.next_global + max 1 info.s_size;
      env.blanks <- (name, addr) :: env.blanks)
    env.structs

(* [check ~user ~prelude ~tags] typechecks the user program together with the
   runtime prelude. The special global [__heap_ptr] (the allocator break) is
   predefined at address 1 and set up by the machine at load time. *)
let check ~user ~prelude ~tags : Tast.tprogram =
  let env = create_env () in
  Hashtbl.replace env.globals "__heap_ptr"
    {
      Tast.vr_name = "__heap_ptr";
      vr_ty = Ast.Tint;
      vr_storage = Tast.Global Program.null_guard_words;
    };
  register_signatures env ~runtime:false user;
  register_signatures env ~runtime:true prelude;
  process_structs_and_globals env user;
  process_structs_and_globals env prelude;
  allocate_blanks env;
  if not (Hashtbl.mem env.funcs "main") then error 0 "no 'main' function";
  let check_funcs ~runtime globals =
    List.filter_map
      (fun g ->
        match g with
        | Ast.Gfunc f -> Some (check_func env ~runtime f)
        | Ast.Gvar _ | Ast.Gstruct _ -> None)
      globals
  in
  let user_funcs = check_funcs ~runtime:false user in
  let prelude_funcs = check_funcs ~runtime:true prelude in
  {
    Tast.tp_funcs = user_funcs @ prelude_funcs;
    tp_global_vars =
      Hashtbl.fold
        (fun name vr acc ->
          match vr.Tast.vr_storage with
          | Tast.Global addr -> (name, addr) :: acc
          | Tast.Local _ | Tast.Reg _ -> acc)
        env.globals [];
    tp_globals_words = env.next_global - Program.null_guard_words;
    tp_init_data = List.rev env.init_data;
    tp_global_arrays = List.rev env.global_arrays;
    tp_blank_addrs = env.blanks;
    tp_struct_sizes =
      Hashtbl.fold (fun name info acc -> (name, info.s_size) :: acc) env.structs [];
    tp_tags = tags;
  }

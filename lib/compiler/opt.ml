(* Optimization levels for the nanopass MiniC pipeline.

   O0 is the house-determinism anchor: instruction selection and label
   lowering only, producing images byte-identical to the historical
   single-pass code generator. O1 adds the machine-independent cleanups and
   cheap selection improvements; O2 adds register allocation. Each level is
   itself deterministic — the level is simply another axis of the sweep.

   The default level is a process-global knob (mirroring
   [Pe_config.selective_enabled]) so binaries can flip a whole run with one
   flag without threading the level through every experiment. *)

type level = O0 | O1 | O2

let to_string = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2"

let of_string = function
  | "0" | "O0" | "o0" -> Some O0
  | "1" | "O1" | "o1" -> Some O1
  | "2" | "O2" | "o2" -> Some O2
  | _ -> None

let at_least lv floor =
  let rank = function O0 -> 0 | O1 -> 1 | O2 -> 2 in
  rank lv >= rank floor

(* Process-wide default, used when a compilation does not pin a level.
   Atomic for the same reason as [Pe_config.selective_enabled]: parallel
   sweep domains read it concurrently. *)
let default = Atomic.make O0

let set_default lv = Atomic.set default lv

let default_level () = Atomic.get default

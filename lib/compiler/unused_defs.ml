(* Unused-definition removal (O1+): drop functions unreachable from [main]
   in the static call graph. MiniC has no function pointers, so [Tcall_fn]
   edges are the whole graph and removal is exact — typically this strips
   the prelude runtime helpers (allocator, printing) a workload never calls,
   shrinking the image. Relative definition order is preserved, so function
   labels and layout stay deterministic. *)

let rec calls_in_expr acc (e : Tast.texpr) =
  match e.Tast.tdesc with
  | Tast.Tint_lit _ | Tast.Tstr_addr _ | Tast.Tvar _ -> acc
  | Tast.Tunop (_, a) | Tast.Tderef a | Tast.Taddr a | Tast.Tfield (a, _)
  | Tast.Tarrow (a, _) ->
    calls_in_expr acc a
  | Tast.Tbinop (_, a, b)
  | Tast.Tptr_add (a, b, _)
  | Tast.Tptr_diff (a, b, _)
  | Tast.Tassign (a, b)
  | Tast.Tindex (a, b, _) ->
    calls_in_expr (calls_in_expr acc a) b
  | Tast.Tcall_fn (name, args) ->
    List.fold_left calls_in_expr (name :: acc) args
  | Tast.Tcall_builtin (_, args) -> List.fold_left calls_in_expr acc args
  | Tast.Tcond (a, b, c) ->
    calls_in_expr (calls_in_expr (calls_in_expr acc a) b) c

let rec calls_in_stmt acc (s : Tast.tstmt) =
  match s.Tast.tsdesc with
  | Tast.TSexpr e | Tast.TSassert e -> calls_in_expr acc e
  | Tast.TSif (c, a, b) ->
    List.fold_left calls_in_stmt
      (List.fold_left calls_in_stmt (calls_in_expr acc c) a)
      b
  | Tast.TSwhile (c, body) ->
    List.fold_left calls_in_stmt (calls_in_expr acc c) body
  | Tast.TSfor (init, cond, step, body) ->
    let acc = List.fold_left calls_in_expr acc (List.filter_map Fun.id [ init; cond; step ]) in
    List.fold_left calls_in_stmt acc body
  | Tast.TSreturn (Some e) -> calls_in_expr acc e
  | Tast.TSreturn None | Tast.TSbreak | Tast.TScontinue -> acc
  | Tast.TSblock body -> List.fold_left calls_in_stmt acc body

let run (tp : Tast.tprogram) =
  let by_name = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace by_name f.Tast.tf_name f) tp.Tast.tp_funcs;
  let reachable = Hashtbl.create 32 in
  let rec visit name =
    if (not (Hashtbl.mem reachable name)) && Hashtbl.mem by_name name then begin
      Hashtbl.replace reachable name ();
      let f = Hashtbl.find by_name name in
      List.iter visit (List.fold_left calls_in_stmt [] f.Tast.tf_body)
    end
  in
  visit "main";
  {
    tp with
    Tast.tp_funcs =
      List.filter (fun f -> Hashtbl.mem reachable f.Tast.tf_name) tp.Tast.tp_funcs;
  }

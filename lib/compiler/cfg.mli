(** Control-flow graph and prime-path enumeration over compiled images.

    The static half of the Coverage Observatory (DESIGN.md §15): an
    intraprocedural basic-block CFG over the user code ranges of a
    {!Program.t} — the same universe branch coverage is recorded over — plus
    bounded Ammann–Offutt prime-path enumeration with an explicit truncation
    count, and an edge-approximated covered-path evaluator. *)

type edge_kind =
  | E_fall  (** fallthrough / unconditional jump *)
  | E_taken of int  (** taken edge of the user branch at this pc *)
  | E_nontaken of int  (** fallthrough edge of the user branch at this pc *)

type block = {
  b_first : int;  (** pc of the first instruction *)
  b_last : int;  (** pc of the last instruction (the terminator) *)
}

type t = {
  blocks : block array;
  succs : (int * edge_kind) list array;
      (** per block: successor block indices with the edge kind *)
  func_of_block : string array;  (** enclosing user function name *)
  decision_pcs : int list;
      (** user-branch pcs that terminate a block, in block order *)
}

(** Branch-coverage coordinates of an edge: [(branch pc, direction)] for
    decision edges, [None] for plain control flow. *)
val edge_decision : edge_kind -> (int * bool) option

(** CFG over the user code ranges of a program. [Call] is treated as
    straight-line and predicated instructions as NOPs, matching what the
    taken path of a monitored run retires. *)
val of_program : Program.t -> t

val block_count : t -> int
val edge_count : t -> int

(** Test constructor: a bare graph from adjacency lists (all edges
    [E_fall], one dummy instruction per block), for hand-checked
    prime-path counts. *)
val of_succs : int list array -> t

type prime = {
  nodes : int array;  (** block indices, in path order *)
  decisions : (int * bool) list;
      (** branch-coverage coordinates of the path's decision edges *)
}

type paths = {
  all : prime array;  (** deterministic order: sorted by node sequence *)
  truncated : int;
      (** candidate simple paths abandoned because the work budget tripped;
          [0] means [all] is the complete prime-path universe *)
}

(** Prime-path node sequences with the truncation count — the shape-level
    half of {!enumerate}. Depends only on {!shape}, so callers may share
    one result across CFGs with equal shape. *)
type node_paths = {
  np_all : int array array;
  np_truncated : int;
}

val default_max_paths : int

(** Enumerate the prime-path node sequences (maximal simple paths and
    simple cycles, Ammann–Offutt). Deterministic; bounded by [max_paths]
    candidate paths with the overflow reported in [np_truncated]. *)
val enumerate_nodes : ?max_paths:int -> t -> node_paths

(** Attach each node sequence's decision edges for one concrete CFG. *)
val paths_of_nodes : t -> node_paths -> paths

(** [paths_of_nodes cfg (enumerate_nodes cfg)]. *)
val enumerate : ?max_paths:int -> t -> paths

(** The successor structure over block indices with edge kinds erased: the
    only input {!enumerate_nodes} reads, usable as a sharing key (compare
    structurally) for its result across CFGs of related programs. *)
val shape : t -> int list array

(** Number of prime paths covered under the edge approximation: every
    decision edge of the path satisfies [edge_covered pc direction] and
    every block's first pc satisfies [block_covered]. An over-approximation
    of true path coverage; see DESIGN.md §15. *)
val covered_count :
  edge_covered:(int -> bool -> bool) ->
  block_covered:(int -> bool) ->
  t ->
  paths ->
  int

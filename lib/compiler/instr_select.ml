(* Instruction selection: typed AST to label-form assembly ([Asmprog.t]),
   including the two compiler passes the paper requires:

   - the *variable-fixing pass* (Section 4.4): every conditional branch is
     laid out with a small stub at the head of each edge holding predicated
     instructions that repair the branch's condition variable to a boundary
     value consistent with that edge — executed only at the entrance of an
     NT-Path (predicate register set by the spawn), NOPs otherwise; null
     pointers are redirected to per-type blank structures;

   - *detector instrumentation*: CCured-style bounds/null checks, iWatcher
     red-zone watchpoint registration, or assertion lowering, all emitted
     branch-free (via [Checkz]) so that checking code never perturbs branch
     statistics and PathExpander never spawns NT-Paths inside a checker.

   At [O0] the emission is instruction-for-instruction identical to the
   historical single-pass code generator (the determinism anchor). [O1] and
   above additionally select immediate operand forms ([Binopi]/[Cmpi]
   instead of a [Li] plus the register form), fold literal indices into
   addressing, and read register-allocated variables in place instead of
   copying them into expression temporaries. *)

exception Error of string * int

let error line fmt = Printf.ksprintf (fun s -> raise (Error (s, line))) fmt

type detector = No_detector | Ccured | Iwatcher | Assertions

let detector_name = function
  | No_detector -> "none"
  | Ccured -> "ccured"
  | Iwatcher -> "iwatcher"
  | Assertions -> "assertions"

type options = { detector : detector; fixing : bool }

let default_options = { detector = No_detector; fixing = true }

(* Dedicated scratch register for predicated fix sequences, never handed to
   expression temporaries so fixes cannot clobber live values. *)
let fix_scratch = Reg.tmp 17

let expr_tmps = 17

type state = {
  opts : options;
  lv : Opt.level;
  tp : Tast.tprogram;
  code : Insn.t Vec.t;
  mutable labels : (int, int) Hashtbl.t;  (* label id -> pc *)
  mutable next_label : int;
  fn_labels : (string, int) Hashtbl.t;
  mutable sites : Site.t list;
  mutable site_count : int;
  mutable user_branches : int list;
  mutable source_lines : (int * int) list;
  mutable functions : (string * int) list;
  mutable user_ranges : (int * int) list;
  mutable fix_atoms : (int * Fix_atom.t) list;
  mutable tmp_next : int;
  mutable tmp_limit : int;
      (* temporaries [tmp_limit..expr_tmps) are register-allocated in the
         current function and must not be handed out as expression temps *)
  mutable tmp_high : int;  (* high-water mark of [tmp_next], per function *)
  highwater : (string * int) list ref;
  mutable cur_promoted : Reg.t list;
      (* register-allocated variables of the current function (ascending),
         caller-saved around calls like live expression temporaries *)
  mutable cur_runtime : bool;
  mutable branch_free : bool;
  mutable break_labels : int list;
  mutable continue_labels : int list;
  mutable ret_label : int;
  mutable last_line : int;
}

let create_state opts lv tp =
  {
    opts;
    lv;
    tp;
    code = Vec.create ~dummy:Insn.Nop;
    labels = Hashtbl.create 256;
    next_label = 0;
    fn_labels = Hashtbl.create 64;
    sites = [];
    site_count = 0;
    user_branches = [];
    source_lines = [];
    functions = [];
    user_ranges = [];
    fix_atoms = [];
    tmp_next = 0;
    tmp_limit = expr_tmps;
    tmp_high = 0;
    highwater = ref [];
    cur_promoted = [];
    cur_runtime = false;
    branch_free = false;
    break_labels = [];
    continue_labels = [];
    ret_label = -1;
    last_line = -1;
  }

let opt1 st = Opt.at_least st.lv Opt.O1

let pc st = Vec.length st.code

let emit st insn = Vec.push st.code insn

let new_label st =
  let l = st.next_label in
  st.next_label <- l + 1;
  l

let place_label st l =
  if Hashtbl.mem st.labels l then invalid_arg "Instr_select: label placed twice";
  Hashtbl.replace st.labels l (pc st)

(* Control targets are emitted as [-(label + 1)] and patched by [Lower]. *)
let lref l = -(l + 1)

let note_line st line =
  if line <> st.last_line && line > 0 then begin
    st.last_line <- line;
    st.source_lines <- (pc st, line) :: st.source_lines
  end

let new_site st kind line descr =
  let id = st.site_count in
  st.site_count <- id + 1;
  st.sites <- { Site.id; line; kind; descr } :: st.sites;
  id

let alloc_tmp st =
  if st.tmp_next >= st.tmp_limit then
    error st.last_line "expression too deep (out of temporaries)";
  let t = Reg.tmp st.tmp_next in
  st.tmp_next <- st.tmp_next + 1;
  if st.tmp_next > st.tmp_high then st.tmp_high <- st.tmp_next;
  t

let free_tmp st r =
  if st.tmp_next = 0 || r <> Reg.tmp (st.tmp_next - 1) then
    invalid_arg "Instr_select: temporaries must be freed in LIFO order";
  st.tmp_next <- st.tmp_next - 1

let live_tmps st = List.init st.tmp_next Reg.tmp

(* --- storage places ------------------------------------------------------ *)

type place =
  | Pframe of int  (* fp + offset *)
  | Pglobal of int  (* absolute address *)
  | Preg of Reg.t  (* address held in a temporary (owned by caller) *)
  | Pvreg of Reg.t  (* register-allocated scalar: the value IS the register *)

let storage_place vr =
  match vr.Tast.vr_storage with
  | Tast.Local off -> Pframe off
  | Tast.Global addr -> Pglobal addr
  | Tast.Reg r -> Pvreg r

let load_place st place ~dst =
  match place with
  | Pframe off -> emit st (Insn.Load (dst, Reg.fp, off))
  | Pglobal addr -> emit st (Insn.Load (dst, Reg.zero, addr))
  | Preg r -> emit st (Insn.Load (dst, r, 0))
  | Pvreg r -> emit st (Insn.Mov (dst, r))

let store_place st place ~src =
  match place with
  | Pframe off -> emit st (Insn.Store (src, Reg.fp, off))
  | Pglobal addr -> emit st (Insn.Store (src, Reg.zero, addr))
  | Preg r -> emit st (Insn.Store (src, r, 0))
  | Pvreg r -> emit st (Insn.Mov (r, src))

(* Materialise the address a place denotes into [dst]. *)
let place_address st place ~dst =
  match place with
  | Pframe off -> emit st (Insn.Binopi (Insn.Add, dst, Reg.fp, off))
  | Pglobal addr -> emit st (Insn.Li (dst, addr))
  | Preg r -> if r <> dst then emit st (Insn.Mov (dst, r))
  | Pvreg _ ->
    (* register allocation never promotes address-taken variables *)
    assert false

let shift_place st place offset =
  if offset = 0 then place
  else
    match place with
    | Pframe off -> Pframe (off + offset)
    | Pglobal addr -> Pglobal (addr + offset)
    | Preg r ->
      emit st (Insn.Binopi (Insn.Add, r, r, offset));
      Preg r
    | Pvreg _ -> assert false  (* scalars have no interior *)

(* --- operators ----------------------------------------------------------- *)

let insn_binop_of_ast = function
  | Ast.Add -> Some Insn.Add
  | Ast.Sub -> Some Insn.Sub
  | Ast.Mul -> Some Insn.Mul
  | Ast.Div -> Some Insn.Div
  | Ast.Mod -> Some Insn.Mod
  | Ast.Band -> Some Insn.And
  | Ast.Bor -> Some Insn.Or
  | Ast.Bxor -> Some Insn.Xor
  | Ast.Shl -> Some Insn.Shl
  | Ast.Shr -> Some Insn.Shr
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Land | Ast.Lor ->
    None

let insn_cmp_of_ast = function
  | Ast.Eq -> Some Insn.Eq
  | Ast.Ne -> Some Insn.Ne
  | Ast.Lt -> Some Insn.Lt
  | Ast.Le -> Some Insn.Le
  | Ast.Gt -> Some Insn.Gt
  | Ast.Ge -> Some Insn.Ge
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor
  | Ast.Bxor | Ast.Shl | Ast.Shr | Ast.Land | Ast.Lor ->
    None

let commutes = function
  | Insn.Add | Insn.Mul | Insn.And | Insn.Or | Insn.Xor -> true
  | Insn.Sub | Insn.Div | Insn.Mod | Insn.Shl | Insn.Shr -> false

(* c such that [a cmp b <=> b c a]. *)
let cmp_mirror = function
  | Insn.Eq -> Insn.Eq
  | Insn.Ne -> Insn.Ne
  | Insn.Lt -> Insn.Gt
  | Insn.Le -> Insn.Ge
  | Insn.Gt -> Insn.Lt
  | Insn.Ge -> Insn.Le

let imm_of (e : Tast.texpr) =
  match e.Tast.tdesc with Tast.Tint_lit n -> Some n | _ -> None

(* --- consistency fixing -------------------------------------------------- *)

type fix_atom =
  | Fa_none
  | Fa_var_const of Tast.var_ref * Insn.cmp * int
  | Fa_var_var of Tast.var_ref * Insn.cmp * Tast.var_ref

let blank_for st ty =
  let lookup name =
    match List.assoc_opt name st.tp.Tast.tp_blank_addrs with
    | Some addr -> addr
    | None -> List.assoc "generic" st.tp.Tast.tp_blank_addrs
  in
  match ty with
  | Ast.Tptr (Ast.Tstruct name) -> lookup name
  | Ast.Tptr _ | Ast.Tint | Ast.Tarray _ | Ast.Tstruct _ | Ast.Tvoid ->
    List.assoc "generic" st.tp.Tast.tp_blank_addrs

(* Boundary value satisfying [v cmp k]. *)
let boundary_value cmp k =
  match cmp with
  | Insn.Eq -> k
  | Insn.Ne -> k + 1
  | Insn.Lt -> k - 1
  | Insn.Le -> k
  | Insn.Gt -> k + 1
  | Insn.Ge -> k

let is_pointer = function Ast.Tptr _ -> true | _ -> false

let pred_store_home st vr ~src =
  match vr.Tast.vr_storage with
  | Tast.Local off -> emit st (Insn.Pred (Insn.Store (src, Reg.fp, off)))
  | Tast.Global addr -> emit st (Insn.Pred (Insn.Store (src, Reg.zero, addr)))
  | Tast.Reg r -> emit st (Insn.Pred (Insn.Mov (r, src)))

let pred_load_home st vr ~dst =
  match vr.Tast.vr_storage with
  | Tast.Local off -> emit st (Insn.Pred (Insn.Load (dst, Reg.fp, off)))
  | Tast.Global addr -> emit st (Insn.Pred (Insn.Load (dst, Reg.zero, addr)))
  | Tast.Reg r -> emit st (Insn.Pred (Insn.Mov (dst, r)))

(* Emit the predicated fix block establishing [atom] (already oriented for
   this edge), then clear the predicate register. A register-allocated
   condition variable is fixed in its register — the NT-Path context is a
   copy of the spawning core's register file, so the repair is just as
   private to the path as a sandboxed store. *)
let emit_fix_block st atom =
  if st.opts.fixing then begin
    (match atom with
     | Fa_none -> ()
     | Fa_var_const (vr, cmp, k) ->
       let raw = boundary_value cmp k in
       let value =
         if is_pointer vr.Tast.vr_ty && raw <> 0 then blank_for st vr.Tast.vr_ty
         else raw
       in
       (match vr.Tast.vr_storage with
        | Tast.Reg r -> emit st (Insn.Pred (Insn.Li (r, value)))
        | Tast.Local _ | Tast.Global _ ->
          emit st (Insn.Pred (Insn.Li (fix_scratch, value)));
          pred_store_home st vr ~src:fix_scratch)
     | Fa_var_var (x, cmp, y) ->
       let delta = boundary_value cmp 0 in
       pred_load_home st y ~dst:fix_scratch;
       if delta <> 0 then
         emit st (Insn.Pred (Insn.Binopi (Insn.Add, fix_scratch, fix_scratch, delta)));
       pred_store_home st x ~src:fix_scratch);
    emit st Insn.Clearpred
  end

let negate_atom = function
  | Fa_none -> Fa_none
  | Fa_var_const (v, c, k) -> Fa_var_const (v, Insn.negate_cmp c, k)
  | Fa_var_var (x, c, y) -> Fa_var_var (x, Insn.negate_cmp c, y)

(* Classify a comparison for fixability: prefer repairing the left operand. *)
let fix_atom_of_cmp a cmp b =
  match (Tast.fixable_var a, Tast.fixable_var b) with
  | Some va, _ ->
    (match b.Tast.tdesc with
     | Tast.Tint_lit k -> Fa_var_const (va, cmp, k)
     | _ ->
       (match Tast.fixable_var b with
        | Some vb -> Fa_var_var (va, cmp, vb)
        | None -> Fa_none))
  | None, Some vb ->
    (match a.Tast.tdesc with
     | Tast.Tint_lit k -> Fa_var_const (vb, cmp_mirror cmp, k)
     | _ -> Fa_none)
  | None, None -> Fa_none

let home_of_storage = function
  | Tast.Local off -> Some (Fix_atom.Hframe off)
  | Tast.Global addr -> Some (Fix_atom.Hglobal addr)
  | Tast.Reg _ -> None

(* The side-table form of an internal fix atom, for the profiled-fixing
   extension (the stub instructions remain the architectural mechanism).
   Register-allocated variables have no memory home the profiled override
   could write, so their atoms stay stub-only and are not exported. *)
let export_atom = function
  | Fa_none -> None
  | Fa_var_const (vr, cmp, k) ->
    (match home_of_storage vr.Tast.vr_storage with
     | Some var ->
       Some
         {
           Fix_atom.var;
           pointer = is_pointer vr.Tast.vr_ty;
           cmp;
           rhs = Fix_atom.Const k;
         }
     | None -> None)
  | Fa_var_var (x, cmp, y) ->
    (match (home_of_storage x.Tast.vr_storage, home_of_storage y.Tast.vr_storage)
     with
     | Some var, Some home_y ->
       Some
         {
           Fix_atom.var;
           pointer = is_pointer x.Tast.vr_ty;
           cmp;
           rhs = Fix_atom.Var home_y;
         }
     | _ -> None)

(* --- expression compilation ---------------------------------------------- *)

let rec compile_expr st (e : Tast.texpr) : Reg.t =
  note_line st e.Tast.eline;
  match e.Tast.tdesc with
  | Tast.Tint_lit n ->
    let t = alloc_tmp st in
    emit st (Insn.Li (t, n));
    t
  | Tast.Tstr_addr addr ->
    let t = alloc_tmp st in
    emit st (Insn.Li (t, addr));
    t
  | Tast.Tvar vr ->
    let t = alloc_tmp st in
    (match vr.Tast.vr_ty with
     | Ast.Tarray _ | Ast.Tstruct _ -> place_address st (storage_place vr) ~dst:t
     | Ast.Tint | Ast.Tptr _ | Ast.Tvoid -> load_place st (storage_place vr) ~dst:t);
    t
  | Tast.Tunop (op, e1) ->
    let v = compile_expr st e1 in
    (match op with
     | Ast.Neg -> emit st (Insn.Binop (Insn.Sub, v, Reg.zero, v))
     | Ast.Bnot -> emit st (Insn.Binopi (Insn.Xor, v, v, -1))
     | Ast.Lnot -> emit st (Insn.Cmpi (Insn.Eq, v, v, 0)));
    v
  | Tast.Tbinop ((Ast.Land | Ast.Lor) as op, a, b) ->
    if st.branch_free then begin
      let va = compile_expr st a in
      emit st (Insn.Cmpi (Insn.Ne, va, va, 0));
      let vb = compile_expr st b in
      emit st (Insn.Cmpi (Insn.Ne, vb, vb, 0));
      let insn_op = if op = Ast.Land then Insn.And else Insn.Or in
      emit st (Insn.Binop (insn_op, va, va, vb));
      free_tmp st vb;
      va
    end
    else compile_value_via_cond st e
  | Tast.Tbinop (op, a, b) when opt1 st ->
    (* O1+: prefer immediate forms, read register-allocated operands in
       place. The result register is always a fresh owned temporary. *)
    (match insn_cmp_of_ast op with
     | Some cmp ->
       (match (imm_of b, imm_of a) with
        | Some k, _ ->
          let va = compile_expr st a in
          emit st (Insn.Cmpi (cmp, va, va, k));
          va
        | None, Some k ->
          let vb = compile_expr st b in
          emit st (Insn.Cmpi (cmp_mirror cmp, vb, vb, k));
          vb
        | None, None ->
          let va = compile_expr st a in
          let vb, ob = compile_operand st b in
          emit st (Insn.Cmp (cmp, va, va, vb));
          free_operand st (vb, ob);
          va)
     | None ->
       let insn_op =
         match insn_binop_of_ast op with Some o -> o | None -> assert false
       in
       (match (imm_of b, imm_of a) with
        | Some k, _ ->
          let va = compile_expr st a in
          emit st (Insn.Binopi (insn_op, va, va, k));
          va
        | None, Some k when commutes insn_op ->
          let vb = compile_expr st b in
          emit st (Insn.Binopi (insn_op, vb, vb, k));
          vb
        | None, _ ->
          let va = compile_expr st a in
          let vb, ob = compile_operand st b in
          emit st (Insn.Binop (insn_op, va, va, vb));
          free_operand st (vb, ob);
          va))
  | Tast.Tbinop (op, a, b) ->
    (match insn_cmp_of_ast op with
     | Some cmp ->
       let va = compile_expr st a in
       let vb = compile_expr st b in
       emit st (Insn.Cmp (cmp, va, va, vb));
       free_tmp st vb;
       va
     | None ->
       (match insn_binop_of_ast op with
        | Some insn_op ->
          let va = compile_expr st a in
          let vb = compile_expr st b in
          emit st (Insn.Binop (insn_op, va, va, vb));
          free_tmp st vb;
          va
        | None -> assert false))
  | Tast.Tptr_add (p, i, scale) ->
    (match imm_of i with
     | Some k when opt1 st ->
       let vp = compile_expr st p in
       if k * scale <> 0 then emit st (Insn.Binopi (Insn.Add, vp, vp, k * scale));
       vp
     | _ ->
       let vp = compile_expr st p in
       let vi = compile_expr st i in
       if scale <> 1 then emit st (Insn.Binopi (Insn.Mul, vi, vi, scale));
       emit st (Insn.Binop (Insn.Add, vp, vp, vi));
       free_tmp st vi;
       vp)
  | Tast.Tptr_diff (p, q, scale) ->
    let vp = compile_expr st p in
    let vq = compile_expr st q in
    emit st (Insn.Binop (Insn.Sub, vp, vp, vq));
    if scale <> 1 then emit st (Insn.Binopi (Insn.Div, vp, vp, scale));
    free_tmp st vq;
    vp
  | Tast.Tassign (lhs, rhs) ->
    let v = compile_expr st rhs in
    let place = compile_lvalue st lhs in
    store_place st place ~src:v;
    (match place with
     | Preg r -> free_tmp st r
     | Pframe _ | Pglobal _ | Pvreg _ -> ());
    v
  | Tast.Tcall_fn (name, args) -> compile_call st name args
  | Tast.Tcall_builtin (builtin, args) -> compile_builtin st e.Tast.eline builtin args
  | Tast.Tindex _ | Tast.Tderef _ | Tast.Tfield _ | Tast.Tarrow _ ->
    let place = compile_lvalue st e in
    (match e.Tast.ety with
     | Ast.Tarray _ | Ast.Tstruct _ ->
       (* rvalue of an aggregate is its address *)
       (match place with
        | Preg r -> r
        | Pframe _ | Pglobal _ | Pvreg _ ->
          let t = alloc_tmp st in
          place_address st place ~dst:t;
          t)
     | Ast.Tint | Ast.Tptr _ | Ast.Tvoid ->
       (match place with
        | Preg r ->
          emit st (Insn.Load (r, r, 0));
          r
        | Pframe _ | Pglobal _ | Pvreg _ ->
          let t = alloc_tmp st in
          load_place st place ~dst:t;
          t))
  | Tast.Taddr lv ->
    let place = compile_lvalue st lv in
    (match place with
     | Preg r -> r
     | Pframe _ | Pglobal _ | Pvreg _ ->
       let t = alloc_tmp st in
       place_address st place ~dst:t;
       t)
  | Tast.Tcond _ ->
    if st.branch_free then
      error e.Tast.eline "'?:' is not allowed inside assert conditions";
    compile_value_via_cond st e

(* O1+ operand evaluation that can *borrow* a register instead of owning a
   fresh temporary: a register-allocated scalar is read in place, the
   literal zero is the zero register. The boolean is [owned]; borrowed
   registers must never be written or freed.

   A borrow reads the register at *use* time, not eval time, so it is only
   legal when nothing evaluated between here and the use can write that
   register. Calls are fine (promoted registers are caller-saved around
   every call and promoted variables are never address-taken); the one
   hazard is a direct assignment to the same variable in a sibling
   expression evaluated after the borrow — callers with such a sibling must
   use [compile_operand_seq]. *)
and compile_operand st (e : Tast.texpr) : Reg.t * bool =
  if not (opt1 st) then (compile_expr st e, true)
  else
    match e.Tast.tdesc with
    | Tast.Tint_lit 0 -> (Reg.zero, false)
    | Tast.Tvar { Tast.vr_storage = Tast.Reg r; vr_ty = Ast.Tint | Ast.Tptr _; _ }
      ->
      (r, false)
    | _ -> (compile_expr st e, true)

(* [compile_operand_seq st e ~rest] is [compile_operand], downgraded to an
   owned copy when any expression in [rest] (evaluated after [e], before the
   use) assigns the register [e] would borrow — preserving O0's
   eval-order semantics for cases like [x < (x = 5)]. *)
and compile_operand_seq st (e : Tast.texpr) ~rest : Reg.t * bool =
  let r, owned = compile_operand_plan st e in
  if owned then (compile_expr st e, true)
  else if List.exists (assigns_reg r) rest then (compile_expr st e, true)
  else (r, owned)

(* The borrow decision of [compile_operand] without emitting anything. *)
and compile_operand_plan st (e : Tast.texpr) : Reg.t * bool =
  if not (opt1 st) then (Reg.zero, true)
  else
    match e.Tast.tdesc with
    | Tast.Tint_lit 0 -> (Reg.zero, false)
    | Tast.Tvar { Tast.vr_storage = Tast.Reg r; vr_ty = Ast.Tint | Ast.Tptr _; _ }
      ->
      (r, false)
    | _ -> (Reg.zero, true)

and assigns_reg r (e : Tast.texpr) =
  match e.Tast.tdesc with
  | Tast.Tint_lit _ | Tast.Tstr_addr _ | Tast.Tvar _ -> false
  | Tast.Tunop (_, a) | Tast.Tderef a | Tast.Taddr a | Tast.Tfield (a, _)
  | Tast.Tarrow (a, _) ->
    assigns_reg r a
  | Tast.Tbinop (_, a, b)
  | Tast.Tptr_add (a, b, _)
  | Tast.Tptr_diff (a, b, _)
  | Tast.Tindex (a, b, _) ->
    assigns_reg r a || assigns_reg r b
  | Tast.Tassign (lhs, rhs) ->
    (match lhs.Tast.tdesc with
     | Tast.Tvar { Tast.vr_storage = Tast.Reg r'; _ } when r' = r -> true
     | _ -> assigns_reg r lhs || assigns_reg r rhs)
  | Tast.Tcall_fn (_, args) | Tast.Tcall_builtin (_, args) ->
    List.exists (assigns_reg r) args
  | Tast.Tcond (a, b, c) -> assigns_reg r a || assigns_reg r b || assigns_reg r c

and free_operand st (r, owned) = if owned then free_tmp st r

(* Materialise a boolean-producing expression into 0/1 using the branch/stub
   machinery (short-circuit &&/|| and ?: in value position). *)
and compile_value_via_cond st (e : Tast.texpr) : Reg.t =
  let res = alloc_tmp st in
  match e.Tast.tdesc with
  | Tast.Tcond (c, a, b) ->
    let lt = new_label st and lf = new_label st and lend = new_label st in
    compile_cond st c ~tl:lt ~fl:lf;
    place_label st lt;
    let va, oa = compile_operand st a in
    emit st (Insn.Mov (res, va));
    free_operand st (va, oa);
    emit st (Insn.Jmp (lref lend));
    place_label st lf;
    let vb, ob = compile_operand st b in
    emit st (Insn.Mov (res, vb));
    free_operand st (vb, ob);
    place_label st lend;
    res
  | _ ->
    let lt = new_label st and lf = new_label st and lend = new_label st in
    compile_cond st e ~tl:lt ~fl:lf;
    place_label st lt;
    emit st (Insn.Li (res, 1));
    emit st (Insn.Jmp (lref lend));
    place_label st lf;
    emit st (Insn.Li (res, 0));
    place_label st lend;
    res

(* Compute the place an lvalue denotes, inserting CCured checks when that
   detector is selected. *)
and compile_lvalue st (e : Tast.texpr) : place =
  note_line st e.Tast.eline;
  match e.Tast.tdesc with
  | Tast.Tvar vr -> storage_place vr
  | Tast.Tindex (base, idx, elt_size) -> compile_index st e.Tast.eline base idx elt_size
  | Tast.Tderef p ->
    let v = compile_expr st p in
    emit_null_check st e.Tast.eline p v;
    Preg v
  | Tast.Tfield (base, f) ->
    let place = compile_lvalue st base in
    shift_place st place f.Tast.f_offset
  | Tast.Tarrow (p, f) ->
    let v = compile_expr st p in
    emit_null_check st e.Tast.eline p v;
    if f.Tast.f_offset <> 0 then
      emit st (Insn.Binopi (Insn.Add, v, v, f.Tast.f_offset));
    Preg v
  | Tast.Tint_lit _ | Tast.Tstr_addr _ | Tast.Tunop _ | Tast.Tbinop _
  | Tast.Tptr_add _ | Tast.Tptr_diff _ | Tast.Tassign _ | Tast.Tcall_fn _
  | Tast.Tcall_builtin _ | Tast.Taddr _ | Tast.Tcond _ ->
    error e.Tast.eline "expression is not an lvalue"

and compile_index st line base idx elt_size =
  let describe () =
    match base.Tast.tdesc with
    | Tast.Tvar vr -> Printf.sprintf "index into '%s'" vr.Tast.vr_name
    | _ -> "index"
  in
  match base.Tast.ety with
  | Ast.Tarray (_, n) ->
    (match imm_of idx with
     | Some k when opt1 st ->
       (* Literal index into a static array: fold the displacement into the
          place. The CCured verdict is known at compile time but the check
          must still execute (and report) exactly as the dynamic form
          would. *)
       let base_place = compile_lvalue st base in
       if st.opts.detector = Ccured then begin
         let ok = alloc_tmp st in
         emit st (Insn.Li (ok, if k >= 0 && k < n then 1 else 0));
         let site =
           new_site st Site.Bounds_check line
             (Printf.sprintf "%s (bound %d)" (describe ()) n)
         in
         emit st (Insn.Checkz (ok, site));
         free_tmp st ok
       end;
       shift_place st base_place (k * elt_size)
     | _ ->
       (* Static array: address of the array plus scaled index; CCured knows
          the bound at the access site. *)
       let base_place = compile_lvalue_or_array_address st base in
       let vi = compile_expr st idx in
       if st.opts.detector = Ccured then begin
         let ok = alloc_tmp st in
         let ok2 = alloc_tmp st in
         emit st (Insn.Cmpi (Insn.Ge, ok, vi, 0));
         emit st (Insn.Cmpi (Insn.Lt, ok2, vi, n));
         emit st (Insn.Binop (Insn.And, ok, ok, ok2));
         let site =
           new_site st Site.Bounds_check line
             (Printf.sprintf "%s (bound %d)" (describe ()) n)
         in
         emit st (Insn.Checkz (ok, site));
         free_tmp st ok2;
         free_tmp st ok
       end;
       if elt_size <> 1 then emit st (Insn.Binopi (Insn.Mul, vi, vi, elt_size));
       emit st (Insn.Binop (Insn.Add, base_place, base_place, vi));
       free_tmp st vi;
       Preg base_place)
  | _ ->
    (* Pointer base: null check only (bounds unknown without fat pointers;
       iWatcher covers these via red zones). *)
    let vp = compile_expr st base in
    emit_null_check st line base vp;
    (match imm_of idx with
     | Some k when opt1 st ->
       if k * elt_size <> 0 then
         emit st (Insn.Binopi (Insn.Add, vp, vp, k * elt_size));
       Preg vp
     | _ ->
       let vi = compile_expr st idx in
       if elt_size <> 1 then emit st (Insn.Binopi (Insn.Mul, vi, vi, elt_size));
       emit st (Insn.Binop (Insn.Add, vp, vp, vi));
       free_tmp st vi;
       Preg vp)

(* Address of an array-typed lvalue, in a fresh temp. *)
and compile_lvalue_or_array_address st (e : Tast.texpr) : Reg.t =
  let place = compile_lvalue st e in
  match place with
  | Preg r -> r
  | Pframe _ | Pglobal _ | Pvreg _ ->
    let t = alloc_tmp st in
    place_address st place ~dst:t;
    t

and emit_null_check st line src v =
  if st.opts.detector = Ccured then begin
    let descr =
      match src.Tast.tdesc with
      | Tast.Tvar vr -> Printf.sprintf "dereference of '%s'" vr.Tast.vr_name
      | _ -> "pointer dereference"
    in
    let ok = alloc_tmp st in
    emit st (Insn.Cmpi (Insn.Ne, ok, v, 0));
    let site = new_site st Site.Null_check line descr in
    emit st (Insn.Checkz (ok, site));
    free_tmp st ok
  end

and compile_call st name args =
  (* Temps live before the call are caller-saved around it, and so are the
     current function's register-allocated variables — the callee owns the
     whole temporary bank. *)
  let saved = live_tmps st @ st.cur_promoted in
  let rec eval_args = function
    | [] -> []
    | a :: rest ->
      let v = compile_operand_seq st a ~rest in
      v :: eval_args rest
  in
  let arg_regs = eval_args args in
  List.iter (fun r -> emit st (Insn.Push r)) saved;
  List.iteri (fun i (r, _) -> emit st (Insn.Mov (Reg.arg i, r))) arg_regs;
  let label =
    match Hashtbl.find_opt st.fn_labels name with
    | Some l -> l
    | None -> error st.last_line "unknown function '%s' at code generation" name
  in
  emit st (Insn.Call (lref label));
  List.rev arg_regs |> List.iter (fun vr -> free_operand st vr);
  List.rev saved |> List.iter (fun r -> emit st (Insn.Pop r));
  let res = alloc_tmp st in
  emit st (Insn.Mov (res, Reg.rv));
  res

and compile_builtin st line builtin args =
  match (builtin, args) with
  | Tast.B_putc, [ a ] ->
    let v, o = compile_operand st a in
    emit st (Insn.Mov (Reg.arg 0, v));
    emit st (Insn.Syscall Insn.Sys_putc);
    free_operand st (v, o);
    let res = alloc_tmp st in
    emit st (Insn.Li (res, 0));
    res
  | Tast.B_getc, [] ->
    emit st (Insn.Syscall Insn.Sys_getc);
    let res = alloc_tmp st in
    emit st (Insn.Mov (res, Reg.rv));
    res
  | Tast.B_print_int, [ a ] ->
    let v, o = compile_operand st a in
    emit st (Insn.Mov (Reg.arg 0, v));
    emit st (Insn.Syscall Insn.Sys_print_int);
    free_operand st (v, o);
    let res = alloc_tmp st in
    emit st (Insn.Li (res, 0));
    res
  | Tast.B_exit, [ a ] ->
    let v, o = compile_operand st a in
    emit st (Insn.Mov (Reg.arg 0, v));
    emit st (Insn.Syscall Insn.Sys_exit);
    free_operand st (v, o);
    let res = alloc_tmp st in
    emit st (Insn.Li (res, 0));
    res
  | Tast.B_watch_region, [ p; n ] | Tast.B_unwatch_region, [ p; n ] ->
    let unwatch = builtin = Tast.B_unwatch_region in
    if st.opts.detector = Iwatcher then begin
      let vp = compile_expr st p in
      let vn = compile_expr st n in
      emit st (Insn.Binop (Insn.Add, vn, vp, vn));
      if unwatch then emit st (Insn.Unwatch (vp, vn))
      else begin
        let site = new_site st Site.Watchpoint line "heap red zone" in
        emit st (Insn.Watch (vp, vn, site))
      end;
      free_tmp st vn;
      free_tmp st vp
    end;
    let res = alloc_tmp st in
    emit st (Insn.Li (res, 0));
    res
  | (Tast.B_putc | Tast.B_getc | Tast.B_print_int | Tast.B_exit
    | Tast.B_watch_region | Tast.B_unwatch_region), _ ->
    error line "builtin arity mismatch (should have been caught earlier)"

(* --- condition compilation with edge stubs -------------------------------- *)

(* Emit one conditional branch plus its two edge stubs. The branch-taken
   target is the true stub; the fallthrough is the false stub. An NT-Path
   spawned on the non-taken edge enters exactly at that edge's stub with the
   predicate register set, so the predicated fix block executes and repairs
   the condition variable, then [Clearpred] ends the fix region. *)
and emit_branch st cmp rs rt atom ~tl ~fl =
  let ltrue = new_label st in
  let br_pc = pc st in
  if not st.cur_runtime then st.user_branches <- br_pc :: st.user_branches;
  (match export_atom atom with
   | Some exported -> st.fix_atoms <- (br_pc, exported) :: st.fix_atoms
   | None -> ());
  emit st (Insn.Br (cmp, rs, rt, lref ltrue));
  (* false stub: the fallthrough edge, where [not cmp] holds *)
  emit_fix_block st (negate_atom atom);
  emit st (Insn.Jmp (lref fl));
  place_label st ltrue;
  emit_fix_block st atom;
  emit st (Insn.Jmp (lref tl))

and compile_cond st (e : Tast.texpr) ~tl ~fl =
  note_line st e.Tast.eline;
  match e.Tast.tdesc with
  | Tast.Tint_lit n -> emit st (Insn.Jmp (lref (if n <> 0 then tl else fl)))
  | Tast.Tunop (Ast.Lnot, e1) -> compile_cond st e1 ~tl:fl ~fl:tl
  | Tast.Tbinop (Ast.Land, a, b) ->
    let mid = new_label st in
    compile_cond st a ~tl:mid ~fl;
    place_label st mid;
    compile_cond st b ~tl ~fl
  | Tast.Tbinop (Ast.Lor, a, b) ->
    let mid = new_label st in
    compile_cond st a ~tl ~fl:mid;
    place_label st mid;
    compile_cond st b ~tl ~fl
  | Tast.Tbinop (op, a, b) when insn_cmp_of_ast op <> None ->
    let cmp = Option.get (insn_cmp_of_ast op) in
    let atom = fix_atom_of_cmp a cmp b in
    if opt1 st then begin
      let va, oa = compile_operand_seq st a ~rest:[ b ] in
      let vb, ob = compile_operand st b in
      emit_branch st cmp va vb atom ~tl ~fl;
      free_operand st (vb, ob);
      free_operand st (va, oa)
    end
    else begin
      let va = compile_expr st a in
      let vb = compile_expr st b in
      emit_branch st cmp va vb atom ~tl ~fl;
      free_tmp st vb;
      free_tmp st va
    end
  | _ ->
    let atom =
      match Tast.fixable_var e with
      | Some vr -> Fa_var_const (vr, Insn.Ne, 0)
      | None -> Fa_none
    in
    let v, o = compile_operand st e in
    emit_branch st Insn.Ne v Reg.zero atom ~tl ~fl;
    free_operand st (v, o)

(* --- statements ----------------------------------------------------------- *)

(* A statement-position expression: the value is discarded, which at O1+
   lets an assignment to a register-allocated variable compile straight
   into its register ([i = i + 1] becomes one [Binopi]). *)
let rec compile_expr_stmt st (e : Tast.texpr) =
  note_line st e.Tast.eline;
  match e.Tast.tdesc with
  | Tast.Tassign
      ( { Tast.tdesc = Tast.Tvar ({ Tast.vr_storage = Tast.Reg r; _ } as _vr); _ },
        rhs )
    when opt1 st ->
    compile_into st rhs ~dst:r
  | _ ->
    let v = compile_expr st e in
    free_tmp st v

(* Compile [rhs] directly into register [dst] (the home of a
   register-allocated variable). Reading [dst] inside [rhs] is fine: the
   write is the final emitted instruction. *)
and compile_into st (rhs : Tast.texpr) ~dst =
  note_line st rhs.Tast.eline;
  match rhs.Tast.tdesc with
  | Tast.Tint_lit n -> emit st (Insn.Li (dst, n))
  | Tast.Tvar { Tast.vr_storage = Tast.Reg r; vr_ty = Ast.Tint | Ast.Tptr _; _ }
    ->
    if r <> dst then emit st (Insn.Mov (dst, r))
  | Tast.Tbinop (op, a, b) when insn_binop_of_ast op <> None ->
    let insn_op = Option.get (insn_binop_of_ast op) in
    (match (imm_of b, imm_of a) with
     | Some k, Some j ->
       (* both literal: only div/mod-by-zero survives folding *)
       let va = alloc_tmp st in
       emit st (Insn.Li (va, j));
       emit st (Insn.Binopi (insn_op, dst, va, k));
       free_tmp st va
     | Some k, None ->
       let va, oa = compile_operand st a in
       emit st (Insn.Binopi (insn_op, dst, va, k));
       free_operand st (va, oa)
     | None, Some j when commutes insn_op ->
       let vb, ob = compile_operand st b in
       emit st (Insn.Binopi (insn_op, dst, vb, j));
       free_operand st (vb, ob)
     | _ ->
       let va, oa = compile_operand_seq st a ~rest:[ b ] in
       let vb, ob = compile_operand st b in
       emit st (Insn.Binop (insn_op, dst, va, vb));
       free_operand st (vb, ob);
       free_operand st (va, oa))
  | Tast.Tbinop (op, a, b) when insn_cmp_of_ast op <> None -> (
    let cmp = Option.get (insn_cmp_of_ast op) in
    match (imm_of b, imm_of a) with
    | Some k, None ->
      let va, oa = compile_operand st a in
      emit st (Insn.Cmpi (cmp, dst, va, k));
      free_operand st (va, oa)
    | None, Some k ->
      let vb, ob = compile_operand st b in
      emit st (Insn.Cmpi (cmp_mirror cmp, dst, vb, k));
      free_operand st (vb, ob)
    | _ ->
      let va, oa = compile_operand_seq st a ~rest:[ b ] in
      let vb, ob = compile_operand st b in
      emit st (Insn.Cmp (cmp, dst, va, vb));
      free_operand st (vb, ob);
      free_operand st (va, oa))
  | _ ->
    let v = compile_expr st rhs in
    emit st (Insn.Mov (dst, v));
    free_tmp st v

let rec compile_stmt st (s : Tast.tstmt) =
  note_line st s.Tast.tsline;
  match s.Tast.tsdesc with
  | Tast.TSexpr e -> compile_expr_stmt st e
  | Tast.TSif (c, then_s, else_s) ->
    let lt = new_label st and lf = new_label st and lend = new_label st in
    compile_cond st c ~tl:lt ~fl:lf;
    place_label st lt;
    List.iter (compile_stmt st) then_s;
    emit st (Insn.Jmp (lref lend));
    place_label st lf;
    List.iter (compile_stmt st) else_s;
    place_label st lend
  | Tast.TSwhile (c, body) ->
    let lcond = new_label st and lbody = new_label st and lend = new_label st in
    place_label st lcond;
    compile_cond st c ~tl:lbody ~fl:lend;
    place_label st lbody;
    st.break_labels <- lend :: st.break_labels;
    st.continue_labels <- lcond :: st.continue_labels;
    List.iter (compile_stmt st) body;
    st.break_labels <- List.tl st.break_labels;
    st.continue_labels <- List.tl st.continue_labels;
    emit st (Insn.Jmp (lref lcond));
    place_label st lend
  | Tast.TSfor (init, cond, step, body) ->
    (match init with
     | Some e -> compile_expr_stmt st e
     | None -> ());
    let lcond = new_label st
    and lbody = new_label st
    and lstep = new_label st
    and lend = new_label st in
    place_label st lcond;
    (match cond with
     | Some c -> compile_cond st c ~tl:lbody ~fl:lend
     | None -> emit st (Insn.Jmp (lref lbody)));
    place_label st lbody;
    st.break_labels <- lend :: st.break_labels;
    st.continue_labels <- lstep :: st.continue_labels;
    List.iter (compile_stmt st) body;
    st.break_labels <- List.tl st.break_labels;
    st.continue_labels <- List.tl st.continue_labels;
    place_label st lstep;
    (match step with
     | Some e -> compile_expr_stmt st e
     | None -> ());
    emit st (Insn.Jmp (lref lcond));
    place_label st lend
  | Tast.TSreturn None -> emit st (Insn.Jmp (lref st.ret_label))
  | Tast.TSreturn (Some e) ->
    let v, o = compile_operand st e in
    emit st (Insn.Mov (Reg.rv, v));
    free_operand st (v, o);
    emit st (Insn.Jmp (lref st.ret_label))
  | Tast.TSbreak ->
    (match st.break_labels with
     | l :: _ -> emit st (Insn.Jmp (lref l))
     | [] -> error s.Tast.tsline "'break' outside a loop")
  | Tast.TScontinue ->
    (match st.continue_labels with
     | l :: _ -> emit st (Insn.Jmp (lref l))
     | [] -> error s.Tast.tsline "'continue' outside a loop")
  | Tast.TSassert e ->
    if st.opts.detector = Assertions then begin
      st.branch_free <- true;
      let v = compile_expr st e in
      st.branch_free <- false;
      let site =
        new_site st Site.Assertion s.Tast.tsline
          (Printf.sprintf "assertion at line %d" s.Tast.tsline)
      in
      emit st (Insn.Checkz (v, site));
      free_tmp st v
    end
  | Tast.TSblock body -> List.iter (compile_stmt st) body

(* --- functions & program -------------------------------------------------- *)

let local_array_bounds (la : Tast.local_array) =
  match la.Tast.la_ref.Tast.vr_storage with
  | Tast.Local off -> (off, la.Tast.la_elems)
  | Tast.Global _ | Tast.Reg _ -> assert false

let emit_local_watches st (f : Tast.tfunc) ~unwatch =
  if st.opts.detector = Iwatcher then
    List.iter
      (fun la ->
        let off, elems = local_array_bounds la in
        let lo = alloc_tmp st in
        let hi = alloc_tmp st in
        emit st (Insn.Binopi (Insn.Add, lo, Reg.fp, off + elems));
        emit st
          (Insn.Binopi (Insn.Add, hi, Reg.fp, off + elems + Typecheck.redzone_words));
        if unwatch then emit st (Insn.Unwatch (lo, hi))
        else begin
          let site =
            new_site st Site.Watchpoint f.Tast.tf_line
              (Printf.sprintf "red zone of '%s' in %s"
                 la.Tast.la_ref.Tast.vr_name f.Tast.tf_name)
          in
          emit st (Insn.Watch (lo, hi, site))
        end;
        free_tmp st hi;
        free_tmp st lo)
      f.Tast.tf_local_arrays

(* The register-allocated variables of a function, by scanning for [Reg]
   storages (ascending register order for a deterministic save sequence).
   Also drives the temp-bank split: a promoted temporary is fenced off from
   [alloc_tmp] for the whole function. *)
let promoted_regs (f : Tast.tfunc) =
  let acc = ref [] in
  let note = function
    | { Tast.vr_storage = Tast.Reg r; _ } ->
      if not (List.mem r !acc) then acc := r :: !acc
    | _ -> ()
  in
  let rec expr (e : Tast.texpr) =
    match e.Tast.tdesc with
    | Tast.Tvar vr -> note vr
    | Tast.Tint_lit _ | Tast.Tstr_addr _ -> ()
    | Tast.Tunop (_, a) | Tast.Tderef a | Tast.Taddr a | Tast.Tfield (a, _)
    | Tast.Tarrow (a, _) ->
      expr a
    | Tast.Tbinop (_, a, b) | Tast.Tptr_add (a, b, _) | Tast.Tptr_diff (a, b, _)
    | Tast.Tassign (a, b) | Tast.Tindex (a, b, _) ->
      expr a;
      expr b
    | Tast.Tcall_fn (_, args) | Tast.Tcall_builtin (_, args) ->
      List.iter expr args
    | Tast.Tcond (a, b, c) ->
      expr a;
      expr b;
      expr c
  in
  let rec stmt (s : Tast.tstmt) =
    match s.Tast.tsdesc with
    | Tast.TSexpr e | Tast.TSassert e -> expr e
    | Tast.TSif (c, a, b) ->
      expr c;
      List.iter stmt a;
      List.iter stmt b
    | Tast.TSwhile (c, body) ->
      expr c;
      List.iter stmt body
    | Tast.TSfor (i, c, st_, body) ->
      Option.iter expr i;
      Option.iter expr c;
      Option.iter expr st_;
      List.iter stmt body
    | Tast.TSreturn e -> Option.iter expr e
    | Tast.TSbreak | Tast.TScontinue -> ()
    | Tast.TSblock body -> List.iter stmt body
  in
  List.iter note f.Tast.tf_params;
  List.iter stmt f.Tast.tf_body;
  List.sort compare !acc

let compile_func st (f : Tast.tfunc) =
  let label = Hashtbl.find st.fn_labels f.Tast.tf_name in
  place_label st label;
  st.functions <- (f.Tast.tf_name, pc st) :: st.functions;
  st.cur_runtime <- f.Tast.tf_is_runtime;
  st.cur_promoted <- promoted_regs f;
  st.tmp_limit <-
    List.fold_left
      (fun limit r ->
        let idx = r - Reg.tmp 0 in
        if idx >= 0 && idx < expr_tmps then min limit idx else limit)
      expr_tmps st.cur_promoted;
  st.tmp_high <- 0;
  st.ret_label <- new_label st;
  note_line st f.Tast.tf_line;
  emit st (Insn.Push Reg.fp);
  emit st (Insn.Mov (Reg.fp, Reg.sp));
  if f.Tast.tf_frame_words > 0 then
    emit st (Insn.Binopi (Insn.Sub, Reg.sp, Reg.sp, f.Tast.tf_frame_words));
  List.iteri
    (fun i vr ->
      match vr.Tast.vr_storage with
      | Tast.Local off -> emit st (Insn.Store (Reg.arg i, Reg.fp, off))
      | Tast.Reg r -> emit st (Insn.Mov (r, Reg.arg i))
      | Tast.Global _ -> assert false)
    f.Tast.tf_params;
  emit_local_watches st f ~unwatch:false;
  List.iter (compile_stmt st) f.Tast.tf_body;
  place_label st st.ret_label;
  emit_local_watches st f ~unwatch:true;
  emit st (Insn.Mov (Reg.sp, Reg.fp));
  emit st (Insn.Pop Reg.fp);
  emit st Insn.Ret;
  if not f.Tast.tf_is_runtime then begin
    let start_pc = List.assoc f.Tast.tf_name st.functions in
    st.user_ranges <- (start_pc, pc st) :: st.user_ranges
  end;
  st.highwater := (f.Tast.tf_name, st.tmp_high) :: !(st.highwater);
  st.cur_promoted <- [];
  st.tmp_limit <- expr_tmps;
  if st.tmp_next <> 0 then
    error f.Tast.tf_line "internal: temporaries leaked in '%s'" f.Tast.tf_name

let emit_entry_stub st =
  st.functions <- ("__start", pc st) :: st.functions;
  st.cur_runtime <- true;
  if st.opts.detector = Iwatcher then
    List.iter
      (fun ga ->
        match ga.Tast.ga_ref.Tast.vr_storage with
        | Tast.Global addr ->
          let lo = alloc_tmp st in
          let hi = alloc_tmp st in
          emit st (Insn.Li (lo, addr + ga.Tast.ga_elems));
          emit st (Insn.Li (hi, addr + ga.Tast.ga_elems + Typecheck.redzone_words));
          let site =
            new_site st Site.Watchpoint ga.Tast.ga_line
              (Printf.sprintf "red zone of global '%s'"
                 ga.Tast.ga_ref.Tast.vr_name)
          in
          emit st (Insn.Watch (lo, hi, site));
          free_tmp st hi;
          free_tmp st lo
        | Tast.Local _ | Tast.Reg _ -> assert false)
      st.tp.Tast.tp_global_arrays;
  let main_label = Hashtbl.find st.fn_labels "main" in
  emit st (Insn.Call (lref main_label));
  emit st Insn.Halt

let select_state ?(options = default_options) ?(level = Opt.O0) tp =
  let st = create_state options level tp in
  List.iter
    (fun f -> Hashtbl.replace st.fn_labels f.Tast.tf_name (new_label st))
    tp.Tast.tp_funcs;
  emit_entry_stub st;
  List.iter (compile_func st) tp.Tast.tp_funcs;
  st

(* Instruction selection to label-form assembly. *)
let select ?options ?level (tp : Tast.tprogram) : Asmprog.t =
  let st = select_state ?options ?level tp in
  {
    Asmprog.code = Vec.to_array st.code;
    labels = st.labels;
    sites = Array.of_list (List.rev st.sites);
    user_branches = List.rev st.user_branches;
    functions = List.rev st.functions;
    user_ranges = List.rev st.user_ranges;
    fix_atoms = List.rev st.fix_atoms;
    source_lines =
      List.sort (fun (a, _) (b, _) -> compare a b) (List.rev st.source_lines);
  }

(* Per-function high-water mark of the expression-temporary stack, measured
   by a throwaway selection run. The register allocator uses this to learn
   which high temporaries a function never touches; promotion only ever
   *lowers* temp pressure (borrowed reads replace owned copies), so the
   probe is a sound upper bound for the final emission. *)
let probe_tmp_highwater ?options ?level tp =
  let st = select_state ?options ?level tp in
  !(st.highwater)

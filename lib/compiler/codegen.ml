(* Compatibility facade over the nanopass pipeline. The single-pass code
   generator that used to live here was split into named passes —
   [Instr_select] (selection + the paper's fixing/detector instrumentation),
   the O1 tast passes ([Desugar], [Uniquify], [Fold_const], [Dce],
   [Unused_defs]), [Regalloc], [Jump_opt] and [Lower] — driven by
   [Pipeline]. This module re-exports the public surface under its
   historical name so existing callers (tests, workloads, experiments)
   keep compiling unchanged. *)

type detector = Instr_select.detector =
  | No_detector
  | Ccured
  | Iwatcher
  | Assertions

let detector_name = Instr_select.detector_name

type options = Instr_select.options = { detector : detector; fixing : bool }

let default_options = Instr_select.default_options

exception Error = Instr_select.Error

let boundary_value = Instr_select.boundary_value

let generate ?options ?level ?dump (tp : Tast.tprogram) : Program.t =
  Pipeline.run ?options ?level ?dump tp

(* Register allocation (O2): promote hot never-address-taken scalar locals
   (and parameters) out of the frame into machine registers, rewriting their
   storage to [Tast.Reg] for instruction selection to honor.

   The register file is shared with the expression-temporary stack, so the
   pool for a function is exactly the temporaries selection provably never
   touches: [Instr_select.probe_tmp_highwater] runs a throwaway selection of
   the unpromoted program at the same level and reports each function's
   temp high-water mark; indices from the mark up to t16 are free (t17 stays
   the fix scratch), plus r1, which the software convention leaves unused.
   Promotion only ever lowers temp pressure — promoted reads borrow the
   register instead of allocating a copy — so the probe is a sound bound.

   Candidates are ranked by a static use count weighted by loop depth
   (×8 per level, capped at two levels), ties broken by frame offset in
   declaration order; everything is deterministic. Aggregates, globals and
   any variable whose address is taken stay in memory. *)

(* r1: defined by the ISA but given no role by the software convention
   (r0 = zero, r2 = rv, a0.. from r3), so it is free for allocation. *)
let spare_reg : Reg.t = 1

let loop_weight depth = match depth with 0 -> 1 | 1 -> 8 | _ -> 64

type cand = { mutable score : int }

let collect_candidates (f : Tast.tfunc) =
  let cands : (int, cand) Hashtbl.t = Hashtbl.create 16 in
  let banned = Hashtbl.create 8 in
  let note ?(weight = 1) vr =
    match (vr.Tast.vr_storage, vr.Tast.vr_ty) with
    | Tast.Local off, (Ast.Tint | Ast.Tptr _) ->
      (match Hashtbl.find_opt cands off with
       | Some c -> c.score <- c.score + weight
       | None -> Hashtbl.replace cands off { score = weight })
    | _ -> ()
  in
  let ban vr =
    match vr.Tast.vr_storage with
    | Tast.Local off -> Hashtbl.replace banned off ()
    | _ -> ()
  in
  let rec expr depth (e : Tast.texpr) =
    let w = loop_weight depth in
    match e.Tast.tdesc with
    | Tast.Tint_lit _ | Tast.Tstr_addr _ -> ()
    | Tast.Tvar vr -> note ~weight:w vr
    | Tast.Taddr { Tast.tdesc = Tast.Tvar vr; _ } -> ban vr
    | Tast.Tunop (_, a) | Tast.Tderef a | Tast.Taddr a | Tast.Tfield (a, _)
    | Tast.Tarrow (a, _) ->
      expr depth a
    | Tast.Tbinop (_, a, b)
    | Tast.Tptr_add (a, b, _)
    | Tast.Tptr_diff (a, b, _)
    | Tast.Tassign (a, b)
    | Tast.Tindex (a, b, _) ->
      expr depth a;
      expr depth b
    | Tast.Tcall_fn (_, args) | Tast.Tcall_builtin (_, args) ->
      List.iter (expr depth) args
    | Tast.Tcond (a, b, c) ->
      expr depth a;
      expr depth b;
      expr depth c
  in
  let rec stmt depth (s : Tast.tstmt) =
    match s.Tast.tsdesc with
    | Tast.TSexpr e | Tast.TSassert e -> expr depth e
    | Tast.TSif (c, a, b) ->
      expr depth c;
      List.iter (stmt depth) a;
      List.iter (stmt depth) b
    | Tast.TSwhile (c, body) ->
      expr (depth + 1) c;
      List.iter (stmt (depth + 1)) body
    | Tast.TSfor (init, cond, step, body) ->
      Option.iter (expr depth) init;
      Option.iter (expr (depth + 1)) cond;
      Option.iter (expr (depth + 1)) step;
      List.iter (stmt (depth + 1)) body
    | Tast.TSreturn e -> Option.iter (expr depth) e
    | Tast.TSbreak | Tast.TScontinue -> ()
    | Tast.TSblock body -> List.iter (stmt depth) body
  in
  List.iter (fun vr -> note vr) f.Tast.tf_params;
  List.iter (stmt 0) f.Tast.tf_body;
  Hashtbl.fold
    (fun off c acc ->
      if Hashtbl.mem banned off then acc else (off, c.score) :: acc)
    cands []
  (* score descending; ties in declaration order (offsets descend from -1) *)
  |> List.sort (fun (o1, s1) (o2, s2) ->
         if s1 <> s2 then compare s2 s1 else compare o2 o1)

let alloc_func ~highwater (f : Tast.tfunc) =
  let hw =
    match List.assoc_opt f.Tast.tf_name highwater with
    | Some hw -> hw
    | None -> Instr_select.expr_tmps  (* unknown: no free temps assumed *)
  in
  (* free pool, best (highest, least constraining) first *)
  let pool =
    spare_reg
    :: List.init
         (max 0 (Instr_select.expr_tmps - hw))
         (fun i -> Reg.tmp (Instr_select.expr_tmps - 1 - i))
  in
  let cands = collect_candidates f in
  let assign =
    let rec pair cands pool =
      match (cands, pool) with
      | (off, _) :: cs, r :: rs -> (off, r) :: pair cs rs
      | _, [] | [], _ -> []
    in
    pair cands pool
  in
  if assign = [] then f
  else
    Tast_map.map_func
      (fun vr ->
        match vr.Tast.vr_storage with
        | Tast.Local off ->
          (match List.assoc_opt off assign with
           | Some r -> { vr with Tast.vr_storage = Tast.Reg r }
           | None -> vr)
        | _ -> vr)
      f

let run ~options ~level (tp : Tast.tprogram) =
  let highwater = Instr_select.probe_tmp_highwater ~options ~level tp in
  { tp with Tast.tp_funcs = List.map (alloc_func ~highwater) tp.Tast.tp_funcs }

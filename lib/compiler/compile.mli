(** The compiler front door: MiniC source to an executable program image. *)

(** Any front-end failure (lex, parse, type, codegen), with stage and line
    folded into the message. *)
exception Error of string

type compiled = {
  program : Program.t;
  tags : (string * int) list;  (** [//@tag name] -> source line *)
}

(** Compile a MiniC source string together with the runtime prelude.
    [options] selects the detector instrumentation and whether the
    consistency-fixing stubs are emitted (defaults: no detector, fixing
    on). [level] selects the optimization pipeline, defaulting to the
    process-wide {!Opt.default_level}; [dump] observes each executed
    pass's pretty-printed output (see {!Pipeline.run}). *)
val compile :
  ?options:Codegen.options ->
  ?level:Opt.level ->
  ?dump:(string -> string -> unit) ->
  string ->
  compiled

(** Source line named by a [//@tag] marker; raises {!Error} when absent. *)
val tag_line : compiled -> string -> int

(* Typed abstract syntax: names resolved to storage, field offsets computed,
   pointer arithmetic scales annotated. Produced by [Typecheck], consumed by
   [Codegen]. *)

type storage =
  | Global of int  (* absolute word address of the object's first word *)
  | Local of int  (* fp-relative offset of the object's first word (< 0) *)
  | Reg of Reg.t
      (* register-allocated scalar (O2 only): a never-address-taken local
         promoted out of the frame by [Regalloc]. Typecheck never produces
         this. *)

type var_ref = { vr_name : string; vr_ty : Ast.ty; vr_storage : storage }

type field_info = { f_name : string; f_offset : int; f_ty : Ast.ty }

type builtin =
  | B_putc
  | B_getc
  | B_print_int
  | B_exit
  | B_watch_region
  | B_unwatch_region

type texpr = { tdesc : tdesc; ety : Ast.ty; eline : int }

and tdesc =
  | Tint_lit of int
  | Tstr_addr of int  (* interned string literal: its global address *)
  | Tvar of var_ref
  | Tunop of Ast.unop * texpr
  | Tbinop of Ast.binop * texpr * texpr  (* int x int ops and comparisons *)
  | Tptr_add of texpr * texpr * int  (* pointer + index, scale in words *)
  | Tptr_diff of texpr * texpr * int  (* (p - q) / scale *)
  | Tassign of texpr * texpr  (* lhs is lvalue-shaped *)
  | Tcall_fn of string * texpr list
  | Tcall_builtin of builtin * texpr list
  | Tindex of texpr * texpr * int  (* base, index, element size in words *)
  | Tderef of texpr
  | Taddr of texpr
  | Tfield of texpr * field_info
  | Tarrow of texpr * field_info
  | Tcond of texpr * texpr * texpr

type tstmt = { tsdesc : tsdesc; tsline : int }

and tsdesc =
  | TSexpr of texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSfor of texpr option * texpr option * texpr option * tstmt list
  | TSreturn of texpr option
  | TSbreak
  | TScontinue
  | TSassert of texpr
  | TSblock of tstmt list

type local_array = { la_ref : var_ref; la_elems : int }

type tfunc = {
  tf_name : string;
  tf_ret : Ast.ty;
  tf_params : var_ref list;
  tf_body : tstmt list;
  tf_frame_words : int;
  tf_local_arrays : local_array list;  (* for iWatcher red-zone watching *)
  tf_is_runtime : bool;  (* prelude function: excluded from user coverage *)
  tf_line : int;
}

type global_array = { ga_ref : var_ref; ga_elems : int; ga_line : int }

type tprogram = {
  tp_funcs : tfunc list;
  tp_global_vars : (string * int) list;  (* global name -> address *)
  tp_globals_words : int;
  tp_init_data : (int * int) list;
  tp_global_arrays : global_array list;
  tp_blank_addrs : (string * int) list;  (* type name -> blank structure *)
  tp_struct_sizes : (string * int) list;
  tp_tags : (string * int) list;  (* //@tag name -> source line *)
}

(* True when an expression is a directly-addressable scalar variable — the
   kind whose value the NT-Path consistency fix can repair in memory. *)
let fixable_var texpr =
  match texpr.tdesc with
  | Tvar ({ vr_ty = Ast.Tint | Ast.Tptr _; _ } as v) -> Some v
  | Tvar _ | Tint_lit _ | Tstr_addr _ | Tunop _ | Tbinop _ | Tptr_add _
  | Tptr_diff _ | Tassign _ | Tcall_fn _ | Tcall_builtin _ | Tindex _
  | Tderef _ | Taddr _ | Tfield _ | Tarrow _ | Tcond _ ->
    None

(* True when evaluating the expression has no observable effect: no stores,
   no calls, no possible fault (division/modulo), and no memory traffic that
   a detector could be watching (indexing, dereferences and field loads all
   carry bounds/null checks or can touch red zones, so they count as
   effects — dropping one would drop a potential bug report). Used by the
   O1 constant-folding and dead-code passes. *)
let rec is_pure (e : texpr) =
  match e.tdesc with
  | Tint_lit _ | Tstr_addr _ | Tvar _ -> true
  | Tunop (_, a) -> is_pure a
  | Tbinop ((Ast.Div | Ast.Mod), _, _) -> false
  | Tbinop (_, a, b) -> is_pure a && is_pure b
  | Tptr_add (a, b, _) | Tptr_diff (a, b, _) -> is_pure a && is_pure b
  | Tcond (a, b, c) -> is_pure a && is_pure b && is_pure c
  | Taddr { tdesc = Tvar _; _ } -> true
  | Tassign _ | Tcall_fn _ | Tcall_builtin _ | Tindex _ | Tderef _
  | Tfield _ | Tarrow _ | Taddr _ ->
    false

(* Uniquify (O1+): give every local variable of a function a name that is
   unique within the function and distinct from every global. Storage is
   already unique (typecheck never reuses a frame slot), so this pass is
   about the *printed* form: after it, [Tast_print] output parses back to a
   program with the same storage assignment even when the source shadowed
   names across block scopes. Renames use the [name__2] convention. *)

let uniquify_func ~global_names (f : Tast.tfunc) =
  (* storages in first-appearance order: parameters, then body layout *)
  let order = ref [] in
  let note vr =
    (match vr.Tast.vr_storage with
     | Tast.Local _ | Tast.Reg _ ->
       if not (List.mem_assoc vr.Tast.vr_storage !order) then
         order := (vr.Tast.vr_storage, vr.Tast.vr_name) :: !order
     | Tast.Global _ -> ());
    vr
  in
  List.iter (fun vr -> ignore (note vr)) f.Tast.tf_params;
  ignore (Tast_map.map_func note f);
  let used = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace used g ()) global_names;
  let rename = Hashtbl.create 16 in
  List.iter
    (fun (storage, name) ->
      let final =
        if not (Hashtbl.mem used name) then name
        else
          let rec next i =
            let cand = Printf.sprintf "%s__%d" name i in
            if Hashtbl.mem used cand then next (i + 1) else cand
          in
          next 2
      in
      Hashtbl.replace used final ();
      Hashtbl.replace rename storage final)
    (List.rev !order);
  Tast_map.map_func
    (fun vr ->
      match vr.Tast.vr_storage with
      | Tast.Local _ | Tast.Reg _ ->
        { vr with Tast.vr_name = Hashtbl.find rename vr.Tast.vr_storage }
      | Tast.Global _ -> vr)
    f

let run (tp : Tast.tprogram) =
  let global_names = List.map fst tp.Tast.tp_global_vars in
  { tp with Tast.tp_funcs = List.map (uniquify_func ~global_names) tp.Tast.tp_funcs }

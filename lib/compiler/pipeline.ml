(* The nanopass pipeline driver: a named sequence of IR→IR passes from the
   typed AST down to the executable image, gated by optimization level.

     tast:  desugar → uniquify → fold-const → dce → remove-unused-defs   (O1+)
            → regalloc                                                   (O2)
     asm:   instr-select (always) → jump-opt                             (O1+)
            → lower (always)

   [O0] runs selection and lowering only and is byte-identical to the
   historical single-pass code generator. Every pass has a pretty-printed
   form surfaced through the [dump] hook ([--dump-pass NAME] on bin/pexp):
   tast passes render as annotated MiniC, assembly passes as label-form
   assembly, lowering as a disassembly of the final image. *)

let tast_passes ~options ~level =
  [
    ("desugar", Desugar.run, Opt.O1);
    ("uniquify", Uniquify.run, Opt.O1);
    ("fold-const", Fold_const.run, Opt.O1);
    ("dce", Dce.run, Opt.O1);
    ("remove-unused-defs", Unused_defs.run, Opt.O1);
    ("regalloc", Regalloc.run ~options ~level, Opt.O2);
  ]

let pass_names =
  [
    "desugar";
    "uniquify";
    "fold-const";
    "dce";
    "remove-unused-defs";
    "regalloc";
    "instr-select";
    "jump-opt";
    "lower";
  ]

let run ?(options = Instr_select.default_options) ?level
    ?(dump : (string -> string -> unit) option) (tp : Tast.tprogram) : Program.t
    =
  let level = match level with Some l -> l | None -> Opt.default_level () in
  let emit_dump name render =
    match dump with Some f -> f name (render ()) | None -> ()
  in
  let tp =
    List.fold_left
      (fun tp (name, pass, floor) ->
        if Opt.at_least level floor then begin
          let tp = pass tp in
          emit_dump name (fun () -> Tast_print.program_to_string ~annotate:true tp);
          tp
        end
        else tp)
      tp
      (tast_passes ~options ~level)
  in
  let ap = Instr_select.select ~options ~level tp in
  emit_dump "instr-select" (fun () -> Asmprog.to_string ap);
  let ap =
    if Opt.at_least level Opt.O1 then begin
      let ap = Jump_opt.run ap in
      emit_dump "jump-opt" (fun () -> Asmprog.to_string ap);
      ap
    end
    else ap
  in
  let program = Lower.run ap tp in
  emit_dump "lower" (fun () -> Program.disassemble program);
  program

exception Error of string

let fail stage msg line =
  raise (Error (Printf.sprintf "%s error at line %d: %s" stage line msg))

type compiled = {
  program : Program.t;
  tags : (string * int) list;  (* //@tag name -> source line *)
}

(* Compile a MiniC source string, together with the runtime prelude, into an
   executable program image. [level] picks the optimization pipeline
   (default: the process-wide {!Opt.default_level}); [dump] observes each
   executed pass's pretty-printed output. *)
let compile ?(options = Codegen.default_options) ?level ?dump source =
  try
    let user, tags = Parser.parse_string source in
    let prelude, _ =
      Parser.parse_string ~first_line:Prelude.first_line Prelude.source
    in
    let tp = Typecheck.check ~user ~prelude ~tags in
    { program = Codegen.generate ~options ?level ?dump tp; tags }
  with
  | Lexer.Error (msg, line) -> fail "lex" msg line
  | Parser.Error (msg, line) -> fail "parse" msg line
  | Typecheck.Error (msg, line) -> fail "type" msg line
  | Codegen.Error (msg, line) -> fail "codegen" msg line

(* Source line named by a //@tag marker. *)
let tag_line compiled name =
  match List.assoc_opt name compiled.tags with
  | Some line -> line
  | None -> raise (Error (Printf.sprintf "unknown source tag '%s'" name))

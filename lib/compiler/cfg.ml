(* Control-flow-graph export and prime-path enumeration over a compiled
   image — the static half of the Coverage Observatory (DESIGN.md §15).

   The graph is intraprocedural and covers *user* code only (the same
   universe branch coverage reports over): one subgraph per
   [Program.user_code_ranges] entry, nodes are basic blocks, edges the
   taken-path control-flow successors. [Call] is treated as straight-line
   (control returns to the fallthrough), and predicated instructions as NOPs
   — both match what the taken path of a monitored run actually does, which
   is the execution the coverage bitmaps describe.

   Prime paths follow Ammann & Offutt: a prime path is a maximal simple
   path — a path with no repeated node (except possibly first = last,
   closing a cycle) that is not a proper subpath of any other simple path.
   Enumeration is worklist extension from every node with an explicit work
   budget; when the budget trips, the still-extendable paths are *counted*
   as truncated rather than silently dropped (the no-silent-caps rule), so
   a reported prime-path coverage always says how much of the path universe
   it was computed over. *)

type edge_kind =
  | E_fall  (* fallthrough / unconditional jump *)
  | E_taken of int  (* taken edge of the conditional branch at this pc *)
  | E_nontaken of int  (* fallthrough edge of the conditional branch *)

type block = {
  b_first : int;  (* pc of the first instruction *)
  b_last : int;  (* pc of the last instruction (the terminator) *)
}

type t = {
  blocks : block array;
  succs : (int * edge_kind) list array;  (* successor block indices *)
  func_of_block : string array;  (* enclosing user function name *)
  decision_pcs : int list;  (* user-branch pcs that appear as block terminators *)
}

(* Branch decision carried by an edge, as a (branch pc, direction) pair —
   the coordinates branch coverage is recorded in. *)
let edge_decision = function
  | E_fall -> None
  | E_taken pc -> Some (pc, true)
  | E_nontaken pc -> Some (pc, false)

(* Note on predication: predicated code retires as a NOP outside NT-Path
   entry, so for the taken-path CFG a [Pred (Jmp _)] is straight-line — the
   block builder below therefore matches raw instructions and never strips
   [Pred]. *)
let of_program (program : Program.t) =
  let code = program.Program.code in
  let n = Array.length code in
  let ubits = Bytes.make n '\000' in
  List.iter
    (fun pc -> if pc >= 0 && pc < n then Bytes.set ubits pc '\001')
    program.Program.user_branches;
  let blocks = ref [] in
  let succs = ref [] in
  let funcs = ref [] in
  List.iter
    (fun (lo, hi) ->
      let hi = min hi n in
      if lo >= 0 && lo < hi then begin
        let fname =
          match Program.function_of_pc program lo with
          | Some f -> f
          | None -> Printf.sprintf "range@%d" lo
        in
        (* Leaders: the range entry, every in-range control target, and
           every instruction following a terminator. Predication is
           stripped only for coverage-universe branches — a predicated
           branch never fires on the taken path, so it neither ends a block
           nor contributes its target as a leader. *)
        let leader = Bytes.make (hi - lo) '\000' in
        let mark pc = if pc >= lo && pc < hi then Bytes.set leader (pc - lo) '\001' in
        mark lo;
        for pc = lo to hi - 1 do
          match code.(pc) with
          | Insn.Br (_, _, _, target) ->
            mark target;
            mark (pc + 1)
          | Insn.Jmp target ->
            mark target;
            mark (pc + 1)
          | Insn.Ret | Insn.Halt | Insn.Syscall Insn.Sys_exit -> mark (pc + 1)
          | _ -> ()
        done;
        (* Collect the range's blocks in pc order. *)
        let starts = ref [] in
        for pc = hi - 1 downto lo do
          if Bytes.get leader (pc - lo) = '\001' then starts := pc :: !starts
        done;
        let starts = Array.of_list !starts in
        let nb = Array.length starts in
        let base = List.length !blocks in
        let block_index_of_pc pc =
          (* binary search: the block whose [b_first] is the greatest <= pc *)
          let l = ref 0 and r = ref (nb - 1) in
          while !l < !r do
            let m = (!l + !r + 1) / 2 in
            if starts.(m) <= pc then l := m else r := m - 1
          done;
          if starts.(!l) <= pc then Some (base + !l) else None
        in
        for i = 0 to nb - 1 do
          let b_first = starts.(i) in
          let b_last = (if i + 1 < nb then starts.(i + 1) else hi) - 1 in
          let term = code.(b_last) in
          let in_range pc = pc >= lo && pc < hi in
          let s =
            match term with
            | Insn.Br (_, _, _, target) ->
              let taken =
                if in_range target then
                  match block_index_of_pc target with
                  | Some b ->
                    if Bytes.get ubits b_last = '\001' then
                      [ (b, E_taken b_last) ]
                    else [ (b, E_fall) ]
                  | None -> []
                else []
              in
              let fall =
                if in_range (b_last + 1) then
                  match block_index_of_pc (b_last + 1) with
                  | Some b ->
                    if Bytes.get ubits b_last = '\001' then
                      [ (b, E_nontaken b_last) ]
                    else [ (b, E_fall) ]
                  | None -> []
                else []
              in
              taken @ fall
            | Insn.Jmp target ->
              if in_range target then
                match block_index_of_pc target with
                | Some b -> [ (b, E_fall) ]
                | None -> []
              else []
            | Insn.Ret | Insn.Halt | Insn.Syscall Insn.Sys_exit -> []
            | _ ->
              (* straight-line end of block (next pc is a leader), or the
                 end of the range *)
              if in_range (b_last + 1) then
                match block_index_of_pc (b_last + 1) with
                | Some b -> [ (b, E_fall) ]
                | None -> []
              else []
          in
          blocks := { b_first; b_last } :: !blocks;
          succs := s :: !succs;
          funcs := fname :: !funcs
        done
      end)
    program.Program.user_code_ranges;
  let blocks = Array.of_list (List.rev !blocks) in
  let succs = Array.of_list (List.rev !succs) in
  let func_of_block = Array.of_list (List.rev !funcs) in
  let decision_pcs =
    Array.to_list blocks
    |> List.filter_map (fun b ->
           if
             b.b_last >= 0
             && b.b_last < Bytes.length ubits
             && Bytes.get ubits b.b_last = '\001'
           then Some b.b_last
           else None)
  in
  { blocks; succs; func_of_block; decision_pcs }

let block_count cfg = Array.length cfg.blocks

let edge_count cfg =
  Array.fold_left (fun acc s -> acc + List.length s) 0 cfg.succs

(* Test constructor: a bare graph with the given successor lists. Blocks
   get dummy one-instruction extents and no decision pcs, so prime-path
   counts can be hand-checked against textbook examples. *)
let of_succs succs =
  let n = Array.length succs in
  {
    blocks = Array.init n (fun i -> { b_first = i; b_last = i });
    succs = Array.map (List.map (fun b -> (b, E_fall))) succs;
    func_of_block = Array.make n "test";
    decision_pcs = [];
  }

(* ---- Prime paths --------------------------------------------------------- *)

type prime = {
  nodes : int array;  (* block indices, in path order *)
  decisions : (int * bool) list;
      (* branch-coverage coordinates of the path's decision edges, in path
         order: (branch pc, direction) *)
}

type paths = {
  all : prime array;  (* deterministic order: by node sequence *)
  truncated : int;
      (* simple paths abandoned mid-extension because the work budget
         tripped; 0 means [all] is the complete prime-path universe *)
}

(* The shape-level result: prime node sequences plus the truncation count.
   These depend only on the successor structure over block indices — not on
   the pcs inside the blocks — so callers can share them between CFGs with
   equal shape (e.g. detector variants of one source) and map decisions per
   concrete CFG with [paths_of_nodes]. *)
type node_paths = {
  np_all : int array array;
  np_truncated : int;
}

let default_max_paths = 20_000

(* Ammann–Offutt worklist enumeration. A candidate is a simple path; it is
   finalised when it cannot be extended (every successor of its tail either
   already appears in it or there are no successors) or when an extension
   closes a cycle back to its head — a cycle path (first = last) is prime by
   definition, since no longer simple path can contain it. The budget bounds
   the number of candidates ever created; paths still on the worklist when
   it trips are counted as truncated, never silently dropped. *)
let enumerate_nodes ?(max_paths = default_max_paths) cfg =
  let n = Array.length cfg.blocks in
  let finals = ref [] in
  (* Worklist of in-progress simple paths, each as (first node, reversed
     node list, membership bitset) — the first node rides along so closing
     a cycle is O(out-degree), not O(path length). The bitset is
     bit-packed: a budget-full enumeration copies it once per extension,
     so its width is the dominant allocation cost. *)
  let bit_get bits v =
    Char.code (Bytes.unsafe_get bits (v lsr 3)) land (1 lsl (v land 7)) <> 0
  in
  let bit_set bits v =
    Bytes.unsafe_set bits (v lsr 3)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get bits (v lsr 3)) lor (1 lsl (v land 7))))
  in
  let work = Queue.create () in
  let created = ref n in
  for v = 0 to n - 1 do
    let bits = Bytes.make ((n + 7) / 8) '\000' in
    bit_set bits v;
    Queue.add (v, [ v ], bits) work
  done;
  let truncated = ref 0 in
  while not (Queue.is_empty work) do
    let head, rev_path, bits = Queue.pop work in
    if !created > max_paths then incr truncated
    else begin
      let tail = List.hd rev_path in
      let extended = ref false in
      let cycled = ref false in
      List.iter
        (fun (s, _) ->
          if s = head then begin
            (* closing the cycle: a prime path with first = last (this also
               catches a direct self-loop on a length-1 seed) *)
            finals := (s :: rev_path, `Cycle) :: !finals;
            cycled := true
          end
          else if not (bit_get bits s) then begin
            let bits' = Bytes.copy bits in
            bit_set bits' s;
            Queue.add (head, s :: rev_path, bits') work;
            incr created;
            extended := true
          end)
        cfg.succs.(tail);
      if (not !extended) && not !cycled then
        finals := (rev_path, `Dead) :: !finals
    end
  done;
  (* Keep the prime finals. Cycle paths (first = last) are prime by
     definition: a longer simple path containing one would repeat its
     closing node away from the endpoints. A dead-end final P = [v0..vk]
     (tail unextendable) is a proper subpath of some simple path iff it can
     be extended on the *left* by one node — an edge [u -> v0] with [u]
     outside P's prefix nodes (a fresh head) or [u = vk] (closing a cycle
     around P). Checking predecessors of each head is linear in finals ×
     in-degree, replacing the quadratic all-pairs subpath scan. *)
  let seqs =
    List.map (fun (rev_path, kind) -> (Array.of_list (List.rev rev_path), kind)) !finals
  in
  let seqs = List.sort_uniq (fun (a, _) (b, _) -> compare a b) seqs in
  let preds = Array.make n [] in
  Array.iteri
    (fun u ss ->
      List.iter
        (fun (v, _) -> if not (List.mem u preds.(v)) then preds.(v) <- u :: preds.(v))
        ss)
    cfg.succs;
  let prime_seqs =
    seqs
    |> List.filter (fun (seq, kind) ->
           kind = `Cycle
           ||
           let k = Array.length seq - 1 in
           let vk = seq.(k) in
           let in_prefix u =
             let rec go i = i < k && (seq.(i) = u || go (i + 1)) in
             go 0
           in
           not
             (List.exists
                (fun u -> u = vk || not (in_prefix u))
                preds.(seq.(0))))
    |> List.map fst
  in
  { np_all = Array.of_list prime_seqs; np_truncated = !truncated }

(* Map shape-level node sequences onto one concrete CFG's decision edges. *)
let paths_of_nodes cfg np =
  let decisions_of seq =
    let ds = ref [] in
    for i = Array.length seq - 2 downto 0 do
      let a = seq.(i) and b = seq.(i + 1) in
      match List.assoc_opt b cfg.succs.(a) with
      | Some kind ->
        (match edge_decision kind with
         | Some d -> ds := d :: !ds
         | None -> ())
      | None -> ()
    done;
    !ds
  in
  {
    all =
      Array.map (fun seq -> { nodes = seq; decisions = decisions_of seq }) np.np_all;
    truncated = np.np_truncated;
  }

let enumerate ?max_paths cfg = paths_of_nodes cfg (enumerate_nodes ?max_paths cfg)

(* The successor structure over block indices, with edge kinds erased — the
   only input [enumerate_nodes] reads, and therefore a sharing key for its
   result across CFGs of e.g. detector variants of one source. *)
let shape cfg = Array.map (List.map fst) cfg.succs

(* ---- Coverage evaluation ------------------------------------------------- *)

(* A prime path counts as covered when every decision edge along it is in
   the covered edge set AND every one of its blocks was executed
   ([line_covered] on the block's first instruction's source line). This is
   an *edge-approximated* path coverage: the run may have covered the
   decisions on separate traversals. It is an over-approximation of true
   prime-path coverage and a strict refinement of edge coverage, which is
   exactly the monotonicity the spawn-policy work needs (DESIGN.md §15). *)
let covered_count ~(edge_covered : int -> bool -> bool)
    ~(block_covered : int -> bool) cfg paths =
  let covered p =
    List.for_all (fun (pc, dir) -> edge_covered pc dir) p.decisions
    && Array.for_all (fun b -> block_covered cfg.blocks.(b).b_first) p.nodes
  in
  Array.fold_left (fun acc p -> if covered p then acc + 1 else acc) 0 paths.all

(* Label-form assembly: the IR between instruction selection and the final
   executable image. Control targets in [code] are label references encoded
   as [-(label + 1)] ([lref]); [labels] maps label ids to pcs. All the
   pc-keyed side tables the final [Program.t] needs travel with the code so
   asm-level passes (jump threading, jump-to-next compaction) can remap them
   alongside the instructions. *)

type t = {
  code : Insn.t array;
  labels : (int, int) Hashtbl.t;  (* label id -> pc *)
  sites : Site.t array;
  user_branches : int list;  (* ascending pcs *)
  functions : (string * int) list;  (* in emission order *)
  user_ranges : (int * int) list;
  fix_atoms : (int * Fix_atom.t) list;  (* keyed by branch pc, ascending *)
  source_lines : (int * int) list;  (* pc -> source line, ascending pcs *)
}

let lref l = -(l + 1)

let label_of_ref t = if t >= 0 then None else Some (-t - 1)

(* Pretty-print with symbolic labels ("Ln") still unresolved, one
   instruction per line, prefixed by its pc. Labels placed at a pc are shown
   as "Ln:" lines; function starts are annotated. *)
let to_string ap =
  let buf = Buffer.create 4096 in
  let labels_at = Hashtbl.create 64 in
  Hashtbl.iter
    (fun l pc -> Hashtbl.replace labels_at pc (l :: (Option.value ~default:[] (Hashtbl.find_opt labels_at pc))))
    ap.labels;
  let fn_at = Hashtbl.create 16 in
  List.iter (fun (name, pc) -> Hashtbl.replace fn_at pc name) ap.functions;
  let insn_str insn =
    (* [Insn.to_string] prints raw targets; rewrite label refs to "Ln". *)
    let rec target_suffix = function
      | Insn.Br (_, _, _, t) | Insn.Jmp t | Insn.Call t -> label_of_ref t
      | Insn.Pred inner -> target_suffix inner
      | _ -> None
    in
    let s = Insn.to_string insn in
    match target_suffix insn with
    | Some l ->
      (match String.rindex_opt s '@' with
       | Some i -> String.sub s 0 i ^ Printf.sprintf "L%d" l
       | None -> s)
    | None -> s
  in
  Array.iteri
    (fun pc insn ->
      (match Hashtbl.find_opt fn_at pc with
       | Some name -> Buffer.add_string buf (Printf.sprintf "%s:\n" name)
       | None -> ());
      (match Hashtbl.find_opt labels_at pc with
       | Some ls ->
         List.iter
           (fun l -> Buffer.add_string buf (Printf.sprintf "L%d:\n" l))
           (List.sort compare ls)
       | None -> ());
      Buffer.add_string buf (Printf.sprintf "%4d: %s\n" pc (insn_str insn)))
    ap.code;
  Buffer.contents buf

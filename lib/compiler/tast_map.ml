(* Structure-preserving rewriting over the typed AST, shared by the passes
   that substitute variable references ([Uniquify] renames, [Regalloc]
   re-homes storage). The callback sees every [var_ref] occurrence: [Tvar]
   nodes, parameter lists, and the array refs carried by the watch
   metadata. *)

let rec map_expr f (e : Tast.texpr) =
  let desc =
    match e.Tast.tdesc with
    | Tast.Tint_lit _ | Tast.Tstr_addr _ -> e.Tast.tdesc
    | Tast.Tvar vr -> Tast.Tvar (f vr)
    | Tast.Tunop (op, a) -> Tast.Tunop (op, map_expr f a)
    | Tast.Tbinop (op, a, b) -> Tast.Tbinop (op, map_expr f a, map_expr f b)
    | Tast.Tptr_add (a, b, s) -> Tast.Tptr_add (map_expr f a, map_expr f b, s)
    | Tast.Tptr_diff (a, b, s) -> Tast.Tptr_diff (map_expr f a, map_expr f b, s)
    | Tast.Tassign (a, b) -> Tast.Tassign (map_expr f a, map_expr f b)
    | Tast.Tcall_fn (name, args) -> Tast.Tcall_fn (name, List.map (map_expr f) args)
    | Tast.Tcall_builtin (b, args) ->
      Tast.Tcall_builtin (b, List.map (map_expr f) args)
    | Tast.Tindex (a, b, s) -> Tast.Tindex (map_expr f a, map_expr f b, s)
    | Tast.Tderef a -> Tast.Tderef (map_expr f a)
    | Tast.Taddr a -> Tast.Taddr (map_expr f a)
    | Tast.Tfield (a, fi) -> Tast.Tfield (map_expr f a, fi)
    | Tast.Tarrow (a, fi) -> Tast.Tarrow (map_expr f a, fi)
    | Tast.Tcond (a, b, c) -> Tast.Tcond (map_expr f a, map_expr f b, map_expr f c)
  in
  { e with Tast.tdesc = desc }

let rec map_stmt f (s : Tast.tstmt) =
  let desc =
    match s.Tast.tsdesc with
    | Tast.TSexpr e -> Tast.TSexpr (map_expr f e)
    | Tast.TSif (c, a, b) ->
      Tast.TSif (map_expr f c, List.map (map_stmt f) a, List.map (map_stmt f) b)
    | Tast.TSwhile (c, body) ->
      Tast.TSwhile (map_expr f c, List.map (map_stmt f) body)
    | Tast.TSfor (init, cond, step, body) ->
      Tast.TSfor
        ( Option.map (map_expr f) init,
          Option.map (map_expr f) cond,
          Option.map (map_expr f) step,
          List.map (map_stmt f) body )
    | Tast.TSreturn e -> Tast.TSreturn (Option.map (map_expr f) e)
    | Tast.TSbreak | Tast.TScontinue -> s.Tast.tsdesc
    | Tast.TSassert e -> Tast.TSassert (map_expr f e)
    | Tast.TSblock body -> Tast.TSblock (List.map (map_stmt f) body)
  in
  { s with Tast.tsdesc = desc }

let map_func f (fn : Tast.tfunc) =
  {
    fn with
    Tast.tf_params = List.map f fn.Tast.tf_params;
    tf_body = List.map (map_stmt f) fn.Tast.tf_body;
    tf_local_arrays =
      List.map
        (fun la -> { la with Tast.la_ref = f la.Tast.la_ref })
        fn.Tast.tf_local_arrays;
  }

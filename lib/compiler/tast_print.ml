(* Pretty-printer for the typed AST, in MiniC concrete syntax, mirroring the
   [Ast] printer's canonical style (fully parenthesized expressions, 2-space
   indents). Each tast-level pass exposes its output through this printer
   for [--dump-pass] and for the printer round-trip property: for programs
   without globals, structs or string literals, [print] emits valid MiniC
   whose parse + typecheck prints back byte-identically.

   Local declarations are reconstructed at the top of each function from the
   storage map (typecheck hoists storage and turns initializers into plain
   assignments, so this loses nothing). Register-allocated variables print
   as ordinary declarations; [~annotate] adds `//` comments showing storage
   assignments, for human consumption only. *)

let builtin_name = function
  | Tast.B_putc -> "putc"
  | Tast.B_getc -> "getc"
  | Tast.B_print_int -> "print_int"
  | Tast.B_exit -> "exit"
  | Tast.B_watch_region -> "__watch_region"
  | Tast.B_unwatch_region -> "__unwatch_region"

let rec expr_to_string (e : Tast.texpr) =
  match e.Tast.tdesc with
  | Tast.Tint_lit n ->
    if n < 0 then Printf.sprintf "(-%d)" (-n) else string_of_int n
  | Tast.Tstr_addr addr -> string_of_int addr  (* interned: address only *)
  | Tast.Tvar vr -> vr.Tast.vr_name
  | Tast.Tunop (op, a) ->
    Printf.sprintf "(%s%s)" (Ast.unop_to_string op) (expr_to_string a)
  | Tast.Tbinop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (Ast.binop_to_string op)
      (expr_to_string b)
  | Tast.Tptr_add (p, i, _) ->
    Printf.sprintf "(%s + %s)" (expr_to_string p) (expr_to_string i)
  | Tast.Tptr_diff (p, q, _) ->
    Printf.sprintf "(%s - %s)" (expr_to_string p) (expr_to_string q)
  | Tast.Tassign (lhs, rhs) ->
    Printf.sprintf "(%s = %s)" (expr_to_string lhs) (expr_to_string rhs)
  | Tast.Tcall_fn (name, args) ->
    Printf.sprintf "%s(%s)" name
      (String.concat ", " (List.map expr_to_string args))
  | Tast.Tcall_builtin (b, args) ->
    Printf.sprintf "%s(%s)" (builtin_name b)
      (String.concat ", " (List.map expr_to_string args))
  | Tast.Tindex (b, i, _) ->
    Printf.sprintf "%s[%s]" (expr_to_string b) (expr_to_string i)
  | Tast.Tderef p -> Printf.sprintf "(*%s)" (expr_to_string p)
  | Tast.Taddr a -> Printf.sprintf "(&%s)" (expr_to_string a)
  | Tast.Tfield (b, f) -> Printf.sprintf "%s.%s" (expr_to_string b) f.Tast.f_name
  | Tast.Tarrow (p, f) -> Printf.sprintf "%s->%s" (expr_to_string p) f.Tast.f_name
  | Tast.Tcond (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_to_string c) (expr_to_string a)
      (expr_to_string b)

let rec stmt_to_string ~indent (s : Tast.tstmt) =
  let pad = String.make indent ' ' in
  let block stmts =
    String.concat "" (List.map (stmt_to_string ~indent:(indent + 2)) stmts)
  in
  match s.Tast.tsdesc with
  | Tast.TSexpr e -> Printf.sprintf "%s%s;\n" pad (expr_to_string e)
  | Tast.TSif (c, then_s, []) ->
    Printf.sprintf "%sif (%s) {\n%s%s}\n" pad (expr_to_string c) (block then_s)
      pad
  | Tast.TSif (c, then_s, else_s) ->
    Printf.sprintf "%sif (%s) {\n%s%s} else {\n%s%s}\n" pad (expr_to_string c)
      (block then_s) pad (block else_s) pad
  | Tast.TSwhile (c, body) ->
    Printf.sprintf "%swhile (%s) {\n%s%s}\n" pad (expr_to_string c) (block body)
      pad
  | Tast.TSfor (init, cond, step, body) ->
    let opt = function None -> "" | Some e -> expr_to_string e in
    Printf.sprintf "%sfor (%s; %s; %s) {\n%s%s}\n" pad (opt init) (opt cond)
      (opt step) (block body) pad
  | Tast.TSreturn None -> Printf.sprintf "%sreturn;\n" pad
  | Tast.TSreturn (Some e) -> Printf.sprintf "%sreturn %s;\n" pad (expr_to_string e)
  | Tast.TSbreak -> Printf.sprintf "%sbreak;\n" pad
  | Tast.TScontinue -> Printf.sprintf "%scontinue;\n" pad
  | Tast.TSassert e -> Printf.sprintf "%sassert(%s);\n" pad (expr_to_string e)
  | Tast.TSblock body -> Printf.sprintf "%s{\n%s%s}\n" pad (block body) pad

(* Collect the declarations of a function's non-parameter variables, in
   declaration order (typecheck hands out frame offsets descending from -1,
   so offset-descending = declaration order). Register-promoted variables
   follow, sorted by register. *)
let local_decls (f : Tast.tfunc) =
  let seen = Hashtbl.create 16 in
  let locals = ref [] and regs = ref [] in
  let param_storages = List.map (fun vr -> vr.Tast.vr_storage) f.Tast.tf_params in
  let note vr =
    if
      (not (List.mem vr.Tast.vr_storage param_storages))
      && not (Hashtbl.mem seen vr.Tast.vr_storage)
    then begin
      Hashtbl.replace seen vr.Tast.vr_storage ();
      match vr.Tast.vr_storage with
      | Tast.Local off -> locals := (off, vr) :: !locals
      | Tast.Reg r -> regs := (r, vr) :: !regs
      | Tast.Global _ -> ()
    end;
    vr
  in
  ignore (Tast_map.map_func note f);
  let by_key l = List.sort (fun (a, _) (b, _) -> compare b a) l in
  List.map snd (by_key !locals)
  @ List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) !regs)

let decl_to_string ~annotate vr =
  let storage_note () =
    match vr.Tast.vr_storage with
    | Tast.Local off -> Printf.sprintf "  // fp%+d" off
    | Tast.Global addr -> Printf.sprintf "  // @%d" addr
    | Tast.Reg r -> Printf.sprintf "  // %s" (Reg.name r)
  in
  let base =
    match vr.Tast.vr_ty with
    | Ast.Tarray (elt, n) ->
      Printf.sprintf "  %s %s[%d];" (Ast.ty_to_string elt) vr.Tast.vr_name n
    | ty -> Printf.sprintf "  %s %s;" (Ast.ty_to_string ty) vr.Tast.vr_name
  in
  base ^ (if annotate then storage_note () else "") ^ "\n"

let func_to_string ?(annotate = false) (f : Tast.tfunc) =
  let params =
    String.concat ", "
      (List.map
         (fun vr ->
           Ast.ty_to_string vr.Tast.vr_ty ^ " " ^ vr.Tast.vr_name
           ^
           if annotate then
             match vr.Tast.vr_storage with
             | Tast.Reg r -> " /*" ^ Reg.name r ^ "*/"
             | _ -> ""
           else "")
         f.Tast.tf_params)
  in
  Printf.sprintf "%s %s(%s) {\n%s%s}\n"
    (Ast.ty_to_string f.Tast.tf_ret)
    f.Tast.tf_name params
    (String.concat "" (List.map (decl_to_string ~annotate) (local_decls f)))
    (String.concat "" (List.map (stmt_to_string ~indent:2) f.Tast.tf_body))

(* Print the user program (prelude runtime functions are skipped unless
   [include_runtime]; a reparse re-attaches the prelude itself). *)
let program_to_string ?(annotate = false) ?(include_runtime = false)
    (tp : Tast.tprogram) =
  let funcs =
    List.filter
      (fun f -> include_runtime || not f.Tast.tf_is_runtime)
      tp.Tast.tp_funcs
  in
  let header =
    if annotate then
      String.concat ""
        (List.map
           (fun (name, addr) -> Printf.sprintf "// global %s @%d\n" name addr)
           tp.Tast.tp_global_vars)
    else ""
  in
  header ^ String.concat "\n" (List.map (func_to_string ~annotate) funcs)

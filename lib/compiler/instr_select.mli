(** Instruction selection: typed AST to label-form assembly ([Asmprog.t]),
    carrying the paper's consistency-fixing stubs and detector
    instrumentation (see the implementation header for the full story).
    [O0] emission is instruction-identical to the historical single-pass
    code generator; [O1+] selects immediate forms and reads
    register-allocated variables in place. *)

exception Error of string * int  (** message, line *)

type detector = No_detector | Ccured | Iwatcher | Assertions

val detector_name : detector -> string

type options = {
  detector : detector;
  fixing : bool;  (** emit the predicated consistency-fix stubs *)
}

(** No detector, fixing on. *)
val default_options : options

(** Boundary value satisfying [v cmp k] — what the fix pins a condition
    variable to (e.g. the true edge of [x < 5] pins [x] to 4). *)
val boundary_value : Insn.cmp -> int -> int

(** Number of registers in the expression-temporary bank (t0..t16; t17 is
    the fix scratch). *)
val expr_tmps : int

val insn_binop_of_ast : Ast.binop -> Insn.binop option
val insn_cmp_of_ast : Ast.binop -> Insn.cmp option

(** Select instructions for a typed program. Defaults: [default_options],
    [Opt.O0]. *)
val select : ?options:options -> ?level:Opt.level -> Tast.tprogram -> Asmprog.t

(** Per-function high-water mark of the expression-temporary stack, from a
    throwaway selection run — [Regalloc]'s view of which temporaries are
    free. *)
val probe_tmp_highwater :
  ?options:options -> ?level:Opt.level -> Tast.tprogram -> (string * int) list

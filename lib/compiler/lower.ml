(* Final lowering: resolve the symbolic label references of an [Asmprog.t]
   to absolute pcs and package the executable [Program.t] with the
   program-level metadata carried by the typed program. The result is
   validated before being returned. *)

let run (ap : Asmprog.t) (tp : Tast.tprogram) : Program.t =
  let resolve_target t =
    if t >= 0 then t
    else
      match Hashtbl.find_opt ap.Asmprog.labels (-t - 1) with
      | Some target_pc -> target_pc
      | None -> invalid_arg "Lower: unplaced label"
  in
  let code =
    Array.map
      (fun insn ->
        match insn with
        | Insn.Br (c, rs, rt, t) -> Insn.Br (c, rs, rt, resolve_target t)
        | Insn.Jmp t -> Insn.Jmp (resolve_target t)
        | Insn.Call t -> Insn.Call (resolve_target t)
        | _ -> insn)
      ap.Asmprog.code
  in
  let program =
    {
      Program.code;
      entry = 0;
      globals_words = tp.Tast.tp_globals_words;
      init_data = tp.Tast.tp_init_data;
      sites = ap.Asmprog.sites;
      user_branches = ap.Asmprog.user_branches;
      functions = ap.Asmprog.functions;
      user_code_ranges = ap.Asmprog.user_ranges;
      fix_atoms = ap.Asmprog.fix_atoms;
      global_vars = tp.Tast.tp_global_vars;
      blank_addrs = tp.Tast.tp_blank_addrs;
      source_lines = Array.of_list ap.Asmprog.source_lines;
    }
  in
  Program.validate program;
  program

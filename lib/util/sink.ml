(* Domain-local output redirection for the experiment harness.

   Experiment code prints through [Sink.printf] (and friends) instead of
   [Printf.printf]. By default that is stdout, so standalone use is
   unchanged; under [with_capture] the current domain's output is diverted
   into a buffer instead. Because the redirection is domain-local, many
   captured experiments can run on parallel domains without interleaving,
   and the harness can emit their outputs afterwards in a deterministic
   order. *)

let buffer_key : Buffer.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get buffer_key)

let print_string s =
  match current () with
  | Some buf -> Buffer.add_string buf s
  | None -> Stdlib.print_string s

let print_endline s = print_string (s ^ "\n")

let print_newline () = print_string "\n"

let printf fmt = Printf.ksprintf print_string fmt

(* Run [f] with this domain's sink output diverted into a fresh buffer;
   returns [f ()]'s value and everything it printed. Nests: the previous
   destination (stdout or an outer capture) is restored afterwards, also on
   raise. *)
let with_capture f =
  let slot = Domain.DLS.get buffer_key in
  let saved = !slot in
  let buf = Buffer.create 4096 in
  slot := Some buf;
  let finish () = slot := saved in
  match f () with
  | v ->
    finish ();
    (v, Buffer.contents buf)
  | exception e ->
    finish ();
    raise e

(* Growable array (OCaml 5.1 predates Stdlib.Dynarray). *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ~dummy = { data = Array.make 16 dummy; len = 0; dummy }

let length v = v.len

let grow v =
  let data = Array.make (2 * Array.length v.data) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

(* Drop all elements; capacity (and any dummy-slot references) retained. *)
let clear v = v.len <- 0

let to_array v = Array.sub v.data 0 v.len

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

(** Deterministic parallel map over an OCaml 5 Domain pool.

    [map ~jobs f xs] applies [f] to every element of [xs] on up to [jobs]
    domains and returns results in input order — a parallel run is
    byte-identical to a serial one whenever [f] is deterministic. With
    [jobs <= 1], a single-element list, or when called from inside another
    [map]'s worker (no nested domain explosions), it degrades to plain
    [List.map] on the calling domain. The first worker exception is
    re-raised on the caller after all domains are joined. *)

(** [Domain.recommended_domain_count ()] — the default for [?jobs]. *)
val default_jobs : unit -> int

(** Whether the current domain is a [map] worker (nested maps run serial). *)
val in_worker : unit -> bool

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit

(* A small work-stealing-free Domain pool: [map ~jobs f xs] applies [f] to
   every element of [xs] on up to [jobs] domains and returns the results in
   input order, so a parallel sweep is byte-identical to a serial one as
   long as [f] itself is deterministic.

   Work is dealt by an atomic next-index counter, results land in distinct
   slots of a shared array (safe under the OCaml 5 memory model: each slot
   has a single writer, and [Domain.join] publishes the writes). An
   exception in any worker is re-raised on the caller after all domains are
   joined.

   Nested calls degrade to serial: a [map] issued from inside a worker runs
   on that worker rather than oversubscribing the machine with
   grandchild domains. *)

let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get in_worker_key

(* [jobs] defaulting: what the runtime recommends for this machine. *)
let default_jobs () = Domain.recommended_domain_count ()

let map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let items = Array.of_list xs in
  let n = Array.length items in
  let workers = min jobs n in
  if workers <= 1 || in_worker () then List.map f xs
  else begin
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      Domain.DLS.set in_worker_key true;
      let rec drain () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f items.(i) with
           | v -> results.(i) <- Some v
           | exception e ->
             (* keep the first failure; later items still run so joins
                don't deadlock on unconsumed work *)
             ignore (Atomic.compare_and_set first_error None (Some e)));
          drain ()
        end
      in
      drain ()
    in
    let domains = Array.init workers (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    (match Atomic.get first_error with Some e -> raise e | None -> ());
    Array.to_list (Array.map (fun r -> Option.get r) results)
  end

let iter ?jobs f xs = ignore (map ?jobs (fun x -> f x) xs)

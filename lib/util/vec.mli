(** Growable array. *)

type 'a t

(** [create ~dummy] makes an empty vector; [dummy] fills unused slots. *)
val create : dummy:'a -> 'a t

val length : 'a t -> int
val push : 'a t -> 'a -> unit

(** Raise [Invalid_argument] when out of bounds. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

(** Drop all elements, retaining capacity. *)
val clear : 'a t -> unit
val to_array : 'a t -> 'a array
val iteri : (int -> 'a -> unit) -> 'a t -> unit

(* ASCII table renderer used by the experiment harness to print paper-style
   tables. Column widths adapt to the widest cell. *)

type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let widths header rows =
  let ncols = List.length header in
  let of_row row = List.map String.length row in
  let max2 = List.map2 max in
  let check row =
    if List.length row <> ncols then
      invalid_arg "Table.render: row arity differs from header"
  in
  List.iter check rows;
  List.fold_left (fun acc row -> max2 acc (of_row row)) (of_row header) rows

let rule widths =
  "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"

let render_row aligns widths row =
  let cells = List.map2 (fun (a, w) s -> " " ^ pad a w s ^ " ")
      (List.combine aligns widths) row in
  "|" ^ String.concat "|" cells ^ "|"

let render ?(aligns = []) ~header rows =
  let ncols = List.length header in
  let aligns =
    if aligns = [] then List.init ncols (fun _ -> Left)
    else if List.length aligns = ncols then aligns
    else invalid_arg "Table.render: aligns arity differs from header"
  in
  let ws = widths header rows in
  let r = rule ws in
  let lines =
    (r :: render_row aligns ws header :: r
     :: List.map (render_row aligns ws) rows)
    @ [ r ]
  in
  String.concat "\n" lines

(* Through [Sink] so captured experiment runs collect their tables. *)
let print ?aligns ~header rows = Sink.print_endline (render ?aligns ~header rows)

let fpct x = Printf.sprintf "%.1f%%" x

let f1 x = Printf.sprintf "%.1f" x

let f2 x = Printf.sprintf "%.2f" x

let int = string_of_int

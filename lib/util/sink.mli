(** Domain-local output redirection for the experiment harness.

    Experiment code prints through these instead of [Printf.printf]; output
    goes to stdout unless the current domain is inside [with_capture], in
    which case it is collected into a buffer. Domain-local, so captured
    experiments on parallel domains never interleave. *)

val print_string : string -> unit
val print_endline : string -> unit
val print_newline : unit -> unit
val printf : ('a, unit, string, unit) format4 -> 'a

(** [with_capture f] diverts this domain's sink output into a fresh buffer
    for the duration of [f]; returns [f ()]'s value and the captured text.
    Nests; restores the previous destination on return or raise. *)
val with_capture : (unit -> 'a) -> 'a * string

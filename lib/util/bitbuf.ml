(* Growable append-only bit buffer: the selective fast tier's per-segment
   branch-direction log. One byte of storage per 8 branches; push is a mask
   and an or-store, with a doubling grow off the hot path. *)

type t = { mutable data : Bytes.t; mutable len : int }

let create ?(capacity_bits = 1024) () =
  { data = Bytes.make (max 1 ((capacity_bits + 7) / 8)) '\000'; len = 0 }

let length t = t.len

let clear t =
  (* The push path or-s bits in, so live bytes must return to zero. Only the
     bytes actually written since the last clear are touched. *)
  if t.len > 0 then Bytes.fill t.data 0 ((t.len + 7) / 8) '\000';
  t.len <- 0

let grow t =
  let data = Bytes.make (2 * Bytes.length t.data) '\000' in
  Bytes.blit t.data 0 data 0 (Bytes.length t.data);
  t.data <- data

let[@inline always] push t bit =
  let byte = t.len lsr 3 in
  if byte >= Bytes.length t.data then grow t;
  if bit then
    Bytes.unsafe_set t.data byte
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get t.data byte) lor (1 lsl (t.len land 7))));
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitbuf.get";
  Char.code (Bytes.get t.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

(* Bits as a 0/1 string, oldest first — test and debug aid. *)
let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')

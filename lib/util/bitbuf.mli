(** Growable append-only bit buffer.

    Used by the selective (fast-tier) interpreter to log the taken path's
    branch-direction bitstream per segment: one bit per executed conditional
    branch, in execution order. *)

type t

val create : ?capacity_bits:int -> unit -> t

(** Number of bits pushed since the last [clear]. *)
val length : t -> int

(** Reset to empty; storage is retained and re-zeroed over the live prefix,
    so a pooled buffer's clear is O(bits since last clear). *)
val clear : t -> unit

val push : t -> bool -> unit

(** [get t i] is the [i]-th pushed bit (oldest first). *)
val get : t -> int -> bool

(** The bits as a ['0']/['1'] string, oldest first. *)
val to_string : t -> string

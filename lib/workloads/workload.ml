type app_class = Siemens | Spec | Open_source

type t = {
  name : string;
  descr : string;
  app_class : app_class;
  source : bug:int option -> string;
  bugs : Bug.t list;
  default_input : string;
  gen_input : Rng.t -> string;
  max_nt_path_length : int;
}

let app_class_name = function
  | Siemens -> "Siemens"
  | Spec -> "SPEC"
  | Open_source -> "open-source"

let bug_count workload = List.length workload.bugs

let find_bug workload version =
  match
    List.find_opt (fun b -> b.Bug.version = version) workload.bugs
  with
  | Some bug -> bug
  | None ->
    invalid_arg
      (Printf.sprintf "workload %s has no bug version %d" workload.name version)

(* Compile a workload, optionally with one planted bug version. Compilation
   is deterministic and the compiled image is read-only (machines never
   mutate the program), so results are memoised: experiment sweeps ask for
   the same workload×detector×bug combination over and over. The mutex
   keeps the table safe under parallel sweep domains; a racing duplicate
   compile just yields a structurally identical image. *)
let compile_memo = Hashtbl.create 64
let compile_mutex = Mutex.create ()

let compile ?(detector = Codegen.No_detector) ?(fixing = true) ?opt ?bug
    workload =
  let level =
    match opt with Some l -> l | None -> Opt.default_level ()
  in
  let key = (workload.name, detector, fixing, bug, level) in
  Mutex.lock compile_mutex;
  let cached = Hashtbl.find_opt compile_memo key in
  Mutex.unlock compile_mutex;
  match cached with
  | Some compiled -> compiled
  | None ->
    let options = { Codegen.detector; fixing } in
    let compiled =
      Compile.compile ~options ~level (workload.source ~bug)
    in
    Mutex.lock compile_mutex;
    if not (Hashtbl.mem compile_memo key) then
      Hashtbl.add compile_memo key compiled;
    Mutex.unlock compile_mutex;
    compiled

(* PathExpander configuration appropriate for this workload: the paper's
   MaxNTPathLength is 100 for the small Siemens programs and 1000 elsewhere;
   the Siemens budget is scaled to 500 for our more verbose code generator
   (EXPERIMENTS.md note 6). *)
let pe_config ?(mode = Pe_config.Standard) workload =
  {
    Pe_config.default with
    Pe_config.mode;
    max_nt_path_length = workload.max_nt_path_length;
  }

(* Source line count of the bug-free source (Table 3's LOC column). *)
let loc workload =
  let source = workload.source ~bug:None in
  String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 1 source

(** Benchmark application descriptors.

    A workload bundles the MiniC source generator (parameterised by which
    single bug version to plant, Siemens-style), the bug metadata, a default
    non-bug-triggering input, a random input generator for the cumulative
    coverage study, and the NT-Path budget the paper's methodology assigns
    to programs of its size. *)

type app_class = Siemens | Spec | Open_source

type t = {
  name : string;
  descr : string;
  app_class : app_class;
  source : bug:int option -> string;  (** MiniC source with one planted bug *)
  bugs : Bug.t list;
  default_input : string;  (** general input that triggers none of the bugs *)
  gen_input : Rng.t -> string;
  max_nt_path_length : int;
}

val app_class_name : app_class -> string
val bug_count : t -> int

(** Raises [Invalid_argument] on an unknown version. *)
val find_bug : t -> int -> Bug.t

(** Compile the workload, optionally with one planted bug version. [opt]
    selects the optimization level (default: the process-wide
    {!Opt.default_level}); results are memoised per
    workload×detector×fixing×bug×level. *)
val compile :
  ?detector:Codegen.detector ->
  ?fixing:bool ->
  ?opt:Opt.level ->
  ?bug:int ->
  t ->
  Compile.compiled

(** PathExpander configuration with this workload's NT-Path budget. *)
val pe_config : ?mode:Pe_config.mode -> t -> Pe_config.t

(** Source line count of the bug-free source (Table 3's LOC column). *)
val loc : t -> int

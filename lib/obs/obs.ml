(* The Coverage Observatory (DESIGN.md §15): turns one finished engine run
   into an explanation of its coverage — which CFG edges stayed uncovered
   and *why* (frontier attribution), how much of the prime-path universe
   the run covered, and where execution time actually went (fast vs
   instrumented tier, deopt causes, cache fast-path occupancy).

   A snapshot is rendered to its final JSON string inside the worker domain
   that ran the workload, from deterministic inputs only (coverage bitmaps,
   BTB state, simulation counters — never wall-clock), so a parallel sweep
   submits byte-identical snapshots in nondeterministic order and
   [save_dir] restores a canonical order, exactly like the flight
   recorder's trace capture.

   Two sections of the JSON — "tiers" and "cache" — describe the execution
   *strategy* rather than the simulated program, so they legitimately
   change when selective execution or the cache fast path is toggled.
   Everything else (edges, frontier, frontier_causes, prime_paths, spawns)
   is invariant across the whole equivalence matrix; CI compares
   accordingly. *)

let schema_version = 1

(* ---- Frontier attribution ------------------------------------------------ *)

(* Why an uncovered user branch edge stayed uncovered. Every uncovered edge
   gets exactly one cause, decided in this order:

   - [site-unreached]: the branch never executed anywhere — neither
     direction of it is in the combined coverage set.
   - [spawn-budget]: a spawn of exactly this edge was suppressed by the CMP
     outstanding-path budget ([MaxNumNTPaths]) at least once.
   - [no-spawning]: the site executed under a Baseline (no NT-Path) run.
   - [spawn-threshold]: the branch executed on the taken path (its other
     direction is taken-covered), yet no NT-Path was ever spawned on this
     edge — the BTB exercise counter never sat below the spawn threshold at
     any execution (or the spawn policy never selected it).
   - [nt-terminated:<cause>]: the site was reached only inside NT-Paths.
     A spawned edge is covered at spawn ([Nt_path.run] records the forced
     edge), so the uncovered direction belongs to a branch some NT-Path
     *passed through* taking the other direction; we blame the termination
     cause of the NT-Path that first covered the sibling edge (tracked by
     [Coverage.nt_first_seq] while the observatory is armed).
   - [nt-unattributed]: the sibling is NT-covered but carries no sequence
     stamp — only possible when the run executed without the observatory
     armed (e.g. a snapshot taken outside [capture_runs]). *)

type frontier_entry = {
  fr_pc : int;
  fr_dir : bool;
  fr_line : int;
  fr_func : string;
  fr_cause : string;
  fr_btb : (int * int) option;  (* final (taken, nontaken) counters *)
}

let attribute ~(program : Program.t) ~(machine : Machine.t)
    ~(result : Engine.result) ~(config : Pe_config.t) =
  let coverage = result.Engine.coverage in
  let skipped = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace skipped e ()) result.Engine.skipped_edges;
  let nt_records = Array.of_list result.Engine.nt_records in
  let cause_of pc dir =
    let sibling = not dir in
    if
      not
        (Coverage.covered_edge coverage pc dir
        || Coverage.covered_edge coverage pc sibling)
    then "site-unreached"
    else if Hashtbl.mem skipped ((2 * pc) + if dir then 1 else 0) then
      "spawn-budget"
    else if config.Pe_config.mode = Pe_config.Baseline then "no-spawning"
    else if Coverage.covered_taken_edge coverage pc sibling then
      "spawn-threshold"
    else begin
      let seq = Coverage.nt_first_seq coverage pc sibling in
      if seq >= 1 && seq <= Array.length nt_records then
        "nt-terminated:"
        ^ Nt_path.termination_name nt_records.(seq - 1).Nt_path.termination
      else "nt-unattributed"
    end
  in
  let branches = List.sort_uniq compare program.Program.user_branches in
  List.concat_map
    (fun pc ->
      List.filter_map
        (fun dir ->
          if Coverage.covered_edge coverage pc dir then None
          else
            Some
              {
                fr_pc = pc;
                fr_dir = dir;
                fr_line = Program.line_of_pc program pc;
                fr_func =
                  Option.value ~default:"" (Program.function_of_pc program pc);
                fr_cause = cause_of pc dir;
                fr_btb = Btb.probe_counts machine.Machine.btb pc;
              })
        [ false; true ])
    branches

(* ---- Prime-path statistics (memoized per compiled program) --------------- *)

(* [Workload.compile] memoizes compiled programs per configuration, so the
   same [Program.t] instance flows through every run of a workload variant;
   keying the CFG + prime-path enumeration on physical equality makes the
   static analysis a once-per-program cost instead of once-per-run. Below
   it, the expensive half — the node-sequence enumeration — is shared by
   CFG *shape* (structural equality): detector and mode variants of one
   source compile to distinct programs whose user-code graphs are
   isomorphic with shifted pcs, and [Cfg.enumerate_nodes] only reads the
   shape. A concurrent miss on two domains computes the (deterministic)
   result twice and keeps one — harmless. *)
let prime_memo : (Program.t * (Cfg.t * Cfg.paths)) list ref = ref []
let shape_memo : (int list array * Cfg.node_paths) list ref = ref []
let prime_mutex = Mutex.create ()

let nodes_for cfg =
  let shape = Cfg.shape cfg in
  let find () =
    List.find_opt (fun (s, _) -> s = shape) !shape_memo
  in
  Mutex.lock prime_mutex;
  let hit = find () in
  Mutex.unlock prime_mutex;
  match hit with
  | Some (_, np) -> np
  | None ->
    let np = Cfg.enumerate_nodes cfg in
    Mutex.lock prime_mutex;
    (match find () with
     | Some (_, np') ->
       Mutex.unlock prime_mutex;
       np'
     | None ->
       shape_memo := (shape, np) :: !shape_memo;
       Mutex.unlock prime_mutex;
       np)

let primes_for program =
  let find () =
    List.find_opt (fun (p, _) -> p == program) !prime_memo
  in
  Mutex.lock prime_mutex;
  let hit = find () in
  Mutex.unlock prime_mutex;
  match hit with
  | Some (_, v) -> v
  | None ->
    let cfg = Cfg.of_program program in
    let paths = Cfg.paths_of_nodes cfg (nodes_for cfg) in
    let v = (cfg, paths) in
    Mutex.lock prime_mutex;
    (match find () with
     | Some (_, v') ->
       Mutex.unlock prime_mutex;
       v'
     | None ->
       prime_memo := (program, v) :: !prime_memo;
       Mutex.unlock prime_mutex;
       v)

(* ---- Snapshot ------------------------------------------------------------ *)

type t = { label : string; json : string }

let label s = s.label
let to_json s = s.json

let jint = string_of_int
let jstr = Jsonu.jstr
let jfloat = Jsonu.jfloat
let jobj = Jsonu.jobj
let jarr = Jsonu.jarr

let termination_keys =
  [ "cache-overflow"; "crash"; "max-length"; "program-end"; "unsafe-event" ]

let snapshot ~label ~(program : Program.t) ~(machine : Machine.t)
    ~(result : Engine.result) ~(config : Pe_config.t) =
  let coverage = result.Engine.coverage in
  let tel = machine.Machine.telemetry in
  let frontier = attribute ~program ~machine ~result ~config in
  let causes =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun f ->
        Hashtbl.replace tbl f.fr_cause
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f.fr_cause)))
      frontier;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let cfg, paths = primes_for program in
  let enumerated = Array.length paths.Cfg.all in
  let covered =
    Cfg.covered_count
      ~edge_covered:(Coverage.covered_edge coverage)
      ~block_covered:(Coverage.pc_line_covered coverage)
      cfg paths
  in
  let terminations =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun r ->
        let k = Nt_path.termination_name r.Nt_path.termination in
        Hashtbl.replace tbl k
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      result.Engine.nt_records;
    List.map
      (fun k -> (k, jint (Option.value ~default:0 (Hashtbl.find_opt tbl k))))
      termination_keys
  in
  let c name = Telemetry.counter tel name in
  let taken_insns = result.Engine.taken_insns in
  let taken_fast = result.Engine.fast_insns in
  let nt_insns = c "nt.insns" in
  let nt_fast = c "nt.fast_insns" in
  let total = taken_insns + nt_insns in
  let fast_fraction =
    if total = 0 then 0.0
    else float_of_int (taken_fast + nt_fast) /. float_of_int total
  in
  let l1_hits = c "l1.primary.hits" in
  let l1_misses = c "l1.primary.misses" in
  let l1_memo = c "l1.primary.memo_hits" in
  let l1_total = l1_hits + l1_misses in
  let json =
    jobj
      [
        ("schema", jint schema_version);
        ("label", jstr label);
        ("mode", jstr (Pe_config.mode_name config.Pe_config.mode));
        ("outcome", jstr (Engine.outcome_name result.Engine.outcome));
        ( "edges",
          jobj
            [
              ("universe", jint (Coverage.edge_universe_size coverage));
              ("taken", jint (Coverage.taken_edges coverage));
              ("combined", jint (Coverage.combined_edges coverage));
            ] );
        ( "frontier",
          jarr
            (List.map
               (fun f ->
                 let bt, bn =
                   match f.fr_btb with Some (t, n) -> (t, n) | None -> (-1, -1)
                 in
                 jobj
                   [
                     ("pc", jint f.fr_pc);
                     ("dir", jint (if f.fr_dir then 1 else 0));
                     ("line", jint f.fr_line);
                     ("func", jstr f.fr_func);
                     ("cause", jstr f.fr_cause);
                     ("btb_taken", jint bt);
                     ("btb_nontaken", jint bn);
                   ])
               frontier) );
        ( "frontier_causes",
          jobj (List.map (fun (k, v) -> (k, jint v)) causes) );
        ( "prime_paths",
          jobj
            [
              ("enumerated", jint enumerated);
              ("covered", jint covered);
              ("truncated", jint paths.Cfg.truncated);
              ( "pct",
                jfloat
                  (if enumerated = 0 then 0.0
                   else 100.0 *. float_of_int covered /. float_of_int enumerated)
              );
            ] );
        ( "spawns",
          jobj
            [
              ("total", jint result.Engine.spawns);
              ("skipped", jint result.Engine.skipped_spawns);
              ("skipped_edges", jint (List.length result.Engine.skipped_edges));
              ("terminations", jobj terminations);
            ] );
        (* Strategy-dependent sections: tier occupancy and cache fast-path
           attribution change (legitimately) with --selective and
           PEXP_CACHE_FASTPATH; everything above is invariant. *)
        ( "tiers",
          jobj
            [
              ("taken_insns", jint taken_insns);
              ("taken_fast", jint taken_fast);
              ("nt_insns", jint nt_insns);
              ("nt_fast", jint nt_fast);
              ("fast_fraction", jfloat fast_fraction);
              ( "deopt",
                jobj
                  [
                    ("branch", jint (c "obs.deopt.branch"));
                    ("syscall", jint (c "obs.deopt.syscall"));
                    ("watch", jint (c "obs.deopt.watch"));
                    ("detector", jint (c "obs.deopt.detector"));
                    ("fault", jint (c "obs.deopt.fault"));
                    ("other", jint (c "obs.deopt.other"));
                  ] );
              ("pinned_insns", jint (c "obs.pinned_insns"));
            ] );
        ( "cache",
          jobj
            [
              ("l1_hits", jint l1_hits);
              ("l1_misses", jint l1_misses);
              ("l1_memo_hits", jint l1_memo);
              ("l1_filter_hits", jint (c "l1.primary.filter_hits"));
              ( "memo_hit_rate",
                jfloat
                  (if l1_total = 0 then 0.0
                   else float_of_int l1_memo /. float_of_int l1_total) );
              ("l2_hits", jint (c "l2.hits"));
              ("l2_misses", jint (c "l2.misses"));
            ] );
        ( "btb",
          jobj
            [
              ("lookups", jint (Btb.lookups machine.Machine.btb));
              ("misses", jint (Btb.miss_count machine.Machine.btb));
              ( "saturated_entries",
                jint (Btb.saturated_entries machine.Machine.btb) );
              ("valid_entries", jint (Btb.valid_entries machine.Machine.btb));
            ] );
      ]
  in
  { label; json }

(* ---- Capture (mirrors the recorder / telemetry collector protocol) ------- *)

let collector_mutex = Mutex.create ()
let collector : (t -> unit) option ref = ref None

let armed () =
  Mutex.lock collector_mutex;
  let r = !collector <> None in
  Mutex.unlock collector_mutex;
  r

let submit s =
  Mutex.lock collector_mutex;
  let c = !collector in
  Mutex.unlock collector_mutex;
  match c with None -> () | Some f -> f s

(* Arm the observatory around [f]: the engine-side bookkeeping switch
   ([Pe_config.set_obs_enabled]) plus a snapshot-accumulating collector.
   Returns [f ()]'s value and the snapshots in submission order. *)
let capture_runs f =
  let acc = ref [] in
  let acc_mutex = Mutex.create () in
  Mutex.lock collector_mutex;
  collector :=
    Some
      (fun s ->
        Mutex.lock acc_mutex;
        acc := s :: !acc;
        Mutex.unlock acc_mutex);
  Mutex.unlock collector_mutex;
  Pe_config.set_obs_enabled true;
  let finish () =
    Pe_config.set_obs_enabled false;
    Mutex.lock collector_mutex;
    collector := None;
    Mutex.unlock collector_mutex
  in
  match f () with
  | v ->
    finish ();
    (v, List.rev !acc)
  | exception e ->
    finish ();
    raise e

(* ---- Directory export (same canonical order as Recorder.save_dir) -------- *)

let sanitize_label label =
  let buf = Buffer.create (String.length label) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' ->
        Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    label;
  if Buffer.length buf = 0 then "run" else Buffer.contents buf

let ensure_dir dir = if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let write_file file contents =
  let oc = open_out file in
  output_string oc contents;
  close_out oc

(* One JSON file per snapshot. Submission order is nondeterministic under a
   parallel sweep, so files are ordered by (label, content) — identical
   sweeps name identical bytes identically, serial or [--jobs N]. *)
let save_dir ~dir snapshots =
  ensure_dir dir;
  let keyed =
    List.map (fun s -> ((s.label, s.json), s)) snapshots
    |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)
  in
  List.mapi
    (fun i ((_, _), s) ->
      let file =
        Filename.concat dir
          (Printf.sprintf "obs-%04d-%s.json" i (sanitize_label s.label))
      in
      write_file file (s.json ^ "\n");
      file)
    keyed

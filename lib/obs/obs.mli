(** The Coverage Observatory (DESIGN.md §15).

    Turns one finished engine run into an explanation of its coverage:
    frontier attribution (why each uncovered user branch edge stayed
    uncovered), prime-path coverage over the compiler's CFG, and
    execution-tier / cache fast-path occupancy. Snapshots render to
    schema-versioned single-line JSON from deterministic inputs only, so a
    parallel sweep's export is byte-identical to a serial one. *)

(** Version stamped into every snapshot's ["schema"] member. *)
val schema_version : int

type frontier_entry = {
  fr_pc : int;
  fr_dir : bool;
  fr_line : int;  (** source line of the branch (0 when unknown) *)
  fr_func : string;  (** enclosing function ("" when unknown) *)
  fr_cause : string;
      (** one of: [site-unreached], [spawn-budget], [no-spawning],
          [spawn-threshold], [nt-terminated:<termination>],
          [nt-unattributed] *)
  fr_btb : (int * int) option;
      (** final (taken, nontaken) BTB exercise counters, [None] on miss *)
}

(** Every uncovered user branch edge of the run with exactly one cause
    each, ordered by (pc, direction). *)
val attribute :
  program:Program.t ->
  machine:Machine.t ->
  result:Engine.result ->
  config:Pe_config.t ->
  frontier_entry list

(** CFG and prime paths of a compiled program, memoized on the program
    instance ({!Workload.compile} memoizes compilations, so this is a
    once-per-program cost across a sweep). *)
val primes_for : Program.t -> Cfg.t * Cfg.paths

type t

val label : t -> string

(** The snapshot's single-line JSON (no trailing newline). *)
val to_json : t -> string

(** Render one finished run. Reads the run's coverage, BTB state and
    telemetry counters; never the wall clock. *)
val snapshot :
  label:string ->
  program:Program.t ->
  machine:Machine.t ->
  result:Engine.result ->
  config:Pe_config.t ->
  t

(** Is a capture in progress (collector installed)? The experiment funnel
    snapshots each run iff armed. *)
val armed : unit -> bool

(** Hand a snapshot to the installed collector; no-op when unarmed. Safe
    from any domain. *)
val submit : t -> unit

(** Arm the observatory around [f]: sets {!Pe_config.set_obs_enabled} (the
    engine-side bookkeeping switch) and installs a snapshot-accumulating
    collector; both are cleared afterwards (also on raise). Returns
    [f ()]'s value and the snapshots in submission order. *)
val capture_runs : (unit -> 'a) -> 'a * t list

(** Write one [obs-%04d-<label>.json] file per snapshot into [dir]
    (created if missing), ordered by (label, content) — canonical across
    serial and parallel sweeps. Returns the file paths in order. *)
val save_dir : dir:string -> t list -> string list

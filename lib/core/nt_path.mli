(** One NT-Path: spawn, sandboxed execution, termination, squash.

    The runner copies the spawning core's registers, redirects the pc to the
    forced edge's stub (setting the predicate register iff fixing is on, so
    the stub's consistency fixes execute), buffers every memory write in the
    versioned-L1 sandbox, and steps until one of the paper's termination
    conditions: the instruction budget, a crash (swallowed), an unsafe
    event, the end of the program, or L1 buffering overflow. On termination
    the path's cache lines are gang-invalidated, its watchpoint mutations
    undone and its writes discarded; only detector reports survive. *)

type termination =
  | T_max_length  (** reached [MaxNTPathLength] instructions *)
  | T_crash of Cpu.fault  (** the exception is swallowed, never delivered *)
  | T_unsafe of Insn.sys  (** an unsandboxable syscall *)
  | T_program_end
  | T_cache_overflow  (** dirtied more lines than L1 can buffer *)

type record = {
  spawn_br_pc : int;  (** the branch whose non-taken edge was forced *)
  forced_direction : bool;
  entry_pc : int;  (** head of the forced edge's stub *)
  insns : int;
  cycles : int;
  stores : int;
  branches : int;
  squashed_lines : int;  (** dirty L1 lines gang-invalidated at squash *)
  termination : termination;
}

val termination_name : termination -> string
val is_crash : record -> bool
val is_unsafe : record -> bool

(** Pooled spawn state — a context and an overlay sandbox recycled across
    every NT-Path of an engine run, so a spawn allocates nothing. *)
type arena

(** One arena for a machine's geometry; the L1 is retargeted per spawn. *)
val make_arena : Machine.t -> l1:Cache.t -> arena

(** Execute one NT-Path to termination. [regs] is the spawning core's
    register file (copied, never mutated); [l1] the cache the path runs
    against (the primary core's in the standard configuration, an idle
    core's under the CMP option); [path_id] its cache version tag. With
    [config.sandbox_syscalls] (the OS-support extension) I/O syscalls are
    virtualised instead of terminating the path. [fix_override] (the
    profiled-fixing extension) writes the given (address, value) into the
    sandbox at entry and suppresses the boundary stubs. *)
val run :
  ?fix_override:int * int ->
  Machine.t ->
  Pe_config.t ->
  Coverage.t ->
  arena:arena ->
  l1:Cache.t ->
  regs:int array ->
  entry:int ->
  spawn_br_pc:int ->
  forced_direction:bool ->
  path_id:int ->
  record

(** Branch coverage over the program's user branch-edge universe.

    The paper evaluates PathExpander with branch coverage (path coverage
    being unmeasurable); an edge is one direction of a conditional branch in
    user (non-runtime-library) code. *)

type t

val create : Program.t -> t

val in_universe : t -> int -> bool

(** Record an edge executed by the taken path. Edges outside the universe
    (runtime library, detector code) are ignored. *)
val record_taken : t -> int -> bool -> unit

(** Record an edge executed inside an NT-Path. *)
val record_nt : t -> int -> bool -> unit

(** Statement coverage: record the instruction at [pc] as executed by the
    taken path (runtime-library pcs are ignored). Called per instruction. *)
val record_pc_taken : t -> int -> unit

val record_pc_nt : t -> int -> unit

(** Total number of edges: two per user branch. *)
val edge_universe_size : t -> int

val taken_edges : t -> int
val combined_edges : t -> int

(** Baseline branch coverage, percent. *)
val taken_pct : t -> float

(** Coverage including NT-Path exploration, percent. *)
val combined_pct : t -> float

(** Statement (distinct user source line) coverage of the taken path. *)
val stmt_taken_pct : t -> float

(** Statement coverage including NT-Path exploration. *)
val stmt_combined_pct : t -> float

(** Union [src]'s coverage into [dst] (cumulative coverage over inputs). *)
val merge_into : dst:t -> t -> unit

(** {2 Observatory hooks (DESIGN.md §15)}

    Frontier attribution needs to read individual edges back out of the
    bitmaps and to know {e which} NT-Path first covered an edge. The
    per-edge sequence array is only allocated (and the recording branch only
    taken) once {!arm_attribution} runs, so unobserved runs pay one
    predictable-false test per NT edge record. *)

(** Arm per-edge NT-Path attribution for this run. *)
val arm_attribution : t -> unit

(** Ordinal (1-based) of the NT-Path about to execute; 0 = taken path. *)
val set_nt_seq : t -> int -> unit

(** Ordinal of the NT-Path that first covered the edge, 0 if none (or
    attribution unarmed). *)
val nt_first_seq : t -> int -> bool -> int

val covered_taken_edge : t -> int -> bool -> bool
val covered_nt_edge : t -> int -> bool -> bool

(** Edge in the combined (taken ∪ NT) set. *)
val covered_edge : t -> int -> bool -> bool

(** Combined statement coverage of the source line generating [pc]; false
    for runtime-library pcs. *)
val pc_line_covered : t -> int -> bool

(** PathExpander policy parameters. *)

type mode =
  | Baseline  (** plain monitored run, no NT-Paths *)
  | Standard  (** checkpoint-and-rollback on the single core (Fig. 4a) *)
  | Cmp  (** NT-Paths on idle cores of the CMP (Fig. 4b) *)

type t = {
  mode : mode;
  nt_counter_threshold : int;
      (** spawn on a non-taken edge whose BTB exercise counter is below this
          ([NTPathCounterThreshold], paper default 5) *)
  max_nt_path_length : int;
      (** terminate an NT-Path after this many instructions
          ([MaxNTPathLength], 1000; 100 for the small Siemens programs) *)
  max_num_nt_paths : int;
      (** CMP option: maximum outstanding NT-Paths ([MaxNumNTPaths], 32) *)
  counter_reset_interval : int;
      (** reset all exercise counters every this many retired instructions
          ([CounterResetInterval]) *)
  fixing : bool;
      (** execute the predicated consistency-fix blocks at NT-Path entry
          (requires a binary compiled with [Codegen.options.fixing]) *)
  follow_nontaken_in_nt : bool;
      (** Section 4.2 ablation: inside an NT-Path, keep forcing cold
          non-taken edges instead of following the actual condition *)
  spawn_everywhere : bool;
      (** ignore exercise counters and spawn on every non-taken edge *)
  sandbox_syscalls : bool;
      (** the paper's future-work OS support (Section 3.2): virtualise I/O
          syscalls inside NT-Paths — output is discarded, [getc] reads ahead
          on a path-local cursor — instead of terminating the path *)
  random_spawn_chance : float;
      (** the paper's Section 7.1 suggestion for the hot-entry-edge miss:
          with this probability, spawn a non-taken edge even when its
          exercise counter is already at the threshold *)
  random_seed : int;  (** seed for the (deterministic) random spawn factor *)
  profiled_fixing : bool;
      (** the paper's Section 4.4 future work: fix condition variables with
          values from their observed history (value-invariant inference)
          when one satisfies the forced edge, falling back to the boundary
          stubs otherwise *)
  selective : bool;
      (** coverage-preserving selective detection (HeXcite-style): run the
          taken path on the stripped fast interpreter tier, deoptimizing to
          the fully instrumented tier exactly at spawn-candidate branches,
          syscalls, detector checks, watch traffic and faults. Output is
          byte-identical to non-selective execution. Configurations with a
          per-branch action (random spawning, profiled fixing,
          spawn-everywhere, the [follow_nontaken_in_nt] ablation)
          deoptimize at every branch but keep straight-line code fast;
          active watchpoints and store hooks pin execution to the
          instrumented tier while they last. Default on. *)
}

(** Process-wide selective kill switch (CLI plumbing): when set to [false],
    every run behaves as if [selective = false] regardless of its config. *)
val set_selective_enabled : bool -> unit

(** Is selective execution effective for [config] — its own flag AND the
    process-wide switch. *)
val selective_on : t -> bool

(** Process-wide Coverage Observatory switch (DESIGN.md §15): when armed,
    runs collect frontier-attribution bookkeeping and deopt-cause counters.
    Off by default; arming must not change any observable run output. *)
val set_obs_enabled : bool -> unit

val obs_on : unit -> bool

val default : t
val baseline : t
val siemens : t

(** Spawn on every cold edge with no fixing — the Section 3.2 crash-latency
    study setup. *)
val latency_study : t

val mode_name : mode -> string

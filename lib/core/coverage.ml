(* Branch-coverage accounting over the user branch universe. An edge is a
   (branch pc, direction) pair; the universe is fixed by the compiled
   program.  Taken-path coverage is what the baseline monitored run achieves;
   NT-Path coverage is the additional code PathExpander lets the detector
   see.

   Everything is dense and mutable: the universe is a byte per pc, an edge
   set is a byte per (pc, direction) at index [2*pc + dir]. Recording an
   edge — once per executed branch, taken path and NT-Paths alike — is two
   array reads and a store, with none of the hashing or balanced-tree
   rebuilding of the persistent-set representation this replaces. *)

type t = {
  ubits : Bytes.t;  (* per pc: is this a user conditional branch *)
  branch_universe : int;  (* number of user branches *)
  taken : Bytes.t;  (* per edge (2*pc + dir): seen on the taken path *)
  nt : Bytes.t;  (* per edge: seen inside an NT-Path *)
  (* statement (source-line) coverage: [line_of.(pc)] is the user source
     line of the instruction at [pc], or 0 for runtime code *)
  line_of : int array;
  line_taken : Bytes.t;
  line_nt : Bytes.t;
  line_universe : int;
  (* Frontier attribution (observatory only, armed per run): when armed,
     [nt_seq.(edge)] remembers the 1-based ordinal of the NT-Path that
     *first* covered the edge, so an uncovered sibling edge can be blamed on
     that path's termination cause. [cur_seq] is the ordinal of the NT-Path
     currently executing (0 on the taken path). *)
  mutable attr_armed : bool;
  mutable cur_seq : int;
  mutable nt_seq : int array;
}

let create program =
  let n = Array.length program.Program.code in
  let ubits = Bytes.make n '\000' in
  List.iter
    (fun pc -> if pc >= 0 && pc < n then Bytes.set ubits pc '\001')
    program.Program.user_branches;
  let branch_universe =
    Bytes.fold_left (fun acc c -> if c = '\001' then acc + 1 else acc) 0 ubits
  in
  let line_of = Array.make n 0 in
  List.iter
    (fun (lo, hi) ->
      for pc = lo to min (hi - 1) (n - 1) do
        line_of.(pc) <- Program.line_of_pc program pc
      done)
    program.Program.user_code_ranges;
  let max_line = Array.fold_left max 0 line_of in
  let distinct = Hashtbl.create 256 in
  Array.iter (fun l -> if l > 0 then Hashtbl.replace distinct l ()) line_of;
  {
    ubits;
    branch_universe;
    taken = Bytes.make (2 * n) '\000';
    nt = Bytes.make (2 * n) '\000';
    line_of;
    line_taken = Bytes.make (max_line + 1) '\000';
    line_nt = Bytes.make (max_line + 1) '\000';
    line_universe = Hashtbl.length distinct;
    attr_armed = false;
    cur_seq = 0;
    nt_seq = [||];
  }

let[@inline always] in_universe cov pc =
  pc >= 0 && pc < Bytes.length cov.ubits && Bytes.unsafe_get cov.ubits pc = '\001'

let[@inline always] edge_index pc direction = (2 * pc) + if direction then 1 else 0

(* Called once per executed conditional branch — the hot recording path. *)
let[@inline always] record_taken cov pc direction =
  if in_universe cov pc then
    Bytes.unsafe_set cov.taken (edge_index pc direction) '\001'

let[@inline always] record_nt cov pc direction =
  if in_universe cov pc then begin
    let i = edge_index pc direction in
    Bytes.unsafe_set cov.nt i '\001';
    (* attribution bookkeeping: one predictable-false branch when unarmed *)
    if cov.attr_armed && Array.unsafe_get cov.nt_seq i = 0 then
      Array.unsafe_set cov.nt_seq i cov.cur_seq
  end

(* ---- Observatory hooks (DESIGN.md §15) ---- *)

let arm_attribution cov =
  cov.attr_armed <- true;
  if Array.length cov.nt_seq = 0 then
    cov.nt_seq <- Array.make (Bytes.length cov.nt) 0

(* Ordinal (1-based) of the NT-Path about to run; 0 = back on taken path. *)
let set_nt_seq cov seq = cov.cur_seq <- seq

(* Ordinal of the NT-Path that first covered the edge; 0 when the edge was
   never covered inside an NT-Path (or attribution was not armed). *)
let nt_first_seq cov pc direction =
  let i = edge_index pc direction in
  if i >= 0 && i < Array.length cov.nt_seq then cov.nt_seq.(i) else 0

let covered_taken_edge cov pc direction =
  let i = edge_index pc direction in
  i >= 0 && i < Bytes.length cov.taken && Bytes.get cov.taken i = '\001'

let covered_nt_edge cov pc direction =
  let i = edge_index pc direction in
  i >= 0 && i < Bytes.length cov.nt && Bytes.get cov.nt i = '\001'

let covered_edge cov pc direction =
  covered_taken_edge cov pc direction || covered_nt_edge cov pc direction

(* Combined statement coverage of the source line generating [pc]; false for
   runtime code (line 0 is the sentinel slot, never a user line). *)
let pc_line_covered cov pc =
  pc >= 0
  && pc < Array.length cov.line_of
  &&
  let l = cov.line_of.(pc) in
  l > 0
  && (Bytes.get cov.line_taken l = '\001' || Bytes.get cov.line_nt l = '\001')

(* Statement coverage: called once per retired instruction, so the store is
   unconditional — runtime code maps to line 0, whose bitmap slot is a
   sentinel sink the percentage readers below skip. [line_of] has exactly
   one slot per pc (see [create]), so the caller's pc range check covers
   the unsafe read. *)
let[@inline always] record_pc_taken cov pc =
  if pc >= 0 && pc < Array.length cov.line_of then
    Bytes.unsafe_set cov.line_taken (Array.unsafe_get cov.line_of pc) '\001'

let[@inline always] record_pc_nt cov pc =
  if pc >= 0 && pc < Array.length cov.line_of then
    Bytes.unsafe_set cov.line_nt (Array.unsafe_get cov.line_of pc) '\001'

let count_lines bytes = Bytes.fold_left (fun acc c -> if c = '\001' then acc + 1 else acc) 0 bytes

(* Line bitmaps only: slot 0 is the runtime-code sentinel, never a line. *)
let count_marked_lines bytes =
  let n = ref 0 in
  for i = 1 to Bytes.length bytes - 1 do
    if Bytes.get bytes i = '\001' then incr n
  done;
  !n

let stmt_taken_pct cov =
  Stats.pct ~num:(count_marked_lines cov.line_taken) ~den:cov.line_universe

let stmt_combined_pct cov =
  let combined = ref 0 in
  for i = 1 to Bytes.length cov.line_taken - 1 do
    if Bytes.get cov.line_taken i = '\001' || Bytes.get cov.line_nt i = '\001'
    then incr combined
  done;
  Stats.pct ~num:!combined ~den:cov.line_universe

let edge_universe_size cov = 2 * cov.branch_universe

let taken_edges cov = count_lines cov.taken

let combined_edges cov =
  let combined = ref 0 in
  for i = 0 to Bytes.length cov.taken - 1 do
    if Bytes.get cov.taken i = '\001' || Bytes.get cov.nt i = '\001' then
      incr combined
  done;
  !combined

let taken_pct cov =
  Stats.pct ~num:(taken_edges cov) ~den:(edge_universe_size cov)

let combined_pct cov =
  Stats.pct ~num:(combined_edges cov) ~den:(edge_universe_size cov)

let union_into dst src =
  let n = min (Bytes.length dst) (Bytes.length src) in
  for i = 0 to n - 1 do
    if Bytes.get src i = '\001' then Bytes.set dst i '\001'
  done

(* Accumulate [src] into [dst] (cumulative coverage across inputs). Both must
   come from the same compiled program. *)
let merge_into ~dst src =
  union_into dst.taken src.taken;
  union_into dst.nt src.nt;
  union_into dst.line_taken src.line_taken;
  union_into dst.line_nt src.line_nt

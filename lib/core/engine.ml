(* The PathExpander execution engines.

   Both configurations execute the taken path on the primary context; at
   every conditional branch the BTB exercise counters decide whether the
   non-taken edge is spawned as an NT-Path.

   - Standard configuration: the NT-Path runs on the same core (sharing its
     L1); its full execution time, plus spawn and squash overheads, lands on
     the program's critical path (checkpoint-and-rollback).

   - CMP optimisation: NT-Paths run on the idle cores. Functionally the
     simulation executes each NT-Path synchronously at its spawn point —
     which is exactly the memory state the tree-shaped TLS dependency order
     guarantees the path would observe — while the *timing* model assigns it
     to the earliest-free idle core and only charges the primary core the
     spawn overhead; a taken-path segment cannot fully commit until its
     sibling NT-Paths squash, so the program ends at
     max(taken-path end, last NT-Path squash). *)

type outcome = [ `Halted | `Exited of int | `Faulted of Cpu.fault | `Fuel_exhausted ]

type result = {
  outcome : outcome;
  taken_insns : int;
  taken_branches : int;
  taken_stores : int;
  taken_cycles : int;
  total_cycles : int;
  nt_records : Nt_path.record list;
  spawns : int;
  skipped_spawns : int;
  profiled_overrides : int;
  coverage : Coverage.t;
  fast_insns : int;
      (* taken-path instructions retired on the selective fast tier *)
  fast_segments : int;  (* fast segments executed (deoptimization count + 1) *)
  skipped_edges : int list;
      (* observatory only: encoded edges (2*pc + dir) whose spawn was
         suppressed by the CMP outstanding-path budget, sorted distinct;
         [] when the observatory is unarmed *)
}

let outcome_name = function
  | `Halted -> "halted"
  | `Exited n -> Printf.sprintf "exited(%d)" n
  | `Faulted f -> "faulted: " ^ Cpu.fault_to_string f
  | `Fuel_exhausted -> "fuel-exhausted"

type cmp_state = {
  core_free : int array;  (* per idle core: cycle when it becomes free *)
  mutable active_finish : int list;  (* finish times of outstanding NT-Paths *)
}

(* Fixed 8-slot ring of recently observed condition-variable values
   (profiled fixing). Newest-first, insert-if-absent with no reordering on
   re-observation, oldest evicted when full — the exact semantics of the
   bounded history list it replaces, without the per-observation
   [List.mem]/[List.length]/[List.filteri] walks and list allocation. *)
module Vring = struct
  let capacity = 8  (* power of two: index arithmetic is a mask *)

  type t = { slots : int array; mutable len : int; mutable head : int }

  let create () = { slots = Array.make capacity 0; len = 0; head = 0 }

  let mem t v =
    let rec go i =
      i < t.len
      && (t.slots.((t.head + i) land (capacity - 1)) = v || go (i + 1))
    in
    go 0

  let add_if_absent t v =
    if not (mem t v) then begin
      t.head <- (t.head + capacity - 1) land (capacity - 1);
      t.slots.(t.head) <- v;
      if t.len < capacity then t.len <- t.len + 1
    end

  (* First (most recently observed) value satisfying [f]. *)
  let find_newest t f =
    let rec go i =
      if i >= t.len then None
      else
        let v = t.slots.((t.head + i) land (capacity - 1)) in
        if f v then Some v else go (i + 1)
    in
    go 0
end

let run ?(config = Pe_config.default) ?(fuel = 100_000_000) machine =
  let mconfig = machine.Machine.config in
  let program = machine.Machine.program in
  let ctx = Machine.main_context machine in
  let coverage = Coverage.create program in
  (* Coverage Observatory (DESIGN.md §15): when armed process-wide, collect
     frontier-attribution bookkeeping (which NT-Path first covered each
     edge, which edges lost their spawn to the budget) and tier/deopt-cause
     counters. All of it is pure observation — arming changes no simulated
     behaviour, so observed and unobserved runs stay byte-identical. *)
  let obs = Pe_config.obs_on () in
  if obs then Coverage.arm_attribution coverage;
  let skipped_edge_set = Hashtbl.create 16 in
  let d_branch = ref 0
  and d_syscall = ref 0
  and d_watch = ref 0
  and d_detector = ref 0
  and d_fault = ref 0
  and d_other = ref 0
  and pinned_insns = ref 0 in
  let nt_records = ref [] in
  let spawns = ref 0 in
  let skipped = ref 0 in
  let nt_serial_cycles = ref 0 in
  let next_path_id = ref 0 in
  let last_reset = ref 0 in
  let cmp =
    {
      core_free = Array.make (max 1 (mconfig.Machine_config.cores - 1)) 0;
      active_finish = [];
    }
  in
  let cmp_l1s =
    lazy
      (Array.init
         (max 1 (mconfig.Machine_config.cores - 1))
         (fun _ -> Machine.new_l1 machine))
  in
  (* Profiled fixing (Section 4.4 future work): observe each fixable
     condition variable's value whenever its branch executes; at spawn time
     prefer a historically observed value satisfying the forced edge over
     the boundary stub. *)
  let atom_map = Hashtbl.create 64 in
  if config.Pe_config.profiled_fixing then
    List.iter
      (fun (br_pc, atom) -> Hashtbl.replace atom_map br_pc atom)
      program.Program.fix_atoms;
  let value_history : (int, Vring.t) Hashtbl.t = Hashtbl.create 64 in
  let home_addr home =
    match home with
    | Fix_atom.Hglobal addr -> addr
    | Fix_atom.Hframe off -> Context.get_reg ctx Reg.fp + off
  in
  let read_home home =
    let addr = home_addr home in
    if Memory.is_valid machine.Machine.mem addr then
      Some (Memory.read machine.Machine.mem addr)
    else None
  in
  let observe_condition_var br_pc =
    match Hashtbl.find_opt atom_map br_pc with
    | None -> ()
    | Some atom ->
      (match read_home atom.Fix_atom.var with
       | None -> ()
       | Some v ->
         let ring =
           match Hashtbl.find_opt value_history br_pc with
           | Some r -> r
           | None ->
             let r = Vring.create () in
             Hashtbl.replace value_history br_pc r;
             r
         in
         Vring.add_if_absent ring v)
  in
  let profiled_override ~br_pc ~forced_direction =
    match Hashtbl.find_opt atom_map br_pc with
    | None -> None
    | Some atom ->
      let cmp = Fix_atom.edge_cmp atom ~forced_direction in
      let rhs =
        match atom.Fix_atom.rhs with
        | Fix_atom.Const k -> Some k
        | Fix_atom.Var home -> read_home home
      in
      (match (rhs, Hashtbl.find_opt value_history br_pc) with
       | Some rhs_value, Some ring ->
         (match
            Vring.find_newest ring (fun v -> Insn.eval_cmp cmp v rhs_value)
          with
          | Some v -> Some (home_addr atom.Fix_atom.var, v)
          | None -> None)
       | _ -> None)
  in
  let overrides = ref 0 in
  let counted_override ov =
    (match ov with Some _ -> incr overrides | None -> ());
    ov
  in
  let spawn_rng = Rng.create config.Pe_config.random_seed in
  let random_spawn () =
    config.Pe_config.random_spawn_chance > 0.0
    && Rng.float spawn_rng < config.Pe_config.random_spawn_chance
  in
  let tel = machine.Machine.telemetry in
  let fresh_path_id () =
    (* 8-bit version tags, id 0 reserved for committed data (Section 4.3). *)
    next_path_id := !next_path_id + 1;
    let id = ((!next_path_id - 1) mod 255) + 1 in
    if !next_path_id > 255 then begin
      (* The id is being reused. Every path gang-invalidates its lines at
         termination, so no L1 should still hold lines under this tag — but
         a stale survivor would let the old path's squash destroy the new
         path's lines, so clean defensively and account for it. *)
      let stale = ref (Cache.gang_invalidate ctx.Context.l1 ~owner:id) in
      if Lazy.is_val cmp_l1s then
        Array.iter
          (fun l1 -> stale := !stale + Cache.gang_invalidate l1 ~owner:id)
          (Lazy.force cmp_l1s);
      if !stale > 0 then Telemetry.count tel "path_id.stale_lines_cleaned" !stale
    end;
    id
  in
  (* One pooled context + sandbox recycled across every spawn of this run. *)
  let nt_arena = Nt_path.make_arena machine ~l1:ctx.Context.l1 in
  let nt_insns = ref 0 in
  (* NT-Path phase time is derived at run end from the instruction split
     (see the telemetry block below) rather than measured per spawn: a
     [Telemetry.span] here cost two [Unix.gettimeofday] calls per NT-Path,
     which for short paths rivalled the path's own execution time. *)
  let recorder = machine.Machine.recorder in
  let last_spawn_cycle = ref 0 in
  (* Histogram handles resolved once per run; spawns observe through them
     without re-hashing the metric names. *)
  let h_interarrival = Telemetry.hist tel "nt.spawn_interarrival" in
  let h_len = Telemetry.hist tel "nt.len" in
  let h_dirty = Telemetry.hist tel "nt.dirty_per_squash" in
  let run_nt_path ?fix_override ~l1 ~entry ~br_pc ~forced_direction () =
    let now = ctx.Context.stats.Context.cycles in
    Telemetry.hist_observe h_interarrival (now - !last_spawn_cycle);
    last_spawn_cycle := now;
    let path_id = fresh_path_id () in
    (* Flight-recorder clock bracket: the Spawn event fires at the primary
       core's current cycle, then that instant becomes the base for the
       path's own events (bug reports, squash, terminate), which carry
       path-local cycle offsets. *)
    if Recorder.enabled recorder then begin
      Recorder.set_local recorder now;
      Recorder.emit_spawn recorder ~path_id ~br_pc ~edge:forced_direction
        ~entry_pc:entry;
      Recorder.set_base recorder now
    end;
    (* Attribution: edges this path records are stamped with its 1-based
       spawn ordinal, which indexes the run's [nt_records] (spawn order). *)
    if obs then Coverage.set_nt_seq coverage !spawns;
    let record =
      Nt_path.run ?fix_override machine config coverage ~arena:nt_arena ~l1
        ~regs:ctx.Context.regs ~entry ~spawn_br_pc:br_pc ~forced_direction
        ~path_id
    in
    if obs then Coverage.set_nt_seq coverage 0;
    if Recorder.enabled recorder then Recorder.set_base recorder 0;
    Telemetry.hist_observe h_len record.Nt_path.insns;
    Telemetry.hist_observe h_dirty record.Nt_path.squashed_lines;
    nt_insns := !nt_insns + record.Nt_path.insns;
    record
  in
  let spawn_standard ~entry ~br_pc ~forced_direction =
    incr spawns;
    let fix_override =
      if config.Pe_config.profiled_fixing then
        counted_override (profiled_override ~br_pc ~forced_direction)
      else None
    in
    let record =
      run_nt_path ?fix_override ~l1:ctx.Context.l1 ~entry ~br_pc
        ~forced_direction ()
    in
    nt_records := record :: !nt_records;
    nt_serial_cycles :=
      !nt_serial_cycles + record.Nt_path.cycles
      + mconfig.Machine_config.spawn_cycles + mconfig.Machine_config.squash_cycles
  in
  let spawn_cmp ~entry ~br_pc ~forced_direction =
    let now = ctx.Context.stats.Context.cycles in
    cmp.active_finish <- List.filter (fun f -> f > now) cmp.active_finish;
    if List.length cmp.active_finish >= config.Pe_config.max_num_nt_paths then begin
      incr skipped;
      if obs then
        Hashtbl.replace skipped_edge_set
          ((2 * br_pc) + if forced_direction then 1 else 0)
          ()
    end
    else begin
      incr spawns;
      (* Register copy to the idle core: spawn overhead on the primary. *)
      ctx.Context.stats.Context.cycles <-
        now + mconfig.Machine_config.spawn_cycles;
      let core =
        let best = ref 0 in
        Array.iteri
          (fun i free -> if free < cmp.core_free.(!best) then best := i)
          cmp.core_free;
        !best
      in
      let l1 = (Lazy.force cmp_l1s).(core) in
      let fix_override =
        if config.Pe_config.profiled_fixing then
          counted_override (profiled_override ~br_pc ~forced_direction)
        else None
      in
      let record = run_nt_path ?fix_override ~l1 ~entry ~br_pc ~forced_direction () in
      nt_records := record :: !nt_records;
      let start = max (ctx.Context.stats.Context.cycles) cmp.core_free.(core) in
      let finish =
        start + record.Nt_path.cycles + mconfig.Machine_config.squash_cycles
      in
      cmp.core_free.(core) <- finish;
      cmp.active_finish <- finish :: cmp.active_finish
    end
  in
  let handle_branch ~br_pc ~taken =
    Coverage.record_taken coverage br_pc taken;
    if config.Pe_config.profiled_fixing then observe_condition_var br_pc;
    match config.Pe_config.mode with
    | Pe_config.Baseline -> ()
    | Pe_config.Standard | Pe_config.Cmp ->
      let taken_count, nontaken_count = Btb.counts machine.Machine.btb br_pc in
      let forced_count = if taken then nontaken_count else taken_count in
      Btb.exercise machine.Machine.btb br_pc ~taken;
      if
        config.Pe_config.spawn_everywhere
        || forced_count < config.Pe_config.nt_counter_threshold
        || random_spawn ()
      then begin
        Btb.exercise machine.Machine.btb br_pc ~taken:(not taken);
        (* The interpreter left the branch's taken-target in the context's
           scratch fields; the non-taken edge is the one to force. *)
        let entry = if taken then br_pc + 1 else ctx.Context.br_target in
        match config.Pe_config.mode with
        | Pe_config.Standard ->
          spawn_standard ~entry ~br_pc ~forced_direction:(not taken)
        | Pe_config.Cmp -> spawn_cmp ~entry ~br_pc ~forced_direction:(not taken)
        | Pe_config.Baseline -> ()
      end
  in
  (* [CounterResetInterval] is defined over *program progress*
     (Section 3.1), so the cadence follows the primary context's
     retired-instruction count. [Machine.insn_index] also advances
     inside sandboxed NT-Paths, which would tie the reset rate to how
     many NT-Paths happened to spawn. *)
  let maybe_reset () =
    if
      ctx.Context.stats.Context.insns - !last_reset
      >= config.Pe_config.counter_reset_interval
    then begin
      Btb.reset_counters machine.Machine.btb;
      Telemetry.incr tel "btb.counter_resets";
      if Recorder.enabled recorder then begin
        Recorder.set_local recorder ctx.Context.stats.Context.cycles;
        Recorder.emit_counter_reset recorder
          ~insns:ctx.Context.stats.Context.insns
      end;
      last_reset := ctx.Context.stats.Context.insns
    end
  in
  (* Selective (fast/slow) execution. Some configurations take an action at
     *every* branch that the fast tier deliberately omits — randomised
     spawning draws the RNG per branch, profiled fixing observes the
     condition variable per branch, spawn-everywhere makes every branch a
     spawn. Rather than pinning those runs to the instrumented tier, force a
     deoptimization at every branch: with [threshold = max_int] the fast
     tier's [Btb.probe_exercise] reports every branch as a spawn candidate
     (leaving the BTB untouched), so the straight-line stretches between
     branches still run fast while every per-branch action — RNG draw,
     observation, BTB traffic, spawn — happens on the instrumented tier in
     the exact sequence the single-tier loop produces. Watchpoints and store
     hooks are re-checked each iteration below because they come and go at
     runtime. *)
  let selective_ok = Pe_config.selective_on config in
  let spawning =
    (* Branches need the instrumented tier whenever they spawn (non-Baseline
       modes) or observe condition-variable history (profiled fixing, which
       observes in every mode). *)
    config.Pe_config.mode <> Pe_config.Baseline
    || config.Pe_config.profiled_fixing
  in
  let threshold =
    if
      config.Pe_config.random_spawn_chance > 0.0
      || config.Pe_config.profiled_fixing
      || config.Pe_config.spawn_everywhere
    then max_int (* every branch deoptimizes *)
    else config.Pe_config.nt_counter_threshold
  in
  let bits = Bitbuf.create ~capacity_bits:(1 lsl 16) () in
  (* One fast-tier handle for the whole run: segments then allocate
     nothing (closures, branch log and exit flushing all live in the
     handle — see Fast_loop). *)
  let fl = Fast_loop.make machine ctx coverage ~bits in
  let fast_insns = ref 0 in
  let fast_segments = ref 0 in
  let fast_branch_bits = ref 0 in
  (* Observatory: why did the fast tier hand this pc to the instrumented
     tier? The fast tier stops *before* executing a special instruction, so
     the cause is readable from the decoded image at the current pc. *)
  let classify_deopt () =
    let pc = ctx.Context.pc in
    let dcode = machine.Machine.dcode in
    if pc < 0 || pc >= Array.length dcode then incr d_fault
    else
      let rec go = function
        | Decode.D_syscall _ -> incr d_syscall
        | Decode.D_watch _ | Decode.D_unwatch _ -> incr d_watch
        | Decode.D_checkz _ -> incr d_detector
        | Decode.D_div _ | Decode.D_mod _ | Decode.D_divi _ | Decode.D_modi _
        | Decode.D_load _ | Decode.D_store _ | Decode.D_call _ | Decode.D_ret
        | Decode.D_push _ | Decode.D_pop _ ->
          (* memory/divisor operands the fast tier refused to touch *)
          incr d_fault
        | Decode.D_pred d -> go d
        | _ -> incr d_other
      in
      go dcode.(pc)
  in
  let rec loop () =
    if ctx.Context.stats.Context.insns >= fuel then `Fuel_exhausted
    else begin
      maybe_reset ();
      if
        selective_ok
        && Watchpoints.is_empty machine.Machine.watch
        && (match machine.Machine.store_hook with
           | None -> true
           | Some _ -> false)
      then begin
        (* Segment budget: stop exactly at the fuel and counter-reset
           boundaries, so both fire at the same retired-instruction counts
           as the single-tier loop. Both differences are positive here (the
           fuel check above, the reset just performed). *)
        let insns = ctx.Context.stats.Context.insns in
        let budget =
          min (fuel - insns)
            (!last_reset + config.Pe_config.counter_reset_interval - insns)
        in
        Bitbuf.clear bits;
        let fstop = Fast_loop.run fl ~spawning ~threshold ~budget in
        let retired = Fast_loop.retired fl in
        if retired > 0 then begin
          (* The fast tier bumped the context's stats itself; the global
             retired-instruction index (report provenance) follows here. *)
          machine.Machine.insn_index <- machine.Machine.insn_index + retired;
          fast_insns := !fast_insns + retired;
          fast_branch_bits := !fast_branch_bits + Bitbuf.length bits;
          incr fast_segments
        end;
        match fstop with
        | Fast_loop.Budget -> loop ()
        | Fast_loop.Special ->
          if obs then classify_deopt ();
          step_slow (-1)
        | Fast_loop.Special_branch_taken ->
          if obs then incr d_branch;
          step_slow 1
        | Fast_loop.Special_branch_nontaken ->
          if obs then incr d_branch;
          step_slow 0
      end
      else begin
        (* Instrumented-tier instruction outside the fast/slow split: either
           selective execution is off for this run, or active watchpoints /
           a store hook pin execution to the instrumented tier. *)
        if obs && selective_ok then incr pinned_insns;
        step_slow (-1)
      end
    end
  (* One instruction on the fully instrumented tier — the deoptimization
     target for fast-segment stops, and the whole interpreter when selective
     execution is off or inapplicable. [predicted] is the fast tier's
     evaluation of a spawn-candidate branch's condition (1 taken,
     0 not taken, -1 none) — an int, not a bool option, so per-step calls
     allocate nothing. *)
  and step_slow predicted =
    Coverage.record_pc_taken coverage ctx.Context.pc;
    match Cpu.step machine ctx with
    | Cpu.Ev_normal | Cpu.Ev_syscall _ -> loop ()
    | Cpu.Ev_branch ->
      if predicted >= 0 && (predicted = 1) <> ctx.Context.br_taken then
        (* Both tiers evaluate the same compare on the same registers;
           disagreement means an interpreter bug, not a program outcome. *)
        failwith "Engine: selective fast tier diverged at a branch";
      handle_branch ~br_pc:ctx.Context.br_pc ~taken:ctx.Context.br_taken;
      loop ()
    | Cpu.Ev_exit status -> `Exited status
    | Cpu.Ev_halt -> `Halted
    | Cpu.Ev_fault f -> `Faulted f
    (* The primary context is never sandboxed, so no write of its can
       overflow an L1 buffer; degrade to a fault if that ever changes. *)
    | Cpu.Ev_overflow -> `Faulted Cpu.Sandbox_overflow
  in
  let outcome = Telemetry.span tel "engine.run" loop in
  let taken_cycles = ctx.Context.stats.Context.cycles in
  let total_cycles =
    match config.Pe_config.mode with
    | Pe_config.Baseline -> taken_cycles
    | Pe_config.Standard -> taken_cycles + !nt_serial_cycles
    | Pe_config.Cmp ->
      (* The last taken-path segment needs its siblings' squash tokens. *)
      List.fold_left max taken_cycles cmp.active_finish
  in
  (* Observability: every run reports what it did and what it cost. *)
  if Telemetry.label tel = "" then
    Telemetry.set_label tel (Pe_config.mode_name config.Pe_config.mode);
  Telemetry.count tel "engine.spawns" !spawns;
  Telemetry.count tel "engine.skipped_spawns" !skipped;
  Telemetry.count tel "engine.profiled_overrides" !overrides;
  if !fast_insns > 0 then begin
    Telemetry.count tel "selective.fast_insns" !fast_insns;
    Telemetry.count tel "selective.segments" !fast_segments;
    Telemetry.count tel "selective.fast_branch_bits" !fast_branch_bits
  end;
  if obs then begin
    (* Deopt-cause histogram and tier pinning, exported only when the
       observatory is armed so unobserved telemetry output is unchanged. *)
    Telemetry.count tel "obs.deopt.branch" !d_branch;
    Telemetry.count tel "obs.deopt.syscall" !d_syscall;
    Telemetry.count tel "obs.deopt.watch" !d_watch;
    Telemetry.count tel "obs.deopt.detector" !d_detector;
    Telemetry.count tel "obs.deopt.fault" !d_fault;
    Telemetry.count tel "obs.deopt.other" !d_other;
    Telemetry.count tel "obs.pinned_insns" !pinned_insns
  end;
  Telemetry.count tel "taken.insns" ctx.Context.stats.Context.insns;
  Telemetry.count tel "taken.branches" ctx.Context.stats.Context.branches;
  Telemetry.count tel "taken.cycles" taken_cycles;
  Telemetry.count tel "engine.total_cycles" total_cycles;
  Telemetry.gauge tel "coverage.taken_pct" (Coverage.taken_pct coverage);
  Telemetry.gauge tel "coverage.combined_pct" (Coverage.combined_pct coverage);
  Cache.record_telemetry ctx.Context.l1 tel ~prefix:"l1.primary";
  Cache.record_telemetry machine.Machine.l2 tel ~prefix:"l2";
  if Lazy.is_val cmp_l1s then
    Array.iteri
      (fun i l1 ->
        Cache.record_telemetry l1 tel ~prefix:(Printf.sprintf "l1.core%d" (i + 1)))
      (Lazy.force cmp_l1s);
  Btb.record_telemetry machine.Machine.btb tel ~prefix:"btb";
  (* Phase split, derived once per run instead of clocked twice per spawn:
     apportion the measured wall time by retired-instruction share. *)
  let run_wall = Telemetry.timer_total tel "engine.run" in
  let total_insns = ctx.Context.stats.Context.insns + !nt_insns in
  if !nt_insns > 0 && total_insns > 0 then
    Telemetry.timer_record tel "phase.nt_path"
      (run_wall *. float_of_int !nt_insns /. float_of_int total_insns);
  Telemetry.gauge tel "phase.taken_s"
    (run_wall -. Telemetry.timer_total tel "phase.nt_path");
  Telemetry.submit tel;
  Recorder.submit ~label:(Telemetry.label tel) recorder;
  {
    outcome;
    taken_insns = ctx.Context.stats.Context.insns;
    taken_branches = ctx.Context.stats.Context.branches;
    taken_stores = ctx.Context.stats.Context.stores;
    taken_cycles;
    total_cycles;
    nt_records = List.rev !nt_records;
    spawns = !spawns;
    skipped_spawns = !skipped;
    profiled_overrides = !overrides;
    coverage;
    fast_insns = !fast_insns;
    fast_segments = !fast_segments;
    skipped_edges =
      List.sort_uniq compare
        (Hashtbl.fold (fun k () acc -> k :: acc) skipped_edge_set []);
  }

type mode = Baseline | Standard | Cmp

type t = {
  mode : mode;
  nt_counter_threshold : int;
  max_nt_path_length : int;
  max_num_nt_paths : int;
  counter_reset_interval : int;
  fixing : bool;
  follow_nontaken_in_nt : bool;
  spawn_everywhere : bool;
  sandbox_syscalls : bool;
  random_spawn_chance : float;
  random_seed : int;
  profiled_fixing : bool;
  selective : bool;
}

(* Process-wide kill switch for selective (fast/slow split) execution, so a
   single CLI flag can force every run in a sweep back onto the fully
   instrumented interpreter without threading a parameter through each
   experiment's config plumbing. Atomic: sweep workers on other domains read
   it. Both this and the per-run [selective] field must be on. *)
let selective_enabled = Atomic.make true

let set_selective_enabled b = Atomic.set selective_enabled b

let selective_on config = config.selective && Atomic.get selective_enabled

(* Process-wide observatory arm switch (same shape as the selective kill
   switch): when set, runs collect frontier-attribution bookkeeping and
   deopt-cause counters for the Coverage Observatory. Off by default — the
   observatory must not perturb unobserved sweeps. *)
let obs_enabled = Atomic.make false

let set_obs_enabled b = Atomic.set obs_enabled b

let obs_on () = Atomic.get obs_enabled

(* Paper defaults (Section 6.3): threshold 5, 1000-instruction NT-Paths, 32
   outstanding NT-Paths for the CMP option. *)
let default =
  {
    mode = Standard;
    nt_counter_threshold = 5;
    max_nt_path_length = 1000;
    max_num_nt_paths = 32;
    counter_reset_interval = 10_000_000;
    fixing = true;
    follow_nontaken_in_nt = false;
    spawn_everywhere = false;
    sandbox_syscalls = false;
    random_spawn_chance = 0.0;
    random_seed = 1;
    profiled_fixing = false;
    selective = true;
  }

let baseline = { default with mode = Baseline }

(* Small Siemens programs use 100-instruction NT-Paths in the paper
   (Section 6.3); our naive code generator emits ~3-5 machine instructions
   per source operation, so the equivalent budget here is 500. *)
let siemens = { default with max_nt_path_length = 500 }

(* Configuration of the crash-latency feasibility study (Section 3.2): spawn
   on every cold edge, no consistency fixing. *)
let latency_study =
  {
    default with
    nt_counter_threshold = 1;
    fixing = false;
    max_nt_path_length = 1000;
  }

let mode_name = function
  | Baseline -> "baseline"
  | Standard -> "standard"
  | Cmp -> "cmp"

type termination =
  | T_max_length
  | T_crash of Cpu.fault
  | T_unsafe of Insn.sys
  | T_program_end
  | T_cache_overflow

type record = {
  spawn_br_pc : int;
  forced_direction : bool;
  entry_pc : int;
  insns : int;
  cycles : int;
  stores : int;
  branches : int;
  squashed_lines : int;
  termination : termination;
}

let termination_name = function
  | T_max_length -> "max-length"
  | T_crash _ -> "crash"
  | T_unsafe _ -> "unsafe-event"
  | T_program_end -> "program-end"
  | T_cache_overflow -> "cache-overflow"

let is_crash record =
  match record.termination with
  | T_crash _ -> true
  | T_max_length | T_unsafe _ | T_program_end | T_cache_overflow -> false

let is_unsafe record =
  match record.termination with
  | T_unsafe _ -> true
  | T_max_length | T_crash _ | T_program_end | T_cache_overflow -> false

(* Pooled spawn state: one context, one overlay sandbox, one fast-tier
   handle and the per-spawn telemetry counter handles, recycled across every
   NT-Path an engine run spawns. A spawn is then a register blit plus O(1)
   resets instead of a context, two tables, a journal and a segment's worth
   of closures allocated and thrown away per path — and its termination
   accounting is five pre-resolved counter bumps instead of five string
   hashes. *)
type arena = {
  ctx : Context.t;
  sandbox : Context.sandbox;
  mutable fl : Fast_loop.nt option;
      (* built lazily on the first spawn: the coverage sink only reaches
         this module through [run] *)
  c_term : Telemetry.counter_handle array;  (* indexed by [term_index] *)
  c_insns : Telemetry.counter_handle;
  c_fast_insns : Telemetry.counter_handle;
  c_cycles : Telemetry.counter_handle;
  c_squashed : Telemetry.counter_handle;
}

let term_index = function
  | T_max_length -> 0
  | T_crash _ -> 1
  | T_unsafe _ -> 2
  | T_program_end -> 3
  | T_cache_overflow -> 4

let all_terminations =
  [| T_max_length; T_crash Cpu.Div_by_zero; T_unsafe Insn.Sys_exit;
     T_program_end; T_cache_overflow |]

let make_arena machine ~l1 =
  let tel = machine.Machine.telemetry in
  {
    ctx = Context.create ~l1 ~pc:0 ~sp:0;
    sandbox =
      Context.make_sandbox ~path_id:Cache.committed_owner
        ~line_limit:(Machine_config.l1_lines machine.Machine.config)
        ~words_per_line:(Machine_config.words_per_line machine.Machine.config);
    fl = None;
    c_term =
      Array.map
        (fun t -> Telemetry.counter_handle tel ("nt.term." ^ termination_name t))
        all_terminations;
    c_insns = Telemetry.counter_handle tel "nt.insns";
    c_fast_insns = Telemetry.counter_handle tel "nt.fast_insns";
    c_cycles = Telemetry.counter_handle tel "nt.cycles";
    c_squashed = Telemetry.counter_handle tel "nt.squashed_lines";
  }

(* Execute one NT-Path to termination.

   The context is a copy of the spawning core's registers redirected to
   [entry] (the head of the non-taken edge's stub); the predicate register is
   set iff consistency fixing is on, so the stub's predicated fix
   instructions execute. All memory writes are buffered in the sandbox; on
   termination the path's cache lines are gang-invalidated, its watchpoint
   mutations undone, and the buffered writes discarded — only detector
   reports (the monitor memory area) survive.

   Inner branches follow the actual condition; with
   [follow_nontaken_in_nt] (the Section 4.2 ablation) a cold non-taken edge
   is forced instead, without any consistency fix. *)
let run ?fix_override machine (config : Pe_config.t) coverage ~arena ~l1 ~regs
    ~entry ~spawn_br_pc ~forced_direction ~path_id =
  let ctx = arena.ctx in
  Context.reset_for_spawn ctx ~l1 ~pc:entry;
  Array.blit regs 0 ctx.Context.regs 0 Reg.count;
  let sandbox = arena.sandbox in
  Context.reset_sandbox sandbox ~path_id;
  Context.set_spawn_info sandbox ~br_pc:spawn_br_pc ~edge:forced_direction;
  Context.enter_sandbox ctx sandbox;
  (* Profiled fixing supplies a historically observed value directly into
     the sandbox and suppresses the boundary stubs; otherwise the stubs run
     under the predicate register as usual. *)
  (match fix_override with
   | Some (addr, value) ->
     ignore (Context.sandbox_write sandbox machine.Machine.mem addr value)
   | None -> ctx.Context.pred <- config.Pe_config.fixing);
  Coverage.record_nt coverage spawn_br_pc forced_direction;
  (* OS-support extension (the paper's Section 3.2 future work): virtualise
     I/O syscalls instead of squashing — output is discarded, getc reads
     ahead on a path-local cursor, so the path runs on. *)
  let nt_input_pos = ref (Io.input_pos machine.Machine.io) in
  let virtualise_syscall sys =
    match sys with
    | Insn.Sys_putc | Insn.Sys_print_int ->
      ctx.Context.pc <- ctx.Context.pc + 1;
      true
    | Insn.Sys_getc ->
      Context.set_reg ctx Reg.rv (Io.peek_at machine.Machine.io !nt_input_pos);
      if Io.peek_at machine.Machine.io !nt_input_pos >= 0 then
        incr nt_input_pos;
      ctx.Context.pc <- ctx.Context.pc + 1;
      true
    | Insn.Sys_exit -> false
  in
  (* Selective fast tier inside the path. When the run forces cold edges at
     inner branches ([follow_nontaken_in_nt], which needs per-branch BTB
     counts), the fast tier deoptimizes at every branch instead of being
     disabled — straight-line stretches stay fast. Watchpoints and the store
     hook are rechecked every iteration — the path itself arms and disarms
     them. *)
  let fast_ok = Pe_config.selective_on config in
  let deopt_branches = config.Pe_config.follow_nontaken_in_nt in
  (* One fast-tier handle per arena (built on the first spawn, when the
     run's coverage sink is first in hand): segments after that allocate
     nothing. The handle is bound to the arena's context and sandbox, which
     are exactly this path's — and it re-reads the context's L1 and the
     sandbox's path id per segment, covering per-spawn retargeting. *)
  let fl =
    match arena.fl with
    | Some fl -> fl
    | None ->
      let fl = Fast_loop.make_nt machine ctx sandbox coverage in
      arena.fl <- Some fl;
      fl
  in
  let fast_insns = ref 0 in
  let rec loop () =
    if ctx.Context.stats.Context.insns >= config.Pe_config.max_nt_path_length
    then T_max_length
    else if
      fast_ok
      && Watchpoints.is_empty machine.Machine.watch
      && (match machine.Machine.store_hook with
         | None -> true
         | Some _ -> false)
    then begin
      let budget =
        config.Pe_config.max_nt_path_length - ctx.Context.stats.Context.insns
      in
      let fstop = Fast_loop.run_nt fl ~deopt_branches ~budget in
      let retired = Fast_loop.nt_retired fl in
      (* The fast tier bumped the context's stats; the global index (report
         provenance) follows here, before any instrumented-tier report. *)
      machine.Machine.insn_index <- machine.Machine.insn_index + retired;
      fast_insns := !fast_insns + retired;
      match fstop with
      | Fast_loop.Nt_budget -> T_max_length
      | Fast_loop.Nt_special -> step_slow ()
      | Fast_loop.Nt_overflow -> T_cache_overflow
    end
    else step_slow ()
  and step_slow () =
    begin
      Coverage.record_pc_nt coverage ctx.Context.pc;
      match Cpu.step machine ctx with
      | Cpu.Ev_normal -> loop ()
      | Cpu.Ev_branch ->
        let br_pc = ctx.Context.br_pc in
        let taken = ctx.Context.br_taken in
        let followed =
          if config.Pe_config.follow_nontaken_in_nt then begin
            (* Ablation: force the cold non-taken edge instead. *)
            let taken_count, nontaken_count = Btb.counts machine.Machine.btb br_pc in
            let forced_count = if taken then nontaken_count else taken_count in
            if forced_count < config.Pe_config.nt_counter_threshold then begin
              ctx.Context.pc <-
                (if taken then br_pc + 1 else ctx.Context.br_target);
              not taken
            end
            else taken
          end
          else taken
        in
        Coverage.record_nt coverage br_pc followed;
        loop ()
      | Cpu.Ev_syscall sys ->
        if config.Pe_config.sandbox_syscalls && virtualise_syscall sys then
          loop ()
        else T_unsafe sys
      | Cpu.Ev_halt -> T_program_end
      (* [Cpu.exec] reports a sandboxed syscall as [Ev_syscall] *without*
         executing it, so [Ev_exit] cannot be produced here (see the
         sandboxed-syscall unit test). Treat a broken invariant as the
         unsafe event it would have been, not a crash of the simulator. *)
      | Cpu.Ev_exit _ -> T_unsafe Insn.Sys_exit
      | Cpu.Ev_fault fault -> T_crash fault
      | Cpu.Ev_overflow -> T_cache_overflow
    end
  in
  let termination = loop () in
  Context.undo_watches sandbox machine.Machine.watch;
  let recorder = machine.Machine.recorder in
  (* Time the squash (and the Terminate event below) at the path's own final
     cycle count — the recorder's base is the spawn instant. *)
  if Recorder.enabled recorder then
    Recorder.set_local recorder ctx.Context.stats.Context.cycles;
  let squashed_lines = Cache.gang_invalidate l1 ~owner:path_id in
  Telemetry.counter_incr arena.c_term.(term_index termination);
  Telemetry.counter_add arena.c_insns ctx.Context.stats.Context.insns;
  if !fast_insns > 0 then Telemetry.counter_add arena.c_fast_insns !fast_insns;
  Telemetry.counter_add arena.c_cycles ctx.Context.stats.Context.cycles;
  Telemetry.counter_add arena.c_squashed squashed_lines;
  if Recorder.enabled recorder then begin
    let cause : Recorder.cause =
      match termination with
      | T_max_length -> Recorder.Max_length
      | T_crash _ -> Recorder.Crash
      | T_unsafe _ -> Recorder.Unsafe_event
      | T_program_end -> Recorder.Program_end
      | T_cache_overflow -> Recorder.Cache_overflow
    in
    Recorder.emit_terminate recorder ~path_id ~cause
      ~len:ctx.Context.stats.Context.insns ~dirty_lines:squashed_lines
  end;
  {
    spawn_br_pc;
    forced_direction;
    entry_pc = entry;
    insns = ctx.Context.stats.Context.insns;
    cycles = ctx.Context.stats.Context.cycles;
    stores = ctx.Context.stats.Context.stores;
    branches = ctx.Context.stats.Context.branches;
    squashed_lines;
    termination;
  }

(* The selective fast tier: a stripped interpreter for the taken path.

   This is the engine's answer to detection bloat (coverage-preserving
   selective instrumentation, as in HeXcite): the taken path runs here with
   no detector hooks, no watchpoint probes, no store-hook dispatch, no
   recorder branches and no per-instruction sandbox match — just registers,
   memory, cache timing, coverage bits and the branch-direction log. The
   moment an instruction needs any of the heavy machinery (a syscall, a
   watch/unwatch, a detector check that would file a report, a fault, or a
   branch whose cold-edge counter makes it a spawn candidate) the loop stops
   *before* that instruction and the engine executes it on the fully
   instrumented tier ([Cpu.step]). Deoptimization, not re-execution: no
   instruction ever runs twice, so every observable — architectural state,
   stats, cache/BTB contents, coverage, reports, recorder stream, program
   output — is bit-for-bit what the instrumented tier alone would produce.

   Correctness of the stop-before discipline rests on every case below
   either (a) committing *exactly* the state transitions the instrumented
   tier commits for that instruction, or (b) committing *nothing* and
   stopping. The pre-checks make (b) possible without exceptions: memory
   operands are validated with [Memory.is_valid] (the exact complement of
   [Memory.check]'s raise condition) and divisors checked against zero
   before any side effect.

   Spawn-candidate detection probes the BTB side-effect-free
   ([Btb.probe_exercise]). Within a fast segment a branch's forced-edge
   counter is monotone non-decreasing (the engine only increments non-taken
   edge counters when it spawns, and spawns only happen on the instrumented
   tier), so probing possibly-stale counters is conservative: a branch may
   deoptimize spuriously (the instrumented tier then decides for real), but
   a spawn can never be missed. BTB misses always deoptimize for the same
   reason — the insertion and its accounting belong to the instrumented
   tier's [Btb.counts]/[Btb.exercise] pair; for exercised non-candidates
   [Btb.probe_exercise] commits that pair's exact observable effect in the
   same single associative search that tested the predicate.

   Both loops are tail-recursive over plain integer state (pc and the five
   stat deltas), so the per-instruction bookkeeping lives in registers; the
   context's stats are updated once, at segment exit.

   Performance structure: the handle is a flat mutable record and the
   interpreter loops are *top-level* recursive functions over it. Keeping
   the loops (and their helpers) at top level matters twice over, without
   flambda: a segment call allocates nothing (per-call parameters are
   record stores, exit state flushes straight into the context, every
   [stop]/[nt_stop] constructor is constant), and every call in the
   per-instruction path — the recursive step, the latency probe, the
   coverage/BTB/sandbox hooks — is a known direct call. The closure-tree
   variant of this file cost both ways: per-segment closure records
   (~300M minor words per sweep; NT-Paths deoptimize at every watch, check
   and virtualised syscall) and, worse, helpers captured from an enclosing
   closure compile to unknown-function applications (the caml_apply
   helpers) on every instruction.

   The engine guarantees before entry: the context is the primary (never
   sandboxed, predicate false unless a fix block is somehow live), no
   watchpoints are armed, no store hook is attached, and the configuration
   has no per-branch randomness or profiling (checked in [Engine.run]). *)

type stop =
  | Budget  (** segment budget exhausted (fuel or counter-reset boundary) *)
  | Special
      (** the instruction at [ctx.pc] needs the instrumented tier; nothing
          about it has been committed *)
  | Special_branch_taken
      (** a spawn-candidate conditional branch whose condition the fast tier
          evaluated as taken (cross-checked against the instrumented tier) *)
  | Special_branch_nontaken
      (** like [Special_branch_taken], condition evaluated as not taken *)

type t = {
  machine : Machine.t;
  ctx : Context.t;
  coverage : Coverage.t;
  bits : Bitbuf.t;
  dcode : Decode.t array;
  mem : Memory.t;
  words : int array;
  btb : Btb.t;
  regs : int array;
  l1 : Cache.t;
  code_len : int;
  (* per-segment parameters and results *)
  mutable spawning : bool;
  mutable threshold : int;
  mutable budget : int;
  mutable retired : int;
  mutable memo_hits : int;
      (* batched latency accounting (DESIGN.md §13): accesses the cache's
         MRU memo answers are L1 hits with zero stall cycles and no cache
         state change, counted here and flushed to the hit counter once per
         segment, mirroring how the stat deltas flush *)
}

let[@inline always] latency t ~write addr =
  if Cache.memo_probe t.l1 addr ~owner:Cache.committed_owner ~write then begin
    t.memo_hits <- t.memo_hits + 1;
    0
  end
  else
    Machine.access_latency t.machine t.l1 ~owner:Cache.committed_owner ~write
      ~speculative:false addr

(* Segment exit: final pc into the context, the stat deltas accumulated in
   the loop's registers onto its counters, the retired count into the
   handle — no exit record. *)
let[@inline always] finish t pc n cyc ld st br =
  t.ctx.Context.pc <- pc;
  let stats = t.ctx.Context.stats in
  stats.Context.insns <- stats.Context.insns + n;
  stats.Context.cycles <- stats.Context.cycles + cyc;
  stats.Context.loads <- stats.Context.loads + ld;
  stats.Context.stores <- stats.Context.stores + st;
  stats.Context.branches <- stats.Context.branches + br;
  t.retired <- n

(* [pc]..[br] are the live per-instruction state; every executed
   instruction mirrors the instrumented tier's [Coverage.record_pc_taken]
   (engine loop top) and the insns/cycles bump of [Cpu.step]. *)
let rec go t pc n cyc ld st br =
  if n >= t.budget then begin
    finish t pc n cyc ld st br;
    Budget
  end
  else if pc < 0 || pc >= t.code_len then special t pc n cyc ld st br
  else begin
    let regs = t.regs in
    match Array.unsafe_get t.dcode pc with
    | Decode.D_alu (op, rd, rs, rt) ->
      if rd <> 0 then
        Array.unsafe_set regs rd
          (Decode.eval_alu op (Array.unsafe_get regs rs)
             (Array.unsafe_get regs rt));
      Coverage.record_pc_taken t.coverage pc;
      go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_alui (op, rd, rs, imm) ->
      if rd <> 0 then
        Array.unsafe_set regs rd
          (Decode.eval_alu op (Array.unsafe_get regs rs) imm);
      Coverage.record_pc_taken t.coverage pc;
      go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_div (rd, rs, rt) ->
      let b = Array.unsafe_get regs rt in
      (* zero divisor: the instrumented tier faults (Div_by_zero) *)
      if b = 0 then special t pc n cyc ld st br
      else begin
        if rd <> 0 then
          Array.unsafe_set regs rd (Array.unsafe_get regs rs / b);
        Coverage.record_pc_taken t.coverage pc;
        go t (pc + 1) (n + 1) (cyc + 1) ld st br
      end
    | Decode.D_mod (rd, rs, rt) ->
      let b = Array.unsafe_get regs rt in
      if b = 0 then special t pc n cyc ld st br
      else begin
        if rd <> 0 then
          Array.unsafe_set regs rd (Array.unsafe_get regs rs mod b);
        Coverage.record_pc_taken t.coverage pc;
        go t (pc + 1) (n + 1) (cyc + 1) ld st br
      end
    | Decode.D_divi (rd, rs, imm) ->
      if imm = 0 then special t pc n cyc ld st br
      else begin
        if rd <> 0 then
          Array.unsafe_set regs rd (Array.unsafe_get regs rs / imm);
        Coverage.record_pc_taken t.coverage pc;
        go t (pc + 1) (n + 1) (cyc + 1) ld st br
      end
    | Decode.D_modi (rd, rs, imm) ->
      if imm = 0 then special t pc n cyc ld st br
      else begin
        if rd <> 0 then
          Array.unsafe_set regs rd (Array.unsafe_get regs rs mod imm);
        Coverage.record_pc_taken t.coverage pc;
        go t (pc + 1) (n + 1) (cyc + 1) ld st br
      end
    | Decode.D_cmp (c, rd, rs, rt) ->
      if rd <> 0 then
        Array.unsafe_set regs rd
          (if
             Insn.eval_cmp c (Array.unsafe_get regs rs)
               (Array.unsafe_get regs rt)
           then 1
           else 0);
      Coverage.record_pc_taken t.coverage pc;
      go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_cmpi (c, rd, rs, imm) ->
      if rd <> 0 then
        Array.unsafe_set regs rd
          (if Insn.eval_cmp c (Array.unsafe_get regs rs) imm then 1 else 0);
      Coverage.record_pc_taken t.coverage pc;
      go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_li (rd, imm) ->
      if rd <> 0 then Array.unsafe_set regs rd imm;
      Coverage.record_pc_taken t.coverage pc;
      go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_mov (rd, rs) ->
      if rd <> 0 then Array.unsafe_set regs rd (Array.unsafe_get regs rs);
      Coverage.record_pc_taken t.coverage pc;
      go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_load (rd, base, off) ->
      let addr = Array.unsafe_get regs base + off in
      if not (Memory.is_valid t.mem addr) then special t pc n cyc ld st br
      else begin
        let lat = latency t ~write:false addr in
        if rd <> 0 then
          Array.unsafe_set regs rd (Array.unsafe_get t.words addr);
        Coverage.record_pc_taken t.coverage pc;
        go t (pc + 1) (n + 1) (cyc + 1 + lat) (ld + 1) st br
      end
    | Decode.D_store (rs, base, off) ->
      let addr = Array.unsafe_get regs base + off in
      if not (Memory.is_valid t.mem addr) then special t pc n cyc ld st br
      else begin
        let lat = latency t ~write:true addr in
        Memory.write_valid t.mem addr (Array.unsafe_get regs rs);
        Coverage.record_pc_taken t.coverage pc;
        go t (pc + 1) (n + 1) (cyc + 1 + lat) ld (st + 1) br
      end
    | Decode.D_br (c, rs, rt, target) ->
      let taken =
        Insn.eval_cmp c (Array.unsafe_get regs rs) (Array.unsafe_get regs rt)
      in
      (* One associative search both tests the spawn predicate and — for
         rejected branches — commits the counts+exercise effect. A BTB
         miss is always a candidate: the insertion and its accounting
         belong to the instrumented tier. *)
      if t.spawning && Btb.probe_exercise t.btb pc ~taken ~threshold:t.threshold
      then begin
        finish t pc n cyc ld st br;
        if taken then Special_branch_taken else Special_branch_nontaken
      end
      else begin
        Bitbuf.push t.bits taken;
        Coverage.record_taken t.coverage pc taken;
        Coverage.record_pc_taken t.coverage pc;
        go t
          (if taken then target else pc + 1)
          (n + 1) (cyc + 1) ld st (br + 1)
      end
    | Decode.D_jmp target ->
      Coverage.record_pc_taken t.coverage pc;
      go t target (n + 1) (cyc + 1) ld st br
    | Decode.D_call target ->
      let sp = Array.unsafe_get regs Reg.sp - 1 in
      if not (Memory.is_valid t.mem sp) then special t pc n cyc ld st br
      else begin
        Array.unsafe_set regs Reg.sp sp;
        let lat = latency t ~write:true sp in
        Memory.write_valid t.mem sp (pc + 1);
        Coverage.record_pc_taken t.coverage pc;
        go t target (n + 1) (cyc + 1 + lat) ld (st + 1) br
      end
    | Decode.D_ret ->
      let sp = Array.unsafe_get regs Reg.sp in
      if not (Memory.is_valid t.mem sp) then special t pc n cyc ld st br
      else begin
        let lat = latency t ~write:false sp in
        let ra = Array.unsafe_get t.words sp in
        Array.unsafe_set regs Reg.sp (sp + 1);
        Coverage.record_pc_taken t.coverage pc;
        go t ra (n + 1) (cyc + 1 + lat) (ld + 1) st br
      end
    | Decode.D_push rs ->
      let sp = Array.unsafe_get regs Reg.sp - 1 in
      if not (Memory.is_valid t.mem sp) then special t pc n cyc ld st br
      else begin
        Array.unsafe_set regs Reg.sp sp;
        let lat = latency t ~write:true sp in
        Memory.write_valid t.mem sp (Array.unsafe_get regs rs);
        Coverage.record_pc_taken t.coverage pc;
        go t (pc + 1) (n + 1) (cyc + 1 + lat) ld (st + 1) br
      end
    | Decode.D_pop rd ->
      let sp = Array.unsafe_get regs Reg.sp in
      if not (Memory.is_valid t.mem sp) then special t pc n cyc ld st br
      else begin
        let lat = latency t ~write:false sp in
        let v = Array.unsafe_get t.words sp in
        Array.unsafe_set regs Reg.sp (sp + 1);
        if rd <> 0 then Array.unsafe_set regs rd v;
        Coverage.record_pc_taken t.coverage pc;
        go t (pc + 1) (n + 1) (cyc + 1 + lat) (ld + 1) st br
      end
    | Decode.D_checkz (rs, _site) ->
      (* Passing check: no report, plain fallthrough. A zero value files a
         report (detector machinery) — instrumented tier's job. *)
      if Array.unsafe_get regs rs = 0 then special t pc n cyc ld st br
      else begin
        Coverage.record_pc_taken t.coverage pc;
        go t (pc + 1) (n + 1) (cyc + 1) ld st br
      end
    | Decode.D_pred _ ->
      (* The primary context's predicate is false outside NT-Path fix
         blocks, making this a fallthrough; a live predicate means a fix
         block is executing and the instrumented tier must run it. *)
      if t.ctx.Context.pred then special t pc n cyc ld st br
      else begin
        Coverage.record_pc_taken t.coverage pc;
        go t (pc + 1) (n + 1) (cyc + 1) ld st br
      end
    | Decode.D_clearpred ->
      t.ctx.Context.pred <- false;
      Coverage.record_pc_taken t.coverage pc;
      go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_nop ->
      Coverage.record_pc_taken t.coverage pc;
      go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_syscall _ | Decode.D_watch _ | Decode.D_unwatch _
    | Decode.D_halt ->
      special t pc n cyc ld st br
  end

and special t pc n cyc ld st br =
  finish t pc n cyc ld st br;
  Special

let make machine ctx coverage ~bits =
  let dcode = machine.Machine.dcode in
  {
    machine;
    ctx;
    coverage;
    bits;
    dcode;
    mem = machine.Machine.mem;
    words = machine.Machine.mem.Memory.words;
    btb = machine.Machine.btb;
    regs = ctx.Context.regs;
    l1 = ctx.Context.l1;
    code_len = Array.length dcode;
    spawning = false;
    threshold = 0;
    budget = 0;
    retired = 0;
    memo_hits = 0;
  }

let run t ~spawning ~threshold ~budget =
  t.spawning <- spawning;
  t.threshold <- threshold;
  t.budget <- budget;
  t.memo_hits <- 0;
  let stop = go t t.ctx.Context.pc 0 0 0 0 0 in
  if t.memo_hits > 0 then Cache.add_hits t.l1 t.memo_hits;
  stop

let retired t = t.retired

(* The NT-Path variant of the fast tier: same stop-before-special discipline,
   but memory traffic goes through the path's sandbox (speculative cache
   ownership, buffered writes), per-instruction coverage is the NT-Path kind,
   inner branches follow the actual condition with no BTB traffic, and the
   budget is [MaxNTPathLength]. One genuinely new case: a sandboxed store can
   overflow the path's L1 line budget, which is only discoverable *by doing
   the write* — the instrumented tier retires that instruction (stats and
   latency charged, pc not advanced) and raises; [Nt_overflow] reproduces
   exactly that committed state and lets {!Nt_path.run} terminate the path.

   [Nt_path.run] guarantees before entry: the context is sandboxed in
   [sandbox]; no watchpoints armed; no store hook; the configuration neither
   forces cold edges inside NT-Paths ([follow_nontaken_in_nt]) nor is
   excluded by the selective switches. *)

type nt_stop =
  | Nt_budget  (** [MaxNTPathLength] reached *)
  | Nt_special
      (** the instruction at [ctx.pc] needs the instrumented tier; nothing
          about it has been committed *)
  | Nt_overflow
      (** a sandboxed store overflowed the path's L1 budget; the store
          instruction has retired (stats, latency) with [ctx.pc] left on it,
          exactly as the instrumented tier leaves it *)

type nt = {
  n_machine : Machine.t;
  n_ctx : Context.t;
  n_sandbox : Context.sandbox;
  n_coverage : Coverage.t;
  n_dcode : Decode.t array;
  n_mem : Memory.t;
  n_regs : int array;
  n_code_len : int;
  (* The arena's L1 is retargeted per spawn (CMP spawns land on idle cores'
     L1s) and the 8-bit path id is fresh per spawn, so both are refreshed
     from the context/sandbox at every segment ([run_nt]). *)
  mutable n_l1 : Cache.t;
  mutable n_path_id : int;
  mutable n_deopt : bool;
  mutable n_budget : int;
  mutable n_retired : int;
  mutable n_memo_hits : int;
}

(* Same batched memo accounting as the taken-path loop; the owner is the
   path's id, so a memoized *write* only short-circuits when the line
   already carries this path's tag (no retag, no journal due). *)
let[@inline always] nt_latency t ~write addr =
  if Cache.memo_probe t.n_l1 addr ~owner:t.n_path_id ~write then begin
    t.n_memo_hits <- t.n_memo_hits + 1;
    0
  end
  else
    Machine.access_latency t.n_machine t.n_l1 ~owner:t.n_path_id ~write
      ~speculative:true addr

let[@inline always] nt_finish t pc n cyc ld st br =
  t.n_ctx.Context.pc <- pc;
  let stats = t.n_ctx.Context.stats in
  stats.Context.insns <- stats.Context.insns + n;
  stats.Context.cycles <- stats.Context.cycles + cyc;
  stats.Context.loads <- stats.Context.loads + ld;
  stats.Context.stores <- stats.Context.stores + st;
  stats.Context.branches <- stats.Context.branches + br;
  t.n_retired <- n

let rec nt_go t pc n cyc ld st br =
  if n >= t.n_budget then begin
    nt_finish t pc n cyc ld st br;
    Nt_budget
  end
  else if pc < 0 || pc >= t.n_code_len then nt_special t pc n cyc ld st br
  else begin
    let regs = t.n_regs in
    match Array.unsafe_get t.n_dcode pc with
    | Decode.D_alu (op, rd, rs, rt) ->
      if rd <> 0 then
        Array.unsafe_set regs rd
          (Decode.eval_alu op (Array.unsafe_get regs rs)
             (Array.unsafe_get regs rt));
      Coverage.record_pc_nt t.n_coverage pc;
      nt_go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_alui (op, rd, rs, imm) ->
      if rd <> 0 then
        Array.unsafe_set regs rd
          (Decode.eval_alu op (Array.unsafe_get regs rs) imm);
      Coverage.record_pc_nt t.n_coverage pc;
      nt_go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_div (rd, rs, rt) ->
      let b = Array.unsafe_get regs rt in
      if b = 0 then nt_special t pc n cyc ld st br
      else begin
        if rd <> 0 then
          Array.unsafe_set regs rd (Array.unsafe_get regs rs / b);
        Coverage.record_pc_nt t.n_coverage pc;
        nt_go t (pc + 1) (n + 1) (cyc + 1) ld st br
      end
    | Decode.D_mod (rd, rs, rt) ->
      let b = Array.unsafe_get regs rt in
      if b = 0 then nt_special t pc n cyc ld st br
      else begin
        if rd <> 0 then
          Array.unsafe_set regs rd (Array.unsafe_get regs rs mod b);
        Coverage.record_pc_nt t.n_coverage pc;
        nt_go t (pc + 1) (n + 1) (cyc + 1) ld st br
      end
    | Decode.D_divi (rd, rs, imm) ->
      if imm = 0 then nt_special t pc n cyc ld st br
      else begin
        if rd <> 0 then
          Array.unsafe_set regs rd (Array.unsafe_get regs rs / imm);
        Coverage.record_pc_nt t.n_coverage pc;
        nt_go t (pc + 1) (n + 1) (cyc + 1) ld st br
      end
    | Decode.D_modi (rd, rs, imm) ->
      if imm = 0 then nt_special t pc n cyc ld st br
      else begin
        if rd <> 0 then
          Array.unsafe_set regs rd (Array.unsafe_get regs rs mod imm);
        Coverage.record_pc_nt t.n_coverage pc;
        nt_go t (pc + 1) (n + 1) (cyc + 1) ld st br
      end
    | Decode.D_cmp (c, rd, rs, rt) ->
      if rd <> 0 then
        Array.unsafe_set regs rd
          (if
             Insn.eval_cmp c (Array.unsafe_get regs rs)
               (Array.unsafe_get regs rt)
           then 1
           else 0);
      Coverage.record_pc_nt t.n_coverage pc;
      nt_go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_cmpi (c, rd, rs, imm) ->
      if rd <> 0 then
        Array.unsafe_set regs rd
          (if Insn.eval_cmp c (Array.unsafe_get regs rs) imm then 1 else 0);
      Coverage.record_pc_nt t.n_coverage pc;
      nt_go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_li (rd, imm) ->
      if rd <> 0 then Array.unsafe_set regs rd imm;
      Coverage.record_pc_nt t.n_coverage pc;
      nt_go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_mov (rd, rs) ->
      if rd <> 0 then Array.unsafe_set regs rd (Array.unsafe_get regs rs);
      Coverage.record_pc_nt t.n_coverage pc;
      nt_go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_load (rd, base, off) ->
      let addr = Array.unsafe_get regs base + off in
      if not (Memory.is_valid t.n_mem addr) then nt_special t pc n cyc ld st br
      else begin
        let lat = nt_latency t ~write:false addr in
        let v = Context.sandbox_read t.n_sandbox t.n_mem addr in
        if rd <> 0 then Array.unsafe_set regs rd v;
        Coverage.record_pc_nt t.n_coverage pc;
        nt_go t (pc + 1) (n + 1) (cyc + 1 + lat) (ld + 1) st br
      end
    | Decode.D_store (rs, base, off) ->
      let addr = Array.unsafe_get regs base + off in
      if not (Memory.is_valid t.n_mem addr) then nt_special t pc n cyc ld st br
      else begin
        let lat = nt_latency t ~write:true addr in
        Coverage.record_pc_nt t.n_coverage pc;
        if Context.sandbox_write t.n_sandbox t.n_mem addr (Array.unsafe_get regs rs)
        then nt_go t (pc + 1) (n + 1) (cyc + 1 + lat) ld (st + 1) br
        else begin
          (* overflow: the store retires in place, pc not advanced *)
          nt_finish t pc (n + 1) (cyc + 1 + lat) ld (st + 1) br;
          Nt_overflow
        end
      end
    | Decode.D_br (c, rs, rt, target) ->
      (* [n_deopt] ([follow_nontaken_in_nt] ablation): edge selection
         consults the BTB per inner branch — instrumented tier's job; stop
         before the branch commits anything. *)
      if t.n_deopt then nt_special t pc n cyc ld st br
      else begin
        let taken =
          Insn.eval_cmp c (Array.unsafe_get regs rs)
            (Array.unsafe_get regs rt)
        in
        Coverage.record_nt t.n_coverage pc taken;
        Coverage.record_pc_nt t.n_coverage pc;
        nt_go t
          (if taken then target else pc + 1)
          (n + 1) (cyc + 1) ld st (br + 1)
      end
    | Decode.D_jmp target ->
      Coverage.record_pc_nt t.n_coverage pc;
      nt_go t target (n + 1) (cyc + 1) ld st br
    | Decode.D_call target ->
      let sp = Array.unsafe_get regs Reg.sp - 1 in
      if not (Memory.is_valid t.n_mem sp) then nt_special t pc n cyc ld st br
      else begin
        Array.unsafe_set regs Reg.sp sp;
        let lat = nt_latency t ~write:true sp in
        Coverage.record_pc_nt t.n_coverage pc;
        if Context.sandbox_write t.n_sandbox t.n_mem sp (pc + 1) then
          nt_go t target (n + 1) (cyc + 1 + lat) ld (st + 1) br
        else begin
          nt_finish t pc (n + 1) (cyc + 1 + lat) ld (st + 1) br;
          Nt_overflow
        end
      end
    | Decode.D_ret ->
      let sp = Array.unsafe_get regs Reg.sp in
      if not (Memory.is_valid t.n_mem sp) then nt_special t pc n cyc ld st br
      else begin
        let lat = nt_latency t ~write:false sp in
        let ra = Context.sandbox_read t.n_sandbox t.n_mem sp in
        Array.unsafe_set regs Reg.sp (sp + 1);
        Coverage.record_pc_nt t.n_coverage pc;
        nt_go t ra (n + 1) (cyc + 1 + lat) (ld + 1) st br
      end
    | Decode.D_push rs ->
      let sp = Array.unsafe_get regs Reg.sp - 1 in
      if not (Memory.is_valid t.n_mem sp) then nt_special t pc n cyc ld st br
      else begin
        Array.unsafe_set regs Reg.sp sp;
        let lat = nt_latency t ~write:true sp in
        Coverage.record_pc_nt t.n_coverage pc;
        if Context.sandbox_write t.n_sandbox t.n_mem sp (Array.unsafe_get regs rs)
        then nt_go t (pc + 1) (n + 1) (cyc + 1 + lat) ld (st + 1) br
        else begin
          nt_finish t pc (n + 1) (cyc + 1 + lat) ld (st + 1) br;
          Nt_overflow
        end
      end
    | Decode.D_pop rd ->
      let sp = Array.unsafe_get regs Reg.sp in
      if not (Memory.is_valid t.n_mem sp) then nt_special t pc n cyc ld st br
      else begin
        let lat = nt_latency t ~write:false sp in
        let v = Context.sandbox_read t.n_sandbox t.n_mem sp in
        Array.unsafe_set regs Reg.sp (sp + 1);
        if rd <> 0 then Array.unsafe_set regs rd v;
        Coverage.record_pc_nt t.n_coverage pc;
        nt_go t (pc + 1) (n + 1) (cyc + 1 + lat) (ld + 1) st br
      end
    | Decode.D_checkz (rs, _site) ->
      if Array.unsafe_get regs rs = 0 then nt_special t pc n cyc ld st br
      else begin
        Coverage.record_pc_nt t.n_coverage pc;
        nt_go t (pc + 1) (n + 1) (cyc + 1) ld st br
      end
    | Decode.D_pred _ ->
      (* Consistency-fix blocks (predicate live at path entry) run on the
         instrumented tier; once [Clearpred] retires this is fallthrough. *)
      if t.n_ctx.Context.pred then nt_special t pc n cyc ld st br
      else begin
        Coverage.record_pc_nt t.n_coverage pc;
        nt_go t (pc + 1) (n + 1) (cyc + 1) ld st br
      end
    | Decode.D_clearpred ->
      t.n_ctx.Context.pred <- false;
      Coverage.record_pc_nt t.n_coverage pc;
      nt_go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_nop ->
      Coverage.record_pc_nt t.n_coverage pc;
      nt_go t (pc + 1) (n + 1) (cyc + 1) ld st br
    | Decode.D_syscall _ | Decode.D_watch _ | Decode.D_unwatch _
    | Decode.D_halt ->
      nt_special t pc n cyc ld st br
  end

and nt_special t pc n cyc ld st br =
  nt_finish t pc n cyc ld st br;
  Nt_special

let make_nt machine ctx sandbox coverage =
  let dcode = machine.Machine.dcode in
  {
    n_machine = machine;
    n_ctx = ctx;
    n_sandbox = sandbox;
    n_coverage = coverage;
    n_dcode = dcode;
    n_mem = machine.Machine.mem;
    n_regs = ctx.Context.regs;
    n_code_len = Array.length dcode;
    n_l1 = ctx.Context.l1;
    n_path_id = Cache.committed_owner;
    n_deopt = false;
    n_budget = 0;
    n_retired = 0;
    n_memo_hits = 0;
  }

let run_nt t ~deopt_branches ~budget =
  t.n_l1 <- t.n_ctx.Context.l1;
  t.n_path_id <- Context.sandbox_path_id t.n_sandbox;
  t.n_deopt <- deopt_branches;
  t.n_budget <- budget;
  t.n_memo_hits <- 0;
  let stop = nt_go t t.n_ctx.Context.pc 0 0 0 0 0 in
  if t.n_memo_hits > 0 then Cache.add_hits t.n_l1 t.n_memo_hits;
  stop

let nt_retired t = t.n_retired

(* The selective fast tier: a stripped interpreter for the taken path.

   This is the engine's answer to detection bloat (coverage-preserving
   selective instrumentation, as in HeXcite): the taken path runs here with
   no detector hooks, no watchpoint probes, no store-hook dispatch, no
   recorder branches and no per-instruction sandbox match — just registers,
   memory, cache timing, coverage bits and the branch-direction log. The
   moment an instruction needs any of the heavy machinery (a syscall, a
   watch/unwatch, a detector check that would file a report, a fault, or a
   branch whose cold-edge counter makes it a spawn candidate) the loop stops
   *before* that instruction and the engine executes it on the fully
   instrumented tier ([Cpu.step]). Deoptimization, not re-execution: no
   instruction ever runs twice, so every observable — architectural state,
   stats, cache/BTB contents, coverage, reports, recorder stream, program
   output — is bit-for-bit what the instrumented tier alone would produce.

   Correctness of the stop-before discipline rests on every case below
   either (a) committing *exactly* the state transitions the instrumented
   tier commits for that instruction, or (b) committing *nothing* and
   stopping. The pre-checks make (b) possible without exceptions: memory
   operands are validated with [Memory.is_valid] (the exact complement of
   [Memory.check]'s raise condition) and divisors checked against zero
   before any side effect.

   Spawn-candidate detection probes the BTB side-effect-free
   ([Btb.probe_exercise]). Within a fast segment a branch's forced-edge
   counter is monotone non-decreasing (the engine only increments non-taken
   edge counters when it spawns, and spawns only happen on the instrumented
   tier), so probing possibly-stale counters is conservative: a branch may
   deoptimize spuriously (the instrumented tier then decides for real), but
   a spawn can never be missed. BTB misses always deoptimize for the same
   reason — the insertion and its accounting belong to the instrumented
   tier's [Btb.counts]/[Btb.exercise] pair; for exercised non-candidates
   [Btb.probe_exercise] commits that pair's exact observable effect in the
   same single associative search that tested the predicate.

   Both loops are tail-recursive over plain integer state (pc and the five
   stat deltas), so the per-instruction bookkeeping lives in registers; the
   context's stats are updated once, at segment exit.

   The engine guarantees before entry: the context is the primary (never
   sandboxed, predicate false unless a fix block is somehow live), no
   watchpoints are armed, no store hook is attached, and the configuration
   has no per-branch randomness or profiling (checked in [Engine.run]). *)

type stop =
  | Budget  (** segment budget exhausted (fuel or counter-reset boundary) *)
  | Special
      (** the instruction at [ctx.pc] needs the instrumented tier; nothing
          about it has been committed *)
  | Special_branch of bool
      (** like [Special] for a spawn-candidate conditional branch; carries
          the fast tier's evaluation of the branch condition so the engine
          can assert the two tiers agree *)

(* Segment exit state: the final pc and the stat deltas accumulated in the
   loop's registers, boxed once per segment. *)
type exit_state = {
  x_pc : int;
  x_retired : int;
  x_cycles : int;
  x_loads : int;
  x_stores : int;
  x_branches : int;
}

let[@inline always] flush ctx st =
  ctx.Context.pc <- st.x_pc;
  let stats = ctx.Context.stats in
  stats.Context.insns <- stats.Context.insns + st.x_retired;
  stats.Context.cycles <- stats.Context.cycles + st.x_cycles;
  stats.Context.loads <- stats.Context.loads + st.x_loads;
  stats.Context.stores <- stats.Context.stores + st.x_stores;
  stats.Context.branches <- stats.Context.branches + st.x_branches

let run machine ctx coverage ~spawning ~threshold ~budget ~bits =
  let dcode = machine.Machine.dcode in
  let mem = machine.Machine.mem in
  let words = mem.Memory.words in
  let btb = machine.Machine.btb in
  let regs = ctx.Context.regs in
  let l1 = ctx.Context.l1 in
  let code_len = Array.length dcode in
  let[@inline always] latency ~write addr =
    Machine.access_latency machine l1 ~owner:Cache.committed_owner ~write
      ~speculative:false addr
  in
  (* [pc]..[br] are the live per-instruction state; every executed
     instruction mirrors the instrumented tier's [Coverage.record_pc_taken]
     (engine loop top) and the insns/cycles bump of [Cpu.step]. *)
  let rec go pc n cyc ld st br =
    if n >= budget then
      ({ x_pc = pc; x_retired = n; x_cycles = cyc; x_loads = ld;
         x_stores = st; x_branches = br }, Budget)
    else if pc < 0 || pc >= code_len then special pc n cyc ld st br
    else begin
      match Array.unsafe_get dcode pc with
      | Decode.D_alu (op, rd, rs, rt) ->
        if rd <> 0 then
          Array.unsafe_set regs rd
            (Decode.eval_alu op (Array.unsafe_get regs rs)
               (Array.unsafe_get regs rt));
        Coverage.record_pc_taken coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_alui (op, rd, rs, imm) ->
        if rd <> 0 then
          Array.unsafe_set regs rd
            (Decode.eval_alu op (Array.unsafe_get regs rs) imm);
        Coverage.record_pc_taken coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_div (rd, rs, rt) ->
        let b = Array.unsafe_get regs rt in
        (* zero divisor: the instrumented tier faults (Div_by_zero) *)
        if b = 0 then special pc n cyc ld st br
        else begin
          if rd <> 0 then
            Array.unsafe_set regs rd (Array.unsafe_get regs rs / b);
          Coverage.record_pc_taken coverage pc;
          go (pc + 1) (n + 1) (cyc + 1) ld st br
        end
      | Decode.D_mod (rd, rs, rt) ->
        let b = Array.unsafe_get regs rt in
        if b = 0 then special pc n cyc ld st br
        else begin
          if rd <> 0 then
            Array.unsafe_set regs rd (Array.unsafe_get regs rs mod b);
          Coverage.record_pc_taken coverage pc;
          go (pc + 1) (n + 1) (cyc + 1) ld st br
        end
      | Decode.D_divi (rd, rs, imm) ->
        if imm = 0 then special pc n cyc ld st br
        else begin
          if rd <> 0 then
            Array.unsafe_set regs rd (Array.unsafe_get regs rs / imm);
          Coverage.record_pc_taken coverage pc;
          go (pc + 1) (n + 1) (cyc + 1) ld st br
        end
      | Decode.D_modi (rd, rs, imm) ->
        if imm = 0 then special pc n cyc ld st br
        else begin
          if rd <> 0 then
            Array.unsafe_set regs rd (Array.unsafe_get regs rs mod imm);
          Coverage.record_pc_taken coverage pc;
          go (pc + 1) (n + 1) (cyc + 1) ld st br
        end
      | Decode.D_cmp (c, rd, rs, rt) ->
        if rd <> 0 then
          Array.unsafe_set regs rd
            (if
               Insn.eval_cmp c (Array.unsafe_get regs rs)
                 (Array.unsafe_get regs rt)
             then 1
             else 0);
        Coverage.record_pc_taken coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_cmpi (c, rd, rs, imm) ->
        if rd <> 0 then
          Array.unsafe_set regs rd
            (if Insn.eval_cmp c (Array.unsafe_get regs rs) imm then 1 else 0);
        Coverage.record_pc_taken coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_li (rd, imm) ->
        if rd <> 0 then Array.unsafe_set regs rd imm;
        Coverage.record_pc_taken coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_mov (rd, rs) ->
        if rd <> 0 then Array.unsafe_set regs rd (Array.unsafe_get regs rs);
        Coverage.record_pc_taken coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_load (rd, base, off) ->
        let addr = Array.unsafe_get regs base + off in
        if not (Memory.is_valid mem addr) then special pc n cyc ld st br
        else begin
          let lat = latency ~write:false addr in
          if rd <> 0 then
            Array.unsafe_set regs rd (Array.unsafe_get words addr);
          Coverage.record_pc_taken coverage pc;
          go (pc + 1) (n + 1) (cyc + 1 + lat) (ld + 1) st br
        end
      | Decode.D_store (rs, base, off) ->
        let addr = Array.unsafe_get regs base + off in
        if not (Memory.is_valid mem addr) then special pc n cyc ld st br
        else begin
          let lat = latency ~write:true addr in
          Memory.write_valid mem addr (Array.unsafe_get regs rs);
          Coverage.record_pc_taken coverage pc;
          go (pc + 1) (n + 1) (cyc + 1 + lat) ld (st + 1) br
        end
      | Decode.D_br (c, rs, rt, target) ->
        let taken =
          Insn.eval_cmp c (Array.unsafe_get regs rs) (Array.unsafe_get regs rt)
        in
        (* One associative search both tests the spawn predicate and — for
           rejected branches — commits the counts+exercise effect. A BTB
           miss is always a candidate: the insertion and its accounting
           belong to the instrumented tier. *)
        if spawning && Btb.probe_exercise btb pc ~taken ~threshold then
          ( { x_pc = pc; x_retired = n; x_cycles = cyc; x_loads = ld;
              x_stores = st; x_branches = br },
            Special_branch taken )
        else begin
          Bitbuf.push bits taken;
          Coverage.record_taken coverage pc taken;
          Coverage.record_pc_taken coverage pc;
          go (if taken then target else pc + 1)
            (n + 1) (cyc + 1) ld st (br + 1)
        end
      | Decode.D_jmp target ->
        Coverage.record_pc_taken coverage pc;
        go target (n + 1) (cyc + 1) ld st br
      | Decode.D_call target ->
        let sp = Array.unsafe_get regs Reg.sp - 1 in
        if not (Memory.is_valid mem sp) then special pc n cyc ld st br
        else begin
          Array.unsafe_set regs Reg.sp sp;
          let lat = latency ~write:true sp in
          Memory.write_valid mem sp (pc + 1);
          Coverage.record_pc_taken coverage pc;
          go target (n + 1) (cyc + 1 + lat) ld (st + 1) br
        end
      | Decode.D_ret ->
        let sp = Array.unsafe_get regs Reg.sp in
        if not (Memory.is_valid mem sp) then special pc n cyc ld st br
        else begin
          let lat = latency ~write:false sp in
          let ra = Array.unsafe_get words sp in
          Array.unsafe_set regs Reg.sp (sp + 1);
          Coverage.record_pc_taken coverage pc;
          go ra (n + 1) (cyc + 1 + lat) (ld + 1) st br
        end
      | Decode.D_push rs ->
        let sp = Array.unsafe_get regs Reg.sp - 1 in
        if not (Memory.is_valid mem sp) then special pc n cyc ld st br
        else begin
          Array.unsafe_set regs Reg.sp sp;
          let lat = latency ~write:true sp in
          Memory.write_valid mem sp (Array.unsafe_get regs rs);
          Coverage.record_pc_taken coverage pc;
          go (pc + 1) (n + 1) (cyc + 1 + lat) ld (st + 1) br
        end
      | Decode.D_pop rd ->
        let sp = Array.unsafe_get regs Reg.sp in
        if not (Memory.is_valid mem sp) then special pc n cyc ld st br
        else begin
          let lat = latency ~write:false sp in
          let v = Array.unsafe_get words sp in
          Array.unsafe_set regs Reg.sp (sp + 1);
          if rd <> 0 then Array.unsafe_set regs rd v;
          Coverage.record_pc_taken coverage pc;
          go (pc + 1) (n + 1) (cyc + 1 + lat) (ld + 1) st br
        end
      | Decode.D_checkz (rs, _site) ->
        (* Passing check: no report, plain fallthrough. A zero value files a
           report (detector machinery) — instrumented tier's job. *)
        if Array.unsafe_get regs rs = 0 then special pc n cyc ld st br
        else begin
          Coverage.record_pc_taken coverage pc;
          go (pc + 1) (n + 1) (cyc + 1) ld st br
        end
      | Decode.D_pred _ ->
        (* The primary context's predicate is false outside NT-Path fix
           blocks, making this a fallthrough; a live predicate means a fix
           block is executing and the instrumented tier must run it. *)
        if ctx.Context.pred then special pc n cyc ld st br
        else begin
          Coverage.record_pc_taken coverage pc;
          go (pc + 1) (n + 1) (cyc + 1) ld st br
        end
      | Decode.D_clearpred ->
        ctx.Context.pred <- false;
        Coverage.record_pc_taken coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_nop ->
        Coverage.record_pc_taken coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_syscall _ | Decode.D_watch _ | Decode.D_unwatch _
      | Decode.D_halt ->
        special pc n cyc ld st br
    end
  and special pc n cyc ld st br =
    ( { x_pc = pc; x_retired = n; x_cycles = cyc; x_loads = ld; x_stores = st;
        x_branches = br },
      Special )
  in
  let st, stop = go ctx.Context.pc 0 0 0 0 0 in
  flush ctx st;
  (st.x_retired, stop)

(* The NT-Path variant of the fast tier: same stop-before-special discipline,
   but memory traffic goes through the path's sandbox (speculative cache
   ownership, buffered writes), per-instruction coverage is the NT-Path kind,
   inner branches follow the actual condition with no BTB traffic, and the
   budget is [MaxNTPathLength]. One genuinely new case: a sandboxed store can
   overflow the path's L1 line budget, which is only discoverable *by doing
   the write* — the instrumented tier retires that instruction (stats and
   latency charged, pc not advanced) and raises; [Nt_overflow] reproduces
   exactly that committed state and lets {!Nt_path.run} terminate the path.

   [Nt_path.run] guarantees before entry: the context is sandboxed in
   [sandbox]; no watchpoints armed; no store hook; the configuration neither
   forces cold edges inside NT-Paths ([follow_nontaken_in_nt]) nor is
   excluded by the selective switches. *)

type nt_stop =
  | Nt_budget  (** [MaxNTPathLength] reached *)
  | Nt_special
      (** the instruction at [ctx.pc] needs the instrumented tier; nothing
          about it has been committed *)
  | Nt_overflow
      (** a sandboxed store overflowed the path's L1 budget; the store
          instruction has retired (stats, latency) with [ctx.pc] left on it,
          exactly as the instrumented tier leaves it *)

let run_nt machine ctx sandbox coverage ~deopt_branches ~budget =
  let dcode = machine.Machine.dcode in
  let mem = machine.Machine.mem in
  let path_id = Context.sandbox_path_id sandbox in
  let regs = ctx.Context.regs in
  let l1 = ctx.Context.l1 in
  let code_len = Array.length dcode in
  let[@inline always] latency ~write addr =
    Machine.access_latency machine l1 ~owner:path_id ~write ~speculative:true
      addr
  in
  let rec go pc n cyc ld st br =
    if n >= budget then
      ({ x_pc = pc; x_retired = n; x_cycles = cyc; x_loads = ld;
         x_stores = st; x_branches = br }, Nt_budget)
    else if pc < 0 || pc >= code_len then special pc n cyc ld st br
    else begin
      match Array.unsafe_get dcode pc with
      | Decode.D_alu (op, rd, rs, rt) ->
        if rd <> 0 then
          Array.unsafe_set regs rd
            (Decode.eval_alu op (Array.unsafe_get regs rs)
               (Array.unsafe_get regs rt));
        Coverage.record_pc_nt coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_alui (op, rd, rs, imm) ->
        if rd <> 0 then
          Array.unsafe_set regs rd
            (Decode.eval_alu op (Array.unsafe_get regs rs) imm);
        Coverage.record_pc_nt coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_div (rd, rs, rt) ->
        let b = Array.unsafe_get regs rt in
        if b = 0 then special pc n cyc ld st br
        else begin
          if rd <> 0 then
            Array.unsafe_set regs rd (Array.unsafe_get regs rs / b);
          Coverage.record_pc_nt coverage pc;
          go (pc + 1) (n + 1) (cyc + 1) ld st br
        end
      | Decode.D_mod (rd, rs, rt) ->
        let b = Array.unsafe_get regs rt in
        if b = 0 then special pc n cyc ld st br
        else begin
          if rd <> 0 then
            Array.unsafe_set regs rd (Array.unsafe_get regs rs mod b);
          Coverage.record_pc_nt coverage pc;
          go (pc + 1) (n + 1) (cyc + 1) ld st br
        end
      | Decode.D_divi (rd, rs, imm) ->
        if imm = 0 then special pc n cyc ld st br
        else begin
          if rd <> 0 then
            Array.unsafe_set regs rd (Array.unsafe_get regs rs / imm);
          Coverage.record_pc_nt coverage pc;
          go (pc + 1) (n + 1) (cyc + 1) ld st br
        end
      | Decode.D_modi (rd, rs, imm) ->
        if imm = 0 then special pc n cyc ld st br
        else begin
          if rd <> 0 then
            Array.unsafe_set regs rd (Array.unsafe_get regs rs mod imm);
          Coverage.record_pc_nt coverage pc;
          go (pc + 1) (n + 1) (cyc + 1) ld st br
        end
      | Decode.D_cmp (c, rd, rs, rt) ->
        if rd <> 0 then
          Array.unsafe_set regs rd
            (if
               Insn.eval_cmp c (Array.unsafe_get regs rs)
                 (Array.unsafe_get regs rt)
             then 1
             else 0);
        Coverage.record_pc_nt coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_cmpi (c, rd, rs, imm) ->
        if rd <> 0 then
          Array.unsafe_set regs rd
            (if Insn.eval_cmp c (Array.unsafe_get regs rs) imm then 1 else 0);
        Coverage.record_pc_nt coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_li (rd, imm) ->
        if rd <> 0 then Array.unsafe_set regs rd imm;
        Coverage.record_pc_nt coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_mov (rd, rs) ->
        if rd <> 0 then Array.unsafe_set regs rd (Array.unsafe_get regs rs);
        Coverage.record_pc_nt coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_load (rd, base, off) ->
        let addr = Array.unsafe_get regs base + off in
        if not (Memory.is_valid mem addr) then special pc n cyc ld st br
        else begin
          let lat = latency ~write:false addr in
          let v = Context.sandbox_read sandbox mem addr in
          if rd <> 0 then Array.unsafe_set regs rd v;
          Coverage.record_pc_nt coverage pc;
          go (pc + 1) (n + 1) (cyc + 1 + lat) (ld + 1) st br
        end
      | Decode.D_store (rs, base, off) ->
        let addr = Array.unsafe_get regs base + off in
        if not (Memory.is_valid mem addr) then special pc n cyc ld st br
        else begin
          let lat = latency ~write:true addr in
          Coverage.record_pc_nt coverage pc;
          if Context.sandbox_write sandbox mem addr (Array.unsafe_get regs rs)
          then go (pc + 1) (n + 1) (cyc + 1 + lat) ld (st + 1) br
          else
            (* overflow: the store retires in place, pc not advanced *)
            ( { x_pc = pc; x_retired = n + 1; x_cycles = cyc + 1 + lat;
                x_loads = ld; x_stores = st + 1; x_branches = br },
              Nt_overflow )
        end
      | Decode.D_br (c, rs, rt, target) ->
        (* [deopt_branches] ([follow_nontaken_in_nt] ablation): edge
           selection consults the BTB per inner branch — instrumented
           tier's job; stop before the branch commits anything. *)
        if deopt_branches then special pc n cyc ld st br
        else begin
          let taken =
            Insn.eval_cmp c (Array.unsafe_get regs rs)
              (Array.unsafe_get regs rt)
          in
          Coverage.record_nt coverage pc taken;
          Coverage.record_pc_nt coverage pc;
          go (if taken then target else pc + 1)
            (n + 1) (cyc + 1) ld st (br + 1)
        end
      | Decode.D_jmp target ->
        Coverage.record_pc_nt coverage pc;
        go target (n + 1) (cyc + 1) ld st br
      | Decode.D_call target ->
        let sp = Array.unsafe_get regs Reg.sp - 1 in
        if not (Memory.is_valid mem sp) then special pc n cyc ld st br
        else begin
          Array.unsafe_set regs Reg.sp sp;
          let lat = latency ~write:true sp in
          Coverage.record_pc_nt coverage pc;
          if Context.sandbox_write sandbox mem sp (pc + 1) then
            go target (n + 1) (cyc + 1 + lat) ld (st + 1) br
          else
            ( { x_pc = pc; x_retired = n + 1; x_cycles = cyc + 1 + lat;
                x_loads = ld; x_stores = st + 1; x_branches = br },
              Nt_overflow )
        end
      | Decode.D_ret ->
        let sp = Array.unsafe_get regs Reg.sp in
        if not (Memory.is_valid mem sp) then special pc n cyc ld st br
        else begin
          let lat = latency ~write:false sp in
          let ra = Context.sandbox_read sandbox mem sp in
          Array.unsafe_set regs Reg.sp (sp + 1);
          Coverage.record_pc_nt coverage pc;
          go ra (n + 1) (cyc + 1 + lat) (ld + 1) st br
        end
      | Decode.D_push rs ->
        let sp = Array.unsafe_get regs Reg.sp - 1 in
        if not (Memory.is_valid mem sp) then special pc n cyc ld st br
        else begin
          Array.unsafe_set regs Reg.sp sp;
          let lat = latency ~write:true sp in
          Coverage.record_pc_nt coverage pc;
          if Context.sandbox_write sandbox mem sp (Array.unsafe_get regs rs)
          then go (pc + 1) (n + 1) (cyc + 1 + lat) ld (st + 1) br
          else
            ( { x_pc = pc; x_retired = n + 1; x_cycles = cyc + 1 + lat;
                x_loads = ld; x_stores = st + 1; x_branches = br },
              Nt_overflow )
        end
      | Decode.D_pop rd ->
        let sp = Array.unsafe_get regs Reg.sp in
        if not (Memory.is_valid mem sp) then special pc n cyc ld st br
        else begin
          let lat = latency ~write:false sp in
          let v = Context.sandbox_read sandbox mem sp in
          Array.unsafe_set regs Reg.sp (sp + 1);
          if rd <> 0 then Array.unsafe_set regs rd v;
          Coverage.record_pc_nt coverage pc;
          go (pc + 1) (n + 1) (cyc + 1 + lat) (ld + 1) st br
        end
      | Decode.D_checkz (rs, _site) ->
        if Array.unsafe_get regs rs = 0 then special pc n cyc ld st br
        else begin
          Coverage.record_pc_nt coverage pc;
          go (pc + 1) (n + 1) (cyc + 1) ld st br
        end
      | Decode.D_pred _ ->
        (* Consistency-fix blocks (predicate live at path entry) run on the
           instrumented tier; once [Clearpred] retires this is fallthrough. *)
        if ctx.Context.pred then special pc n cyc ld st br
        else begin
          Coverage.record_pc_nt coverage pc;
          go (pc + 1) (n + 1) (cyc + 1) ld st br
        end
      | Decode.D_clearpred ->
        ctx.Context.pred <- false;
        Coverage.record_pc_nt coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_nop ->
        Coverage.record_pc_nt coverage pc;
        go (pc + 1) (n + 1) (cyc + 1) ld st br
      | Decode.D_syscall _ | Decode.D_watch _ | Decode.D_unwatch _
      | Decode.D_halt ->
        special pc n cyc ld st br
    end
  and special pc n cyc ld st br =
    ( { x_pc = pc; x_retired = n; x_cycles = cyc; x_loads = ld; x_stores = st;
        x_branches = br },
      Nt_special )
  in
  let st, stop = go ctx.Context.pc 0 0 0 0 0 in
  flush ctx st;
  (st.x_retired, stop)

(** The selective fast tier: a stripped taken-path interpreter that commits
    exactly the observable state transitions of the instrumented tier
    ([Cpu.step] under {!Engine.run}) for the instructions it executes, and
    stops — committing nothing — immediately before any instruction that
    needs detector, watchpoint, syscall, recorder or spawn machinery. The
    engine then executes that instruction on the instrumented tier
    (deoptimization, not re-execution), keeping every observable bit-for-bit
    identical to a fully instrumented run. *)

type stop =
  | Budget  (** segment budget exhausted (fuel or counter-reset boundary) *)
  | Special
      (** the instruction at [ctx.pc] needs the instrumented tier; nothing
          about it has been committed *)
  | Special_branch of bool
      (** a spawn-candidate conditional branch at [ctx.pc]; the payload is
          the fast tier's evaluation of the condition, for cross-checking
          against the instrumented tier's *)

(** [run machine ctx coverage ~spawning ~threshold ~budget ~bits] executes
    up to [budget] instructions of the taken path on the fast tier, starting
    at [ctx.pc]. [spawning] is false when branches take no instrumented-tier
    action at all ({!Pe_config.Baseline} without profiled fixing: no BTB
    traffic, branches never deoptimize); otherwise any branch whose
    forced-edge counter probes below [threshold] (or misses the BTB) stops
    the segment. Passing [threshold = max_int] therefore deoptimizes at
    *every* branch — how the engine keeps straight-line code fast under
    configurations with per-branch actions (random spawning's RNG draw,
    profiled fixing's observation, spawn-everywhere). Taken branch
    directions are appended to [bits].

    Returns [(retired, stop)]: the number of instructions retired (already
    added to [ctx]'s stats; the caller must add it to
    [Machine.insn_index]) and why the segment ended. [ctx.pc] is left at
    the next instruction to execute — for [Special]/[Special_branch], the
    instruction the instrumented tier must run.

    Preconditions (enforced by {!Engine.run}): [ctx] is the primary,
    unsandboxed context; no watchpoints armed; no store hook; and under
    per-branch-action configurations (random spawning, profiled fixing,
    spawn-everywhere), [spawning = true] with [threshold = max_int]. *)
val run :
  Machine.t ->
  Context.t ->
  Coverage.t ->
  spawning:bool ->
  threshold:int ->
  budget:int ->
  bits:Bitbuf.t ->
  int * stop

type nt_stop =
  | Nt_budget  (** [MaxNTPathLength] reached *)
  | Nt_special
      (** the instruction at [ctx.pc] needs the instrumented tier; nothing
          about it has been committed *)
  | Nt_overflow
      (** a sandboxed store overflowed the path's L1 line budget; the store
          has retired (stats and latency charged, [ctx.pc] left on it) —
          exactly the state the instrumented tier's raise leaves behind *)

(** [run_nt machine ctx sandbox coverage ~deopt_branches ~budget] is the
    NT-Path fast tier: the same stop-before-special discipline as {!run},
    with memory routed through [sandbox] (speculative cache ownership,
    buffered writes), NT-Path coverage recording, actual-condition branch
    following and no BTB traffic. [deopt_branches] (the
    [follow_nontaken_in_nt] ablation, whose inner-branch edge selection
    consults the BTB) stops the segment before every conditional branch
    instead. Returns [(retired, stop)]; retired instructions are already in
    [ctx]'s stats, and the caller must add them to [Machine.insn_index].

    Preconditions (enforced by {!Nt_path.run}): [ctx] is sandboxed in
    [sandbox]; no watchpoints armed; no store hook; [deopt_branches] is set
    iff the configuration forces cold edges inside NT-Paths. *)
val run_nt :
  Machine.t ->
  Context.t ->
  Context.sandbox ->
  Coverage.t ->
  deopt_branches:bool ->
  budget:int ->
  int * nt_stop

(** The selective fast tier: a stripped taken-path interpreter that commits
    exactly the observable state transitions of the instrumented tier
    ([Cpu.step] under {!Engine.run}) for the instructions it executes, and
    stops — committing nothing — immediately before any instruction that
    needs detector, watchpoint, syscall, recorder or spawn machinery. The
    engine then executes that instruction on the instrumented tier
    (deoptimization, not re-execution), keeping every observable bit-for-bit
    identical to a fully instrumented run.

    Both tiers are packaged as handles ({!make}/{!make_nt}) built once per
    run (or per NT arena) so that a segment call allocates nothing: per-call
    parameters travel through the handle, exit state is flushed straight
    into the context, and the stop constructors are all constant. *)

type stop =
  | Budget  (** segment budget exhausted (fuel or counter-reset boundary) *)
  | Special
      (** the instruction at [ctx.pc] needs the instrumented tier; nothing
          about it has been committed *)
  | Special_branch_taken
      (** a spawn-candidate conditional branch at [ctx.pc]; the fast tier
          evaluated its condition as taken (cross-checked against the
          instrumented tier's own evaluation) *)
  | Special_branch_nontaken
      (** like [Special_branch_taken] with the condition not taken *)

(** A taken-path fast-tier handle, bound to one machine, primary context,
    coverage sink and branch-direction log. *)
type t

val make : Machine.t -> Context.t -> Coverage.t -> bits:Bitbuf.t -> t

(** [run t ~spawning ~threshold ~budget] executes up to [budget]
    instructions of the taken path on the fast tier, starting at [ctx.pc].
    [spawning] is false when branches take no instrumented-tier action at
    all ({!Pe_config.Baseline} without profiled fixing: no BTB traffic,
    branches never deoptimize); otherwise any branch whose forced-edge
    counter probes below [threshold] (or misses the BTB) stops the segment.
    Passing [threshold = max_int] therefore deoptimizes at *every* branch —
    how the engine keeps straight-line code fast under configurations with
    per-branch actions (random spawning's RNG draw, profiled fixing's
    observation, spawn-everywhere). Taken branch directions are appended to
    the handle's [bits].

    Retired instructions are already added to [ctx]'s stats when this
    returns (read the count with {!retired}; the caller must add it to
    [Machine.insn_index]). [ctx.pc] is left at the next instruction to
    execute — for [Special]/[Special_branch_*], the instruction the
    instrumented tier must run.

    Preconditions (enforced by {!Engine.run}): [ctx] is the primary,
    unsandboxed context; no watchpoints armed; no store hook; and under
    per-branch-action configurations (random spawning, profiled fixing,
    spawn-everywhere), [spawning = true] with [threshold = max_int]. *)
val run : t -> spawning:bool -> threshold:int -> budget:int -> stop

(** Instructions retired by the most recent {!run} segment. *)
val retired : t -> int

type nt_stop =
  | Nt_budget  (** [MaxNTPathLength] reached *)
  | Nt_special
      (** the instruction at [ctx.pc] needs the instrumented tier; nothing
          about it has been committed *)
  | Nt_overflow
      (** a sandboxed store overflowed the path's L1 line budget; the store
          has retired (stats and latency charged, [ctx.pc] left on it) —
          exactly the state the instrumented tier's raise leaves behind *)

(** An NT-Path fast-tier handle, bound to one machine, pooled NT context,
    pooled sandbox and coverage sink (see {!Nt_path.make_arena}). The
    context's L1 and the sandbox's path id are re-read at every segment, so
    per-spawn retargeting (CMP core L1s, fresh 8-bit path ids) needs no
    handle rebuild. *)
type nt

val make_nt : Machine.t -> Context.t -> Context.sandbox -> Coverage.t -> nt

(** [run_nt t ~deopt_branches ~budget] is the NT-Path fast tier: the same
    stop-before-special discipline as {!run}, with memory routed through
    the sandbox (speculative cache ownership, buffered writes), NT-Path
    coverage recording, actual-condition branch following and no BTB
    traffic. [deopt_branches] (the [follow_nontaken_in_nt] ablation, whose
    inner-branch edge selection consults the BTB) stops the segment before
    every conditional branch instead. Retired instructions are already in
    [ctx]'s stats (read the count with {!nt_retired}; the caller must add
    it to [Machine.insn_index]).

    Preconditions (enforced by {!Nt_path.run}): [ctx] is sandboxed in the
    handle's sandbox; no watchpoints armed; no store hook; [deopt_branches]
    is set iff the configuration forces cold edges inside NT-Paths. *)
val run_nt : nt -> deopt_branches:bool -> budget:int -> nt_stop

(** Instructions retired by the most recent {!run_nt} segment. *)
val nt_retired : nt -> int

(** PathExpander execution engines (standard configuration and CMP
    optimisation), plus the baseline monitored run.

    Functional behaviour of NT-Paths is identical in both configurations;
    they differ in the timing model: the standard configuration serialises
    NT-Path execution on the primary core (plus spawn/squash overheads),
    while the CMP option schedules each NT-Path on the earliest-free idle
    core and the program ends only when the last outstanding NT-Path has
    squashed (commit/squash-token protocol). *)

type outcome = [ `Halted | `Exited of int | `Faulted of Cpu.fault | `Fuel_exhausted ]

type result = {
  outcome : outcome;
  taken_insns : int;  (** instructions retired by the taken path *)
  taken_branches : int;
  taken_stores : int;
  taken_cycles : int;  (** primary-core cycles (taken path + spawn overheads) *)
  total_cycles : int;  (** end-to-end cycles under the configured mode *)
  nt_records : Nt_path.record list;
  spawns : int;
  skipped_spawns : int;  (** CMP: spawns suppressed by [MaxNumNTPaths] *)
  profiled_overrides : int;
      (** spawns whose condition variable was fixed from observed history
          (the profiled-fixing extension) rather than by the boundary stub *)
  coverage : Coverage.t;
  fast_insns : int;
      (** taken-path instructions retired on the selective fast tier
          ({!Fast_loop}); 0 when selective execution is off or inapplicable *)
  fast_segments : int;
      (** number of fast segments executed — each ends at a deoptimization
          point (spawn-candidate branch, syscall, detector event, fault) or
          a fuel/counter-reset boundary *)
  skipped_edges : int list;
      (** Coverage Observatory only (armed via {!Pe_config.set_obs_enabled}):
          encoded edges [2*pc + dir] whose spawn was suppressed by the CMP
          outstanding-path budget, sorted distinct; [[]] when unarmed *)
}

val outcome_name : outcome -> string

(** Run the program loaded in [machine] under the given PathExpander
    configuration. [fuel] bounds taken-path instructions as a safety net. *)
val run : ?config:Pe_config.t -> ?fuel:int -> Machine.t -> result

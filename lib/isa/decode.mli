(** Program-load-time decode of [Insn.t] into a flat execution form for the
    interpreter's hot loop: resolved register indices, faulting binops
    (Div/Mod) split out of the allocation-free ALU fast path, pre-resolved
    branch targets. Decoded once per program load, shared by every engine
    (baseline, taken path, NT-Paths, software PathExpander). *)

type t =
  | D_alu of Insn.binop * int * int * int
      (** never Div/Mod: evaluation cannot fault *)
  | D_alui of Insn.binop * int * int * int
  | D_div of int * int * int
  | D_mod of int * int * int
  | D_divi of int * int * int
  | D_modi of int * int * int
  | D_cmp of Insn.cmp * int * int * int
  | D_cmpi of Insn.cmp * int * int * int
  | D_li of int * int
  | D_mov of int * int
  | D_load of int * int * int
  | D_store of int * int * int
  | D_br of Insn.cmp * int * int * int
  | D_jmp of int
  | D_call of int
  | D_ret
  | D_push of int
  | D_pop of int
  | D_syscall of Insn.sys
  | D_checkz of int * int
  | D_watch of int * int * int
  | D_unwatch of int * int
  | D_pred of t
  | D_clearpred
  | D_halt
  | D_nop

(** Evaluate a non-faulting binop (same semantics as [Insn.eval_binop] on
    the same operands). Raises [Assert_failure] on [Div]/[Mod]. *)
val eval_alu : Insn.binop -> int -> int -> int

(** Decode a whole code array; [decode code].(pc) executes [code.(pc)]. *)
val decode : Insn.t array -> t array

(* Program-load-time decode of [Insn.t] into a flat execution form.

   The interpreter's hot loop dispatches on this form instead of the
   assembler-facing [Insn.t]: register operands are resolved to plain array
   indices, the faulting binops (Div/Mod, which must check for a zero
   divisor) are split out of the allocation-free ALU fast path, and branches
   carry their pre-resolved target. Decoding happens once per program load
   ([Machine.create]), never on the hot path. *)

type t =
  | D_alu of Insn.binop * int * int * int
      (* op is never Div/Mod: evaluation cannot fault or allocate *)
  | D_alui of Insn.binop * int * int * int
  | D_div of int * int * int
  | D_mod of int * int * int
  | D_divi of int * int * int
  | D_modi of int * int * int
  | D_cmp of Insn.cmp * int * int * int
  | D_cmpi of Insn.cmp * int * int * int
  | D_li of int * int
  | D_mov of int * int
  | D_load of int * int * int
  | D_store of int * int * int
  | D_br of Insn.cmp * int * int * int
  | D_jmp of int
  | D_call of int
  | D_ret
  | D_push of int
  | D_pop of int
  | D_syscall of Insn.sys
  | D_checkz of int * int
  | D_watch of int * int * int
  | D_unwatch of int * int
  | D_pred of t
  | D_clearpred
  | D_halt
  | D_nop

(* Non-faulting binop evaluation; [Div]/[Mod] never reach here (decode
   splits them into [D_div]/[D_mod]). Alias of the single authoritative
   implementation in [Insn] — PR 4 had to fix the same shift-mask bug in
   two hand-kept copies of this table. *)
let eval_alu = Insn.eval_alu

let rec decode_insn insn =
  match insn with
  | Insn.Binop (Insn.Div, rd, rs, rt) -> D_div (rd, rs, rt)
  | Insn.Binop (Insn.Mod, rd, rs, rt) -> D_mod (rd, rs, rt)
  | Insn.Binop (op, rd, rs, rt) -> D_alu (op, rd, rs, rt)
  | Insn.Binopi (Insn.Div, rd, rs, imm) -> D_divi (rd, rs, imm)
  | Insn.Binopi (Insn.Mod, rd, rs, imm) -> D_modi (rd, rs, imm)
  | Insn.Binopi (op, rd, rs, imm) -> D_alui (op, rd, rs, imm)
  | Insn.Cmp (c, rd, rs, rt) -> D_cmp (c, rd, rs, rt)
  | Insn.Cmpi (c, rd, rs, imm) -> D_cmpi (c, rd, rs, imm)
  | Insn.Li (rd, imm) -> D_li (rd, imm)
  | Insn.Mov (rd, rs) -> D_mov (rd, rs)
  | Insn.Load (rd, base, off) -> D_load (rd, base, off)
  | Insn.Store (rs, base, off) -> D_store (rs, base, off)
  | Insn.Br (c, rs, rt, target) -> D_br (c, rs, rt, target)
  | Insn.Jmp target -> D_jmp target
  | Insn.Call target -> D_call target
  | Insn.Ret -> D_ret
  | Insn.Push rs -> D_push rs
  | Insn.Pop rd -> D_pop rd
  | Insn.Syscall sys -> D_syscall sys
  | Insn.Checkz (rs, site) -> D_checkz (rs, site)
  | Insn.Watch (lo, hi, site) -> D_watch (lo, hi, site)
  | Insn.Unwatch (lo, hi) -> D_unwatch (lo, hi)
  | Insn.Pred inner -> D_pred (decode_insn inner)
  | Insn.Clearpred -> D_clearpred
  | Insn.Halt -> D_halt
  | Insn.Nop -> D_nop

let decode code = Array.map decode_insn code

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Xor
  | Shl
  | Shr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type sys =
  | Sys_putc
  | Sys_getc
  | Sys_print_int
  | Sys_exit

type t =
  | Binop of binop * Reg.t * Reg.t * Reg.t
  | Binopi of binop * Reg.t * Reg.t * int
  | Cmp of cmp * Reg.t * Reg.t * Reg.t
  | Cmpi of cmp * Reg.t * Reg.t * int
  | Li of Reg.t * int
  | Mov of Reg.t * Reg.t
  | Load of Reg.t * Reg.t * int
  | Store of Reg.t * Reg.t * int
  | Br of cmp * Reg.t * Reg.t * int
  | Jmp of int
  | Call of int
  | Ret
  | Push of Reg.t
  | Pop of Reg.t
  | Syscall of sys
  | Checkz of Reg.t * int
  | Watch of Reg.t * Reg.t * int
  | Unwatch of Reg.t * Reg.t
  | Pred of t
  | Clearpred
  | Halt
  | Nop

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cmp_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let sys_name = function
  | Sys_putc -> "putc"
  | Sys_getc -> "getc"
  | Sys_print_int -> "print_int"
  | Sys_exit -> "exit"

(* Single source of truth for ALU semantics. [eval_binop] (the faulting
   wrapper) and [Decode.eval_alu] (the hot-loop alias) both resolve here, so
   a semantics fix lands exactly once. *)
let eval_alu op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a asr (b land 63)
  | Div | Mod -> assert false

let eval_binop op a b =
  match op with
  | Div -> if b = 0 then None else Some (a / b)
  | Mod -> if b = 0 then None else Some (a mod b)
  | Add | Sub | Mul | And | Or | Xor | Shl | Shr -> Some (eval_alu op a b)

let eval_cmp c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

(* The edge forced by negating [c]: the condition that holds on the
   fallthrough (non-taken-target) edge of [Br (c, _, _, _)]. *)
let negate_cmp = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let rec to_string insn =
  let r = Reg.name in
  match insn with
  | Binop (op, rd, rs, rt) ->
    Printf.sprintf "%-5s %s, %s, %s" (binop_name op) (r rd) (r rs) (r rt)
  | Binopi (op, rd, rs, imm) ->
    Printf.sprintf "%-5s %s, %s, %d" (binop_name op ^ "i") (r rd) (r rs) imm
  | Cmp (c, rd, rs, rt) ->
    Printf.sprintf "%-5s %s, %s, %s" ("s" ^ cmp_name c) (r rd) (r rs) (r rt)
  | Cmpi (c, rd, rs, imm) ->
    Printf.sprintf "%-5s %s, %s, %d" ("s" ^ cmp_name c ^ "i") (r rd) (r rs) imm
  | Li (rd, imm) -> Printf.sprintf "li    %s, %d" (r rd) imm
  | Mov (rd, rs) -> Printf.sprintf "mov   %s, %s" (r rd) (r rs)
  | Load (rd, base, off) -> Printf.sprintf "ld    %s, %d(%s)" (r rd) off (r base)
  | Store (rs, base, off) -> Printf.sprintf "st    %s, %d(%s)" (r rs) off (r base)
  | Br (c, rs, rt, target) ->
    Printf.sprintf "b%-4s %s, %s, @%d" (cmp_name c) (r rs) (r rt) target
  | Jmp target -> Printf.sprintf "jmp   @%d" target
  | Call target -> Printf.sprintf "call  @%d" target
  | Ret -> "ret"
  | Push rs -> Printf.sprintf "push  %s" (r rs)
  | Pop rd -> Printf.sprintf "pop   %s" (r rd)
  | Syscall s -> Printf.sprintf "sys   %s" (sys_name s)
  | Checkz (rs, site) -> Printf.sprintf "chkz  %s, site:%d" (r rs) site
  | Watch (lo, hi, site) ->
    Printf.sprintf "watch %s, %s, site:%d" (r lo) (r hi) site
  | Unwatch (lo, hi) -> Printf.sprintf "unwat %s, %s" (r lo) (r hi)
  | Pred inner -> Printf.sprintf "<p> %s" (to_string inner)
  | Clearpred -> "clrp"
  | Halt -> "halt"
  | Nop -> "nop"

let pp fmt insn = Format.pp_print_string fmt (to_string insn)

let is_branch = function Br _ -> true | _ -> false

let rec is_memory_access = function
  | Load _ | Store _ | Push _ | Pop _ -> true
  | Pred inner -> is_memory_access inner
  | Binop _ | Binopi _ | Cmp _ | Cmpi _ | Li _ | Mov _ | Br _ | Jmp _ | Call _
  | Ret | Syscall _ | Checkz _ | Watch _ | Unwatch _ | Clearpred | Halt | Nop ->
    false

(** Instruction set of the simulated machine.

    A RISC-like register ISA with one extension from the paper: instructions
    can be *predicated* ([Pred]) on the core's predicate register, which is
    set only at the entrance of an NT-Path; elsewhere predicated instructions
    retire as NOPs. [Checkz] is the report instruction used by the dynamic
    bug detectors (its result is stored to the monitor memory area, which the
    sandbox never rolls back), and [Watch]/[Unwatch] program the
    iWatcher-style hardware watchpoint unit. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Xor
  | Shl
  | Shr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** Syscalls; all are unsafe events that terminate an NT-Path. *)
type sys =
  | Sys_putc  (** write char in [a0] to program output *)
  | Sys_getc  (** read next input char into [rv], -1 at end of input *)
  | Sys_print_int  (** write decimal of [a0] to program output *)
  | Sys_exit  (** terminate the program with status [a0] *)

type t =
  | Binop of binop * Reg.t * Reg.t * Reg.t  (** [rd <- rs op rt] *)
  | Binopi of binop * Reg.t * Reg.t * int  (** [rd <- rs op imm] *)
  | Cmp of cmp * Reg.t * Reg.t * Reg.t  (** [rd <- rs cmp rt ? 1 : 0] *)
  | Cmpi of cmp * Reg.t * Reg.t * int
  | Li of Reg.t * int
  | Mov of Reg.t * Reg.t
  | Load of Reg.t * Reg.t * int  (** [rd <- mem\[base + off\]] *)
  | Store of Reg.t * Reg.t * int  (** [mem\[base + off\] <- rs] *)
  | Br of cmp * Reg.t * Reg.t * int
      (** conditional branch to absolute pc; fallthrough otherwise. The pc of
          the instruction itself identifies the branch (BTB, coverage). *)
  | Jmp of int
  | Call of int  (** pushes the return pc on the stack *)
  | Ret
  | Push of Reg.t
  | Pop of Reg.t
  | Syscall of sys
  | Checkz of Reg.t * int
      (** detector check: if [rs = 0], file a report for report-site [site].
          Branch-free so that detectors never perturb branch statistics. *)
  | Watch of Reg.t * Reg.t * int
      (** watch addresses in [\[rs, rt)]; an access files a report for
          [site] *)
  | Unwatch of Reg.t * Reg.t
  | Pred of t  (** executes only when the predicate register is set *)
  | Clearpred  (** clear the predicate register *)
  | Halt
  | Nop

val binop_name : binop -> string
val cmp_name : cmp -> string
val sys_name : sys -> string

(** Evaluate a non-faulting binop. The single source of truth for ALU
    semantics ([eval_binop] and [Decode.eval_alu] both resolve here).
    Raises [Assert_failure] on [Div]/[Mod]. *)
val eval_alu : binop -> int -> int -> int

(** [eval_binop op a b] is [None] on division/modulo by zero. *)
val eval_binop : binop -> int -> int -> int option

val eval_cmp : cmp -> int -> int -> bool

(** Comparison holding on the fallthrough edge of a branch on [c]. *)
val negate_cmp : cmp -> cmp

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** True for conditional branches only ([Br]). *)
val is_branch : t -> bool

(** True for instructions that touch data memory (including predicated
    ones). *)
val is_memory_access : t -> bool

(* Figure 3 — Crash-Latency and Unsafe-Latency study (Section 3.2): spawn an
   NT-Path at every non-taken branch edge with zero exercise count, with no
   variable fixing, and run each until it crashes, reaches an unsafe event,
   reaches the end of the program, or has executed 1000 instructions. The
   figure plots the cumulative fraction of NT-Paths stopped by a crash or an
   unsafe event before a given instruction count. *)

let points = [ 10; 30; 100; 300; 1000 ]

type stats = {
  total : int;
  crash_latencies : int list;
  unsafe_latencies : int list;
  survived : int;
}

let collect (workload : Workload.t) =
  let config =
    {
      Pe_config.latency_study with
      Pe_config.max_nt_path_length = 1000;
      counter_reset_interval = 40_000;
    }
  in
  let r =
    Exp_common.run_app ~fixing:false ~config workload
  in
  let records = r.Exp_common.result.Engine.nt_records in
  let crash_latencies =
    List.filter_map
      (fun (rec_ : Nt_path.record) ->
        if Nt_path.is_crash rec_ then Some rec_.Nt_path.insns else None)
      records
  in
  let unsafe_latencies =
    List.filter_map
      (fun (rec_ : Nt_path.record) ->
        if Nt_path.is_unsafe rec_ then Some rec_.Nt_path.insns else None)
      records
  in
  let survived =
    List.length
      (List.filter
         (fun (rec_ : Nt_path.record) ->
           match rec_.Nt_path.termination with
           | Nt_path.T_max_length | Nt_path.T_program_end -> true
           | Nt_path.T_crash _ | Nt_path.T_unsafe _ | Nt_path.T_cache_overflow ->
             false)
         records)
  in
  { total = List.length records; crash_latencies; unsafe_latencies; survived }

let series name total latencies =
  let row =
    List.map
      (fun p ->
        let stopped = List.length (List.filter (fun l -> l <= p) latencies) in
        Table.fpct (Stats.pct ~num:stopped ~den:total))
      points
  in
  name :: row

let run () =
  Exp_common.heading
    "Figure 3: Crash-Latency and Unsafe-Latency cumulative distributions";
  Sink.printf
    "(fraction of NT-Paths stopped by crash / unsafe event before executing\n\
    \ N instructions; NT-Paths spawned on every cold edge, no fixing)\n\n";
  let collected =
    Exp_common.par_map
      (fun (w : Workload.t) -> (w, collect w))
      Registry.latency_apps
  in
  List.iter
    (fun ((workload : Workload.t), stats) ->
      Sink.printf "%s: %d NT-Paths, %s survive to 1000 instructions\n"
        workload.Workload.name stats.total
        (Table.fpct (Stats.pct ~num:stats.survived ~den:stats.total));
      Table.print
        ~header:("stopped by <= N insns" :: List.map string_of_int points)
        [
          series "crash" stats.total stats.crash_latencies;
          series "unsafe event" stats.total stats.unsafe_latencies;
        ];
      Sink.print_newline ())
    collected

(* Section 7.3 (reconstructed) — single-input branch coverage: the baseline
   monitored run versus PathExpander, per application. The paper reports an
   average improvement from 40% to 65%. *)

let measure (workload : Workload.t) =
  let r = Exp_common.run_app workload in
  let cov = r.Exp_common.result.Engine.coverage in
  ( Coverage.taken_pct cov,
    Coverage.combined_pct cov,
    Coverage.stmt_taken_pct cov,
    Coverage.stmt_combined_pct cov )

let run () =
  Exp_common.heading
    "Coverage (Section 7.3): branch and statement coverage of a single run";
  let rows =
    Exp_common.par_map
      (fun (workload : Workload.t) ->
        let base, pe, sbase, spe = measure workload in
        ( [
            workload.Workload.name;
            Table.fpct base;
            Table.fpct pe;
            Table.fpct (pe -. base);
            Table.fpct sbase;
            Table.fpct spe;
          ],
          (base, pe, sbase, spe) ))
      Registry.perf_apps
  in
  let avg f = Stats.mean (List.map (fun (_, t) -> f t) rows) in
  let b = avg (fun (b, _, _, _) -> b)
  and p = avg (fun (_, p, _, _) -> p)
  and sb = avg (fun (_, _, sb, _) -> sb)
  and sp = avg (fun (_, _, _, sp) -> sp) in
  Table.print
    ~aligns:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:
      [
        "Application";
        "br base";
        "br PE";
        "br gain";
        "stmt base";
        "stmt PE";
      ]
    (List.map fst rows
    @ [
        [
          "Average";
          Table.fpct b;
          Table.fpct p;
          Table.fpct (p -. b);
          Table.fpct sb;
          Table.fpct sp;
        ];
      ])

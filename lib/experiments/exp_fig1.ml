(* Figure 1 — the motivating example: print_tokens2 v10's buffer overrun is
   invisible to the baseline monitored run on a general input and caught by
   PathExpander on the forced non-taken path. *)

let run () =
  Exp_common.heading
    "Figure 1: print_tokens2 v10 (unterminated string constant overrun)";
  let workload = Registry.print_tokens2 in
  let bug = Workload.find_bug workload 10 in
  let show detector mode =
    let r = Exp_common.run_app ~detector ~bug:10 ~mode workload in
    let analysis =
      Analysis.analyze ~compiled:r.Exp_common.compiled
        ~machine:r.Exp_common.machine ~bug
    in
    Sink.printf "%-24s %-9s detected=%-5b coverage=%5.1f%% reports=%d\n"
      (Exp_common.detector_label detector)
      (Pe_config.mode_name mode)
      (Analysis.detected analysis)
      (if mode = Pe_config.Baseline then
         Coverage.taken_pct r.Exp_common.result.Engine.coverage
       else Coverage.combined_pct r.Exp_common.result.Engine.coverage)
      (Report.count r.Exp_common.machine.Machine.reports)
  in
  List.iter
    (fun detector ->
      show detector Pe_config.Baseline;
      show detector Pe_config.Standard)
    [ Codegen.Ccured; Codegen.Iwatcher ];
  Sink.print_endline
    "The buggy path needs a token that starts with a quotation mark and has\n\
     no second quotation mark; the general input contains none, so only the\n\
     forced NT-Path exposes the overrun to the dynamic checkers."

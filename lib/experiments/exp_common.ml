(* Shared plumbing for the experiment harness. *)

type run = {
  compiled : Compile.compiled;
  machine : Machine.t;
  result : Engine.result;
}

(* The sweep-wide worker budget, set once from the CLI's --jobs before any
   experiment runs. *)
let jobs_setting = Atomic.make 1

let set_jobs n = Atomic.set jobs_setting (max 1 n)

let jobs () = Atomic.get jobs_setting

(* Deterministic fan-out for workload×config sweeps: each item runs on a
   pool worker (every run owns its own [Machine.t], so runs are trivially
   independent) and results come back in input order, making a parallel
   sweep byte-identical to a serial one. Degrades to [List.map] when --jobs
   is 1 or when already inside a pool worker. *)
let par_map f xs = Pool.map ~jobs:(jobs ()) f xs

(* Compile and execute one workload configuration. *)
let run_app ?(detector = Codegen.No_detector) ?(fixing = true) ?bug
    ?(mode = Pe_config.Standard) ?config ?input (workload : Workload.t) =
  let compiled = Workload.compile ~detector ~fixing ?bug workload in
  let input = Option.value ~default:workload.Workload.default_input input in
  let machine = Machine.create ~input compiled.Compile.program in
  let config =
    match config with
    | Some c -> { c with Pe_config.fixing = c.Pe_config.fixing && fixing }
    | None ->
      let c = Workload.pe_config ~mode workload in
      { c with Pe_config.fixing }
  in
  Telemetry.set_label machine.Machine.telemetry
    (Printf.sprintf "%s/%s%s" workload.Workload.name
       (Pe_config.mode_name config.Pe_config.mode)
       (match bug with Some b -> Printf.sprintf "/v%d" b | None -> ""));
  let result = Engine.run ~config machine in
  (* Observatory capture happens before release only by convention — release
     recycles the simulated address space, and the snapshot reads coverage,
     BTB and telemetry, all of which survive it. *)
  if Obs.armed () then
    Obs.submit
      (Obs.snapshot
         ~label:(Telemetry.label machine.Machine.telemetry)
         ~program:compiled.Compile.program ~machine ~result ~config);
  (* The run is over; callers only consult reports/output/telemetry, so the
     simulated address space can go back to the pool now. *)
  Machine.release machine;
  { compiled; machine; result }

(* Detectors that can see a bug of this kind, in presentation order. *)
let detectors_for_kind = function
  | Bug.Memory -> [ Codegen.Ccured; Codegen.Iwatcher ]
  | Bug.Semantic -> [ Codegen.Assertions ]

let detector_label = function
  | Codegen.Ccured -> "Software Tool (CCured)"
  | Codegen.Iwatcher -> "Hardware Tool (iWatcher)"
  | Codegen.Assertions -> "Assertions"
  | Codegen.No_detector -> "None"

(* Bugs of [workload] that [detector] can detect. *)
let bugs_for workload detector =
  List.filter (fun b -> Bug.detectable_by b detector) workload.Workload.bugs

let overhead_pct ~baseline ~with_pe =
  if baseline = 0 then 0.0
  else 100.0 *. float_of_int (with_pe - baseline) /. float_of_int baseline

let heading title =
  Sink.printf "\n=== %s ===\n" title

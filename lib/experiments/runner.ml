(* Experiment registry: every table and figure of the evaluation, by id. *)

type experiment = {
  id : string;
  title : string;
  run : unit -> unit;
}

let all =
  [
    { id = "fig1"; title = "Figure 1 motivating bug"; run = Exp_fig1.run };
    { id = "fig3"; title = "Crash/Unsafe-latency CDFs"; run = Exp_fig3.run };
    { id = "tab2"; title = "Simulated architecture parameters"; run = Exp_tab2.run };
    { id = "tab3"; title = "Applications and bugs"; run = Exp_tab3.run };
    { id = "tab4"; title = "Bug detection results"; run = Exp_tab4.run };
    { id = "tab5"; title = "Consistency-fixing effects"; run = Exp_tab5.run };
    { id = "cov1"; title = "Single-input branch coverage"; run = Exp_coverage.run };
    {
      id = "cov2";
      title = "Cumulative coverage over 50 inputs";
      run = (fun () -> Exp_cumulative.run ());
    };
    { id = "ovh1"; title = "Standard vs CMP overhead"; run = Exp_overhead.run };
    { id = "ovh2"; title = "Hardware vs software overhead"; run = Exp_sw_hw.run };
    { id = "par1"; title = "Parameter sensitivity"; run = Exp_params.run };
    { id = "abl1"; title = "NT-Path edge-following ablation"; run = Exp_ablation.run };
    {
      id = "ext1";
      title = "Future-work extensions (OS syscall sandboxing, random selection)";
      run = Exp_extensions.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let capture e =
  let (), out = Sink.with_capture e.run in
  out

(* With [jobs <= 1] experiments stream to stdout as they run; with more, each
   experiment executes under a domain-local capture buffer and the outputs are
   printed in registry (presentation) order, so the bytes on stdout are the
   same either way. Nested fan-out inside an experiment degrades to serial in
   worker domains (see Pool), so the domain count stays bounded by [jobs]. *)
let run_list ?jobs experiments =
  let jobs = match jobs with Some j -> j | None -> Exp_common.jobs () in
  if jobs <= 1 then List.iter (fun e -> e.run ()) experiments
  else List.iter Sink.print_string (Pool.map ~jobs capture experiments)

let run_all ?jobs () = run_list ?jobs all

let ids () = List.map (fun e -> e.id) all

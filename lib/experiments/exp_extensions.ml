(* Extensions: the paper's future work, implemented and measured.

   ext1 — OS support for sandboxing unsafe events (Section 3.2: "if we had
   an OS support to sandbox unsafe events, more than 90% of NT-Paths may
   potentially execute up to 1000 instructions ... remains as our future
   work"). With [sandbox_syscalls] the NT-Path runner virtualises I/O:
   output is discarded with the rest of the sandbox and [getc] reads ahead
   on a path-local cursor. We re-run the Figure 3 study and check the
   paper's >90% prediction.

   ext2 — a random factor in NT-Path selection (Section 7.1: the
   hot-entry-edge bc bug "can be addressed by adding random factor into
   PathExpander's NT-Path selection"). With [random_spawn_chance] a
   saturated edge still spawns occasionally; we measure whether the bc bug
   is recovered and what the exploration costs. *)

let survival (workload : Workload.t) ~sandbox_syscalls =
  let config =
    {
      Pe_config.latency_study with
      Pe_config.max_nt_path_length = 1000;
      counter_reset_interval = 40_000;
      sandbox_syscalls;
    }
  in
  let r = Exp_common.run_app ~fixing:false ~config workload in
  let records = r.Exp_common.result.Engine.nt_records in
  let survived =
    List.length
      (List.filter
         (fun (rec_ : Nt_path.record) ->
           match rec_.Nt_path.termination with
           | Nt_path.T_max_length | Nt_path.T_program_end -> true
           | Nt_path.T_crash _ | Nt_path.T_unsafe _ | Nt_path.T_cache_overflow ->
             false)
         records)
  in
  Stats.pct ~num:survived ~den:(max 1 (List.length records))

let run_os_support () =
  Sink.printf
    "\n-- ext1: OS support for unsafe events (Section 3.2 future work) --\n";
  let rows =
    Exp_common.par_map
      (fun (workload : Workload.t) ->
        let without = survival workload ~sandbox_syscalls:false in
        let with_os = survival workload ~sandbox_syscalls:true in
        [
          workload.Workload.name;
          Table.fpct without;
          Table.fpct with_os;
        ])
      Registry.latency_apps
  in
  Table.print
    ~aligns:[ Table.Left; Table.Right; Table.Right ]
    ~header:
      [ "Application"; "survive 1000 insns"; "with sandboxed syscalls" ]
    rows;
  Sink.print_endline
    "(the paper predicted that with OS support 'more than 90% of NT-Paths\n\
     may potentially execute up to 1000 instructions')"

let bc_bug_detected config =
  let bug = Workload.find_bug Registry.bc 2 in
  let r = Exp_common.run_app ~detector:Codegen.Ccured ~bug:2 ~config Registry.bc in
  let analysis =
    Analysis.analyze ~compiled:r.Exp_common.compiled ~machine:r.Exp_common.machine
      ~bug
  in
  (Analysis.detected analysis, r.Exp_common.result.Engine.spawns)

let run_random_selection () =
  Sink.printf
    "\n-- ext2: random factor in NT-Path selection (Section 7.1 suggestion) --\n";
  let chances = [ 0.0; 0.01; 0.05; 0.2 ] in
  let rows =
    Exp_common.par_map
      (fun chance ->
        let config =
          {
            (Workload.pe_config Registry.bc) with
            Pe_config.random_spawn_chance = chance;
          }
        in
        let detected, spawns = bc_bug_detected config in
        [
          Printf.sprintf "%.3f" chance;
          string_of_bool detected;
          string_of_int spawns;
        ])
      chances
  in
  Table.print
    ~aligns:[ Table.Right; Table.Left; Table.Right ]
    ~header:[ "random chance"; "bc hot-edge bug detected"; "NT-Paths" ]
    rows;
  Sink.print_endline
    "(at threshold 5 the bug's entry edge is saturated and never spawned;\n\
     a small random factor re-explores hot edges and recovers the bug)"

(* ext3 — an assertion-free detector on top of PathExpander: the paper's
   generality claim says any dynamic checker benefits. We train a
   DIDUCE-style invariant monitor on a baseline run, then let PathExpander
   force the cold paths; planted bugs that smash global state outside its
   trained range surface with no assertions in the program at all.
   Violations that the bug-free binary also produces under PathExpander
   (forced-path anomalies) are subtracted as the detector's own noise. *)

let diduce_names (workload : Workload.t) ~bug ~mode =
  let compiled = Workload.compile ?bug workload in
  let train = Diduce.create compiled.Compile.program in
  let machine =
    Machine.create ~input:workload.Workload.default_input compiled.Compile.program
  in
  Diduce.attach train machine;
  ignore (Engine.run ~config:Pe_config.baseline machine);
  Machine.release machine;
  Diduce.start_monitoring train;
  let machine =
    Machine.create ~input:workload.Workload.default_input compiled.Compile.program
  in
  Diduce.attach train machine;
  ignore (Engine.run ~config:(Workload.pe_config ~mode workload) machine);
  Machine.release machine;
  List.sort_uniq compare
    (List.map
       (fun v -> (v.Diduce.addr, v.Diduce.surprise))
       (Diduce.nt_path_violations train))

let run_diduce () =
  Sink.printf
    "\n-- ext3: an assertion-free invariant detector (DIDUCE-style) --\n";
  let apps = [ Registry.schedule; Registry.schedule2; Registry.print_tokens2 ] in
  let rows =
    Exp_common.par_map
      (fun (workload : Workload.t) ->
        let noise = diduce_names workload ~bug:None ~mode:Pe_config.Standard in
        let semantic =
          List.filter (fun b -> b.Bug.kind = Bug.Semantic) workload.Workload.bugs
        in
        (* a bug registers when some violation is strictly more surprising
           than anything the bug-free binary produced at that address *)
        let exceeds noise (addr, surprise) =
          not
            (List.exists
               (fun (naddr, nsurprise) -> naddr = addr && nsurprise >= surprise)
               noise)
        in
        let caught =
          List.filter
            (fun (bug : Bug.t) ->
              let hits =
                diduce_names workload ~bug:(Some bug.Bug.version)
                  ~mode:Pe_config.Standard
              in
              List.exists (exceeds noise) hits)
            semantic
        in
        let baseline_caught =
          List.filter
            (fun (bug : Bug.t) ->
              diduce_names workload ~bug:(Some bug.Bug.version)
                ~mode:Pe_config.Baseline
              <> [])
            semantic
        in
        [
          workload.Workload.name;
          string_of_int (List.length semantic);
          string_of_int (List.length baseline_caught);
          string_of_int (List.length caught);
          String.concat " "
            (List.map (fun b -> Printf.sprintf "v%d" b.Bug.version) caught);
        ])
      apps
  in
  Table.print
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left ]
    ~header:
      [ "Application"; "semantic bugs"; "baseline"; "DIDUCE+PE"; "which" ]
    rows;
  Sink.print_endline
    "(no assertions compiled in: the invariant monitor alone, fed non-taken\n\
     paths by PathExpander, exposes the state-smashing bugs)"

(* ext4 — profile-guided consistency fixing (Section 4.4 future work:
   "rely on static analysis and value-invariants inference to pick a value
   satisfying not only the desired branch direction but also the normal
   value range and usage pattern of this variable"). The engine observes
   each fixable condition variable at branch time and fixes with an observed
   value satisfying the forced edge when one exists, falling back to the
   boundary stub otherwise. *)

let fixing_quality (workload : Workload.t) ~profiled =
  let bugs = Exp_common.bugs_for workload Codegen.Ccured in
  let per_bug =
    List.map
      (fun (bug : Bug.t) ->
        let config =
          {
            (Workload.pe_config workload) with
            Pe_config.profiled_fixing = profiled;
          }
        in
        let r =
          Exp_common.run_app ~detector:Codegen.Ccured ~bug:bug.Bug.version
            ~config workload
        in
        let analysis =
          Analysis.analyze ~compiled:r.Exp_common.compiled
            ~machine:r.Exp_common.machine ~bug
        in
        let records = r.Exp_common.result.Engine.nt_records in
        let crashes = List.length (List.filter Nt_path.is_crash records) in
        ( Analysis.false_positive_count analysis,
          (if Analysis.detected analysis then 1 else 0),
          Stats.pct ~num:crashes ~den:(max 1 (List.length records)),
          r.Exp_common.result.Engine.profiled_overrides ))
      bugs
  in
  let fps = Stats.mean_int (List.map (fun (f, _, _, _) -> f) per_bug) in
  let detected =
    List.fold_left ( + ) 0 (List.map (fun (_, d, _, _) -> d) per_bug)
  in
  let crash = Stats.mean (List.map (fun (_, _, c, _) -> c) per_bug) in
  let overrides =
    List.fold_left ( + ) 0 (List.map (fun (_, _, _, o) -> o) per_bug)
  in
  (fps, detected, crash, overrides)

let run_profiled_fixing () =
  Sink.printf
    "\n-- ext4: profile-guided consistency fixing (Section 4.4 future work) --\n";
  let apps = [ Registry.go; Registry.bc; Registry.man; Registry.print_tokens2 ] in
  let rows =
    Exp_common.par_map
      (fun (workload : Workload.t) ->
        let b_fp, b_det, b_crash, _ = fixing_quality workload ~profiled:false in
        let p_fp, p_det, p_crash, used = fixing_quality workload ~profiled:true in
        [
          workload.Workload.name;
          Table.f1 b_fp;
          Table.f1 p_fp;
          string_of_int b_det;
          string_of_int p_det;
          Table.fpct b_crash;
          Table.fpct p_crash;
          string_of_int used;
        ])
      apps
  in
  Table.print
    ~aligns:
      [
        Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right; Table.Right;
      ]
    ~header:
      [
        "Application";
        "FP (boundary)";
        "FP (profiled)";
        "det (boundary)";
        "det (profiled)";
        "crash (boundary)";
        "crash (profiled)";
        "overrides used";
      ]
    rows;
  Sink.print_endline
    "(profiled values come from each variable's observed history; detection\n\
     is unchanged and NT-Path crash behaviour stays comparable -- the deeper\n\
     inconsistency misses need the symbolic fixing the paper defers)"

let run () =
  Exp_common.heading "Extensions: the paper's future work, implemented";
  run_os_support ();
  run_random_selection ();
  run_diduce ();
  run_profiled_fixing ()

(** The experiment registry: every table and figure of the paper's
    evaluation, plus the future-work extensions, addressable by id. This is
    the single entry point behind both `bin/experiments.exe` and the bench
    harness. *)

type experiment = {
  id : string;  (** e.g. ["tab4"], ["fig3"], ["ext1"] *)
  title : string;
  run : unit -> unit;  (** prints the table(s)/series to stdout *)
}

val all : experiment list
val find : string -> experiment option

(** Run one experiment with its output captured instead of printed; returns
    exactly the bytes it would have written to stdout. *)
val capture : experiment -> string

(** Run a selection of experiments. [jobs] defaults to
    {!Exp_common.jobs}[ ()]; with [jobs > 1] the experiments are fanned
    across a domain pool and their captured outputs printed in list order,
    byte-identical to a serial run. *)
val run_list : ?jobs:int -> experiment list -> unit

(** Run everything, in presentation order. *)
val run_all : ?jobs:int -> unit -> unit

val ids : unit -> string list

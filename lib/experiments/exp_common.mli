(** Shared plumbing for the experiment modules. *)

type run = {
  compiled : Compile.compiled;
  machine : Machine.t;
  result : Engine.result;
}

(** Set the sweep-wide worker budget (the CLI's --jobs), clamped to >= 1.
    Call once before running experiments. *)
val set_jobs : int -> unit

(** Current worker budget (1 unless [set_jobs] raised it). *)
val jobs : unit -> int

(** Deterministic fan-out for workload×config sweeps: [par_map f xs] maps
    [f] over [xs] on up to [jobs ()] domains, returning results in input
    order — parallel sweeps print byte-identically to serial ones. Runs
    serially when the budget is 1 or when already inside a pool worker. *)
val par_map : ('a -> 'b) -> 'a list -> 'b list

(** Compile and execute one workload configuration. [config] overrides the
    workload's default PathExpander configuration ([mode] is ignored when
    [config] is given); [fixing] gates both the compiled stubs and the
    engine behaviour. *)
val run_app :
  ?detector:Codegen.detector ->
  ?fixing:bool ->
  ?bug:int ->
  ?mode:Pe_config.mode ->
  ?config:Pe_config.t ->
  ?input:string ->
  Workload.t ->
  run

(** Detectors that can see bugs of this kind, in presentation order. *)
val detectors_for_kind : Bug.kind -> Codegen.detector list

(** Table 4/5 row labels, e.g. ["Software Tool (CCured)"]. *)
val detector_label : Codegen.detector -> string

(** Bugs of the workload that the detector can detect. *)
val bugs_for : Workload.t -> Codegen.detector -> Bug.t list

val overhead_pct : baseline:int -> with_pe:int -> float
val heading : string -> unit

(* Table 4 — bug detection results of PathExpander: for every detection tool
   and buggy application, how many of the tested bugs the baseline monitored
   run exposes (none — the inputs are non-bug-triggering) and how many
   PathExpander exposes. *)

type row = {
  app : string;
  tested : int;
  baseline_detected : int;
  pe_detected : int;
}

let evaluate_bug (workload : Workload.t) detector (bug : Bug.t) =
  let test mode =
    let r =
      Exp_common.run_app ~detector ~bug:bug.Bug.version ~mode workload
    in
    let analysis =
      Analysis.analyze ~compiled:r.Exp_common.compiled
        ~machine:r.Exp_common.machine ~bug
    in
    Analysis.detected analysis
  in
  (test Pe_config.Baseline, test Pe_config.Standard)

let app_row detector (workload : Workload.t) =
  let bugs = Exp_common.bugs_for workload detector in
  (* per-bug fan-out: every (bug, mode) verdict is an independent pair of
     compile+run jobs *)
  let results = Exp_common.par_map (evaluate_bug workload detector) bugs in
  {
    app = workload.Workload.name;
    tested = List.length bugs;
    baseline_detected = List.length (List.filter fst results);
    pe_detected = List.length (List.filter snd results);
  }

let memory_apps () =
  List.filter
    (fun (w : Workload.t) ->
      List.exists (fun b -> b.Bug.kind = Bug.Memory) w.Workload.bugs)
    Registry.buggy_apps

let semantic_apps () =
  List.filter
    (fun (w : Workload.t) ->
      List.exists (fun b -> b.Bug.kind = Bug.Semantic) w.Workload.bugs)
    Registry.buggy_apps

let rows_for detector apps =
  List.map
    (fun w ->
      let row = app_row detector w in
      [
        Exp_common.detector_label detector;
        row.app;
        string_of_int row.tested;
        string_of_int row.baseline_detected;
        string_of_int row.pe_detected;
      ])
    apps

(* Unique-bug totals (memory bugs are tested by both CCured and iWatcher but
   counted once, as in the paper's "21 of 38"). *)
let unique_totals () =
  let count_for detector apps =
    List.fold_left
      (fun (tested, base, pe) w ->
        let row = app_row detector w in
        (tested + row.tested, base + row.baseline_detected, pe + row.pe_detected))
      (0, 0, 0) apps
  in
  let mem = count_for Codegen.Ccured (memory_apps ()) in
  let sem = count_for Codegen.Assertions (semantic_apps ()) in
  let (a, b, c), (d, e, f) = (mem, sem) in
  (a + d, b + e, c + f)

let run () =
  Exp_common.heading
    "Table 4: Bug detection results (non-bug-triggering inputs)";
  let rows =
    rows_for Codegen.Ccured (memory_apps ())
    @ rows_for Codegen.Iwatcher (memory_apps ())
    @ rows_for Codegen.Assertions (semantic_apps ())
  in
  Table.print
    ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:
      [ "Dynamic Tool"; "Application"; "#Bug Tested"; "Baseline"; "PathExpander" ]
    rows;
  let tested, base, pe = unique_totals () in
  Sink.printf
    "Distinct bugs: %d tested, %d detected by the baseline, %d detected with\n\
     PathExpander (memory bugs counted once across CCured and iWatcher).\n"
    tested base pe

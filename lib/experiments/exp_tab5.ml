(* Table 5 — false positives and bugs detected before and after the key
   variable consistency fix (Section 4.4), for the memory-bug applications
   under CCured and iWatcher. "Before" disables both the predicated fix
   stubs in the binary and the fixing behaviour in the engine; false
   positives count distinct non-bug report sites that fired only inside
   NT-Paths (PathExpander-induced, not the checker's own). *)

type cell = { fp : int; detected : int }

let evaluate (workload : Workload.t) detector ~fixing =
  let bugs = Exp_common.bugs_for workload detector in
  let per_bug =
    List.map
      (fun (bug : Bug.t) ->
        let r =
          Exp_common.run_app ~detector ~fixing ~bug:bug.Bug.version workload
        in
        let analysis =
          Analysis.analyze ~compiled:r.Exp_common.compiled
            ~machine:r.Exp_common.machine ~bug
        in
        ( Analysis.false_positive_count analysis,
          if Analysis.detected analysis then 1 else 0 ))
      bugs
  in
  {
    fp =
      int_of_float
        (Float.round (Stats.mean_int (List.map fst per_bug)));
    detected = List.fold_left ( + ) 0 (List.map snd per_bug);
  }

let run () =
  Exp_common.heading
    "Table 5: False-positive pruning by key-variable value fixing";
  let apps = Exp_tab4.memory_apps () in
  let make_rows detector =
    Exp_common.par_map
      (fun (w : Workload.t) ->
        let before = evaluate w detector ~fixing:false in
        let after = evaluate w detector ~fixing:true in
        ( [
            Exp_common.detector_label detector;
            w.Workload.name;
            string_of_int before.fp;
            string_of_int after.fp;
            string_of_int before.detected;
            string_of_int after.detected;
          ],
          (before, after) ))
      apps
  in
  let ccured = make_rows Codegen.Ccured in
  let iwatcher = make_rows Codegen.Iwatcher in
  let all = ccured @ iwatcher in
  let avg f =
    Stats.mean_int (List.map (fun (_, cells) -> f cells) all)
  in
  let rows =
    List.map fst all
    @ [
        [
          "Average";
          "";
          Table.f1 (avg (fun (b, _) -> b.fp));
          Table.f1 (avg (fun (_, a) -> a.fp));
          "";
          "";
        ];
      ]
  in
  Table.print
    ~aligns:
      [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:
      [
        "Detection Method";
        "Application";
        "#FP before";
        "#FP after";
        "#Bug before";
        "#Bug after";
      ]
    rows;
  Sink.print_endline
    "(the man bug is detected only after fixing: without it the forced edge\n\
     dereferences the NULL include pointer and the NT-Path crashes first)"

(* Section 7.6 (reconstructed) — effects of the PathExpander parameters:
   MaxNTPathLength, NTPathCounterThreshold and MaxNumNTPaths. The threshold
   sweep also demonstrates recovery of bc's hot-entry-edge bug once the
   threshold exceeds the edge's early exercise count.

   Every sweep fans its workload×config grid through [Exp_common.par_map]
   (one independent Machine.t per cell) and reassembles rows afterwards, so
   --jobs N runs the grid in parallel with byte-identical output. *)

let sweep_apps () = [ Registry.gzip; Registry.print_tokens; Registry.bc ]

let coverage_and_overhead (workload : Workload.t) config =
  let baseline =
    Exp_common.run_app ~mode:Pe_config.Baseline workload
  in
  let pe = Exp_common.run_app ~config workload in
  ( Coverage.combined_pct pe.Exp_common.result.Engine.coverage,
    Exp_common.overhead_pct
      ~baseline:baseline.Exp_common.result.Engine.total_cycles
      ~with_pe:pe.Exp_common.result.Engine.total_cycles,
    pe.Exp_common.result.Engine.spawns )

(* app-major cartesian grid, and its inverse: split the flat result list
   back into one chunk per app *)
let grid apps params =
  List.concat_map (fun w -> List.map (fun p -> (w, p)) params) apps

let rec chunk n xs =
  if xs = [] then []
  else begin
    let rec take k = function
      | x :: rest when k > 0 ->
        let hd, tl = take (k - 1) rest in
        (x :: hd, tl)
      | rest -> ([], rest)
    in
    let hd, tl = take n xs in
    hd :: chunk n tl
  end

let sweep_max_length () =
  Sink.printf "\n-- MaxNTPathLength sweep (standard configuration) --\n";
  let lengths = [ 100; 300; 1000; 3000 ] in
  let apps = sweep_apps () in
  let cells =
    Exp_common.par_map
      (fun ((workload : Workload.t), len) ->
        let config =
          {
            (Workload.pe_config workload) with
            Pe_config.max_nt_path_length = len;
          }
        in
        let cov, ovh, _ = coverage_and_overhead workload config in
        [ Table.fpct cov; Table.fpct ovh ])
      (grid apps lengths)
  in
  let rows =
    List.map2
      (fun (workload : Workload.t) row_cells ->
        workload.Workload.name :: List.concat row_cells)
      apps
      (chunk (List.length lengths) cells)
  in
  Table.print
    ~header:
      ("app (cov / overhead)"
      :: List.concat_map
           (fun l -> [ Printf.sprintf "%d cov" l; Printf.sprintf "%d ovh" l ])
           lengths)
    rows

let sweep_threshold () =
  Sink.printf
    "\n-- NTPathCounterThreshold sweep (coverage; bc hot-edge bug recovery) --\n";
  let thresholds = [ 1; 2; 5; 8; 16 ] in
  let apps = sweep_apps () in
  let cells =
    Exp_common.par_map
      (fun ((workload : Workload.t), t) ->
        let config =
          {
            (Workload.pe_config workload) with
            Pe_config.nt_counter_threshold = t;
          }
        in
        let cov, _, _ = coverage_and_overhead workload config in
        Table.fpct cov)
      (grid apps thresholds)
  in
  let rows =
    List.map2
      (fun (workload : Workload.t) row -> workload.Workload.name :: row)
      apps
      (chunk (List.length thresholds) cells)
  in
  Table.print ~header:("coverage" :: List.map string_of_int thresholds) rows;
  (* the bc hot-entry-edge bug (v2) versus the threshold *)
  let bug = Workload.find_bug Registry.bc 2 in
  let detect t =
    let config =
      {
        (Workload.pe_config Registry.bc) with
        Pe_config.nt_counter_threshold = t;
      }
    in
    let r =
      Exp_common.run_app ~detector:Codegen.Ccured ~bug:2 ~config Registry.bc
    in
    let analysis =
      Analysis.analyze ~compiled:r.Exp_common.compiled
        ~machine:r.Exp_common.machine ~bug
    in
    Analysis.detected analysis
  in
  let verdicts =
    Exp_common.par_map (fun t -> string_of_bool (detect t)) thresholds
  in
  Table.print
    ~header:("bc hot-edge bug detected" :: List.map string_of_int thresholds)
    [ "detected" :: verdicts ]

let sweep_max_paths () =
  Sink.printf "\n-- MaxNumNTPaths sweep (CMP option) --\n";
  let limits = [ 1; 4; 8; 32 ] in
  let apps = sweep_apps () in
  let cells =
    Exp_common.par_map
      (fun ((workload : Workload.t), limit) ->
        let baseline =
          Exp_common.run_app ~mode:Pe_config.Baseline workload
        in
        let config =
          {
            (Workload.pe_config ~mode:Pe_config.Cmp workload) with
            Pe_config.max_num_nt_paths = limit;
          }
        in
        let pe = Exp_common.run_app ~config workload in
        [
          Table.fpct
            (Exp_common.overhead_pct
               ~baseline:baseline.Exp_common.result.Engine.total_cycles
               ~with_pe:pe.Exp_common.result.Engine.total_cycles);
          string_of_int pe.Exp_common.result.Engine.skipped_spawns;
        ])
      (grid apps limits)
  in
  let rows =
    List.map2
      (fun (workload : Workload.t) row_cells ->
        workload.Workload.name :: List.concat row_cells)
      apps
      (chunk (List.length limits) cells)
  in
  Table.print
    ~header:
      ("app (overhead / skipped)"
      :: List.concat_map
           (fun l -> [ Printf.sprintf "%d ovh" l; Printf.sprintf "%d skip" l ])
           limits)
    rows

let run () =
  Exp_common.heading "Parameter study (Section 7.6)";
  sweep_max_length ();
  sweep_threshold ();
  sweep_max_paths ()

(* Section 7.4 (reconstructed) — execution overhead of PathExpander: the
   standard configuration (NT-Paths serialised on the primary core) versus
   the CMP optimisation (NT-Paths on idle cores). The paper reports less
   than 9.9% overhead with the CMP option. *)

type row = {
  app : string;
  baseline_cycles : int;
  standard_cycles : int;
  cmp_cycles : int;
  spawns : int;
}

let measure ?detector (workload : Workload.t) =
  let cycles mode =
    let r = Exp_common.run_app ?detector ~mode workload in
    (r.Exp_common.result.Engine.total_cycles, r.Exp_common.result.Engine.spawns)
  in
  let baseline_cycles, _ = cycles Pe_config.Baseline in
  let standard_cycles, spawns = cycles Pe_config.Standard in
  let cmp_cycles, _ = cycles Pe_config.Cmp in
  { app = workload.Workload.name; baseline_cycles; standard_cycles; cmp_cycles; spawns }

(* one pool worker per application; each measures its three modes on
   machines it owns *)
let rows ?detector apps =
  Exp_common.par_map
    (fun w ->
      let m = measure ?detector w in
      let std = Exp_common.overhead_pct ~baseline:m.baseline_cycles ~with_pe:m.standard_cycles in
      let cmp = Exp_common.overhead_pct ~baseline:m.baseline_cycles ~with_pe:m.cmp_cycles in
      ( [
          m.app;
          string_of_int m.baseline_cycles;
          string_of_int m.spawns;
          Table.fpct std;
          Table.fpct cmp;
        ],
        (std, cmp) ))
    apps

let run () =
  Exp_common.heading
    "Overhead (Section 7.4): PathExpander standard configuration vs CMP option";
  let all = rows Registry.perf_apps in
  let stds = List.map (fun (_, (s, _)) -> s) all in
  let cmps = List.map (fun (_, (_, c)) -> c) all in
  Table.print
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "Application"; "Baseline cycles"; "NT-Paths"; "Standard"; "CMP" ]
    (List.map fst all
    @ [
        [
          "Average";
          "";
          "";
          Table.fpct (Stats.mean stds);
          Table.fpct (Stats.mean cmps);
        ];
      ])

(* Section 4.2 design-choice ablation — following non-taken edges *inside*
   NT-Paths: the paper's gzip experiment found it enlarges branch coverage
   slightly (~2%) but raises the crash ratio of NT-Paths before 1000
   instructions from ~5% to ~16%, so PathExpander follows only taken edges
   within an NT-Path. *)

let measure (workload : Workload.t) ~follow =
  let config =
    {
      (Workload.pe_config workload) with
      Pe_config.follow_nontaken_in_nt = follow;
      max_nt_path_length = 1000;
    }
  in
  let r = Exp_common.run_app ~config workload in
  let records = r.Exp_common.result.Engine.nt_records in
  let crashes = List.length (List.filter Nt_path.is_crash records) in
  ( Coverage.combined_pct r.Exp_common.result.Engine.coverage,
    Stats.pct ~num:crashes ~den:(max 1 (List.length records)) )

let run () =
  Exp_common.heading
    "Ablation (Section 4.2): following non-taken edges inside NT-Paths";
  let rows =
    Exp_common.par_map
      (fun (workload : Workload.t) ->
        let cov_off, crash_off = measure workload ~follow:false in
        let cov_on, crash_on = measure workload ~follow:true in
        [
          workload.Workload.name;
          Table.fpct cov_off;
          Table.fpct cov_on;
          Table.fpct crash_off;
          Table.fpct crash_on;
        ])
      [ Registry.gzip; Registry.go; Registry.parser ]
  in
  Table.print
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:
      [
        "Application";
        "coverage (taken-only)";
        "coverage (forced)";
        "crash ratio (taken-only)";
        "crash ratio (forced)";
      ]
    rows;
  Sink.print_endline
    "(forcing cold edges inside NT-Paths buys little coverage but multiplies\n\
     the crash ratio — the reason the design follows only taken edges)"

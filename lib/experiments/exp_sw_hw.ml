(* Section 7.5 (reconstructed) — hardware versus software PathExpander: the
   same NT-Path policy implemented over PIN-style dynamic instrumentation
   pays its costs (dispatch dilation, per-branch analysis, checkpointing,
   restore-log maintenance) on the critical path. The paper reports that the
   hardware design's overhead is 3-4 orders of magnitude lower. *)

let measure (workload : Workload.t) =
  let hw_baseline =
    (Exp_common.run_app ~mode:Pe_config.Baseline workload).Exp_common.result
  in
  let hw_cmp =
    (Exp_common.run_app ~mode:Pe_config.Cmp workload).Exp_common.result
  in
  let compiled = Workload.compile workload in
  let machine =
    Machine.create ~input:workload.Workload.default_input compiled.Compile.program
  in
  let sw = Soft_engine.run ~config:(Workload.pe_config workload) machine in
  Machine.release machine;
  let hw_overhead =
    Exp_common.overhead_pct ~baseline:hw_baseline.Engine.total_cycles
      ~with_pe:hw_cmp.Engine.total_cycles
  in
  let sw_overhead = 100.0 *. (sw.Soft_engine.accounting.Pin_model.slowdown -. 1.0) in
  (hw_overhead, sw_overhead)

let run () =
  Exp_common.heading
    "Hardware vs software PathExpander (Section 7.5): overhead comparison";
  let rows =
    Exp_common.par_map
      (fun (workload : Workload.t) ->
        let hw, sw = measure workload in
        let ratio = if hw <= 0.0 then infinity else sw /. hw in
        ( [
            workload.Workload.name;
            Table.fpct hw;
            Printf.sprintf "%.0fx" (sw /. 100.0 +. 1.0);
            Table.fpct sw;
            (if ratio = infinity then "-"
             else Printf.sprintf "%.1f" (log10 ratio));
          ],
          (hw, sw) ))
      Registry.perf_apps
  in
  let hws = List.map (fun (_, (h, _)) -> h) rows in
  let sws = List.map (fun (_, (_, s)) -> s) rows in
  Table.print
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:
      [
        "Application";
        "HW (CMP) overhead";
        "SW slowdown";
        "SW overhead";
        "orders of magnitude";
      ]
    (List.map fst rows
    @ [
        [
          "Average";
          Table.fpct (Stats.mean hws);
          "";
          Table.fpct (Stats.mean sws);
          Printf.sprintf "%.1f" (log10 (Stats.mean sws /. Stats.mean hws));
        ];
      ])

(* Section 7.3 (reconstructed) — cumulative coverage over multiple inputs:
   50 randomly generated test cases per application (the Siemens suites and
   bc get generated cases, as in the paper), unioning branch coverage across
   runs. The paper reports a 19% average improvement after 50 inputs. *)

let checkpoints = [ 1; 5; 10; 25; 50 ]

let cumulative ?(inputs = 50) ?(seed = 7) (workload : Workload.t) =
  let rng = Rng.create seed in
  let compiled = Workload.compile workload in
  let acc = Coverage.create compiled.Compile.program in
  let at = Hashtbl.create 8 in
  for i = 1 to inputs do
    let input =
      if i = 1 then workload.Workload.default_input
      else workload.Workload.gen_input rng
    in
    let machine = Machine.create ~input compiled.Compile.program in
    let result = Engine.run ~config:(Workload.pe_config workload) machine in
    Machine.release machine;
    Coverage.merge_into ~dst:acc result.Engine.coverage;
    if List.mem i checkpoints then
      Hashtbl.replace at i (Coverage.taken_pct acc, Coverage.combined_pct acc)
  done;
  at

let run ?(inputs = 50) () =
  Exp_common.heading
    (Printf.sprintf
       "Cumulative coverage (Section 7.3): %d generated inputs per application"
       inputs);
  let apps =
    [
      Registry.print_tokens;
      Registry.print_tokens2;
      Registry.schedule;
      Registry.schedule2;
      Registry.bc;
    ]
  in
  let gains = ref [] in
  (* one worker per application; each app's 50-input loop is inherently
     serial (it accumulates one coverage union) *)
  let results =
    Exp_common.par_map
      (fun (w : Workload.t) -> (w, cumulative ~inputs w))
      apps
  in
  List.iter
    (fun ((workload : Workload.t), at) ->
      let cells =
        List.concat_map
          (fun cp ->
            match Hashtbl.find_opt at cp with
            | Some (base, pe) -> [ Table.fpct base; Table.fpct pe ]
            | None -> [ "-"; "-" ])
          checkpoints
      in
      (match Hashtbl.find_opt at inputs with
       | Some (base, pe) -> gains := (pe -. base) :: !gains
       | None -> ());
      Table.print
        ~header:
          ("inputs"
          :: List.concat_map
               (fun cp -> [ Printf.sprintf "%d base" cp; Printf.sprintf "%d PE" cp ])
               checkpoints)
        [ workload.Workload.name :: cells ];
      Sink.print_newline ())
    results;
  Sink.printf "Average cumulative improvement after %d inputs: %s\n" inputs
    (Table.fpct (Stats.mean !gains))

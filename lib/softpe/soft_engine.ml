(* The pure-software PathExpander implementation (Section 5).

   Functionally this mirrors the hardware standard configuration — NT-Paths
   are selected by the same exercise-history policy and run serially — but
   the mechanisms are the software ones: the spawn saves processor state into
   a checkpoint structure, the sandbox is a restore-log (writes go straight
   to memory, old values logged and replayed backwards at squash), and the
   exercise history lives in an instrumentation-side hash table rather than
   the BTB. The run is costed with {!Pin_model}. *)

type result = {
  outcome : Engine.outcome;
  coverage : Coverage.t;
  spawns : int;
  nt_records : Nt_path.record list;
  accounting : Pin_model.accounting;
}

(* Software exercise history: (branch pc, direction) -> count. Unlike the
   4-bit BTB counters this never overflows or aliases. Branch pcs are code
   indices, so a flat array indexed [2*pc + direction] replaces the hash
   table the instrumented binary would use — same counts, no hashing on the
   per-branch hot path. *)
type history = int array

let history_index pc dir = (2 * pc) + if dir then 1 else 0

let history_count (history : history) pc dir =
  history.(history_index pc dir)

let history_bump (history : history) pc dir =
  let i = history_index pc dir in
  history.(i) <- history.(i) + 1

let run_nt_path machine (config : Pe_config.t) coverage ~ctx ~entry ~spawn_br_pc
    ~forced_direction ~path_id =
  let saved = Context.checkpoint ctx in
  let sandbox = Context.make_write_log_sandbox ~path_id in
  Context.set_spawn_info sandbox ~br_pc:spawn_br_pc ~edge:forced_direction;
  Context.enter_sandbox ctx sandbox;
  ctx.Context.pc <- entry;
  ctx.Context.pred <- config.Pe_config.fixing;
  Coverage.record_nt coverage spawn_br_pc forced_direction;
  let start = ctx.Context.stats.Context.insns in
  let start_branches = ctx.Context.stats.Context.branches in
  let rec loop () =
    if
      ctx.Context.stats.Context.insns - start
      >= config.Pe_config.max_nt_path_length
    then Nt_path.T_max_length
    else begin
      Coverage.record_pc_nt coverage ctx.Context.pc;
      match Cpu.step machine ctx with
      | Cpu.Ev_normal -> loop ()
      | Cpu.Ev_branch ->
        Coverage.record_nt coverage ctx.Context.br_pc ctx.Context.br_taken;
        loop ()
      | Cpu.Ev_syscall sys -> Nt_path.T_unsafe sys
      | Cpu.Ev_halt -> Nt_path.T_program_end
      | Cpu.Ev_fault fault -> Nt_path.T_crash fault
      (* Sandboxed syscalls are reported without executing, so [Ev_exit] is
         unreachable here; degrade to the unsafe event rather than crash. *)
      | Cpu.Ev_exit _ -> Nt_path.T_unsafe Insn.Sys_exit
      (* Write-log sandboxes are unbounded ([sandbox_write] always returns
         true), so overflow is unreachable; treat it as the graceful
         NT-Path termination cause if the invariant ever breaks. *)
      | Cpu.Ev_overflow -> Nt_path.T_cache_overflow
    end
  in
  let termination = loop () in
  let nt_writes = Context.write_log_size sandbox in
  Context.rollback_write_log sandbox machine.Machine.mem;
  Context.undo_watches sandbox machine.Machine.watch;
  Context.exit_sandbox ctx;
  Context.restore ctx saved;
  {
    Nt_path.spawn_br_pc;
    forced_direction;
    entry_pc = entry;
    insns = ctx.Context.stats.Context.insns - start;
    cycles = 0;
    stores = nt_writes;
    branches = ctx.Context.stats.Context.branches - start_branches;
    squashed_lines = 0;  (* restore-log rollback: no cache lines to squash *)
    termination;
  }

let run ?(config = Pe_config.default) ?(model = Pin_model.default)
    ?(fuel = 100_000_000) machine =
  let program = machine.Machine.program in
  let ctx = Machine.main_context machine in
  let coverage = Coverage.create program in
  let history : history =
    Array.make (2 * Array.length program.Program.code) 0
  in
  let nt_records = ref [] in
  let spawns = ref 0 in
  let next_path_id = ref 0 in
  (* NT-Path work, separated from the taken path's own dynamic profile. *)
  let nt_insns = ref 0 in
  let nt_branches = ref 0 in
  let nt_writes = ref 0 in
  let handle_branch ~br_pc ~taken =
    Coverage.record_taken coverage br_pc taken;
    let forced_count = history_count history br_pc (not taken) in
    history_bump history br_pc taken;
    if
      config.Pe_config.mode <> Pe_config.Baseline
      && (config.Pe_config.spawn_everywhere
          || forced_count < config.Pe_config.nt_counter_threshold)
    then begin
      history_bump history br_pc (not taken);
      let entry = if taken then br_pc + 1 else ctx.Context.br_target in
      incr spawns;
      incr next_path_id;
      let record =
        run_nt_path machine config coverage ~ctx ~entry ~spawn_br_pc:br_pc
          ~forced_direction:(not taken)
          ~path_id:(((!next_path_id - 1) mod 255) + 1)
      in
      nt_records := record :: !nt_records;
      nt_insns := !nt_insns + record.Nt_path.insns;
      nt_branches := !nt_branches + record.Nt_path.branches;
      nt_writes := !nt_writes + record.Nt_path.stores
    end
  in
  let rec loop () =
    if ctx.Context.stats.Context.insns >= fuel then `Fuel_exhausted
    else begin
      Coverage.record_pc_taken coverage ctx.Context.pc;
      match Cpu.step machine ctx with
      | Cpu.Ev_normal | Cpu.Ev_syscall _ -> loop ()
      | Cpu.Ev_branch ->
        handle_branch ~br_pc:ctx.Context.br_pc ~taken:ctx.Context.br_taken;
        loop ()
      | Cpu.Ev_exit status -> `Exited status
      | Cpu.Ev_halt -> `Halted
      | Cpu.Ev_fault f -> `Faulted f
      (* The taken-path context is outside any sandbox here, so overflow is
         unreachable; fault gracefully instead of crashing. *)
      | Cpu.Ev_overflow -> `Faulted Cpu.Sandbox_overflow
    end
  in
  let outcome = loop () in
  (* The context ran both the taken path and (serially) every NT-Path; the
     taken path's own profile is the difference. *)
  let taken_insns = ctx.Context.stats.Context.insns - !nt_insns in
  let taken_branches = ctx.Context.stats.Context.branches - !nt_branches in
  let accounting =
    Pin_model.account model ~taken_insns ~taken_branches ~spawns:!spawns
      ~nt_insns:!nt_insns ~nt_branches:!nt_branches ~nt_writes:!nt_writes
  in
  {
    outcome;
    coverage;
    spawns = !spawns;
    nt_records = List.rev !nt_records;
    accounting;
  }

(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation (the
   same registry `bin/experiments.exe` exposes) — this is the output that
   EXPERIMENTS.md records against the paper.

   Part 2 times one representative kernel per table/figure with Bechamel, so
   regressions in the harness itself are visible: each kernel is the
   dominant simulation workload behind the corresponding experiment, scaled
   to microbenchmark size. *)

open Bechamel
open Toolkit

(* --- part 2: one Bechamel kernel per table/figure -------------------------- *)

let compile_once workload = Workload.compile workload

let pt_compiled = lazy (compile_once Registry.print_tokens)
let pt2_ccured =
  lazy (Workload.compile ~detector:Codegen.Ccured ~bug:10 Registry.print_tokens2)
let sched_compiled = lazy (compile_once Registry.schedule)

let run_engine ?(mode = Pe_config.Standard) compiled (workload : Workload.t) =
  let machine =
    Machine.create ~input:workload.Workload.default_input
      compiled.Compile.program
  in
  Engine.run ~config:(Workload.pe_config ~mode workload) machine

let bench_fig1 () =
  (* one detection run of the Figure 1 bug under CCured + PathExpander *)
  run_engine (Lazy.force pt2_ccured) Registry.print_tokens2

let bench_fig3 () =
  (* the crash-latency collection kernel: cold-edge spawning, no fixing *)
  let compiled = Lazy.force sched_compiled in
  let machine =
    Machine.create ~input:Registry.schedule.Workload.default_input
      compiled.Compile.program
  in
  Engine.run ~config:Pe_config.latency_study machine

let bench_tab2 () = Machine_config.to_rows Machine_config.default

let bench_tab3 () =
  (* Table 3's LOC column: source generation + line counting *)
  List.map Workload.loc Registry.buggy_apps

let bench_tab4 () =
  (* one bug-detection verdict *)
  let compiled = Lazy.force pt2_ccured in
  let machine =
    Machine.create ~input:Registry.print_tokens2.Workload.default_input
      compiled.Compile.program
  in
  let result =
    Engine.run ~config:(Workload.pe_config Registry.print_tokens2) machine
  in
  ignore result;
  Analysis.analyze ~compiled ~machine
    ~bug:(Workload.find_bug Registry.print_tokens2 10)

let tab5_nofix =
  lazy
    (Workload.compile ~detector:Codegen.Ccured ~fixing:false ~bug:10
       Registry.print_tokens2)

let bench_tab5 () =
  (* the before-fixing configuration of Table 5 *)
  let compiled = Lazy.force tab5_nofix in
  let machine =
    Machine.create ~input:Registry.print_tokens2.Workload.default_input
      compiled.Compile.program
  in
  let config =
    { (Workload.pe_config Registry.print_tokens2) with Pe_config.fixing = false }
  in
  Engine.run ~config machine

let bench_cov1 () =
  (* a coverage measurement run *)
  run_engine (Lazy.force pt_compiled) Registry.print_tokens

let cov2_rng = Rng.create 5

let bench_cov2 () =
  (* one generated-input run of the cumulative-coverage loop *)
  let compiled = Lazy.force pt_compiled in
  let input = Registry.print_tokens.Workload.gen_input cov2_rng in
  let machine = Machine.create ~input compiled.Compile.program in
  Engine.run ~config:(Workload.pe_config Registry.print_tokens) machine

let bench_ovh1 () =
  (* the CMP-option run of the overhead table *)
  run_engine ~mode:Pe_config.Cmp (Lazy.force sched_compiled) Registry.schedule

let bench_ovh2 () =
  (* the software-PathExpander run of the HW/SW comparison *)
  let compiled = Lazy.force pt_compiled in
  let machine =
    Machine.create ~input:Registry.print_tokens.Workload.default_input
      compiled.Compile.program
  in
  Soft_engine.run ~config:(Workload.pe_config Registry.print_tokens) machine

let bench_par1 () =
  (* one sweep point of the parameter study *)
  let compiled = Lazy.force sched_compiled in
  let machine =
    Machine.create ~input:Registry.schedule.Workload.default_input
      compiled.Compile.program
  in
  let config =
    {
      (Workload.pe_config Registry.schedule) with
      Pe_config.nt_counter_threshold = 8;
    }
  in
  Engine.run ~config machine

let bench_abl1 () =
  (* the forced-edge ablation configuration *)
  let compiled = Lazy.force sched_compiled in
  let machine =
    Machine.create ~input:Registry.schedule.Workload.default_input
      compiled.Compile.program
  in
  let config =
    {
      (Workload.pe_config Registry.schedule) with
      Pe_config.follow_nontaken_in_nt = true;
    }
  in
  Engine.run ~config machine

let kernels =
  Test.make_grouped ~name:"pathexpander"
    [
      Test.make ~name:"fig1-detection-run" (Staged.stage bench_fig1);
      Test.make ~name:"fig3-latency-study" (Staged.stage bench_fig3);
      Test.make ~name:"tab2-config-rows" (Staged.stage bench_tab2);
      Test.make ~name:"tab3-loc-count" (Staged.stage bench_tab3);
      Test.make ~name:"tab4-bug-verdict" (Staged.stage bench_tab4);
      Test.make ~name:"tab5-before-fixing" (Staged.stage bench_tab5);
      Test.make ~name:"cov1-coverage-run" (Staged.stage bench_cov1);
      Test.make ~name:"cov2-generated-input" (Staged.stage bench_cov2);
      Test.make ~name:"ovh1-cmp-run" (Staged.stage bench_ovh1);
      Test.make ~name:"ovh2-software-pe" (Staged.stage bench_ovh2);
      Test.make ~name:"par1-sweep-point" (Staged.stage bench_par1);
      Test.make ~name:"abl1-forced-edges" (Staged.stage bench_abl1);
    ]

let run_bechamel ~quota () =
  print_endline "\n=== Bechamel micro-benchmarks (one kernel per table/figure) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] kernels in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> est
          | Some _ | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Table.print
    ~aligns:[ Table.Left; Table.Right ]
    ~header:[ "kernel"; "time per run" ]
    (List.map
       (fun (name, ns) ->
         let human =
           if Float.is_nan ns then "-"
           else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; human ])
       rows);
  rows

(* Machine-readable benchmark trajectory: per-kernel ns/op from Bechamel plus
   the wall time of one full serial reproduction sweep, as sorted-key JSON.
   CI uploads this as an artifact so per-PR regressions are visible.

   [bench_schema_version] stamps the file so downstream comparisons can tell
   layouts apart; bump it whenever a key is added, removed or re-meaninged.
   Version 1 was the unstamped BENCH_PR2.json layout; version 3 added the
   optional [sweep_wall_baseline_s] (the pre-change sweep wall, passed with
   [--baseline] when regenerating after a performance change); version 4
   added [profile] (the dune build profile the binary was compiled with),
   [sweep_wall_runs_s] (every repeat's wall time, [--repeat N]) and
   [sweep_wall_median_s]/[sweep_wall_var_s2] — with repeats,
   [sweep_wall_s] itself is the minimum, the usual noise-robust statistic
   for a deterministic workload on a shared host; version 5 added the
   optimizer axis: [sweep_wall_o2_s]/[sweep_wall_o2_runs_s] (the same
   serial sweep compiled at -O2, min over the same repeat count) and
   [retired_insns] (per-workload dynamic retired instructions of one
   plain-CPU default-input run at -O0 and -O2, with totals and the
   aggregate reduction percentage); version 6 added the occupancy axis:
   [fast_tier_fraction] (fraction of simulated instructions — taken path
   plus NT-Paths, over one standard-mode default-input run of every
   registry workload — retired by the selective fast tier) and
   [memo_hit_rate] (fraction of primary-L1 probes answered by the MRU
   memo layer in the same runs). Both are deterministic, so CI gates on
   them directly rather than on a noisy wall time. *)
let bench_schema_version = 6

(* Dynamic retired instructions of one plain-CPU run per registry workload
   (default input, default compile options) at the given level — the -O2
   acceptance metric: the aggregate reduction must stay >= 15%. *)
let retired_insns level =
  List.map
    (fun (w : Workload.t) ->
      let compiled = Workload.compile ~opt:level w in
      let machine =
        Machine.create ~input:w.Workload.default_input
          compiled.Compile.program
      in
      let r = Cpu.run_baseline machine in
      (match r.Cpu.outcome with
       | `Halted | `Exited _ -> ()
       | `Faulted _ | `Fuel_exhausted ->
         invalid_arg ("bench: retired-insn run died: " ^ w.Workload.name));
      (w.Workload.name, r.Cpu.insns))
    Registry.all

(* Aggregate execution-tier and cache-memo occupancy over one standard-mode
   default-input run of every registry workload — the deterministic
   counters behind [fast_tier_fraction] and [memo_hit_rate]. The runs are
   simulation-exact, so these fractions are byte-stable across hosts and a
   drop is a real occupancy regression, never timing noise. *)
let occupancy_fractions () =
  let fast, insns, memo, probes =
    List.fold_left
      (fun (fast, insns, memo, probes) (w : Workload.t) ->
        let compiled = Workload.compile w in
        let machine =
          Machine.create ~input:w.Workload.default_input
            compiled.Compile.program
        in
        let _ = Engine.run ~config:(Workload.pe_config w) machine in
        Machine.release machine;
        let c = Telemetry.counter machine.Machine.telemetry in
        ( fast + c "selective.fast_insns" + c "nt.fast_insns",
          insns + c "taken.insns" + c "nt.insns",
          memo + c "l1.primary.memo_hits",
          probes + c "l1.primary.hits" + c "l1.primary.misses" ))
      (0, 0, 0, 0) Registry.all
  in
  let frac a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  (frac fast insns, frac memo probes)

let median sorted =
  let n = Array.length sorted in
  if n land 1 = 1 then sorted.(n / 2)
  else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.0

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let mean = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
    let ss =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 a
    in
    ss /. float_of_int (n - 1)
  end

let write_json ~path ~sweep_walls ~o2_walls ~baseline ~jobs rows =
  let sorted = Array.copy sweep_walls in
  Array.sort compare sorted;
  let sweep_wall_s = sorted.(0) in
  let o2_sorted = Array.copy o2_walls in
  Array.sort compare o2_sorted;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  Buffer.add_string buf
    (Printf.sprintf {|"schema":%d,"jobs":%d,"profile":"%s","kernels_ns":{|}
       bench_schema_version jobs Build_info.profile);
  List.iteri
    (fun i (name, ns) ->
      if i > 0 then Buffer.add_char buf ',';
      if Float.is_nan ns then
        Buffer.add_string buf (Printf.sprintf {|"%s":null|} name)
      else Buffer.add_string buf (Printf.sprintf {|"%s":%.1f|} name ns))
    (List.sort compare rows);
  Buffer.add_string buf
    (Printf.sprintf {|},"sweep_wall_s":%.3f|} sweep_wall_s);
  Buffer.add_string buf
    (Printf.sprintf {|,"sweep_wall_median_s":%.3f|} (median sorted));
  Buffer.add_string buf
    (Printf.sprintf {|,"sweep_wall_var_s2":%.4f|} (variance sweep_walls));
  Buffer.add_string buf {|,"sweep_wall_runs_s":[|};
  Array.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%.3f" w))
    sweep_walls;
  Buffer.add_char buf ']';
  Buffer.add_string buf
    (Printf.sprintf {|,"sweep_wall_o2_s":%.3f|} o2_sorted.(0));
  Buffer.add_string buf {|,"sweep_wall_o2_runs_s":[|};
  Array.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%.3f" w))
    o2_walls;
  Buffer.add_char buf ']';
  let o0 = retired_insns Opt.O0 and o2 = retired_insns Opt.O2 in
  let total l = List.fold_left (fun acc (_, n) -> acc + n) 0 l in
  let t0 = total o0 and t2 = total o2 in
  let level_json counts t =
    String.concat ","
      (List.map (fun (name, n) -> Printf.sprintf {|"%s":%d|} name n) counts
      @ [ Printf.sprintf {|"total":%d|} t ])
  in
  Buffer.add_string buf
    (Printf.sprintf
       {|,"retired_insns":{"O0":{%s},"O2":{%s},"reduction_pct":%.2f}|}
       (level_json o0 t0) (level_json o2 t2)
       (100.0 *. (float_of_int (t0 - t2)) /. float_of_int t0));
  let fast_tier_fraction, memo_hit_rate = occupancy_fractions () in
  Buffer.add_string buf
    (Printf.sprintf {|,"fast_tier_fraction":%.4f,"memo_hit_rate":%.4f|}
       fast_tier_fraction memo_hit_rate);
  (match baseline with
   | Some b -> Buffer.add_string buf (Printf.sprintf {|,"sweep_wall_baseline_s":%.3f|} b)
   | None -> ());
  Buffer.add_string buf "}";
  Buffer.add_char buf '\n';
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "\nwrote %s (sweep min %.2fs, -O2 leg %.2fs, over %d run%s, %s profile; \
     retired-insn reduction %.2f%%)\n"
    path sweep_wall_s o2_sorted.(0)
    (Array.length sweep_walls)
    (if Array.length sweep_walls = 1 then "" else "s")
    Build_info.profile
    (100.0 *. float_of_int (t0 - t2) /. float_of_int t0)

(* One timed serial sweep, optionally flight-recorded. The capture costs
   allocation and time, so the recorded sweep's wall time is measured but
   only the untraced configuration is comparable against historical BENCH
   files. [level] pins the optimizer level every compilation in the sweep
   uses (the -O2 leg of the trajectory); the process default is restored
   afterwards so Bechamel kernels keep benchmarking the reference
   emission. *)
let timed_sweep ?(level = Opt.O0) ~trace_dir () =
  Opt.set_default level;
  Fun.protect
    ~finally:(fun () -> Opt.set_default Opt.O0)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      (match trace_dir with
       | None -> Runner.run_all ~jobs:1 ()
       | Some dir ->
         let (), dumps =
           Recorder.capture_runs (fun () -> Runner.run_all ~jobs:1 ())
         in
         let files = Recorder.save_dir ~dir dumps in
         Printf.eprintf "traces: %d runs -> %s\n%!" (List.length files) dir);
      Unix.gettimeofday () -. t0)

let () =
  let json_path = ref "BENCH.json" in
  let smoke = ref false in
  let trace_dir = ref None in
  let baseline = ref None in
  let repeat = ref 1 in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
      json_path := path;
      parse rest
    | "--baseline" :: s :: rest ->
      baseline := Some (float_of_string s);
      parse rest
    | "--repeat" :: s :: rest ->
      let n = int_of_string s in
      if n < 1 then invalid_arg "bench: --repeat wants a positive count";
      repeat := n;
      parse rest
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--trace-dir" :: dir :: rest ->
      trace_dir := Some dir;
      parse rest
    | arg :: _ -> invalid_arg ("bench: unknown argument " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Tracing changes what a sweep costs, so repeated timing of a traced
     sweep would only measure the recorder; force a single run. *)
  if !trace_dir <> None then repeat := 1;
  print_endline "=== PathExpander: full reproduction of the evaluation ===";
  (* The whole bench runs serial — including nested fan-out inside
     experiments — so the sweep wall time in the JSON measures single-core
     simulator throughput and is comparable across hosts, and Bechamel
     timing is not polluted by sibling domains. *)
  Exp_common.set_jobs 1;
  let sweep_walls = Array.make !repeat 0.0 in
  let o2_walls = Array.make !repeat 0.0 in
  sweep_walls.(0) <- timed_sweep ~trace_dir:!trace_dir ();
  (* Repeats exist to reject scheduler noise on shared hosts: the sweep is
     deterministic, so min over repeats is the honest throughput figure.
     Later runs print the identical report, so silence stdout for them —
     as do all the -O2 legs, whose report is deterministic but
     intentionally different from the committed -O0 reference output. *)
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    (fun () ->
      for i = 1 to !repeat - 1 do
        sweep_walls.(i) <- timed_sweep ~trace_dir:None ()
      done;
      for i = 0 to !repeat - 1 do
        o2_walls.(i) <- timed_sweep ~level:Opt.O2 ~trace_dir:None ()
      done);
  let rows = run_bechamel ~quota:(if !smoke then 0.1 else 0.4) () in
  write_json ~path:!json_path ~sweep_walls ~o2_walls ~baseline:!baseline
    ~jobs:1 rows

(* Telemetry sink tests: counters, gauges, spans/timers, the JSON shape
   (sorted keys, escaping), aggregation and the global run collector. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_contains msg needle hay =
  Alcotest.(check bool) (msg ^ ": " ^ needle) true (contains ~needle hay)

let test_counters () =
  let t = Telemetry.create () in
  Alcotest.(check int) "untouched reads zero" 0 (Telemetry.counter t "a");
  Telemetry.incr t "a";
  Telemetry.incr t "a";
  Telemetry.count t "a" 5;
  Alcotest.(check int) "accumulates" 7 (Telemetry.counter t "a");
  Alcotest.(check int) "independent names" 0 (Telemetry.counter t "b")

let test_gauges () =
  let t = Telemetry.create () in
  Alcotest.(check (option (float 0.0))) "unset" None (Telemetry.gauge_value t "g");
  Telemetry.gauge t "g" 1.5;
  Telemetry.gauge t "g" 2.5;
  Alcotest.(check (option (float 1e-9))) "last write wins" (Some 2.5)
    (Telemetry.gauge_value t "g")

let test_span () =
  let t = Telemetry.create () in
  let v = Telemetry.span t "work" (fun () -> 41 + 1) in
  Alcotest.(check int) "span returns the result" 42 v;
  Alcotest.(check bool) "timer accumulated" true
    (Telemetry.timer_total t "work" >= 0.0);
  let v2 =
    Telemetry.span t "outer" (fun () ->
        Telemetry.span t "work" (fun () -> 1))
  in
  Alcotest.(check int) "nested span" 1 v2;
  Telemetry.timer_record t "ext" 0.25;
  Alcotest.(check (float 1e-9)) "recorded duration" 0.25
    (Telemetry.timer_total t "ext")

let test_span_reraises () =
  let t = Telemetry.create () in
  Alcotest.check_raises "exception passes through" Exit (fun () ->
      Telemetry.span t "boom" (fun () -> raise Exit))

let test_json_shape () =
  let t = Telemetry.create ~label:{|sched/"std"|} () in
  Telemetry.incr t "zeta";
  Telemetry.incr t "alpha";
  Telemetry.gauge t "rate" 0.5;
  ignore (Telemetry.span t "phase" (fun () -> ()));
  let json = Telemetry.to_json t in
  check_contains "label escaped" {|"label":"sched/\"std\""|} json;
  check_contains "counter" {|"alpha":1|} json;
  check_contains "gauge" {|"rate":0.5|} json;
  check_contains "timer fields" {|"count":1|} json;
  (* deterministic key order: sorted *)
  let ia = String.index json 'a' in
  Alcotest.(check bool) "alpha before zeta" true
    (contains ~needle:"alpha"
       (String.sub json ia (String.length json - ia))
    && not (contains ~needle:"zeta" (String.sub json 0 ia)))

let test_aggregate () =
  let mk n =
    let t = Telemetry.create ~label:(Printf.sprintf "run%d" n) () in
    Telemetry.count t "spawns" n;
    Telemetry.gauge t "pct" (float_of_int n);
    t
  in
  let json = Telemetry.aggregate_json [ mk 1; mk 3 ] in
  check_contains "run count" {|"runs":2|} json;
  check_contains "sum" {|"sum":4|} json;
  check_contains "mean" {|"mean":2|} json;
  check_contains "min" {|"min":1|} json;
  check_contains "max" {|"max":3|} json

let test_collector () =
  Alcotest.(check bool) "no collector installed" false (Telemetry.collecting ());
  let t1 = Telemetry.create ~label:"one" () in
  Telemetry.submit t1 (* no-op without a collector *);
  let (), runs =
    Telemetry.collect_runs (fun () ->
        Alcotest.(check bool) "collecting inside" true (Telemetry.collecting ());
        Telemetry.submit t1;
        Telemetry.submit (Telemetry.create ~label:"two" ()))
  in
  Alcotest.(check (list string)) "submission order" [ "one"; "two" ]
    (List.map Telemetry.label runs);
  Alcotest.(check bool) "cleared after" false (Telemetry.collecting ())

let test_collector_cleared_on_raise () =
  (try ignore (Telemetry.collect_runs (fun () -> raise Exit)) with Exit -> ());
  Alcotest.(check bool) "cleared on raise" false (Telemetry.collecting ())

let tests =
  [
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "gauges" `Quick test_gauges;
    Alcotest.test_case "spans and timers" `Quick test_span;
    Alcotest.test_case "span re-raises" `Quick test_span_reraises;
    Alcotest.test_case "json shape" `Quick test_json_shape;
    Alcotest.test_case "aggregate" `Quick test_aggregate;
    Alcotest.test_case "run collector" `Quick test_collector;
    Alcotest.test_case "collector cleared on raise" `Quick
      test_collector_cleared_on_raise;
  ]

(* Coverage Observatory tests: prime-path enumeration (directed units on
   textbook graphs with hand-checked counts, plus QCheck properties over
   random graphs), frontier attribution, observatory JSON, Prometheus
   exposition, and telemetry snapshot isolation. DESIGN.md §15. *)

let path_strings (paths : Cfg.paths) =
  Array.to_list paths.Cfg.all
  |> List.map (fun p ->
         String.concat "-"
           (Array.to_list (Array.map string_of_int p.Cfg.nodes)))
  |> List.sort compare

(* Diamond: 0 -> {1,2}, 1 -> 3, 2 -> 3. Prime paths: 0-1-3, 0-2-3. *)
let test_prime_diamond () =
  let cfg = Cfg.of_succs [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |] in
  let paths = Cfg.enumerate cfg in
  Alcotest.(check int) "truncated" 0 paths.Cfg.truncated;
  Alcotest.(check (list string))
    "prime paths"
    [ "0-1-3"; "0-2-3" ]
    (path_strings paths)

(* While loop: 0 -> 1; 1 -> {2,3}; 2 -> 1. Prime paths (Ammann–Offutt):
   0-1-2, 0-1-3, 2-1-3, 1-2-1, 2-1-2. *)
let test_prime_while () =
  let cfg = Cfg.of_succs [| [ 1 ]; [ 2; 3 ]; [ 1 ]; [] |] in
  let paths = Cfg.enumerate cfg in
  Alcotest.(check int) "truncated" 0 paths.Cfg.truncated;
  Alcotest.(check (list string))
    "prime paths"
    [ "0-1-2"; "0-1-3"; "1-2-1"; "2-1-2"; "2-1-3" ]
    (path_strings paths)

(* Nested loop:
     0 -> 1            entry
     1 -> {2,5}        outer header
     2 -> {3,4}        inner header
     3 -> 2            inner latch
     4 -> 1            outer latch
     5: exit
   Hand enumeration of maximal simple paths and simple cycles:
     dead-ends: 0-1-2-3 (3 -> 2 revisits), 0-1-2-4 is extendable to
       0-1-2-4 -> 1? revisits 1... so 0-1-2-4 dead-ends too; 0-1-5;
       0-1-2-3 and 0-1-2-4 and 3-2-4-1-5? start from 3: 3-2-4-1-5.
     cycles: 1-2-4-1, 2-4-1-2, 4-1-2-4, 2-3-2, 3-2-3, and rotations of the
       inner loop through the outer: 1-2-3? 3 -> 2 not 1, so no.
     other maximal simple paths: 3-2-4-1-5, 4-1-2-3, 0-1-2-3, 0-1-2-4,
       0-1-5, 3-2-4-1-5.
   Full set (9): 0-1-2-3, 0-1-2-4, 0-1-5, 1-2-4-1, 2-3-2, 2-4-1-2, 3-2-3,
     3-2-4-1-5, 4-1-2-3, 4-1-2-4.  That is 10 — verified below against the
     enumerator plus the subpath filter by hand:
     - 0-1-2-3: simple, 3's only succ 2 is visited -> maximal. prime.
     - 0-1-2-4: 4's succ 1 visited -> maximal. prime? contained in no other
       (paths through 0 must start at 0; 0-1-2-4 extended by 1 impossible).
     - 0-1-5: 5 exit -> maximal; not a subpath of anything longer (any
       superpath must prepend before 0: none). prime.
     - 4-1-2-3: simple, 3's succ 2 visited -> maximal; not a subpath (no
       edge into 4 except 2, and 2 already inside). Wait: 2 -> 4 exists, but
       2 is in the path, so no simple superpath. prime.
     - 3-2-4-1-5: maximal (5 exit); superpath would prepend 2 before 3 but
       2 is inside. prime.
     - cycles: 1-2-4-1, 2-4-1-2, 4-1-2-4 (outer, 3 rotations), 2-3-2,
       3-2-3 (inner, 2 rotations). All prime by definition.
   Total: 5 simple-path primes + 5 cycle primes = 10. *)
let test_prime_nested () =
  let cfg = Cfg.of_succs [| [ 1 ]; [ 2; 5 ]; [ 3; 4 ]; [ 2 ]; [ 1 ]; [] |] in
  let paths = Cfg.enumerate cfg in
  Alcotest.(check int) "truncated" 0 paths.Cfg.truncated;
  Alcotest.(check (list string))
    "prime paths"
    [
      "0-1-2-3";
      "0-1-2-4";
      "0-1-5";
      "1-2-4-1";
      "2-3-2";
      "2-4-1-2";
      "3-2-3";
      "3-2-4-1-5";
      "4-1-2-3";
      "4-1-2-4";
    ]
    (path_strings paths)

(* Straight line: one prime path, the whole chain. *)
let test_prime_chain () =
  let cfg = Cfg.of_succs [| [ 1 ]; [ 2 ]; [] |] in
  let paths = Cfg.enumerate cfg in
  Alcotest.(check (list string)) "prime paths" [ "0-1-2" ] (path_strings paths)

(* Self loop: 0 -> {0,1}. Primes: 0-0 (the self cycle) and 0-1. *)
let test_prime_self_loop () =
  let cfg = Cfg.of_succs [| [ 0; 1 ]; [] |] in
  let paths = Cfg.enumerate cfg in
  Alcotest.(check (list string))
    "prime paths" [ "0-0"; "0-1" ] (path_strings paths)

(* Truncation is reported, never silent: a dense graph under a tiny budget
   must set [truncated] > 0. *)
let test_prime_truncation () =
  let n = 9 in
  let succs =
    Array.init n (fun i -> List.filter (fun j -> j <> i) (List.init n Fun.id))
  in
  let cfg = Cfg.of_succs succs in
  let paths = Cfg.enumerate ~max_paths:50 cfg in
  Alcotest.(check bool) "truncated > 0" true (paths.Cfg.truncated > 0)

(* QCheck: prime paths of a random graph are simple (no repeated interior
   node), pairwise non-subpath, and every edge they traverse exists. *)
let gen_graph =
  QCheck.Gen.(
    sized_size (int_range 2 7) (fun n ->
        let* succs =
          array_repeat n
            (list_size (int_range 0 3) (int_range 0 (max 0 (n - 1))))
        in
        return (Array.map (List.sort_uniq compare) succs)))

let arb_graph =
  QCheck.make gen_graph ~print:(fun succs ->
      String.concat ";"
        (Array.to_list
           (Array.map
              (fun l -> String.concat "," (List.map string_of_int l))
              succs)))

let prop_primes_simple =
  QCheck.Test.make ~name:"prime paths are simple and edges exist" ~count:200
    arb_graph (fun succs ->
      let cfg = Cfg.of_succs succs in
      let paths = Cfg.enumerate ~max_paths:2_000 cfg in
      Array.for_all
        (fun (p : Cfg.prime) ->
          let nodes = p.Cfg.nodes in
          let len = Array.length nodes in
          let interior_simple =
            let seen = Hashtbl.create 8 in
            let ok = ref true in
            for i = 0 to len - 1 do
              (* first = last is allowed (cycle); any other repeat is not *)
              if Hashtbl.mem seen nodes.(i) then
                if not (i = len - 1 && nodes.(i) = nodes.(0)) then ok := false;
              Hashtbl.replace seen nodes.(i) ()
            done;
            !ok
          in
          let edges_exist =
            let ok = ref true in
            for i = 0 to len - 2 do
              if not (List.mem nodes.(i + 1) succs.(nodes.(i))) then
                ok := false
            done;
            !ok
          in
          interior_simple && edges_exist)
        paths.Cfg.all)

let prop_primes_maximal =
  QCheck.Test.make ~name:"prime paths are pairwise non-subpath" ~count:100
    arb_graph (fun succs ->
      let cfg = Cfg.of_succs succs in
      let paths = Cfg.enumerate ~max_paths:2_000 cfg in
      QCheck.assume (paths.Cfg.truncated = 0);
      let seqs = Array.map (fun p -> p.Cfg.nodes) paths.Cfg.all in
      let is_subpath sub sup =
        let ls = Array.length sub and lp = Array.length sup in
        ls < lp
        && begin
             let found = ref false in
             for i = 0 to lp - ls do
               let ok = ref true in
               for j = 0 to ls - 1 do
                 if sup.(i + j) <> sub.(j) then ok := false
               done;
               if !ok then found := true
             done;
             !found
           end
      in
      Array.for_all
        (fun a ->
          Array.for_all
            (fun b ->
              (* cycles may not be subpaths either, by primality *)
              not (is_subpath a b))
            seqs)
        seqs)

(* ---- Observatory snapshots ----------------------------------------------- *)

(* One observed run of a registry workload: arm the engine-side bookkeeping,
   run, snapshot, disarm. *)
let observed_snapshot ?(mode = Pe_config.Standard) name =
  let workload = Registry.find name in
  let compiled = Workload.compile workload in
  let machine =
    Machine.create ~input:workload.Workload.default_input
      compiled.Compile.program
  in
  let config = Workload.pe_config ~mode workload in
  Pe_config.set_obs_enabled true;
  Fun.protect
    ~finally:(fun () -> Pe_config.set_obs_enabled false)
    (fun () ->
      let result = Engine.run ~config machine in
      Obs.snapshot
        ~label:(name ^ "/" ^ Pe_config.mode_name mode)
        ~program:compiled.Compile.program ~machine ~result ~config)

let json_of snap =
  match Jsonu.parse (Obs.to_json snap) with
  | Ok v -> v
  | Error msg -> Alcotest.failf "snapshot does not parse: %s" msg

let jint v name =
  match Jsonu.member name v with
  | Some (Jsonu.Num n) -> int_of_float n
  | _ -> Alcotest.failf "missing integer member %s" name

let known_cause c =
  List.mem c
    [ "site-unreached"; "spawn-budget"; "no-spawning"; "spawn-threshold";
      "nt-unattributed" ]
  || (String.length c > 14 && String.sub c 0 14 = "nt-terminated:")

(* The structural invariants every snapshot must satisfy: the frontier is
   exactly the uncovered edges, each with one recognised cause; the cause
   histogram sums back to the frontier; prime-path coverage is a count out
   of the enumerated universe. *)
let test_snapshot_invariants () =
  let v = json_of (observed_snapshot "print_tokens2") in
  Alcotest.(check int) "schema" Obs.schema_version (jint v "schema");
  let edges = Option.get (Jsonu.member "edges" v) in
  let frontier =
    match Jsonu.member "frontier" v with
    | Some (Jsonu.Arr l) -> l
    | _ -> Alcotest.fail "frontier must be an array"
  in
  Alcotest.(check int) "frontier = universe - combined"
    (jint edges "universe" - jint edges "combined")
    (List.length frontier);
  List.iter
    (fun entry ->
      match Jsonu.member "cause" entry with
      | Some (Jsonu.Str c) ->
        Alcotest.(check bool) ("known cause " ^ c) true (known_cause c)
      | _ -> Alcotest.fail "frontier entry must carry a string cause")
    frontier;
  (match Jsonu.member "frontier_causes" v with
   | Some (Jsonu.Obj causes) ->
     let total =
       List.fold_left
         (fun acc (c, n) ->
           Alcotest.(check bool) ("known cause " ^ c) true (known_cause c);
           match n with Jsonu.Num n -> acc + int_of_float n | _ -> acc)
         0 causes
     in
     Alcotest.(check int) "causes sum to frontier" (List.length frontier)
       total
   | _ -> Alcotest.fail "frontier_causes must be an object");
  let pp = Option.get (Jsonu.member "prime_paths" v) in
  let enumerated = jint pp "enumerated" and covered = jint pp "covered" in
  Alcotest.(check bool) "0 <= covered <= enumerated" true
    (0 <= covered && covered <= enumerated);
  Alcotest.(check bool) "some prime paths enumerated" true (enumerated > 0)

(* Baseline mode never spawns: every executed-but-uncovered edge must be
   attributed to no-spawning, and nothing to an NT-Path. Standard mode has
   spawning, so no-spawning must not appear. *)
let test_attribution_modes () =
  let causes_of mode =
    match
      Jsonu.member "frontier_causes"
        (json_of (observed_snapshot ~mode "print_tokens2"))
    with
    | Some (Jsonu.Obj causes) -> List.map fst causes
    | _ -> Alcotest.fail "frontier_causes must be an object"
  in
  let baseline = causes_of Pe_config.Baseline in
  Alcotest.(check bool) "baseline: no-spawning present" true
    (List.mem "no-spawning" baseline);
  List.iter
    (fun c ->
      Alcotest.(check bool) ("baseline cause " ^ c) true
        (c = "no-spawning" || c = "site-unreached"))
    baseline;
  let standard = causes_of Pe_config.Standard in
  Alcotest.(check bool) "standard: no-spawning absent" false
    (List.mem "no-spawning" standard)

(* Identical runs render identical snapshot bytes. *)
let test_snapshot_deterministic () =
  let a = Obs.to_json (observed_snapshot "schedule") in
  let b = Obs.to_json (observed_snapshot "schedule") in
  Alcotest.(check string) "snapshot bytes stable" a b

(* The capture protocol: [capture_runs] arms the engine switch, collects one
   snapshot per experiment run, and disarms on the way out. *)
let test_capture_runs () =
  let (), snaps =
    Obs.capture_runs (fun () ->
        Alcotest.(check bool) "armed inside" true (Obs.armed ());
        Alcotest.(check bool) "engine switch on inside" true
          (Pe_config.obs_on ());
        ignore (Exp_common.run_app (Registry.find "schedule")))
  in
  Alcotest.(check bool) "disarmed after" false (Obs.armed ());
  Alcotest.(check bool) "engine switch off after" false (Pe_config.obs_on ());
  Alcotest.(check int) "one snapshot per run" 1 (List.length snaps);
  Alcotest.(check string) "labelled" "schedule/standard"
    (Obs.label (List.hd snaps))

(* ---- Prometheus exposition ------------------------------------------------ *)

let test_prometheus () =
  let t = Telemetry.create ~label:"app/standard" () in
  Telemetry.count t "nt.insns" 42;
  Telemetry.gauge t "fast.fraction" 0.5;
  Telemetry.observe t "spawn.len" 3;
  Telemetry.observe t "spawn.len" 200;
  let text = Telemetry.to_prometheus t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (let ln = String.length needle and lt = String.length text in
         let rec go i = i + ln <= lt && (String.sub text i ln = needle || go (i + 1)) in
         go 0))
    [
      "# TYPE pexp_nt_insns counter";
      {|pexp_nt_insns{run="app/standard"} 42|};
      {|pexp_fast_fraction{run="app/standard"} 0.5|};
      "# TYPE pexp_spawn_len histogram";
      {|pexp_spawn_len_count{run="app/standard"} 2|};
    ];
  Alcotest.(check string) "exposition deterministic" text
    (Telemetry.to_prometheus t)

(* ---- Telemetry reset and collector snapshot isolation --------------------- *)

let test_telemetry_reset () =
  let t = Telemetry.create ~label:"keep-me" () in
  Telemetry.count t "a" 7;
  Telemetry.gauge t "g" 1.5;
  Telemetry.observe t "h" 9;
  Telemetry.timer_record t "t" 0.25;
  Telemetry.reset t;
  Alcotest.(check string) "label survives" "keep-me" (Telemetry.label t);
  Alcotest.(check int) "counter cleared" 0 (Telemetry.counter t "a");
  Alcotest.(check bool) "gauge cleared" true (Telemetry.gauge_value t "g" = None);
  Alcotest.(check int) "hist cleared" 0 (Telemetry.hist_count t "h");
  Alcotest.(check string) "renders like a fresh sink"
    (Telemetry.to_json (Telemetry.create ~label:"keep-me" ()))
    (Telemetry.to_json t)

(* Regression: the global collector receives each run's sink exactly once,
   and nothing in the sweep funnel mutates a sink after submission — what a
   collector saw at submit time is what it holds at the end. (The sinks are
   shared by reference, so a post-submit [reset] *would* rewrite history;
   this pins that no engine/experiment code path does.) *)
let test_collector_snapshot_isolation () =
  let seen = ref [] in
  Telemetry.set_collector
    (Some (fun t -> seen := (t, Telemetry.to_json t) :: !seen));
  Fun.protect
    ~finally:(fun () -> Telemetry.set_collector None)
    (fun () ->
      ignore (Exp_common.run_app (Registry.find "schedule"));
      ignore (Exp_common.run_app (Registry.find "print_tokens")));
  let seen = List.rev !seen in
  Alcotest.(check int) "one submission per run" 2 (List.length seen);
  (match seen with
   | [ (t1, _); (t2, _) ] ->
     Alcotest.(check bool) "distinct sinks" false (t1 == t2)
   | _ -> ());
  List.iter
    (fun (t, at_submit) ->
      Alcotest.(check string)
        ("unchanged since submit: " ^ Telemetry.label t)
        at_submit (Telemetry.to_json t))
    seen

let tests =
  [
    Alcotest.test_case "prime: diamond" `Quick test_prime_diamond;
    Alcotest.test_case "prime: while loop" `Quick test_prime_while;
    Alcotest.test_case "prime: nested loop" `Quick test_prime_nested;
    Alcotest.test_case "prime: chain" `Quick test_prime_chain;
    Alcotest.test_case "prime: self loop" `Quick test_prime_self_loop;
    Alcotest.test_case "prime: truncation reported" `Quick
      test_prime_truncation;
    QCheck_alcotest.to_alcotest prop_primes_simple;
    QCheck_alcotest.to_alcotest prop_primes_maximal;
    Alcotest.test_case "snapshot: invariants" `Quick test_snapshot_invariants;
    Alcotest.test_case "snapshot: attribution by mode" `Quick
      test_attribution_modes;
    Alcotest.test_case "snapshot: deterministic bytes" `Quick
      test_snapshot_deterministic;
    Alcotest.test_case "snapshot: capture protocol" `Quick test_capture_runs;
    Alcotest.test_case "telemetry: prometheus exposition" `Quick
      test_prometheus;
    Alcotest.test_case "telemetry: reset" `Quick test_telemetry_reset;
    Alcotest.test_case "telemetry: collector snapshot isolation" `Quick
      test_collector_snapshot_isolation;
  ]

let () =
  Alcotest.run "pathexpander"
    [
      ("util", Test_util.tests);
      ("isa", Test_isa.tests);
      ("asm", Test_asm.tests);
      ("machine", Test_machine.tests);
      ("cpu", Test_cpu.tests);
      ("compiler", Test_compiler.tests);
      ("passes", Test_passes.tests);
      ("engine", Test_engine.tests);
      ("softpe", Test_softpe.tests);
      ("detectors", Test_detectors.tests);
      ("workloads", Test_workloads.tests);
      ("extensions", Test_extensions.tests);
      ("telemetry", Test_telemetry.tests);
      ("recorder", Test_recorder.tests);
      ("parallel", Test_parallel.tests);
      ("more", Test_more.tests);
      ("selective", Test_selective.tests);
      ("cache-properties", Test_cache_props.tests);
      ("cache-fastpath", Test_cache_fastpath.tests);
      ("properties", Test_props.tests);
      ("obs", Test_obs.tests);
    ]

(* Unit tests for the machine substrate: memory, caches, BTB, watchpoints,
   the report log and execution contexts. *)

let mem () = Memory.create ~globals_words:100 ~heap_words:1000 ~stack_words:1000

let test_memory_layout () =
  let m = mem () in
  Alcotest.(check int) "globals end" (Memory.null_guard + 100) m.Memory.globals_end;
  Alcotest.(check int) "heap base" m.Memory.globals_end m.Memory.heap_base;
  Alcotest.(check int) "stack base" (Memory.size m) m.Memory.stack_base

let test_memory_null_page () =
  let m = mem () in
  for addr = 0 to Memory.null_guard - 1 do
    Alcotest.(check bool) "null page invalid" false (Memory.is_valid m addr)
  done;
  Alcotest.(check bool) "first global valid" true
    (Memory.is_valid m Memory.null_guard);
  Alcotest.check_raises "null read" (Memory.Fault Memory.Null_access) (fun () ->
      ignore (Memory.read m 3))

let test_memory_out_of_range () =
  let m = mem () in
  Alcotest.check_raises "beyond space"
    (Memory.Fault (Memory.Out_of_range (Memory.size m)))
    (fun () -> Memory.write m (Memory.size m) 1);
  Alcotest.check_raises "negative" (Memory.Fault (Memory.Out_of_range (-5)))
    (fun () -> ignore (Memory.read m (-5)))

let test_memory_read_write () =
  let m = mem () in
  Memory.write m 20 123;
  Alcotest.(check int) "read back" 123 (Memory.read m 20);
  Memory.load_init m [ (21, 7); (22, 8) ];
  Alcotest.(check int) "init 21" 7 (Memory.read m 21);
  Alcotest.(check int) "init 22" 8 (Memory.read m 22)

let test_cache_hit_miss () =
  let c = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32 in
  Alcotest.(check bool) "first access misses" true (Cache.access c 100 = Cache.Miss);
  Alcotest.(check bool) "second access hits" true (Cache.access c 100 = Cache.Hit);
  Alcotest.(check bool) "same line hits" true (Cache.access c 103 = Cache.Hit);
  Alcotest.(check int) "hits" 2 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c)

let test_cache_eviction () =
  (* 1KB, 2-way, 32B lines: 32 lines, 16 sets; three lines mapping to the
     same set evict the LRU one *)
  let c = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32 in
  let words_per_line = 8 in
  let set_stride = 16 * words_per_line in
  let a = 0 and b = set_stride and d = 2 * set_stride in
  ignore (Cache.access c a);
  ignore (Cache.access c b);
  ignore (Cache.access c d);
  (* a was LRU: evicted *)
  Alcotest.(check bool) "a evicted" true (Cache.access c a = Cache.Miss);
  Alcotest.(check bool) "d stays" true (Cache.access c d = Cache.Hit)

let test_cache_versioning () =
  let c = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32 in
  ignore (Cache.access ~owner:3 c 0);
  ignore (Cache.access ~owner:3 c 64);
  ignore (Cache.access c 256);
  Alcotest.(check int) "owned lines" 2 (Cache.owned_lines c ~owner:3);
  Alcotest.(check int) "gang invalidate" 2 (Cache.gang_invalidate c ~owner:3);
  Alcotest.(check int) "none left" 0 (Cache.owned_lines c ~owner:3);
  Alcotest.(check bool) "invalidated line misses" true (Cache.access c 0 = Cache.Miss);
  Alcotest.(check bool) "committed line unaffected" true
    (Cache.access c 256 = Cache.Hit)

(* Ownership semantics across the hit/fill × read/write matrix: only
   NT-Path *fills and writes* create speculative data; a read hit must leave
   a committed line committed, or squashing the path would destroy
   architectural data it merely looked at. *)
let test_cache_read_hit_keeps_committed () =
  let c = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32 in
  ignore (Cache.access c 0);
  (* NT-Path 3 reads the committed line *)
  Alcotest.(check bool) "read hit" true (Cache.access ~owner:3 c 0 = Cache.Hit);
  Alcotest.(check int) "line stays committed" 0 (Cache.owned_lines c ~owner:3);
  Alcotest.(check int) "squash invalidates nothing" 0
    (Cache.gang_invalidate c ~owner:3);
  Alcotest.(check bool) "committed data survives the squash" true
    (Cache.access c 0 = Cache.Hit)

let test_cache_write_hit_takes_ownership () =
  let c = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32 in
  ignore (Cache.access c 0);
  ignore (Cache.access ~owner:3 ~write:true c 0);
  Alcotest.(check int) "write hit retags" 1 (Cache.owned_lines c ~owner:3);
  Alcotest.(check int) "squash removes it" 1 (Cache.gang_invalidate c ~owner:3);
  Alcotest.(check bool) "speculative line gone" true
    (Cache.access c 0 = Cache.Miss)

let test_cache_read_fill_takes_ownership () =
  (* a read *miss* inside the sandbox installs a speculative line, so the
     NT-Path cannot act as a prefetcher for the taken path *)
  let c = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32 in
  ignore (Cache.access ~owner:4 c 0);
  Alcotest.(check int) "fill owned by the path" 1 (Cache.owned_lines c ~owner:4);
  Alcotest.(check int) "squashed" 1 (Cache.gang_invalidate c ~owner:4);
  Alcotest.(check bool) "no warm line left behind" true
    (Cache.access c 0 = Cache.Miss)

let test_cache_occupancy () =
  let c = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32 in
  Alcotest.(check int) "capacity (1KB / 32B)" 32 (Cache.line_count c);
  Alcotest.(check int) "empty" 0 (Cache.valid_lines c);
  ignore (Cache.access c 0);
  ignore (Cache.access ~owner:2 c 64);
  Alcotest.(check int) "two lines installed" 2 (Cache.valid_lines c);
  ignore (Cache.gang_invalidate c ~owner:2);
  Alcotest.(check int) "one after squash" 1 (Cache.valid_lines c)

let test_cache_commit () =
  let c = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32 in
  ignore (Cache.access ~owner:5 c 0);
  Alcotest.(check int) "commit" 1 (Cache.commit_owner c ~owner:5);
  Alcotest.(check int) "no longer owned" 0 (Cache.owned_lines c ~owner:5);
  Alcotest.(check bool) "still cached" true (Cache.access c 0 = Cache.Hit)

let test_cache_no_allocate () =
  let c = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32 in
  Alcotest.(check bool) "probe misses" true
    (Cache.access ~allocate:false c 0 = Cache.Miss);
  Alcotest.(check bool) "still not installed" true
    (Cache.access ~allocate:false c 0 = Cache.Miss)

let test_cache_negative_address () =
  let c = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32 in
  (* must not raise even for nonsense addresses *)
  ignore (Cache.access c (-12345));
  ignore (Cache.access c max_int)

let test_btb_counters () =
  let btb = Btb.create ~entries:64 ~assoc:2 in
  Alcotest.(check (pair int int)) "miss reads zero" (0, 0) (Btb.counts btb 100);
  Btb.exercise btb 100 ~taken:true;
  Btb.exercise btb 100 ~taken:true;
  Btb.exercise btb 100 ~taken:false;
  Alcotest.(check (pair int int)) "counts" (2, 1) (Btb.counts btb 100)

let test_btb_saturation () =
  let btb = Btb.create ~entries:64 ~assoc:2 in
  for _ = 1 to 100 do
    Btb.exercise btb 5 ~taken:true
  done;
  let taken, _ = Btb.counts btb 5 in
  Alcotest.(check int) "saturates at 15" 15 taken

let test_btb_reset () =
  let btb = Btb.create ~entries:64 ~assoc:2 in
  Btb.exercise btb 7 ~taken:true;
  Btb.reset_counters btb;
  Alcotest.(check (pair int int)) "reset" (0, 0) (Btb.counts btb 7)

let test_btb_eviction () =
  (* 64 entries, 2-way: 32 sets; pcs 1, 33, 65 collide in set 1 *)
  let btb = Btb.create ~entries:64 ~assoc:2 in
  Btb.exercise btb 1 ~taken:true;
  Btb.exercise btb 33 ~taken:true;
  ignore (Btb.counts btb 1);
  (* 33 is now LRU; inserting 65 evicts it *)
  Btb.exercise btb 65 ~taken:true;
  Alcotest.(check (pair int int)) "evicted reads zero" (0, 0) (Btb.counts btb 33);
  Alcotest.(check (pair int int)) "survivor keeps count" (1, 0) (Btb.counts btb 1)

let test_btb_occupancy_saturation () =
  let btb = Btb.create ~entries:64 ~assoc:2 in
  Alcotest.(check int) "capacity" 64 (Btb.entry_count btb);
  Alcotest.(check int) "empty" 0 (Btb.valid_entries btb);
  Btb.exercise btb 1 ~taken:true;
  Btb.exercise btb 2 ~taken:false;
  Alcotest.(check int) "two valid" 2 (Btb.valid_entries btb);
  Alcotest.(check int) "none saturated" 0 (Btb.saturated_entries btb);
  (* pin both edges of branch 1 at the 4-bit maximum *)
  for _ = 1 to 20 do
    Btb.exercise btb 1 ~taken:true;
    Btb.exercise btb 1 ~taken:false
  done;
  Alcotest.(check int) "one fully saturated entry" 1 (Btb.saturated_entries btb);
  Btb.reset_counters btb;
  Alcotest.(check int) "reset clears saturation" 0 (Btb.saturated_entries btb);
  Alcotest.(check int) "entries stay valid across reset" 2
    (Btb.valid_entries btb)

let test_watchpoints () =
  let w = Watchpoints.create () in
  let entry = Watchpoints.watch w ~lo:100 ~hi:110 ~site:7 in
  Alcotest.(check bool) "inside" true (Watchpoints.is_watched w 105);
  Alcotest.(check bool) "hi exclusive" false (Watchpoints.is_watched w 110);
  Alcotest.(check (list int)) "hit site" [ 7 ]
    (Watchpoints.hit_sites w ~is_write:false 100);
  Watchpoints.undo w entry;
  Alcotest.(check bool) "undone" false (Watchpoints.is_watched w 105)

let test_watchpoint_modes () =
  let w = Watchpoints.create () in
  let _ =
    Watchpoints.watch ~mode:Watchpoints.Watch_write w ~lo:50 ~hi:60 ~site:1
  in
  let _ =
    Watchpoints.watch ~mode:Watchpoints.Watch_read w ~lo:50 ~hi:60 ~site:2
  in
  Alcotest.(check (list int)) "write hits write-mode" [ 1 ]
    (Watchpoints.hit_sites w ~is_write:true 55);
  Alcotest.(check (list int)) "read hits read-mode" [ 2 ]
    (Watchpoints.hit_sites w ~is_write:false 55)

let test_watchpoints_unwatch_undo () =
  let w = Watchpoints.create () in
  let _ = Watchpoints.watch w ~lo:10 ~hi:20 ~site:1 in
  let removed = Watchpoints.unwatch w ~lo:10 ~hi:20 in
  Alcotest.(check bool) "removed" false (Watchpoints.is_watched w 15);
  Watchpoints.undo w removed;
  Alcotest.(check bool) "restored" true (Watchpoints.is_watched w 15)

let test_report_log () =
  let log = Report.create () in
  Report.file log ~site:1 ~origin:Report.Taken_path ~pc:10 ~insn_index:100;
  Report.file log ~site:2 ~origin:(Report.Nt_path 3) ~pc:20 ~insn_index:200;
  Report.file log ~site:2 ~origin:(Report.Nt_path 4) ~pc:20 ~insn_index:300;
  Alcotest.(check int) "count" 3 (Report.count log);
  Alcotest.(check (list int)) "distinct" [ 1; 2 ] (Report.distinct_sites log);
  Alcotest.(check (list int)) "nt sites" [ 2 ] (Report.sites_from_nt_paths log);
  Alcotest.(check (list int)) "taken sites" [ 1 ]
    (Report.sites_from_taken_path log);
  Report.clear log;
  Alcotest.(check int) "cleared" 0 (Report.count log)

let test_context_regs () =
  let c = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32 in
  let ctx = Context.create ~l1:c ~pc:0 ~sp:1000 in
  Alcotest.(check int) "sp" 1000 (Context.get_reg ctx Reg.sp);
  Context.set_reg ctx Reg.zero 55;
  Alcotest.(check int) "zero stays zero" 0 (Context.get_reg ctx Reg.zero);
  Context.set_reg ctx (Reg.tmp 0) 42;
  Alcotest.(check int) "t0" 42 (Context.get_reg ctx (Reg.tmp 0))

let test_context_checkpoint () =
  let c = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32 in
  let ctx = Context.create ~l1:c ~pc:5 ~sp:1000 in
  Context.set_reg ctx (Reg.tmp 0) 1;
  let cp = Context.checkpoint ctx in
  Context.set_reg ctx (Reg.tmp 0) 99;
  ctx.Context.pc <- 77;
  ctx.Context.pred <- true;
  Context.restore ctx cp;
  Alcotest.(check int) "reg restored" 1 (Context.get_reg ctx (Reg.tmp 0));
  Alcotest.(check int) "pc restored" 5 ctx.Context.pc;
  Alcotest.(check bool) "pred restored" false ctx.Context.pred

let test_overlay_sandbox () =
  let m = mem () in
  Memory.write m 20 7;
  let sb = Context.make_sandbox ~path_id:1 ~line_limit:100 ~words_per_line:8 in
  Alcotest.(check bool) "write ok" true (Context.sandbox_write sb m 20 99);
  Alcotest.(check int) "memory unchanged" 7 (Memory.read m 20);
  let c = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32 in
  let ctx = Context.create ~l1:c ~pc:0 ~sp:0 in
  Context.enter_sandbox ctx sb;
  Alcotest.(check int) "overlay read" 99 (Context.read_mem ctx m 20);
  Alcotest.(check int) "non-written falls through" 0 (Context.read_mem ctx m 21)

let test_overlay_line_limit () =
  let m = mem () in
  let sb = Context.make_sandbox ~path_id:1 ~line_limit:2 ~words_per_line:8 in
  Alcotest.(check bool) "line 1" true (Context.sandbox_write sb m 16 1);
  Alcotest.(check bool) "line 2" true (Context.sandbox_write sb m 24 1);
  Alcotest.(check bool) "same line ok" true (Context.sandbox_write sb m 25 1);
  Alcotest.(check bool) "third line overflows" false
    (Context.sandbox_write sb m 32 1);
  Alcotest.(check int) "dirty lines" 3 (Context.dirty_line_count sb)

let test_write_log_sandbox () =
  let m = mem () in
  Memory.write m 20 7;
  Memory.write m 21 8;
  let sb = Context.make_write_log_sandbox ~path_id:1 in
  Alcotest.(check bool) "w1" true (Context.sandbox_write sb m 20 100);
  Alcotest.(check bool) "w2" true (Context.sandbox_write sb m 20 200);
  Alcotest.(check bool) "w3" true (Context.sandbox_write sb m 21 300);
  Alcotest.(check int) "write-through" 200 (Memory.read m 20);
  Alcotest.(check int) "log size" 3 (Context.write_log_size sb);
  Context.rollback_write_log sb m;
  Alcotest.(check int) "restored 20" 7 (Memory.read m 20);
  Alcotest.(check int) "restored 21" 8 (Memory.read m 21);
  Alcotest.(check int) "log emptied" 0 (Context.write_log_size sb)

let test_commit_sandbox () =
  let m = mem () in
  let sb = Context.make_sandbox ~path_id:1 ~line_limit:100 ~words_per_line:8 in
  ignore (Context.sandbox_write sb m 20 42);
  Context.commit_sandbox sb m;
  Alcotest.(check int) "committed" 42 (Memory.read m 20)

let tests =
  [
    Alcotest.test_case "memory layout" `Quick test_memory_layout;
    Alcotest.test_case "memory null page" `Quick test_memory_null_page;
    Alcotest.test_case "memory out of range" `Quick test_memory_out_of_range;
    Alcotest.test_case "memory read/write" `Quick test_memory_read_write;
    Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
    Alcotest.test_case "cache versioning" `Quick test_cache_versioning;
    Alcotest.test_case "cache read hit keeps committed" `Quick
      test_cache_read_hit_keeps_committed;
    Alcotest.test_case "cache write hit takes ownership" `Quick
      test_cache_write_hit_takes_ownership;
    Alcotest.test_case "cache read fill takes ownership" `Quick
      test_cache_read_fill_takes_ownership;
    Alcotest.test_case "cache occupancy" `Quick test_cache_occupancy;
    Alcotest.test_case "cache commit" `Quick test_cache_commit;
    Alcotest.test_case "cache no-allocate" `Quick test_cache_no_allocate;
    Alcotest.test_case "cache negative address" `Quick test_cache_negative_address;
    Alcotest.test_case "btb counters" `Quick test_btb_counters;
    Alcotest.test_case "btb saturation" `Quick test_btb_saturation;
    Alcotest.test_case "btb reset" `Quick test_btb_reset;
    Alcotest.test_case "btb eviction" `Quick test_btb_eviction;
    Alcotest.test_case "btb occupancy and saturation" `Quick
      test_btb_occupancy_saturation;
    Alcotest.test_case "watchpoints" `Quick test_watchpoints;
    Alcotest.test_case "watchpoint modes" `Quick test_watchpoint_modes;
    Alcotest.test_case "watchpoints unwatch undo" `Quick test_watchpoints_unwatch_undo;
    Alcotest.test_case "report log" `Quick test_report_log;
    Alcotest.test_case "context registers" `Quick test_context_regs;
    Alcotest.test_case "context checkpoint" `Quick test_context_checkpoint;
    Alcotest.test_case "overlay sandbox" `Quick test_overlay_sandbox;
    Alcotest.test_case "overlay line limit" `Quick test_overlay_line_limit;
    Alcotest.test_case "write-log sandbox" `Quick test_write_log_sandbox;
    Alcotest.test_case "commit sandbox" `Quick test_commit_sandbox;
  ]

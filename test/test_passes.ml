(* Nanopass pipeline tests: every pass exercised directly, the per-pass
   pretty-printers round-tripped through the front end, and the QCheck
   differential pinning -O2 to -O0 observables on the plain CPU. *)

let typed source =
  let user, tags = Parser.parse_string source in
  let prelude, _ =
    Parser.parse_string ~first_line:Prelude.first_line Prelude.source
  in
  Typecheck.check ~user ~prelude ~tags

let printed tp = Tast_print.program_to_string tp

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let check_contains name hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: expected %S in:\n%s" name needle hay

let check_absent name hay needle =
  if contains hay needle then
    Alcotest.failf "%s: expected %S absent from:\n%s" name needle hay

(* --- the tast passes, one direct test each ------------------------------- *)

let test_desugar () =
  let tp =
    typed
      "int main() {\n\
      \  int a;\n\
      \  a = getc();\n\
      \  if (!(a < 10)) { print_int(1); } else { print_int(2); }\n\
      \  { { print_int(3); } }\n\
      \  return 0;\n\
       }\n"
  in
  let out = printed (Desugar.run tp) in
  (* the logical-not is eliminated by swapping the branches *)
  check_absent "desugar" out "!";
  check_contains "desugar" out "if ((a < 10)) {\n    print_int(2);";
  (* nested bare blocks are flattened away *)
  check_absent "desugar" out "  {\n"

let test_uniquify () =
  let tp =
    typed
      "int x = 5;\n\
       int main() {\n\
      \  int x;\n\
      \  x = 7;\n\
      \  print_int(x);\n\
      \  return 0;\n\
       }\n"
  in
  let out = printed (Uniquify.run tp) in
  (* the local shadowing the global gets a fresh name *)
  check_contains "uniquify" out "int x__2;";
  check_contains "uniquify" out "print_int(x__2)"

let test_fold_const () =
  let tp =
    typed
      "int main() {\n\
      \  print_int(2 + 3 * 4);\n\
      \  print_int(1 ? 10 : 20);\n\
      \  if (0) { print_int(99); }\n\
      \  print_int(1 / 0);\n\
      \  return 0;\n\
       }\n"
  in
  let out = printed (Fold_const.run tp) in
  check_contains "fold" out "print_int(14)";
  check_contains "fold" out "print_int(10)";
  check_absent "fold" out "print_int(99)";
  (* division by zero is a runtime fault, never folded away *)
  check_contains "fold" out "(1 / 0)"

let test_dce () =
  let tp =
    typed
      "int main() {\n\
      \  int x;\n\
      \  x = getc();\n\
      \  x + 41;\n\
      \  if (x) { } else { }\n\
      \  x = x + 1;\n\
      \  return x;\n\
       }\n"
  in
  let out = printed (Dce.run tp) in
  (* pure expression statements and the empty pure-condition if are dropped *)
  check_absent "dce" out "41";
  check_absent "dce" out "if";
  check_contains "dce" out "(x = (x + 1))"

let test_unused_defs () =
  let tp =
    typed
      "int helper(int a) { return a * 2; }\n\
       int used(int a) { return a + 1; }\n\
       int main() { print_int(used(4)); return 0; }\n"
  in
  let out = printed (Unused_defs.run tp) in
  check_absent "unused-defs" out "helper";
  check_contains "unused-defs" out "int used(int a)"

let test_regalloc () =
  let tp =
    typed
      "int main() {\n\
      \  int i;\n\
      \  int sum;\n\
      \  int arr[4];\n\
      \  int *p;\n\
      \  p = &arr[0];\n\
      \  sum = 0;\n\
      \  for (i = 0; i < 10; i = i + 1) { sum = sum + i; }\n\
      \  print_int(sum);\n\
      \  return 0;\n\
       }\n"
  in
  let tp2 =
    Regalloc.run ~options:Instr_select.default_options ~level:Opt.O2 tp
  in
  let out = Tast_print.program_to_string ~annotate:true tp2 in
  (* the hot scalars leave the frame (the annotation names their register)... *)
  check_absent "regalloc" out "int i;  // fp";
  check_absent "regalloc" out "int sum;  // fp";
  check_contains "regalloc" out "int i;  // r1";
  (* ...while the array stays in the frame (aggregate, address taken) *)
  check_contains "regalloc" out "int arr[4];  // fp"

let test_instr_select_o0_identity () =
  let source =
    "int g = 3;\n\
     int main() {\n\
    \  int i;\n\
    \  for (i = 0; i < 4; i = i + 1) { g = g + i; }\n\
    \  print_int(g);\n\
    \  return 0;\n\
     }\n"
  in
  let tp = typed source in
  let via_passes = Lower.run (Instr_select.select tp) tp in
  let via_codegen = Codegen.generate tp in
  Alcotest.(check string)
    "O0 select+lower = reference emission"
    (Program.disassemble via_codegen)
    (Program.disassemble via_passes)

let run_program program input =
  let machine = Machine.create ~input program in
  let r = Cpu.run_baseline machine in
  let outcome =
    match r.Cpu.outcome with
    | `Halted -> "halted"
    | `Exited n -> Printf.sprintf "exited %d" n
    | `Faulted f -> "fault " ^ Cpu.fault_to_string f
    | `Fuel_exhausted -> "fuel"
  in
  (outcome, Machine.output machine)

let branchy_source =
  "int main() {\n\
  \  int i;\n\
  \  int acc;\n\
  \  acc = 0;\n\
  \  for (i = 0; i < 20; i = i + 1) {\n\
  \    if (i % 3 == 0) { acc = acc + i; }\n\
  \    else { if (i % 3 == 1) { acc = acc + 2; } else { acc = acc - 1; } }\n\
  \  }\n\
  \  print_int(acc);\n\
  \  return 0;\n\
   }\n"

let test_jump_opt () =
  let tp = typed branchy_source in
  let ap = Instr_select.select ~level:Opt.O1 tp in
  let opt = Jump_opt.run ap in
  let len a = Array.length a.Asmprog.code in
  if len opt >= len ap then
    Alcotest.failf "jump-opt: expected shrink, %d -> %d insns" (len ap)
      (len opt);
  let before = run_program (Lower.run ap tp) "" in
  let after = run_program (Lower.run opt tp) "" in
  Alcotest.(check (pair string string))
    "jump-opt preserves behavior" before after

let test_lower () =
  let tp = typed branchy_source in
  let program = Lower.run (Instr_select.select tp) tp in
  (* every control-flow target is a resolved, in-range pc *)
  Array.iter
    (fun insn ->
      match insn with
      | Insn.Br (_, _, _, t) | Insn.Jmp t | Insn.Call t ->
        if t < 0 || t >= Array.length program.Program.code then
          Alcotest.failf "lower: unresolved target %d" t
      | _ -> ())
    program.Program.code;
  Alcotest.(check (pair string string))
    "lowered program runs" ("halted", "71") (run_program program "")

(* --- printer round-trips -------------------------------------------------- *)

(* The tast printer emits parseable MiniC (for programs without structs,
   strings or globals, whose declarations it leaves to annotations):
   print . typecheck . parse . print is the identity on the printed form,
   after every prefix of the tast pipeline. *)
let roundtrip_source =
  "int twice(int v) { return v * 2; }\n\
   int main() {\n\
  \  int i;\n\
  \  int acc;\n\
  \  acc = 0;\n\
  \  for (i = 0; i < 6; i = i + 1) {\n\
  \    if (i % 2 == 0) { acc = acc + twice(i); } else { acc = acc - 1; }\n\
  \  }\n\
  \  while (acc > 100) { acc = acc / 2; }\n\
  \  print_int(acc);\n\
  \  return 0;\n\
   }\n"

let tast_pipeline_prefixes =
  [
    ("desugar", [ Desugar.run ]);
    ("uniquify", [ Desugar.run; Uniquify.run ]);
    ("fold-const", [ Desugar.run; Uniquify.run; Fold_const.run ]);
    ("dce", [ Desugar.run; Uniquify.run; Fold_const.run; Dce.run ]);
    ( "remove-unused-defs",
      [ Desugar.run; Uniquify.run; Fold_const.run; Dce.run; Unused_defs.run ]
    );
  ]

let test_printer_roundtrip () =
  List.iter
    (fun (name, passes) ->
      let tp =
        List.fold_left (fun tp pass -> pass tp) (typed roundtrip_source) passes
      in
      let once = printed tp in
      let again = printed (typed once) in
      Alcotest.(check string) ("round-trip after " ^ name) once again)
    tast_pipeline_prefixes

let test_asm_printer_roundtrip () =
  (* the asm-side printer round-trip: every instruction of a lowered -O2
     image reparses, through the assembler, to the identical instruction *)
  let tp = typed branchy_source in
  let options = Instr_select.default_options in
  let tp2 = Regalloc.run ~options ~level:Opt.O2 tp in
  let program = Lower.run (Jump_opt.run (Instr_select.select ~level:Opt.O2 tp2)) tp2 in
  Array.iteri
    (fun pc insn ->
      let text = Insn.to_string insn in
      let back = Asm.parse_insn text in
      if back <> insn then
        Alcotest.failf "asm round-trip at pc %d: %s" pc text)
    program.Program.code

let test_dump_pass_hook () =
  (* Pipeline.run reports every executed pass to [dump], in order *)
  let tp = typed roundtrip_source in
  let seen = ref [] in
  let dump name text =
    if text = "" then Alcotest.failf "empty dump for pass %s" name;
    seen := name :: !seen
  in
  ignore (Pipeline.run ~level:Opt.O2 ~dump tp);
  let order = List.rev !seen in
  Alcotest.(check (list string))
    "O2 dumps every pass" Pipeline.pass_names order;
  List.iter
    (fun name ->
      if not (List.mem name Pipeline.pass_names) then
        Alcotest.failf "dump reported unknown pass %s" name)
    order

(* --- the -O0 = -O2 QCheck differential ----------------------------------- *)

(* PR 4's random-program shape (test_selective.ml), enriched with locals the
   register allocator will promote and a helper call: iterated clauses of
   data-dependent branches, shifts and guarded divisions. *)
type clause = { mul : int; modulus : int; bound : int; shift : int }

let clause_src i cl =
  Printf.sprintf
    "    if ((i * %d) %% %d < %d) { acc = acc + ((i << %d) - (acc >> 1)); }\n\
    \    else { acc = acc - (i %% %d) - %d; }\n\
    \    if (acc %% 97 == %d) { acc = acc + step(i); }\n"
    cl.mul cl.modulus cl.bound cl.shift cl.modulus (i + 1)
    ((cl.mul + cl.bound) mod 97)

let program_src (iters, clauses) =
  Printf.sprintf
    "int last = 0;\n\
     int step(int i) { return 1000 / (1 + (i %% 7)); }\n\
     int main() {\n\
    \  int i;\n\
    \  int acc;\n\
    \  acc = 0;\n\
    \  for (i = 0; i < %d; i = i + 1) {\n\
     %s\
    \  }\n\
    \  last = acc;\n\
    \  print_int(acc);\n\
    \  return acc %% 5;\n\
     }\n"
    iters
    (String.concat "" (List.mapi clause_src clauses))

let clause_gen =
  QCheck.Gen.(
    map
      (fun (mul, modulus, bound, shift) ->
        { mul = 1 + mul; modulus = 2 + modulus; bound; shift })
      (quad (int_bound 6) (int_bound 7) (int_bound 9) (int_bound 5)))

let program_gen =
  QCheck.Gen.(
    pair
      (map (fun n -> 2 + n) (int_bound 18))
      (list_size (map (fun n -> 1 + n) (int_bound 3)) clause_gen))

(* Exit code, output, and the observable final memory: every named global of
   the image read back after the run. *)
let observables level source =
  let compiled = Compile.compile ~level source in
  let program = compiled.Compile.program in
  let machine = Machine.create program in
  let r = Cpu.run_baseline machine in
  let outcome =
    match r.Cpu.outcome with
    | `Halted -> "halted"
    | `Exited n -> Printf.sprintf "exited %d" n
    | `Faulted f -> "fault " ^ Cpu.fault_to_string f
    | `Fuel_exhausted -> "fuel"
  in
  let globals =
    List.map
      (fun (name, addr) -> (name, Memory.read machine.Machine.mem addr))
      program.Program.global_vars
  in
  (outcome, Machine.output machine, globals)

let prop_opt_differential =
  QCheck.Test.make ~name:"random programs: -O2 = -O0 observables" ~count:25
    (QCheck.make ~print:program_src program_gen) (fun params ->
      let source = program_src params in
      observables Opt.O0 source = observables Opt.O2 source)

let tests =
  [
    Alcotest.test_case "desugar eliminates ! and flattens blocks" `Quick
      test_desugar;
    Alcotest.test_case "uniquify renames shadowing locals" `Quick
      test_uniquify;
    Alcotest.test_case "fold-const folds, keeps faults" `Quick test_fold_const;
    Alcotest.test_case "dce drops pure statements" `Quick test_dce;
    Alcotest.test_case "remove-unused-defs drops uncalled functions" `Quick
      test_unused_defs;
    Alcotest.test_case "regalloc promotes hot scalars only" `Quick
      test_regalloc;
    Alcotest.test_case "instr-select at O0 matches reference emission" `Quick
      test_instr_select_o0_identity;
    Alcotest.test_case "jump-opt shrinks code, preserves behavior" `Quick
      test_jump_opt;
    Alcotest.test_case "lower resolves every target" `Quick test_lower;
    Alcotest.test_case "tast printers round-trip through the front end" `Quick
      test_printer_roundtrip;
    Alcotest.test_case "lowered instructions round-trip through the assembler"
      `Quick test_asm_printer_roundtrip;
    Alcotest.test_case "--dump-pass hook fires once per executed pass" `Quick
      test_dump_pass_hook;
    QCheck_alcotest.to_alcotest prop_opt_differential;
  ]

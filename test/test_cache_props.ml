(* Property tests for the cache's O(dirty-lines) owner operations: the
   journal-indexed gang_invalidate / commit_owner / owned_lines must be
   observationally identical to the Cache.Reference full-array sweeps under
   arbitrary interleavings of fills, write-hit retags, read hits, evictions,
   squashes and commits across several concurrent owners — plus regression
   tests for the stale-journal hazards (write-hit steals, path-id reuse
   after squash). *)

let qtest = QCheck_alcotest.to_alcotest

(* Small geometry so random addresses collide and evict: 1 KB, 2-way,
   32-byte lines -> 16 sets x 2 ways = 32 lines; addresses span 128 distinct
   lines. *)
let fresh_cache () = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32

type op =
  | Access of int * int * bool * bool  (* addr, owner, write, allocate *)
  | Squash of int
  | Commit of int
  | Owned of int

let op_to_string = function
  | Access (a, o, w, al) -> Printf.sprintf "A(%d,o%d,w%b,al%b)" a o w al
  | Squash o -> Printf.sprintf "S(o%d)" o
  | Commit o -> Printf.sprintf "C(o%d)" o
  | Owned o -> Printf.sprintf "O(o%d)" o

(* Three speculative owners (1..3) plus committed (0) on accesses. *)
let op_gen =
  QCheck.Gen.(
    frequency
      [
        ( 6,
          map
            (fun (a, (o, (w, al))) -> Access (a, o, w, al))
            (pair (int_bound 1023)
               (pair (int_bound 3) (pair bool (frequencyl [ (4, true); (1, false) ])))) );
        (1, map (fun o -> Squash (1 + o)) (int_bound 2));
        (1, map (fun o -> Commit (1 + o)) (int_bound 2));
        (1, map (fun o -> Owned o) (int_bound 3));
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat " " (List.map op_to_string ops))
    QCheck.Gen.(list_size (int_range 1 80) op_gen)

let snapshots_equal a b = Cache.snapshot a = Cache.snapshot b

(* Twin execution: [ca] uses the journal-indexed operations, [cb] the
   Reference sweeps. Every step must produce the same return value and leave
   the two caches in the same visible state. *)
let prop_indexed_ops_match_reference =
  QCheck.Test.make ~name:"indexed owner ops match Reference sweeps" ~count:300
    ops_arb (fun ops ->
      let ca = fresh_cache () in
      let cb = fresh_cache () in
      List.for_all
        (fun op ->
          let same_result =
            match op with
            | Access (addr, owner, write, allocate) ->
              Cache.access ~owner ~write ~allocate ca addr
              = Cache.access ~owner ~write ~allocate cb addr
            | Squash owner ->
              Cache.gang_invalidate ca ~owner
              = Cache.Reference.gang_invalidate cb ~owner
            | Commit owner ->
              Cache.commit_owner ca ~owner
              = Cache.Reference.commit_owner cb ~owner
            | Owned owner ->
              Cache.owned_lines ca ~owner = Cache.Reference.owned_lines cb ~owner
          in
          same_result && snapshots_equal ca cb
          && Cache.hits ca = Cache.hits cb
          && Cache.misses ca = Cache.misses cb
          (* the O(1) count agrees with a sweep of the same cache, too *)
          && List.for_all
               (fun o ->
                 Cache.owned_lines ca ~owner:o
                 = Cache.Reference.owned_lines ca ~owner:o)
               [ 0; 1; 2; 3 ])
        ops)

(* --- stale-journal regressions ---------------------------------------------- *)

(* A write hit by owner 8 steals a line owner 7 filled; 7's journal still
   mentions the line, but squashing 7 must not touch it. *)
let test_write_hit_steal () =
  let c = fresh_cache () in
  ignore (Cache.access ~owner:7 ~write:true c 0);
  ignore (Cache.access ~owner:8 ~write:true c 0);
  Alcotest.(check int) "7 owns nothing" 0 (Cache.owned_lines c ~owner:7);
  Alcotest.(check int) "squash of 7 clears nothing" 0 (Cache.gang_invalidate c ~owner:7);
  Alcotest.(check int) "8 still owns the line" 1 (Cache.owned_lines c ~owner:8);
  Alcotest.(check bool) "line still valid" true
    (Array.exists (fun (_, v, o, _) -> v && o = 8) (Cache.snapshot c))

(* Path-id reuse (the 8-bit id space wraps): after a path with id 7 is
   squashed, another path dirties the same line, then a brand-new path
   reuses id 7. The recycled id's squash must cover exactly the lines the
   *new* incarnation touched — the old incarnation's (cleared) journal must
   neither resurrect old lines nor invalidate other owners' data. *)
let test_path_id_wrap_stale_lines () =
  let c = fresh_cache () in
  (* first incarnation of id 7 dirties two lines, then squashes *)
  ignore (Cache.access ~owner:7 ~write:true c 0);
  ignore (Cache.access ~owner:7 ~write:true c 8);
  Alcotest.(check int) "first incarnation owns 2" 2 (Cache.owned_lines c ~owner:7);
  Alcotest.(check int) "squash clears 2" 2 (Cache.gang_invalidate c ~owner:7);
  (* a different path now owns line 0's address *)
  ignore (Cache.access ~owner:9 ~write:true c 0);
  (* id 7 is reused by a new path touching a fresh line *)
  ignore (Cache.access ~owner:7 ~write:true c 16);
  Alcotest.(check int) "reused id owns only its new line" 1
    (Cache.owned_lines c ~owner:7);
  Alcotest.(check int) "reference sweep agrees" 1
    (Cache.Reference.owned_lines c ~owner:7);
  Alcotest.(check int) "squash of reused id clears 1" 1
    (Cache.gang_invalidate c ~owner:7);
  Alcotest.(check int) "other path's line untouched" 1
    (Cache.owned_lines c ~owner:9);
  Alcotest.(check bool) "other path's line still valid" true
    (Array.exists (fun (_, v, o, _) -> v && o = 9) (Cache.snapshot c))

(* Commit-then-reuse: committed lines leave the journal behind too. *)
let test_commit_then_reuse () =
  let c = fresh_cache () in
  ignore (Cache.access ~owner:5 ~write:true c 0);
  Alcotest.(check int) "commit retags 1" 1 (Cache.commit_owner c ~owner:5);
  Alcotest.(check int) "committed line is owner 0" 1
    (Cache.owned_lines c ~owner:Cache.committed_owner);
  ignore (Cache.access ~owner:5 ~write:true c 8);
  Alcotest.(check int) "reused id squash leaves committed line" 1
    (Cache.gang_invalidate c ~owner:5);
  Alcotest.(check bool) "committed line survived" true
    (Array.exists
       (fun (_, v, o, _) -> v && o = Cache.committed_owner)
       (Cache.snapshot c))

let tests =
  qtest prop_indexed_ops_match_reference
  :: [
       Alcotest.test_case "write-hit steal leaves stale journal harmless"
         `Quick test_write_hit_steal;
       Alcotest.test_case "path-id wrap: reused id squashes only its own lines"
         `Quick test_path_id_wrap_stale_lines;
       Alcotest.test_case "commit then id reuse leaves committed data alone"
         `Quick test_commit_then_reuse;
     ]

(* Tests for the cache probe fast path (MRU line memo + direct-mapped tag
   filter): a memoized and a plain cache must be observationally identical
   under arbitrary multi-owner interleavings of accesses, squashes, commits
   and path-id reuse — plus directed tests for every memo invalidation
   hazard (squash-then-reread, commit retag, 8-bit path-id wrap, the
   fast-path toggle) and an end-to-end check that watchpoint stores are
   never hidden by the memo's batched accounting. *)

let qtest = QCheck_alcotest.to_alcotest

(* Same tiny geometry as test_cache_props: 16 sets x 2 ways = 32 lines,
   8 words (32 bytes) per line, addresses spanning 128 distinct lines. *)
let fresh_cache ~fastpath () =
  let c = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:32 in
  Cache.set_fastpath c fastpath;
  c

type op =
  | Access of int * int * bool * bool  (* addr, owner, write, allocate *)
  | Squash of int
  | Commit of int

let op_to_string = function
  | Access (a, o, w, al) -> Printf.sprintf "A(%d,o%d,w%b,al%b)" a o w al
  | Squash o -> Printf.sprintf "S(o%d)" o
  | Commit o -> Printf.sprintf "C(o%d)" o

(* Three speculative owners (1..3) plus committed (0); squash/commit make
   owner ids recycle mid-sequence, so the generator exercises the wrap
   hazard (a reused id re-acquiring lines while the memo remembers the old
   incarnation) without needing 256 spawns. *)
let op_gen =
  QCheck.Gen.(
    frequency
      [
        ( 8,
          map
            (fun (a, (o, (w, al))) -> Access (a, o, w, al))
            (pair (int_bound 1023)
               (pair (int_bound 3) (pair bool (frequencyl [ (4, true); (1, false) ])))) );
        (1, map (fun o -> Squash (1 + o)) (int_bound 2));
        (1, map (fun o -> Commit (1 + o)) (int_bound 2));
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat " " (List.map op_to_string ops))
    QCheck.Gen.(list_size (int_range 1 100) op_gen)

(* Twin execution, memoized vs plain. The memo skips LRU clock ticks for
   the hits it answers, so raw stamps diverge; [snapshot_canonical] (per-set
   LRU ranks) is the state both must agree on, along with every outcome,
   the hit/miss counters, and the per-owner line counts. *)
let prop_memoized_matches_plain =
  QCheck.Test.make ~name:"memoized cache matches plain cache" ~count:300
    ops_arb (fun ops ->
      let cf = fresh_cache ~fastpath:true () in
      let cp = fresh_cache ~fastpath:false () in
      List.for_all
        (fun op ->
          let same_result =
            match op with
            | Access (addr, owner, write, allocate) ->
              Cache.access_line cf addr ~owner ~write ~allocate
              = Cache.access_line cp addr ~owner ~write ~allocate
            | Squash owner ->
              Cache.gang_invalidate cf ~owner = Cache.gang_invalidate cp ~owner
            | Commit owner ->
              Cache.commit_owner cf ~owner = Cache.commit_owner cp ~owner
          in
          same_result
          && Cache.snapshot_canonical cf = Cache.snapshot_canonical cp
          && Cache.hits cf = Cache.hits cp
          && Cache.misses cf = Cache.misses cp
          && List.for_all
               (fun o -> Cache.owned_lines cf ~owner:o = Cache.owned_lines cp ~owner:o)
               [ 0; 1; 2; 3 ])
        ops)

(* [memo_probe]'s contract: answering [true] promises [access_line] is a
   hit with no state change beyond the hit counter — so probe-then-access
   must yield Hit with an unchanged canonical snapshot, and the batched
   [add_hits] flush must land the same counter value. *)
let prop_memo_probe_is_pure_hit =
  QCheck.Test.make ~name:"memo_probe implies pure hit" ~count:300 ops_arb
    (fun ops ->
      let c = fresh_cache ~fastpath:true () in
      List.for_all
        (fun op ->
          match op with
          | Access (addr, owner, write, allocate) ->
            if Cache.memo_probe c addr ~owner ~write then begin
              let before = Cache.snapshot_canonical c in
              let hits = Cache.hits c in
              Cache.access_line c addr ~owner ~write ~allocate = Cache.Hit
              && Cache.snapshot_canonical c = before
              && Cache.hits c = hits + 1
            end
            else begin
              ignore (Cache.access_line c addr ~owner ~write ~allocate);
              true
            end
          | Squash owner ->
            ignore (Cache.gang_invalidate c ~owner);
            true
          | Commit owner ->
            ignore (Cache.commit_owner c ~owner);
            true)
        ops)

(* --- directed invalidation edges -------------------------------------------- *)

(* Squash-then-reread: the squashed line is the memoized line; trusting the
   memo would fast-hit dead data. *)
let test_squash_then_reread () =
  let c = fresh_cache ~fastpath:true () in
  ignore (Cache.access_line c 0 ~owner:3 ~write:true ~allocate:true);
  Alcotest.(check bool) "line memoized" true
    (Cache.memo_probe c 0 ~owner:Cache.committed_owner ~write:false);
  Alcotest.(check int) "squash releases it" 1 (Cache.gang_invalidate c ~owner:3);
  Alcotest.(check bool) "memo killed by squash" false
    (Cache.memo_probe c 0 ~owner:Cache.committed_owner ~write:false);
  Alcotest.(check bool) "reread misses" true
    (Cache.access_line c 0 ~owner:Cache.committed_owner ~write:false
       ~allocate:true
     = Cache.Miss)

(* Commit retag: after the lazy commit the memo's owner mirror is stale — a
   same-owner write trusted against it would skip the retag-and-journal the
   now-committed line is due. *)
let test_commit_retag () =
  let c = fresh_cache ~fastpath:true () in
  ignore (Cache.access_line c 0 ~owner:5 ~write:true ~allocate:true);
  Alcotest.(check bool) "same-owner write memoized" true
    (Cache.memo_probe c 0 ~owner:5 ~write:true);
  Alcotest.(check int) "commit retags 1" 1 (Cache.commit_owner c ~owner:5);
  Alcotest.(check bool) "memo killed by commit" false
    (Cache.memo_probe c 0 ~owner:5 ~write:true);
  (* the write now re-acquires the committed line for owner 5 ... *)
  Alcotest.(check bool) "write hits" true
    (Cache.access_line c 0 ~owner:5 ~write:true ~allocate:true = Cache.Hit);
  Alcotest.(check int) "line retagged to 5" 1 (Cache.owned_lines c ~owner:5);
  Alcotest.(check int) "committed lost it" 0
    (Cache.owned_lines c ~owner:Cache.committed_owner);
  (* ... and the re-acquisition is journaled: squashing 5 must release it *)
  Alcotest.(check int) "squash of 5 releases the retagged line" 1
    (Cache.gang_invalidate c ~owner:5)

(* 8-bit path-id wrap: id 7 is squashed and later reused by a fresh path.
   The defensive zero-line cleanup squash the engine runs on wrap must keep
   the memo warm (it changed nothing), while the new incarnation's own
   lines memoize normally and the *old* incarnation's address misses. *)
let test_path_id_wrap_memoized_owner () =
  let c = fresh_cache ~fastpath:true () in
  (* first incarnation of id 7 *)
  ignore (Cache.access_line c 0 ~owner:7 ~write:true ~allocate:true);
  Alcotest.(check int) "incarnation 1 squashed" 1 (Cache.gang_invalidate c ~owner:7);
  (* id 7 reused: wrap runs a defensive cleanup squash first (releases 0) *)
  Alcotest.(check int) "wrap cleanup releases nothing" 0
    (Cache.gang_invalidate c ~owner:7);
  ignore (Cache.access_line c 256 ~owner:7 ~write:true ~allocate:true);
  Alcotest.(check bool) "new incarnation's line memoized" true
    (Cache.memo_probe c 256 ~owner:7 ~write:true);
  (* zero-line squash of an unrelated owner keeps the memo warm *)
  Alcotest.(check int) "empty squash of owner 6" 0 (Cache.gang_invalidate c ~owner:6);
  Alcotest.(check bool) "memo survives the no-op squash" true
    (Cache.memo_probe c 256 ~owner:7 ~write:true);
  (* the old incarnation's line is gone — no fast hit, a real miss *)
  Alcotest.(check bool) "old incarnation's address not memoized" false
    (Cache.memo_probe c 0 ~owner:7 ~write:false);
  Alcotest.(check bool) "old incarnation's address misses" true
    (Cache.access_line c 0 ~owner:7 ~write:false ~allocate:true = Cache.Miss)

(* The kill switch: disabling stops fast-path answers immediately, and
   re-enabling must not trust entries noted before the toggle. *)
let test_toggle_kills_memo () =
  let c = fresh_cache ~fastpath:true () in
  ignore (Cache.access_line c 0 ~owner:0 ~write:false ~allocate:true);
  Alcotest.(check bool) "memoized while on" true
    (Cache.memo_probe c 0 ~owner:0 ~write:false);
  Cache.set_fastpath c false;
  Alcotest.(check bool) "no probe while off" false
    (Cache.memo_probe c 0 ~owner:0 ~write:false);
  Cache.set_fastpath c true;
  Alcotest.(check bool) "stale entry not trusted on re-enable" false
    (Cache.memo_probe c 0 ~owner:0 ~write:false);
  ignore (Cache.access_line c 0 ~owner:0 ~write:false ~allocate:true);
  Alcotest.(check bool) "re-memoized by a real access" true
    (Cache.memo_probe c 0 ~owner:0 ~write:false)

(* --- watchpoint store on a memoized line ------------------------------------- *)

(* A store through a watched red zone whose cache line sits in the memo:
   the watch check is independent of the cache outcome, and segments with
   armed watchpoints never enter the batching fast tier, so the memo must
   not swallow the report. Run the iWatcher overflow workload end-to-end
   with the fast path on and off — identical reports, output and retired
   counts. *)
let run_iwatcher ~fastpath source =
  let saved = Cache.fastpath_enabled () in
  Cache.set_fastpath_enabled fastpath;
  Fun.protect
    ~finally:(fun () -> Cache.set_fastpath_enabled saved)
    (fun () ->
      let options = { Codegen.detector = Codegen.Iwatcher; fixing = true } in
      let compiled = Compile.compile ~options source in
      let machine = Machine.create ~input:"" compiled.Compile.program in
      let result = Engine.run ~config:Pe_config.default machine in
      (machine, result))

let test_watchpoint_store_fastpath_parity () =
  let source =
    {|
int smash(int n) {
  int buf[4];
  int i;
  for (i = 0; i <= n; i = i + 1) {
    buf[i] = i;
  }
  return buf[0];
}
int main() { return smash(4); }
|}
  in
  let m_on, r_on = run_iwatcher ~fastpath:true source in
  let m_off, r_off = run_iwatcher ~fastpath:false source in
  Alcotest.(check bool) "red zone fires with fast path on" true
    (Report.count m_on.Machine.reports > 0);
  Alcotest.(check int) "same report count"
    (Report.count m_off.Machine.reports)
    (Report.count m_on.Machine.reports);
  Alcotest.(check string) "same output" (Machine.output m_off)
    (Machine.output m_on);
  Alcotest.(check string) "same outcome"
    (Engine.outcome_name r_off.Engine.outcome)
    (Engine.outcome_name r_on.Engine.outcome);
  Alcotest.(check int) "same retired count" r_off.Engine.taken_insns
    r_on.Engine.taken_insns

let tests =
  [
    qtest prop_memoized_matches_plain;
    qtest prop_memo_probe_is_pure_hit;
    Alcotest.test_case "squash then reread misses" `Quick test_squash_then_reread;
    Alcotest.test_case "commit retag invalidates memo" `Quick test_commit_retag;
    Alcotest.test_case "path-id wrap with memoized owner" `Quick
      test_path_id_wrap_memoized_owner;
    Alcotest.test_case "fast-path toggle kills memo" `Quick
      test_toggle_kills_memo;
    Alcotest.test_case "watchpoint store parity, fast path on/off" `Quick
      test_watchpoint_store_fastpath_parity;
  ]

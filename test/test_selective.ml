(* Selective (fast/slow split) execution tests: the shift-mask regression,
   fault-arm audits, div-by-zero parity, BTB fused-operation equivalence,
   and the house invariant — every observable of a selective run is
   identical to the fully instrumented run, on the curated workloads and on
   randomly generated MiniC programs. *)

(* --- shift-mask regression -------------------------------------------------- *)

(* The shift amount is masked to the word size (63), not 62: a [land 62]
   mask zeroes bit 0, silently turning every odd shift amount into the next
   smaller even one — [shl x, 1] evaluated to [x]. Exercise both interpreter
   tiers' ALU evaluators on odd amounts. *)
let test_shift_mask () =
  List.iter
    (fun s ->
      Alcotest.(check (option int))
        (Printf.sprintf "eval_binop shl by %d" s)
        (Some (3 lsl s))
        (Insn.eval_binop Insn.Shl 3 s);
      Alcotest.(check int)
        (Printf.sprintf "eval_alu shl by %d" s)
        (3 lsl s)
        (Decode.eval_alu Insn.Shl 3 s);
      Alcotest.(check (option int))
        (Printf.sprintf "eval_binop shr by %d" s)
        (Some (-4096 asr s))
        (Insn.eval_binop Insn.Shr (-4096) s);
      Alcotest.(check int)
        (Printf.sprintf "eval_alu shr by %d" s)
        (-4096 asr s)
        (Decode.eval_alu Insn.Shr (-4096) s))
    [ 1; 3; 5; 33; 63 ]

let run_minic ?(selective = true) ?(input = "") source =
  let compiled = Compile.compile source in
  let machine = Machine.create ~input compiled.Compile.program in
  let config = { Pe_config.default with Pe_config.selective } in
  let result = Engine.run ~config machine in
  (machine, result)

(* shl x,1 must double x end-to-end, through the fast tier and the
   instrumented tier alike. *)
let test_shift_end_to_end () =
  let source =
    "int main() { int x = getc(); print_int((x << 1) + (x << 5)); return 0; }"
  in
  (* x = 65: << 1 gives 130, << 5 gives 2080. A [land 62] mask would print
     65 + 2080 = 2145 (shift by 1 -> 0) or 130 + 1040 (shift by 5 -> 4). *)
  List.iter
    (fun selective ->
      let machine, result = run_minic ~selective ~input:"A" source in
      Alcotest.(check string)
        (Printf.sprintf "doubled (selective=%b)" selective)
        "2210" (Machine.output machine);
      Alcotest.(check string) "halted"
        (Engine.outcome_name `Halted)
        (Engine.outcome_name result.Engine.outcome))
    [ true; false ]

(* --- div-by-zero parity ------------------------------------------------------ *)

(* The fast tier checks the divisor *before* committing anything and defers
   the faulting instruction to the instrumented tier, so a division by zero
   must fault at the same retired-instruction count, with the same partial
   output, under both modes. *)
let test_div_by_zero_parity () =
  let source =
    "int main() { int d = getc(); print_int(7); print_int(100 / (d - 48));\n\
     return 0; }"
  in
  let m_off, r_off = run_minic ~selective:false ~input:"0" source in
  let m_on, r_on = run_minic ~selective:true ~input:"0" source in
  Alcotest.(check string) "faults"
    (Engine.outcome_name (`Faulted Cpu.Div_by_zero))
    (Engine.outcome_name r_off.Engine.outcome);
  Alcotest.(check string) "same outcome"
    (Engine.outcome_name r_off.Engine.outcome)
    (Engine.outcome_name r_on.Engine.outcome);
  Alcotest.(check int) "same insns" r_off.Engine.taken_insns
    r_on.Engine.taken_insns;
  Alcotest.(check int) "same cycles" r_off.Engine.taken_cycles
    r_on.Engine.taken_cycles;
  Alcotest.(check string) "same partial output" (Machine.output m_off)
    (Machine.output m_on)

(* --- fault-arm audits -------------------------------------------------------- *)

(* [Cpu.exec] must report a sandboxed syscall as [Ev_syscall] *without*
   executing it — the invariant that makes [Ev_exit] unreachable from
   NT-Path execution (Nt_path.run degrades it to an unsafe event rather
   than [assert false]). *)
let test_sandboxed_syscall_reported_not_executed () =
  let compiled = Compile.compile "int main() { exit(3); return 0; }" in
  let machine = Machine.create compiled.Compile.program in
  let ctx = Machine.main_context machine in
  let sandbox =
    Context.make_sandbox ~path_id:1 ~line_limit:4 ~words_per_line:4
  in
  Context.enter_sandbox ctx sandbox;
  let rec step_to_event n =
    if n > 1000 then Alcotest.fail "no syscall within 1000 steps"
    else
      match Cpu.step machine ctx with
      | Cpu.Ev_normal | Cpu.Ev_branch -> step_to_event (n + 1)
      | ev -> ev
  in
  (match step_to_event 0 with
   | Cpu.Ev_syscall Insn.Sys_exit -> ()
   | Cpu.Ev_exit _ -> Alcotest.fail "sandboxed exit was executed"
   | _ -> Alcotest.fail "expected Ev_syscall Sys_exit");
  Context.exit_sandbox ctx

(* A write-log sandbox rolls back from its log and has no line budget, so
   its writes can never overflow; only overlay writes can return false. *)
let test_sandbox_overflow_arms () =
  let mem = Memory.create ~globals_words:256 ~heap_words:1024 ~stack_words:256 in
  let overlay = Context.make_sandbox ~path_id:1 ~line_limit:1 ~words_per_line:4 in
  let a0 = Memory.null_guard in
  let a1 = Memory.null_guard + 64 in
  Alcotest.(check bool) "first line fits" true
    (Context.sandbox_write overlay mem a0 11);
  Alcotest.(check bool) "second line overflows" false
    (Context.sandbox_write overlay mem a1 22);
  (* overlay writes are buffered: memory unchanged either way *)
  Alcotest.(check int) "memory untouched" 0 (Memory.read mem a0);
  let wlog = Context.make_write_log_sandbox ~path_id:2 in
  let ok = ref true in
  for i = 0 to 63 do
    ok := !ok && Context.sandbox_write wlog mem (a0 + i) i
  done;
  Alcotest.(check bool) "write-log never overflows" true !ok

(* --- BTB fused operations ---------------------------------------------------- *)

let btb_ops_gen =
  QCheck.Gen.(list_size (int_bound 300) (pair (int_bound 40) bool))

let btb_state btb =
  let probes = List.init 41 (fun pc -> Btb.probe_counts btb pc) in
  (Btb.lookups btb, Btb.miss_count btb, Btb.valid_entries btb,
   Btb.saturated_entries btb, probes)

let prop_lookup_exercise_equiv =
  QCheck.Test.make ~name:"lookup_exercise = counts; exercise" ~count:100
    (QCheck.make btb_ops_gen) (fun ops ->
      let b1 = Btb.create ~entries:16 ~assoc:2 in
      let b2 = Btb.create ~entries:16 ~assoc:2 in
      List.iter
        (fun (pc, taken) ->
          ignore (Btb.counts b1 pc);
          Btb.exercise b1 pc ~taken;
          Btb.lookup_exercise b2 pc ~taken)
        ops;
      btb_state b1 = btb_state b2)

let prop_probe_exercise_equiv =
  QCheck.Test.make
    ~name:"probe_exercise = probe_counts, then lookup_exercise if rejected"
    ~count:100
    (QCheck.make QCheck.Gen.(pair (int_bound 16) btb_ops_gen))
    (fun (threshold, ops) ->
      let b1 = Btb.create ~entries:16 ~assoc:2 in
      let b2 = Btb.create ~entries:16 ~assoc:2 in
      let reference btb pc ~taken =
        match Btb.probe_counts btb pc with
        | None -> true
        | Some (tc, ntc) ->
          let forced = if taken then ntc else tc in
          if forced < threshold then true
          else begin
            Btb.lookup_exercise btb pc ~taken;
            false
          end
      in
      List.for_all
        (fun (pc, taken) ->
          Btb.probe_exercise b1 pc ~taken ~threshold
          = reference b2 pc ~taken)
        ops
      && btb_state b1 = btb_state b2)

(* --- selective/instrumented differential ------------------------------------- *)

(* Every observable of an engine run, bundled for structural comparison. *)
let observables machine (result : Engine.result) =
  ( Engine.outcome_name result.Engine.outcome,
    ( result.Engine.taken_insns,
      result.Engine.taken_branches,
      result.Engine.taken_stores,
      result.Engine.taken_cycles,
      result.Engine.total_cycles ),
    (result.Engine.spawns, result.Engine.skipped_spawns,
     result.Engine.profiled_overrides),
    ( Coverage.taken_edges result.Engine.coverage,
      Coverage.combined_edges result.Engine.coverage ),
    Report.entries machine.Machine.reports,
    Machine.output machine )

let run_traced ~selective ~config ~input compiled =
  Recorder.capture_runs (fun () ->
      let machine = Machine.create ~input compiled.Compile.program in
      let result =
        Engine.run ~config:{ config with Pe_config.selective } machine
      in
      (machine, result))

(* One workload under one configuration: run fully instrumented and
   selectively, then demand identical observables — including the flight
   recorder's event stream. *)
let check_differential name ?detector ?bug ~config workload =
  let compiled = Workload.compile ?detector ?bug workload in
  let input = workload.Workload.default_input in
  let (m_off, r_off), dumps_off =
    run_traced ~selective:false ~config ~input compiled
  in
  let (m_on, r_on), dumps_on =
    run_traced ~selective:true ~config ~input compiled
  in
  Alcotest.(check bool)
    (name ^ ": observables identical")
    true
    (observables m_off r_off = observables m_on r_on);
  Alcotest.(check (list string))
    (name ^ ": recorder streams identical")
    (List.map Recorder.jsonl_of_dump dumps_off)
    (List.map Recorder.jsonl_of_dump dumps_on);
  (r_off, r_on)

let test_differential_workloads () =
  let pt = Registry.print_tokens in
  let cfg = Workload.pe_config pt in
  (* Standard mode: the fast tier must both engage and deoptimize. *)
  let _, r_on = check_differential "standard" ~config:cfg pt in
  Alcotest.(check bool) "fast tier engaged" true (r_on.Engine.fast_insns > 0);
  Alcotest.(check bool) "fast tier deoptimized" true
    (r_on.Engine.fast_segments > 1);
  Alcotest.(check bool) "spawned" true (r_on.Engine.spawns > 0);
  (* Baseline and CMP modes. *)
  ignore
    (check_differential "baseline"
       ~config:{ cfg with Pe_config.mode = Pe_config.Baseline }
       pt);
  ignore
    (check_differential "cmp"
       ~config:(Workload.pe_config ~mode:Pe_config.Cmp pt)
       pt);
  (* A detector filing NT-Path reports. *)
  ignore
    (check_differential "ccured bug" ~detector:Codegen.Ccured ~bug:10
       ~config:(Workload.pe_config Registry.print_tokens2)
       Registry.print_tokens2)

(* The per-branch-action configurations deoptimize at *every* branch
   (threshold = max_int) instead of disabling the fast tier; each must stay
   bit-for-bit equivalent — including the RNG draw sequence. *)
let test_differential_per_branch_configs () =
  let pt = Registry.print_tokens in
  let cfg = Workload.pe_config pt in
  ignore
    (check_differential "random spawning"
       ~config:
         { cfg with Pe_config.random_spawn_chance = 0.25; random_seed = 7 }
       pt);
  ignore
    (check_differential "spawn everywhere"
       ~config:{ cfg with Pe_config.spawn_everywhere = true }
       pt);
  ignore
    (check_differential "profiled fixing"
       ~config:{ cfg with Pe_config.profiled_fixing = true }
       pt);
  ignore
    (check_differential "follow-nontaken ablation"
       ~config:{ cfg with Pe_config.follow_nontaken_in_nt = true }
       pt)

(* --- random-program differential --------------------------------------------- *)

(* Small MiniC programs with data-dependent and cold branches, shifts and
   guarded divisions: enough structure to exercise spawns, deoptimizations
   and the ALU paths the shift fix touched. *)
type clause = { mul : int; modulus : int; bound : int; shift : int }

let clause_src i cl =
  Printf.sprintf
    "    if ((i * %d) %% %d < %d) { acc = acc + ((i << %d) - (acc >> 1)); }\n\
    \    else { acc = acc - (i %% %d) - %d; }\n\
    \    if (acc %% 97 == %d) { acc = acc + 1000 / (1 + (i %% 7)); }\n"
    cl.mul cl.modulus cl.bound cl.shift cl.modulus (i + 1)
    ((cl.mul + cl.bound) mod 97)

let program_src (iters, clauses) =
  Printf.sprintf
    "int acc = 0;\n\
     int main() {\n\
    \  int i;\n\
    \  for (i = 0; i < %d; i = i + 1) {\n\
     %s\
    \  }\n\
    \  print_int(acc);\n\
    \  return 0;\n\
     }\n"
    iters
    (String.concat "" (List.mapi clause_src clauses))

let clause_gen =
  QCheck.Gen.(
    map
      (fun (mul, modulus, bound, shift) ->
        { mul = 1 + mul; modulus = 2 + modulus; bound; shift })
      (quad (int_bound 6) (int_bound 7) (int_bound 9) (int_bound 5)))

let program_gen =
  QCheck.Gen.(pair (map (fun n -> 2 + n) (int_bound 18))
                (list_size (map (fun n -> 1 + n) (int_bound 3)) clause_gen))

let prop_random_program_differential =
  QCheck.Test.make ~name:"random programs: selective = instrumented" ~count:25
    (QCheck.make ~print:program_src program_gen) (fun params ->
      let source = program_src params in
      let compiled = Compile.compile source in
      let run selective =
        let machine = Machine.create compiled.Compile.program in
        let config = { Pe_config.default with Pe_config.selective } in
        let result = Engine.run ~config machine in
        observables machine result
      in
      run false = run true)

let tests =
  [
    Alcotest.test_case "shift amounts are masked to 63, not 62" `Quick
      test_shift_mask;
    Alcotest.test_case "shl doubles end-to-end on both tiers" `Quick
      test_shift_end_to_end;
    Alcotest.test_case "div-by-zero faults identically on both tiers" `Quick
      test_div_by_zero_parity;
    Alcotest.test_case "sandboxed syscall is reported, not executed" `Quick
      test_sandboxed_syscall_reported_not_executed;
    Alcotest.test_case "only overlay sandbox writes can overflow" `Quick
      test_sandbox_overflow_arms;
    QCheck_alcotest.to_alcotest prop_lookup_exercise_equiv;
    QCheck_alcotest.to_alcotest prop_probe_exercise_equiv;
    Alcotest.test_case "workload differential: all observables identical"
      `Quick test_differential_workloads;
    Alcotest.test_case "per-branch-action configs stay equivalent" `Quick
      test_differential_per_branch_configs;
    QCheck_alcotest.to_alcotest prop_random_program_differential;
  ]

(* Flight-recorder tests: histogram bucket edges, span-trace drop
   accounting, ring-buffer semantics, trace determinism, exporter validity
   (every JSONL line and the Chrome JSON parse), and bug-event provenance
   agreeing with the report log. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_contains msg needle hay =
  Alcotest.(check bool) (msg ^ ": " ^ needle) true (contains ~needle hay)

(* --- histograms ---------------------------------------------------------- *)

let test_hist_bucket_edges () =
  let t = Telemetry.create () in
  (* Bucket 0 holds v <= 0; bucket i >= 1 holds [2^(i-1), 2^i - 1]. *)
  List.iter (Telemetry.observe t "h") [ min_int; -1; 0 ];
  Alcotest.(check (list (pair int int)))
    "non-positive values collapse into the zero bucket"
    [ (0, 3) ]
    (Telemetry.hist_buckets t "h");
  let t = Telemetry.create () in
  List.iter (Telemetry.observe t "h") [ 1; 2; 3; 4; 7; 8 ];
  Alcotest.(check (list (pair int int)))
    "power-of-two boundaries split buckets"
    [ (1, 1); (2, 2); (4, 2); (8, 1) ]
    (Telemetry.hist_buckets t "h");
  Alcotest.(check int) "count" 6 (Telemetry.hist_count t "h");
  let t = Telemetry.create () in
  Telemetry.observe t "h" max_int;
  Alcotest.(check (list (pair int int)))
    "max_int lands in the top bucket"
    [ (1 lsl 61, 1) ]
    (Telemetry.hist_buckets t "h")

let test_hist_json () =
  let t = Telemetry.create ~label:"hj" () in
  Telemetry.observe t "nt.len" 5;
  Telemetry.observe t "nt.len" 100;
  let json = Telemetry.to_json t in
  check_contains "hists key present" {|"hists":{"nt.len":{"count":2|} json;
  check_contains "sum" {|"sum":105|} json;
  check_contains "min" {|"min":5|} json;
  check_contains "max" {|"max":100|} json;
  Alcotest.(check bool) "json parses" true
    (Result.is_ok (Jsonu.parse json))

let test_hist_aggregate () =
  let a = Telemetry.create () and b = Telemetry.create () in
  Telemetry.observe a "h" 3;
  Telemetry.observe b "h" 3;
  Telemetry.observe b "h" 1000;
  let json = Telemetry.aggregate_json [ a; b ] in
  check_contains "bucket-wise merge" {|[2,2]|} json;
  check_contains "count merged" {|"count":3|} json;
  Alcotest.(check bool) "aggregate parses" true
    (Result.is_ok (Jsonu.parse json))

(* --- span-trace drop accounting (the old silent truncation) -------------- *)

let test_trace_dropped () =
  let t = Telemetry.create ~label:"drops" () in
  for _ = 1 to 80 do
    Telemetry.span t "s" (fun () -> ())
  done;
  Alcotest.(check int) "spans past the bound are counted, not lost" 16
    (Telemetry.trace_dropped t);
  check_contains "drop count exported" {|"trace_dropped":16|}
    (Telemetry.to_json t);
  let fresh = Telemetry.create () in
  Alcotest.(check int) "fresh sink drops nothing" 0
    (Telemetry.trace_dropped fresh)

(* --- ring buffer semantics ----------------------------------------------- *)

let test_ring_overflow () =
  let r = Recorder.create ~capacity:4 () in
  for i = 1 to 6 do
    Recorder.set_local r (10 * i);
    Recorder.emit_counter_reset r ~insns:i
  done;
  Alcotest.(check int) "length is capped" 4 (Recorder.length r);
  Alcotest.(check int) "total keeps counting" 6 (Recorder.total r);
  Alcotest.(check int) "dropped = total - capacity" 2 (Recorder.dropped r);
  let insns =
    List.map
      (function
        | Recorder.Counter_reset { insns; _ } -> insns
        | _ -> Alcotest.fail "unexpected event kind")
      (Recorder.events r)
  in
  Alcotest.(check (list int)) "oldest events overwritten, order kept"
    [ 3; 4; 5; 6 ] insns

let test_disabled_is_noop () =
  let r = Recorder.disabled in
  Recorder.set_base r 100;
  Recorder.set_local r 100;
  Recorder.emit_spawn r ~path_id:1 ~br_pc:2 ~edge:true ~entry_pc:3;
  Recorder.emit_bug r ~site:1 ~origin:1 ~spawn_site:2 ~edge:0 ~pc:9;
  Alcotest.(check bool) "disabled" false (Recorder.enabled r);
  Alcotest.(check int) "no events recorded" 0 (Recorder.total r)

let test_clock_base_local () =
  let r = Recorder.create () in
  Recorder.set_local r 40;
  Recorder.emit_spawn r ~path_id:1 ~br_pc:7 ~edge:false ~entry_pc:8;
  Recorder.set_base r 40;
  Recorder.set_local r 5;
  Recorder.emit_terminate r ~path_id:1 ~cause:Recorder.Max_length ~len:5
    ~dirty_lines:2;
  match Recorder.events r with
  | [ Recorder.Spawn { at = a1; _ }; Recorder.Terminate { at = a2; _ } ] ->
    Alcotest.(check int) "spawn at primary cycle" 40 a1;
    Alcotest.(check int) "terminate at spawn + path-local" 45 a2
  | _ -> Alcotest.fail "expected spawn + terminate"

(* --- cache squash/commit emission ---------------------------------------- *)

let test_cache_emits_squash_and_commit () =
  let r = Recorder.create () in
  let cache = Cache.create ~size_kb:1 ~assoc:2 ~line_bytes:16 in
  Cache.set_recorder cache r;
  for i = 0 to 3 do
    ignore
      (Cache.access_line cache (64 * i) ~owner:5 ~write:true ~allocate:true)
  done;
  let squashed = Cache.gang_invalidate cache ~owner:5 in
  for i = 0 to 1 do
    ignore
      (Cache.access_line cache (64 * i) ~owner:6 ~write:true ~allocate:true)
  done;
  let committed = Cache.commit_owner cache ~owner:6 in
  match Recorder.events r with
  | [ Recorder.Squash { owner = o1; lines = l1; _ };
      Recorder.Commit { owner = o2; lines = l2; _ } ] ->
    Alcotest.(check int) "squash owner" 5 o1;
    Alcotest.(check int) "squash lines" squashed l1;
    Alcotest.(check int) "commit owner" 6 o2;
    Alcotest.(check int) "commit lines" committed l2
  | evs ->
    Alcotest.fail
      (Printf.sprintf "expected squash + commit, got %d events"
         (List.length evs))

(* --- engine integration --------------------------------------------------- *)

let buggy_source =
  {|
int flag = 0;
int arr[4];
int out = 0;

void rare(int i) {
  // out-of-bounds when forced with a large i: only an NT-Path sees it
  arr[i] = 1;
  out = out + 1;
}

int main() {
  int i;
  for (i = 0; i < 12; i = i + 1) {
    if (flag == 1) {
      rare(i);
    }
    out = out + 1;
  }
  print_int(out);
  return 0;
}
|}

let traced_run ?(source = buggy_source) () =
  let compiled =
    Compile.compile ~options:{ Codegen.default_options with Codegen.detector = Codegen.Ccured }
      source
  in
  let recorder = Recorder.create () in
  let machine = Machine.create ~recorder compiled.Compile.program in
  let result = Engine.run machine in
  (compiled, machine, recorder, result)

let test_engine_trace_deterministic () =
  let _, _, r1, _ = traced_run () in
  let _, _, r2, _ = traced_run () in
  let d1 = Recorder.dump ~label:"run" r1 in
  let d2 = Recorder.dump ~label:"run" r2 in
  Alcotest.(check bool) "events recorded" true (List.length d1.Recorder.events > 0);
  Alcotest.(check string) "identical runs give identical JSONL"
    (Recorder.jsonl_of_dump d1) (Recorder.jsonl_of_dump d2);
  Alcotest.(check string) "identical Chrome traces"
    (Recorder.chrome_of_dump d1) (Recorder.chrome_of_dump d2)

let test_engine_trace_lifecycle () =
  let _, _, r, result = traced_run () in
  let events = Recorder.events r in
  let spawns =
    List.filter_map
      (function Recorder.Spawn { path_id; _ } -> Some path_id | _ -> None)
      events
  in
  let terms =
    List.filter_map
      (function Recorder.Terminate { path_id; _ } -> Some path_id | _ -> None)
      events
  in
  Alcotest.(check int) "one spawn event per engine spawn"
    result.Engine.spawns (List.length spawns);
  Alcotest.(check (list int)) "every spawned path terminates" spawns terms;
  (* Timestamps are non-decreasing per path pairing: a path's terminate
     never precedes its spawn. *)
  List.iter
    (function
      | Recorder.Terminate { at; path_id; _ } ->
        let spawn_at =
          List.find_map
            (function
              | Recorder.Spawn { at; path_id = p; _ } when p = path_id ->
                Some at
              | _ -> None)
            events
        in
        (match spawn_at with
         | Some s ->
           Alcotest.(check bool) "terminate not before spawn" true (at >= s)
         | None -> Alcotest.fail "terminate without spawn")
      | _ -> ())
    events

let test_bug_provenance_matches_reports () =
  let _, machine, r, _ = traced_run () in
  let reports = Report.entries machine.Machine.reports in
  Alcotest.(check bool) "the planted bug fires" true (List.length reports > 0);
  let bug_events =
    List.filter_map
      (function
        | Recorder.Bug_detected { site; origin; spawn_site; edge; pc; _ } ->
          Some (site, origin, spawn_site, edge, pc)
        | _ -> None)
      (Recorder.events r)
  in
  Alcotest.(check int) "one Bug_detected event per filed report"
    (List.length reports) (List.length bug_events);
  List.iter2
    (fun (e : Report.entry) (site, origin, spawn_site, edge, pc) ->
      Alcotest.(check int) "site" e.Report.site site;
      Alcotest.(check int) "pc" e.Report.pc pc;
      Alcotest.(check int) "spawn site" e.Report.spawn_br_pc spawn_site;
      Alcotest.(check int) "branch edge" e.Report.branch_edge edge;
      match e.Report.origin with
      | Report.Taken_path -> Alcotest.(check int) "taken origin" 0 origin
      | Report.Nt_path id -> Alcotest.(check int) "nt origin" id origin)
    reports bug_events;
  (* NT-origin reports name a real spawning edge, and the report log's
     distinct-edge view agrees with the trace. *)
  List.iter
    (fun (e : Report.entry) ->
      match e.Report.origin with
      | Report.Nt_path _ ->
        Alcotest.(check bool) "nt report names its edge" true
          (e.Report.spawn_br_pc >= 0 && e.Report.branch_edge >= 0)
      | Report.Taken_path ->
        Alcotest.(check int) "taken report has no edge" (-1)
          e.Report.spawn_br_pc)
    reports;
  Alcotest.(check bool) "spawn_edges view is non-empty" true
    (Report.spawn_edges machine.Machine.reports <> [])

(* --- exporters ------------------------------------------------------------ *)

let test_jsonl_every_line_parses () =
  let _, _, r, _ = traced_run () in
  let dump = Recorder.dump ~label:"weird \"label\"\nwith newline" r in
  let jsonl = Recorder.jsonl_of_dump dump in
  let lines = String.split_on_char '\n' jsonl in
  let lines = List.filter (fun l -> l <> "") lines in
  Alcotest.(check bool) "has meta + events" true (List.length lines > 1);
  List.iteri
    (fun i line ->
      match Jsonu.parse line with
      | Ok v ->
        (match Jsonu.member "type" v with
         | Some (Jsonu.Str ty) ->
           if i = 0 then Alcotest.(check string) "meta first" "meta" ty
         | _ -> Alcotest.fail (Printf.sprintf "line %d lacks type" (i + 1)))
      | Error e ->
        Alcotest.fail (Printf.sprintf "line %d invalid: %s" (i + 1) e))
    lines;
  (* The escaped label round-trips exactly. *)
  match Jsonu.parse (List.hd lines) with
  | Ok meta ->
    (match Jsonu.member "label" meta with
     | Some (Jsonu.Str l) ->
       Alcotest.(check string) "label round-trips" "weird \"label\"\nwith newline" l
     | _ -> Alcotest.fail "meta lacks label")
  | Error e -> Alcotest.fail e

let test_chrome_output_valid () =
  let _, _, r, result = traced_run () in
  let chrome = Recorder.chrome_of_dump (Recorder.dump ~label:"c" r) in
  match Jsonu.parse chrome with
  | Error e -> Alcotest.fail ("chrome trace invalid: " ^ e)
  | Ok v ->
    (match Jsonu.member "traceEvents" v with
     | Some (Jsonu.Arr evs) ->
       (* every spawn/terminate pair renders as one complete slice *)
       let slices =
         List.filter
           (fun ev ->
             match Jsonu.member "ph" ev with
             | Some (Jsonu.Str "X") -> true
             | _ -> false)
           evs
       in
       Alcotest.(check int) "one X slice per NT-Path" result.Engine.spawns
         (List.length slices);
       List.iter
         (fun ev ->
           match Jsonu.member "dur" ev with
           | Some (Jsonu.Num d) ->
             Alcotest.(check bool) "slice duration non-negative" true (d >= 0.0)
           | _ -> Alcotest.fail "X slice lacks dur")
         slices
     | _ -> Alcotest.fail "missing traceEvents array")

(* --- global capture ------------------------------------------------------- *)

let test_capture_runs () =
  Alcotest.(check bool) "tracing off outside capture" false (Recorder.tracing ());
  let (), dumps =
    Recorder.capture_runs (fun () ->
        let _, machine, _, _ = traced_run () in
        (* traced_run passes its own recorder; a default machine picks the
           armed capture up instead *)
        ignore machine;
        let compiled = Compile.compile buggy_source in
        let m = Machine.create compiled.Compile.program in
        ignore (Engine.run m))
  in
  Alcotest.(check bool) "tracing rearmed off" false (Recorder.tracing ());
  Alcotest.(check bool) "captured the default-recorder run" true
    (List.length dumps >= 1);
  (* save_dir writes deterministically named, parseable files *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "pexp_trace_test" in
  let files = Recorder.save_dir ~dir dumps in
  Alcotest.(check int) "one file per dump" (List.length dumps)
    (List.length files);
  List.iter
    (fun f ->
      let ic = open_in f in
      (try
         while true do
           match Jsonu.parse (input_line ic) with
           | Ok _ -> ()
           | Error e -> Alcotest.fail (f ^ ": " ^ e)
         done
       with End_of_file -> ());
      close_in ic;
      Sys.remove f)
    files

let tests =
  [
    Alcotest.test_case "histogram bucket edges" `Quick test_hist_bucket_edges;
    Alcotest.test_case "histogram JSON shape" `Quick test_hist_json;
    Alcotest.test_case "histogram aggregation" `Quick test_hist_aggregate;
    Alcotest.test_case "span-trace drops are counted" `Quick test_trace_dropped;
    Alcotest.test_case "ring overflow semantics" `Quick test_ring_overflow;
    Alcotest.test_case "disabled recorder is inert" `Quick test_disabled_is_noop;
    Alcotest.test_case "base+local sim clock" `Quick test_clock_base_local;
    Alcotest.test_case "cache emits squash and commit" `Quick
      test_cache_emits_squash_and_commit;
    Alcotest.test_case "engine trace is deterministic" `Quick
      test_engine_trace_deterministic;
    Alcotest.test_case "spawn/terminate lifecycle" `Quick
      test_engine_trace_lifecycle;
    Alcotest.test_case "bug provenance matches reports" `Quick
      test_bug_provenance_matches_reports;
    Alcotest.test_case "JSONL lines all parse" `Quick
      test_jsonl_every_line_parses;
    Alcotest.test_case "Chrome trace is valid" `Quick test_chrome_output_valid;
    Alcotest.test_case "capture_runs + save_dir" `Quick test_capture_runs;
  ]

(* Parallel harness tests: the Pool domain pool (ordering, nesting,
   exceptions), the Sink capture buffers, and end-to-end determinism of the
   experiment runner — a parallel sweep must print exactly the serial bytes. *)

let range n = List.init n (fun i -> i)

let test_pool_order () =
  let xs = range 100 in
  Alcotest.(check (list int)) "matches serial map"
    (List.map (fun x -> (x * 31) mod 97) xs)
    (Pool.map ~jobs:4 (fun x -> (x * 31) mod 97) xs)

let test_pool_degenerate () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Pool.map ~jobs:4 succ [ 1 ]);
  Alcotest.(check (list int)) "more jobs than work" [ 1; 2; 3 ]
    (Pool.map ~jobs:16 succ [ 0; 1; 2 ]);
  Alcotest.(check (list int)) "jobs=1 is List.map" [ 1; 2 ]
    (Pool.map ~jobs:1 succ [ 0; 1 ])

let test_pool_nested () =
  (* an inner map inside a worker degrades to serial instead of spawning
     another pool; results are still positional *)
  let out =
    Pool.map ~jobs:3
      (fun x ->
        Alcotest.(check bool) "inside worker" true (Pool.in_worker ());
        Pool.map ~jobs:3 (fun y -> (10 * x) + y) [ 1; 2 ])
      (range 5)
  in
  Alcotest.(check (list (list int))) "nested results"
    (List.map (fun x -> [ (10 * x) + 1; (10 * x) + 2 ]) (range 5))
    out;
  Alcotest.(check bool) "not a worker outside" false (Pool.in_worker ())

let test_pool_exception () =
  Alcotest.check_raises "worker exception re-raised" Exit (fun () ->
      ignore (Pool.map ~jobs:4 (fun x -> if x = 7 then raise Exit else x) (range 20)))

let test_sink_capture () =
  let v, out =
    Sink.with_capture (fun () ->
        Sink.print_string "a";
        Sink.printf "%d" 1;
        Sink.print_endline "b";
        Sink.print_newline ();
        42)
  in
  Alcotest.(check int) "result" 42 v;
  Alcotest.(check string) "captured" "a1b\n\n" out

let test_sink_nested () =
  let (inner_v, inner_out), outer_out =
    Sink.with_capture (fun () ->
        Sink.print_string "before ";
        let r = Sink.with_capture (fun () -> Sink.print_string "inner"; 1) in
        Sink.print_string "after";
        r)
  in
  Alcotest.(check int) "inner result" 1 inner_v;
  Alcotest.(check string) "inner capture" "inner" inner_out;
  Alcotest.(check string) "outer skips inner" "before after" outer_out

let test_sink_restored_on_raise () =
  let (), out =
    Sink.with_capture (fun () ->
        (try
           ignore
             (Sink.with_capture (fun () ->
                  Sink.print_string "lost";
                  raise Exit))
         with Exit -> ());
        Sink.print_string "back")
  in
  Alcotest.(check string) "outer sink restored" "back" out

let with_jobs n f =
  let old = Exp_common.jobs () in
  Exp_common.set_jobs n;
  Fun.protect ~finally:(fun () -> Exp_common.set_jobs old) f

let experiment id =
  match Runner.find id with
  | Some e -> e
  | None -> Alcotest.failf "experiment %s missing from registry" id

(* The headline acceptance test: an experiment whose inner sweep fans across
   real domains (abl1 par_maps three workloads) must produce byte-identical
   output to its serial run. *)
let test_experiment_determinism () =
  let e = experiment "abl1" in
  let serial = with_jobs 1 (fun () -> Runner.capture e) in
  let parallel = with_jobs 4 (fun () -> Runner.capture e) in
  Alcotest.(check bool) "produced output" true (String.length serial > 0);
  Alcotest.(check string) "jobs=4 byte-identical to serial" serial parallel

let test_runner_parallel_order () =
  (* experiment-level fan-out: captured outputs are printed in registry
     order, so a parallel run of several experiments concatenates exactly *)
  let es = List.map experiment [ "tab2"; "tab3" ] in
  let expected = String.concat "" (List.map Runner.capture es) in
  let (), streamed =
    Sink.with_capture (fun () -> Runner.run_list ~jobs:2 es)
  in
  Alcotest.(check string) "order preserved" expected streamed

let tests =
  [
    Alcotest.test_case "pool preserves order" `Quick test_pool_order;
    Alcotest.test_case "pool degenerate inputs" `Quick test_pool_degenerate;
    Alcotest.test_case "pool nested maps" `Quick test_pool_nested;
    Alcotest.test_case "pool exception" `Quick test_pool_exception;
    Alcotest.test_case "sink capture" `Quick test_sink_capture;
    Alcotest.test_case "sink nesting" `Quick test_sink_nested;
    Alcotest.test_case "sink restored on raise" `Quick test_sink_restored_on_raise;
    Alcotest.test_case "sweep determinism (jobs=4 = serial)" `Slow
      test_experiment_determinism;
    Alcotest.test_case "runner output order" `Quick test_runner_parallel_order;
  ]

(* Engine tests: NT-Path lifecycle, sandbox isolation of the architectural
   state, coverage accounting, BTB-driven selection policy, termination
   conditions, and standard/CMP equivalence. *)

let cold_path_source =
  {|
int flag = 0;
int out = 0;
int hits = 0;

void rare(int x) {
  // only reachable when flag is set, which no input does
  hits = hits + 1;
  out = out + x;
}

int main() {
  int i;
  for (i = 0; i < 12; i = i + 1) {
    if (flag == 1) {
      rare(i);
    }
    out = out + 1;
  }
  print_int(out);
  print_int(hits);
  return 0;
}
|}

let run_source ?(config = Pe_config.default) ?(input = "") ?options source =
  let compiled = Compile.compile ?options source in
  let machine = Machine.create ~input compiled.Compile.program in
  let result = Engine.run ~config machine in
  (compiled, machine, result)

let test_baseline_spawns_nothing () =
  let _, _, result =
    run_source ~config:Pe_config.baseline cold_path_source
  in
  Alcotest.(check int) "no spawns" 0 result.Engine.spawns;
  Alcotest.(check (list pass)) "no records" [] result.Engine.nt_records

let test_nt_paths_have_no_side_effects () =
  (* the flag==1 edge is forced repeatedly, executing rare() in the sandbox;
     the program output must be exactly the baseline's *)
  let _, machine_base, _ =
    run_source ~config:Pe_config.baseline cold_path_source
  in
  let _, machine_pe, result = run_source cold_path_source in
  Alcotest.(check bool) "spawned" true (result.Engine.spawns > 0);
  Alcotest.(check string) "identical output"
    (Machine.output machine_base) (Machine.output machine_pe)

let test_spawn_threshold () =
  (* the forced edge's counter is bumped at spawn, so one static cold edge
     spawns exactly NTPathCounterThreshold times *)
  let config = { Pe_config.default with Pe_config.nt_counter_threshold = 3 } in
  let _, _, result = run_source ~config cold_path_source in
  let flag_edge_spawns =
    List.length
      (List.filter
         (fun (r : Nt_path.record) -> r.Nt_path.forced_direction)
         result.Engine.nt_records)
  in
  Alcotest.(check bool) "bounded by threshold" true (flag_edge_spawns <= 3 * 4)

let test_spawn_counts_scale_with_threshold () =
  let spawns t =
    let config = { Pe_config.default with Pe_config.nt_counter_threshold = t } in
    let _, _, result = run_source ~config cold_path_source in
    result.Engine.spawns
  in
  Alcotest.(check bool) "monotone in threshold" true (spawns 1 <= spawns 5)

let test_max_length_termination () =
  let config = { Pe_config.default with Pe_config.max_nt_path_length = 25 } in
  let _, _, result = run_source ~config cold_path_source in
  List.iter
    (fun (r : Nt_path.record) ->
      Alcotest.(check bool) "length bounded" true (r.Nt_path.insns <= 25))
    result.Engine.nt_records

let test_unsafe_event_termination () =
  let source =
    {|
int flag = 0;
int main() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    if (flag == 1) {
      putc('x');
      putc('y');
    }
  }
  putc('.');
  return 0;
}
|}
  in
  let _, machine, result = run_source source in
  let unsafe =
    List.filter (fun r -> Nt_path.is_unsafe r) result.Engine.nt_records
  in
  Alcotest.(check bool) "some NT-Paths hit the putc" true (unsafe <> []);
  Alcotest.(check string) "output untouched" "." (Machine.output machine)

let test_crash_termination_swallowed () =
  let source =
    {|
int flag = 0;
int *p = NULL;
int main() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    if (flag == 1) {
      // forced edge dereferences NULL: crash inside the NT-Path only
      p[0] = 1;
    }
  }
  print_int(9);
  return 0;
}
|}
  in
  (* without fixing, p stays NULL on the forced edge *)
  let options = { Codegen.detector = Codegen.No_detector; fixing = false } in
  let config = { Pe_config.default with Pe_config.fixing = false } in
  let _, machine, result = run_source ~options ~config source in
  let crashes = List.filter Nt_path.is_crash result.Engine.nt_records in
  Alcotest.(check bool) "NT-Paths crashed" true (crashes <> []);
  Alcotest.(check bool) "program unharmed" true
    (result.Engine.outcome = `Halted);
  Alcotest.(check string) "output intact" "9" (Machine.output machine)

let test_fixing_repairs_condition () =
  (* with fixing, the forced edge sees flag = 1 and rare() runs without
     crashing; the 'hits' assertion-like counter lives in the sandbox *)
  let source =
    {|
int flag = 0;
int witness = 0;
int main() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    if (flag == 1) {
      if (flag == 1) { witness = 1; }
      if (flag == 0) { witness = 2; }
    }
  }
  print_int(witness);
  return 0;
}
|}
  in
  (* The inner branches follow the *fixed* flag: with fixing on, an NT-Path
     entering the outer edge must take the flag==1 inner branch. We observe
     it via coverage: the witness=1 edge is covered, witness=2 is not. *)
  let compiled = Compile.compile source in
  let machine = Machine.create compiled.Compile.program in
  let result = Engine.run machine in
  Alcotest.(check bool) "spawned" true (result.Engine.spawns > 0);
  let cov = result.Engine.coverage in
  Alcotest.(check bool) "NT coverage above baseline" true
    (Coverage.combined_pct cov > Coverage.taken_pct cov)

let test_coverage_accounting () =
  let _, _, result = run_source cold_path_source in
  let cov = result.Engine.coverage in
  Alcotest.(check bool) "baseline below 100" true (Coverage.taken_pct cov < 100.0);
  Alcotest.(check bool) "PE above baseline" true
    (Coverage.combined_pct cov > Coverage.taken_pct cov);
  Alcotest.(check bool) "PE at most 100" true (Coverage.combined_pct cov <= 100.0);
  Alcotest.(check bool) "edges bounded by universe" true
    (Coverage.combined_edges cov <= Coverage.edge_universe_size cov)

let test_standard_cmp_equivalence () =
  (* functionally identical: same coverage, same reports, same output.
     [MaxNumNTPaths] is lifted so the CMP option suppresses no spawns (its
     only functional difference from the standard configuration). *)
  let compiled =
    Workload.compile ~detector:Codegen.Ccured ~bug:10 Registry.print_tokens2
  in
  let run mode =
    let machine =
      Machine.create ~input:Registry.print_tokens2.Workload.default_input
        compiled.Compile.program
    in
    let config =
      {
        (Workload.pe_config ~mode Registry.print_tokens2) with
        Pe_config.max_num_nt_paths = max_int;
      }
    in
    let result = Engine.run ~config machine in
    (machine, result)
  in
  let m_std, r_std = run Pe_config.Standard in
  let m_cmp, r_cmp = run Pe_config.Cmp in
  Alcotest.(check string) "same output" (Machine.output m_std) (Machine.output m_cmp);
  Alcotest.(check (list int)) "same report sites"
    (Report.distinct_sites m_std.Machine.reports)
    (Report.distinct_sites m_cmp.Machine.reports);
  Alcotest.(check int) "same spawns" r_std.Engine.spawns r_cmp.Engine.spawns;
  Alcotest.(check (float 0.001)) "same coverage"
    (Coverage.combined_pct r_std.Engine.coverage)
    (Coverage.combined_pct r_cmp.Engine.coverage)

let test_cmp_cheaper_than_standard () =
  let compiled = Workload.compile Registry.print_tokens in
  let total mode =
    let machine =
      Machine.create ~input:Registry.print_tokens.Workload.default_input
        compiled.Compile.program
    in
    let config = Workload.pe_config ~mode Registry.print_tokens in
    (Engine.run ~config machine).Engine.total_cycles
  in
  let baseline = total Pe_config.Baseline in
  let standard = total Pe_config.Standard in
  let cmp = total Pe_config.Cmp in
  Alcotest.(check bool) "standard > baseline" true (standard > baseline);
  Alcotest.(check bool) "cmp < standard" true (cmp < standard);
  Alcotest.(check bool) "cmp >= baseline" true (cmp >= baseline)

let test_max_num_nt_paths_limits () =
  let compiled = Workload.compile Registry.print_tokens in
  let skipped limit =
    let machine =
      Machine.create ~input:Registry.print_tokens.Workload.default_input
        compiled.Compile.program
    in
    let config =
      {
        (Workload.pe_config ~mode:Pe_config.Cmp Registry.print_tokens) with
        Pe_config.max_num_nt_paths = limit;
      }
    in
    (Engine.run ~config machine).Engine.skipped_spawns
  in
  Alcotest.(check bool) "tight limit skips more" true (skipped 1 > skipped 32)

let test_counter_reset_respawns () =
  let spawns interval =
    let config =
      { Pe_config.default with Pe_config.counter_reset_interval = interval }
    in
    let _, _, result = run_source ~config cold_path_source in
    result.Engine.spawns
  in
  Alcotest.(check bool) "frequent resets spawn more" true
    (spawns 200 > spawns max_int)

let test_reports_survive_squash () =
  (* a detector report filed inside an NT-Path survives its rollback: the
     monitor memory area semantics *)
  let source =
    {|
int flag = 0;
int t[4];
int main() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    if (flag == 1) {
      t[9] = 1;
    }
  }
  return 0;
}
|}
  in
  let options = { Codegen.detector = Codegen.Ccured; fixing = true } in
  let _, machine, _ = run_source ~options source in
  Alcotest.(check bool) "overrun reported from NT-Path" true
    (Report.sites_from_nt_paths machine.Machine.reports <> [])

let test_watchpoints_restored_after_squash () =
  (* NT-Paths that register watchpoints (via malloc/free) must leave the
     watch table exactly as it was *)
  let source =
    {|
int flag = 0;
int main() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    if (flag == 1) {
      int *p = malloc(4);
      free(p);
    }
  }
  return 0;
}
|}
  in
  let options = { Codegen.detector = Codegen.Iwatcher; fixing = true } in
  let compiled = Compile.compile ~options source in
  let machine = Machine.create compiled.Compile.program in
  let before = Watchpoints.count machine.Machine.watch in
  let result = Engine.run machine in
  Alcotest.(check bool) "spawned" true (result.Engine.spawns > 0);
  Alcotest.(check int) "watch table restored" before
    (Watchpoints.count machine.Machine.watch)

let test_counter_reset_pinned_to_primary () =
  (* Regression: [CounterResetInterval] must be driven by the primary
     context's retired instructions, not [Machine.insn_index] (which also
     advances inside sandboxed NT-Paths and would accelerate the cadence by
     however much speculative work happened to run). *)
  let interval = 40 in
  let config =
    { Pe_config.default with Pe_config.counter_reset_interval = interval }
  in
  let _, machine, result = run_source ~config cold_path_source in
  let tel = machine.Machine.telemetry in
  let taken = result.Engine.taken_insns in
  let nt = Telemetry.counter tel "nt.insns" in
  let resets = Telemetry.counter tel "btb.counter_resets" in
  Alcotest.(check bool) "NT-Paths ran enough to skew a global cadence" true
    (nt > 2 * interval);
  Alcotest.(check bool) "resets follow primary retirement" true
    (resets >= (taken / interval) - 1 && resets <= taken / interval);
  Alcotest.(check bool) "not inflated by sandboxed instructions" true
    (resets < (taken + nt) / interval)

let test_path_id_wrap () =
  (* More than 255 spawns wraps the 8-bit version-tag space; id reuse must
     not let an old path's squash destroy anything, and the architectural
     output must stay exactly the baseline's. *)
  let w = Registry.go in
  let compile () = Workload.compile w in
  let run mode =
    let compiled = compile () in
    let machine =
      Machine.create ~input:w.Workload.default_input compiled.Compile.program
    in
    let result = Engine.run ~config:(Workload.pe_config ~mode w) machine in
    (machine, result)
  in
  let machine_base, _ = run Pe_config.Baseline in
  let machine_pe, result = run Pe_config.Standard in
  Alcotest.(check bool) "spawns exceed the id space" true
    (result.Engine.spawns > 255);
  Alcotest.(check string) "output identical to baseline"
    (Machine.output machine_base) (Machine.output machine_pe);
  Alcotest.(check bool) "defensive cleanup found nothing stale" true
    (Telemetry.counter machine_pe.Machine.telemetry "path_id.stale_lines_cleaned"
     = 0)

let test_run_telemetry_populated () =
  let _, machine, result = run_source cold_path_source in
  let tel = machine.Machine.telemetry in
  Alcotest.(check int) "spawn counter mirrors result" result.Engine.spawns
    (Telemetry.counter tel "engine.spawns");
  Alcotest.(check int) "taken insns mirror result" result.Engine.taken_insns
    (Telemetry.counter tel "taken.insns");
  Alcotest.(check bool) "engine.run span recorded" true
    (Telemetry.timer_total tel "engine.run" > 0.0);
  Alcotest.(check bool) "coverage gauge set" true
    (Telemetry.gauge_value tel "coverage.combined_pct" <> None)

let tests =
  [
    Alcotest.test_case "baseline spawns nothing" `Quick test_baseline_spawns_nothing;
    Alcotest.test_case "NT-Paths side-effect free" `Quick test_nt_paths_have_no_side_effects;
    Alcotest.test_case "spawn threshold" `Quick test_spawn_threshold;
    Alcotest.test_case "spawns scale with threshold" `Quick test_spawn_counts_scale_with_threshold;
    Alcotest.test_case "max-length termination" `Quick test_max_length_termination;
    Alcotest.test_case "unsafe-event termination" `Quick test_unsafe_event_termination;
    Alcotest.test_case "crash swallowed" `Quick test_crash_termination_swallowed;
    Alcotest.test_case "fixing repairs condition" `Quick test_fixing_repairs_condition;
    Alcotest.test_case "coverage accounting" `Quick test_coverage_accounting;
    Alcotest.test_case "standard = cmp functionally" `Quick test_standard_cmp_equivalence;
    Alcotest.test_case "cmp cheaper than standard" `Quick test_cmp_cheaper_than_standard;
    Alcotest.test_case "MaxNumNTPaths limits" `Quick test_max_num_nt_paths_limits;
    Alcotest.test_case "counter reset respawns" `Quick test_counter_reset_respawns;
    Alcotest.test_case "reports survive squash" `Quick test_reports_survive_squash;
    Alcotest.test_case "watchpoints restored" `Quick test_watchpoints_restored_after_squash;
    Alcotest.test_case "counter reset pinned to primary" `Quick
      test_counter_reset_pinned_to_primary;
    Alcotest.test_case "path-id wrap" `Slow test_path_id_wrap;
    Alcotest.test_case "run telemetry populated" `Quick
      test_run_telemetry_populated;
  ]
